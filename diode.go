// Package diode is a from-scratch Go implementation of DIODE, the targeted
// integer-overflow discovery system of "Targeted Automatic Integer Overflow
// Discovery Using Goal-Directed Conditional Branch Enforcement"
// (Sidiroglou-Douskos et al., ASPLOS 2015).
//
// DIODE starts from a target memory allocation site whose size the input
// influences, extracts a symbolic target expression for the allocated size,
// derives the target constraint (the inputs for which that computation
// overflows), and then runs goal-directed conditional branch enforcement:
// solve, run, find the first sanity check the generated input flips, enforce
// it, and re-solve — until an input triggers the overflow or the constraint
// becomes unsatisfiable.
//
// This package is the public facade. The heavy machinery lives in internal
// packages: the bitvector engine and CDCL/bit-blasting solver (the Z3
// substitute), the concrete+symbolic interpreter for the paper's core
// language (the Valgrind substitute), the field-dictionary and
// input-reconstruction layers (the Hachoir/Peach substitutes), and the five
// re-authored benchmark applications. See DESIGN.md for the package
// inventory and the Analyzer/Hunter/Scheduler layer diagram.
//
// The pipeline itself is three layers: an Analyzer (stages 1–3, once per
// application), per-site Hunters (the Figure 7 enforcement loop, each with a
// private solver), and a Scheduler that fans site hunts across a bounded
// worker pool. Per-site seed derivation makes parallel and sequential runs
// produce identical verdicts.
//
// Quick start:
//
//	app, _ := diode.Application("dillo")
//	sched := diode.NewScheduler(app, diode.Options{Seed: 1, Parallelism: runtime.GOMAXPROCS(0)})
//	result, _ := sched.RunAll()
//	for _, site := range result.Sites {
//	    fmt.Println(site.Target.Site, site.Verdict)
//	}
//
// The pre-scheduler Engine API (NewEngine + RunAll) remains available as a
// thin compatibility wrapper with identical results.
package diode

import (
	"diode/internal/apps"
	"diode/internal/core"
	"diode/internal/report"
	"diode/internal/solver"
)

// App is a benchmark application: a guest program, its input format with a
// seed input, and the paper's per-site expectations.
type App = apps.App

// PaperSite is one row of the paper's evaluation tables for an application.
type PaperSite = apps.PaperSite

// Class is the Table 1 site classification.
type Class = apps.Class

// Site classifications (Table 1 columns).
const (
	ClassExposed   = apps.ClassExposed
	ClassUnsat     = apps.ClassUnsat
	ClassPrevented = apps.ClassPrevented
)

// Options configure the pipeline. The zero value uses sensible defaults; set
// Seed for reproducible hunts and Parallelism for concurrent site hunts.
type Options = core.Options

// Analyzer runs stages 1–3 once per application, producing immutable
// Targets.
type Analyzer = core.Analyzer

// Hunter runs the Figure 7 enforcement loop for one site with a private
// solver and input generator.
type Hunter = core.Hunter

// Scheduler fans per-site hunts across a bounded worker pool with
// deterministic per-site seeding.
type Scheduler = core.Scheduler

// SolverStats is a snapshot of solver work counters, aggregated by the
// Scheduler across hunter-local solvers.
type SolverStats = solver.Stats

// Engine is the pre-scheduler façade, kept as a compatibility wrapper.
type Engine = core.Engine

// Target is an analyzed target site: relevant input bytes, symbolic target
// expression, target constraint, and the seed's branch condition sequence.
type Target = core.Target

// Verdict classifies a hunt's outcome.
type Verdict = core.Verdict

// Hunt verdicts.
const (
	VerdictExposed   = core.VerdictExposed
	VerdictUnsat     = core.VerdictUnsat
	VerdictPrevented = core.VerdictPrevented
	VerdictUnknown   = core.VerdictUnknown
)

// SiteResult is the outcome of hunting one site.
type SiteResult = core.SiteResult

// AppResult is the outcome of hunting every site of an application.
type AppResult = core.AppResult

// AppRecord and SiteRecord are persistable result records used by the table
// renderers.
type (
	AppRecord  = report.AppRecord
	SiteRecord = report.SiteRecord
)

// Applications returns every registered benchmark application: the paper's
// five (Dillo 2.1, VLC 0.8.6h, SwfPlay 0.5.5, CWebP 0.3.1, ImageMagick
// 6.5.2) followed by the extended workload suite (GIFView 0.4, TIFThumb
// 0.2).
func Applications() []*App { return apps.All() }

// PaperApplications returns the paper's five benchmark applications in the
// paper's table order.
func PaperApplications() []*App { return apps.Paper() }

// ExtendedApplications returns the extended workload suite: applications
// with no paper counterpart, reported with measured-only columns.
func ExtendedApplications() []*App { return apps.Extended() }

// Application returns a benchmark application by short name ("dillo", "vlc",
// "swfplay", "cwebp", "imagemagick", "gifview", "tifthumb").
func Application(short string) (*App, error) { return apps.ByName(short) }

// ApplicationNames returns the short names of the given applications, for
// usage strings and error messages.
func ApplicationNames(list []*App) []string { return apps.Shorts(list) }

// NewAnalyzer returns a stage 1–3 analyzer for the application.
func NewAnalyzer(app *App, opts Options) *Analyzer { return core.NewAnalyzer(app, opts) }

// NewHunter returns a single-site hunter; opts.Seed seeds its private
// solver directly (use Options.ForSite for the scheduler's derivation).
func NewHunter(app *App, opts Options) *Hunter { return core.NewHunter(app, opts) }

// NewScheduler returns a scheduler that analyzes the application once and
// hunts its sites on a worker pool bounded by opts.Parallelism.
func NewScheduler(app *App, opts Options) *Scheduler { return core.NewScheduler(app, opts) }

// SiteSeed derives the deterministic per-site hunt seed from the run seed
// and the site name.
func SiteSeed(seed int64, site string) int64 { return core.SiteSeed(seed, site) }

// NewEngine returns a DIODE engine for the application (compatibility
// wrapper over NewScheduler; identical results).
func NewEngine(app *App, opts Options) *Engine { return core.New(app, opts) }

// Record converts an engine result into a persistable record for the table
// renderers.
func Record(res *AppResult) *AppRecord { return report.FromResult(res) }

// Table1 renders the paper's Table 1 (target site classification), measured
// values next to the paper's.
func Table1(appList []*App, recs []*AppRecord) string { return report.Table1(appList, recs) }

// Table2 renders the paper's Table 2 (evaluation summary for exposed sites).
func Table2(appList []*App, recs []*AppRecord) string { return report.Table2(appList, recs) }

// TableExtended renders the extended-suite table: every site of the given
// applications with measured-only columns (no paper values exist for them).
func TableExtended(appList []*App, recs []*AppRecord) string {
	return report.TableExtended(appList, recs)
}
