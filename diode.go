// Package diode is a from-scratch Go implementation of DIODE, the targeted
// integer-overflow discovery system of "Targeted Automatic Integer Overflow
// Discovery Using Goal-Directed Conditional Branch Enforcement"
// (Sidiroglou-Douskos et al., ASPLOS 2015).
//
// DIODE starts from a target memory allocation site whose size the input
// influences, extracts a symbolic target expression for the allocated size,
// derives the target constraint (the inputs for which that computation
// overflows), and then runs goal-directed conditional branch enforcement:
// solve, run, find the first sanity check the generated input flips, enforce
// it, and re-solve — until an input triggers the overflow or the constraint
// becomes unsatisfiable.
//
// This package is the public facade. The heavy machinery lives in internal
// packages: the bitvector engine and CDCL/bit-blasting solver (the Z3
// substitute), the concrete+symbolic interpreter for the paper's core
// language (the Valgrind substitute), the field-dictionary and
// input-reconstruction layers (the Hachoir/Peach substitutes), and the five
// re-authored benchmark applications. See DESIGN.md for the package
// inventory and the Analyzer/Hunter/Scheduler layer diagram.
//
// The pipeline itself is three layers: an Analyzer (stages 1–3, once per
// application), per-site Hunters (the Figure 7 enforcement loop, each with a
// private solver), and a Scheduler that fans site hunts across a bounded
// worker pool. Per-site seed derivation makes parallel and sequential runs
// produce identical verdicts.
//
// The execution surface is job-based (the paper's §4 distributed work-queue
// role): a sweep decomposes into serializable Jobs — per-site hunts,
// same-path experiments, success-rate experiments — executed by a Backend.
// LocalBackend runs jobs on an in-process goroutine pool; ExecBackend shards
// them across spawned diode-worker processes. Every job carries its fully
// derived seed, so verdicts are byte-identical on any backend at any worker
// count, results stream as jobs complete, and a cancelled context stops a
// sweep mid-flight with partial results.
//
// Quick start:
//
//	app, _ := diode.Application("dillo")
//	jobs, _ := diode.HuntJobs(app, diode.Options{Seed: 1})
//	results, _ := diode.RunJobs(context.Background(),
//	    &diode.LocalBackend{Workers: runtime.GOMAXPROCS(0)}, jobs)
//	for _, r := range results {
//	    fmt.Println(r.Site, r.Verdict)
//	}
//
// The batch-synchronous Scheduler API (NewScheduler + RunAll, with
// context-aware variants) remains first-class for single-application use,
// and the pre-scheduler Engine API (NewEngine + RunAll) remains available as
// a thin compatibility wrapper with identical results.
package diode

import (
	"context"

	"diode/internal/absint"
	"diode/internal/apps"
	"diode/internal/cache"
	"diode/internal/core"
	"diode/internal/discover"
	"diode/internal/dispatch"
	"diode/internal/report"
	"diode/internal/solver"
)

// App is a benchmark application: a guest program, its input format with a
// seed input, and the paper's per-site expectations.
type App = apps.App

// PaperSite is one row of the paper's evaluation tables for an application.
type PaperSite = apps.PaperSite

// Class is the Table 1 site classification.
type Class = apps.Class

// Site classifications (Table 1 columns).
const (
	ClassExposed   = apps.ClassExposed
	ClassUnsat     = apps.ClassUnsat
	ClassPrevented = apps.ClassPrevented
)

// DiscoveredSite is a structured overflow-site record from the static
// discovery pass: kind (alloc | arith), enclosing function, stable node
// path, rendered expression and static taint sources. App.Discovered
// returns them; alloc-kind sites are the hunt targets.
type DiscoveredSite = discover.Site

// Discovered site kinds.
const (
	SiteKindAlloc = discover.KindAlloc
	SiteKindArith = discover.KindArith
)

// DiscoverVersion is the discovery-pass revision; it participates in job
// cache keys so stale site vocabularies miss cleanly.
const DiscoverVersion = discover.Version

// FormatDiscovered renders discovered sites as the tab-aligned listing
// `diode -sites` prints (pure rows, safe to diff against goldens).
func FormatDiscovered(sites []DiscoveredSite) string { return discover.Format(sites) }

// Triage is the static value-range triage verdict attached to discovered
// sites by the abstract-interpretation pass (App.Triaged).
type Triage = discover.Triage

// Triage verdicts.
const (
	// TriageSafe: the site's value provably never wraps (or the site never
	// executes); its overflow constraint is unsatisfiable.
	TriageSafe = discover.TriageSafe
	// TriageMustOverflow: every execution reaching the site wraps.
	TriageMustOverflow = discover.TriageMustOverflow
	// TriageUnknown: the analysis cannot decide; the site is hunted
	// dynamically as usual.
	TriageUnknown = discover.TriageUnknown
)

// AbsintVersion is the static-triage pass revision; it participates in job
// cache keys so results computed under an older triage miss cleanly.
const AbsintVersion = absint.Version

// Triaged returns the application's discovered sites annotated with the
// static value-range triage verdict and bounds.
func Triaged(app *App) ([]DiscoveredSite, error) { return app.Triaged() }

// FormatTriage renders triaged sites as the tab-aligned listing
// `diode -triage` prints (pure rows, safe to diff against goldens).
func FormatTriage(sites []DiscoveredSite) string { return discover.FormatTriage(sites) }

// Options configure the pipeline. The zero value uses sensible defaults; set
// Seed for reproducible hunts and Parallelism for concurrent site hunts.
type Options = core.Options

// Analyzer runs stages 1–3 once per application, producing immutable
// Targets.
type Analyzer = core.Analyzer

// Hunter runs the Figure 7 enforcement loop for one site with a private
// solver and input generator.
type Hunter = core.Hunter

// Scheduler fans per-site hunts across a bounded worker pool with
// deterministic per-site seeding.
type Scheduler = core.Scheduler

// SolverStats is a snapshot of solver work counters, aggregated by the
// Scheduler across hunter-local solvers.
type SolverStats = solver.Stats

// Engine is the pre-scheduler façade, kept as a compatibility wrapper.
type Engine = core.Engine

// Target is an analyzed target site: relevant input bytes, symbolic target
// expression, target constraint, and the seed's branch condition sequence.
type Target = core.Target

// Verdict classifies a hunt's outcome.
type Verdict = core.Verdict

// Hunt verdicts.
const (
	VerdictExposed   = core.VerdictExposed
	VerdictUnsat     = core.VerdictUnsat
	VerdictPrevented = core.VerdictPrevented
	VerdictUnknown   = core.VerdictUnknown
)

// SiteResult is the outcome of hunting one site.
type SiteResult = core.SiteResult

// AppResult is the outcome of hunting every site of an application.
type AppResult = core.AppResult

// AppRecord and SiteRecord are persistable result records used by the table
// renderers.
type (
	AppRecord  = report.AppRecord
	SiteRecord = report.SiteRecord
)

// Applications returns every registered benchmark application: the paper's
// five (Dillo 2.1, VLC 0.8.6h, SwfPlay 0.5.5, CWebP 0.3.1, ImageMagick
// 6.5.2) followed by the extended workload suite (GIFView 0.4, TIFThumb
// 0.2).
func Applications() []*App { return apps.All() }

// PaperApplications returns the paper's five benchmark applications in the
// paper's table order.
func PaperApplications() []*App { return apps.Paper() }

// ExtendedApplications returns the extended workload suite: applications
// with no paper counterpart, reported with measured-only columns.
func ExtendedApplications() []*App { return apps.Extended() }

// Application returns a benchmark application by short name ("dillo", "vlc",
// "swfplay", "cwebp", "imagemagick", "gifview", "tifthumb").
func Application(short string) (*App, error) { return apps.ByName(short) }

// ApplicationNames returns the short names of the given applications, for
// usage strings and error messages.
func ApplicationNames(list []*App) []string { return apps.Shorts(list) }

// NewAnalyzer returns a stage 1–3 analyzer for the application.
func NewAnalyzer(app *App, opts Options) *Analyzer { return core.NewAnalyzer(app, opts) }

// NewHunter returns a single-site hunter; opts.Seed seeds its private
// solver directly (use Options.ForSite for the scheduler's derivation).
func NewHunter(app *App, opts Options) *Hunter { return core.NewHunter(app, opts) }

// NewScheduler returns a scheduler that analyzes the application once and
// hunts its sites on a worker pool bounded by opts.Parallelism.
func NewScheduler(app *App, opts Options) *Scheduler { return core.NewScheduler(app, opts) }

// SiteSeed derives the deterministic per-site hunt seed from the run seed
// and the site name.
func SiteSeed(seed int64, site string) int64 { return core.SiteSeed(seed, site) }

// NewEngine returns a DIODE engine for the application (compatibility
// wrapper over NewScheduler; identical results).
func NewEngine(app *App, opts Options) *Engine { return core.New(app, opts) }

// Record converts an engine result into a persistable record for the table
// renderers.
func Record(res *AppResult) *AppRecord { return report.FromResult(res) }

// --- dispatch layer: the job-based execution surface ---

// Job is one serializable unit of work: a per-site hunt, same-path
// experiment or success-rate experiment, identified by (application, site,
// derived seed) and executable by any worker with identical results.
type Job = dispatch.Job

// JobKind discriminates the units of work.
type JobKind = dispatch.Kind

// Job kinds.
const (
	JobHunt        = dispatch.KindHunt
	JobSamePath    = dispatch.KindSamePath
	JobSuccessRate = dispatch.KindSuccessRate
)

// Progress event types.
const (
	JobStarted   = dispatch.EventStarted
	JobIteration = dispatch.EventIteration
	JobFinished  = dispatch.EventFinished
	// JobCacheHit fires instead of the started/finished pair when a job's
	// result is served from the job cache without executing.
	JobCacheHit = dispatch.EventCacheHit
)

// JobResult is the serializable outcome of one Job.
type JobResult = dispatch.Result

// Backend executes batches of jobs, streaming results as they complete.
type Backend = dispatch.Backend

// LocalBackend executes jobs on an in-process goroutine pool.
type LocalBackend = dispatch.Local

// ExecBackend shards jobs across spawned diode-worker processes — the
// multi-process deployment of the §4 work-queue role.
type ExecBackend = dispatch.Exec

// JobEvent is a progress observation (job started / enforcement iteration /
// finished) emitted by backends to a JobSink for live output.
type JobEvent = dispatch.Event

// JobSink receives progress events; it must be safe for concurrent calls.
type JobSink = dispatch.Sink

// JobCache is the content-addressed cache of the execution surface: it
// memoizes analysis Targets per (program fingerprint, options subset) and
// serves whole job Results — from memory, and from an optional on-disk store
// shared across processes — so repeated and incremental sweeps skip analysis
// and hunts entirely. Share one JobCache across backends and runs to make
// warm sweeps near-free; cached results are byte-identical to executed ones.
type JobCache = dispatch.JobCache

// JobCacheConfig configures a JobCache (on-disk store directory, bounds,
// or disabling result caching).
type JobCacheConfig = dispatch.CacheConfig

// CacheStats is a snapshot of cache activity: result hits/misses, disk
// stores, corrupt-entry rejections, and analysis runs vs memoized hits.
type CacheStats = cache.Stats

// NewJobCache returns a job cache for the given configuration; the zero
// configuration is a pure in-memory cache. Construction cannot fail — an
// unusable cache directory degrades to memory-only behavior.
func NewJobCache(cfg JobCacheConfig) *JobCache { return dispatch.NewJobCache(cfg) }

// JobOptions is the serializable engine-options subset a Job carries.
type JobOptions = dispatch.Options

// JobOptionsFrom extracts the serializable subset from engine options.
func JobOptionsFrom(o Options) JobOptions { return dispatch.OptionsFrom(o) }

// RunJobs runs the jobs on the backend and collects the streamed results
// (completion order; resolve by JobID). On cancellation it returns the
// partial results together with ctx.Err().
func RunJobs(ctx context.Context, b Backend, jobs []Job) ([]JobResult, error) {
	return dispatch.Collect(ctx, b, jobs)
}

// HuntJobs analyzes the application and plans one hunt job per target site,
// with per-site seeds derived from opts.Seed exactly as a Scheduler would
// derive them — running the jobs on any Backend reproduces RunAll's
// verdicts.
func HuntJobs(app *App, opts Options) ([]Job, error) {
	targets, err := core.NewAnalyzer(app, opts).Analyze()
	if err != nil {
		return nil, err
	}
	return HuntJobsFor(app, opts, targets), nil
}

// HuntJobsFor plans one hunt job per already-analyzed target — the planner
// HuntJobs wraps, for callers that hold the Targets themselves (per-site
// introspection alongside the sweep, as cmd/diode does). Job i corresponds
// to targets[i]; the serializable subset of opts travels on every job.
func HuntJobsFor(app *App, opts Options, targets []*Target) []Job {
	subset := dispatch.OptionsFrom(opts)
	jobs := make([]Job, len(targets))
	for i, t := range targets {
		jobs[i] = Job{
			ID:       i,
			Kind:     dispatch.KindHunt,
			App:      app.Short,
			Site:     t.Site,
			SiteKind: string(t.Info.Kind),
			SitePath: t.Info.Path,
			Seed:     core.SiteSeed(opts.Seed, t.Site),
			Opts:     subset,
		}
	}
	return jobs
}

// Table1 renders the paper's Table 1 (target site classification), measured
// values next to the paper's.
func Table1(appList []*App, recs []*AppRecord) string { return report.Table1(appList, recs) }

// Table2 renders the paper's Table 2 (evaluation summary for exposed sites).
func Table2(appList []*App, recs []*AppRecord) string { return report.Table2(appList, recs) }

// TableExtended renders the extended-suite table: every site of the given
// applications with measured-only columns (no paper values exist for them).
func TableExtended(appList []*App, recs []*AppRecord) string {
	return report.TableExtended(appList, recs)
}

// TableDiscovered renders the static site-discovery summary: discovered
// sites by kind per application, next to the curated paper-table sizes.
func TableDiscovered(appList []*App) (string, error) {
	return report.TableDiscovered(appList)
}

// TableTriage renders the static value-range triage summary: discovered
// sites by triage verdict per application, plus the arith hunts the triage
// prunes from an extended sweep.
func TableTriage(appList []*App) (string, error) {
	return report.TableTriage(appList)
}
