# Local developer entry points mirroring the CI pipeline (.github/workflows/
# ci.yml). The container/CI installs staticcheck; locally `make lint` runs it
# when present and prints the install hint otherwise, so `make check` works
# on a bare Go toolchain.

GO ?= go
STATICCHECK_VERSION ?= 2024.1.1

.PHONY: all build test race lint vet staticcheck check bench-smoke fuzz-smoke worker-smoke

all: check test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; run:"; \
		echo "  $(GO) install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)"; \
	fi

# lint = gofmt (check only) + go vet + staticcheck, matching CI.
lint: vet staticcheck
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

check: lint build

# One iteration of every benchmark — includes BenchmarkSuccessRateBatched,
# whose one-shot-vs-batched row-parity assertions run even at 1x.
bench-smoke:
	$(GO) test -run '^$$' -bench=. -benchtime=1x ./...

# Short live-fuzz pass: the per-format fix-up invariant targets, the
# cross-layer FuzzHunt engine-robustness target, and the dispatch-layer
# Job/Result codec round-trip target.
fuzz-smoke:
	@for target in FuzzSPNG FuzzSWAV FuzzSJPG FuzzSWEBP FuzzSXWD FuzzSGIF FuzzSTIF; do \
		$(GO) test -run "^$$target$$" -fuzz "^$$target$$" -fuzztime 5s ./internal/formats || exit 1; \
	done
	$(GO) test -run '^FuzzHunt$$' -fuzz '^FuzzHunt$$' -fuzztime 5s ./internal/core
	$(GO) test -run '^FuzzJobResultCodec$$' -fuzz '^FuzzJobResultCodec$$' -fuzztime 5s ./internal/dispatch

# End-to-end work-queue smoke: build the real worker binary, pipe a three-job
# batch through its stdin/stdout protocol, and assert the verdicts (the
# classification is seed-stable, so any seed works). Mirrors the CI step.
worker-smoke:
	$(GO) build -o bin/diode-worker ./cmd/diode-worker
	@out=$$(printf '%s\n' \
	  '{"id":1,"kind":"hunt","app":"dillo","site":"dillo:png.c@203","seed":7,"opts":{}}' \
	  '{"id":2,"kind":"hunt","app":"vlc","site":"vlc:block.c@54","seed":8,"opts":{}}' \
	  '{"id":3,"kind":"hunt","app":"gifview","site":"gifview:gif.c@183","seed":9,"opts":{}}' \
	  | ./bin/diode-worker); \
	results=$$(printf '%s\n' "$$out" | grep -c '"type":"result"'); \
	exposed=$$(printf '%s\n' "$$out" | grep -c '"verdict":"exposed"'); \
	unsat=$$(printf '%s\n' "$$out" | grep -c '"verdict":"unsatisfiable"'); \
	if [ "$$results" -ne 3 ] || [ "$$exposed" -ne 2 ] || [ "$$unsat" -ne 1 ]; then \
	  echo "worker smoke failed: results=$$results exposed=$$exposed unsat=$$unsat (want 3/2/1)"; \
	  printf '%s\n' "$$out"; exit 1; \
	fi; \
	echo "worker smoke ok: 3 jobs -> 2 exposed, 1 unsatisfiable"
