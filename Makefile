# Local developer entry points mirroring the CI pipeline (.github/workflows/
# ci.yml). The container/CI installs staticcheck; locally `make lint` runs it
# when present and prints the install hint otherwise, so `make check` works
# on a bare Go toolchain.

GO ?= go
STATICCHECK_VERSION ?= 2024.1.1

.PHONY: all build test race lint diodelint vet staticcheck check bench-smoke bench-json cache-smoke discover-smoke triage-smoke fuzz-smoke worker-smoke

all: check test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; run:"; \
		echo "  $(GO) install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)"; \
	fi

# diodelint = the repo-specific structural linter (cmd/diodelint): checks the
# dispatch cache-key flip tables cover every Options/Job field and the
# threaded interpreter's exec switch handles every op* constant.
diodelint:
	$(GO) run ./cmd/diodelint ./internal/dispatch ./internal/interp

# lint = gofmt (check only) + go vet + staticcheck + diodelint, matching CI.
lint: vet staticcheck diodelint
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

check: lint build

# One iteration of every benchmark — includes BenchmarkSuccessRateBatched,
# whose one-shot-vs-batched row-parity assertions run even at 1x.
bench-smoke:
	$(GO) test -run '^$$' -bench=. -benchtime=1x ./...

# Machine-readable benchmark artifact: one iteration of the headline
# benchmarks (table regeneration, guest execution, dispatch overhead, incremental solving,
# warm-vs-cold caching, sampling strategies, portfolio solving), parsed into
# BENCH_SMOKE.json by cmd/benchjson. CI uploads the JSON so metric history
# survives as build artifacts.
bench-json:
	$(GO) build -o bin/benchjson ./cmd/benchjson
	$(GO) test -run '^$$' \
	  -bench '^(BenchmarkTable1|BenchmarkMachineSteps|BenchmarkGuestExec|BenchmarkDispatchLocal|BenchmarkHuntIncremental|BenchmarkSweepWarmVsCold|BenchmarkSampleModels|BenchmarkPortfolioSolve|BenchmarkTriagePrune)$$' \
	  -benchtime=1x . > BENCH_SMOKE.txt
	cat BENCH_SMOKE.txt
	./bin/benchjson -o BENCH_SMOKE.json < BENCH_SMOKE.txt
	@echo "wrote BENCH_SMOKE.json"

# Cross-process cache smoke: run diode-tables twice against one shared
# -cache-dir and assert the warm run's stdout is byte-identical while every
# job was served from the cache (hits>0, misses=0 on the stderr stats line).
# Table 1 has no wall-clock columns, so byte-equality is exact.
cache-smoke:
	$(GO) build -o bin/diode-tables ./cmd/diode-tables
	@dir=$$(mktemp -d); out=$$(mktemp -d); \
	./bin/diode-tables -table 1 -cache-dir "$$dir" >"$$out/cold.txt" 2>"$$out/cold.err" || { cat "$$out/cold.err"; exit 1; }; \
	./bin/diode-tables -table 1 -cache-dir "$$dir" >"$$out/warm.txt" 2>"$$out/warm.err" || { cat "$$out/warm.err"; exit 1; }; \
	cmp "$$out/cold.txt" "$$out/warm.txt" || { echo "cache smoke failed: warm tables differ from cold"; exit 1; }; \
	grep -q 'cache: hits=0 ' "$$out/cold.err" || { echo "cache smoke failed: cold run reported hits"; cat "$$out/cold.err"; exit 1; }; \
	warm_line=$$(grep 'cache:' "$$out/warm.err"); \
	case "$$warm_line" in *" misses=0 "*) ;; *) echo "cache smoke failed: warm run executed jobs: $$warm_line"; exit 1;; esac; \
	case "$$warm_line" in *"cache: hits=0 "*) echo "cache smoke failed: warm run had no hits: $$warm_line"; exit 1;; esac; \
	echo "cache smoke ok: $$warm_line"; \
	rm -rf "$$dir" "$$out"

# Site-discovery smoke: run `diode -sites` for every application and diff the
# listing against the checked-in goldens (internal/apps/testdata/discovered).
# Catches a discovery pass or guest-program edit that changes the site surface
# without a matching `go test ./internal/apps -update-discovered` run, and
# proves the CLI listing is byte-identical to what the library emits.
discover-smoke:
	$(GO) build -o bin/diode ./cmd/diode
	@for app in dillo vlc swfplay cwebp imagemagick gifview tifthumb; do \
		./bin/diode -app "$$app" -sites > "bin/$$app.sites" || exit 1; \
		cmp "bin/$$app.sites" "internal/apps/testdata/discovered/$$app.golden" || { \
			echo "discover smoke failed: $$app listing differs from golden"; exit 1; }; \
		rm -f "bin/$$app.sites"; \
	done; \
	echo "discover smoke ok: 7 listings match goldens"

# Triage smoke: run `diode -triage` for every application and diff the
# abstract-interpretation triage listing against the checked-in goldens
# (internal/apps/testdata/triage). Catches an absint or guest-program edit
# that changes a triage verdict without a matching
# `go test ./internal/apps -update-triage` run.
triage-smoke:
	$(GO) build -o bin/diode ./cmd/diode
	@for app in dillo vlc swfplay cwebp imagemagick gifview tifthumb; do \
		./bin/diode -app "$$app" -triage > "bin/$$app.triage" || exit 1; \
		cmp "bin/$$app.triage" "internal/apps/testdata/triage/$$app.golden" || { \
			echo "triage smoke failed: $$app listing differs from golden"; exit 1; }; \
		rm -f "bin/$$app.triage"; \
	done; \
	echo "triage smoke ok: 7 listings match goldens"

# Short live-fuzz pass: the per-format fix-up invariant targets, the
# cross-layer FuzzHunt engine-robustness target, the dispatch-layer
# Job/Result codec round-trip target, and the differential
# threaded-vs-tree-walker Machine parity target.
fuzz-smoke:
	@for target in FuzzSPNG FuzzSWAV FuzzSJPG FuzzSWEBP FuzzSXWD FuzzSGIF FuzzSTIF; do \
		$(GO) test -run "^$$target$$" -fuzz "^$$target$$" -fuzztime 5s ./internal/formats || exit 1; \
	done
	$(GO) test -run '^FuzzHunt$$' -fuzz '^FuzzHunt$$' -fuzztime 5s ./internal/core
	$(GO) test -run '^FuzzJobResultCodec$$' -fuzz '^FuzzJobResultCodec$$' -fuzztime 5s ./internal/dispatch
	$(GO) test -run '^FuzzMachineParity$$' -fuzz '^FuzzMachineParity$$' -fuzztime 5s ./internal/interp
	$(GO) test -run '^FuzzAbsintSoundness$$' -fuzz '^FuzzAbsintSoundness$$' -fuzztime 5s ./internal/absint

# End-to-end work-queue smoke: build the real worker binary, pipe a three-job
# batch through its stdin/stdout protocol, and assert the verdicts (the
# classification is seed-stable, so any seed works). Mirrors the CI step.
worker-smoke:
	$(GO) build -o bin/diode-worker ./cmd/diode-worker
	@out=$$(printf '%s\n' \
	  '{"id":1,"kind":"hunt","app":"dillo","site":"dillo:png.c@203","seed":7,"opts":{}}' \
	  '{"id":2,"kind":"hunt","app":"vlc","site":"vlc:block.c@54","seed":8,"opts":{}}' \
	  '{"id":3,"kind":"hunt","app":"gifview","site":"gifview:gif.c@183","seed":9,"opts":{}}' \
	  | ./bin/diode-worker); \
	results=$$(printf '%s\n' "$$out" | grep -c '"type":"result"'); \
	exposed=$$(printf '%s\n' "$$out" | grep -c '"verdict":"exposed"'); \
	unsat=$$(printf '%s\n' "$$out" | grep -c '"verdict":"unsatisfiable"'); \
	if [ "$$results" -ne 3 ] || [ "$$exposed" -ne 2 ] || [ "$$unsat" -ne 1 ]; then \
	  echo "worker smoke failed: results=$$results exposed=$$exposed unsat=$$unsat (want 3/2/1)"; \
	  printf '%s\n' "$$out"; exit 1; \
	fi; \
	echo "worker smoke ok: 3 jobs -> 2 exposed, 1 unsatisfiable"
