# Local developer entry points mirroring the CI pipeline (.github/workflows/
# ci.yml). The container/CI installs staticcheck; locally `make lint` runs it
# when present and prints the install hint otherwise, so `make check` works
# on a bare Go toolchain.

GO ?= go
STATICCHECK_VERSION ?= 2024.1.1

.PHONY: all build test race lint vet staticcheck check bench-smoke fuzz-smoke

all: check test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; run:"; \
		echo "  $(GO) install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)"; \
	fi

# lint = gofmt (check only) + go vet + staticcheck, matching CI.
lint: vet staticcheck
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

check: lint build

# One iteration of every benchmark — includes BenchmarkSuccessRateBatched,
# whose one-shot-vs-batched row-parity assertions run even at 1x.
bench-smoke:
	$(GO) test -run '^$$' -bench=. -benchtime=1x ./...

# Short live-fuzz pass: the per-format fix-up invariant targets and the
# cross-layer FuzzHunt engine-robustness target.
fuzz-smoke:
	@for target in FuzzSPNG FuzzSWAV FuzzSJPG FuzzSWEBP FuzzSXWD FuzzSGIF FuzzSTIF; do \
		$(GO) test -run "^$$target$$" -fuzz "^$$target$$" -fuzztime 5s ./internal/formats || exit 1; \
	done
	$(GO) test -run '^FuzzHunt$$' -fuzz '^FuzzHunt$$' -fuzztime 5s ./internal/core
