package lang

// Clone returns a deep copy of the program with its finalized state reset.
// Labels and site names already assigned (by hand or by a prior Finalize)
// are part of the AST and survive the copy, so re-finalizing a clone is
// stable: branch labels and allocation-site names match the original even
// after statements are inserted. Program transformations (the discover
// package's arith probes) clone, edit, then Finalize.
func (p *Program) Clone() *Program {
	out := NewProgram(p.Name)
	for name, f := range p.Funcs {
		out.Funcs[name] = &Func{
			Name:   f.Name,
			Params: append([]string(nil), f.Params...),
			Body:   cloneBlock(f.Body),
		}
	}
	return out
}

func cloneBlock(b Block) Block {
	if b == nil {
		return nil
	}
	out := make(Block, len(b))
	for i, s := range b {
		out[i] = cloneStmt(s)
	}
	return out
}

func cloneStmt(s Stmt) Stmt {
	switch x := s.(type) {
	case Assign:
		return Assign{Var: x.Var, E: CloneExpr(x.E)}
	case Alloc:
		return Alloc{Var: x.Var, Site: x.Site, Size: CloneExpr(x.Size)}
	case Store:
		return Store{Ptr: CloneExpr(x.Ptr), Off: CloneExpr(x.Off), Val: CloneExpr(x.Val)}
	case If:
		return If{Label: x.Label, Cond: cloneBool(x.Cond), Then: cloneBlock(x.Then), Else: cloneBlock(x.Else)}
	case While:
		return While{Label: x.Label, Cond: cloneBool(x.Cond), Body: cloneBlock(x.Body)}
	case ExprStmt:
		return ExprStmt{E: CloneExpr(x.E)}
	case Return:
		if x.E == nil {
			return Return{}
		}
		return Return{E: CloneExpr(x.E)}
	default:
		// AbortStmt, WarnStmt: value types with no nested nodes.
		return s
	}
}

// CloneExpr returns a deep copy of an expression tree.
func CloneExpr(e Expr) Expr {
	switch x := e.(type) {
	case Bin:
		return Bin{Op: x.Op, A: CloneExpr(x.A), B: CloneExpr(x.B)}
	case Un:
		return Un{Neg: x.Neg, A: CloneExpr(x.A)}
	case Cvt:
		return Cvt{W: x.W, Signed: x.Signed, A: CloneExpr(x.A)}
	case InByte:
		return InByte{Idx: CloneExpr(x.Idx)}
	case LoadExpr:
		return LoadExpr{Ptr: CloneExpr(x.Ptr), Off: CloneExpr(x.Off)}
	case CallExpr:
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = CloneExpr(a)
		}
		return CallExpr{Fn: x.Fn, Args: args}
	default:
		// Lit, VarRef, InLen: value types with no nested nodes.
		return e
	}
}

func cloneBool(b BoolExpr) BoolExpr {
	switch x := b.(type) {
	case Cmp:
		return Cmp{Op: x.Op, A: CloneExpr(x.A), B: CloneExpr(x.B)}
	case NotE:
		return NotE{A: cloneBool(x.A)}
	case AndE:
		return AndE{A: cloneBool(x.A), B: cloneBool(x.B)}
	case OrE:
		return OrE{A: cloneBool(x.A), B: cloneBool(x.B)}
	default:
		return b
	}
}
