// Package lang defines the core imperative language of the paper's Figure 3:
// arithmetic and boolean expressions over fixed-width machine integers,
// assignments, dynamic memory allocation, memory reads and writes,
// conditionals, loops and sequences. It extends the figure with the features
// the real benchmark applications need — procedures with parameters and
// return values, input-byte access (the InpVar class of variables), warning
// and abort statements (png_warning / png_error analogues) — so that the
// five guest applications can be re-authored faithfully.
//
// Programs built from this AST run on the concrete+symbolic interpreter in
// package interp, which implements the paper's Figures 4–6 semantics.
package lang

import "fmt"

// Width is an operand width in bits: 8, 16, 32 or 64.
type Width = uint8

// Expr is an arithmetic expression (Aexp in Figure 3, extended).
type Expr interface{ isExpr() }

// BoolExpr is a boolean expression (Bexp in Figure 3).
type BoolExpr interface{ isBool() }

// Stmt is a statement (Stmt in Figure 3, extended).
type Stmt interface{ isStmt() }

// Block is a statement sequence (Seq in Figure 3).
type Block []Stmt

// BinOp enumerates binary arithmetic operators.
type BinOp uint8

// Binary operators.
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpUDiv
	OpURem
	OpAnd
	OpOr
	OpXor
	OpShl
	OpLShr
	OpAShr
)

var binOpNames = [...]string{"add", "sub", "mul", "udiv", "urem", "and", "or", "xor", "shl", "lshr", "ashr"}

func (op BinOp) String() string { return binOpNames[op] }

// CmpOp enumerates comparison operators.
type CmpOp uint8

// Comparison operators.
const (
	CmpEq CmpOp = iota
	CmpNe
	CmpUlt
	CmpUle
	CmpUgt
	CmpUge
	CmpSlt
	CmpSle
	CmpSgt
	CmpSge
)

var cmpOpNames = [...]string{"==", "!=", "<u", "<=u", ">u", ">=u", "<s", "<=s", ">s", ">=s"}

func (op CmpOp) String() string { return cmpOpNames[op] }

// --- expressions ---

// Lit is an integer literal of explicit width.
type Lit struct {
	W Width
	V uint64
}

// VarRef reads a program variable.
type VarRef struct{ Name string }

// Bin applies a binary operator; both operands must have the same width.
type Bin struct {
	Op   BinOp
	A, B Expr
}

// Un applies a unary operator (bitwise not or two's complement negation).
type Un struct {
	Neg bool // true: negation, false: bitwise not
	A   Expr
}

// Cvt converts the operand to width W by zero-extension, sign-extension or
// truncation, depending on the operand's width and the Signed flag.
type Cvt struct {
	W      Width
	Signed bool // sign-extend on widening
	A      Expr
}

// InByte reads the input byte at the given offset. This is the language's
// InpVar access: the result is tainted with the byte's label and, in
// symbolic mode, carries the input-byte variable.
type InByte struct{ Idx Expr }

// InLen evaluates to the input length as an untainted 32-bit value.
type InLen struct{}

// LoadExpr reads memory: block pointed to by Ptr, at offset Off (in cells).
type LoadExpr struct{ Ptr, Off Expr }

// CallExpr invokes a procedure and yields its return value.
type CallExpr struct {
	Fn   string
	Args []Expr
}

func (Lit) isExpr()      {}
func (VarRef) isExpr()   {}
func (Bin) isExpr()      {}
func (Un) isExpr()       {}
func (Cvt) isExpr()      {}
func (InByte) isExpr()   {}
func (InLen) isExpr()    {}
func (LoadExpr) isExpr() {}
func (CallExpr) isExpr() {}

// --- boolean expressions ---

// BoolLit is the constant true or false.
type BoolLit struct{ V bool }

// Cmp compares two arithmetic expressions of equal width.
type Cmp struct {
	Op   CmpOp
	A, B Expr
}

// NotE negates a boolean expression.
type NotE struct{ A BoolExpr }

// AndE is conjunction. Both operands are always evaluated (no short
// circuit), so the recorded symbolic branch condition covers the whole
// expression; guard memory accesses with nested ifs, not with AndE.
type AndE struct{ A, B BoolExpr }

// OrE is disjunction. Both operands are always evaluated.
type OrE struct{ A, B BoolExpr }

func (BoolLit) isBool() {}
func (Cmp) isBool()     {}
func (NotE) isBool()    {}
func (AndE) isBool()    {}
func (OrE) isBool()     {}

// --- statements ---

// Assign sets a variable: x = A.
type Assign struct {
	Var string
	E   Expr
}

// Alloc allocates a memory block of Size cells: x = alloc(A). Site is the
// allocation-site name used in reports (e.g. "png.c@203"); it must be unique
// within a program. When empty, Finalize synthesizes a deterministic name
// from the statement's node path, so unannotated guest programs remain
// huntable.
type Alloc struct {
	Var  string
	Site string
	Size Expr
}

// Store writes memory: Ptr[Off] = Val (cell granularity).
type Store struct{ Ptr, Off, Val Expr }

// If is a conditional. Label identifies the branch for path recording; when
// empty, Program.Finalize assigns one.
type If struct {
	Label string
	Cond  BoolExpr
	Then  Block
	Else  Block
}

// While is a loop. Label identifies the loop-head branch.
type While struct {
	Label string
	Cond  BoolExpr
	Body  Block
}

// ExprStmt evaluates an expression for its side effects (procedure calls).
type ExprStmt struct{ E Expr }

// Return leaves the current procedure; E may be nil for no value.
type Return struct{ E Expr }

// AbortStmt terminates processing with an error message — the analogue of
// png_error / exit(1): the input is rejected, no memory error occurs.
type AbortStmt struct{ Msg string }

// WarnStmt emits a warning message and continues — the analogue of
// png_warning.
type WarnStmt struct{ Msg string }

func (Assign) isStmt()    {}
func (Alloc) isStmt()     {}
func (Store) isStmt()     {}
func (If) isStmt()        {}
func (While) isStmt()     {}
func (ExprStmt) isStmt()  {}
func (Return) isStmt()    {}
func (AbortStmt) isStmt() {}
func (WarnStmt) isStmt()  {}

// Func is a procedure: call-by-value parameters and an optional return value.
type Func struct {
	Name   string
	Params []string
	Body   Block
}

// AllocSite records one allocation statement found during Finalize: the
// (hand-assigned or synthesized) site name, the enclosing function, and the
// stable node path of the Alloc statement within that function. Sites are
// recorded in traversal order, which is deterministic.
type AllocSite struct {
	Name string
	Func string
	Path string
}

// Program is a set of procedures with a distinguished entry point "main".
type Program struct {
	Name  string
	Funcs map[string]*Func

	finalized  bool
	sites      map[string]bool
	allocSites []AllocSite
}

// NewProgram returns an empty program with the given name.
func NewProgram(name string) *Program {
	return &Program{Name: name, Funcs: make(map[string]*Func)}
}

// AddFunc registers a procedure.
func (p *Program) AddFunc(f *Func) {
	if _, dup := p.Funcs[f.Name]; dup {
		panic("lang: duplicate function " + f.Name)
	}
	p.Funcs[f.Name] = f
}

// Finalize assigns labels to unlabeled branches and site names to unnamed
// allocations (deterministically, by traversal order), assigns every
// statement a stable node path, validates call targets and checks
// allocation-site uniqueness. It must be called once before execution.
func (p *Program) Finalize() error {
	if p.finalized {
		return nil
	}
	if _, ok := p.Funcs["main"]; !ok {
		return fmt.Errorf("lang: program %s has no main", p.Name)
	}
	p.sites = make(map[string]bool)
	p.allocSites = nil
	names := make([]string, 0, len(p.Funcs))
	for n := range p.Funcs {
		names = append(names, n)
	}
	sortStrings(names)
	for _, n := range names {
		f := p.Funcs[n]
		ctr := 0
		if err := p.walkBlock(f, f.Body, &ctr, ""); err != nil {
			return err
		}
	}
	p.finalized = true
	return nil
}

// Sites returns the allocation-site names in the program.
func (p *Program) Sites() []string {
	out := make([]string, 0, len(p.sites))
	for s := range p.sites {
		out = append(out, s)
	}
	sortStrings(out)
	return out
}

// AllocSites returns the allocation sites in traversal order (functions
// sorted by name, statements in program order). Finalize must have
// succeeded first; before that the slice is empty.
func (p *Program) AllocSites() []AllocSite {
	out := make([]AllocSite, len(p.allocSites))
	copy(out, p.allocSites)
	return out
}

// WalkStmts visits every statement of every function in deterministic
// order: functions sorted by name, then statements in traversal order —
// the same order Finalize uses to assign labels and node paths. visit
// receives the enclosing function, the statement's stable node path, and
// the statement itself. The traversal is read-only; visitors must not
// mutate the AST.
func (p *Program) WalkStmts(visit func(f *Func, path string, s Stmt)) {
	names := make([]string, 0, len(p.Funcs))
	for n := range p.Funcs {
		names = append(names, n)
	}
	sortStrings(names)
	for _, n := range names {
		f := p.Funcs[n]
		walkBlockRO(f, f.Body, "", visit)
	}
}

func walkBlockRO(f *Func, b Block, prefix string, visit func(*Func, string, Stmt)) {
	for i, s := range b {
		path := joinPath(prefix, fmt.Sprintf("s%d", i))
		visit(f, path, s)
		switch x := s.(type) {
		case If:
			walkBlockRO(f, x.Then, path+".then", visit)
			walkBlockRO(f, x.Else, path+".else", visit)
		case While:
			walkBlockRO(f, x.Body, path+".body", visit)
		}
	}
}

func joinPath(prefix, seg string) string {
	if prefix == "" {
		return seg
	}
	return prefix + "." + seg
}

func (p *Program) walkBlock(f *Func, b Block, ctr *int, prefix string) error {
	for i := range b {
		if err := p.walkStmt(f, &b[i], ctr, joinPath(prefix, fmt.Sprintf("s%d", i))); err != nil {
			return err
		}
	}
	return nil
}

func (p *Program) walkStmt(f *Func, sp *Stmt, ctr *int, path string) error {
	switch s := (*sp).(type) {
	case If:
		if s.Label == "" {
			s.Label = fmt.Sprintf("%s:%s#%d", p.Name, f.Name, *ctr)
		}
		*ctr++
		if err := p.walkBlock(f, s.Then, ctr, path+".then"); err != nil {
			return err
		}
		if err := p.walkBlock(f, s.Else, ctr, path+".else"); err != nil {
			return err
		}
		*sp = s
	case While:
		if s.Label == "" {
			s.Label = fmt.Sprintf("%s:%s#%d", p.Name, f.Name, *ctr)
		}
		*ctr++
		if err := p.walkBlock(f, s.Body, ctr, path+".body"); err != nil {
			return err
		}
		*sp = s
	case Alloc:
		if s.Site == "" {
			// Zero-annotation guests: synthesize a deterministic name from
			// the statement's stable node path.
			s.Site = fmt.Sprintf("%s:%s#%s", p.Name, f.Name, path)
		}
		if p.sites[s.Site] {
			return fmt.Errorf("lang: duplicate allocation site %q", s.Site)
		}
		p.sites[s.Site] = true
		p.allocSites = append(p.allocSites, AllocSite{Name: s.Site, Func: f.Name, Path: path})
		*sp = s
		if err := p.checkExpr(f, s.Size); err != nil {
			return err
		}
	case Assign:
		return p.checkExpr(f, s.E)
	case Store:
		for _, e := range []Expr{s.Ptr, s.Off, s.Val} {
			if err := p.checkExpr(f, e); err != nil {
				return err
			}
		}
	case ExprStmt:
		return p.checkExpr(f, s.E)
	case Return:
		if s.E != nil {
			return p.checkExpr(f, s.E)
		}
	}
	return nil
}

func (p *Program) checkExpr(f *Func, e Expr) error {
	switch x := e.(type) {
	case CallExpr:
		callee, ok := p.Funcs[x.Fn]
		if !ok {
			return fmt.Errorf("lang: %s calls undefined function %q", f.Name, x.Fn)
		}
		if len(callee.Params) != len(x.Args) {
			return fmt.Errorf("lang: %s calls %q with %d args, want %d",
				f.Name, x.Fn, len(x.Args), len(callee.Params))
		}
		for _, a := range x.Args {
			if err := p.checkExpr(f, a); err != nil {
				return err
			}
		}
	case Bin:
		if err := p.checkExpr(f, x.A); err != nil {
			return err
		}
		return p.checkExpr(f, x.B)
	case Un:
		return p.checkExpr(f, x.A)
	case Cvt:
		return p.checkExpr(f, x.A)
	case InByte:
		return p.checkExpr(f, x.Idx)
	case LoadExpr:
		if err := p.checkExpr(f, x.Ptr); err != nil {
			return err
		}
		return p.checkExpr(f, x.Off)
	}
	return nil
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
