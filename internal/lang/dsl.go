package lang

// This file provides compact constructor helpers used to author the guest
// benchmark applications. They build the exported AST structs; nothing here
// adds semantics.

// U8 returns an 8-bit literal.
func U8(v uint64) Expr { return Lit{W: 8, V: v & 0xFF} }

// U16 returns a 16-bit literal.
func U16(v uint64) Expr { return Lit{W: 16, V: v & 0xFFFF} }

// U32 returns a 32-bit literal.
func U32(v uint64) Expr { return Lit{W: 32, V: v & 0xFFFFFFFF} }

// U64 returns a 64-bit literal.
func U64(v uint64) Expr { return Lit{W: 64, V: v} }

// V reads a variable.
func V(name string) Expr { return VarRef{Name: name} }

// Binary operator helpers.

// Add returns a + b.
func Add(a, b Expr) Expr { return Bin{Op: OpAdd, A: a, B: b} }

// Sub returns a - b.
func Sub(a, b Expr) Expr { return Bin{Op: OpSub, A: a, B: b} }

// Mul returns a * b.
func Mul(a, b Expr) Expr { return Bin{Op: OpMul, A: a, B: b} }

// UDiv returns a / b (unsigned).
func UDiv(a, b Expr) Expr { return Bin{Op: OpUDiv, A: a, B: b} }

// URem returns a % b (unsigned).
func URem(a, b Expr) Expr { return Bin{Op: OpURem, A: a, B: b} }

// BitAnd returns a & b.
func BitAnd(a, b Expr) Expr { return Bin{Op: OpAnd, A: a, B: b} }

// BitOr returns a | b.
func BitOr(a, b Expr) Expr { return Bin{Op: OpOr, A: a, B: b} }

// BitXor returns a ^ b.
func BitXor(a, b Expr) Expr { return Bin{Op: OpXor, A: a, B: b} }

// Shl returns a << b.
func Shl(a, b Expr) Expr { return Bin{Op: OpShl, A: a, B: b} }

// LShr returns a >> b (logical).
func LShr(a, b Expr) Expr { return Bin{Op: OpLShr, A: a, B: b} }

// AShr returns a >> b (arithmetic).
func AShr(a, b Expr) Expr { return Bin{Op: OpAShr, A: a, B: b} }

// BitNot returns ^a.
func BitNot(a Expr) Expr { return Un{Neg: false, A: a} }

// Neg returns -a.
func Neg(a Expr) Expr { return Un{Neg: true, A: a} }

// ZX zero-extends (or truncates) a to width w.
func ZX(w Width, a Expr) Expr { return Cvt{W: w, A: a} }

// SX sign-extends (or truncates) a to width w.
func SX(w Width, a Expr) Expr { return Cvt{W: w, Signed: true, A: a} }

// In reads input byte at offset idx.
func In(idx Expr) Expr { return InByte{Idx: idx} }

// InAt reads input byte at a constant offset.
func InAt(idx uint64) Expr { return InByte{Idx: U32(idx)} }

// Len is the input length (32-bit).
func Len() Expr { return InLen{} }

// Load reads ptr[off].
func Load(ptr, off Expr) Expr { return LoadExpr{Ptr: ptr, Off: off} }

// Call invokes a procedure as an expression.
func Call(fn string, args ...Expr) Expr { return CallExpr{Fn: fn, Args: args} }

// Comparison helpers.

// Eq returns a == b.
func Eq(a, b Expr) BoolExpr { return Cmp{Op: CmpEq, A: a, B: b} }

// Ne returns a != b.
func Ne(a, b Expr) BoolExpr { return Cmp{Op: CmpNe, A: a, B: b} }

// Ult returns a < b (unsigned).
func Ult(a, b Expr) BoolExpr { return Cmp{Op: CmpUlt, A: a, B: b} }

// Ule returns a <= b (unsigned).
func Ule(a, b Expr) BoolExpr { return Cmp{Op: CmpUle, A: a, B: b} }

// Ugt returns a > b (unsigned).
func Ugt(a, b Expr) BoolExpr { return Cmp{Op: CmpUgt, A: a, B: b} }

// Uge returns a >= b (unsigned).
func Uge(a, b Expr) BoolExpr { return Cmp{Op: CmpUge, A: a, B: b} }

// Slt returns a < b (signed).
func Slt(a, b Expr) BoolExpr { return Cmp{Op: CmpSlt, A: a, B: b} }

// Sgt returns a > b (signed).
func Sgt(a, b Expr) BoolExpr { return Cmp{Op: CmpSgt, A: a, B: b} }

// Not negates a boolean expression.
func Not(a BoolExpr) BoolExpr { return NotE{A: a} }

// And conjoins two boolean expressions (both sides always evaluated).
func And(a, b BoolExpr) BoolExpr { return AndE{A: a, B: b} }

// Or disjoins two boolean expressions (both sides always evaluated).
func Or(a, b BoolExpr) BoolExpr { return OrE{A: a, B: b} }

// Statement helpers.

// Let assigns an expression to a variable.
func Let(name string, e Expr) Stmt { return Assign{Var: name, E: e} }

// AllocAt allocates size cells into variable name at the named site.
func AllocAt(name, site string, size Expr) Stmt {
	return Alloc{Var: name, Site: site, Size: size}
}

// Put stores val at ptr[off].
func Put(ptr, off, val Expr) Stmt { return Store{Ptr: ptr, Off: off, Val: val} }

// IfThen returns an if with no else branch.
func IfThen(label string, cond BoolExpr, then ...Stmt) Stmt {
	return If{Label: label, Cond: cond, Then: then}
}

// IfElse returns an if with both branches.
func IfElse(label string, cond BoolExpr, then Block, els Block) Stmt {
	return If{Label: label, Cond: cond, Then: then, Else: els}
}

// Loop returns a while loop.
func Loop(label string, cond BoolExpr, body ...Stmt) Stmt {
	return While{Label: label, Cond: cond, Body: body}
}

// Do evaluates an expression for effect.
func Do(e Expr) Stmt { return ExprStmt{E: e} }

// Ret returns a value from the current procedure.
func Ret(e Expr) Stmt { return Return{E: e} }

// RetVoid returns without a value.
func RetVoid() Stmt { return Return{} }

// Abort rejects the input with a message (png_error analogue).
func Abort(msg string) Stmt { return AbortStmt{Msg: msg} }

// Warn emits a warning and continues (png_warning analogue).
func Warn(msg string) Stmt { return WarnStmt{Msg: msg} }

// Fn builds a Func.
func Fn(name string, params []string, body ...Stmt) *Func {
	return &Func{Name: name, Params: params, Body: body}
}
