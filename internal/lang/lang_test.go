package lang

import "testing"

func TestFinalizeRequiresMain(t *testing.T) {
	p := NewProgram("x")
	p.AddFunc(Fn("helper", nil, RetVoid()))
	if err := p.Finalize(); err == nil {
		t.Fatal("program without main finalized")
	}
}

func TestFinalizeAssignsLabels(t *testing.T) {
	p := NewProgram("x")
	p.AddFunc(Fn("main", nil,
		IfThen("", Eq(U32(1), U32(1)), Let("a", U32(1))),
		Loop("", Ult(V("a"), U32(3)), Let("a", Add(V("a"), U32(1)))),
	))
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	main := p.Funcs["main"]
	ifStmt := main.Body[0].(If)
	loopStmt := main.Body[1].(While)
	if ifStmt.Label == "" || loopStmt.Label == "" {
		t.Fatal("labels not assigned")
	}
	if ifStmt.Label == loopStmt.Label {
		t.Fatal("labels not unique")
	}
}

func TestFinalizeRejectsDuplicateSites(t *testing.T) {
	p := NewProgram("x")
	p.AddFunc(Fn("main", nil,
		AllocAt("a", "s@1", U32(4)),
		AllocAt("b", "s@1", U32(4)),
	))
	if err := p.Finalize(); err == nil {
		t.Fatal("duplicate allocation site accepted")
	}
}

func TestFinalizeRejectsUnknownCall(t *testing.T) {
	p := NewProgram("x")
	p.AddFunc(Fn("main", nil, Do(Call("nope"))))
	if err := p.Finalize(); err == nil {
		t.Fatal("call to undefined function accepted")
	}
}

func TestFinalizeRejectsArityMismatch(t *testing.T) {
	p := NewProgram("x")
	p.AddFunc(Fn("f", []string{"a", "b"}, RetVoid()))
	p.AddFunc(Fn("main", nil, Do(Call("f", U32(1)))))
	if err := p.Finalize(); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

func TestFinalizeRejectsMissingSiteName(t *testing.T) {
	p := NewProgram("x")
	p.AddFunc(Fn("main", nil, Alloc{Var: "a", Size: U32(4)}))
	if err := p.Finalize(); err == nil {
		t.Fatal("alloc without site name accepted")
	}
}

func TestSitesListing(t *testing.T) {
	p := NewProgram("x")
	p.AddFunc(Fn("main", nil,
		AllocAt("a", "z@2", U32(4)),
		AllocAt("b", "a@1", U32(4)),
	))
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	sites := p.Sites()
	if len(sites) != 2 || sites[0] != "a@1" || sites[1] != "z@2" {
		t.Fatalf("sites = %v", sites)
	}
}

func TestFinalizeIdempotent(t *testing.T) {
	p := NewProgram("x")
	p.AddFunc(Fn("main", nil, AllocAt("a", "s@1", U32(4))))
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	if err := p.Finalize(); err != nil {
		t.Fatalf("second finalize: %v", err)
	}
}
