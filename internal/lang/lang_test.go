package lang

import "testing"

func TestFinalizeRequiresMain(t *testing.T) {
	p := NewProgram("x")
	p.AddFunc(Fn("helper", nil, RetVoid()))
	if err := p.Finalize(); err == nil {
		t.Fatal("program without main finalized")
	}
}

func TestFinalizeAssignsLabels(t *testing.T) {
	p := NewProgram("x")
	p.AddFunc(Fn("main", nil,
		IfThen("", Eq(U32(1), U32(1)), Let("a", U32(1))),
		Loop("", Ult(V("a"), U32(3)), Let("a", Add(V("a"), U32(1)))),
	))
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	main := p.Funcs["main"]
	ifStmt := main.Body[0].(If)
	loopStmt := main.Body[1].(While)
	if ifStmt.Label == "" || loopStmt.Label == "" {
		t.Fatal("labels not assigned")
	}
	if ifStmt.Label == loopStmt.Label {
		t.Fatal("labels not unique")
	}
}

func TestFinalizeRejectsDuplicateSites(t *testing.T) {
	p := NewProgram("x")
	p.AddFunc(Fn("main", nil,
		AllocAt("a", "s@1", U32(4)),
		AllocAt("b", "s@1", U32(4)),
	))
	if err := p.Finalize(); err == nil {
		t.Fatal("duplicate allocation site accepted")
	}
}

func TestFinalizeRejectsUnknownCall(t *testing.T) {
	p := NewProgram("x")
	p.AddFunc(Fn("main", nil, Do(Call("nope"))))
	if err := p.Finalize(); err == nil {
		t.Fatal("call to undefined function accepted")
	}
}

func TestFinalizeRejectsArityMismatch(t *testing.T) {
	p := NewProgram("x")
	p.AddFunc(Fn("f", []string{"a", "b"}, RetVoid()))
	p.AddFunc(Fn("main", nil, Do(Call("f", U32(1)))))
	if err := p.Finalize(); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

func TestFinalizeAutoNamesMissingSite(t *testing.T) {
	p := NewProgram("x")
	p.AddFunc(Fn("main", nil,
		Let("n", InAt(0)),
		IfThen("", Ult(V("n"), U32(9)),
			Alloc{Var: "a", Size: V("n")},
		),
	))
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	want := "x:main#s1.then.s0"
	if sites := p.Sites(); len(sites) != 1 || sites[0] != want {
		t.Fatalf("sites = %v, want [%s]", sites, want)
	}
	// A second program with the same shape synthesizes the same name.
	q := NewProgram("x")
	q.AddFunc(Fn("main", nil,
		Let("n", InAt(0)),
		IfThen("", Ult(V("n"), U32(9)),
			Alloc{Var: "a", Size: V("n")},
		),
	))
	if err := q.Finalize(); err != nil {
		t.Fatal(err)
	}
	if sites := q.Sites(); sites[0] != want {
		t.Fatalf("auto-naming not deterministic: %v", sites)
	}
}

func TestAllocSitesTraversalOrder(t *testing.T) {
	p := NewProgram("x")
	p.AddFunc(Fn("zfirst", []string{"n"},
		AllocAt("a", "z@1", V("n")),
		RetVoid(),
	))
	p.AddFunc(Fn("main", nil,
		Let("n", InAt(0)),
		AllocAt("b", "m@1", V("n")),
		Do(Call("zfirst", V("n"))),
	))
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	got := p.AllocSites()
	// Functions are walked sorted by name: main before zfirst.
	want := []AllocSite{
		{Name: "m@1", Func: "main", Path: "s1"},
		{Name: "z@1", Func: "zfirst", Path: "s0"},
	}
	if len(got) != len(want) {
		t.Fatalf("alloc sites = %+v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("alloc site %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestWalkStmtsPaths(t *testing.T) {
	p := NewProgram("x")
	p.AddFunc(Fn("main", nil,
		Let("a", U32(1)),
		IfElse("", Eq(V("a"), U32(1)),
			Block{Let("b", U32(2))},
			Block{Loop("", Ult(V("a"), U32(3)), Let("a", Add(V("a"), U32(1))))},
		),
	))
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	var paths []string
	p.WalkStmts(func(f *Func, path string, s Stmt) {
		paths = append(paths, path)
	})
	want := []string{"s0", "s1", "s1.then.s0", "s1.else.s0", "s1.else.s0.body.s0"}
	if len(paths) != len(want) {
		t.Fatalf("paths = %v", paths)
	}
	for i := range want {
		if paths[i] != want[i] {
			t.Fatalf("path %d = %q, want %q", i, paths[i], want[i])
		}
	}
}

func TestExprString(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{Mul(V("g_rowbytes"), V("g_height")), "(g_rowbytes * g_height)"},
		{Add(Mul(V("ct"), U32(4)), U32(16)), "((ct * 4) + 16)"},
		{ZX(32, In(Add(V("off"), U32(3)))), "zx32(in[(off + 3)])"},
		{SX(16, V("v")), "sx16(v)"},
		{Load(V("buf"), V("i")), "buf[i]"},
		{Call("f", V("a"), U32(2)), "f(a, 2)"},
		{Neg(V("x")), "-(x)"},
		{BitNot(V("x")), "~(x)"},
		{LShr(V("x"), U32(2)), "(x >>u 2)"},
		{Len(), "len"},
	}
	for _, c := range cases {
		if got := ExprString(c.e); got != c.want {
			t.Errorf("ExprString = %q, want %q", got, c.want)
		}
	}
}

func TestSitesListing(t *testing.T) {
	p := NewProgram("x")
	p.AddFunc(Fn("main", nil,
		AllocAt("a", "z@2", U32(4)),
		AllocAt("b", "a@1", U32(4)),
	))
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	sites := p.Sites()
	if len(sites) != 2 || sites[0] != "a@1" || sites[1] != "z@2" {
		t.Fatalf("sites = %v", sites)
	}
}

func TestFinalizeIdempotent(t *testing.T) {
	p := NewProgram("x")
	p.AddFunc(Fn("main", nil, AllocAt("a", "s@1", U32(4))))
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	if err := p.Finalize(); err != nil {
		t.Fatalf("second finalize: %v", err)
	}
}
