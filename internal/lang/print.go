package lang

import (
	"fmt"
	"strconv"
	"strings"
)

// Operator symbols for ExprString, indexed by BinOp. Unsigned/signed
// variants carry a suffix so renderings stay unambiguous.
var binOpSyms = [...]string{"+", "-", "*", "/u", "%u", "&", "|", "^", "<<", ">>u", ">>s"}

// ExprString renders an expression in a compact, deterministic C-like
// syntax for site records and reports. The rendering is purely syntactic:
// structurally equal expressions always render identically, so rendered
// expressions are safe to diff in golden files.
func ExprString(e Expr) string {
	switch x := e.(type) {
	case Lit:
		return strconv.FormatUint(x.V, 10)
	case VarRef:
		return x.Name
	case Bin:
		return "(" + ExprString(x.A) + " " + binOpSyms[x.Op] + " " + ExprString(x.B) + ")"
	case Un:
		if x.Neg {
			return "-(" + ExprString(x.A) + ")"
		}
		return "~(" + ExprString(x.A) + ")"
	case Cvt:
		kind := "zx"
		if x.Signed {
			kind = "sx"
		}
		return fmt.Sprintf("%s%d(%s)", kind, x.W, ExprString(x.A))
	case InByte:
		return "in[" + ExprString(x.Idx) + "]"
	case InLen:
		return "len"
	case LoadExpr:
		return ExprString(x.Ptr) + "[" + ExprString(x.Off) + "]"
	case CallExpr:
		args := make([]string, len(x.Args))
		for i, a := range x.Args {
			args[i] = ExprString(a)
		}
		return x.Fn + "(" + strings.Join(args, ", ") + ")"
	}
	return "?"
}
