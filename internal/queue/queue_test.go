package queue

import (
	"sync/atomic"
	"testing"
)

func TestMapPreservesOrder(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	got := Map(8, items, func(x int) int { return x * x })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapRunsEverything(t *testing.T) {
	var n atomic.Int64
	Map(4, []int{1, 10, 100}, func(x int) struct{} {
		n.Add(int64(x))
		return struct{}{}
	})
	if n.Load() != 111 {
		t.Fatalf("sum = %d", n.Load())
	}
}

func TestMapEmptyAndSingleWorker(t *testing.T) {
	if got := Map(4, nil, func(x int) int { return x }); len(got) != 0 {
		t.Fatal("empty input should give empty output")
	}
	got := Map(0, []int{1, 2, 3}, func(x int) int { return x + 1 })
	if got[0] != 2 || got[2] != 4 {
		t.Fatalf("got %v", got)
	}
}

func TestMapMoreWorkersThanItems(t *testing.T) {
	got := Map(64, []int{5}, func(x int) int { return x * 2 })
	if len(got) != 1 || got[0] != 10 {
		t.Fatalf("got %v", got)
	}
}
