// Package queue is the evaluation harness's work queue — the in-process
// counterpart of the distributed work-queue system §4 of the paper describes
// for running per-site experiments. Jobs run on a bounded worker pool and
// results keep their input order, so table rows come out deterministic.
package queue

import "sync"

// Map runs f over every item on at most workers goroutines and returns the
// results in input order. workers < 1 means one worker.
func Map[T, R any](workers int, items []T, f func(T) R) []R {
	if workers < 1 {
		workers = 1
	}
	if workers > len(items) {
		workers = len(items)
	}
	out := make([]R, len(items))
	if len(items) == 0 {
		return out
	}
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				out[i] = f(items[i])
			}
		}()
	}
	for i := range items {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}

// Each runs every job on at most workers goroutines and waits for all.
func Each(workers int, jobs []func()) {
	Map(workers, jobs, func(j func()) struct{} {
		j()
		return struct{}{}
	})
}
