// Package queue is the in-process worker-pool primitive under the scheduler
// and the dispatch layer's Local backend (the job-based work-queue surface
// itself lives in internal/dispatch). Items run on a bounded pool and
// results keep their input order, so table rows come out deterministic.
package queue

import "sync"

// Map runs f over every item on at most workers goroutines and returns the
// results in input order. workers < 1 means one worker.
func Map[T, R any](workers int, items []T, f func(T) R) []R {
	if workers < 1 {
		workers = 1
	}
	if workers > len(items) {
		workers = len(items)
	}
	out := make([]R, len(items))
	if len(items) == 0 {
		return out
	}
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				out[i] = f(items[i])
			}
		}()
	}
	for i := range items {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}
