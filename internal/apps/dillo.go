package apps

import (
	"diode/internal/formats"
	. "diode/internal/lang"
)

// Dillo reproduces the paper's §2 application: Dillo 2.1 with libpng. The
// SPNG pipeline mirrors Figure 2:
//
//   - png_get_uint_31 rejects width/height values above 2^31-1 (checks 1–2),
//   - png_check_IHDR rejects height/width above one million (checks 3–4),
//   - Png_datainfo_callback guards the image allocation with the *overflow-
//     vulnerable* size check abs(width*height) > IMAGE_MAX (check 5), then
//     allocates rowbytes*height at png.c@203 — the paper's famous site,
//   - a png_memset-style loop over the row buffer whose iteration count is a
//     function of rowbytes provides the blocking checks of §5.4,
//   - every other chunk handler allocates a buffer whose 16-bit size
//     computation is protected by a genuine sanity check (the eight
//     "sanity checks prevent overflow" sites of Table 1), and
//   - the render stage hosts the Image.cxx@741 and fltkimagebuf.cc@39
//     exposed sites with their own (partly overflow-vulnerable) checks.
func Dillo() *App {
	p := NewProgram("dillo")

	p.AddFunc(readBE32("read_be32"))
	p.AddFunc(readBE16("read_be16"))
	p.AddFunc(chunkChecksum("png_calculate_crc"))

	// png_get_uint_31: checks 1 & 2 of Figure 2 (uval > PNG_UINT_31_MAX).
	p.AddFunc(Fn("png_get_uint_31", []string{"off"},
		Let("uval", Call("read_be32", V("off"))),
		IfThen("png_get_uint_31@40", Ugt(V("uval"), U32(0x7FFFFFFF)),
			Abort("PNG unsigned integer out of range"),
		),
		Ret(V("uval")),
	))

	// png_handle_IHDR: header parsing, checks 3 & 4, rowbytes computation,
	// the unsatisfiable site png.c@118 and the row-buffer site png.c@164.
	p.AddFunc(Fn("png_handle_IHDR", []string{"off"},
		Let("width", Call("png_get_uint_31", V("off"))),
		Let("height", Call("png_get_uint_31", Add(V("off"), U32(4)))),
		Let("bd", ZX(32, In(Add(V("off"), U32(8))))),
		Let("ct", ZX(32, In(Add(V("off"), U32(9))))),
		IfThen("png_handle_IHDR@60", Eq(V("bd"), U32(0)),
			Abort("zero bit depth in IHDR"),
		),
		IfThen("png_handle_IHDR@62", Ugt(V("bd"), U32(16)),
			Abort("invalid bit depth in IHDR"),
		),
		// png_check_IHDR checks 3 and 4 (Figure 2 lines 25 and 31).
		IfThen("png_check_IHDR@25", Ugt(V("height"), U32(1000000)),
			Warn("Image height exceeds user limit in IHDR"),
			Abort("invalid IHDR"),
		),
		IfThen("png_check_IHDR@31", Ugt(V("width"), U32(1000000)),
			Warn("Image width exceeds user limit in IHDR"),
			Abort("invalid IHDR"),
		),
		// channels: color type 2 is RGB.
		Let("channels", U32(1)),
		IfThen("png_handle_IHDR@70", Eq(V("ct"), U32(2)),
			Let("channels", U32(3)),
		),
		// pixel_depth is a png_byte: the 8-bit multiply mirrors libpng.
		Let("pixel_depth8", Mul(ZX(8, V("bd")), ZX(8, V("channels")))),
		Let("pd", ZX(32, V("pixel_depth8"))),
		// PNG_ROWBYTES (Figure 2 line 45).
		Let("rowbytes", U32(0)),
		IfElse("png_handle_IHDR@76", Uge(V("pd"), U32(8)),
			Block{Let("rowbytes", Mul(V("width"), LShr(V("pd"), U32(3))))},
			Block{Let("rowbytes", LShr(Add(Mul(V("width"), V("pd")), U32(7)), U32(3)))},
		),
		Let("g_width", V("width")),
		Let("g_height", V("height")),
		Let("g_bd", V("bd")),
		Let("g_rowbytes", V("rowbytes")),
		// Unsatisfiable target site: the chunk bookkeeping buffer can never
		// overflow (255*4+16 fits easily in 32 bits).
		AllocAt("namebuf", "dillo:png.c@118", Add(Mul(V("ct"), U32(4)), U32(16))),
		// Row buffer, sized rowbytes+1 as in libpng. Genuine sanity checks
		// (width ≤ 1e6, bit depth ≤ 16) keep rowbytes+1 far from 2^32.
		AllocAt("g_row_buf", "dillo:png.c@164", Add(V("rowbytes"), U32(1))),
		// png_memset over the row buffer: the blocking check of §5.4. The
		// loop-head condition is a function of rowbytes, so the compressed
		// branch constraint pins the iteration count.
		Let("i", U32(0)),
		Loop("png_memset@~sse2", Ult(Mul(V("i"), U32(64)), V("rowbytes")),
			Put(V("g_row_buf"), ZX(64, Mul(V("i"), U32(64))), U8(0)),
			Let("i", Add(V("i"), U32(1))),
		),
		RetVoid(),
	))

	// Png_datainfo_callback: check 5 (itself vulnerable to overflow) and the
	// paper's target site png.c@203.
	p.AddFunc(Fn("png_datainfo_callback", nil,
		IfThen("png_datainfo_callback@guard", Eq(V("g_rowbytes"), U32(0)),
			RetVoid(),
		),
		// Check 5 (Figure 2 line 81): size check computed in wrapping 32-bit
		// arithmetic — carefully chosen width/height overflow the *check*.
		Let("size32", Mul(V("g_width"), V("g_height"))),
		IfElse("Png_datainfo_callback@81", Ugt(V("size32"), U32(36000000)),
			Block{Warn("suspicious image size request")},
			Block{
				// The overflow happens here (Figure 2 line 87).
				AllocAt("g_image_data", "dillo:png.c@203",
					Mul(V("g_rowbytes"), V("g_height"))),
				// Touch the last byte of the *intended* image, with size_t
				// (64-bit) indexing as on x86-64: when the 32-bit size
				// computation wrapped, this lands far outside the block.
				Put(V("g_image_data"),
					Sub(Mul(ZX(64, V("g_rowbytes")), ZX(64, V("g_height"))), U64(1)),
					U8(0)),
			},
		),
		RetVoid(),
	))

	// Chunk handlers whose sites are protected by genuine sanity checks:
	// the eight "Sanity Checks Prevent Overflow" rows of Table 1. Each size
	// is computed in 16-bit arithmetic (where the multiply could wrap) but a
	// prior bound check keeps the product below 2^16.
	prevented := func(fn, label, site string, bound, factor uint64, countVar string) *Func {
		return Fn(fn, []string{"off"},
			Let(countVar, Call("read_be16", V("off"))),
			IfThen(label, Ugt(V(countVar), U32(bound)),
				Abort(fn+": count exceeds limit"),
			),
			Let("sz16", Mul(ZX(16, V(countVar)), Lit{W: 16, V: factor})),
			AllocAt("buf", site, ZX(32, V("sz16"))),
			// Write the last cell of the (never-wrapped) buffer.
			IfThen(label+"/nz", Ugt(V("sz16"), Lit{W: 16, V: 0}),
				Put(V("buf"), Sub(ZX(64, V("sz16")), U64(1)), U8(0)),
			),
			RetVoid(),
		)
	}
	p.AddFunc(prevented("png_handle_PLTE", "png_handle_PLTE@check", "dillo:png.c@321", 1024, 48, "entries"))
	p.AddFunc(prevented("png_handle_tRNS", "png_handle_tRNS@check", "dillo:png.c@356", 256, 192, "count"))
	p.AddFunc(prevented("png_handle_gAMA", "png_handle_gAMA@check", "dillo:png.c@389", 2000, 24, "gamma"))
	p.AddFunc(prevented("png_handle_bKGD", "png_handle_bKGD@check", "dillo:png.c@421", 128, 320, "tiles"))
	p.AddFunc(prevented("png_handle_sBIT", "png_handle_sBIT@check", "dillo:png.c@490", 300, 180, "sig"))

	// tEXt carries two allocations protected by one shared keyword check.
	p.AddFunc(Fn("png_handle_tEXt", []string{"off"},
		Let("klen", Call("read_be16", V("off"))),
		IfThen("png_handle_tEXt@check", Ugt(V("klen"), U32(512)),
			Abort("tEXt keyword too long"),
		),
		Let("k16", ZX(16, V("klen"))),
		Let("ksz", Mul(V("k16"), Lit{W: 16, V: 96})),
		AllocAt("keybuf", "dillo:png.c@455", ZX(32, V("ksz"))),
		Let("vsz", Mul(V("k16"), Lit{W: 16, V: 120})),
		AllocAt("valbuf", "dillo:png.c@458", ZX(32, V("vsz"))),
		IfThen("png_handle_tEXt@copy", Ugt(V("ksz"), Lit{W: 16, V: 0}),
			Put(V("keybuf"), Sub(ZX(64, V("ksz")), U64(1)), U8(0)),
		),
		RetVoid(),
	))

	// oFFs and pHYs only record their fields; the render stage uses them.
	p.AddFunc(Fn("png_handle_oFFs", []string{"off"},
		Let("g_ocount", Call("read_be16", V("off"))),
		Let("g_ounit", Call("read_be16", Add(V("off"), U32(2)))),
		RetVoid(),
	))
	p.AddFunc(Fn("png_handle_pHYs", []string{"off"},
		Let("g_ppu", Call("read_be16", V("off"))),
		Let("g_punit", Call("read_be16", Add(V("off"), U32(2)))),
		RetVoid(),
	))

	// Image.cxx@741: the scanline cache. Four relevant checks; the size
	// check at @735 computes the size in wrapping 32-bit arithmetic, so it
	// is evadable (the paper's "sanity check itself vulnerable to overflow"
	// pattern). The scanline-prep loop before the allocation is a blocking
	// check: its iteration count is a function of the resolution field.
	p.AddFunc(Fn("dw_image_render", nil,
		IfThen("Image.cxx@721", Ugt(V("g_ppu"), U32(40000)),
			Abort("image resolution out of range"),
		),
		IfThen("Image.cxx@724", Ugt(V("g_punit"), U32(40000)),
			Abort("image unit out of range"),
		),
		IfThen("Image.cxx@728", Ne(BitAnd(V("g_ppu"), U32(3)), U32(0)),
			Abort("unaligned resolution"),
		),
		Let("sw", Add(Mul(V("g_ppu"), U32(3)), U32(4))),
		Let("sh", Add(V("g_punit"), U32(2))),
		Let("t", Mul(V("sw"), V("sh"))),
		IfElse("Image.cxx@735", Ugt(V("t"), U32(0x20000000)),
			Block{Warn("scanline cache too large")},
			Block{
				// Scanline prep over a fixed staging buffer: a blocking
				// loop whose count depends on the resolution field.
				AllocAt("stage", "dillo:Image.cxx@stage", U32(64)),
				Let("i", U32(0)),
				Loop("Image.cxx@prep",
					And(Ult(Mul(V("i"), U32(8)), V("g_ppu")), Ult(V("i"), U32(16))),
					Put(V("stage"), ZX(64, V("i")), U8(0)),
					Let("i", Add(V("i"), U32(1))),
				),
				AllocAt("cache", "dillo:Image.cxx@741", Mul(V("sw"), V("sh"))),
				Put(V("cache"),
					Sub(Mul(ZX(64, V("sw")), ZX(64, V("sh"))), U64(1)),
					U8(0)),
			},
		),
		RetVoid(),
	))

	// fltkimagebuf.cc@39: the FLTK image buffer. Five relevant checks; the
	// size check at @33 computes the full byte size in wrapping 32-bit
	// arithmetic and is evadable. The row-stride loop before the allocation
	// is a blocking check on the width field.
	p.AddFunc(Fn("fltk_image_buf", nil,
		IfThen("fltkimagebuf.cc@21", Ult(V("g_ocount"), U32(4)),
			Abort("image too narrow"),
		),
		IfThen("fltkimagebuf.cc@24", Ult(V("g_ounit"), U32(2)),
			Abort("invalid unit"),
		),
		IfThen("fltkimagebuf.cc@27", Ugt(V("g_ocount"), U32(36000)),
			Abort("image too wide"),
		),
		IfThen("fltkimagebuf.cc@30", Ugt(V("g_ounit"), U32(36000)),
			Abort("unit out of range"),
		),
		Let("t2", Mul(Mul(V("g_ocount"), V("g_ounit")), U32(4))),
		IfElse("fltkimagebuf.cc@33", Ugt(V("t2"), U32(0x10000000)),
			Block{Warn("fltk buffer too large")},
			Block{
				AllocAt("fstage", "dillo:fltkimagebuf.cc@stage", U32(64)),
				Let("i", U32(0)),
				Loop("fltkimagebuf.cc@stride",
					And(Ult(Mul(V("i"), U32(4)), V("g_ocount")), Ult(V("i"), U32(16))),
					Put(V("fstage"), ZX(64, V("i")), U8(0)),
					Let("i", Add(V("i"), U32(1))),
				),
				AllocAt("fbuf", "dillo:fltkimagebuf.cc@39",
					Mul(Mul(V("g_ocount"), V("g_ounit")), U32(4))),
				Put(V("fbuf"),
					Sub(Mul(Mul(ZX(64, V("g_ocount")), ZX(64, V("g_ounit"))), U64(4)), U64(1)),
					U8(0)),
			},
		),
		RetVoid(),
	))

	// Chunk type constants (big-endian ASCII).
	const (
		tIHDR = 0x49484452
		tPLTE = 0x504C5445
		tTRNS = 0x74524E53
		tGAMA = 0x67414D41
		tBKGD = 0x624B4744
		tTEXT = 0x74455874
		tOFFS = 0x6F464673
		tPHYS = 0x70485973
		tSBIT = 0x73424954
		tIDAT = 0x49444154
		tIEND = 0x49454E44
	)

	dispatch := func(typ uint64, fn string) Stmt {
		return IfThen("", Eq(V("typ"), U32(typ)),
			Do(Call(fn, V("dataoff"))),
		)
	}

	p.AddFunc(Fn("main", nil,
		// Globals consumed by later stages.
		Let("g_width", U32(0)), Let("g_height", U32(0)),
		Let("g_bd", U32(0)), Let("g_rowbytes", U32(0)),
		Let("g_ocount", U32(0)), Let("g_ounit", U32(0)),
		Let("g_ppu", U32(0)), Let("g_punit", U32(0)),
		Let("g_done", U32(0)),
		// Signature check.
		IfThen("png_sig_check", Or(
			Ne(Call("read_be32", U32(0)), U32(0x8953504E)),
			Ne(Call("read_be32", U32(4)), U32(0x470D0A1A))),
			Abort("not an SPNG file"),
		),
		// Chunk walk (png_process_data / png_push_read_chunk).
		Let("off", U32(8)),
		Loop("png_push_read_chunk@walk",
			And(Ule(Add(V("off"), U32(8)), Len()), Eq(V("g_done"), U32(0))),
			Let("length", Call("read_be32", V("off"))),
			IfThen("png_push_read_chunk@trunc",
				Ugt(Add(Add(V("off"), U32(12)), V("length")), Len()),
				Abort("truncated chunk"),
			),
			Let("typ", Call("read_be32", Add(V("off"), U32(4)))),
			Let("dataoff", Add(V("off"), U32(8))),
			// CRC verification (Peach must reconstruct the checksum for a
			// generated input to make it past this branch).
			Let("crc", Call("png_calculate_crc", Add(V("off"), U32(4)), Add(V("length"), U32(4)))),
			Let("stored", Call("read_be32", Add(Add(V("off"), U32(8)), V("length")))),
			IfThen("png_crc_finish@err", Ne(V("crc"), V("stored")),
				Abort("CRC error in chunk"),
			),
			dispatch(tIHDR, "png_handle_IHDR"),
			dispatch(tPLTE, "png_handle_PLTE"),
			dispatch(tTRNS, "png_handle_tRNS"),
			dispatch(tGAMA, "png_handle_gAMA"),
			dispatch(tBKGD, "png_handle_bKGD"),
			dispatch(tTEXT, "png_handle_tEXt"),
			dispatch(tOFFS, "png_handle_oFFs"),
			dispatch(tPHYS, "png_handle_pHYs"),
			dispatch(tSBIT, "png_handle_sBIT"),
			IfThen("", Eq(V("typ"), U32(tIDAT)),
				Do(Call("png_datainfo_callback")),
			),
			IfThen("", Eq(V("typ"), U32(tIEND)),
				Let("g_done", U32(1)),
			),
			Let("off", Add(Add(V("off"), U32(12)), V("length"))),
		),
		// Render stage.
		Do(Call("dw_image_render")),
		Do(Call("fltk_image_buf")),
	))

	return &App{
		Name:    "Dillo 2.1",
		Short:   "dillo",
		Program: mustFinalize(p),
		Format:  formats.SPNG(),
		Paper: []PaperSite{
			{Site: "dillo:png.c@203", Class: ClassExposed, CVE: "CVE-2009-2294",
				ErrorType: "SIGSEGV/InvalidRead", EnforcedX: 4, EnforcedY: 35,
				TargetRate: 0, TargetRateOf: 200, EnforcedRate: 190},
			{Site: "dillo:fltkimagebuf.cc@39", Class: ClassExposed, CVE: "New",
				ErrorType: "SIGSEGV/InvalidRead", EnforcedX: 5, EnforcedY: 69,
				TargetRate: 0, TargetRateOf: 200, EnforcedRate: 189},
			{Site: "dillo:Image.cxx@741", Class: ClassExposed, CVE: "New",
				ErrorType: "SIGSEGV/InvalidRead", EnforcedX: 4, EnforcedY: 5779,
				TargetRate: 0, TargetRateOf: 200, EnforcedRate: 190},
			{Site: "dillo:png.c@118", Class: ClassUnsat},
			{Site: "dillo:png.c@164", Class: ClassPrevented},
			{Site: "dillo:png.c@321", Class: ClassPrevented},
			{Site: "dillo:png.c@356", Class: ClassPrevented},
			{Site: "dillo:png.c@389", Class: ClassPrevented},
			{Site: "dillo:png.c@421", Class: ClassPrevented},
			{Site: "dillo:png.c@455", Class: ClassPrevented},
			{Site: "dillo:png.c@458", Class: ClassPrevented},
			{Site: "dillo:png.c@490", Class: ClassPrevented},
		},
	}
}
