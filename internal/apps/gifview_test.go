package apps

import (
	"testing"

	"diode/internal/bv"
	"diode/internal/formats"
	"diode/internal/interp"
)

// Second-frame field offsets in formats.SGIFAppendFrame output when applied
// to the canonical seed: the appended image block starts at the old trailer
// position (81), so its descriptor begins at 82.
const (
	sgif2ndDesc   = formats.SGIFSeedLength // 0x2C separator at 81, descriptor at 82
	sgif2ndWidth  = sgif2ndDesc + 4        // left(2) top(2) precede width
	sgif2ndHeight = sgif2ndDesc + 6
)

// TestGIFViewMultiFrame pins that the taint and trace layers handle
// repeated-frame field structure: a two-image-block SGIF file drives
// gif_decode_frame twice, and the second pass's allocation events must carry
// the *second* descriptor's bytes through taint and symbolic recording, with
// the per-frame checksum branch recorded once per block.
func TestGIFViewMultiFrame(t *testing.T) {
	app := GIFView()
	multi := formats.SGIFAppendFrame(app.Format.Seed, 3, 1, 33, 21)
	if err := app.Format.Validate(multi); err != nil {
		t.Fatalf("two-frame input rejected by format validation: %v", err)
	}
	if len(multi) != formats.SGIFSeedLength+19 {
		t.Fatalf("appended frame layout drifted: len=%d", len(multi))
	}

	m := interp.NewMachine(app.Compiled())
	m.Reset(multi, interp.Options{TrackSymbolic: true})
	out := m.Run()
	if out.Kind != interp.OutOK {
		t.Fatalf("two-frame parse ended %v (%s, err=%v)", out.Kind, out.AbortMsg, out.Err)
	}

	var frames []interp.AllocEvent
	for _, ev := range out.Allocs {
		if ev.Site == "gifview:gif.c@466" {
			frames = append(frames, ev)
		}
	}
	if len(frames) != 2 {
		t.Fatalf("frame-buffer site executed %d times, want 2 (one per image block)", len(frames))
	}

	// First frame: seed descriptor 50x40 at *2 bytes per pixel.
	if frames[0].Size != 50*40*2 {
		t.Errorf("first frame size = %d, want %d", frames[0].Size, 50*40*2)
	}
	// Second frame: the appended 33x21 descriptor.
	if frames[1].Size != 33*21*2 {
		t.Errorf("second frame size = %d, want %d", frames[1].Size, 33*21*2)
	}

	// Taint: the second allocation's size must be influenced by the second
	// descriptor's width/height bytes and by none of the first descriptor's.
	for _, off := range []int{sgif2ndWidth, sgif2ndWidth + 1, sgif2ndHeight, sgif2ndHeight + 1} {
		if !frames[1].Taint.Has(off) {
			t.Errorf("second frame size not tainted by second-descriptor byte %d (taint %v)",
				off, frames[1].Taint.Elems())
		}
		if frames[0].Taint.Has(off) {
			t.Errorf("first frame size tainted by second-descriptor byte %d", off)
		}
	}
	if frames[1].Taint.Has(formats.SGIFImgDesc + 4) {
		t.Errorf("second frame size tainted by first-descriptor width byte")
	}

	// Symbolic recording: the second allocation's size expression ranges over
	// the second frame's input bytes.
	vars := bv.TermVars(frames[1].Sym)
	for _, name := range []string{"in[86]", "in[87]", "in[88]", "in[89]"} {
		if _, ok := vars[name]; !ok {
			t.Errorf("second frame symbolic size missing %s (vars %v)", name, vars.Names())
		}
	}

	// Trace: the per-image checksum branch is recorded once per block.
	crc := 0
	for _, br := range out.Branches {
		if br.Label == "gif.c@crc" {
			crc++
		}
	}
	if crc != 2 {
		t.Errorf("checksum branch recorded %d times, want 2 (once per image block)", crc)
	}
}

// TestGIFViewMultiFrameGenerate pins the generator/fix-up chain on
// multi-frame files: patching first-frame fields of a two-frame input must
// re-fix both image checksums, keeping the file parseable end to end.
func TestGIFViewMultiFrameGenerate(t *testing.T) {
	app := GIFView()
	multi := formats.SGIFAppendFrame(app.Format.Seed, 0, 0, 9, 5)
	gen := app.Format.Generator()
	patched, err := gen.Generate(multi, bv.Assignment{"/img/width": 61, "/img/height": 47})
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Format.Validate(patched); err != nil {
		t.Fatalf("patched two-frame input fails validation: %v", err)
	}
	m := interp.NewMachine(app.Compiled())
	m.Reset(patched, interp.Options{})
	out := m.Run()
	if out.Kind != interp.OutOK {
		t.Fatalf("patched two-frame parse ended %v (%s)", out.Kind, out.AbortMsg)
	}
	var sizes []uint64
	for _, ev := range out.Allocs {
		if ev.Site == "gifview:gif.c@466" {
			sizes = append(sizes, ev.Size)
		}
	}
	if len(sizes) != 2 || sizes[0] != 61*47*2 || sizes[1] != 9*5*2 {
		t.Fatalf("frame sizes after patch = %v, want [%d %d]", sizes, 61*47*2, 9*5*2)
	}
}
