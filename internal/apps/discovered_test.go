package apps

import (
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"diode/internal/discover"
)

var updateDiscovered = flag.Bool("update-discovered", false,
	"rewrite the golden discovered-site listings under testdata/discovered")

// TestGoldenDiscoveredSites pins the full discovered-site listing of every
// registered application. The listing is byte-identical to `diode -app X
// -sites` (and to what `make discover-smoke` diffs), so a change here means
// the discovery pass or a guest program changed — if intentional, rerun
// with -update-discovered.
func TestGoldenDiscoveredSites(t *testing.T) {
	for _, a := range All() {
		sites, err := a.Discovered()
		if err != nil {
			t.Fatalf("%s: %v", a.Short, err)
		}
		got := discover.Format(sites)
		path := filepath.Join("testdata", "discovered", a.Short+".golden")
		if *updateDiscovered {
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (run with -update-discovered to create)", a.Short, err)
		}
		if got != string(want) {
			t.Errorf("%s: discovered sites diverge from %s (rerun with -update-discovered if intentional)\ngot:\n%swant:\n%s",
				a.Short, path, got, want)
		}
	}
}

// TestPaperSitesAreDiscovered is the superset assertion of the registry
// refactor: the curated PaperSite tables are expectations layered over
// discovery, so every hand-named site must be found by the static pass as
// an alloc-kind site.
func TestPaperSitesAreDiscovered(t *testing.T) {
	for _, a := range All() {
		sites, err := a.Discovered()
		if err != nil {
			t.Fatalf("%s: %v", a.Short, err)
		}
		allocs := make(map[string]bool)
		for _, s := range sites {
			if s.Kind == discover.KindAlloc {
				allocs[s.Name] = true
			}
		}
		for _, ps := range a.Paper {
			if !allocs[ps.Site] {
				t.Errorf("%s: hand-named site %s not discovered (discovery must be a superset of the curated tables)",
					a.Short, ps.Site)
			}
		}
	}
}

// TestDiscoveredDeterministicAcrossInstances checks that a freshly
// constructed instance discovers exactly the sites the shared registry
// instance does, in the same order.
func TestDiscoveredDeterministicAcrossInstances(t *testing.T) {
	for short, build := range constructors {
		reg, err := ByName(short)
		if err != nil {
			t.Fatal(err)
		}
		want, err := reg.Discovered()
		if err != nil {
			t.Fatal(err)
		}
		got, err := build().Discovered()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: discovery differs across instances", short)
		}
	}
}
