package apps

import (
	"diode/internal/formats"
	. "diode/internal/lang"
)

// VLC reproduces VLC 0.8.6h's WAV demuxer and decoder paths. All four of its
// target sites are exposed, matching Table 1 (4/4/0/0); per the paper, the
// application *has* overflow sanity checks, but they are computed in
// wrapping arithmetic and are therefore ineffective — DIODE evades them.
//
//   - wav.c@147 (CVE-2008-2430): the format-chunk buffer is allocated as
//     fmt_size+2 before the size is validated; the target expression x+2 has
//     exactly two overflowing solutions (§5.5).
//   - messages.c@355: the log-line buffer len*4+8 behind two wrapping checks
//     (alignment and a size bound computed as len*4).
//   - block.c@54: the sample block frames*2+16 with no checks at all.
//   - dec.c@277: the PCM buffer ch*rate*(bits/8) behind five checks whose
//     bound computations all wrap.
func VLC() *App {
	p := NewProgram("vlc")

	p.AddFunc(readBE32("read_fourcc"))
	p.AddFunc(readLE32("read_le32"))
	p.AddFunc(readLE16("read_le16"))

	// fmt chunk: the CVE-2008-2430 site, then the stream description reads.
	p.AddFunc(Fn("wav_read_fmt", []string{"off", "size"},
		// Capped header scan over the declared size: the blocking check
		// that makes this site's same-path constraint unsatisfiable (§5.4).
		AllocAt("fstage", "vlc:wav.c@stage", U32(64)),
		Let("i", U32(0)),
		Loop("wav.c@hdrscan",
			And(Ult(Mul(V("i"), U32(8)), V("size")), Ult(V("i"), U32(16))),
			Put(V("fstage"), ZX(64, V("i")), In(Add(V("off"), V("i")))),
			Let("i", Add(V("i"), U32(1))),
		),
		// The extra-size buffer is allocated from the declared chunk size
		// before any validation — the original bug.
		AllocAt("esbuf", "vlc:wav.c@147", Add(V("size"), U32(2))),
		Put(V("esbuf"), U64(0), U8(0)),
		Put(V("esbuf"), U64(1), U8(0)),
		Let("g_channels", Call("read_le16", Add(V("off"), U32(2)))),
		Let("g_rate", Call("read_le32", Add(V("off"), U32(4)))),
		Let("g_bits", Call("read_le16", Add(V("off"), U32(14)))),
		RetVoid(),
	))

	// note chunk: the message-log site with two wrapping sanity checks.
	p.AddFunc(Fn("wav_read_note", []string{"off"},
		Let("mlen", Call("read_le32", V("off"))),
		IfThen("messages.c@341", Ne(BitAnd(V("mlen"), U32(3)), U32(0)),
			Abort("unaligned message length"),
		),
		Let("t", Mul(V("mlen"), U32(4))),
		IfThen("messages.c@347", Ugt(V("t"), U32(0x40000000)),
			Abort("message too long"),
		),
		// Header-word copy into a fixed staging area: a blocking loop whose
		// count follows the message length (capped, as the staging area is).
		AllocAt("mstage", "vlc:messages.c@stage", U32(64)),
		Let("i", U32(0)),
		Loop("messages.c@hdrcopy",
			And(Ult(Mul(V("i"), U32(4)), V("mlen")), Ult(V("i"), U32(16))),
			Put(V("mstage"), ZX(64, V("i")), In(Add(V("off"), Add(U32(4), V("i"))))),
			Let("i", Add(V("i"), U32(1))),
		),
		AllocAt("mbuf", "vlc:messages.c@355", Add(Mul(V("mlen"), U32(4)), U32(8))),
		Put(V("mbuf"),
			Sub(Add(Mul(ZX(64, V("mlen")), U64(4)), U64(8)), U64(1)),
			U8(0)),
		RetVoid(),
	))

	// data chunk: the block site, no sanity checks — but a capped prebuffer
	// scan (a blocking loop on the frame count) precedes the allocation.
	p.AddFunc(Fn("wav_read_data", []string{"off"},
		Let("frames", Call("read_le32", V("off"))),
		AllocAt("dstage", "vlc:block.c@stage", U32(64)),
		Let("i", U32(0)),
		Loop("block.c@prescan",
			And(Ult(Mul(V("i"), U32(2)), V("frames")), Ult(V("i"), U32(16))),
			Put(V("dstage"), ZX(64, V("i")), U8(0)),
			Let("i", Add(V("i"), U32(1))),
		),
		AllocAt("dbuf", "vlc:block.c@54", Add(Mul(V("frames"), U32(2)), U32(16))),
		Let("x", Load(V("dbuf"),
			Sub(Add(Mul(ZX(64, V("frames")), U64(2)), U64(16)), U64(1)))),
		RetVoid(),
	))

	// Decoder initialization: five checks, all with wrapping bound
	// computations, then the PCM buffer site.
	p.AddFunc(Fn("dec_init", nil,
		IfThen("dec.c@239", Eq(V("g_rate"), U32(0)),
			RetVoid(),
		),
		IfThen("dec.c@243", Eq(V("g_channels"), U32(0)),
			Abort("no channels"),
		),
		Let("ta", Mul(ZX(16, V("g_channels")), Lit{W: 16, V: 64})),
		IfThen("dec.c@247", Ugt(V("ta"), Lit{W: 16, V: 1024}),
			Abort("too many channels"),
		),
		IfThen("dec.c@252", Ne(BitAnd(V("g_bits"), U32(7)), U32(0)),
			Abort("bad sample size"),
		),
		Let("tb", Mul(ZX(16, V("g_bits")), Lit{W: 16, V: 8})),
		IfThen("dec.c@257", Ugt(V("tb"), Lit{W: 16, V: 256}),
			Abort("sample size out of range"),
		),
		Let("tc", Mul(V("g_rate"), U32(16))),
		IfThen("dec.c@263", Ugt(V("tc"), U32(0x300000)),
			Abort("sample rate out of range"),
		),
		// Decoder warm-up loops: per-channel, per-sample-byte and rate
		// calibration, each over a fixed staging block — the blocking
		// checks for this site.
		AllocAt("dcstage", "vlc:dec.c@stage", U32(64)),
		Let("i", U32(0)),
		Loop("dec.c@chinit",
			And(Ult(V("i"), V("g_channels")), Ult(V("i"), U32(16))),
			Put(V("dcstage"), ZX(64, V("i")), U8(0)),
			Let("i", Add(V("i"), U32(1))),
		),
		Let("j", U32(0)),
		Loop("dec.c@bytesinit",
			And(Ult(Mul(V("j"), U32(8)), V("g_bits")), Ult(V("j"), U32(16))),
			Put(V("dcstage"), Add(ZX(64, V("j")), U64(16)), U8(0)),
			Let("j", Add(V("j"), U32(1))),
		),
		Let("k", U32(0)),
		Loop("dec.c@ratecal",
			And(Ult(Mul(V("k"), U32(8192)), V("g_rate")), Ult(V("k"), U32(16))),
			Put(V("dcstage"), Add(ZX(64, V("k")), U64(32)), U8(0)),
			Let("k", Add(V("k"), U32(1))),
		),
		AllocAt("pcm", "vlc:dec.c@277",
			Mul(Mul(V("g_channels"), V("g_rate")), LShr(V("g_bits"), U32(3)))),
		Put(V("pcm"),
			Sub(Mul(Mul(ZX(64, V("g_channels")), ZX(64, V("g_rate"))),
				LShr(ZX(64, V("g_bits")), U64(3))), U64(1)),
			U8(0)),
		RetVoid(),
	))

	const (
		ccFmt  = 0x666D7420 // "fmt "
		ccNote = 0x6E6F7465 // "note"
		ccData = 0x64617461 // "data"
	)

	p.AddFunc(Fn("main", nil,
		Let("g_channels", U32(0)), Let("g_rate", U32(0)), Let("g_bits", U32(0)),
		IfThen("wav.c@sig", Or(
			Ne(Call("read_fourcc", U32(0)), U32(0x52494646)),  // "RIFF"
			Ne(Call("read_fourcc", U32(8)), U32(0x57415645))), // "WAVE"
			Abort("not a RIFF/WAVE file"),
		),
		Let("off", U32(12)),
		Loop("wav.c@walk", Ule(Add(V("off"), U32(8)), Len()),
			Let("cc", Call("read_fourcc", V("off"))),
			Let("csize", Call("read_le32", Add(V("off"), U32(4)))),
			Let("dataoff", Add(V("off"), U32(8))),
			IfThen("", Eq(V("cc"), U32(ccFmt)),
				Do(Call("wav_read_fmt", V("dataoff"), V("csize"))),
			),
			IfThen("", Eq(V("cc"), U32(ccNote)),
				Do(Call("wav_read_note", V("dataoff"))),
			),
			IfThen("", Eq(V("cc"), U32(ccData)),
				Do(Call("wav_read_data", V("dataoff"))),
			),
			// Advance by the declared size, clamped to the file (short
			// chunks end the walk).
			Let("clamped", V("csize")),
			IfThen("wav.c@clamp",
				Ugt(Add(Add(V("off"), U32(8)), V("csize")), Len()),
				Let("clamped", Sub(Len(), Add(V("off"), U32(8)))),
			),
			Let("off", Add(Add(V("off"), U32(8)), V("clamped"))),
		),
		Do(Call("dec_init")),
	))

	return &App{
		Name:    "VLC 0.8.6h",
		Short:   "vlc",
		Program: mustFinalize(p),
		Format:  formats.SWAV(),
		Paper: []PaperSite{
			{Site: "vlc:messages.c@355", Class: ClassExposed, CVE: "New",
				ErrorType: "SIGSEGV/InvalidRead", EnforcedX: 2, EnforcedY: 117,
				TargetRate: 32, TargetRateOf: 200, EnforcedRate: 108},
			{Site: "vlc:wav.c@147", Class: ClassExposed, CVE: "CVE-2008-2430",
				ErrorType: "InvalidRead/Write", EnforcedX: 0, EnforcedY: 62,
				TargetRate: 2, TargetRateOf: 2, EnforcedRate: -1, SamePathSat: false},
			{Site: "vlc:dec.c@277", Class: ClassExposed, CVE: "New",
				ErrorType: "SIGSEGV/InvalidRead", EnforcedX: 5, EnforcedY: 291,
				TargetRate: 57, TargetRateOf: 200, EnforcedRate: 97},
			{Site: "vlc:block.c@54", Class: ClassExposed, CVE: "New",
				ErrorType: "InvalidRead", EnforcedX: 0, EnforcedY: 151,
				TargetRate: 200, TargetRateOf: 200, EnforcedRate: -1},
		},
	}
}
