package apps

import (
	"diode/internal/formats"
	. "diode/internal/lang"
)

// ImageMagick reproduces ImageMagick 6.5.2's XWD reader and display path.
// Nine target sites: three exposed with no effective checks (xwindow.c@5619,
// cache.c@803, display.c@4393 — each driven by its own pair of header
// fields, so the three overflows are independent), five with masked size
// computations whose target constraints are unsatisfiable, and one colormap
// site protected by a genuine bound check (the single "Sanity Checks Prevent
// Overflow" entry for ImageMagick in Table 1).
func ImageMagick() *App {
	p := NewProgram("magick")

	p.AddFunc(readBE32("read_be32"))

	p.AddFunc(Fn("main", nil,
		IfThen("xwd.c@hdrlen", Ult(Len(), U32(60)),
			Abort("truncated XWD header"),
		),
		IfThen("xwd.c@version", Ne(Call("read_be32", U32(4)), U32(7)),
			Abort("unsupported XWD version"),
		),
		Let("depth", Call("read_be32", U32(12))),
		Let("w", Call("read_be32", U32(16))),
		Let("h", Call("read_be32", U32(20))),
		Let("xoff", Call("read_be32", U32(24))),
		Let("bpp", Call("read_be32", U32(28))),
		Let("bpl", Call("read_be32", U32(32))),
		Let("cme", Call("read_be32", U32(36))),
		Let("ncol", Call("read_be32", U32(40))),
		Let("ww", Call("read_be32", U32(44))),
		Let("wh", Call("read_be32", U32(48))),

		// Masked size computations: unsatisfiable target constraints.
		AllocAt("dscratch", "magick:xwd.c@102",
			Add(Mul(BitAnd(V("depth"), U32(31)), U32(8)), U32(8))),
		AllocAt("pscratch", "magick:xwd.c@131",
			Add(Mul(BitAnd(V("bpp"), U32(63)), U32(4)), U32(32))),
		AllocAt("cmap", "magick:colormap.c@55",
			Add(Mul(BitAnd(V("ncol"), U32(0xFF)), U32(12)), U32(12))),
		AllocAt("centry", "magick:xwd.c@160",
			Add(Mul(BitAnd(V("cme"), U32(0x1FF)), U32(8)), U32(16))),
		AllocAt("wname", "magick:xwd.c@188",
			Add(BitAnd(V("ww"), U32(0xFFF)), U32(64))),

		// Sanity-prevented: the full colormap table. The bound check keeps
		// cme*65500 below 2^32; without it the constraint is satisfiable.
		IfThen("colormap.c@80", Ugt(V("cme"), U32(60000)),
			Abort("colormap too large"),
		),
		AllocAt("cmfull", "magick:colormap.c@88", Mul(V("cme"), U32(65500))),

		// Staging block for the capped preparation loops below. Each loop's
		// iteration count follows one header field: these are the blocking
		// checks that make the §5.4 same-path constraints unsatisfiable for
		// the three exposed sites, while goal-directed enforcement never
		// needs to touch them.
		AllocAt("stage", "magick:xwd.c@stage", U32(64)),

		// Exposed site 1: the X window backing store (window geometry).
		Let("i", U32(0)),
		Loop("xwindow.c@wwprep",
			And(Ult(Mul(V("i"), U32(64)), V("ww")), Ult(V("i"), U32(16))),
			Put(V("stage"), ZX(64, V("i")), U8(0)),
			Let("i", Add(V("i"), U32(1))),
		),
		Let("j", U32(0)),
		Loop("xwindow.c@whprep",
			And(Ult(Mul(V("j"), U32(32)), V("wh")), Ult(V("j"), U32(16))),
			Put(V("stage"), Add(ZX(64, V("j")), U64(16)), U8(0)),
			Let("j", Add(V("j"), U32(1))),
		),
		AllocAt("xwbuf", "magick:xwindow.c@5619", Mul(Mul(V("ww"), V("wh")), U32(4))),
		Put(V("xwbuf"),
			Sub(Mul(Mul(ZX(64, V("ww")), ZX(64, V("wh"))), U64(4)), U64(1)),
			U8(0)),

		// Exposed site 2: the pixel cache (image dimensions).
		Let("a", U32(0)),
		Loop("cache.c@wprep",
			And(Ult(Mul(V("a"), U32(64)), V("w")), Ult(V("a"), U32(16))),
			Put(V("stage"), Add(ZX(64, V("a")), U64(32)), U8(0)),
			Let("a", Add(V("a"), U32(1))),
		),
		Let("b", U32(0)),
		Loop("cache.c@hprep",
			And(Ult(Mul(V("b"), U32(32)), V("h")), Ult(V("b"), U32(16))),
			Put(V("stage"), Add(ZX(64, V("b")), U64(48)), U8(0)),
			Let("b", Add(V("b"), U32(1))),
		),
		AllocAt("cachebuf", "magick:cache.c@803", Mul(Mul(V("w"), V("h")), U32(8))),
		Put(V("cachebuf"),
			Sub(Mul(Mul(ZX(64, V("w")), ZX(64, V("h"))), U64(8)), U64(1)),
			U8(0)),

		// Exposed site 3: the display scanline buffer (bytes-per-line and
		// x-offset).
		Let("c", U32(0)),
		Loop("display.c@bplprep",
			And(Ult(Mul(V("c"), U32(256)), V("bpl")), Ult(V("c"), U32(16))),
			Put(V("stage"), ZX(64, V("c")), U8(1)),
			Let("c", Add(V("c"), U32(1))),
		),
		Let("d", U32(0)),
		Loop("display.c@xoffprep",
			And(Ult(V("d"), V("xoff")), Ult(V("d"), U32(8))),
			Put(V("stage"), Add(ZX(64, V("d")), U64(16)), U8(1)),
			Let("d", Add(V("d"), U32(1))),
		),
		AllocAt("dispbuf", "magick:display.c@4393",
			Mul(V("bpl"), Add(V("xoff"), U32(2)))),
		Put(V("dispbuf"),
			Sub(Mul(ZX(64, V("bpl")), Add(ZX(64, V("xoff")), U64(2))), U64(1)),
			U8(0)),
	))

	return &App{
		Name:    "ImageMagick 6.5.2",
		Short:   "imagemagick",
		Program: mustFinalize(p),
		Format:  formats.SXWD(),
		Paper: []PaperSite{
			{Site: "magick:xwindow.c@5619", Class: ClassExposed, CVE: "CVE-2009-1882",
				ErrorType: "SIGSEGV/InvalidWrite", EnforcedX: 0, EnforcedY: 2521,
				TargetRate: 200, TargetRateOf: 200, EnforcedRate: -1},
			{Site: "magick:cache.c@803", Class: ClassExposed, CVE: "New",
				ErrorType: "SIGSEGV/InvalidWrite", EnforcedX: 0, EnforcedY: 306,
				TargetRate: 199, TargetRateOf: 200, EnforcedRate: -1},
			{Site: "magick:display.c@4393", Class: ClassExposed, CVE: "New",
				ErrorType: "SIGSEGV/InvalidWrite", EnforcedX: 0, EnforcedY: 154,
				TargetRate: 200, TargetRateOf: 200, EnforcedRate: -1},
			{Site: "magick:xwd.c@102", Class: ClassUnsat},
			{Site: "magick:xwd.c@131", Class: ClassUnsat},
			{Site: "magick:colormap.c@55", Class: ClassUnsat},
			{Site: "magick:xwd.c@160", Class: ClassUnsat},
			{Site: "magick:xwd.c@188", Class: ClassUnsat},
			{Site: "magick:colormap.c@88", Class: ClassPrevented},
		},
	}
}
