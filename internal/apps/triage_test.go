package apps

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"diode/internal/discover"
)

var updateTriage = flag.Bool("update-triage", false,
	"rewrite the golden triage listings under testdata/triage")

// TestGoldenTriageSites pins the full triage listing of every registered
// application. The listing is byte-identical to `diode -app X -triage` (and
// to what `make triage-smoke` diffs), so a change here means the abstract
// interpreter, the discovery pass, or a guest program changed — if
// intentional, rerun with -update-triage.
func TestGoldenTriageSites(t *testing.T) {
	for _, a := range All() {
		sites, err := a.Triaged()
		if err != nil {
			t.Fatalf("%s: %v", a.Short, err)
		}
		got := discover.FormatTriage(sites)
		path := filepath.Join("testdata", "triage", a.Short+".golden")
		if *updateTriage {
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (run with -update-triage to create)", a.Short, err)
		}
		if got != string(want) {
			t.Errorf("%s: triage listing diverges from %s (rerun with -update-triage if intentional)\ngot:\n%swant:\n%s",
				a.Short, path, got, want)
		}
	}
}

// TestTriagePreservesDiscovery checks that triage is a pure annotation pass:
// same sites, same order, same names and kinds as raw discovery — only the
// Triage, SafeNoGuards and Bounds fields differ.
func TestTriagePreservesDiscovery(t *testing.T) {
	for _, a := range All() {
		raw, err := a.Discovered()
		if err != nil {
			t.Fatal(err)
		}
		triaged, err := a.Triaged()
		if err != nil {
			t.Fatal(err)
		}
		if len(raw) != len(triaged) {
			t.Fatalf("%s: %d triaged sites, %d discovered", a.Short, len(triaged), len(raw))
		}
		for i := range raw {
			if raw[i].Name != triaged[i].Name || raw[i].Kind != triaged[i].Kind {
				t.Errorf("%s: site %d renamed by triage: %s/%s -> %s/%s",
					a.Short, i, raw[i].Name, raw[i].Kind, triaged[i].Name, triaged[i].Kind)
			}
		}
	}
}

// TestPaperSitesNotTriagedSafe is the soundness gate at registry level: every
// curated paper site is dynamically exposable or at least dynamically
// reachable, so the static triage must never claim one is safe. A failure
// here means the abstract interpreter's over-approximation broke.
func TestPaperSitesNotTriagedSafe(t *testing.T) {
	for _, a := range All() {
		sites, err := a.Triaged()
		if err != nil {
			t.Fatal(err)
		}
		byName := make(map[string]discover.Site, len(sites))
		for _, s := range sites {
			byName[s.Name] = s
		}
		for _, ps := range a.Paper {
			s, ok := byName[ps.Site]
			if !ok {
				t.Errorf("%s: paper site %s missing from triage listing", a.Short, ps.Site)
				continue
			}
			if ps.Class == ClassExposed && s.Triage == discover.TriageSafe {
				t.Errorf("%s: dynamically exposed site %s triaged safe (unsound)", a.Short, ps.Site)
			}
		}
	}
}
