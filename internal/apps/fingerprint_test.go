package apps

import "testing"

// goldenFingerprints pins the content fingerprint of every registered
// application. These change exactly when an application's guest program or
// input format changes — which is the cache-invalidation contract: an edited
// app must stop hitting stale cached results, and an untouched app must keep
// hitting them across commits. If a fingerprint here changes unexpectedly,
// the app's content changed; if you edited the app, update the golden value
// (cached results for it are correctly invalidated).
var goldenFingerprints = map[string]string{
	"dillo":       "ef0d8f9365db9a12775eabad0c86b2b206e3e1b5235311a94d0015345d0bbd65",
	"vlc":         "4014d3178c42dc7370fbd961628b7af2e41a6aa1008942721468732650936e8a",
	"swfplay":     "23561e9aa8e0ba07dd586a3894653ee675a3014ce56cd8eeafe275da2fdf9d56",
	"cwebp":       "733aae712dac3ec9016e4b3afff5c221fbf1f672be0a3dd6945125df6dd91eba",
	"imagemagick": "46505d53e88ca9e4584ed87457d8f3eab29c22e24b70b65d876e488d16f8a1d9",
	"gifview":     "10524f4b5e3f7d76d28faa8b59043633485ec9098f4e6affd72671d42a063dbf",
	"tifthumb":    "5ee2596d9103fbfac6a65b2602c202287a26b59a3c44c1be0a9d9bfb671bd251",
}

func TestGoldenFingerprints(t *testing.T) {
	list := All()
	if len(list) != len(goldenFingerprints) {
		t.Fatalf("%d registered applications but %d golden fingerprints — add the new app's golden value",
			len(list), len(goldenFingerprints))
	}
	seen := map[string]string{}
	for _, a := range list {
		fp := a.Fingerprint()
		if want := goldenFingerprints[a.Short]; fp != want {
			t.Errorf("%s: fingerprint %s, golden %s (content changed? update the golden value)",
				a.Short, fp, want)
		}
		if prev, dup := seen[fp]; dup {
			t.Errorf("%s and %s share a fingerprint", a.Short, prev)
		}
		seen[fp] = a.Short
	}
}

// constructors builds fresh, unshared instances — the registry memoizes,
// so tests that need independent instances go through these directly.
var constructors = map[string]func() *App{
	"dillo":       Dillo,
	"vlc":         VLC,
	"swfplay":     SwfPlay,
	"cwebp":       CWebP,
	"imagemagick": ImageMagick,
	"gifview":     GIFView,
	"tifthumb":    TIFThumb,
}

// TestFingerprintStableAcrossInstances checks that an independently
// constructed instance fingerprints identically to the registry's shared
// one — the cross-process cache contract: every instance of an
// application, in every process, keys the same cache entries.
func TestFingerprintStableAcrossInstances(t *testing.T) {
	for short, build := range constructors {
		reg, err := ByName(short)
		if err != nil {
			t.Fatal(err)
		}
		fresh := build()
		if fresh == reg {
			t.Fatalf("%s: constructor returned the registry instance", short)
		}
		if f1, f2 := fresh.Fingerprint(), reg.Fingerprint(); f1 != f2 {
			t.Errorf("%s: instance fingerprints differ: %s vs %s", short, f1, f2)
		}
		if reg.Fingerprint() != reg.Fingerprint() {
			t.Errorf("%s: memoized fingerprint is unstable", short)
		}
	}
}

// TestRegistryShared pins the memoization contract: repeated lookups
// return the same *App, so compile/fingerprint/discovery warm-ups are
// paid once per process.
func TestRegistryShared(t *testing.T) {
	for _, short := range Shorts(All()) {
		a1, err := ByName(short)
		if err != nil {
			t.Fatal(err)
		}
		a2, err := ByName(short)
		if err != nil {
			t.Fatal(err)
		}
		if a1 != a2 {
			t.Fatalf("%s: registry rebuilt the instance", short)
		}
	}
	if All()[0] != Paper()[0] {
		t.Fatal("All and Paper disagree on the shared instance")
	}
}
