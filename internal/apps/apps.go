// Package apps contains the five benchmark guest applications, re-authored in
// the core language with the same pipeline shapes, sanity checks, blocking
// checks and allocation-size expressions the paper describes for Dillo 2.1,
// VLC 0.8.6h, SwfPlay 0.5.5, CWebP 0.3.1 and ImageMagick 6.5.2.
//
// Each application is engineered so the measured evaluation matches the
// paper's Table 1 site classification (per app: total target sites, exposed,
// target-constraint-unsatisfiable, sanity-check-prevented), the enforced-
// branch regimes of Table 2, the same-path/blocking-check structure of §5.4
// and the bimodal success rates of §5.5. Expectation tables for reporting
// live alongside the programs.
package apps

import (
	"fmt"

	"diode/internal/formats"
	"diode/internal/lang"
)

// Class is the paper's Table 1 site classification.
type Class int

// Site classifications.
const (
	ClassExposed   Class = iota // DIODE exposes an overflow
	ClassUnsat                  // the target constraint alone is unsatisfiable
	ClassPrevented              // sanity checks prevent any overflow
)

func (c Class) String() string {
	switch c {
	case ClassExposed:
		return "exposed"
	case ClassUnsat:
		return "unsatisfiable"
	}
	return "sanity-prevented"
}

// PaperSite records what the paper reports for one target site, for the
// paper-vs-measured comparison in the reports.
type PaperSite struct {
	Site string
	// Class is the Table 1 classification.
	Class Class
	// CVE is the CVE number for previously-known overflows, "New" otherwise.
	// Empty for non-exposed sites.
	CVE string
	// ErrorType is the paper's Table 2 error type, e.g. "SIGSEGV/InvalidRead".
	ErrorType string
	// EnforcedX/EnforcedY are the paper's "X/Y" enforced-branch entry.
	EnforcedX, EnforcedY int
	// TargetRate is the paper's §5.5 success count out of TargetRateOf.
	TargetRate, TargetRateOf int
	// EnforcedRate is the paper's §5.6 success count out of 200 (-1 = N/A).
	EnforcedRate int
	// SamePathSat reports the §5.4 property: an overflow exists on the very
	// path the seed took (no blocking checks bind).
	SamePathSat bool
}

// App is one benchmark application: its guest program, input format and the
// paper's expectations.
type App struct {
	// Name is the application name with version, as in the paper's tables.
	Name string
	// Short is the registry key (e.g. "dillo").
	Short string
	// Program is the guest program; already finalized.
	Program *lang.Program
	// Format describes the input file type and supplies the seed.
	Format *formats.Format
	// Paper lists the paper's per-site expectations.
	Paper []PaperSite
}

// PaperFor returns the paper expectations for a site.
func (a *App) PaperFor(site string) (PaperSite, bool) {
	for _, p := range a.Paper {
		if p.Site == site {
			return p, true
		}
	}
	return PaperSite{}, false
}

// All returns the five benchmark applications in the paper's table order.
func All() []*App {
	return []*App{Dillo(), VLC(), SwfPlay(), CWebP(), ImageMagick()}
}

// ByName returns the application with the given short name.
func ByName(short string) (*App, error) {
	for _, a := range All() {
		if a.Short == short {
			return a, nil
		}
	}
	return nil, fmt.Errorf("apps: unknown application %q", short)
}

func mustFinalize(p *lang.Program) *lang.Program {
	if err := p.Finalize(); err != nil {
		panic(err)
	}
	return p
}

// --- shared guest-code helpers: endian readers as guest procedures ---

// readBE32 defines a procedure reading a big-endian 32-bit value at offset
// "off" (32-bit), reproducing the byte swizzle real parsers perform (and
// therefore the swizzle structure of the recorded symbolic expressions).
func readBE32(name string) *lang.Func {
	b := func(k uint64) lang.Expr {
		return lang.ZX(32, lang.In(lang.Add(lang.V("off"), lang.U32(k))))
	}
	return lang.Fn(name, []string{"off"},
		lang.Ret(lang.BitOr(
			lang.BitOr(
				lang.Shl(b(0), lang.U32(24)),
				lang.Shl(b(1), lang.U32(16))),
			lang.BitOr(
				lang.Shl(b(2), lang.U32(8)),
				b(3)))),
	)
}

// readBE16 reads a big-endian 16-bit value (zero-extended to 32 bits).
func readBE16(name string) *lang.Func {
	b := func(k uint64) lang.Expr {
		return lang.ZX(32, lang.In(lang.Add(lang.V("off"), lang.U32(k))))
	}
	return lang.Fn(name, []string{"off"},
		lang.Ret(lang.BitOr(lang.Shl(b(0), lang.U32(8)), b(1))),
	)
}

// readLE32 reads a little-endian 32-bit value.
func readLE32(name string) *lang.Func {
	b := func(k uint64) lang.Expr {
		return lang.ZX(32, lang.In(lang.Add(lang.V("off"), lang.U32(k))))
	}
	return lang.Fn(name, []string{"off"},
		lang.Ret(lang.BitOr(
			lang.BitOr(b(0), lang.Shl(b(1), lang.U32(8))),
			lang.BitOr(
				lang.Shl(b(2), lang.U32(16)),
				lang.Shl(b(3), lang.U32(24))))),
	)
}

// readLE16 reads a little-endian 16-bit value (zero-extended to 32 bits).
func readLE16(name string) *lang.Func {
	b := func(k uint64) lang.Expr {
		return lang.ZX(32, lang.In(lang.Add(lang.V("off"), lang.U32(k))))
	}
	return lang.Fn(name, []string{"off"},
		lang.Ret(lang.BitOr(b(0), lang.Shl(b(1), lang.U32(8)))),
	)
}

// chunkChecksum defines a procedure computing the additive 32-bit checksum
// over [start, start+count) input bytes — the guest-side counterpart of the
// formats' sum32.
func chunkChecksum(name string) *lang.Func {
	return lang.Fn(name, []string{"start", "count"},
		lang.Let("sum", lang.U32(0)),
		lang.Let("i", lang.U32(0)),
		lang.Loop(name+"/loop", lang.Ult(lang.V("i"), lang.V("count")),
			lang.Let("sum", lang.Add(lang.V("sum"),
				lang.ZX(32, lang.In(lang.Add(lang.V("start"), lang.V("i")))))),
			lang.Let("i", lang.Add(lang.V("i"), lang.U32(1))),
		),
		lang.Ret(lang.V("sum")),
	)
}
