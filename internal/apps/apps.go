// Package apps contains the benchmark guest applications, re-authored in the
// core language, and the registry the harness and CLIs resolve them from.
//
// The registry is split in two:
//
//   - Paper returns the paper's five applications — Dillo 2.1, VLC 0.8.6h,
//     SwfPlay 0.5.5, CWebP 0.3.1 and ImageMagick 6.5.2 — each engineered so
//     the measured evaluation matches the paper's Table 1 site
//     classification, the enforced-branch regimes of Table 2, the
//     same-path/blocking-check structure of §5.4 and the bimodal success
//     rates of §5.5. Their PaperSite expectation tables live alongside the
//     programs.
//   - Extended returns the extended workload suite — GIFView 0.4 and
//     TIFThumb 0.2 — applications with no paper counterpart (Paper is nil
//     for them; reports render measured-only columns). They stress the
//     pipeline with input shapes the paper's formats never produce:
//     sub-block framed chains, offset indirection, little-endian dimension
//     fields and full-width 32-bit size fields.
//
// All returns both groups; ByName resolves any registered application.
package apps

import (
	"fmt"
	"strings"
	"sync"

	"diode/internal/absint"
	"diode/internal/cache"
	"diode/internal/discover"
	"diode/internal/formats"
	"diode/internal/interp"
	"diode/internal/lang"
)

// Class is the paper's Table 1 site classification.
type Class int

// Site classifications.
const (
	ClassExposed   Class = iota // DIODE exposes an overflow
	ClassUnsat                  // the target constraint alone is unsatisfiable
	ClassPrevented              // sanity checks prevent any overflow
)

func (c Class) String() string {
	switch c {
	case ClassExposed:
		return "exposed"
	case ClassUnsat:
		return "unsatisfiable"
	}
	return "sanity-prevented"
}

// PaperSite records what the paper reports for one target site, for the
// paper-vs-measured comparison in the reports.
type PaperSite struct {
	Site string
	// Class is the Table 1 classification.
	Class Class
	// CVE is the CVE number for previously-known overflows, "New" otherwise.
	// Empty for non-exposed sites.
	CVE string
	// ErrorType is the paper's Table 2 error type, e.g. "SIGSEGV/InvalidRead".
	ErrorType string
	// EnforcedX/EnforcedY are the paper's "X/Y" enforced-branch entry.
	EnforcedX, EnforcedY int
	// TargetRate is the paper's §5.5 success count out of TargetRateOf.
	TargetRate, TargetRateOf int
	// EnforcedRate is the paper's §5.6 success count out of 200 (-1 = N/A).
	EnforcedRate int
	// SamePathSat reports the §5.4 property: an overflow exists on the very
	// path the seed took (no blocking checks bind).
	SamePathSat bool
}

// App is one benchmark application: its guest program, input format and the
// paper's expectations.
type App struct {
	// Name is the application name with version, as in the paper's tables.
	Name string
	// Short is the registry key (e.g. "dillo").
	Short string
	// Program is the guest program; already finalized.
	Program *lang.Program
	// Format describes the input file type and supplies the seed.
	Format *formats.Format
	// Paper lists the paper's per-site expectations.
	Paper []PaperSite

	compileOnce sync.Once
	compiled    *interp.Compiled

	fpOnce sync.Once
	fp     string

	discoverOnce sync.Once
	discovered   []discover.Site
	discoverErr  error

	triageOnce sync.Once
	triaged    []discover.Site
	triageErr  error

	probeMu sync.Mutex
	probes  map[string]*App
}

// Compiled returns the application's guest program in slot-resolved compiled
// form, compiling on first use. The result is immutable and shared: every
// Analyzer, Hunter and experiment path holding this *App executes the same
// Compiled on its own private interp.Machine, so a sweep pays program
// analysis once per application rather than once per site or per run. Safe
// for concurrent use.
func (a *App) Compiled() *interp.Compiled {
	a.compileOnce.Do(func() { a.compiled = interp.Compile(a.Program) })
	return a.compiled
}

// Fingerprint returns the application's canonical content hash — the cache
// identity of its guest program and input format, computed once per instance
// under sync.Once like Compiled(). Registry constructors build applications
// deterministically, so every instance of an application fingerprints equal,
// in every process: the dispatch layer keys shared caches on it.
func (a *App) Fingerprint() string {
	a.fpOnce.Do(func() { a.fp = cache.Fingerprint(a.Program, a.Format) })
	return a.fp
}

// Discovered returns the application's statically discovered overflow
// sites in deterministic program-traversal order, running the discovery
// pass once per instance under sync.Once like Compiled(). The curated
// Paper tables are expectations layered over this list: every PaperSite
// names an alloc-kind site that discovery must also find (pinned by
// TestPaperSitesAreDiscovered). Safe for concurrent use.
func (a *App) Discovered() ([]discover.Site, error) {
	a.discoverOnce.Do(func() { a.discovered, a.discoverErr = discover.Sites(a.Program) })
	return a.discovered, a.discoverErr
}

// Triaged returns the application's discovered sites annotated with the
// static value-range triage (absint pass), computed once per instance under
// sync.Once like Discovered(). Safe for concurrent use.
func (a *App) Triaged() ([]discover.Site, error) {
	a.triageOnce.Do(func() {
		sites, err := a.Discovered()
		if err != nil {
			a.triageErr = err
			return
		}
		an, err := absint.Analyze(a.Program)
		if err != nil {
			a.triageErr = fmt.Errorf("apps: %s: triage analysis: %w", a.Short, err)
			return
		}
		a.triaged = an.TriageSites(sites)
	})
	return a.triaged, a.triageErr
}

// Probe returns the derived application that hunts the named arith site:
// the guest program instrumented with a probe allocation at the arith node
// (discover.Probe), sharing the original's format but with no paper
// expectations. Instances are memoized per site, so the derived program's
// compiled form, fingerprint and analyses warm up once. The derived Short
// is suffixed with the site so a cache that indexes instances by short name
// can never shadow the base application with a probe variant. Safe for
// concurrent use.
func (a *App) Probe(site string) (*App, error) {
	a.probeMu.Lock()
	defer a.probeMu.Unlock()
	if p, ok := a.probes[site]; ok {
		return p, nil
	}
	sites, err := a.Discovered()
	if err != nil {
		return nil, err
	}
	var rec *discover.Site
	for i := range sites {
		if sites[i].Name == site {
			rec = &sites[i]
			break
		}
	}
	if rec == nil {
		return nil, fmt.Errorf("apps: %s has no discovered site %q", a.Short, site)
	}
	prog, err := discover.Probe(a.Program, *rec)
	if err != nil {
		return nil, err
	}
	p := &App{Name: a.Name, Short: a.Short + "!" + site, Program: prog, Format: a.Format}
	if a.probes == nil {
		a.probes = make(map[string]*App)
	}
	a.probes[site] = p
	return p, nil
}

// PaperFor returns the paper expectations for a site.
func (a *App) PaperFor(site string) (PaperSite, bool) {
	for _, p := range a.Paper {
		if p.Site == site {
			return p, true
		}
	}
	return PaperSite{}, false
}

// The registry is built once per process and shared: application
// constructors are deterministic, and *App's derived state (Compiled,
// Fingerprint, Discovered) is immutable once computed, so sharing
// instances means those warm-ups are paid once rather than per lookup.
var (
	registryOnce sync.Once
	paperApps    []*App
	extendedApps []*App
	byShort      map[string]*App
)

func registry() {
	registryOnce.Do(func() {
		paperApps = []*App{Dillo(), VLC(), SwfPlay(), CWebP(), ImageMagick()}
		extendedApps = []*App{GIFView(), TIFThumb()}
		byShort = make(map[string]*App, len(paperApps)+len(extendedApps))
		for _, a := range paperApps {
			byShort[a.Short] = a
		}
		for _, a := range extendedApps {
			byShort[a.Short] = a
		}
	})
}

// Paper returns the paper's five benchmark applications in the paper's
// table order. The instances are shared across calls.
func Paper() []*App {
	registry()
	return append([]*App(nil), paperApps...)
}

// Extended returns the extended workload suite: benchmark applications with
// no paper counterpart, evaluated with measured-only reporting. The
// instances are shared across calls.
func Extended() []*App {
	registry()
	return append([]*App(nil), extendedApps...)
}

// All returns every registered benchmark application: the paper suite
// followed by the extended suite. The instances are shared across calls.
func All() []*App {
	return append(Paper(), Extended()...)
}

// ByName returns the application with the given short name.
func ByName(short string) (*App, error) {
	registry()
	if a, ok := byShort[short]; ok {
		return a, nil
	}
	return nil, fmt.Errorf("apps: unknown application %q (known: %s)", short, strings.Join(Shorts(All()), ", "))
}

// Shorts returns the short names of the given applications.
func Shorts(list []*App) []string {
	out := make([]string, len(list))
	for i, a := range list {
		out[i] = a.Short
	}
	return out
}

func mustFinalize(p *lang.Program) *lang.Program {
	if err := p.Finalize(); err != nil {
		panic(err)
	}
	return p
}

// --- shared guest-code helpers: endian readers as guest procedures ---

// readBE32 defines a procedure reading a big-endian 32-bit value at offset
// "off" (32-bit), reproducing the byte swizzle real parsers perform (and
// therefore the swizzle structure of the recorded symbolic expressions).
func readBE32(name string) *lang.Func {
	b := func(k uint64) lang.Expr {
		return lang.ZX(32, lang.In(lang.Add(lang.V("off"), lang.U32(k))))
	}
	return lang.Fn(name, []string{"off"},
		lang.Ret(lang.BitOr(
			lang.BitOr(
				lang.Shl(b(0), lang.U32(24)),
				lang.Shl(b(1), lang.U32(16))),
			lang.BitOr(
				lang.Shl(b(2), lang.U32(8)),
				b(3)))),
	)
}

// readBE16 reads a big-endian 16-bit value (zero-extended to 32 bits).
func readBE16(name string) *lang.Func {
	b := func(k uint64) lang.Expr {
		return lang.ZX(32, lang.In(lang.Add(lang.V("off"), lang.U32(k))))
	}
	return lang.Fn(name, []string{"off"},
		lang.Ret(lang.BitOr(lang.Shl(b(0), lang.U32(8)), b(1))),
	)
}

// readLE32 reads a little-endian 32-bit value.
func readLE32(name string) *lang.Func {
	b := func(k uint64) lang.Expr {
		return lang.ZX(32, lang.In(lang.Add(lang.V("off"), lang.U32(k))))
	}
	return lang.Fn(name, []string{"off"},
		lang.Ret(lang.BitOr(
			lang.BitOr(b(0), lang.Shl(b(1), lang.U32(8))),
			lang.BitOr(
				lang.Shl(b(2), lang.U32(16)),
				lang.Shl(b(3), lang.U32(24))))),
	)
}

// readLE16 reads a little-endian 16-bit value (zero-extended to 32 bits).
func readLE16(name string) *lang.Func {
	b := func(k uint64) lang.Expr {
		return lang.ZX(32, lang.In(lang.Add(lang.V("off"), lang.U32(k))))
	}
	return lang.Fn(name, []string{"off"},
		lang.Ret(lang.BitOr(b(0), lang.Shl(b(1), lang.U32(8)))),
	)
}

// chunkChecksum defines a procedure computing the additive 32-bit checksum
// over [start, start+count) input bytes — the guest-side counterpart of the
// formats' sum32.
func chunkChecksum(name string) *lang.Func {
	return lang.Fn(name, []string{"start", "count"},
		lang.Let("sum", lang.U32(0)),
		lang.Let("i", lang.U32(0)),
		lang.Loop(name+"/loop", lang.Ult(lang.V("i"), lang.V("count")),
			lang.Let("sum", lang.Add(lang.V("sum"),
				lang.ZX(32, lang.In(lang.Add(lang.V("start"), lang.V("i")))))),
			lang.Let("i", lang.Add(lang.V("i"), lang.U32(1))),
		),
		lang.Ret(lang.V("sum")),
	)
}
