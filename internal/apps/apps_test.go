package apps

import (
	"testing"

	"diode/internal/interp"
)

// TestSeedsRunClean: every application must process its seed input with no
// overflow, no memory errors and a normal exit — the paper's premise that
// "the applications process [the seed inputs] correctly with no overflows".
func TestSeedsRunClean(t *testing.T) {
	for _, a := range All() {
		out := interp.Run(a.Program, a.Format.Seed, interp.Options{TrackTaint: true})
		if out.Kind != interp.OutOK {
			t.Errorf("%s: seed outcome = %v (abort=%q err=%v)", a.Short, out.Kind, out.AbortMsg, out.Err)
			continue
		}
		if len(out.MemErrs) != 0 {
			t.Errorf("%s: seed run has memory errors: %+v", a.Short, out.MemErrs)
		}
		for _, ev := range out.Allocs {
			if ev.Wrapped {
				t.Errorf("%s: seed run overflows at %s", a.Short, ev.Site)
			}
		}
	}
}

// TestTargetSiteCounts: the number of distinct allocation sites whose size is
// influenced by the input must match Table 1's "Total Target Sites" column
// for the paper suite, and the documented site counts for the extended one.
func TestTargetSiteCounts(t *testing.T) {
	want := map[string]int{
		"dillo":       12,
		"vlc":         4,
		"swfplay":     8,
		"cwebp":       7,
		"imagemagick": 9,
		"gifview":     5,
		"tifthumb":    5,
	}
	for _, a := range All() {
		out := interp.Run(a.Program, a.Format.Seed, interp.Options{TrackTaint: true})
		seen := map[string]bool{}
		for _, ev := range out.Allocs {
			if !ev.Taint.Empty() {
				seen[ev.Site] = true
			}
		}
		if len(seen) != want[a.Short] {
			names := make([]string, 0, len(seen))
			for s := range seen {
				names = append(names, s)
			}
			t.Errorf("%s: %d tainted sites, want %d: %v", a.Short, len(seen), want[a.Short], names)
		}
	}
}

// TestPaperTablesConsistent: the embedded paper expectations must reproduce
// Table 1's totals (40 sites: 14 exposed, 17 unsatisfiable, 9 prevented).
func TestPaperTablesConsistent(t *testing.T) {
	wantPerApp := map[string][3]int{ // exposed, unsat, prevented
		"dillo":       {3, 1, 8},
		"vlc":         {4, 0, 0},
		"swfplay":     {3, 5, 0},
		"cwebp":       {1, 6, 0},
		"imagemagick": {3, 5, 1},
	}
	totalSites, totalExposed := 0, 0
	for _, a := range Paper() {
		var got [3]int
		for _, ps := range a.Paper {
			got[int(ps.Class)]++
		}
		if got != wantPerApp[a.Short] {
			t.Errorf("%s: paper classification %v, want %v", a.Short, got, wantPerApp[a.Short])
		}
		totalSites += len(a.Paper)
		totalExposed += got[0]
	}
	if totalSites != 40 {
		t.Errorf("total paper sites = %d, want 40", totalSites)
	}
	if totalExposed != 14 {
		t.Errorf("total exposed = %d, want 14", totalExposed)
	}
}

// TestPaperSitesMatchPrograms: every paper row must correspond to a real
// allocation site in the program, and vice versa for tainted sites.
func TestPaperSitesMatchPrograms(t *testing.T) {
	for _, a := range All() {
		progSites := map[string]bool{}
		for _, s := range a.Program.Sites() {
			progSites[s] = true
		}
		for _, ps := range a.Paper {
			if !progSites[ps.Site] {
				t.Errorf("%s: paper row %s has no allocation site in the program", a.Short, ps.Site)
			}
		}
	}
}

// TestSeedsExerciseAllPaperSites: every classified site must execute on the
// seed input (Table 1 counts *exercised* sites).
func TestSeedsExerciseAllPaperSites(t *testing.T) {
	for _, a := range All() {
		out := interp.Run(a.Program, a.Format.Seed, interp.Options{TrackTaint: true})
		executed := map[string]bool{}
		for _, ev := range out.Allocs {
			executed[ev.Site] = true
		}
		for _, ps := range a.Paper {
			if !executed[ps.Site] {
				t.Errorf("%s: site %s not exercised by the seed", a.Short, ps.Site)
			}
		}
	}
}

// TestRegistrySplit: All is exactly Paper followed by Extended, extended
// apps carry no paper expectations, and ByName resolves every registered
// application.
func TestRegistrySplit(t *testing.T) {
	paper, ext, all := Paper(), Extended(), All()
	if len(all) != len(paper)+len(ext) {
		t.Fatalf("All has %d apps, want %d", len(all), len(paper)+len(ext))
	}
	for i, a := range append(paper, ext...) {
		if all[i].Short != a.Short {
			t.Errorf("All[%d] = %s, want %s", i, all[i].Short, a.Short)
		}
	}
	for _, a := range ext {
		if len(a.Paper) != 0 {
			t.Errorf("extended app %s carries paper expectations", a.Short)
		}
	}
	for _, a := range all {
		got, err := ByName(a.Short)
		if err != nil || got.Short != a.Short {
			t.Errorf("ByName(%q) = %v, %v", a.Short, got, err)
		}
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Error("ByName accepted an unknown application")
	}
}

// TestSymbolicRunRecordsTargets: stage-2 instrumentation must attach a
// symbolic size expression to every tainted site.
func TestSymbolicRunRecordsTargets(t *testing.T) {
	for _, a := range All() {
		out := interp.Run(a.Program, a.Format.Seed, interp.Options{TrackSymbolic: true})
		if out.Kind != interp.OutOK {
			t.Fatalf("%s: symbolic run outcome %v", a.Short, out.Kind)
		}
		for _, ev := range out.Allocs {
			if !ev.Taint.Empty() && ev.Sym == nil {
				t.Errorf("%s: tainted site %s has no symbolic size", a.Short, ev.Site)
			}
		}
		if len(out.Branches) == 0 {
			t.Errorf("%s: no relevant branches recorded", a.Short)
		}
	}
}
