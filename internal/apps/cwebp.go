package apps

import (
	"diode/internal/formats"
	. "diode/internal/lang"
)

// CWebP reproduces CWebP 0.3.1, which converts JPEG input to WebP; the
// vulnerable code is its JPEG decoder. Seven target sites: one exposed
// (jpegdec.c@248 — the RGBA buffer w*h*4 with no sanity checks, allocated
// before any dimension-dependent loop, so its same-path constraint is
// satisfiable, §5.4) and six with unsatisfiable target constraints.
func CWebP() *App {
	p := NewProgram("cwebp")

	p.AddFunc(readBE16("read_be16"))

	p.AddFunc(Fn("jd_app0", []string{"off"},
		Let("vmajor", ZX(32, In(Add(V("off"), U32(6))))),
		AllocAt("appbuf", "cwebp:jpegdec.c@96",
			Add(Mul(V("vmajor"), U32(32)), U32(16))),
		RetVoid(),
	))

	p.AddFunc(Fn("jd_dqt", []string{"off"},
		Let("tid", ZX(32, In(V("off")))),
		AllocAt("qtab", "cwebp:jpegdec.c@133",
			Add(Mul(V("tid"), U32(128)), U32(64))),
		RetVoid(),
	))

	p.AddFunc(Fn("jd_sof", []string{"off"},
		Let("prec", ZX(32, In(V("off")))),
		Let("h", Call("read_be16", Add(V("off"), U32(1)))),
		Let("w", Call("read_be16", Add(V("off"), U32(3)))),
		Let("nc", ZX(32, In(Add(V("off"), U32(5))))),
		Let("g_nc", V("nc")),
		// Unsatisfiable: precision-derived sample scratch.
		AllocAt("scratch", "cwebp:jpegdec.c@180",
			Add(Mul(V("prec"), U32(16)), U32(8))),
		// Relevant but non-blocking: same-path stays satisfiable (§5.4).
		IfThen("jpegdec.c@241", Eq(BitOr(V("h"), V("w")), U32(0)),
			Abort("empty image"),
		),
		// Exposed: the RGBA conversion buffer, allocated from raw
		// dimensions with no checks and before any loop over them.
		AllocAt("rgba", "cwebp:jpegdec.c@248", Mul(Mul(V("w"), V("h")), U32(4))),
		Put(V("rgba"),
			Sub(Mul(Mul(ZX(64, V("w")), ZX(64, V("h"))), U64(4)), U64(1)),
			U8(0)),
		// Row loop after the site (adds realistic relevant branches).
		Let("rows8", LShr(Add(V("h"), U32(7)), U32(3))),
		Let("r", U32(0)),
		Loop("jpegdec.c@rows", Ult(V("r"), V("rows8")),
			Put(V("rgba"), ZX(64, V("r")), U8(2)),
			Let("r", Add(V("r"), U32(1))),
		),
		RetVoid(),
	))

	p.AddFunc(Fn("jd_dht", []string{"off"},
		Let("class", ZX(32, In(V("off")))),
		AllocAt("htab", "cwebp:huffdec.c@72",
			Add(Mul(V("class"), U32(17)), U32(32))),
		RetVoid(),
	))

	p.AddFunc(Fn("jd_sos", []string{"off"},
		Let("snc", ZX(32, In(V("off")))),
		AllocAt("scanbuf", "cwebp:jpegdec.c@301",
			Add(Mul(V("snc"), U32(8)), U32(8))),
		Let("g_done", U32(1)),
		RetVoid(),
	))

	// WebP encoder output buffer after decoding: bounded by construction.
	p.AddFunc(Fn("webp_encode", nil,
		AllocAt("outbuf", "cwebp:webpenc.c@210",
			Add(Mul(BitAnd(V("g_nc"), U32(7)), U32(40)), U32(100))),
		RetVoid(),
	))

	p.AddFunc(Fn("main", nil,
		Let("g_nc", U32(0)), Let("g_done", U32(0)),
		IfThen("jpegdec.c@soi", Or(
			Ne(ZX(32, InAt(0)), U32(0xFF)),
			Ne(ZX(32, InAt(1)), U32(0xD8))),
			Abort("missing SOI"),
		),
		Let("off", U32(2)),
		Loop("jpegdec.c@walk",
			And(Ule(Add(V("off"), U32(4)), Len()), Eq(V("g_done"), U32(0))),
			IfThen("jpegdec.c@marker", Ne(ZX(32, In(V("off"))), U32(0xFF)),
				Abort("bad marker"),
			),
			Let("marker", ZX(32, In(Add(V("off"), U32(1))))),
			Let("seglen", Call("read_be16", Add(V("off"), U32(2)))),
			IfThen("jpegdec.c@seglen", Ult(V("seglen"), U32(2)),
				Abort("bad segment length"),
			),
			IfThen("jpegdec.c@segbound",
				Ugt(Add(Add(V("off"), U32(2)), V("seglen")), Len()),
				Abort("segment runs past EOF"),
			),
			Let("dataoff", Add(V("off"), U32(4))),
			IfThen("", Eq(V("marker"), U32(0xE0)), Do(Call("jd_app0", V("dataoff")))),
			IfThen("", Eq(V("marker"), U32(0xDB)), Do(Call("jd_dqt", V("dataoff")))),
			IfThen("", Eq(V("marker"), U32(0xC0)), Do(Call("jd_sof", V("dataoff")))),
			IfThen("", Eq(V("marker"), U32(0xC4)), Do(Call("jd_dht", V("dataoff")))),
			IfThen("", Eq(V("marker"), U32(0xDA)), Do(Call("jd_sos", V("dataoff")))),
			Let("off", Add(Add(V("off"), U32(2)), V("seglen"))),
		),
		Do(Call("webp_encode")),
	))

	return &App{
		Name:    "CWebP 0.3.1",
		Short:   "cwebp",
		Program: mustFinalize(p),
		Format:  formats.SJPG(),
		Paper: []PaperSite{
			{Site: "cwebp:jpegdec.c@248", Class: ClassExposed, CVE: "New",
				ErrorType: "SIGSEGV/InvalidWrite", EnforcedX: 0, EnforcedY: 651,
				TargetRate: 155, TargetRateOf: 200, EnforcedRate: -1, SamePathSat: true},
			{Site: "cwebp:jpegdec.c@96", Class: ClassUnsat},
			{Site: "cwebp:jpegdec.c@133", Class: ClassUnsat},
			{Site: "cwebp:jpegdec.c@180", Class: ClassUnsat},
			{Site: "cwebp:huffdec.c@72", Class: ClassUnsat},
			{Site: "cwebp:jpegdec.c@301", Class: ClassUnsat},
			{Site: "cwebp:webpenc.c@210", Class: ClassUnsat},
		},
	}
}
