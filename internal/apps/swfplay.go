package apps

import (
	"diode/internal/formats"
	. "diode/internal/lang"
)

// SwfPlay reproduces SwfPlay 0.5.5's JPEG decoding path (swfdec). Its eight
// target sites split 3 exposed / 5 unsatisfiable / 0 sanity-prevented, as in
// Table 1. None of the exposed sites needs branch enforcement (the paper
// reports 0 enforced branches and 200/200 target-only success): the SOF
// handler allocates from raw width/height with no sanity checks.
//
// jpeg.c@192 allocates before any width/height-dependent loop executes, so
// an overflow exists on the exact seed path (one of the two sites in §5.4
// for which the same-path constraint is satisfiable). The two RGB decoder
// sites sit after the MCU row loop, whose iteration count is a function of
// height — the blocking check that makes their same-path constraints
// unsatisfiable.
func SwfPlay() *App {
	p := NewProgram("swfplay")

	p.AddFunc(readBE16("read_be16"))

	p.AddFunc(Fn("jpeg_app0", []string{"off"},
		Let("vmajor", ZX(32, In(Add(V("off"), U32(6))))),
		AllocAt("appbuf", "swfplay:jpeg_mem.c@88",
			Add(Mul(V("vmajor"), U32(16)), U32(8))),
		RetVoid(),
	))

	p.AddFunc(Fn("jpeg_dqt", []string{"off"},
		Let("tid", ZX(32, In(V("off")))),
		AllocAt("qtab", "swfplay:jpeg_quant.c@61",
			Add(Mul(V("tid"), U32(64)), U32(64))),
		// Copy the 32 seed table bytes.
		Let("i", U32(0)),
		Loop("jpeg_quant.c@copy", Ult(V("i"), U32(32)),
			Put(V("qtab"), ZX(64, V("i")), In(Add(V("off"), Add(V("i"), U32(1))))),
			Let("i", Add(V("i"), U32(1))),
		),
		RetVoid(),
	))

	p.AddFunc(Fn("jpeg_sof", []string{"off"},
		Let("prec", ZX(32, In(V("off")))),
		Let("h", Call("read_be16", Add(V("off"), U32(1)))),
		Let("w", Call("read_be16", Add(V("off"), U32(3)))),
		Let("nc", ZX(32, In(Add(V("off"), U32(5))))),
		Let("g_w", V("w")),
		Let("g_h", V("h")),
		// Unsatisfiable: the component descriptor array.
		AllocAt("comps", "swfplay:jpeg.c@150",
			Add(Mul(V("prec"), U32(8)), U32(24))),
		// A relevant but non-blocking check: it never binds against the
		// overflow, so this site's same-path constraint stays satisfiable
		// (one of the two §5.4 sites).
		IfThen("jpeg.c@186", Eq(BitOr(V("h"), V("w")), U32(0)),
			Abort("empty image"),
		),
		// Exposed, no checks, before any w/h loop: the strip buffer. An
		// overflow exists on the seed's exact path (§5.4).
		AllocAt("strip", "swfplay:jpeg.c@192", Mul(Mul(V("h"), V("w")), U32(2))),
		Put(V("strip"),
			Sub(Mul(Mul(ZX(64, V("h")), ZX(64, V("w"))), U64(2)), U64(1)),
			U8(0)),
		// MCU row loop: iteration count is a function of height — the
		// blocking check for the two decoder sites below.
		Let("rows8", LShr(Add(V("h"), U32(7)), U32(3))),
		Let("r", U32(0)),
		Loop("jpeg.c@mcu_rows", Ult(V("r"), V("rows8")),
			Put(V("strip"), ZX(64, V("r")), U8(1)),
			Let("r", Add(V("r"), U32(1))),
		),
		// The two RGB decoder sites (exposed, no checks).
		AllocAt("rgb1", "swfplay:jpeg_rgb_decoder.c@253",
			Mul(Mul(V("w"), V("h")), U32(3))),
		Put(V("rgb1"),
			Sub(Mul(Mul(ZX(64, V("w")), ZX(64, V("h"))), U64(3)), U64(1)),
			U8(0)),
		AllocAt("rgb2", "swfplay:jpeg_rgb_decoder.c@257",
			Mul(Mul(V("w"), V("h")), U32(4))),
		Put(V("rgb2"),
			Sub(Mul(Mul(ZX(64, V("w")), ZX(64, V("h"))), U64(4)), U64(1)),
			U8(0)),
		RetVoid(),
	))

	p.AddFunc(Fn("jpeg_dht", []string{"off"},
		Let("class", ZX(32, In(V("off")))),
		AllocAt("htab", "swfplay:huffman.c@44",
			Add(Mul(V("class"), U32(17)), U32(16))),
		RetVoid(),
	))

	p.AddFunc(Fn("jpeg_sos", []string{"off"},
		Let("snc", ZX(32, In(V("off")))),
		AllocAt("scanbuf", "swfplay:jpeg.c@310",
			Add(Mul(V("snc"), U32(2)), U32(12))),
		Let("g_done", U32(1)),
		RetVoid(),
	))

	p.AddFunc(Fn("main", nil,
		Let("g_w", U32(0)), Let("g_h", U32(0)), Let("g_done", U32(0)),
		IfThen("jpeg.c@soi", Or(
			Ne(ZX(32, InAt(0)), U32(0xFF)),
			Ne(ZX(32, InAt(1)), U32(0xD8))),
			Abort("missing SOI"),
		),
		Let("off", U32(2)),
		Loop("jpeg.c@walk",
			And(Ule(Add(V("off"), U32(4)), Len()), Eq(V("g_done"), U32(0))),
			IfThen("jpeg.c@marker", Ne(ZX(32, In(V("off"))), U32(0xFF)),
				Abort("bad marker"),
			),
			Let("marker", ZX(32, In(Add(V("off"), U32(1))))),
			Let("seglen", Call("read_be16", Add(V("off"), U32(2)))),
			IfThen("jpeg.c@seglen", Ult(V("seglen"), U32(2)),
				Abort("bad segment length"),
			),
			IfThen("jpeg.c@segbound",
				Ugt(Add(Add(V("off"), U32(2)), V("seglen")), Len()),
				Abort("segment runs past EOF"),
			),
			Let("dataoff", Add(V("off"), U32(4))),
			IfThen("", Eq(V("marker"), U32(0xE0)), Do(Call("jpeg_app0", V("dataoff")))),
			IfThen("", Eq(V("marker"), U32(0xDB)), Do(Call("jpeg_dqt", V("dataoff")))),
			IfThen("", Eq(V("marker"), U32(0xC0)), Do(Call("jpeg_sof", V("dataoff")))),
			IfThen("", Eq(V("marker"), U32(0xC4)), Do(Call("jpeg_dht", V("dataoff")))),
			IfThen("", Eq(V("marker"), U32(0xDA)), Do(Call("jpeg_sos", V("dataoff")))),
			Let("off", Add(Add(V("off"), U32(2)), V("seglen"))),
		),
	))

	return &App{
		Name:    "SwfPlay 0.5.5",
		Short:   "swfplay",
		Program: mustFinalize(p),
		Format:  formats.SJPG(),
		Paper: []PaperSite{
			{Site: "swfplay:jpeg_rgb_decoder.c@253", Class: ClassExposed, CVE: "New",
				ErrorType: "SIGSEGV/InvalidWrite", EnforcedX: 0, EnforcedY: 1736,
				TargetRate: 200, TargetRateOf: 200, EnforcedRate: -1},
			{Site: "swfplay:jpeg_rgb_decoder.c@257", Class: ClassExposed, CVE: "New",
				ErrorType: "SIGSEGV/InvalidWrite", EnforcedX: 0, EnforcedY: 1736,
				TargetRate: 200, TargetRateOf: 200, EnforcedRate: -1},
			{Site: "swfplay:jpeg.c@192", Class: ClassExposed, CVE: "New",
				ErrorType: "SIGABRT/InvalidWrite", EnforcedX: 0, EnforcedY: 1012,
				TargetRate: 200, TargetRateOf: 200, EnforcedRate: -1, SamePathSat: true},
			{Site: "swfplay:jpeg_mem.c@88", Class: ClassUnsat},
			{Site: "swfplay:jpeg_quant.c@61", Class: ClassUnsat},
			{Site: "swfplay:jpeg.c@150", Class: ClassUnsat},
			{Site: "swfplay:huffman.c@44", Class: ClassUnsat},
			{Site: "swfplay:jpeg.c@310", Class: ClassUnsat},
		},
	}
}
