package apps

import (
	"diode/internal/formats"
	. "diode/internal/lang"
)

// GIFView is the first extended-suite benchmark (no paper counterpart): a
// GIF-style image viewer over the SGIF format. It exercises branch and field
// shapes the five paper applications never produce — little-endian 16-bit
// dimensions, a sub-block framed data chain the walker must skip, and the
// classic logical-screen/frame-descriptor split: the screen buffer is
// allocated from the logical screen descriptor while frame decoding writes
// at coordinates taken from the image descriptor.
//
// Five target sites:
//
//   - gif.c@155 (exposed): the screen buffer lsw*lsh*4. Two tile-alignment
//     checks and a wrapping-arithmetic size check guard it, so the Figure 7
//     loop must enforce several branches before the overflow fires — random
//     target-constraint models essentially never pass the checks unaided.
//   - gif.c@183 (unsatisfiable): the global color table, 3*(2<<(flags&7)),
//     is bounded by construction.
//   - lzw.c@88 (sanity-prevented): the LZW code table, (8<<lzwmin) in 16-bit
//     arithmetic, can wrap but a genuine code-size check prevents it.
//   - gif.c@466 (exposed): the frame pixel buffer fw*fh*2, allocated
//     straight from the image descriptor with no prior checks — the paper's
//     check-free pattern (same-path satisfiable, like CWebP jpegdec.c@248).
//   - gif.c@512 (sanity-prevented): the row de-interlace buffer, fw*5 in
//     16-bit arithmetic behind a genuine frame-width limit.
func GIFView() *App {
	p := NewProgram("gifview")

	p.AddFunc(readLE16("read_le16"))
	p.AddFunc(chunkChecksum("gif_checksum"))

	// Screen setup: the logical-screen site with its guarding checks.
	p.AddFunc(Fn("gif_screen_setup", nil,
		IfThen("gif.c@131", Eq(BitOr(V("g_lsw"), V("g_lsh")), U32(0)),
			Abort("empty logical screen"),
		),
		// Tile-renderer alignment requirements: narrow slices of the value
		// space, so overflow models must have them enforced.
		IfThen("gif.c@137", Ne(BitAnd(V("g_lsw"), U32(31)), U32(0)),
			Abort("screen width not tile-aligned"),
		),
		IfThen("gif.c@141", Ne(BitAnd(V("g_lsh"), U32(15)), U32(0)),
			Abort("screen height not tile-aligned"),
		),
		// Size check computed in wrapping 32-bit arithmetic: evadable.
		Let("ssz", Mul(Mul(V("g_lsw"), V("g_lsh")), U32(4))),
		IfElse("gif.c@149", Ugt(V("ssz"), U32(0x2000000)),
			Block{Warn("screen buffer too large, deferring allocation")},
			Block{
				AllocAt("g_screen", "gifview:gif.c@155",
					Mul(Mul(V("g_lsw"), V("g_lsh")), U32(4))),
				Let("g_havescreen", U32(1)),
				// Touch the last byte of the *intended* screen with 64-bit
				// indexing: lands far outside the block when the 32-bit size
				// computation wrapped.
				Put(V("g_screen"),
					Sub(Mul(Mul(ZX(64, V("g_lsw")), ZX(64, V("g_lsh"))), U64(4)), U64(1)),
					U8(0)),
				// Tile-prep loop: a blocking check whose iteration count is a
				// function of the screen size.
				Let("i", U32(0)),
				Loop("gif.c@162", And(Ult(Mul(V("i"), U32(4096)), V("ssz")), Ult(V("i"), U32(16))),
					Put(V("g_screen"), ZX(64, V("i")), U8(0)),
					Let("i", Add(V("i"), U32(1))),
				),
			},
		),
		RetVoid(),
	))

	// Global color table: bounded by construction (unsatisfiable site).
	p.AddFunc(Fn("gif_read_gct", nil,
		Let("ncolors", Shl(U32(2), ZX(32, BitAnd(V("g_flags"), U32(7))))),
		AllocAt("gct", "gifview:gif.c@183", Mul(V("ncolors"), U32(3))),
		Let("i", U32(0)),
		Loop("gif.c@190", Ult(V("i"), Mul(V("ncolors"), U32(3))),
			Put(V("gct"), ZX(64, V("i")),
				In(Add(U32(13), V("i")))),
			Let("i", Add(V("i"), U32(1))),
		),
		RetVoid(),
	))

	// Extension skipper: walks a sub-block chain, returns the offset past the
	// zero terminator.
	p.AddFunc(Fn("gif_skip_ext", []string{"off"},
		Let("len", ZX(32, In(V("off")))),
		Loop("gif.c@210", Ne(V("len"), U32(0)),
			Let("off", Add(Add(V("off"), U32(1)), V("len"))),
			Let("len", ZX(32, In(V("off")))),
		),
		Ret(Add(V("off"), U32(1))),
	))

	// Frame decoder: descriptor parsing, the LZW table site, the check-free
	// frame buffer site, the screen-copy mismatch, and the row buffer site.
	// Returns the offset of the image checksum (just past the sub-blocks).
	p.AddFunc(Fn("gif_decode_frame", []string{"off"},
		Let("left", Call("read_le16", V("off"))),
		Let("top", Call("read_le16", Add(V("off"), U32(2)))),
		Let("fw", Call("read_le16", Add(V("off"), U32(4)))),
		Let("fh", Call("read_le16", Add(V("off"), U32(6)))),
		Let("lzwmin", ZX(32, In(Add(V("off"), U32(9))))),

		// LZW code table: 8<<lzwmin computed in 16-bit arithmetic wraps for
		// lzwmin >= 13, but the genuine code-size check prevents it.
		IfThen("lzw.c@81", Ugt(V("lzwmin"), U32(11)),
			Abort("bad LZW minimum code size"),
		),
		Let("tab16", Shl(Lit{W: 16, V: 8}, ZX(16, V("lzwmin")))),
		AllocAt("lzwtab", "gifview:lzw.c@88", ZX(32, V("tab16"))),
		Put(V("lzwtab"), Sub(ZX(64, V("tab16")), U64(1)), U8(0)),

		// Frame pixel buffer: allocated straight from the image descriptor
		// with no sanity checks — the overflow is reachable from the target
		// constraint alone.
		AllocAt("frame", "gifview:gif.c@466", Mul(Mul(V("fw"), V("fh")), U32(2))),
		Put(V("frame"),
			Sub(Mul(Mul(ZX(64, V("fw")), ZX(64, V("fh"))), U64(2)), U64(1)),
			U8(0)),

		// The logical-screen/frame-descriptor mismatch: frame extents are
		// only checked against the SGIF spec bound, not the allocated screen,
		// and the copy below indexes the screen with frame coordinates.
		IfElse("gif.c@478",
			Or(Ugt(Add(V("left"), V("fw")), U32(0x8000)),
				Ugt(Add(V("top"), V("fh")), U32(0x8000))),
			Block{Warn("frame exceeds SGIF bounds, clipping")},
			Block{
				IfThen("gif.c@483", Eq(V("g_havescreen"), U32(1)),
					// Last pixel of the frame's first row, in screen space.
					Put(V("g_screen"),
						ZX(64, Add(Mul(V("top"), V("g_lsw")),
							Add(V("left"), Sub(V("fw"), U32(1))))),
						U8(1)),
				),
			},
		),

		// Row de-interlace buffer: fw*5 in 16-bit arithmetic wraps for
		// fw >= 13108; the genuine frame-width limit prevents it.
		IfThen("gif.c@507", Ugt(V("fw"), U32(10000)),
			Abort("frame wider than decoder limit"),
		),
		Let("rb16", Mul(ZX(16, V("fw")), Lit{W: 16, V: 5})),
		AllocAt("rowbuf", "gifview:gif.c@512", ZX(32, V("rb16"))),
		IfThen("gif.c@514", Ugt(V("rb16"), Lit{W: 16, V: 0}),
			Put(V("rowbuf"), Sub(ZX(64, V("rb16")), U64(1)), U8(0)),
		),

		// Skip the LZW data sub-blocks; the checksum follows the terminator.
		Let("p", Add(V("off"), U32(10))),
		Let("len", ZX(32, In(V("p")))),
		Loop("gif.c@530", Ne(V("len"), U32(0)),
			Let("p", Add(Add(V("p"), U32(1)), V("len"))),
			Let("len", ZX(32, In(V("p")))),
		),
		Ret(Add(V("p"), U32(1))),
	))

	p.AddFunc(Fn("main", nil,
		Let("g_lsw", U32(0)), Let("g_lsh", U32(0)), Let("g_flags", U32(0)),
		Let("g_havescreen", U32(0)), Let("g_done", U32(0)),
		// Signature check ("SGIF9a").
		IfThen("gif.c@sig", Or(
			Or(Ne(ZX(32, InAt(0)), U32('S')), Ne(ZX(32, InAt(1)), U32('G'))),
			Or(
				Or(Ne(ZX(32, InAt(2)), U32('I')), Ne(ZX(32, InAt(3)), U32('F'))),
				Or(Ne(ZX(32, InAt(4)), U32('9')), Ne(ZX(32, InAt(5)), U32('a'))))),
			Abort("not an SGIF file"),
		),
		// Logical screen descriptor.
		Let("g_lsw", Call("read_le16", U32(6))),
		Let("g_lsh", Call("read_le16", U32(8))),
		Let("g_flags", ZX(32, In(U32(10)))),
		Do(Call("gif_screen_setup")),
		Do(Call("gif_read_gct")),
		// Block walk.
		Let("off", U32(37)),
		Loop("gif.c@walk", And(Ult(V("off"), Len()), Eq(V("g_done"), U32(0))),
			Let("btype", ZX(32, In(V("off")))),
			IfElse("", Eq(V("btype"), U32(0x21)),
				Block{Let("off", Call("gif_skip_ext", Add(V("off"), U32(2))))},
				Block{
					IfElse("", Eq(V("btype"), U32(0x2C)),
						Block{
							Let("ckoff", Call("gif_decode_frame", Add(V("off"), U32(1)))),
							// Checksum verification: Peach must reconstruct
							// the image checksum for a generated input to get
							// past this branch.
							Let("sum", Call("gif_checksum", U32(6), Sub(V("ckoff"), U32(6)))),
							Let("stored", Call("read_le16", V("ckoff"))),
							IfThen("gif.c@crc", Ne(BitAnd(V("sum"), U32(0xFFFF)), V("stored")),
								Abort("image checksum mismatch"),
							),
							Let("off", Add(V("ckoff"), U32(2))),
						},
						Block{
							IfElse("", Eq(V("btype"), U32(0x3B)),
								Block{Let("g_done", U32(1))},
								Block{Abort("unknown block introducer")},
							),
							Let("off", Add(V("off"), U32(1))),
						},
					),
				},
			),
		),
		IfThen("gif.c@eof", Eq(V("g_done"), U32(0)),
			Abort("missing trailer"),
		),
	))

	return &App{
		Name:    "GIFView 0.4",
		Short:   "gifview",
		Program: mustFinalize(p),
		Format:  formats.SGIF(),
	}
}
