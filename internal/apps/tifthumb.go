package apps

import (
	"diode/internal/formats"
	. "diode/internal/lang"
)

// TIFThumb is the second extended-suite benchmark (no paper counterpart): a
// TIFF-style thumbnailer over the STIF format. Its parsing shape is new to
// the suite: the IFD lives at an offset read from the header, so every
// interesting value is reached through offset indirection, and the strip
// data is located through the StripOffsets entry.
//
// Five target sites:
//
//   - tif.c@139 (unsatisfiable): the colormap, 6*(1<<(bits&7)), is bounded
//     by construction.
//   - tif.c@167 (sanity-prevented): the sample conversion LUT, bits*1024 in
//     16-bit arithmetic, can wrap but a genuine bits-per-sample check
//     prevents it.
//   - tif.c@188 (exposed): the strip staging buffer (rows_per_strip+1)*1024,
//     allocated with no prior checks — exposed from the target constraint
//     alone (the §5.5 check-free pattern).
//   - tif.c@231 (exposed): the pixel buffer w*h*4 behind two genuine range
//     checks and a wrapping-arithmetic size check. Width and height are full
//     32-bit fields, so random target-constraint models essentially always
//     violate the range checks: the site is only exposed after the Figure 7
//     loop enforces at least the two range-check branches.
//   - thumb.c@58 (unsatisfiable): the thumbnail encode buffer is bounded by
//     construction.
func TIFThumb() *App {
	p := NewProgram("tifthumb")

	p.AddFunc(readLE16("read_le16"))
	p.AddFunc(readLE32("read_le32"))

	// Colormap: bounded by construction (unsatisfiable site).
	p.AddFunc(Fn("tif_read_cmap", nil,
		Let("ncmap", Shl(U32(1), BitAnd(V("g_bits"), U32(7)))),
		AllocAt("cmap", "tifthumb:tif.c@139", Mul(V("ncmap"), U32(6))),
		Put(V("cmap"), U64(0), U8(0)),
		RetVoid(),
	))

	// Sample conversion LUT: bits*1024 in 16-bit arithmetic wraps for
	// bits >= 64, but the genuine bits-per-sample check prevents it.
	p.AddFunc(Fn("tif_build_lut", nil,
		IfThen("tif.c@161", Ugt(V("g_bits"), U32(32)),
			Abort("unsupported bits per sample"),
		),
		Let("lut16", Mul(ZX(16, V("g_bits")), Lit{W: 16, V: 1024})),
		AllocAt("lut", "tifthumb:tif.c@167", ZX(32, V("lut16"))),
		IfThen("tif.c@169", Ugt(V("lut16"), Lit{W: 16, V: 0}),
			Put(V("lut"), Sub(ZX(64, V("lut16")), U64(1)), U8(0)),
		),
		RetVoid(),
	))

	// Strip staging buffer: allocated straight from RowsPerStrip with no
	// sanity checks, then the strip bytes are consumed through the offset
	// indirection of the StripOffsets entry.
	p.AddFunc(Fn("tif_read_strip", nil,
		AllocAt("staging", "tifthumb:tif.c@188",
			Mul(Add(V("g_rows"), U32(1)), U32(1024))),
		Put(V("staging"),
			Sub(Mul(Add(ZX(64, V("g_rows")), U64(1)), U64(1024)), U64(1)),
			U8(0)),
		Let("i", U32(0)),
		Loop("tif.c@201", And(Ult(V("i"), V("g_stripcnt")), Ult(V("i"), U32(64))),
			Put(V("staging"), ZX(64, V("i")),
				In(Add(V("g_stripoff"), V("i")))),
			Let("i", Add(V("i"), U32(1))),
		),
		RetVoid(),
	))

	// Pixel buffer: two genuine range checks plus a wrapping-arithmetic size
	// check — the enforcement-heavy exposed site.
	p.AddFunc(Fn("tif_decode_pixels", nil,
		IfThen("tif.c@214", Eq(BitOr(V("g_w"), V("g_h")), U32(0)),
			Abort("empty image"),
		),
		IfThen("tif.c@217", Ugt(V("g_w"), U32(0x100000)),
			Abort("image width exceeds TIFF limit"),
		),
		IfThen("tif.c@220", Ugt(V("g_h"), U32(0x100000)),
			Abort("image height exceeds TIFF limit"),
		),
		// Size check computed in wrapping 32-bit arithmetic: evadable.
		Let("psz", Mul(Mul(V("g_w"), V("g_h")), U32(4))),
		IfElse("tif.c@226", Ugt(V("psz"), U32(0x4000000)),
			Block{Warn("pixel buffer too large, using banded decode")},
			Block{
				AllocAt("g_pix", "tifthumb:tif.c@231",
					Mul(Mul(V("g_w"), V("g_h")), U32(4))),
				// Touch the last byte of the intended image with 64-bit
				// indexing, as on x86-64.
				Put(V("g_pix"),
					Sub(Mul(Mul(ZX(64, V("g_w")), ZX(64, V("g_h"))), U64(4)), U64(1)),
					U8(0)),
				// Banded downscale loop: iteration count is a function of the
				// computed size (a blocking check on the dimension fields).
				Let("i", U32(0)),
				Loop("tif.c@239", And(Ult(Mul(V("i"), U32(2048)), V("psz")), Ult(V("i"), U32(16))),
					Put(V("g_pix"), ZX(64, V("i")), U8(0)),
					Let("i", Add(V("i"), U32(1))),
				),
			},
		),
		RetVoid(),
	))

	// Thumbnail encode buffer: bounded by construction (unsatisfiable site).
	p.AddFunc(Fn("thumb_encode", nil,
		AllocAt("out", "tifthumb:thumb.c@58",
			Add(Mul(BitAnd(V("g_bits"), U32(15)), U32(512)), U32(4096))),
		Put(V("out"), U64(0), U8(0)),
		RetVoid(),
	))

	p.AddFunc(Fn("main", nil,
		Let("g_w", U32(0)), Let("g_h", U32(0)), Let("g_bits", U32(0)),
		Let("g_rows", U32(0)), Let("g_stripoff", U32(0)), Let("g_stripcnt", U32(0)),
		Let("g_acc", U32(0)),
		// Header magic: "II" then 42.
		IfThen("tif.c@magic", Or(
			Or(Ne(ZX(32, InAt(0)), U32('I')), Ne(ZX(32, InAt(1)), U32('I'))),
			Ne(Call("read_le16", U32(2)), U32(42))),
			Abort("not an STIF file"),
		),
		// Offset indirection: the IFD lives wherever the header points.
		Let("ifdoff", Call("read_le32", U32(4))),
		IfThen("tif.c@hdr", Ugt(Add(V("ifdoff"), U32(2)), Len()),
			Abort("IFD offset outside file"),
		),
		Let("count", Call("read_le16", V("ifdoff"))),
		IfThen("tif.c@count", Eq(V("count"), U32(0)),
			Abort("empty IFD"),
		),
		// Tagged-entry walk.
		Let("i", U32(0)),
		Loop("tif.c@walk", And(Ult(V("i"), V("count")), Ult(V("i"), U32(8))),
			Let("ep", Add(Add(V("ifdoff"), U32(2)), Mul(V("i"), U32(12)))),
			IfThen("tif.c@entry", Ugt(Add(V("ep"), U32(12)), Len()),
				Abort("IFD entry outside file"),
			),
			Let("tag", Call("read_le16", V("ep"))),
			IfThen("", Eq(V("tag"), U32(256)),
				Let("g_w", Call("read_le32", Add(V("ep"), U32(8))))),
			IfThen("", Eq(V("tag"), U32(257)),
				Let("g_h", Call("read_le32", Add(V("ep"), U32(8))))),
			IfThen("", Eq(V("tag"), U32(258)),
				Let("g_bits", Call("read_le16", Add(V("ep"), U32(8))))),
			IfThen("", Eq(V("tag"), U32(273)),
				Let("g_stripoff", Call("read_le32", Add(V("ep"), U32(8))))),
			IfThen("", Eq(V("tag"), U32(278)),
				Let("g_rows", Call("read_le32", Add(V("ep"), U32(8))))),
			IfThen("", Eq(V("tag"), U32(279)),
				Let("g_stripcnt", Call("read_le32", Add(V("ep"), U32(8))))),
			Let("i", Add(V("i"), U32(1))),
		),
		// Strip bookkeeping must frame the file (Peach maintains this).
		IfThen("tif.c@counts", Ne(Add(V("g_stripoff"), V("g_stripcnt")), Len()),
			Abort("strip byte counts do not frame the file"),
		),
		Do(Call("tif_read_cmap")),
		Do(Call("tif_build_lut")),
		Do(Call("tif_read_strip")),
		Do(Call("tif_decode_pixels")),
		Do(Call("thumb_encode")),
	))

	return &App{
		Name:    "TIFThumb 0.2",
		Short:   "tifthumb",
		Program: mustFinalize(p),
		Format:  formats.STIF(),
	}
}
