package sat

import (
	"math/rand"
	"testing"
)

func TestTrivial(t *testing.T) {
	s := New(Options{})
	a := s.NewVar()
	if !s.AddClause(PosLit(a)) {
		t.Fatal("unit clause rejected")
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("solve = %v, want sat", got)
	}
	if !s.ModelValue(a) {
		t.Fatal("model does not satisfy unit clause")
	}
}

func TestContradiction(t *testing.T) {
	s := New(Options{})
	a := s.NewVar()
	s.AddClause(PosLit(a))
	if s.AddClause(NegLit(a)) {
		t.Fatal("contradictory unit accepted")
	}
	if got := s.Solve(); got != Unsat {
		t.Fatalf("solve = %v, want unsat", got)
	}
}

func TestAllFourClausesUnsat(t *testing.T) {
	s := New(Options{})
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(PosLit(a), PosLit(b))
	s.AddClause(NegLit(a), PosLit(b))
	s.AddClause(PosLit(a), NegLit(b))
	s.AddClause(NegLit(a), NegLit(b))
	if got := s.Solve(); got != Unsat {
		t.Fatalf("solve = %v, want unsat", got)
	}
}

func TestTautologyAndDuplicates(t *testing.T) {
	s := New(Options{})
	a, b := s.NewVar(), s.NewVar()
	// Tautologous clause must be ignored, duplicates deduplicated.
	s.AddClause(PosLit(a), NegLit(a))
	s.AddClause(PosLit(b), PosLit(b), PosLit(b))
	if got := s.Solve(); got != Sat {
		t.Fatalf("solve = %v, want sat", got)
	}
	if !s.ModelValue(b) {
		t.Fatal("b must be true")
	}
}

// pigeonhole encodes PHP(n+1, n): n+1 pigeons into n holes, unsatisfiable.
func pigeonhole(t *testing.T, pigeons, holes int) Result {
	t.Helper()
	s := New(Options{})
	vars := make([][]Var, pigeons)
	for p := range vars {
		vars[p] = make([]Var, holes)
		for h := range vars[p] {
			vars[p][h] = s.NewVar()
		}
	}
	// Every pigeon is in some hole.
	for p := 0; p < pigeons; p++ {
		lits := make([]Lit, holes)
		for h := 0; h < holes; h++ {
			lits[h] = PosLit(vars[p][h])
		}
		s.AddClause(lits...)
	}
	// No two pigeons share a hole.
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				s.AddClause(NegLit(vars[p1][h]), NegLit(vars[p2][h]))
			}
		}
	}
	return s.Solve()
}

func TestPigeonholeUnsat(t *testing.T) {
	if got := pigeonhole(t, 5, 4); got != Unsat {
		t.Fatalf("PHP(5,4) = %v, want unsat", got)
	}
	if got := pigeonhole(t, 7, 6); got != Unsat {
		t.Fatalf("PHP(7,6) = %v, want unsat", got)
	}
}

func TestPigeonholeSatWhenEnoughHoles(t *testing.T) {
	s := New(Options{})
	const pigeons, holes = 4, 4
	vars := make([][]Var, pigeons)
	for p := range vars {
		vars[p] = make([]Var, holes)
		for h := range vars[p] {
			vars[p][h] = s.NewVar()
		}
	}
	for p := 0; p < pigeons; p++ {
		lits := make([]Lit, holes)
		for h := 0; h < holes; h++ {
			lits[h] = PosLit(vars[p][h])
		}
		s.AddClause(lits...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				s.AddClause(NegLit(vars[p1][h]), NegLit(vars[p2][h]))
			}
		}
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("PHP(4,4) = %v, want sat", got)
	}
}

// bruteForce decides satisfiability of a small CNF by exhaustive search.
func bruteForce(nVars int, cnf [][]Lit) bool {
	for m := 0; m < 1<<nVars; m++ {
		ok := true
		for _, cl := range cnf {
			clauseSat := false
			for _, l := range cl {
				bit := m>>uint(l.Var())&1 == 1
				if bit != l.Sign() {
					clauseSat = true
					break
				}
			}
			if !clauseSat {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func modelSatisfies(model []bool, cnf [][]Lit) bool {
	for _, cl := range cnf {
		ok := false
		for _, l := range cl {
			if model[l.Var()] != l.Sign() {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// TestRandomCNFAgainstBruteForce cross-checks the CDCL solver against
// exhaustive search on hundreds of random small instances, both near and at
// the sat/unsat phase-transition density.
func TestRandomCNFAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		nVars := 3 + rng.Intn(10)
		nClauses := 2 + rng.Intn(6*nVars)
		cnf := make([][]Lit, nClauses)
		for i := range cnf {
			width := 1 + rng.Intn(3)
			cl := make([]Lit, width)
			for j := range cl {
				cl[j] = MkLit(Var(rng.Intn(nVars)), rng.Intn(2) == 1)
			}
			cnf[i] = cl
		}
		s := New(Options{Seed: int64(trial)})
		for i := 0; i < nVars; i++ {
			s.NewVar()
		}
		rootOK := true
		for _, cl := range cnf {
			if !s.AddClause(cl...) {
				rootOK = false
				break
			}
		}
		var got Result
		if !rootOK {
			got = Unsat
		} else {
			got = s.Solve()
		}
		want := bruteForce(nVars, cnf)
		if (got == Sat) != want {
			t.Fatalf("trial %d: solver=%v bruteforce_sat=%v (%d vars, %d clauses)",
				trial, got, want, nVars, nClauses)
		}
		if got == Sat && !modelSatisfies(s.Model(), cnf) {
			t.Fatalf("trial %d: model does not satisfy formula", trial)
		}
	}
}

// TestRandomPolarityDiversity checks that randomized polarity yields more
// than one distinct model across seeds for an under-constrained formula.
func TestRandomPolarityDiversity(t *testing.T) {
	distinct := make(map[[8]bool]bool)
	for seed := int64(0); seed < 16; seed++ {
		s := New(Options{Seed: seed, RandomPolarity: 0.5})
		vars := make([]Var, 8)
		for i := range vars {
			vars[i] = s.NewVar()
		}
		// One weak constraint: at least one variable true.
		lits := make([]Lit, len(vars))
		for i, v := range vars {
			lits[i] = PosLit(v)
		}
		s.AddClause(lits...)
		if s.Solve() != Sat {
			t.Fatal("expected sat")
		}
		var key [8]bool
		for i, v := range vars {
			key[i] = s.ModelValue(v)
		}
		distinct[key] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("expected diverse models across seeds, got %d distinct", len(distinct))
	}
}

func TestMaxConflictsBudget(t *testing.T) {
	s := New(Options{MaxConflicts: 1})
	// PHP(6,5): needs far more than one conflict.
	pigeons, holes := 6, 5
	vars := make([][]Var, pigeons)
	for p := range vars {
		vars[p] = make([]Var, holes)
		for h := range vars[p] {
			vars[p][h] = s.NewVar()
		}
	}
	for p := 0; p < pigeons; p++ {
		lits := make([]Lit, holes)
		for h := 0; h < holes; h++ {
			lits[h] = PosLit(vars[p][h])
		}
		s.AddClause(lits...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				s.AddClause(NegLit(vars[p1][h]), NegLit(vars[p2][h]))
			}
		}
	}
	if got := s.Solve(); got != Unknown {
		t.Fatalf("solve with 1-conflict budget = %v, want unknown", got)
	}
}

func TestIncrementalBlocking(t *testing.T) {
	s := New(Options{})
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(PosLit(a), PosLit(b))
	seen := make(map[[2]bool]bool)
	for i := 0; i < 4; i++ {
		res := s.Solve()
		if res != Sat {
			break
		}
		m := [2]bool{s.ModelValue(a), s.ModelValue(b)}
		if seen[m] {
			t.Fatalf("model %v repeated despite blocking", m)
		}
		seen[m] = true
		s.CancelToRoot()
		var block []Lit
		for v, val := range map[Var]bool{a: m[0], b: m[1]} {
			block = append(block, MkLit(v, val))
		}
		s.AddClause(block...)
	}
	if len(seen) != 3 {
		t.Fatalf("expected exactly 3 models of (a∨b), got %d", len(seen))
	}
}

func TestLuby(t *testing.T) {
	want := []float64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(int64(i + 1)); got != w {
			t.Fatalf("luby(%d) = %v, want %v", i+1, got, w)
		}
	}
}

func TestLitEncoding(t *testing.T) {
	v := Var(7)
	p := PosLit(v)
	n := NegLit(v)
	if p.Var() != v || n.Var() != v {
		t.Fatal("Var roundtrip failed")
	}
	if p.Sign() || !n.Sign() {
		t.Fatal("Sign incorrect")
	}
	if p.Neg() != n || n.Neg() != p {
		t.Fatal("Neg incorrect")
	}
	if MkLit(v, false) != p || MkLit(v, true) != n {
		t.Fatal("MkLit incorrect")
	}
}
