package sat

import (
	"math/rand"
	"testing"
)

func TestTrivial(t *testing.T) {
	s := New(Options{})
	a := s.NewVar()
	if !s.AddClause(PosLit(a)) {
		t.Fatal("unit clause rejected")
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("solve = %v, want sat", got)
	}
	if !s.ModelValue(a) {
		t.Fatal("model does not satisfy unit clause")
	}
}

func TestContradiction(t *testing.T) {
	s := New(Options{})
	a := s.NewVar()
	s.AddClause(PosLit(a))
	if s.AddClause(NegLit(a)) {
		t.Fatal("contradictory unit accepted")
	}
	if got := s.Solve(); got != Unsat {
		t.Fatalf("solve = %v, want unsat", got)
	}
}

func TestAllFourClausesUnsat(t *testing.T) {
	s := New(Options{})
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(PosLit(a), PosLit(b))
	s.AddClause(NegLit(a), PosLit(b))
	s.AddClause(PosLit(a), NegLit(b))
	s.AddClause(NegLit(a), NegLit(b))
	if got := s.Solve(); got != Unsat {
		t.Fatalf("solve = %v, want unsat", got)
	}
}

func TestTautologyAndDuplicates(t *testing.T) {
	s := New(Options{})
	a, b := s.NewVar(), s.NewVar()
	// Tautologous clause must be ignored, duplicates deduplicated.
	s.AddClause(PosLit(a), NegLit(a))
	s.AddClause(PosLit(b), PosLit(b), PosLit(b))
	if got := s.Solve(); got != Sat {
		t.Fatalf("solve = %v, want sat", got)
	}
	if !s.ModelValue(b) {
		t.Fatal("b must be true")
	}
}

// pigeonhole encodes PHP(n+1, n): n+1 pigeons into n holes, unsatisfiable.
func pigeonhole(t *testing.T, pigeons, holes int) Result {
	t.Helper()
	s := New(Options{})
	vars := make([][]Var, pigeons)
	for p := range vars {
		vars[p] = make([]Var, holes)
		for h := range vars[p] {
			vars[p][h] = s.NewVar()
		}
	}
	// Every pigeon is in some hole.
	for p := 0; p < pigeons; p++ {
		lits := make([]Lit, holes)
		for h := 0; h < holes; h++ {
			lits[h] = PosLit(vars[p][h])
		}
		s.AddClause(lits...)
	}
	// No two pigeons share a hole.
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				s.AddClause(NegLit(vars[p1][h]), NegLit(vars[p2][h]))
			}
		}
	}
	return s.Solve()
}

func TestPigeonholeUnsat(t *testing.T) {
	if got := pigeonhole(t, 5, 4); got != Unsat {
		t.Fatalf("PHP(5,4) = %v, want unsat", got)
	}
	if got := pigeonhole(t, 7, 6); got != Unsat {
		t.Fatalf("PHP(7,6) = %v, want unsat", got)
	}
}

func TestPigeonholeSatWhenEnoughHoles(t *testing.T) {
	s := New(Options{})
	const pigeons, holes = 4, 4
	vars := make([][]Var, pigeons)
	for p := range vars {
		vars[p] = make([]Var, holes)
		for h := range vars[p] {
			vars[p][h] = s.NewVar()
		}
	}
	for p := 0; p < pigeons; p++ {
		lits := make([]Lit, holes)
		for h := 0; h < holes; h++ {
			lits[h] = PosLit(vars[p][h])
		}
		s.AddClause(lits...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				s.AddClause(NegLit(vars[p1][h]), NegLit(vars[p2][h]))
			}
		}
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("PHP(4,4) = %v, want sat", got)
	}
}

// bruteForce decides satisfiability of a small CNF by exhaustive search.
func bruteForce(nVars int, cnf [][]Lit) bool {
	for m := 0; m < 1<<nVars; m++ {
		ok := true
		for _, cl := range cnf {
			clauseSat := false
			for _, l := range cl {
				bit := m>>uint(l.Var())&1 == 1
				if bit != l.Sign() {
					clauseSat = true
					break
				}
			}
			if !clauseSat {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func modelSatisfies(model []bool, cnf [][]Lit) bool {
	for _, cl := range cnf {
		ok := false
		for _, l := range cl {
			if model[l.Var()] != l.Sign() {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// TestRandomCNFAgainstBruteForce cross-checks the CDCL solver against
// exhaustive search on hundreds of random small instances, both near and at
// the sat/unsat phase-transition density.
func TestRandomCNFAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		nVars := 3 + rng.Intn(10)
		nClauses := 2 + rng.Intn(6*nVars)
		cnf := make([][]Lit, nClauses)
		for i := range cnf {
			width := 1 + rng.Intn(3)
			cl := make([]Lit, width)
			for j := range cl {
				cl[j] = MkLit(Var(rng.Intn(nVars)), rng.Intn(2) == 1)
			}
			cnf[i] = cl
		}
		s := New(Options{Seed: int64(trial)})
		for i := 0; i < nVars; i++ {
			s.NewVar()
		}
		rootOK := true
		for _, cl := range cnf {
			if !s.AddClause(cl...) {
				rootOK = false
				break
			}
		}
		var got Result
		if !rootOK {
			got = Unsat
		} else {
			got = s.Solve()
		}
		want := bruteForce(nVars, cnf)
		if (got == Sat) != want {
			t.Fatalf("trial %d: solver=%v bruteforce_sat=%v (%d vars, %d clauses)",
				trial, got, want, nVars, nClauses)
		}
		if got == Sat && !modelSatisfies(s.Model(), cnf) {
			t.Fatalf("trial %d: model does not satisfy formula", trial)
		}
	}
}

// TestRandomPolarityDiversity checks that randomized polarity yields more
// than one distinct model across seeds for an under-constrained formula.
func TestRandomPolarityDiversity(t *testing.T) {
	distinct := make(map[[8]bool]bool)
	for seed := int64(0); seed < 16; seed++ {
		s := New(Options{Seed: seed, RandomPolarity: 0.5})
		vars := make([]Var, 8)
		for i := range vars {
			vars[i] = s.NewVar()
		}
		// One weak constraint: at least one variable true.
		lits := make([]Lit, len(vars))
		for i, v := range vars {
			lits[i] = PosLit(v)
		}
		s.AddClause(lits...)
		if s.Solve() != Sat {
			t.Fatal("expected sat")
		}
		var key [8]bool
		for i, v := range vars {
			key[i] = s.ModelValue(v)
		}
		distinct[key] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("expected diverse models across seeds, got %d distinct", len(distinct))
	}
}

func TestMaxConflictsBudget(t *testing.T) {
	s := New(Options{MaxConflicts: 1})
	// PHP(6,5): needs far more than one conflict.
	pigeons, holes := 6, 5
	vars := make([][]Var, pigeons)
	for p := range vars {
		vars[p] = make([]Var, holes)
		for h := range vars[p] {
			vars[p][h] = s.NewVar()
		}
	}
	for p := 0; p < pigeons; p++ {
		lits := make([]Lit, holes)
		for h := 0; h < holes; h++ {
			lits[h] = PosLit(vars[p][h])
		}
		s.AddClause(lits...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				s.AddClause(NegLit(vars[p1][h]), NegLit(vars[p2][h]))
			}
		}
	}
	if got := s.Solve(); got != Unknown {
		t.Fatalf("solve with 1-conflict budget = %v, want unknown", got)
	}
}

func TestIncrementalBlocking(t *testing.T) {
	s := New(Options{})
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(PosLit(a), PosLit(b))
	seen := make(map[[2]bool]bool)
	for i := 0; i < 4; i++ {
		res := s.Solve()
		if res != Sat {
			break
		}
		m := [2]bool{s.ModelValue(a), s.ModelValue(b)}
		if seen[m] {
			t.Fatalf("model %v repeated despite blocking", m)
		}
		seen[m] = true
		s.CancelToRoot()
		var block []Lit
		for v, val := range map[Var]bool{a: m[0], b: m[1]} {
			block = append(block, MkLit(v, val))
		}
		s.AddClause(block...)
	}
	if len(seen) != 3 {
		t.Fatalf("expected exactly 3 models of (a∨b), got %d", len(seen))
	}
}

// TestIncrementalAddAfterSolve exercises the persistent-instance API:
// AddClause after a Solve must backtrack internally and further solves must
// account for the new clauses.
func TestIncrementalAddAfterSolve(t *testing.T) {
	s := New(Options{})
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	s.AddClause(PosLit(a), PosLit(b))
	s.AddClause(PosLit(c), NegLit(c)) // keep c mentioned
	if got := s.Solve(); got != Sat {
		t.Fatalf("solve = %v, want sat", got)
	}
	// No CancelToRoot: AddClause must handle the leftover decision levels.
	if !s.AddClause(NegLit(a)) {
		t.Fatal("¬a rejected")
	}
	if !s.AddClause(NegLit(b), PosLit(c)) {
		t.Fatal("(¬b ∨ c) rejected")
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("incremental solve = %v, want sat", got)
	}
	if s.ModelValue(a) || !s.ModelValue(b) || !s.ModelValue(c) {
		t.Fatalf("model (a,b,c) = (%v,%v,%v), want (false,true,true)",
			s.ModelValue(a), s.ModelValue(b), s.ModelValue(c))
	}
	if s.AddClause(NegLit(c)) {
		t.Fatal("¬c must conflict at the root")
	}
	if got := s.Solve(); got != Unsat {
		t.Fatalf("final solve = %v, want unsat", got)
	}
}

// TestSolveUnderAssumptionsMatchesUnits cross-checks assumption solving
// against the unit-clause encoding on random instances: for every CNF F and
// assumption set A, SolveUnderAssumptions(A) on a persistent instance must
// agree with a fresh solver deciding F ∧ A. Several assumption rounds run on
// the same instance, so retained learned clauses and saved phases are
// exercised, and a final plain Solve checks the instance was not poisoned by
// assumption failures.
func TestSolveUnderAssumptionsMatchesUnits(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 150; trial++ {
		nVars := 3 + rng.Intn(8)
		nClauses := 2 + rng.Intn(5*nVars)
		cnf := make([][]Lit, nClauses)
		for i := range cnf {
			width := 1 + rng.Intn(3)
			cl := make([]Lit, width)
			for j := range cl {
				cl[j] = MkLit(Var(rng.Intn(nVars)), rng.Intn(2) == 1)
			}
			cnf[i] = cl
		}
		s := New(Options{Seed: int64(trial)})
		for i := 0; i < nVars; i++ {
			s.NewVar()
		}
		rootOK := true
		for _, cl := range cnf {
			if !s.AddClause(cl...) {
				rootOK = false
				break
			}
		}
		for round := 0; round < 4; round++ {
			assumps := make([]Lit, rng.Intn(4))
			for i := range assumps {
				assumps[i] = MkLit(Var(rng.Intn(nVars)), rng.Intn(2) == 1)
			}
			var got Result
			if !rootOK {
				got = Unsat
			} else {
				got = s.SolveUnderAssumptions(assumps)
			}
			ref := New(Options{Seed: int64(trial*10 + round)})
			for i := 0; i < nVars; i++ {
				ref.NewVar()
			}
			refOK := true
			for _, cl := range cnf {
				if !ref.AddClause(cl...) {
					refOK = false
					break
				}
			}
			for _, a := range assumps {
				if refOK && !ref.AddClause(a) {
					refOK = false
				}
			}
			want := Unsat
			if refOK {
				want = ref.Solve()
			}
			if got != want {
				t.Fatalf("trial %d round %d: assumptions %v: got %v, unit encoding says %v",
					trial, round, assumps, got, want)
			}
			if got == Sat {
				if !modelSatisfies(s.Model(), cnf) {
					t.Fatalf("trial %d round %d: model violates formula", trial, round)
				}
				for _, a := range assumps {
					if s.ModelValue(a.Var()) == a.Sign() {
						t.Fatalf("trial %d round %d: model violates assumption %v", trial, round, a)
					}
				}
			}
		}
		// The instance must still answer the unconditional query correctly.
		var got Result
		if !rootOK {
			got = Unsat
		} else {
			got = s.Solve()
		}
		if want := bruteForce(nVars, cnf); (got == Sat) != want {
			t.Fatalf("trial %d: plain solve after assumption rounds = %v, brute force sat=%v",
				trial, got, want)
		}
	}
}

func TestLuby(t *testing.T) {
	want := []float64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(int64(i + 1)); got != w {
			t.Fatalf("luby(%d) = %v, want %v", i+1, got, w)
		}
	}
}

func TestLitEncoding(t *testing.T) {
	v := Var(7)
	p := PosLit(v)
	n := NegLit(v)
	if p.Var() != v || n.Var() != v {
		t.Fatal("Var roundtrip failed")
	}
	if p.Sign() || !n.Sign() {
		t.Fatal("Sign incorrect")
	}
	if p.Neg() != n || n.Neg() != p {
		t.Fatal("Neg incorrect")
	}
	if MkLit(v, false) != p || MkLit(v, true) != n {
		t.Fatal("MkLit incorrect")
	}
}
