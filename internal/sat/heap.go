package sat

// varHeap is a max-heap of variables ordered by VSIDS activity, with an
// index table for decrease/increase-key.
type varHeap struct {
	heap     []Var
	indices  []int // position of each var in heap, -1 if absent
	activity *[]float64
}

func newVarHeap(activity *[]float64) *varHeap {
	return &varHeap{activity: activity}
}

func (h *varHeap) less(a, b Var) bool {
	return (*h.activity)[a] > (*h.activity)[b]
}

func (h *varHeap) grow(n int) {
	for len(h.indices) < n {
		h.indices = append(h.indices, -1)
	}
}

func (h *varHeap) contains(v Var) bool {
	return int(v) < len(h.indices) && h.indices[v] >= 0
}

func (h *varHeap) empty() bool { return len(h.heap) == 0 }

func (h *varHeap) insert(v Var) {
	h.grow(int(v) + 1)
	if h.contains(v) {
		return
	}
	h.indices[v] = len(h.heap)
	h.heap = append(h.heap, v)
	h.up(len(h.heap) - 1)
}

func (h *varHeap) removeMax() Var {
	top := h.heap[0]
	last := h.heap[len(h.heap)-1]
	h.heap[0] = last
	h.indices[last] = 0
	h.heap = h.heap[:len(h.heap)-1]
	h.indices[top] = -1
	if len(h.heap) > 0 {
		h.down(0)
	}
	return top
}

// update repositions v after its activity changed (if present).
func (h *varHeap) update(v Var) {
	if !h.contains(v) {
		return
	}
	i := h.indices[v]
	h.up(i)
	h.down(h.indices[v])
}

func (h *varHeap) up(i int) {
	v := h.heap[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(v, h.heap[parent]) {
			break
		}
		h.heap[i] = h.heap[parent]
		h.indices[h.heap[i]] = i
		i = parent
	}
	h.heap[i] = v
	h.indices[v] = i
}

func (h *varHeap) down(i int) {
	v := h.heap[i]
	for {
		left := 2*i + 1
		if left >= len(h.heap) {
			break
		}
		child := left
		if right := left + 1; right < len(h.heap) && h.less(h.heap[right], h.heap[left]) {
			child = right
		}
		if !h.less(h.heap[child], v) {
			break
		}
		h.heap[i] = h.heap[child]
		h.indices[h.heap[i]] = i
		i = child
	}
	h.heap[i] = v
	h.indices[v] = i
}
