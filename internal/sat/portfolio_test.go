package sat

import (
	"math/rand"
	"sync/atomic"
	"testing"
)

// randCNF generates a random small CNF over nVars variables.
func randCNF(rng *rand.Rand, nVars, nClauses int) [][]Lit {
	cnf := make([][]Lit, nClauses)
	for i := range cnf {
		width := 1 + rng.Intn(3)
		cl := make([]Lit, width)
		for j := range cl {
			cl[j] = MkLit(Var(rng.Intn(nVars)), rng.Intn(2) == 1)
		}
		cnf[i] = cl
	}
	return cnf
}

// loadCNF adds a CNF to a fresh solver; the second result is false when a
// clause conflicts at the root.
func loadCNF(s *Solver, nVars int, cnf [][]Lit) bool {
	for i := 0; i < nVars; i++ {
		s.NewVar()
	}
	for _, cl := range cnf {
		if !s.AddClause(cl...) {
			return false
		}
	}
	return true
}

// TestRerandomizeKeepsCorrectness cross-checks repeated solving with
// Rerandomize between calls against brute force: re-seeding phases and
// activities must never change satisfiability, and every model must still
// satisfy the formula.
func TestRerandomizeKeepsCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		nVars := 3 + rng.Intn(8)
		cnf := randCNF(rng, nVars, 2+rng.Intn(5*nVars))
		want := bruteForce(nVars, cnf)
		s := New(Options{Seed: int64(trial)})
		rootOK := loadCNF(s, nVars, cnf)
		for round := 0; round < 4; round++ {
			var got Result
			if !rootOK {
				got = Unsat
			} else {
				s.Rerandomize(rng, 1)
				got = s.Solve()
			}
			if (got == Sat) != want {
				t.Fatalf("trial %d round %d: solver=%v bruteforce_sat=%v", trial, round, got, want)
			}
			if got == Sat && !modelSatisfies(s.Model(), cnf) {
				t.Fatalf("trial %d round %d: model does not satisfy formula", trial, round)
			}
		}
	}
}

// TestRerandomizeModelDiversity is the restart-sampling primitive contract:
// on an under-constrained formula, solving after Rerandomize must reach
// several distinct models without any blocking clauses.
func TestRerandomizeModelDiversity(t *testing.T) {
	s := New(Options{Seed: 3})
	rng := rand.New(rand.NewSource(9))
	vars := make([]Var, 8)
	lits := make([]Lit, len(vars))
	for i := range vars {
		vars[i] = s.NewVar()
		lits[i] = PosLit(vars[i])
	}
	s.AddClause(lits...) // at least one variable true
	distinct := make(map[[8]bool]bool)
	for i := 0; i < 24; i++ {
		s.Rerandomize(rng, 1)
		if s.Solve() != Sat {
			t.Fatal("expected sat")
		}
		var key [8]bool
		for j, v := range vars {
			key[j] = s.ModelValue(v)
		}
		distinct[key] = true
	}
	if len(distinct) < 4 {
		t.Fatalf("24 rerandomized solves found only %d distinct models", len(distinct))
	}
}

// TestExportLearntsCap checks that the length cap holds and that exported
// slices are private copies.
func TestExportLearntsCap(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	s := New(Options{Seed: 1})
	nVars := 12
	cnf := randCNF(rng, nVars, 50)
	if !loadCNF(s, nVars, cnf) {
		t.Skip("root conflict; regenerate")
	}
	s.Solve()
	if s.NumLearnts() == 0 {
		t.Fatal("test instance produced no learnt clauses; make it harder")
	}
	const maxLen = 3
	out := s.ExportLearnts(maxLen)
	for _, cl := range out {
		if len(cl) > maxLen {
			t.Fatalf("exported clause of length %d exceeds cap %d", len(cl), maxLen)
		}
	}
	all := s.ExportLearnts(0)
	if len(all) != s.NumLearnts() {
		t.Fatalf("uncapped export returned %d clauses, solver holds %d", len(all), s.NumLearnts())
	}
	if len(all) > 0 && len(all[0]) > 0 {
		orig := all[0][0]
		all[0][0] = orig.Neg() // mutating the export must not touch the solver
		again := s.ExportLearnts(0)
		if again[0][0] != orig {
			t.Fatal("ExportLearnts returned aliased clause storage")
		}
	}
}

// TestImportLearntsPreservesEquivalence moves learnts between two solvers
// over the same formula and checks the receiver still agrees with brute
// force — the portfolio learnt-sharing soundness property.
func TestImportLearntsPreservesEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 60; trial++ {
		nVars := 4 + rng.Intn(8)
		cnf := randCNF(rng, nVars, 3+rng.Intn(5*nVars))
		want := bruteForce(nVars, cnf)

		a := New(Options{Seed: int64(trial)})
		aOK := loadCNF(a, nVars, cnf)
		if aOK {
			a.Solve()
		}
		b := New(Options{Seed: int64(trial) + 1000})
		bOK := loadCNF(b, nVars, cnf)
		if aOK && bOK {
			b.ImportLearnts(a.ExportLearnts(4))
		}
		var got Result
		if !bOK {
			got = Unsat
		} else {
			got = b.Solve()
		}
		if (got == Sat) != want {
			t.Fatalf("trial %d: after import solver=%v bruteforce_sat=%v", trial, got, want)
		}
		if got == Sat && !modelSatisfies(b.Model(), cnf) {
			t.Fatalf("trial %d: model after import violates formula", trial)
		}
	}
}

// TestImportLearntEdgeCases pins the unit, empty and root-status handling of
// clause import.
func TestImportLearntEdgeCases(t *testing.T) {
	s := New(Options{})
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(PosLit(a), PosLit(b))
	if n := s.ImportLearnts([][]Lit{{NegLit(a)}}); n != 1 {
		t.Fatalf("unit import installed %d clauses, want 1", n)
	}
	if s.Solve() != Sat || s.ModelValue(a) || !s.ModelValue(b) {
		t.Fatal("imported unit ¬a must force the b-model")
	}
	// A tautology and an already-satisfied clause are skipped, not installed.
	if n := s.ImportLearnts([][]Lit{{PosLit(b), NegLit(b)}, {NegLit(a), PosLit(b)}}); n != 0 {
		t.Fatalf("tautology/satisfied import installed %d clauses, want 0", n)
	}
	// An empty (all-false-at-root) clause marks the solver unsatisfiable.
	s.ImportLearnts([][]Lit{{PosLit(a)}})
	if s.Solve() != Unsat {
		t.Fatal("contradictory import must yield unsat")
	}
}

// TestCloneIndependence checks the portfolio cloning contract: a clone
// answers like the original, and clauses added to the clone never leak back.
func TestCloneIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 60; trial++ {
		nVars := 4 + rng.Intn(8)
		cnf := randCNF(rng, nVars, 3+rng.Intn(5*nVars))
		want := bruteForce(nVars, cnf)
		s := New(Options{Seed: int64(trial)})
		rootOK := loadCNF(s, nVars, cnf)
		if rootOK {
			s.Solve() // accumulate learnts and a root trail for the clone to copy
		}
		c := s.Clone(Options{Seed: int64(trial) + 500, RandomPolarity: 0.3, RestartBase: 50})
		var got Result
		if !rootOK {
			got = c.Solve()
			if got != Unsat {
				t.Fatalf("trial %d: clone of root-unsat solver = %v", trial, got)
			}
			continue
		}
		got = c.Solve()
		if (got == Sat) != want {
			t.Fatalf("trial %d: clone solve=%v bruteforce_sat=%v", trial, got, want)
		}
		if got == Sat {
			if !modelSatisfies(c.Model(), cnf) {
				t.Fatalf("trial %d: clone model violates formula", trial)
			}
			// Poison the clone; the original must be unaffected.
			m := c.Model()
			block := make([]Lit, nVars)
			for v := 0; v < nVars; v++ {
				block[v] = MkLit(Var(v), m[v])
			}
			c.CancelToRoot()
			c.AddClause(block...)
			if s.Solve() != Sat || !modelSatisfies(s.Model(), cnf) {
				t.Fatalf("trial %d: mutating the clone disturbed the original", trial)
			}
		}
	}
}

// TestStopFlag checks cooperative cancellation: a pre-set stop flag makes the
// next conflict abort with Unknown, and clearing it restores the solver.
func TestStopFlag(t *testing.T) {
	var stop atomic.Bool
	stop.Store(true)
	s := New(Options{})
	s.SetStop(&stop)
	// PHP(6,5): unsatisfiable, needs many conflicts — the stop must win first.
	const pigeons, holes = 6, 5
	vars := make([][]Var, pigeons)
	for p := range vars {
		vars[p] = make([]Var, holes)
		for h := range vars[p] {
			vars[p][h] = s.NewVar()
		}
	}
	for p := 0; p < pigeons; p++ {
		lits := make([]Lit, holes)
		for h := 0; h < holes; h++ {
			lits[h] = PosLit(vars[p][h])
		}
		s.AddClause(lits...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				s.AddClause(NegLit(vars[p1][h]), NegLit(vars[p2][h]))
			}
		}
	}
	if got := s.Solve(); got != Unknown {
		t.Fatalf("solve with stop set = %v, want unknown", got)
	}
	stop.Store(false)
	if got := s.Solve(); got != Unsat {
		t.Fatalf("solve after clearing stop = %v, want unsat", got)
	}
}
