package sat

import (
	"math/rand"
	"sort"
	"sync/atomic"
)

// Result is the outcome of a Solve call.
type Result int

// Solve outcomes.
const (
	Unknown Result = iota // conflict budget exhausted
	Sat                   // a model was found
	Unsat                 // the formula is unsatisfiable
)

func (r Result) String() string {
	switch r {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	}
	return "unknown"
}

type clause struct {
	lits     []Lit
	learnt   bool
	activity float64
}

// Options configure a Solver.
type Options struct {
	// Seed seeds the solver's internal randomness (decision polarity and
	// occasional random decisions). Solves are deterministic per seed.
	Seed int64
	// RandomPolarity is the probability that a decision variable is assigned
	// a random phase instead of its saved phase. Non-zero values make
	// repeated solves of the same formula return diverse models.
	RandomPolarity float64
	// RandomDecisionFreq is the probability that a decision picks a random
	// unassigned variable instead of the highest-activity one.
	RandomDecisionFreq float64
	// MaxConflicts bounds the total number of conflicts before Solve gives
	// up and returns Unknown. Zero means no bound.
	MaxConflicts int64
	// RestartBase scales the Luby restart sequence: the i-th restart happens
	// after luby(i)*RestartBase conflicts. Zero means the default (100).
	// Portfolio configurations vary this to diversify search trajectories.
	RestartBase float64
	// Stop, when non-nil, is polled at every conflict: once it reads true the
	// solve returns Unknown promptly. It is how a portfolio race cancels
	// losing configurations; the solver itself stays usable afterwards.
	Stop *atomic.Bool
}

// Solver is a CDCL SAT solver. The zero value is not usable; call New.
type Solver struct {
	opts    Options
	rng     *rand.Rand
	clauses []*clause
	learnts []*clause
	watches [][]watcher // indexed by literal; clauses in which that literal is watched

	assigns []lbool   // per var
	level   []int32   // per var
	reason  []*clause // per var
	phase   []bool    // saved polarity per var

	trail    []Lit
	trailLim []int32
	qhead    int

	activity  []float64
	focus     []Var // decide-first variables (SetDecisionFocus)
	varInc    float64
	order     *varHeap
	claInc    float64
	seen      []bool
	unsatRoot bool // a top-level conflict was derived

	// statistics
	Conflicts    int64
	Decisions    int64
	Propagations int64
	maxLearnts   float64
}

type watcher struct {
	c       *clause
	blocker Lit
}

const (
	varDecay   = 0.95
	claDecay   = 0.999
	lubyBase   = 100.0
	learntGrow = 1.1
	learntFrac = 0.35
	rescaleAt  = 1e100
	rescaleBy  = 1e-100
)

// New returns a solver with the given options.
func New(opts Options) *Solver {
	s := &Solver{
		opts:   opts,
		rng:    rand.New(rand.NewSource(opts.Seed)),
		varInc: 1.0,
		claInc: 1.0,
	}
	s.order = newVarHeap(&s.activity)
	return s
}

// NewVar introduces a fresh variable and returns it.
func (s *Solver) NewVar() Var {
	v := Var(len(s.assigns))
	s.assigns = append(s.assigns, lUndef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, nil)
	s.phase = append(s.phase, false)
	s.activity = append(s.activity, 0)
	s.seen = append(s.seen, false)
	s.watches = append(s.watches, nil, nil)
	s.order.insert(v)
	return v
}

// NumVars returns the number of variables created so far.
func (s *Solver) NumVars() int { return len(s.assigns) }

// NumClauses returns the number of problem clauses currently attached
// (excluding learned clauses and root-level units).
func (s *Solver) NumClauses() int { return len(s.clauses) }

// NumLearnts returns the number of learned clauses currently retained. On a
// persistent instance this is the knowledge carried over into the next
// Solve/SolveUnderAssumptions call.
func (s *Solver) NumLearnts() int { return len(s.learnts) }

// SetRandomPolarity adjusts the random-polarity probability for subsequent
// solve calls. Incremental sessions flip this between model *finding* (low,
// favor saved phases) and model *sampling* (high, favor diversity).
func (s *Solver) SetRandomPolarity(p float64) { s.opts.RandomPolarity = p }

// SetMaxConflicts adjusts the per-call conflict budget for subsequent solve
// calls. Portfolio solving uses it to run a cheap probe on the persistent
// engine before committing to a full race.
func (s *Solver) SetMaxConflicts(n int64) { s.opts.MaxConflicts = n }

// SetStop installs (or, with nil, removes) the cancellation flag polled at
// every conflict. See Options.Stop.
func (s *Solver) SetStop(stop *atomic.Bool) { s.opts.Stop = stop }

// SetDecisionFocus makes subsequent decisions pick the first unassigned
// variable of vars (in order) before consulting the activity heap; nil
// restores pure activity order. Restart sampling focuses decisions on the
// bit-blasted input bits: deciding the projection variables first — with
// their perturbed saved phases — makes each completion's model projection a
// direct function of the perturbation instead of a side effect of whatever
// the auxiliary variables imply, which is what turns phase flips into fresh
// models. The focus list is not copied by Clone; it is a sampling-call
// setting, not part of the logical state.
func (s *Solver) SetDecisionFocus(vars []Var) { s.focus = vars }

func (s *Solver) value(l Lit) lbool {
	v := s.assigns[l.Var()]
	if v == lUndef {
		return lUndef
	}
	if l.Sign() {
		return v.not()
	}
	return v
}

// AddClause adds a clause over the given literals. It returns false if the
// solver is already in an unsatisfiable state at the root level.
//
// AddClause may be called after a previous Solve (incremental solving): the
// solver first backtracks to decision level zero, which invalidates the model
// of that Solve. Learned clauses and saved phases are retained.
func (s *Solver) AddClause(lits ...Lit) bool {
	if s.unsatRoot {
		return false
	}
	if len(s.trailLim) != 0 {
		s.cancelUntil(0)
	}
	// Normalize: sort, dedup, drop root-false literals, detect tautology and
	// root-true literals.
	ls := append([]Lit(nil), lits...)
	sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
	out := ls[:0]
	var prev Lit = LitUndef
	for _, l := range ls {
		if l == prev {
			continue
		}
		if prev != LitUndef && l == prev.Neg() {
			return true // tautology
		}
		switch s.value(l) {
		case lTrue:
			return true // already satisfied at root
		case lFalse:
			prev = l
			continue // drop falsified literal
		}
		out = append(out, l)
		prev = l
	}
	switch len(out) {
	case 0:
		s.unsatRoot = true
		return false
	case 1:
		s.uncheckedEnqueue(out[0], nil)
		if s.propagate() != nil {
			s.unsatRoot = true
			return false
		}
		return true
	}
	c := &clause{lits: append([]Lit(nil), out...)}
	s.clauses = append(s.clauses, c)
	s.attach(c)
	return true
}

func (s *Solver) attach(c *clause) {
	s.watches[c.lits[0].Neg()] = append(s.watches[c.lits[0].Neg()], watcher{c, c.lits[1]})
	s.watches[c.lits[1].Neg()] = append(s.watches[c.lits[1].Neg()], watcher{c, c.lits[0]})
}

func (s *Solver) detach(c *clause) {
	s.removeWatch(c.lits[0].Neg(), c)
	s.removeWatch(c.lits[1].Neg(), c)
}

func (s *Solver) removeWatch(l Lit, c *clause) {
	ws := s.watches[l]
	for i := range ws {
		if ws[i].c == c {
			ws[i] = ws[len(ws)-1]
			s.watches[l] = ws[:len(ws)-1]
			return
		}
	}
}

func (s *Solver) uncheckedEnqueue(l Lit, from *clause) {
	v := l.Var()
	s.assigns[v] = boolToLbool(!l.Sign())
	s.level[v] = int32(len(s.trailLim))
	s.reason[v] = from
	s.trail = append(s.trail, l)
}

// propagate performs unit propagation; it returns a conflicting clause or nil.
func (s *Solver) propagate() *clause {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead] // p was just assigned true, so ¬p became false
		s.qhead++
		s.Propagations++
		falsified := p.Neg()
		// watches[p] holds the clauses in which ¬p is a watched literal
		// (attach registers each watched literal l under watches[¬l]).
		ws := s.watches[p]
		kept := ws[:0]
		var confl *clause
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			// Fast path: the blocker literal is already true.
			if s.value(w.blocker) == lTrue {
				kept = append(kept, w)
				continue
			}
			c := w.c
			// Ensure the falsified literal is lits[1].
			if c.lits[0] == falsified {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			first := c.lits[0]
			if first != w.blocker && s.value(first) == lTrue {
				kept = append(kept, watcher{c, first})
				continue
			}
			// Look for a new literal to watch.
			found := false
			for j := 2; j < len(c.lits); j++ {
				if s.value(c.lits[j]) != lFalse {
					c.lits[1], c.lits[j] = c.lits[j], c.lits[1]
					s.watches[c.lits[1].Neg()] = append(s.watches[c.lits[1].Neg()], watcher{c, first})
					found = true
					break
				}
			}
			if found {
				continue // watch moved; drop from this list
			}
			// Clause is unit or conflicting.
			kept = append(kept, watcher{c, first})
			if s.value(first) == lFalse {
				confl = c
				// Copy remaining watchers back and stop.
				for i++; i < len(ws); i++ {
					kept = append(kept, ws[i])
				}
				s.qhead = len(s.trail)
				break
			}
			s.uncheckedEnqueue(first, c)
		}
		s.watches[p] = kept
		if confl != nil {
			return confl
		}
	}
	return nil
}

// analyze performs first-UIP conflict analysis and returns the learnt clause
// (first literal is the asserting literal) and the backtrack level.
func (s *Solver) analyze(confl *clause) ([]Lit, int32) {
	learnt := []Lit{LitUndef} // slot 0 reserved for the asserting literal
	counter := 0
	p := LitUndef
	index := len(s.trail) - 1
	decLevel := int32(len(s.trailLim))

	for {
		start := 0
		if p != LitUndef {
			start = 1 // skip the propagated literal itself in reason clauses
		}
		for j := start; j < len(confl.lits); j++ {
			q := confl.lits[j]
			v := q.Var()
			if s.seen[v] || s.level[v] == 0 {
				continue
			}
			s.seen[v] = true
			s.bumpVar(v)
			if s.level[v] >= decLevel {
				counter++
			} else {
				learnt = append(learnt, q)
			}
		}
		// Walk the trail backwards to the next marked literal.
		for !s.seen[s.trail[index].Var()] {
			index--
		}
		p = s.trail[index]
		confl = s.reason[p.Var()]
		s.seen[p.Var()] = false
		counter--
		index--
		if counter == 0 {
			break
		}
	}
	learnt[0] = p.Neg()

	// Backtrack level: highest level among the other literals.
	bt := int32(0)
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].Var()] > s.level[learnt[maxI].Var()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		bt = s.level[learnt[1].Var()]
	}
	for _, l := range learnt {
		s.seen[l.Var()] = false
	}
	return learnt, bt
}

func (s *Solver) bumpVar(v Var) {
	s.activity[v] += s.varInc
	if s.activity[v] > rescaleAt {
		for i := range s.activity {
			s.activity[i] *= rescaleBy
		}
		s.varInc *= rescaleBy
	}
	s.order.update(v)
}

func (s *Solver) bumpClause(c *clause) {
	c.activity += s.claInc
	if c.activity > rescaleAt {
		for _, lc := range s.learnts {
			lc.activity *= rescaleBy
		}
		s.claInc *= rescaleBy
	}
}

func (s *Solver) cancelUntil(lvl int32) {
	if int32(len(s.trailLim)) <= lvl {
		return
	}
	bound := s.trailLim[lvl]
	for i := len(s.trail) - 1; i >= int(bound); i-- {
		v := s.trail[i].Var()
		s.phase[v] = s.assigns[v] == lTrue
		s.assigns[v] = lUndef
		s.reason[v] = nil
		s.order.insert(v)
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:lvl]
	s.qhead = len(s.trail)
}

func (s *Solver) decide() bool {
	var v Var = -1
	for _, f := range s.focus {
		if s.assigns[f] == lUndef {
			v = f
			break
		}
	}
	if v < 0 && s.opts.RandomDecisionFreq > 0 && s.rng.Float64() < s.opts.RandomDecisionFreq {
		// Random decision: pick an arbitrary unassigned variable.
		if n := s.NumVars(); n > 0 {
			cand := Var(s.rng.Intn(n))
			if s.assigns[cand] == lUndef {
				v = cand
			}
		}
	}
	for v < 0 {
		if s.order.empty() {
			return false
		}
		cand := s.order.removeMax()
		if s.assigns[cand] == lUndef {
			v = cand
		}
	}
	pol := s.phase[v]
	if s.opts.RandomPolarity > 0 && s.rng.Float64() < s.opts.RandomPolarity {
		pol = s.rng.Intn(2) == 0
	}
	s.Decisions++
	s.trailLim = append(s.trailLim, int32(len(s.trail)))
	s.uncheckedEnqueue(MkLit(v, !pol), nil)
	return true
}

func (s *Solver) reduceDB() {
	sort.Slice(s.learnts, func(i, j int) bool {
		return s.learnts[i].activity < s.learnts[j].activity
	})
	kept := s.learnts[:0]
	limit := len(s.learnts) / 2
	for i, c := range s.learnts {
		locked := s.reason[c.lits[0].Var()] == c && s.value(c.lits[0]) == lTrue
		if i < limit && len(c.lits) > 2 && !locked {
			s.detach(c)
			continue
		}
		kept = append(kept, c)
	}
	s.learnts = kept
}

// luby returns the i-th element (1-based) of the Luby restart sequence
// 1,1,2,1,1,2,4,1,1,2,1,1,2,4,8,...
func luby(i int64) float64 {
	x := i - 1 // 0-based position
	size, seq := int64(1), 0
	for size < x+1 {
		seq++
		size = 2*size + 1
	}
	for size-1 != x {
		size = (size - 1) >> 1
		seq--
		x %= size
	}
	return float64(int64(1) << uint(seq))
}

// Solve determines satisfiability of the clauses added so far. It is the
// degenerate (no-assumption) case of SolveUnderAssumptions and may be called
// repeatedly on one instance, interleaved with AddClause, to solve
// incrementally: learned clauses and saved phases carry over between calls.
func (s *Solver) Solve() Result {
	return s.SolveUnderAssumptions(nil)
}

// SolveUnderAssumptions determines satisfiability of the clauses added so
// far under the given assumption literals. Assumptions are enqueued as the
// first decisions (one per decision level, MiniSat style), so a returned
// model satisfies every assumption, and Unsat means "unsatisfiable under
// these assumptions" — the solver itself stays usable and a later call with
// different (or no) assumptions can still return Sat.
//
// The conflict budget (Options.MaxConflicts) applies per call, not per
// instance: every call gets a fresh budget, which is what makes one
// persistent instance serve a whole enforcement loop.
//
// Clauses learned during an assumption solve are implied by the clause
// database alone (assumption literals appear *in* learned clauses rather
// than being resolved away), so retaining them across calls is sound even as
// assumption sets change.
func (s *Solver) SolveUnderAssumptions(assumps []Lit) Result {
	if s.unsatRoot {
		return Unsat
	}
	s.cancelUntil(0) // invalidate any previous model; start from the root
	if c := s.propagate(); c != nil {
		s.unsatRoot = true
		return Unsat
	}
	return s.search(assumps)
}

// SolveContinue resumes the search from the current partial assignment
// instead of backtracking to the root first — the complement of
// PartialRestart, which leaves a prefix of the previous model's trail in
// place. The result contract matches Solve: the kept decisions are ordinary
// decisions, not assumptions, so the search is free to undo them through
// conflict analysis and Unsat still means root-level unsatisfiability.
func (s *Solver) SolveContinue() Result {
	if s.unsatRoot {
		return Unsat
	}
	return s.search(nil)
}

// search is the CDCL main loop, entered with the current trail consistent or
// carrying a pending conflict (which the first propagate surfaces).
func (s *Solver) search(assumps []Lit) Result {
	s.maxLearnts = float64(len(s.clauses)) * learntFrac
	if s.maxLearnts < 1000 {
		s.maxLearnts = 1000
	}
	restartBase := s.opts.RestartBase
	if restartBase <= 0 {
		restartBase = lubyBase
	}
	var restarts int64
	budget := int64(restartBase * luby(restarts+1))
	conflictsThisRestart := int64(0)
	startConflicts := s.Conflicts

	for {
		confl := s.propagate()
		if confl != nil {
			s.Conflicts++
			conflictsThisRestart++
			if s.opts.Stop != nil && s.opts.Stop.Load() {
				s.cancelUntil(0)
				return Unknown
			}
			if len(s.trailLim) == 0 {
				s.unsatRoot = true
				return Unsat
			}
			learnt, bt := s.analyze(confl)
			s.cancelUntil(bt)
			if len(learnt) == 1 {
				s.uncheckedEnqueue(learnt[0], nil)
			} else {
				c := &clause{lits: learnt, learnt: true}
				s.learnts = append(s.learnts, c)
				s.attach(c)
				s.bumpClause(c)
				s.uncheckedEnqueue(learnt[0], c)
			}
			s.varInc /= varDecay
			s.claInc /= claDecay
			if s.opts.MaxConflicts > 0 && s.Conflicts-startConflicts >= s.opts.MaxConflicts {
				s.cancelUntil(0)
				return Unknown
			}
			continue
		}
		// Establish the assumption levels before anything can declare Sat:
		// a full consistent assignment that falsifies an assumption is an
		// Unsat-under-assumptions answer, not a model.
		if len(s.trailLim) < len(assumps) {
			p := assumps[len(s.trailLim)]
			switch s.value(p) {
			case lTrue:
				// Already implied; open a dummy level so indices line up.
				s.trailLim = append(s.trailLim, int32(len(s.trail)))
			case lFalse:
				// The clause database (plus earlier assumptions) forces ¬p:
				// unsat under these assumptions, but not at the root.
				s.cancelUntil(0)
				return Unsat
			default:
				s.trailLim = append(s.trailLim, int32(len(s.trail)))
				s.uncheckedEnqueue(p, nil)
			}
			continue
		}
		if len(s.trail) == len(s.assigns) {
			return Sat // full assignment, consistent
		}
		if conflictsThisRestart >= budget {
			restarts++
			conflictsThisRestart = 0
			budget = int64(restartBase * luby(restarts+1))
			s.cancelUntil(0)
			continue
		}
		if float64(len(s.learnts)) >= s.maxLearnts+float64(len(s.trail)) {
			s.reduceDB()
			s.maxLearnts *= learntGrow
		}
		if !s.decide() {
			return Sat // no unassigned vars left
		}
	}
}

// CancelToRoot undoes all decisions, returning the solver to decision level
// zero so that further clauses can be added (incremental solving). The model
// of a prior Solve becomes invalid.
func (s *Solver) CancelToRoot() {
	s.cancelUntil(0)
}

// ModelValue returns the value of v in the model found by the last
// successful Solve. Unassigned variables (possible only before solving)
// report false.
func (s *Solver) ModelValue(v Var) bool {
	return s.assigns[v] == lTrue
}

// Model returns the full model as a slice indexed by variable.
func (s *Solver) Model() []bool {
	m := make([]bool, len(s.assigns))
	for i := range m {
		m[i] = s.assigns[i] == lTrue
	}
	return m
}

// Rerandomize backtracks to the root and re-randomizes each variable's saved
// phase with probability flip (flip >= 1 scrambles every phase). Activities,
// the decision heap and all clauses — problem and learnt alike — are
// untouched, so the next Solve walks the *learned* variable order (which is
// what keeps the solve fast) but extends assignments in a perturbed direction
// (which is what makes it land on a different model). This is the
// restart-sampling primitive: between model samples it replaces asserting a
// blocking clause and re-solving from scratch. The flip rate trades solve
// cost against sample diversity: a full scramble pays a near-cold search per
// sample (random phases fight the constraint until conflicts herd them back),
// while a small perturbation of the previous model's phases reaches a nearby
// fresh model in a handful of conflicts. Scrambling activities too costs
// another order of magnitude for no diversity the phase flips don't provide.
func (s *Solver) Rerandomize(rng *rand.Rand, flip float64) {
	s.cancelUntil(0)
	for v := range s.assigns {
		if flip >= 1 || rng.Float64() < flip {
			s.phase[v] = rng.Intn(2) == 0
		}
	}
}

// PartialRestart backtracks to a random decision level of the current trail
// (uniform over [0, depth]) and re-randomizes the saved phases of the
// now-unassigned variables with probability flip each. Together with
// SolveContinue this is the cheap restart-sampling step: the kept prefix of
// the previous model is not re-decided or re-propagated, so the cost of the
// next sample scales with the replaced suffix rather than with the whole
// variable set, and the random suffix phases steer the completion toward a
// different model. Drawing the backtrack depth fresh each time makes the
// sample sequence a random walk over the solution set: shallow backtracks
// move far, deep backtracks are nearly free.
func (s *Solver) PartialRestart(rng *rand.Rand, flip float64) {
	if len(s.trailLim) > 0 {
		s.cancelUntil(int32(rng.Intn(len(s.trailLim) + 1)))
	}
	for v := range s.assigns {
		if s.assigns[v] == lUndef && (flip >= 1 || rng.Float64() < flip) {
			s.phase[v] = rng.Intn(2) == 0
		}
	}
}

// PerturbPhases re-randomizes the saved phases of the given variables (those
// currently unassigned) with probability flip each. Restart sampling uses it
// to aim the perturbation at the variables that matter for model identity —
// the bit-blasted input bits — instead of the full variable set: flipping a
// Tseitin auxiliary variable rarely changes the input projection of the next
// model, so undirected flips mostly buy conflicts without diversity.
func (s *Solver) PerturbPhases(rng *rand.Rand, flip float64, vars []Var) {
	for _, v := range vars {
		if s.assigns[v] == lUndef && (flip >= 1 || rng.Float64() < flip) {
			s.phase[v] = rng.Intn(2) == 0
		}
	}
}

// ExportLearnts returns copies of the retained learnt clauses with at most
// maxLen literals (maxLen <= 0 means no cap). Short learnts are the ones
// worth sharing across engines: they prune the most search per watched
// literal, while long ones mostly bloat watch lists. The returned slices are
// private copies, safe to hand to another solver.
func (s *Solver) ExportLearnts(maxLen int) [][]Lit {
	var out [][]Lit
	for _, c := range s.learnts {
		if maxLen > 0 && len(c.lits) > maxLen {
			continue
		}
		out = append(out, append([]Lit(nil), c.lits...))
	}
	return out
}

// ImportLearnts adds clauses as learnt clauses (subject to reduceDB pruning
// like any other learnt) and returns how many were installed. The caller must
// guarantee soundness: every clause must be a logical consequence of this
// solver's clause database over this solver's variable numbering — which
// holds for clauses exported from a Clone of this solver, the portfolio
// learnt-sharing case. Clauses satisfied at the root are skipped; a clause
// falsified at the root marks the solver unsatisfiable.
func (s *Solver) ImportLearnts(clauses [][]Lit) int {
	n := 0
	for _, lits := range clauses {
		if s.unsatRoot {
			break
		}
		if s.importLearnt(lits) {
			n++
		}
	}
	return n
}

func (s *Solver) importLearnt(lits []Lit) bool {
	if len(s.trailLim) != 0 {
		s.cancelUntil(0)
	}
	ls := append([]Lit(nil), lits...)
	sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
	out := ls[:0]
	var prev Lit = LitUndef
	for _, l := range ls {
		if l == prev {
			continue
		}
		if prev != LitUndef && l == prev.Neg() {
			return false // tautology: nothing to learn
		}
		switch s.value(l) {
		case lTrue:
			return false // already satisfied at root
		case lFalse:
			prev = l
			continue
		}
		out = append(out, l)
		prev = l
	}
	switch len(out) {
	case 0:
		s.unsatRoot = true
		return false
	case 1:
		s.uncheckedEnqueue(out[0], nil)
		if s.propagate() != nil {
			s.unsatRoot = true
		}
		return true
	}
	c := &clause{lits: append([]Lit(nil), out...), learnt: true}
	s.learnts = append(s.learnts, c)
	s.attach(c)
	return true
}

// Clone returns an independent solver over the same formula: identical
// variable numbering, the root-level trail replayed as unit clauses, every
// problem and learnt clause copied, and the saved phases and activities
// carried over so the clone starts warm. The clone draws its own randomness
// from opts (seed, polarity, restart base), which is what makes it a
// portfolio configuration: same knowledge, different trajectory. Clauses the
// clone learns are consequences of the original's database, so they may be
// imported back with ImportLearnts.
func (s *Solver) Clone(opts Options) *Solver {
	s.cancelUntil(0)
	n := New(opts)
	for range s.assigns {
		n.NewVar()
	}
	copy(n.phase, s.phase)
	copy(n.activity, s.activity)
	n.varInc = s.varInc
	n.order = newVarHeap(&n.activity)
	for v := range n.assigns {
		n.order.insert(Var(v))
	}
	if s.unsatRoot {
		n.unsatRoot = true
		return n
	}
	for _, l := range s.trail {
		n.AddClause(l)
	}
	for _, c := range s.clauses {
		n.AddClause(c.lits...)
	}
	for _, c := range s.learnts {
		n.importLearnt(c.lits)
	}
	return n
}
