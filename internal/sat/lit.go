// Package sat implements a CDCL (conflict-driven clause learning) boolean
// satisfiability solver in the MiniSat lineage: two-literal watch schemes,
// VSIDS variable activity, phase saving, first-UIP conflict analysis, Luby
// restarts and activity-based learnt-clause reduction.
//
// Together with package bitblast it replaces the Z3 SMT solver the paper
// uses for target-constraint solution (§4.3): bitvector constraints are
// Tseitin-encoded to CNF and decided here. The solver supports randomized
// decision polarity so that repeated solves sample diverse models, which the
// paper's §5.5/§5.6 experiments (200 generated inputs per constraint) need.
package sat

// Var is a variable index, starting at 0.
type Var int32

// Lit is a literal: variable 2*v for the positive literal, 2*v+1 for the
// negation.
type Lit int32

// LitUndef is the sentinel "no literal" value.
const LitUndef Lit = -1

// MkLit returns the literal for v, negated if neg is true.
func MkLit(v Var, neg bool) Lit {
	l := Lit(v) << 1
	if neg {
		l |= 1
	}
	return l
}

// PosLit returns the positive literal of v.
func PosLit(v Var) Lit { return Lit(v) << 1 }

// NegLit returns the negative literal of v.
func NegLit(v Var) Lit { return Lit(v)<<1 | 1 }

// Var returns the literal's variable.
func (l Lit) Var() Var { return Var(l >> 1) }

// Neg returns the complementary literal.
func (l Lit) Neg() Lit { return l ^ 1 }

// Sign reports whether l is a negated literal.
func (l Lit) Sign() bool { return l&1 == 1 }

// lbool is a three-valued boolean.
type lbool int8

const (
	lUndef lbool = iota
	lTrue
	lFalse
)

func boolToLbool(b bool) lbool {
	if b {
		return lTrue
	}
	return lFalse
}

func (v lbool) not() lbool {
	switch v {
	case lTrue:
		return lFalse
	case lFalse:
		return lTrue
	}
	return lUndef
}
