package core

import (
	"testing"

	"diode/internal/apps"
	"diode/internal/interp"
	"diode/internal/solver"
)

func huntApp(t *testing.T, short string, seed int64) *AppResult {
	t.Helper()
	app, err := apps.ByName(short)
	if err != nil {
		t.Fatal(err)
	}
	eng := New(app, Options{Seed: seed})
	res, err := eng.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// checkClassification compares measured verdicts against the paper's
// Table 1 rows for one application.
func checkClassification(t *testing.T, res *AppResult) {
	t.Helper()
	for _, ps := range res.App.Paper {
		sr, ok := res.ResultFor(ps.Site)
		if !ok {
			t.Errorf("%s: no result for site %s", res.App.Short, ps.Site)
			continue
		}
		if got := sr.Verdict.Class(); got != ps.Class {
			t.Errorf("%s %s: classified %v (verdict %v, enforced %v), paper says %v",
				res.App.Short, ps.Site, got, sr.Verdict, sr.Enforced, ps.Class)
		}
	}
	if len(res.Sites) != len(res.App.Paper) {
		t.Errorf("%s: %d sites analyzed, want %d", res.App.Short, len(res.Sites), len(res.App.Paper))
	}
}

// checkTriggeringInputs re-runs every exposed site's generated input and
// verifies it actually overflows at that site — the paper's manual
// verification step, automated.
func checkTriggeringInputs(t *testing.T, res *AppResult) {
	t.Helper()
	for _, sr := range res.Sites {
		if sr.Verdict != VerdictExposed {
			continue
		}
		if len(sr.Input) == 0 {
			t.Errorf("%s: exposed without an input", sr.Target.Site)
			continue
		}
		out := interp.Run(res.App.Program, sr.Input, interp.Options{Fuel: 50_000_000})
		ok, _ := triggered(sr.Target, out)
		if !ok {
			t.Errorf("%s: stored input does not reproduce the overflow", sr.Target.Site)
		}
		if sr.ErrorType == "" {
			t.Errorf("%s: missing error type", sr.Target.Site)
		}
	}
}

func TestVLCFullPipeline(t *testing.T) {
	res := huntApp(t, "vlc", 1)
	checkClassification(t, res)
	checkTriggeringInputs(t, res)

	// wav.c@147 (x+2) must be exposed without enforcing any branch.
	sr, _ := res.ResultFor("vlc:wav.c@147")
	if sr.Verdict != VerdictExposed || sr.EnforcedCount() != 0 {
		t.Errorf("wav.c@147: verdict %v enforced %d, want exposed/0", sr.Verdict, sr.EnforcedCount())
	}
	// messages.c@355 needs enforcement (the paper reports 2).
	sr, _ = res.ResultFor("vlc:messages.c@355")
	if sr.Verdict != VerdictExposed {
		t.Fatalf("messages.c@355: %v", sr.Verdict)
	}
	if sr.EnforcedCount() < 1 || sr.EnforcedCount() > 4 {
		t.Errorf("messages.c@355: enforced %d branches (%v), expected 1–4 (paper: 2)",
			sr.EnforcedCount(), sr.Enforced)
	}
}

func TestSwfPlayFullPipeline(t *testing.T) {
	res := huntApp(t, "swfplay", 2)
	checkClassification(t, res)
	checkTriggeringInputs(t, res)
	for _, site := range []string{
		"swfplay:jpeg.c@192",
		"swfplay:jpeg_rgb_decoder.c@253",
		"swfplay:jpeg_rgb_decoder.c@257",
	} {
		sr, _ := res.ResultFor(site)
		if sr.Verdict != VerdictExposed || sr.EnforcedCount() != 0 {
			t.Errorf("%s: verdict %v enforced %d, want exposed with 0 enforced",
				site, sr.Verdict, sr.EnforcedCount())
		}
	}
}

func TestCWebPFullPipeline(t *testing.T) {
	res := huntApp(t, "cwebp", 3)
	checkClassification(t, res)
	checkTriggeringInputs(t, res)
}

func TestImageMagickFullPipeline(t *testing.T) {
	res := huntApp(t, "imagemagick", 4)
	checkClassification(t, res)
	checkTriggeringInputs(t, res)
}

func TestDilloFullPipeline(t *testing.T) {
	res := huntApp(t, "dillo", 5)
	checkClassification(t, res)
	checkTriggeringInputs(t, res)

	// png.c@203 (the §2 example) must require branch enforcement: the five
	// sanity checks force a detour (the paper enforces 4).
	sr, _ := res.ResultFor("dillo:png.c@203")
	if sr.Verdict != VerdictExposed {
		t.Fatalf("png.c@203: %v", sr.Verdict)
	}
	if sr.EnforcedCount() < 2 {
		t.Errorf("png.c@203: enforced %d (%v), expected ≥2 (paper: 4)",
			sr.EnforcedCount(), sr.Enforced)
	}
}

// TestSamePathBlocking reproduces §5.4: for every exposed site, the
// "overflow on the seed's exact path" constraint must be satisfiable for
// exactly the two sites the paper names (SwfPlay jpeg.c@192 and CWebP
// jpegdec.c@248) and unsatisfiable everywhere else — blocking checks force
// overflow-triggering inputs onto a different path for 12 of the 14 sites.
func TestSamePathBlocking(t *testing.T) {
	samePathSat := map[string]bool{
		"swfplay:jpeg.c@192":  true,
		"cwebp:jpegdec.c@248": true,
	}
	for _, app := range apps.All() {
		eng := New(app, Options{Seed: 9})
		targets, err := eng.Analyze()
		if err != nil {
			t.Fatal(err)
		}
		byName := map[string]*Target{}
		for _, tg := range targets {
			byName[tg.Site] = tg
		}
		for _, ps := range app.Paper {
			if ps.Class != apps.ClassExposed {
				continue
			}
			target := byName[ps.Site]
			if target == nil {
				t.Fatalf("%s: target %s not found", app.Short, ps.Site)
			}
			want := solver.Unsat
			if samePathSat[ps.Site] {
				want = solver.Sat
			}
			if got := eng.SamePathSatisfiable(target); got != want {
				t.Errorf("%s same-path constraint: %v, want %v", ps.Site, got, want)
			}
			if samePathSat[ps.Site] != ps.SamePathSat {
				t.Errorf("%s: paper table SamePathSat=%v inconsistent with test expectation",
					ps.Site, ps.SamePathSat)
			}
		}
	}
}
