package core

import (
	"context"
	"fmt"

	"diode/internal/apps"
	"diode/internal/bv"
	"diode/internal/discover"
	"diode/internal/interp"
	"diode/internal/taint"
	"diode/internal/trace"
)

// Analyzer performs stages 1–3 of the pipeline for one application: the
// taint run that identifies target sites and relevant bytes, then one
// symbolic run per site (restricted to that site's relevant bytes, §4.2) to
// extract the target expression and the branch condition sequence.
//
// Analysis runs once per application; the Targets it produces are immutable
// and safe to share across concurrent Hunters. The Analyzer triggers the
// application's one-time program compilation (apps.App.Compiled) and runs
// all its stage 1–3 executions on one private reused interp.Machine; the
// shared Compiled is what every site's Hunter then executes.
type Analyzer struct {
	app  *apps.App
	opts Options
	mach *interp.Machine
}

// NewAnalyzer returns an analyzer for the application.
func NewAnalyzer(app *apps.App, opts Options) *Analyzer {
	a := &Analyzer{app: app, opts: opts.withDefaults()}
	if !a.opts.OneShotExecution {
		a.mach = interp.NewMachine(app.Compiled())
	}
	return a
}

// App returns the analyzer's application.
func (a *Analyzer) App() *apps.App { return a.app }

// Discovered returns the application's statically discovered sites in
// deterministic traversal order — the full site surface, of which the
// dynamically analyzed Targets cover the alloc-kind sites the seed input
// reaches with tainted sizes.
func (a *Analyzer) Discovered() ([]discover.Site, error) {
	return a.app.Discovered()
}

// siteInfo resolves the discovery record for an alloc site name. Static
// discovery over-approximates the dynamic taint run, so every analyzed
// site should be found; the fallback synthesizes a minimal record rather
// than failing analysis if discovery cannot run. Unless the NoTriage
// ablation is on, the record comes from the triaged list, so Targets carry
// the static verdict and bounds for the Hunter's short-circuits.
func (a *Analyzer) siteInfo(site string) discover.Site {
	var sites []discover.Site
	var err error
	if a.opts.NoTriage {
		sites, err = a.app.Discovered()
	} else if sites, err = a.app.Triaged(); err != nil {
		sites, err = a.app.Discovered()
	}
	if err == nil {
		for _, s := range sites {
			if s.Kind == discover.KindAlloc && s.Name == site {
				return s
			}
		}
	}
	return discover.Site{Name: site, Kind: discover.KindAlloc}
}

// run executes the guest on the analyzer's reused machine (or, under the
// OneShotExecution ablation, on a fresh tree-walking interpreter). The
// outcome aliases machine storage: anything retained past the next run must
// be copied.
func (a *Analyzer) run(input []byte, opts interp.Options) *interp.Outcome {
	if a.mach == nil {
		return interp.RunTree(a.app.Program, input, opts)
	}
	a.mach.Reset(input, opts)
	return a.mach.Run()
}

// Analyze identifies every tainted allocation site and extracts a Target per
// site, in seed execution order.
func (a *Analyzer) Analyze() ([]*Target, error) {
	return a.AnalyzeContext(context.Background())
}

// AnalyzeContext is Analyze with cancellation: ctx is checked between per-site
// symbolic runs and aborts mid-run guest executions through the interpreter's
// Cancel hook. A cancelled analysis returns (nil, ctx.Err()).
func (a *Analyzer) AnalyzeContext(ctx context.Context) ([]*Target, error) {
	seed := a.app.Format.Seed
	taintRun := a.run(seed, interp.Options{
		TrackTaint: true,
		Fuel:       a.opts.Fuel,
		Cancel:     ctx.Done(),
	})
	if ctx.Err() != nil {
		return nil, ctx.Err()
	}
	if taintRun.Kind != interp.OutOK {
		return nil, fmt.Errorf("core: seed taint run ended %v (%s)", taintRun.Kind, taintRun.AbortMsg)
	}
	// First tainted occurrence per site, in execution order.
	var order []string
	firstTaint := map[string]*taint.Set{}
	for _, ev := range taintRun.Allocs {
		if ev.Taint.Empty() {
			continue
		}
		if _, ok := firstTaint[ev.Site]; !ok {
			firstTaint[ev.Site] = ev.Taint
			order = append(order, ev.Site)
		}
	}

	var targets []*Target
	for _, site := range order {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		t, err := a.analyzeSite(ctx, site, firstTaint[site])
		if err != nil {
			return nil, err
		}
		targets = append(targets, t)
	}
	return targets, nil
}

func (a *Analyzer) analyzeSite(ctx context.Context, site string, labels *taint.Set) (*Target, error) {
	seed := a.app.Format.Seed
	relevant := labels.Elems()
	symRun := a.run(seed, interp.Options{
		TrackSymbolic: true,
		Fuel:          a.opts.Fuel,
		Cancel:        ctx.Done(),
		SymbolicBytes: func(i int) bool { return labels.Has(i) },
	})
	if ctx.Err() != nil {
		return nil, ctx.Err()
	}
	if symRun.Kind != interp.OutOK {
		return nil, fmt.Errorf("core: symbolic run for %s ended %v", site, symRun.Kind)
	}
	var ev *interp.AllocEvent
	for i := range symRun.Allocs {
		if symRun.Allocs[i].Site == site && symRun.Allocs[i].Sym != nil {
			ev = &symRun.Allocs[i]
			break
		}
	}
	if ev == nil {
		return nil, fmt.Errorf("core: site %s lost its symbolic size in stage 2", site)
	}

	fields := a.app.Format.Fields
	expr := fields.LiftTerm(ev.Sym)
	beta := bv.OverflowCond(expr)

	// The Target retains the raw branch records past this site's run, but the
	// outcome's slices are reused machine storage — copy before the next
	// site's symbolic run overwrites them. (The records' Cond terms are
	// interned and immutable; only the slice needs detaching.)
	raw := append([]interp.BranchRecord(nil), symRun.Branches[:ev.BranchMark]...)
	path := trace.FromBranches(raw)
	lifted := make(trace.Path, len(path))
	for i, entry := range path {
		lifted[i] = trace.Entry{
			Label: entry.Label,
			Cond:  fields.LiftBool(entry.Cond),
			Count: entry.Count,
		}
	}
	if !a.opts.DisableCompression {
		lifted = trace.Compress(lifted)
	}
	if !a.opts.DisableRelevanceFilter {
		lifted = trace.Relevant(lifted, beta)
	}
	t := &Target{
		Site:            site,
		Info:            a.siteInfo(site),
		RelevantBytes:   relevant,
		Expr:            expr,
		Beta:            beta,
		SeedPath:        lifted,
		RawSeedBranches: raw,
		DynamicBranches: len(raw),
	}
	t.finalize()
	return t, nil
}
