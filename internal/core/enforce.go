package core

import (
	"context"
	"time"

	"diode/internal/bv"
	"diode/internal/discover"
	"diode/internal/interp"
	"diode/internal/solver"
)

// Hunt runs the goal-directed conditional branch enforcement algorithm of
// Figure 7 against one target site:
//
//  1. Solve the target constraint β alone; if a generated input triggers the
//     overflow at the site, done (lines 3–6).
//  2. Otherwise compress φ, keep the relevant entries (lines 7–8; done once
//     during Analyze), and repeat: find the first relevant conditional
//     branch where the generated input's path diverges from the seed's,
//     conjoin that branch's constraint into φ′, and re-solve φ′∧β
//     (lines 10–16) — until an input triggers the overflow, the constraint
//     becomes unsatisfiable, or the input follows the seed path with no
//     overflow.
//
// The first flipped branch is located by comparing the instrumented branch
// traces of the seed run and the generated run (§4.5): both executions are
// recorded with the same relevant-byte restriction and walked in lockstep
// until label or direction differs. (Evaluating the recorded seed
// constraints on the new input would mis-handle fields the input generator
// reconstructs, such as checksums, whose branch conditions mention stale
// stored values; the concrete re-execution sees the repaired file.)
func (h *Hunter) Hunt(t *Target) *SiteResult {
	return h.HuntContext(context.Background(), t)
}

// HuntContext is Hunt with cancellation: the enforcement loop checks ctx at
// every iteration boundary, and mid-run guest executions abort through the
// interpreter's Cancel hook. A cancelled hunt returns promptly with a
// VerdictUnknown result carrying whatever the loop had established so far
// (enforced labels, run counts); callers distinguish cancellation from a
// genuine budget-exhaustion Unknown via ctx.Err().
func (h *Hunter) HuntContext(ctx context.Context, t *Target) *SiteResult {
	start := time.Now()
	res := &SiteResult{Target: t}
	defer func() { res.Discovery = time.Since(start) }()

	// Static-triage short-circuits (unless the NoTriage ablation is on).
	//
	// A must-overflow site wraps on every execution that reaches it, so the
	// seed run itself is the witness: execute it once and report the exposure
	// without opening a solver session. If the seed unexpectedly fails to
	// trigger (it should not, by soundness of the must verdict), fall through
	// to the full hunt rather than mis-report.
	//
	// A safe *arith* site is skipped outright: safety means no execution on
	// any input wraps at the node, so no hunt can expose it, and the loop
	// reports VerdictUnsat without opening a solver session. The label is a
	// static certificate, not a solver one — the approximated φ∧β can still
	// be satisfiable at a safe site (β omits the runtime sanity checks), so
	// a full hunt may spell the same non-exposable outcome sanity-prevented;
	// the harness marks these results pruned and the prune-parity test pins
	// that no pruned site ever hunts to exposed. Safe *alloc* sites are NOT
	// short-circuited: their curated verdicts distinguish unsatisfiable from
	// sanity-prevented, and the paper tables pin that distinction.
	if !h.opts.NoTriage {
		switch {
		case t.Info.Triage == discover.TriageMustOverflow:
			input := append([]byte(nil), h.app.Format.Seed...)
			res.Runs++
			out := h.execute(ctx, t, input, false)
			if ok, et := triggered(t, out); ok {
				res.Verdict = VerdictExposed
				res.Input = input
				res.ErrorType = et
				return res
			}
		case t.Info.Triage == discover.TriageSafe && t.Info.Kind == discover.KindArith:
			res.Verdict = VerdictUnsat
			return res
		}
	}

	// One incremental solving session serves the whole hunt: the loop below
	// only ever *grows* the conjunction (φ′∧β gains one branch constraint
	// per enforcement iteration), so each Assert lowers just the new
	// conjunct and the CDCL engine keeps everything it learned refuting
	// earlier iterations.
	sess := h.sol.NewSession(t.Beta)

	// Lines 3–6: the target constraint alone.
	initial := sess.SampleModels(h.opts.InitialAttempts)
	if len(initial) == 0 {
		// β itself is unsatisfiable (or the budget ran out).
		res.Verdict = VerdictUnsat
		return res
	}
	var lastInput []byte
	for _, m := range initial {
		if ctx.Err() != nil {
			res.Verdict = VerdictUnknown
			return res
		}
		input, err := h.gen.Generate(h.app.Format.Seed, m)
		if err != nil {
			h.sol.NoteGenFailure()
			continue
		}
		res.Runs++
		out := h.execute(ctx, t, input, false)
		if ok, et := triggered(t, out); ok {
			res.Verdict = VerdictExposed
			res.Input = input
			res.ErrorType = et
			return res
		}
		lastInput = input
	}
	if lastInput == nil {
		res.Verdict = VerdictUnknown
		return res
	}

	// Lines 9–16: goal-directed branch enforcement.
	enforced := map[string]bool{}
	current := lastInput
	for iter := 0; iter < h.opts.MaxEnforce; iter++ {
		// Iteration boundary: the cancellation point of the enforcement loop.
		if ctx.Err() != nil {
			res.Verdict = VerdictUnknown
			return res
		}
		if h.opts.Progress != nil {
			h.opts.Progress(iter)
		}
		// Instrumented run of the current input for trace comparison. A run
		// aborted by cancellation leaves a truncated branch trace — bail out
		// before the trace comparison acts on it.
		res.Runs++
		curOut := h.execute(ctx, t, current, true)
		if curOut.Kind == interp.OutCancelled {
			res.Verdict = VerdictUnknown
			return res
		}
		label, flipped, followed := h.firstFlipped(t, curOut, enforced)
		// Line 11's break requires the input to have actually executed the
		// target site via the seed path; a run that matched every branch but
		// crashed at an intermediate allocation never evaluated the target
		// expression, so the search must continue with a fresh model.
		followed = followed && reachedSite(t, curOut)
		switch {
		case flipped:
			entry, ok := t.PathEntry(label)
			if !ok {
				// The diverging branch has no enforceable constraint
				// (filtered as irrelevant); nothing more to enforce.
				res.Verdict = VerdictPrevented
				return res
			}
			sess.Assert(entry.Cond)
			enforced[label] = true
			res.Enforced = append(res.Enforced, label)
		case followed:
			// Line 11: the input follows the seed's relevant path yet
			// triggers no overflow.
			res.Verdict = VerdictPrevented
			return res
		default:
			// The input neither flips an enforceable branch nor follows the
			// whole seed path — typically it crashed at an *earlier*
			// allocation site whose size also wrapped, before reaching the
			// branches ahead. No constraint to add; re-solve for a
			// different model below (the session skips its model cache and
			// raises decision-polarity randomness when the conjunction is
			// unchanged, so a repeat solve explores fresh models).
		}

		// Line 13: solve φ′ ∧ β on the session.
		m, verdict := sess.Solve()
		switch verdict {
		case solver.Unsat:
			res.Verdict = VerdictPrevented
			return res
		case solver.Unknown:
			res.Verdict = VerdictUnknown
			return res
		}
		input, err := h.gen.Generate(h.app.Format.Seed, m)
		if err != nil {
			h.sol.NoteGenFailure()
			res.Verdict = VerdictUnknown
			return res
		}
		// Line 14: does the new input trigger the overflow?
		res.Runs++
		out := h.execute(ctx, t, input, false)
		if ok, et := triggered(t, out); ok {
			res.Verdict = VerdictExposed
			res.Input = input
			res.ErrorType = et
			return res
		}
		current = input
	}
	res.Verdict = VerdictUnknown
	return res
}

// dirSet records which directions a run took at one static branch.
type dirSet struct{ t, f bool }

// firstFlipped compares the seed's and the generated run's behaviour per
// static relevant branch, in seed execution order. It returns:
//
//   - label, flipped=true when there is a first branch at which the
//     generated input takes a different path than the seed — a branch both
//     runs execute whose direction *set* differs;
//   - followed=true when the generated run matches the seed's behaviour at
//     every relevant branch (Figure 7 line 11's "satisfies φ");
//   - neither, when the generated run died before reaching part of the seed
//     path without flipping any executed branch (e.g. it crashed at an
//     earlier allocation site) — there is no branch to enforce.
//
// Comparing direction sets rather than the raw occurrence sequences is what
// lets goal-directed enforcement skip blocking checks: at a loop-head branch
// both executions take both directions (the loop runs and then exits), so a
// different iteration count does not register as a flip, whereas a sanity
// check that passed on the seed and failed on the generated input does.
// Enforcing loop-head bands is exactly the mistake that makes the same-path
// constraint unsatisfiable for 12 of the paper's 14 exposed sites (§5.4);
// this is the heart of why DIODE's targeted approach works.
func (h *Hunter) firstFlipped(t *Target, out *interp.Outcome, enforced map[string]bool) (label string, flipped, followed bool) {
	// The seed's per-branch direction sets are a pure function of the
	// Target; the Analyzer precomputes them (Target.finalize) so only the
	// generated run's trace is folded here, once per iteration.
	order, seedDirs := t.seedBranchView()
	genDirs := map[string]dirSet{}
	for _, br := range out.Branches {
		d := genDirs[br.Label]
		if br.Taken {
			d.t = true
		} else {
			d.f = true
		}
		genDirs[br.Label] = d
	}
	followed = true
	for _, label := range order {
		gd, executed := genDirs[label]
		if gd != seedDirs[label] {
			followed = false
		}
		if enforced[label] {
			continue
		}
		// Only branches the generated run actually executed can be "taken
		// differently"; unreached branches mean the run ended early.
		if executed && gd != seedDirs[label] {
			return label, true, false
		}
	}
	return "", false, followed
}

// reachedSite reports whether the run executed the target's allocation site.
func reachedSite(t *Target, out *interp.Outcome) bool {
	for _, ev := range out.Allocs {
		if ev.Site == t.Site {
			return true
		}
	}
	return false
}

// SamePathConstraint returns the §5.4 experiment constraint for a target:
// the target constraint conjoined with every relevant branch constraint on
// the seed path — "overflow while following exactly the seed's path".
func SamePathConstraint(t *Target) *bv.Bool {
	return bv.AndB(t.Beta, t.SeedPath.Conds())
}

// SamePathSatisfiable decides the §5.4 experiment for a target: a session
// opened on β with the full seed path asserted at once.
func (h *Hunter) SamePathSatisfiable(t *Target) solver.Verdict {
	sess := h.sol.NewSession(t.Beta)
	sess.Assert(t.SeedPath.Conds())
	_, v := sess.Solve()
	return v
}

// SuccessRate generates up to n inputs satisfying the constraint and reports
// how many trigger the overflow at the target site (§5.5/§5.6). The
// experiment is batched: one SampleModels session call enumerates all n
// models up front, then every sampled input is generated and executed on the
// hunter's single reused machine — per-sample setup (a fresh interpreter per
// run) exists only under the OneShotExecution ablation.
//
// It returns the number of triggering inputs and the number of inputs
// actually generated and executed. total can fall short of n two ways, which
// the caller must not conflate: the constraint may have fewer distinct
// solutions than n (the paper's x+2 target expression has two), or Generate
// may fail to reconstruct an input from a model (a broken format fix-up).
// Generation failures are counted in the hunter's solver.Stats.GenFailures —
// SolverStats before/after brackets a run — so a fix-up regression surfaces
// as failures in the stats and report output instead of masquerading as a
// low success rate.
func (h *Hunter) SuccessRate(t *Target, constraint *bv.Bool, n int) (hits, total int) {
	return h.SuccessRateContext(context.Background(), t, constraint, n)
}

// SuccessRateContext is SuccessRate with cancellation: ctx is checked between
// sampled executions and aborts mid-run guest executions through the
// interpreter's Cancel hook. On cancellation the partial counts gathered so
// far are returned; callers detect the truncation via ctx.Err().
func (h *Hunter) SuccessRateContext(ctx context.Context, t *Target, constraint *bv.Bool, n int) (hits, total int) {
	models := h.sol.NewSession(constraint).SampleModels(n)
	for _, m := range models {
		if ctx.Err() != nil {
			return hits, total
		}
		input, err := h.gen.Generate(h.app.Format.Seed, m)
		if err != nil {
			h.sol.NoteGenFailure()
			continue
		}
		total++
		out := h.execute(ctx, t, input, false)
		if out.Kind == interp.OutCancelled {
			total-- // the aborted run observed nothing; do not count it
			return hits, total
		}
		if ok, _ := triggered(t, out); ok {
			hits++
		}
	}
	return hits, total
}

// EnforcedConstraint rebuilds φ′∧β for a completed hunt (the constraint the
// final input satisfied), for the §5.6 experiment.
func EnforcedConstraint(res *SiteResult) *bv.Bool {
	return EnforcedConstraintFor(res.Target, res.Enforced)
}

// EnforcedConstraintFor rebuilds φ′∧β from a target and the enforced branch
// labels in enforcement order. The labels are plain strings, so a completed
// hunt's constraint can be reconstructed from a serialized job record in a
// different process (the dispatch layer's success-rate jobs do exactly this);
// labels without a seed-path entry are skipped, matching the hunt's own
// constraint construction.
func EnforcedConstraintFor(t *Target, enforced []string) *bv.Bool {
	out := t.Beta
	for _, label := range enforced {
		if entry, ok := t.PathEntry(label); ok {
			out = bv.AndB(out, entry.Cond)
		}
	}
	return out
}
