// Package core implements DIODE itself: the pipeline of Figure 1 (target
// site identification, target constraint extraction, branch constraint
// extraction, target constraint solution, test input generation, error
// detection) and the goal-directed conditional branch enforcement algorithm
// of Figure 7.
//
// The pipeline is split into three layers:
//
//   - the Analyzer runs stages 1–3 once per application and produces
//     immutable Targets (a target expression, the target constraint
//     overflow(B), and the seed's relevant branch condition sequence);
//   - a Hunter runs the Figure 7 enforcement loop for one site, owning a
//     private solver and input generator so hunts are isolated;
//   - the Scheduler fans per-site hunts across a bounded worker pool with
//     deterministic per-site seed derivation (SiteSeed), so parallel and
//     sequential runs produce identical verdicts.
//
// Engine is the original single-struct façade, kept as a thin compatibility
// wrapper over the three layers.
package core

import (
	"time"

	"diode/internal/apps"
	"diode/internal/bv"
	"diode/internal/discover"
	"diode/internal/interp"
	"diode/internal/solver"
	"diode/internal/trace"
)

// Options configure the pipeline (Analyzer, Hunter and Scheduler alike).
type Options struct {
	// Seed seeds all randomness; identical seeds give identical hunts. Each
	// site's hunt draws from a private solver seeded with
	// SiteSeed(Seed, site), so results do not depend on hunt order.
	Seed int64
	// Parallelism bounds the number of concurrent site hunts a Scheduler
	// runs. Zero or one means sequential; use runtime.GOMAXPROCS(0) to
	// saturate the machine. Verdicts are identical at any setting.
	Parallelism int
	// InitialAttempts is how many distinct target-constraint models are
	// tried before branch enforcement begins (Figure 7 lines 3–6 try one;
	// sampling a few more makes the implementation robust to unlucky
	// draws). Zero means the default (6).
	InitialAttempts int
	// MaxEnforce bounds the number of enforcement iterations. Zero means
	// the default (40).
	MaxEnforce int
	// Fuel bounds guest execution steps per run. Zero means the default
	// (50 million).
	Fuel int64
	// SolverMode selects the constraint-solving strategy (ablation hook).
	SolverMode solver.Mode
	// OneShotSolver disables incremental solving sessions: every solve in
	// the enforcement loop then rebuilds φ′∧β on a fresh engine, the
	// pre-session behavior (benchmark/ablation hook — see
	// BenchmarkHuntIncremental).
	OneShotSolver bool
	// OneShotSampling disables restart-based model sampling: SampleModels
	// then enumerates via guard-literal blocking clauses on every draw, the
	// pre-restart behavior (benchmark/ablation hook — see
	// BenchmarkSampleModels). The default path re-randomizes decision
	// polarities and activities on the persistent engine between samples and
	// falls back to blocking only to certify exhaustion.
	OneShotSampling bool
	// Portfolio, when >1, races that many solver engine configurations on
	// CDCL solves that survive a probe budget; the winner is picked by a
	// deterministic tie-break and losers' learnt clauses are folded back into
	// the persistent engine. Zero or one keeps single-engine solving.
	Portfolio int
	// OneShotExecution disables the compiled-program execution layer: every
	// guest run then re-interprets the AST on a fresh tree-walking machine
	// with string-keyed environments, the pre-compilation behavior
	// (benchmark/ablation hook — see BenchmarkSuccessRateBatched). The
	// default path compiles each application once (apps.App.Compiled) and
	// reuses one slot-indexed interp.Machine per Analyzer/Hunter.
	OneShotExecution bool
	// DisableCompression skips Figure 8 branch-condition compression
	// (ablation hook).
	DisableCompression bool
	// DisableRelevanceFilter keeps branches that share no input variable
	// with the target constraint (ablation hook).
	DisableRelevanceFilter bool
	// NoTriage disables the static value-range triage (ablation hook): the
	// Analyzer then works from the raw discovery records and the Hunter
	// never short-circuits on a triage verdict — every site, including
	// statically-safe arith sites, is hunted dynamically. The curated alloc
	// tables are identical either way (safe alloc sites always hunt fully);
	// the flag exists to measure what the triage pruning saves on the
	// extended arith surface.
	NoTriage bool
	// Progress, when non-nil, is called at the top of every Figure 7
	// enforcement iteration with the 0-based iteration number. It is a live
	// observation hook (the dispatch layer's Sink rides on it); it runs on
	// the hunting goroutine, so implementations must be fast and must not
	// call back into the Hunter. Not part of the serializable options subset
	// (dispatch.Options drops it).
	Progress func(iteration int)
}

func (o Options) withDefaults() Options {
	if o.InitialAttempts == 0 {
		o.InitialAttempts = 6
	}
	if o.MaxEnforce == 0 {
		o.MaxEnforce = 40
	}
	if o.Fuel == 0 {
		o.Fuel = 50_000_000
	}
	return o
}

// parallelism resolves the worker-pool bound.
func (o Options) parallelism() int {
	if o.Parallelism < 1 {
		return 1
	}
	return o.Parallelism
}

// ForSite returns a copy of o whose Seed is the deterministic per-site hunt
// seed. The Scheduler seeds every Hunter this way.
func (o Options) ForSite(site string) Options {
	o.Seed = SiteSeed(o.Seed, site)
	return o
}

// Target is one analyzed target site: the output of stages 1–3 of the
// pipeline for that site. Targets are immutable once produced by the
// Analyzer and safe to share across concurrent Hunters.
type Target struct {
	// Site is the allocation-site name.
	Site string
	// Info is the structured discovery record for the site (kind,
	// function, stable node path, rendered expression, static taint
	// sources), attached by the Analyzer from the static discovery pass.
	Info discover.Site
	// RelevantBytes are the seed-input byte offsets that influence the
	// target value (stage 1).
	RelevantBytes []int
	// Expr is the symbolic target expression over input fields (stage 2+3,
	// after Hachoir lifting).
	Expr *bv.Term
	// Beta is the target constraint overflow(Expr).
	Beta *bv.Bool
	// SeedPath is the compressed, relevance-filtered branch condition
	// sequence φ the seed followed to the site, over input fields.
	SeedPath trace.Path
	// RawSeedBranches is the seed's uncompressed relevant branch record
	// sequence up to the site (labels + directions), used to locate first
	// flipped branches by trace comparison.
	RawSeedBranches []interp.BranchRecord
	// DynamicBranches is the paper's Y value: the number of dynamic
	// relevant conditional branch executions on the seed path to the site.
	DynamicBranches int

	// Derived lookup structures, computed once by the Analyzer (finalize)
	// so the per-iteration hot paths of the enforcement loop do not rebuild
	// them. Hand-built Targets may leave them nil; the accessors fall back
	// to recomputing on the fly.
	branchOrder []string          // relevant branch labels in first-occurrence seed order
	seedDirs    map[string]dirSet // per-label directions the seed run took
	pathIndex   map[string]int    // label → index into SeedPath
}

// WithInfo returns a shallow copy of the target carrying a different
// discovery record. The dispatch layer re-stamps probe-program targets with
// the original arith site's record (kind, path, triage) so the Hunter and
// reports see the arith site, not the synthetic probe allocation.
func (t *Target) WithInfo(info discover.Site) *Target {
	out := *t
	out.Info = info
	return &out
}

// finalize computes the derived lookup structures. The Analyzer calls it
// once per Target, before the Target is shared with concurrent Hunters.
func (t *Target) finalize() {
	t.branchOrder, t.seedDirs = seedBranchDirs(t.RawSeedBranches)
	t.pathIndex = make(map[string]int, len(t.SeedPath))
	for i, e := range t.SeedPath {
		if _, ok := t.pathIndex[e.Label]; !ok {
			t.pathIndex[e.Label] = i
		}
	}
}

// seedBranchDirs folds raw branch records into first-occurrence label order
// and the per-label direction set.
func seedBranchDirs(recs []interp.BranchRecord) ([]string, map[string]dirSet) {
	var order []string
	dirs := make(map[string]dirSet, len(recs))
	for _, br := range recs {
		d, ok := dirs[br.Label]
		if !ok {
			order = append(order, br.Label)
		}
		if br.Taken {
			d.t = true
		} else {
			d.f = true
		}
		dirs[br.Label] = d
	}
	return order, dirs
}

// seedBranchView returns the precomputed order and direction sets, deriving
// them on the fly for Targets that never went through the Analyzer.
func (t *Target) seedBranchView() ([]string, map[string]dirSet) {
	if t.seedDirs != nil {
		return t.branchOrder, t.seedDirs
	}
	return seedBranchDirs(t.RawSeedBranches)
}

// PathEntry returns the seed-path entry for a branch label. It replaces the
// linear scans Hunt and EnforcedConstraint used to perform per iteration.
func (t *Target) PathEntry(label string) (trace.Entry, bool) {
	if t.pathIndex != nil {
		i, ok := t.pathIndex[label]
		if !ok {
			return trace.Entry{}, false
		}
		return t.SeedPath[i], true
	}
	for _, e := range t.SeedPath {
		if e.Label == label {
			return e, true
		}
	}
	return trace.Entry{}, false
}

// Verdict classifies the outcome of a hunt at one site.
type Verdict int

// Hunt verdicts.
const (
	VerdictExposed   Verdict = iota // an overflow-triggering input was found
	VerdictUnsat                    // the target constraint alone is unsatisfiable
	VerdictPrevented                // sanity checks prevent the overflow
	VerdictUnknown                  // solver budget exhausted before a decision
)

func (v Verdict) String() string {
	switch v {
	case VerdictExposed:
		return "exposed"
	case VerdictUnsat:
		return "unsatisfiable"
	case VerdictPrevented:
		return "sanity-prevented"
	}
	return "unknown"
}

// Class converts the verdict to the Table 1 classification (Unknown maps to
// Prevented, with the verdict preserved for honesty).
func (v Verdict) Class() apps.Class {
	switch v {
	case VerdictExposed:
		return apps.ClassExposed
	case VerdictUnsat:
		return apps.ClassUnsat
	}
	return apps.ClassPrevented
}

// SiteResult is the outcome of hunting one target site.
type SiteResult struct {
	Target  *Target
	Verdict Verdict
	// Input is the overflow-triggering input file (VerdictExposed only).
	Input []byte
	// ErrorType describes the observable effect of the overflow, e.g.
	// "SIGSEGV/InvalidWrite" (VerdictExposed only).
	ErrorType string
	// Enforced lists the labels of the conditional branches enforced before
	// the overflow fired (or before the search concluded).
	Enforced []string
	// Discovery is the wall-clock time of the hunt for this site.
	Discovery time.Duration
	// Runs counts guest executions performed during the hunt.
	Runs int
}

// EnforcedCount returns the paper's X value.
func (r *SiteResult) EnforcedCount() int { return len(r.Enforced) }

// AppResult is the outcome of analyzing and hunting every site of one
// application.
type AppResult struct {
	App *apps.App
	// Analysis is the stage 1–3 wall-clock time (performed once per app).
	Analysis time.Duration
	Sites    []*SiteResult
}

// ResultFor returns the site result for the named site.
func (r *AppResult) ResultFor(site string) (*SiteResult, bool) {
	for _, s := range r.Sites {
		if s.Target.Site == site {
			return s, true
		}
	}
	return nil, false
}

// Engine is the original single-struct DIODE façade, kept as a thin
// compatibility wrapper over the Analyzer/Hunter/Scheduler layers. New code
// should use those directly; Engine simply delegates, so its results are
// identical to a Scheduler's at the same Options.
type Engine struct {
	app   *apps.App
	opts  Options
	sched *Scheduler
}

// New returns an engine for the application.
func New(app *apps.App, opts Options) *Engine {
	opts = opts.withDefaults()
	return &Engine{app: app, opts: opts, sched: NewScheduler(app, opts)}
}

// App returns the engine's application.
func (e *Engine) App() *apps.App { return e.app }

// Analyze performs stages 1–3 via the Analyzer.
func (e *Engine) Analyze() ([]*Target, error) {
	return NewAnalyzer(e.app, e.opts).Analyze()
}

// Hunt runs the Figure 7 enforcement loop for one target on a freshly
// seeded Hunter (seed derived from Options.Seed and the site name).
func (e *Engine) Hunt(t *Target) *SiteResult {
	return NewHunter(e.app, e.opts.ForSite(t.Site)).Hunt(t)
}

// RunAll analyzes the application and hunts every target site via the
// Scheduler (sequential unless Options.Parallelism is set).
func (e *Engine) RunAll() (*AppResult, error) { return e.sched.RunAll() }

// SamePathSatisfiable decides the §5.4 experiment for a target.
func (e *Engine) SamePathSatisfiable(t *Target) solver.Verdict {
	return NewHunter(e.app, e.opts.ForSite(t.Site)).SamePathSatisfiable(t)
}

// SuccessRate generates up to n inputs satisfying the constraint and reports
// how many trigger the overflow at the target site (§5.5/§5.6).
func (e *Engine) SuccessRate(t *Target, constraint *bv.Bool, n int) (hits, total int) {
	return NewHunter(e.app, e.opts.ForSite(t.Site)).SuccessRate(t, constraint, n)
}

// SolverStats returns the solver work counters aggregated across the hunts
// RunAll has performed.
func (e *Engine) SolverStats() solver.Stats { return e.sched.SolverStats() }
