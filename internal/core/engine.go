// Package core implements DIODE itself: the pipeline of Figure 1 (target
// site identification, target constraint extraction, branch constraint
// extraction, target constraint solution, test input generation, error
// detection) and the goal-directed conditional branch enforcement algorithm
// of Figure 7.
//
// The engine consumes a benchmark application (guest program + input format
// + seed), identifies every memory allocation site whose size the input
// influences, extracts a symbolic target expression per site, derives the
// target constraint overflow(B), and then searches for an input that
// triggers the overflow — first from the target constraint alone, then by
// incrementally enforcing the first flipped relevant conditional branch
// until the overflow fires or the constraint becomes unsatisfiable.
package core

import (
	"fmt"
	"time"

	"diode/internal/apps"
	"diode/internal/bv"
	"diode/internal/inputgen"
	"diode/internal/interp"
	"diode/internal/solver"
	"diode/internal/taint"
	"diode/internal/trace"
)

// Options configure an Engine.
type Options struct {
	// Seed seeds all randomness; identical seeds give identical hunts.
	Seed int64
	// InitialAttempts is how many distinct target-constraint models are
	// tried before branch enforcement begins (Figure 7 lines 3–6 try one;
	// sampling a few more makes the implementation robust to unlucky
	// draws). Zero means the default (6).
	InitialAttempts int
	// MaxEnforce bounds the number of enforcement iterations. Zero means
	// the default (40).
	MaxEnforce int
	// Fuel bounds guest execution steps per run. Zero means the default
	// (50 million).
	Fuel int64
	// SolverMode selects the constraint-solving strategy (ablation hook).
	SolverMode solver.Mode
	// DisableCompression skips Figure 8 branch-condition compression
	// (ablation hook).
	DisableCompression bool
	// DisableRelevanceFilter keeps branches that share no input variable
	// with the target constraint (ablation hook).
	DisableRelevanceFilter bool
}

func (o Options) withDefaults() Options {
	if o.InitialAttempts == 0 {
		o.InitialAttempts = 6
	}
	if o.MaxEnforce == 0 {
		o.MaxEnforce = 40
	}
	if o.Fuel == 0 {
		o.Fuel = 50_000_000
	}
	return o
}

// Target is one analyzed target site: the output of stages 1–3 of the
// pipeline for that site.
type Target struct {
	// Site is the allocation-site name.
	Site string
	// RelevantBytes are the seed-input byte offsets that influence the
	// target value (stage 1).
	RelevantBytes []int
	// Expr is the symbolic target expression over input fields (stage 2+3,
	// after Hachoir lifting).
	Expr *bv.Term
	// Beta is the target constraint overflow(Expr).
	Beta *bv.Bool
	// SeedPath is the compressed, relevance-filtered branch condition
	// sequence φ the seed followed to the site, over input fields.
	SeedPath trace.Path
	// RawSeedBranches is the seed's uncompressed relevant branch record
	// sequence up to the site (labels + directions), used to locate first
	// flipped branches by trace comparison.
	RawSeedBranches []interp.BranchRecord
	// DynamicBranches is the paper's Y value: the number of dynamic
	// relevant conditional branch executions on the seed path to the site.
	DynamicBranches int
}

// Verdict classifies the outcome of a hunt at one site.
type Verdict int

// Hunt verdicts.
const (
	VerdictExposed   Verdict = iota // an overflow-triggering input was found
	VerdictUnsat                    // the target constraint alone is unsatisfiable
	VerdictPrevented                // sanity checks prevent the overflow
	VerdictUnknown                  // solver budget exhausted before a decision
)

func (v Verdict) String() string {
	switch v {
	case VerdictExposed:
		return "exposed"
	case VerdictUnsat:
		return "unsatisfiable"
	case VerdictPrevented:
		return "sanity-prevented"
	}
	return "unknown"
}

// Class converts the verdict to the Table 1 classification (Unknown maps to
// Prevented, with the verdict preserved for honesty).
func (v Verdict) Class() apps.Class {
	switch v {
	case VerdictExposed:
		return apps.ClassExposed
	case VerdictUnsat:
		return apps.ClassUnsat
	}
	return apps.ClassPrevented
}

// SiteResult is the outcome of hunting one target site.
type SiteResult struct {
	Target  *Target
	Verdict Verdict
	// Input is the overflow-triggering input file (VerdictExposed only).
	Input []byte
	// ErrorType describes the observable effect of the overflow, e.g.
	// "SIGSEGV/InvalidWrite" (VerdictExposed only).
	ErrorType string
	// Enforced lists the labels of the conditional branches enforced before
	// the overflow fired (or before the search concluded).
	Enforced []string
	// Discovery is the wall-clock time of the hunt for this site.
	Discovery time.Duration
	// Runs counts guest executions performed during the hunt.
	Runs int
}

// EnforcedCount returns the paper's X value.
func (r *SiteResult) EnforcedCount() int { return len(r.Enforced) }

// AppResult is the outcome of analyzing and hunting every site of one
// application.
type AppResult struct {
	App *apps.App
	// Analysis is the stage 1–3 wall-clock time (performed once per app).
	Analysis time.Duration
	Sites    []*SiteResult
}

// ResultFor returns the site result for the named site.
func (r *AppResult) ResultFor(site string) (*SiteResult, bool) {
	for _, s := range r.Sites {
		if s.Target.Site == site {
			return s, true
		}
	}
	return nil, false
}

// Engine runs the DIODE pipeline against one application. Not safe for
// concurrent use; create one per goroutine.
type Engine struct {
	app  *apps.App
	opts Options
	sol  *solver.Solver
	gen  *inputgen.Generator
}

// New returns an engine for the application.
func New(app *apps.App, opts Options) *Engine {
	opts = opts.withDefaults()
	return &Engine{
		app:  app,
		opts: opts,
		sol: solver.New(solver.Options{
			Seed: opts.Seed,
			Mode: opts.SolverMode,
		}),
		gen: app.Format.Generator(),
	}
}

// App returns the engine's application.
func (e *Engine) App() *apps.App { return e.app }

// Analyze performs stages 1–3: the taint run that identifies target sites
// and relevant bytes, then one symbolic run per site (restricted to that
// site's relevant bytes, §4.2) to extract the target expression and the
// branch condition sequence.
func (e *Engine) Analyze() ([]*Target, error) {
	seed := e.app.Format.Seed
	taintRun := interp.Run(e.app.Program, seed, interp.Options{
		TrackTaint: true,
		Fuel:       e.opts.Fuel,
	})
	if taintRun.Kind != interp.OutOK {
		return nil, fmt.Errorf("core: seed taint run ended %v (%s)", taintRun.Kind, taintRun.AbortMsg)
	}
	// First tainted occurrence per site, in execution order.
	var order []string
	firstTaint := map[string]*taint.Set{}
	for _, ev := range taintRun.Allocs {
		if ev.Taint.Empty() {
			continue
		}
		if _, ok := firstTaint[ev.Site]; !ok {
			firstTaint[ev.Site] = ev.Taint
			order = append(order, ev.Site)
		}
	}

	var targets []*Target
	for _, site := range order {
		t, err := e.analyzeSite(site, firstTaint[site])
		if err != nil {
			return nil, err
		}
		targets = append(targets, t)
	}
	return targets, nil
}

func (e *Engine) analyzeSite(site string, labels *taint.Set) (*Target, error) {
	seed := e.app.Format.Seed
	relevant := labels.Elems()
	symRun := interp.Run(e.app.Program, seed, interp.Options{
		TrackSymbolic: true,
		Fuel:          e.opts.Fuel,
		SymbolicBytes: func(i int) bool { return labels.Has(i) },
	})
	if symRun.Kind != interp.OutOK {
		return nil, fmt.Errorf("core: symbolic run for %s ended %v", site, symRun.Kind)
	}
	var ev *interp.AllocEvent
	for i := range symRun.Allocs {
		if symRun.Allocs[i].Site == site && symRun.Allocs[i].Sym != nil {
			ev = &symRun.Allocs[i]
			break
		}
	}
	if ev == nil {
		return nil, fmt.Errorf("core: site %s lost its symbolic size in stage 2", site)
	}

	fields := e.gen.Fields()
	expr := fields.LiftTerm(ev.Sym)
	beta := bv.OverflowCond(expr)

	raw := symRun.Branches[:ev.BranchMark]
	path := trace.FromBranches(raw)
	lifted := make(trace.Path, len(path))
	for i, entry := range path {
		lifted[i] = trace.Entry{
			Label: entry.Label,
			Cond:  fields.LiftBool(entry.Cond),
			Count: entry.Count,
		}
	}
	if !e.opts.DisableCompression {
		lifted = trace.Compress(lifted)
	}
	if !e.opts.DisableRelevanceFilter {
		lifted = trace.Relevant(lifted, beta)
	}
	return &Target{
		Site:            site,
		RelevantBytes:   relevant,
		Expr:            expr,
		Beta:            beta,
		SeedPath:        lifted,
		RawSeedBranches: raw,
		DynamicBranches: len(raw),
	}, nil
}

// RunAll analyzes the application and hunts every target site.
func (e *Engine) RunAll() (*AppResult, error) {
	start := time.Now()
	targets, err := e.Analyze()
	if err != nil {
		return nil, err
	}
	res := &AppResult{App: e.app, Analysis: time.Since(start)}
	for _, t := range targets {
		res.Sites = append(res.Sites, e.Hunt(t))
	}
	return res, nil
}

// execute runs the guest on an input and returns the outcome. When
// withBranches is set, the run records the branch trace restricted to the
// target's relevant bytes (for first-flipped-branch comparison).
func (e *Engine) execute(t *Target, input []byte, withBranches bool) *interp.Outcome {
	opts := interp.Options{Fuel: e.opts.Fuel}
	if withBranches {
		labels := map[int]bool{}
		for _, b := range t.RelevantBytes {
			labels[b] = true
		}
		opts.TrackSymbolic = true
		opts.SymbolicBytes = func(i int) bool { return labels[i] }
	}
	return interp.Run(e.app.Program, input, opts)
}

// triggered reports whether the outcome contains an overflowing allocation
// at the target site, and derives the observable error type.
func triggered(t *Target, out *interp.Outcome) (bool, string) {
	hit := false
	for _, ev := range out.Allocs {
		if ev.Site == t.Site && ev.Wrapped {
			hit = true
			break
		}
	}
	if !hit {
		return false, ""
	}
	return true, errorType(t.Site, out)
}

// errorType renders the paper's Table 2 "Error Type" column from the run's
// signal and the memcheck findings attributed to the site's block.
func errorType(site string, out *interp.Outcome) string {
	var read, write bool
	for _, me := range out.MemErrs {
		if me.Site != site {
			continue
		}
		if me.Kind == interp.InvalidRead {
			read = true
		} else {
			write = true
		}
	}
	var access string
	switch {
	case read && write:
		access = "InvalidRead/Write"
	case read:
		access = "InvalidRead"
	case write:
		access = "InvalidWrite"
	default:
		access = "SilentOverflow"
	}
	switch out.Kind {
	case interp.OutSegv:
		return "SIGSEGV/" + access
	case interp.OutAbrt:
		return "SIGABRT/" + access
	default:
		return access
	}
}
