package core

import (
	"testing"

	"diode/internal/bv"
	"diode/internal/interp"
	"diode/internal/trace"
)

// TestTargetDerivedLookups pins the Analyzer-computed lookup structures
// against the on-the-fly fallback: a finalized Target and a hand-built one
// must answer PathEntry and the seed-branch view identically.
func TestTargetDerivedLookups(t *testing.T) {
	x := bv.Var(8, "tg_x")
	path := trace.Path{
		{Label: "a", Cond: bv.Ult(x, bv.Const(8, 10)), Count: 1},
		{Label: "b", Cond: bv.Ugt(x, bv.Const(8, 2)), Count: 2},
	}
	raw := []interp.BranchRecord{
		{Label: "a", Taken: true},
		{Label: "b", Taken: false},
		{Label: "a", Taken: false}, // loop head: both directions
	}
	plain := &Target{Site: "s", SeedPath: path, RawSeedBranches: raw}
	final := &Target{Site: "s", SeedPath: path, RawSeedBranches: raw}
	final.finalize()

	for _, tg := range []*Target{plain, final} {
		e, ok := tg.PathEntry("b")
		if !ok || e.Cond != path[1].Cond {
			t.Fatalf("PathEntry(b) = %v, %v", e, ok)
		}
		if _, ok := tg.PathEntry("missing"); ok {
			t.Fatal("PathEntry found a label that is not on the path")
		}
		order, dirs := tg.seedBranchView()
		if len(order) != 2 || order[0] != "a" || order[1] != "b" {
			t.Fatalf("branch order = %v", order)
		}
		if dirs["a"] != (dirSet{t: true, f: true}) || dirs["b"] != (dirSet{f: true}) {
			t.Fatalf("direction sets = %v", dirs)
		}
	}
}

// TestOneShotSolverVerdictParity runs one full application both ways: the
// one-shot ablation path and the default incremental sessions must classify
// every site identically.
func TestOneShotSolverVerdictParity(t *testing.T) {
	inc := huntApp(t, "vlc", 17)
	app := inc.App
	oneShot, err := New(app, Options{Seed: 17, OneShotSolver: true}).RunAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(oneShot.Sites) != len(inc.Sites) {
		t.Fatalf("site counts differ: %d vs %d", len(oneShot.Sites), len(inc.Sites))
	}
	for i, sr := range oneShot.Sites {
		if ir := inc.Sites[i]; sr.Verdict != ir.Verdict {
			t.Errorf("%s: one-shot %v, incremental %v", sr.Target.Site, sr.Verdict, ir.Verdict)
		}
	}
}
