package core

import (
	"context"
	"encoding/binary"
	"hash/fnv"
	"time"

	"diode/internal/apps"
	"diode/internal/queue"
	"diode/internal/solver"
)

// SiteSeed derives the deterministic per-site hunt seed from the run seed
// and the site name. Because every Hunter is seeded this way regardless of
// which worker picks the site up — or in what order — a parallel schedule
// produces byte-identical verdicts to a sequential one.
func SiteSeed(seed int64, site string) int64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(seed))
	h.Write(buf[:])
	h.Write([]byte(site))
	return int64(h.Sum64())
}

// Scheduler runs the full pipeline for one application: analysis once (the
// Analyzer), then one isolated Hunter per target site, fanned out across a
// bounded worker pool. Site results come back in analysis order, so tables
// and reports are stable at any parallelism.
//
// A Scheduler is safe for concurrent use by multiple goroutines, though each
// RunAll already saturates its own worker pool.
type Scheduler struct {
	app   *apps.App
	opts  Options
	stats solver.Collector
}

// NewScheduler returns a scheduler for the application. opts.Parallelism
// bounds the number of concurrent site hunts (zero means sequential).
func NewScheduler(app *apps.App, opts Options) *Scheduler {
	return &Scheduler{app: app, opts: opts.withDefaults()}
}

// App returns the scheduler's application.
func (s *Scheduler) App() *apps.App { return s.app }

// Parallelism returns the resolved worker-pool bound.
func (s *Scheduler) Parallelism() int { return s.opts.parallelism() }

// RunAll analyzes the application and hunts every target site on the worker
// pool.
func (s *Scheduler) RunAll() (*AppResult, error) {
	return s.RunAllContext(context.Background())
}

// RunAllContext is RunAll with cancellation. Analysis and every site hunt
// check ctx (hunts at each Figure 7 iteration boundary, guest executions
// through the interpreter's Cancel hook). When ctx is cancelled mid-sweep the
// partial result is returned together with ctx.Err(): completed sites keep
// their verdicts, interrupted or never-started sites read VerdictUnknown.
// A cancellation during analysis returns (nil, ctx.Err()).
func (s *Scheduler) RunAllContext(ctx context.Context) (*AppResult, error) {
	start := time.Now()
	targets, err := NewAnalyzer(s.app, s.opts).AnalyzeContext(ctx)
	if err != nil {
		return nil, err
	}
	res := &AppResult{App: s.app, Analysis: time.Since(start)}
	res.Sites = s.HuntAllContext(ctx, targets)
	return res, ctx.Err()
}

// HuntAll hunts every target concurrently (bounded by Parallelism), each on
// a freshly seeded Hunter, and returns results in target order.
func (s *Scheduler) HuntAll(targets []*Target) []*SiteResult {
	return s.HuntAllContext(context.Background(), targets)
}

// HuntAllContext is HuntAll with cancellation: targets whose hunt never
// started when ctx was cancelled come back as VerdictUnknown results with
// zero runs, so the returned slice always lines up with targets.
func (s *Scheduler) HuntAllContext(ctx context.Context, targets []*Target) []*SiteResult {
	return queue.Map(s.opts.parallelism(), targets, func(t *Target) *SiteResult {
		if ctx.Err() != nil {
			return &SiteResult{Target: t, Verdict: VerdictUnknown}
		}
		h := NewHunter(s.app, s.opts.ForSite(t.Site))
		sr := h.HuntContext(ctx, t)
		s.stats.Add(h.SolverStats())
		return sr
	})
}

// SolverStats returns the solver work counters aggregated across every
// hunter-local solver this scheduler has run.
func (s *Scheduler) SolverStats() solver.Stats { return s.stats.Snapshot() }
