package core

import (
	"context"
	"sync"
	"testing"

	"diode/internal/apps"
)

// FuzzHunt is the cross-layer fuzz target: it drives whole Hunter.Hunt runs —
// analysis-produced Target, private solver session, input generation, guest
// execution on the reused compiled machine, trace comparison — from fuzzed
// (seed, site-index) pairs over every registered application. The engine
// invariants it pins:
//
//   - no layer panics, for any solver seed at any site;
//   - an Exposed verdict's triggering input passes the format's structural
//     Validate (the fix-up invariant holds for hunt-produced files, not just
//     for the per-format fuzz targets' direct Generate calls);
//   - the triggering input re-triggers the overflow on an independent
//     compile-and-run of the guest (no reused-machine state leaked into the
//     verdict).
//
// The enforcement budget is reduced so individual fuzz executions stay fast;
// a budget-exhausted hunt simply ends VerdictUnknown, which is itself a
// valid outcome to fuzz through.

type huntPair struct {
	app    *apps.App
	target *Target
}

var (
	fuzzHuntOnce  sync.Once
	fuzzHuntPairs []huntPair
	fuzzHuntErr   error
)

func fuzzHuntTargets() ([]huntPair, error) {
	fuzzHuntOnce.Do(func() {
		for _, app := range apps.All() {
			targets, err := NewAnalyzer(app, Options{}).Analyze()
			if err != nil {
				fuzzHuntErr = err
				return
			}
			for _, t := range targets {
				fuzzHuntPairs = append(fuzzHuntPairs, huntPair{app: app, target: t})
			}
		}
	})
	return fuzzHuntPairs, fuzzHuntErr
}

func FuzzHunt(f *testing.F) {
	f.Add(int64(1), uint16(0))
	f.Add(int64(2), uint16(7))
	f.Add(int64(-9001), uint16(21))
	f.Add(int64(0x7FFFFFFFFFFFFFFF), uint16(39))
	f.Fuzz(func(t *testing.T, seed int64, idx uint16) {
		pairs, err := fuzzHuntTargets()
		if err != nil {
			t.Fatalf("analysis: %v", err)
		}
		p := pairs[int(idx)%len(pairs)]
		h := NewHunter(p.app, Options{
			Seed:            SiteSeed(seed, p.target.Site),
			InitialAttempts: 3,
			MaxEnforce:      8,
		})
		res := h.Hunt(p.target)
		if res.Verdict != VerdictExposed {
			return
		}
		if res.Input == nil {
			t.Fatalf("%s: exposed verdict without a triggering input", p.target.Site)
		}
		if p.app.Format.Validate != nil {
			if err := p.app.Format.Validate(res.Input); err != nil {
				t.Fatalf("%s: triggering input fails structural validation: %v", p.target.Site, err)
			}
		}
		// Independent re-execution: a fresh compile-and-run must reproduce
		// the overflow the hunter's reused machine observed.
		out := NewHunter(p.app, Options{Seed: 0, OneShotExecution: true}).execute(context.Background(), p.target, res.Input, false)
		if ok, _ := triggered(p.target, out); !ok {
			t.Fatalf("%s: triggering input does not re-trigger on a fresh interpreter", p.target.Site)
		}
	})
}
