package core

import (
	"context"

	"diode/internal/apps"
	"diode/internal/inputgen"
	"diode/internal/interp"
	"diode/internal/solver"
)

// Hunter runs the goal-directed conditional branch enforcement loop of
// Figure 7 against the target sites of one application. Each Hunter owns a
// private solver, input generator and interp.Machine, so hunts are fully
// isolated from one another: the Scheduler creates one Hunter per site with
// a seed derived from the run seed and the site name, which is what makes
// parallel and sequential schedules produce identical verdicts. The guest
// program itself is executed in the application's shared immutable compiled
// form (apps.App.Compiled) — compilation is paid once per application, while
// all mutable execution state stays hunter-private.
type Hunter struct {
	app  *apps.App
	opts Options
	sol  *solver.Solver
	gen  *inputgen.Generator
	mach *interp.Machine

	// relevant memoizes the SymbolicBytes predicate for the last target, so
	// the per-iteration instrumented runs of one hunt share it.
	relevantFor *Target
	relevantFn  func(int) bool
}

// NewHunter returns a hunter for the application. opts.Seed seeds the
// hunter's private solver directly; use Options.ForSite to derive the
// deterministic per-site seed the Scheduler uses.
func NewHunter(app *apps.App, opts Options) *Hunter {
	opts = opts.withDefaults()
	h := &Hunter{
		app:  app,
		opts: opts,
		sol: solver.New(solver.Options{
			Seed:      opts.Seed,
			Mode:      opts.SolverMode,
			OneShot:   opts.OneShotSolver,
			Sampling:  samplingFor(opts),
			Portfolio: opts.Portfolio,
		}),
		gen: app.Format.Generator(),
	}
	if !opts.OneShotExecution {
		h.mach = interp.NewMachine(app.Compiled())
	}
	return h
}

// samplingFor maps the OneShotSampling ablation flag onto the solver's
// sampling strategy enum.
func samplingFor(opts Options) solver.Sampling {
	if opts.OneShotSampling {
		return solver.SamplingBlocking
	}
	return solver.SamplingRestart
}

// App returns the hunter's application.
func (h *Hunter) App() *apps.App { return h.app }

// SolverStats snapshots the hunter-local solver's work counters; the
// Scheduler aggregates these across hunters.
func (h *Hunter) SolverStats() solver.Stats { return h.sol.Snapshot() }

// execute runs the guest on an input and returns the outcome. When
// withBranches is set, the run records the branch trace restricted to the
// target's relevant bytes (for first-flipped-branch comparison). The run
// reuses the hunter's private machine (unless the OneShotExecution ablation
// rebuilds a tree-walking interpreter per run), so the returned outcome is
// valid only until the hunter's next execute call. A cancelled ctx aborts the
// run mid-execution through the interpreter's Cancel hook (the outcome then
// reads OutCancelled).
func (h *Hunter) execute(ctx context.Context, t *Target, input []byte, withBranches bool) *interp.Outcome {
	opts := interp.Options{Fuel: h.opts.Fuel, Cancel: ctx.Done()}
	if withBranches {
		opts.TrackSymbolic = true
		opts.SymbolicBytes = h.relevantBytes(t)
	}
	if h.mach == nil {
		return interp.RunTree(h.app.Program, input, opts)
	}
	h.mach.Reset(input, opts)
	return h.mach.Run()
}

// relevantBytes returns (and memoizes) the target's relevant-byte predicate.
func (h *Hunter) relevantBytes(t *Target) func(int) bool {
	if h.relevantFor == t {
		return h.relevantFn
	}
	labels := make(map[int]bool, len(t.RelevantBytes))
	for _, b := range t.RelevantBytes {
		labels[b] = true
	}
	h.relevantFor = t
	h.relevantFn = func(i int) bool { return labels[i] }
	return h.relevantFn
}

// triggered reports whether the outcome contains an overflowing allocation
// at the target site, and derives the observable error type.
func triggered(t *Target, out *interp.Outcome) (bool, string) {
	hit := false
	for _, ev := range out.Allocs {
		if ev.Site == t.Site && ev.Wrapped {
			hit = true
			break
		}
	}
	if !hit {
		return false, ""
	}
	return true, errorType(t.Site, out)
}

// errorType renders the paper's Table 2 "Error Type" column from the run's
// signal and the memcheck findings attributed to the site's block.
func errorType(site string, out *interp.Outcome) string {
	var read, write bool
	for _, me := range out.MemErrs {
		if me.Site != site {
			continue
		}
		if me.Kind == interp.InvalidRead {
			read = true
		} else {
			write = true
		}
	}
	var access string
	switch {
	case read && write:
		access = "InvalidRead/Write"
	case read:
		access = "InvalidRead"
	case write:
		access = "InvalidWrite"
	default:
		access = "SilentOverflow"
	}
	switch out.Kind {
	case interp.OutSegv:
		return "SIGSEGV/" + access
	case interp.OutAbrt:
		return "SIGABRT/" + access
	default:
		return access
	}
}
