package core

import (
	"diode/internal/apps"
	"diode/internal/inputgen"
	"diode/internal/interp"
	"diode/internal/solver"
)

// Hunter runs the goal-directed conditional branch enforcement loop of
// Figure 7 against the target sites of one application. Each Hunter owns a
// private solver and input generator, so hunts are fully isolated from one
// another: the Scheduler creates one Hunter per site with a seed derived
// from the run seed and the site name, which is what makes parallel and
// sequential schedules produce identical verdicts.
type Hunter struct {
	app  *apps.App
	opts Options
	sol  *solver.Solver
	gen  *inputgen.Generator
}

// NewHunter returns a hunter for the application. opts.Seed seeds the
// hunter's private solver directly; use Options.ForSite to derive the
// deterministic per-site seed the Scheduler uses.
func NewHunter(app *apps.App, opts Options) *Hunter {
	opts = opts.withDefaults()
	return &Hunter{
		app:  app,
		opts: opts,
		sol: solver.New(solver.Options{
			Seed:    opts.Seed,
			Mode:    opts.SolverMode,
			OneShot: opts.OneShotSolver,
		}),
		gen: app.Format.Generator(),
	}
}

// App returns the hunter's application.
func (h *Hunter) App() *apps.App { return h.app }

// SolverStats snapshots the hunter-local solver's work counters; the
// Scheduler aggregates these across hunters.
func (h *Hunter) SolverStats() solver.Stats { return h.sol.Snapshot() }

// execute runs the guest on an input and returns the outcome. When
// withBranches is set, the run records the branch trace restricted to the
// target's relevant bytes (for first-flipped-branch comparison).
func (h *Hunter) execute(t *Target, input []byte, withBranches bool) *interp.Outcome {
	opts := interp.Options{Fuel: h.opts.Fuel}
	if withBranches {
		labels := map[int]bool{}
		for _, b := range t.RelevantBytes {
			labels[b] = true
		}
		opts.TrackSymbolic = true
		opts.SymbolicBytes = func(i int) bool { return labels[i] }
	}
	return interp.Run(h.app.Program, input, opts)
}

// triggered reports whether the outcome contains an overflowing allocation
// at the target site, and derives the observable error type.
func triggered(t *Target, out *interp.Outcome) (bool, string) {
	hit := false
	for _, ev := range out.Allocs {
		if ev.Site == t.Site && ev.Wrapped {
			hit = true
			break
		}
	}
	if !hit {
		return false, ""
	}
	return true, errorType(t.Site, out)
}

// errorType renders the paper's Table 2 "Error Type" column from the run's
// signal and the memcheck findings attributed to the site's block.
func errorType(site string, out *interp.Outcome) string {
	var read, write bool
	for _, me := range out.MemErrs {
		if me.Site != site {
			continue
		}
		if me.Kind == interp.InvalidRead {
			read = true
		} else {
			write = true
		}
	}
	var access string
	switch {
	case read && write:
		access = "InvalidRead/Write"
	case read:
		access = "InvalidRead"
	case write:
		access = "InvalidWrite"
	default:
		access = "SilentOverflow"
	}
	switch out.Kind {
	case interp.OutSegv:
		return "SIGSEGV/" + access
	case interp.OutAbrt:
		return "SIGABRT/" + access
	default:
		return access
	}
}
