package core

import (
	"bytes"
	"reflect"
	"runtime"
	"testing"

	"diode/internal/apps"
)

// TestSiteSeedDerivation checks the per-site seed is a pure function of
// (run seed, site) and separates both dimensions.
func TestSiteSeedDerivation(t *testing.T) {
	if SiteSeed(1, "a") != SiteSeed(1, "a") {
		t.Fatal("SiteSeed not deterministic")
	}
	if SiteSeed(1, "a") == SiteSeed(2, "a") {
		t.Error("SiteSeed ignores the run seed")
	}
	if SiteSeed(1, "a") == SiteSeed(1, "b") {
		t.Error("SiteSeed ignores the site name")
	}
	if ForSite := (Options{Seed: 9}).ForSite("x"); ForSite.Seed != SiteSeed(9, "x") {
		t.Error("Options.ForSite does not derive via SiteSeed")
	}
}

// TestSchedulerDeterminism is the acceptance test for the parallel
// scheduler: with identical Options.Seed, a parallel schedule must produce
// byte-identical per-site verdicts, enforced-branch lists and triggering
// inputs to a sequential one, for every site of multiple applications.
func TestSchedulerDeterminism(t *testing.T) {
	for _, short := range []string{"vlc", "dillo", "swfplay"} {
		app, err := apps.ByName(short)
		if err != nil {
			t.Fatal(err)
		}
		seq, err := NewScheduler(app, Options{Seed: 11}).RunAll()
		if err != nil {
			t.Fatalf("%s sequential: %v", short, err)
		}
		par, err := NewScheduler(app, Options{Seed: 11, Parallelism: runtime.GOMAXPROCS(0)}).RunAll()
		if err != nil {
			t.Fatalf("%s parallel: %v", short, err)
		}
		if len(seq.Sites) != len(par.Sites) {
			t.Fatalf("%s: %d sites sequential vs %d parallel", short, len(seq.Sites), len(par.Sites))
		}
		for i, ss := range seq.Sites {
			ps := par.Sites[i]
			if ss.Target.Site != ps.Target.Site {
				t.Errorf("%s site %d: order diverged: %s vs %s", short, i, ss.Target.Site, ps.Target.Site)
				continue
			}
			if ss.Verdict != ps.Verdict {
				t.Errorf("%s %s: verdict %v sequential vs %v parallel", short, ss.Target.Site, ss.Verdict, ps.Verdict)
			}
			if !reflect.DeepEqual(ss.Enforced, ps.Enforced) {
				t.Errorf("%s %s: enforced %v vs %v", short, ss.Target.Site, ss.Enforced, ps.Enforced)
			}
			if !bytes.Equal(ss.Input, ps.Input) {
				t.Errorf("%s %s: triggering inputs differ", short, ss.Target.Site)
			}
			if ss.ErrorType != ps.ErrorType {
				t.Errorf("%s %s: error type %q vs %q", short, ss.Target.Site, ss.ErrorType, ps.ErrorType)
			}
			if ss.Runs != ps.Runs {
				t.Errorf("%s %s: %d runs vs %d", short, ss.Target.Site, ss.Runs, ps.Runs)
			}
		}
	}
}

// TestEngineMatchesScheduler pins the compatibility contract: the Engine
// wrapper must yield the same verdicts as the Scheduler it delegates to.
func TestEngineMatchesScheduler(t *testing.T) {
	app, err := apps.ByName("cwebp")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(app, Options{Seed: 3}).RunAll()
	if err != nil {
		t.Fatal(err)
	}
	sch, err := NewScheduler(app, Options{Seed: 3, Parallelism: 4}).RunAll()
	if err != nil {
		t.Fatal(err)
	}
	for i, es := range eng.Sites {
		ss := sch.Sites[i]
		if es.Target.Site != ss.Target.Site || es.Verdict != ss.Verdict ||
			!reflect.DeepEqual(es.Enforced, ss.Enforced) || !bytes.Equal(es.Input, ss.Input) {
			t.Errorf("site %s: engine and scheduler disagree", es.Target.Site)
		}
	}
}

// TestSchedulerAggregatesStats checks hunter-local solver counters fold into
// the scheduler's aggregate.
func TestSchedulerAggregatesStats(t *testing.T) {
	app, err := apps.ByName("vlc")
	if err != nil {
		t.Fatal(err)
	}
	s := NewScheduler(app, Options{Seed: 2, Parallelism: 4})
	if _, err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	st := s.SolverStats()
	if st.ConcreteHits+st.SATSolves == 0 {
		t.Errorf("no solver work aggregated: %+v", st)
	}
}
