// Package inputgen is the repo's Peach substitute (§4.4): given a seed input
// file, a field map and solver-produced field values, it reconstructs a new
// input file that carries the candidate values while remaining structurally
// valid — re-running the format's fix-up passes (checksum recalculation,
// length-field repair) that real formats require before a parser will even
// look at the interesting fields.
//
// It also supports the paper's raw-byte mode: variables named in[i] patch
// byte i directly, for formats without a field dictionary.
package inputgen

import (
	"fmt"
	"sort"

	"diode/internal/bv"
	"diode/internal/field"
)

// Fixup is a post-patch reconstruction pass, e.g. "recompute the CRC-32 of
// every chunk" or "repair the RIFF size header". Fixups run in order after
// field values are written.
type Fixup func(data []byte)

// Generator reconstructs input files for one format.
type Generator struct {
	fields *field.Map
	fixups []Fixup
}

// New returns a Generator over the given field map and fix-up passes.
func New(fields *field.Map, fixups ...Fixup) *Generator {
	return &Generator{fields: fields, fixups: fixups}
}

// Fields returns the generator's field map.
func (g *Generator) Fields() *field.Map { return g.fields }

// Generate builds a new input: the seed's bytes with every assignment-bound
// field (and raw byte) replaced, then fixed up. The seed is not modified.
func (g *Generator) Generate(seed []byte, asn bv.Assignment) ([]byte, error) {
	out := append([]byte(nil), seed...)
	for _, spec := range g.fields.Specs() {
		v, ok := asn[spec.Name]
		if !ok {
			continue // unconstrained fields keep their seed values
		}
		if spec.Offset+spec.Size > len(out) {
			return nil, fmt.Errorf("inputgen: field %s extends past input (%d+%d > %d)",
				spec.Name, spec.Offset, spec.Size, len(out))
		}
		spec.Write(out, v)
	}
	// Raw-byte mode for variables not lifted to fields. Names must be exact
	// canonical in[i] forms (ParseInputVar), and patches are applied in sorted
	// name order so the result never depends on map iteration order.
	var raw []string
	for name := range asn {
		if _, ok := field.ParseInputVar(name); ok {
			raw = append(raw, name)
		}
	}
	sort.Strings(raw)
	for _, name := range raw {
		off, _ := field.ParseInputVar(name)
		if off >= len(out) {
			return nil, fmt.Errorf("inputgen: raw byte %d outside input", off)
		}
		out[off] = byte(asn[name])
	}
	for _, f := range g.fixups {
		f(out)
	}
	return out, nil
}
