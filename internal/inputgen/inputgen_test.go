package inputgen

import (
	"bytes"
	"testing"

	"diode/internal/bv"
	"diode/internal/field"
)

func testMap(t *testing.T) *field.Map {
	t.Helper()
	m, err := field.NewMap([]field.Spec{
		{Name: "/hdr/a", Offset: 0, Size: 2, Order: field.BigEndian},
		{Name: "/hdr/b", Offset: 2, Size: 4, Order: field.LittleEndian},
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestGeneratePatchesFields(t *testing.T) {
	seed := []byte{0, 0, 0, 0, 0, 0, 0xAA, 0xBB}
	g := New(testMap(t))
	out, err := g.Generate(seed, bv.Assignment{"/hdr/a": 0x1234, "/hdr/b": 0xDEADBEEF})
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{0x12, 0x34, 0xEF, 0xBE, 0xAD, 0xDE, 0xAA, 0xBB}
	if !bytes.Equal(out, want) {
		t.Fatalf("out = % X, want % X", out, want)
	}
	// The seed must not be modified.
	if !bytes.Equal(seed, []byte{0, 0, 0, 0, 0, 0, 0xAA, 0xBB}) {
		t.Fatal("seed mutated")
	}
}

func TestGenerateUnboundFieldsKeepSeedValues(t *testing.T) {
	seed := []byte{0x11, 0x22, 1, 2, 3, 4, 0xFF}
	g := New(testMap(t))
	out, err := g.Generate(seed, bv.Assignment{"/hdr/a": 0x0909})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out[2:6], seed[2:6]) {
		t.Fatal("unconstrained field changed")
	}
}

func TestGenerateRawByteMode(t *testing.T) {
	seed := []byte{0, 0, 0, 0, 0, 0, 0, 7}
	g := New(testMap(t))
	out, err := g.Generate(seed, bv.Assignment{"in[7]": 0x5A})
	if err != nil {
		t.Fatal(err)
	}
	if out[7] != 0x5A {
		t.Fatalf("raw byte = %#x", out[7])
	}
	if _, err := g.Generate(seed, bv.Assignment{"in[99]": 1}); err == nil {
		t.Fatal("out-of-range raw byte accepted")
	}
}

// TestGenerateRawByteStrictNames pins the strict-parse behavior: only exact
// canonical in[i] names patch bytes. The old fmt.Sscanf parse accepted
// trailing garbage ("in[3]x" patched byte 3) and leading zeros.
func TestGenerateRawByteStrictNames(t *testing.T) {
	seed := []byte{9, 9, 9, 9, 9, 9, 9, 9}
	g := New(testMap(t))
	for _, name := range []string{"in[7]x", "in[07]", "in[+7]", "in[7", "in[]", "xin[7]", "in[7]]"} {
		out, err := g.Generate(seed, bv.Assignment{name: 0x5A})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !bytes.Equal(out, seed) {
			t.Errorf("non-canonical name %q patched the input: % X", name, out)
		}
	}
	// An out-of-range offset under a malformed name must not error either:
	// the name is simply not a raw-byte variable.
	if _, err := g.Generate(seed, bv.Assignment{"in[999]z": 1}); err != nil {
		t.Fatalf("malformed name rejected as out of range: %v", err)
	}
}

// TestGenerateRawByteDeterministicOrder pins the sorted application order:
// with the seed byte left alone, repeated generations with the same
// assignment must agree byte for byte regardless of map iteration order.
func TestGenerateRawByteDeterministicOrder(t *testing.T) {
	seed := make([]byte, 16)
	g := New(testMap(t))
	asn := bv.Assignment{}
	for i := 6; i < 16; i++ {
		asn[field.InputVarName(i)] = uint64(0xA0 + i)
	}
	first, err := g.Generate(seed, asn)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 32; trial++ {
		out, err := g.Generate(seed, asn)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out, first) {
			t.Fatalf("trial %d: raw-byte patching not deterministic", trial)
		}
	}
	for i := 6; i < 16; i++ {
		if first[i] != byte(0xA0+i) {
			t.Errorf("byte %d = %#x, want %#x", i, first[i], byte(0xA0+i))
		}
	}
}

func TestFixupsRunAfterPatching(t *testing.T) {
	seed := make([]byte, 8)
	var sawPatched bool
	fix := func(data []byte) {
		// The fixup must observe the already-patched field.
		sawPatched = data[0] == 0x12
		data[7] = 0xC5 // "checksum"
	}
	g := New(testMap(t), fix)
	out, err := g.Generate(seed, bv.Assignment{"/hdr/a": 0x1234})
	if err != nil {
		t.Fatal(err)
	}
	if !sawPatched {
		t.Fatal("fixup ran before field patching")
	}
	if out[7] != 0xC5 {
		t.Fatal("fixup output lost")
	}
}

func TestGenerateFieldPastEnd(t *testing.T) {
	g := New(testMap(t))
	if _, err := g.Generate([]byte{1, 2, 3}, bv.Assignment{"/hdr/b": 5}); err == nil {
		t.Fatal("field extending past input accepted")
	}
}
