package inputgen

import (
	"bytes"
	"testing"

	"diode/internal/bv"
	"diode/internal/field"
)

func testMap(t *testing.T) *field.Map {
	t.Helper()
	m, err := field.NewMap([]field.Spec{
		{Name: "/hdr/a", Offset: 0, Size: 2, Order: field.BigEndian},
		{Name: "/hdr/b", Offset: 2, Size: 4, Order: field.LittleEndian},
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestGeneratePatchesFields(t *testing.T) {
	seed := []byte{0, 0, 0, 0, 0, 0, 0xAA, 0xBB}
	g := New(testMap(t))
	out, err := g.Generate(seed, bv.Assignment{"/hdr/a": 0x1234, "/hdr/b": 0xDEADBEEF})
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{0x12, 0x34, 0xEF, 0xBE, 0xAD, 0xDE, 0xAA, 0xBB}
	if !bytes.Equal(out, want) {
		t.Fatalf("out = % X, want % X", out, want)
	}
	// The seed must not be modified.
	if !bytes.Equal(seed, []byte{0, 0, 0, 0, 0, 0, 0xAA, 0xBB}) {
		t.Fatal("seed mutated")
	}
}

func TestGenerateUnboundFieldsKeepSeedValues(t *testing.T) {
	seed := []byte{0x11, 0x22, 1, 2, 3, 4, 0xFF}
	g := New(testMap(t))
	out, err := g.Generate(seed, bv.Assignment{"/hdr/a": 0x0909})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out[2:6], seed[2:6]) {
		t.Fatal("unconstrained field changed")
	}
}

func TestGenerateRawByteMode(t *testing.T) {
	seed := []byte{0, 0, 0, 0, 0, 0, 0, 7}
	g := New(testMap(t))
	out, err := g.Generate(seed, bv.Assignment{"in[7]": 0x5A})
	if err != nil {
		t.Fatal(err)
	}
	if out[7] != 0x5A {
		t.Fatalf("raw byte = %#x", out[7])
	}
	if _, err := g.Generate(seed, bv.Assignment{"in[99]": 1}); err == nil {
		t.Fatal("out-of-range raw byte accepted")
	}
}

func TestFixupsRunAfterPatching(t *testing.T) {
	seed := make([]byte, 8)
	var sawPatched bool
	fix := func(data []byte) {
		// The fixup must observe the already-patched field.
		sawPatched = data[0] == 0x12
		data[7] = 0xC5 // "checksum"
	}
	g := New(testMap(t), fix)
	out, err := g.Generate(seed, bv.Assignment{"/hdr/a": 0x1234})
	if err != nil {
		t.Fatal(err)
	}
	if !sawPatched {
		t.Fatal("fixup ran before field patching")
	}
	if out[7] != 0xC5 {
		t.Fatal("fixup output lost")
	}
}

func TestGenerateFieldPastEnd(t *testing.T) {
	g := New(testMap(t))
	if _, err := g.Generate([]byte{1, 2, 3}, bv.Assignment{"/hdr/b": 5}); err == nil {
		t.Fatal("field extending past input accepted")
	}
}
