package bitblast

import (
	"fmt"
	"math/rand"
	"testing"

	"diode/internal/bv"
	"diode/internal/sat"
)

// solveEq pins the variables of expr to the given assignment, asserts
// expr = want, and reports whether the instance is satisfiable.
func solveEq(t *testing.T, expr *bv.Term, asn bv.Assignment, want uint64) bool {
	t.Helper()
	engine := sat.New(sat.Options{})
	bl := New(engine)
	for name, v := range asn {
		vt := bv.TermVars(expr)[name]
		if vt == nil {
			continue
		}
		bl.Assert(bv.Eq(vt, bv.Const(vt.W, v)))
	}
	bl.Assert(bv.Eq(expr, bv.Const(expr.W, want)))
	return engine.Solve() == sat.Sat
}

// TestOpsAgainstEvaluator pins inputs and checks that the circuit forces the
// output the evaluator predicts — and rejects every other output.
func TestOpsAgainstEvaluator(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ops := []struct {
		name string
		mk   func(x, y *bv.Term) *bv.Term
	}{
		{"add", bv.Add},
		{"sub", bv.Sub},
		{"mul", bv.Mul},
		{"udiv", bv.UDiv},
		{"urem", bv.URem},
		{"and", bv.And},
		{"or", bv.Or},
		{"xor", bv.Xor},
		{"shl", bv.Shl},
		{"lshr", bv.LShr},
		{"ashr", bv.AShr},
	}
	widths := []uint8{3, 8, 13, 16}
	for _, w := range widths {
		x := bv.Var(w, fmt.Sprintf("bb_x%d", w))
		y := bv.Var(w, fmt.Sprintf("bb_y%d", w))
		for _, op := range ops {
			expr := op.mk(x, y)
			for trial := 0; trial < 6; trial++ {
				asn := bv.Assignment{
					x.Name: rng.Uint64() & bv.Mask(w),
					y.Name: rng.Uint64() & bv.Mask(w),
				}
				if op.name == "shl" || op.name == "lshr" || op.name == "ashr" {
					// Mix in-range and out-of-range shift amounts.
					if trial%2 == 0 {
						asn[y.Name] = uint64(rng.Intn(int(w) + 3))
					}
				}
				want, err := asn.Eval(expr)
				if err != nil {
					t.Fatal(err)
				}
				if !solveEq(t, expr, asn, want) {
					t.Fatalf("w=%d %s%v: circuit rejects correct value %#x",
						w, op.name, asn, want)
				}
				wrong := (want + 1) & bv.Mask(w)
				if solveEq(t, expr, asn, wrong) {
					t.Fatalf("w=%d %s%v: circuit accepts wrong value %#x (want %#x)",
						w, op.name, asn, wrong, want)
				}
			}
		}
	}
}

// randomExpr builds a random term over the provided variables.
func randomExpr(rng *rand.Rand, vars []*bv.Term, depth int) *bv.Term {
	w := vars[0].W
	if depth == 0 || rng.Intn(4) == 0 {
		if rng.Intn(3) == 0 {
			return bv.Const(w, rng.Uint64()&bv.Mask(w))
		}
		return vars[rng.Intn(len(vars))]
	}
	a := randomExpr(rng, vars, depth-1)
	b := randomExpr(rng, vars, depth-1)
	switch rng.Intn(12) {
	case 0:
		return bv.Add(a, b)
	case 1:
		return bv.Sub(a, b)
	case 2:
		return bv.Mul(a, b)
	case 3:
		return bv.And(a, b)
	case 4:
		return bv.Or(a, b)
	case 5:
		return bv.Xor(a, b)
	case 6:
		return bv.Shl(a, b)
	case 7:
		return bv.LShr(a, b)
	case 8:
		return bv.Not(a)
	case 9:
		return bv.Neg(a)
	case 10:
		return bv.ITE(bv.Ult(a, b), a, b)
	default:
		if w > 1 {
			hi := uint8(rng.Intn(int(w)-1)) + 1
			return bv.ZExt(w, bv.Extract(hi, 0, a))
		}
		return a
	}
}

// TestRandomExpressionsRoundTrip is the main encoder correctness property:
// for random expression trees and random inputs, the circuit's forced output
// equals the evaluator's, and the negation is unsatisfiable.
func TestRandomExpressionsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 120; trial++ {
		w := []uint8{4, 8, 12, 16}[rng.Intn(4)]
		vars := []*bv.Term{
			bv.Var(w, fmt.Sprintf("re_a%d", w)),
			bv.Var(w, fmt.Sprintf("re_b%d", w)),
			bv.Var(w, fmt.Sprintf("re_c%d", w)),
		}
		expr := randomExpr(rng, vars, 4)
		asn := bv.Assignment{}
		for _, v := range vars {
			asn[v.Name] = rng.Uint64() & bv.Mask(w)
		}
		want, err := asn.Eval(expr)
		if err != nil {
			t.Fatal(err)
		}
		engine := sat.New(sat.Options{Seed: int64(trial)})
		bl := New(engine)
		for _, v := range vars {
			bl.Assert(bv.Eq(v, bv.Const(w, asn[v.Name])))
		}
		bl.Assert(bv.Eq(expr, bv.Const(w, want)))
		if engine.Solve() != sat.Sat {
			t.Fatalf("trial %d: rejected correct value %#x for %s under %v",
				trial, want, expr, asn)
		}
		engine2 := sat.New(sat.Options{Seed: int64(trial)})
		bl2 := New(engine2)
		for _, v := range vars {
			bl2.Assert(bv.Eq(v, bv.Const(w, asn[v.Name])))
		}
		bl2.Assert(bv.Ne(expr, bv.Const(w, want)))
		if engine2.Solve() != sat.Unsat {
			t.Fatalf("trial %d: accepted an incorrect value for %s under %v",
				trial, expr, asn)
		}
	}
}

// TestComparisons cross-checks every comparison circuit against Go semantics.
func TestComparisons(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	w := uint8(8)
	x := bv.Var(w, "cmp_x")
	y := bv.Var(w, "cmp_y")
	cmps := []struct {
		name string
		mk   func(a, b *bv.Term) *bv.Bool
		eval func(a, b uint64) bool
	}{
		{"eq", bv.Eq, func(a, b uint64) bool { return a == b }},
		{"ult", bv.Ult, func(a, b uint64) bool { return a < b }},
		{"ule", bv.Ule, func(a, b uint64) bool { return a <= b }},
		{"slt", bv.Slt, func(a, b uint64) bool { return int8(a) < int8(b) }},
		{"sle", bv.Sle, func(a, b uint64) bool { return int8(a) <= int8(b) }},
	}
	for _, c := range cmps {
		for trial := 0; trial < 24; trial++ {
			a := rng.Uint64() & bv.Mask(w)
			b := rng.Uint64() & bv.Mask(w)
			if trial < 4 {
				b = a // exercise the equal case
			}
			want := c.eval(a, b)
			engine := sat.New(sat.Options{})
			bl := New(engine)
			bl.Assert(bv.Eq(x, bv.Const(w, a)))
			bl.Assert(bv.Eq(y, bv.Const(w, b)))
			formula := c.mk(x, y)
			if !want {
				formula = bv.NotB(formula)
			}
			bl.Assert(formula)
			if engine.Solve() != sat.Sat {
				t.Fatalf("%s(%d,%d): expected %v", c.name, a, b, want)
			}
		}
	}
}

// TestSolveForInput runs the solver in the direction DIODE uses it: find an
// input making a condition true, then verify with the evaluator.
func TestSolveForInput(t *testing.T) {
	w8 := bv.Var(8, "sf_w")
	h8 := bv.Var(8, "sf_h")
	size := bv.Mul(bv.ZExt(16, w8), bv.ZExt(16, h8))
	// Find w,h with w*h wrapping 16 bits... impossible: max 255*255 < 2^16.
	over := bv.OverflowCond(size)
	engine := sat.New(sat.Options{})
	bl := New(engine)
	bl.Assert(over)
	if engine.Solve() != sat.Unsat {
		t.Fatal("8x8→16 multiply cannot overflow; expected unsat")
	}

	// 16-bit fields into a 16-bit product can overflow; find a witness.
	w16 := bv.Var(16, "sf_w16")
	h16 := bv.Var(16, "sf_h16")
	size16 := bv.Mul(w16, h16)
	over16 := bv.OverflowCond(size16)
	engine2 := sat.New(sat.Options{})
	bl2 := New(engine2)
	bl2.Assert(over16)
	if engine2.Solve() != sat.Sat {
		t.Fatal("16-bit multiply overflow should be satisfiable")
	}
	m := bl2.Model()
	ok, err := m.EvalBool(over16)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("model %v does not overflow", m)
	}
}

func TestModelOnlyCoversMentionedVars(t *testing.T) {
	engine := sat.New(sat.Options{})
	bl := New(engine)
	x := bv.Var(8, "mv_x")
	bl.Assert(bv.Eq(x, bv.Const(8, 42)))
	if engine.Solve() != sat.Sat {
		t.Fatal("expected sat")
	}
	m := bl.Model()
	if len(m) != 1 || m["mv_x"] != 42 {
		t.Fatalf("model = %v", m)
	}
}

func TestValueAfterSolve(t *testing.T) {
	engine := sat.New(sat.Options{})
	bl := New(engine)
	x := bv.Var(8, "va_x")
	sum := bv.Add(x, bv.Const(8, 10))
	bl.Assert(bv.Eq(sum, bv.Const(8, 17)))
	if engine.Solve() != sat.Sat {
		t.Fatal("expected sat")
	}
	if got := bl.Value(sum); got != 17 {
		t.Fatalf("Value(sum) = %d, want 17", got)
	}
	if got := bl.Model()["va_x"]; got != 7 {
		t.Fatalf("x = %d, want 7", got)
	}
}

// TestAssertIdempotent checks the incremental-session contract: re-asserting
// an already-asserted formula (or a conjunction over already-encoded
// subterms) adds no variables and no clauses.
func TestAssertIdempotent(t *testing.T) {
	engine := sat.New(sat.Options{})
	bl := New(engine)
	x := bv.Var(32, "ai_x")
	y := bv.Var(32, "ai_y")
	beta := bv.OverflowCond(bv.Mul(x, y))
	if !bl.Assert(beta) {
		t.Fatal("first Assert reported not-new")
	}
	vars, clauses := engine.NumVars(), engine.NumClauses()
	if bl.Assert(beta) {
		t.Fatal("second Assert reported new")
	}
	if engine.NumVars() != vars || engine.NumClauses() != clauses {
		t.Fatalf("re-assert grew the encoding: %d→%d vars, %d→%d clauses",
			vars, engine.NumVars(), clauses, engine.NumClauses())
	}
	// A new constraint over the same shared subterm must reuse its bits: only
	// the comparison circuit is new, far fewer gates than the multiplier.
	grown := engine.NumVars()
	bl.Assert(bv.Ult(bv.Mul(x, y), bv.Const(32, 1000)))
	if added := engine.NumVars() - grown; added > 200 {
		t.Fatalf("shared multiplier re-encoded: %d new vars", added)
	}
	if engine.Solve() != sat.Sat {
		t.Fatal("expected sat")
	}
}
