// Package bitblast translates bitvector formulas (package bv) into CNF for
// the CDCL solver (package sat) via Tseitin encoding. Together the two
// packages are the repo's replacement for the Z3 SMT solver the paper uses:
// a complete decision procedure for the quantifier-free bitvector constraints
// DIODE produces (target constraints and branch constraints).
//
// The encoding uses the classic circuits: ripple-carry adders, shift-add
// multipliers, restoring dividers, barrel shifters and borrow-chain
// comparators. A gate-level structural hash keeps the CNF small when the same
// subcircuit appears repeatedly (common, because bv terms are hash-consed).
package bitblast

import (
	"diode/internal/bv"
	"diode/internal/sat"
)

// Blaster incrementally encodes formulas into a sat.Solver. It is stateful
// by design: every lowered term, formula and gate is cached under its
// canonical intern key (bv.Term.ID / bv.Bool.ID), so a Blaster that lives
// across many Assert/solve rounds — the incremental-session workload —
// lowers each shared subterm exactly once, no matter how many asserted
// formulas mention it. Assert itself is idempotent: re-asserting a formula
// that is already part of the encoding adds no clauses.
type Blaster struct {
	s        *sat.Solver
	termBits map[uint64][]sat.Lit // term intern id → bits, LSB first
	boolLit  map[uint64]sat.Lit   // formula intern id → literal
	asserted map[uint64]bool      // formula intern ids already asserted
	varBits  map[string][]sat.Lit
	varTerm  map[string]*bv.Term
	t, f     sat.Lit // literals fixed to true / false
	gates    map[gateKey]sat.Lit
}

type gateKey struct {
	op   uint8
	a, b sat.Lit
}

const (
	gAnd uint8 = iota
	gXor
)

// New returns a Blaster that adds clauses to s.
func New(s *sat.Solver) *Blaster {
	b := &Blaster{
		s:        s,
		termBits: make(map[uint64][]sat.Lit),
		boolLit:  make(map[uint64]sat.Lit),
		asserted: make(map[uint64]bool),
		varBits:  make(map[string][]sat.Lit),
		varTerm:  make(map[string]*bv.Term),
		gates:    make(map[gateKey]sat.Lit),
	}
	tv := s.NewVar()
	b.t = sat.PosLit(tv)
	b.f = b.t.Neg()
	s.AddClause(b.t)
	return b
}

// Assert adds the constraint that formula holds. It reports whether the
// formula was new: asserting a formula a second time is a no-op (the
// constraint is already in force), so callers that grow a conjunction
// incrementally pay only for the conjuncts they have not asserted before.
func (b *Blaster) Assert(formula *bv.Bool) bool {
	if b.asserted[formula.ID()] {
		return false
	}
	b.asserted[formula.ID()] = true
	l := b.Lit(formula)
	b.s.AddClause(l)
	return true
}

// Lit returns a literal equivalent to the formula.
func (b *Blaster) Lit(formula *bv.Bool) sat.Lit {
	if l, ok := b.boolLit[formula.ID()]; ok {
		return l
	}
	l := b.litUncached(formula)
	b.boolLit[formula.ID()] = l
	return l
}

func (b *Blaster) litUncached(formula *bv.Bool) sat.Lit {
	switch formula.Kind {
	case bv.BConst:
		if formula.BVal {
			return b.t
		}
		return b.f
	case bv.BEq:
		return b.eq(b.Bits(formula.X), b.Bits(formula.Y))
	case bv.BUlt:
		return b.ult(b.Bits(formula.X), b.Bits(formula.Y))
	case bv.BUle:
		return b.ult(b.Bits(formula.Y), b.Bits(formula.X)).Neg()
	case bv.BSlt:
		return b.slt(b.Bits(formula.X), b.Bits(formula.Y))
	case bv.BSle:
		return b.slt(b.Bits(formula.Y), b.Bits(formula.X)).Neg()
	case bv.BNot:
		return b.Lit(formula.A).Neg()
	case bv.BAnd:
		return b.and(b.Lit(formula.A), b.Lit(formula.B))
	case bv.BOr:
		return b.or(b.Lit(formula.A), b.Lit(formula.B))
	}
	panic("bitblast: unknown bool kind")
}

// Bits returns the literal vector (LSB first) encoding t.
func (b *Blaster) Bits(t *bv.Term) []sat.Lit {
	if bits, ok := b.termBits[t.ID()]; ok {
		return bits
	}
	bits := b.bitsUncached(t)
	if len(bits) != int(t.W) {
		panic("bitblast: width mismatch in encoding")
	}
	b.termBits[t.ID()] = bits
	return bits
}

func (b *Blaster) bitsUncached(t *bv.Term) []sat.Lit {
	switch t.Kind {
	case bv.KConst:
		bits := make([]sat.Lit, t.W)
		for i := range bits {
			if t.Val>>uint(i)&1 == 1 {
				bits[i] = b.t
			} else {
				bits[i] = b.f
			}
		}
		return bits
	case bv.KVar:
		if bits, ok := b.varBits[t.Name]; ok {
			return bits
		}
		bits := make([]sat.Lit, t.W)
		for i := range bits {
			bits[i] = sat.PosLit(b.s.NewVar())
		}
		b.varBits[t.Name] = bits
		b.varTerm[t.Name] = t
		return bits
	case bv.KNot:
		x := b.Bits(t.X)
		bits := make([]sat.Lit, len(x))
		for i, l := range x {
			bits[i] = l.Neg()
		}
		return bits
	case bv.KNeg:
		x := b.Bits(t.X)
		inv := make([]sat.Lit, len(x))
		for i, l := range x {
			inv[i] = l.Neg()
		}
		sum, _ := b.adder(inv, b.constBits(uint64(0), t.W), b.t)
		return sum
	case bv.KAdd:
		sum, _ := b.adder(b.Bits(t.X), b.Bits(t.Y), b.f)
		return sum
	case bv.KSub:
		y := b.Bits(t.Y)
		inv := make([]sat.Lit, len(y))
		for i, l := range y {
			inv[i] = l.Neg()
		}
		sum, _ := b.adder(b.Bits(t.X), inv, b.t)
		return sum
	case bv.KMul:
		return b.multiplier(b.Bits(t.X), b.Bits(t.Y))
	case bv.KUDiv:
		q, _ := b.divider(b.Bits(t.X), b.Bits(t.Y))
		return q
	case bv.KURem:
		_, r := b.divider(b.Bits(t.X), b.Bits(t.Y))
		return r
	case bv.KAnd:
		return b.bitwise(gAnd, b.Bits(t.X), b.Bits(t.Y))
	case bv.KOr:
		x, y := b.Bits(t.X), b.Bits(t.Y)
		bits := make([]sat.Lit, len(x))
		for i := range x {
			bits[i] = b.or(x[i], y[i])
		}
		return bits
	case bv.KXor:
		return b.bitwise(gXor, b.Bits(t.X), b.Bits(t.Y))
	case bv.KShl:
		return b.shifter(t.X, t.Y, shiftLeft)
	case bv.KLShr:
		return b.shifter(t.X, t.Y, shiftRightLogical)
	case bv.KAShr:
		return b.shifter(t.X, t.Y, shiftRightArith)
	case bv.KZExt:
		x := b.Bits(t.X)
		bits := make([]sat.Lit, t.W)
		copy(bits, x)
		for i := len(x); i < int(t.W); i++ {
			bits[i] = b.f
		}
		return bits
	case bv.KSExt:
		x := b.Bits(t.X)
		bits := make([]sat.Lit, t.W)
		copy(bits, x)
		sign := x[len(x)-1]
		for i := len(x); i < int(t.W); i++ {
			bits[i] = sign
		}
		return bits
	case bv.KExtract:
		x := b.Bits(t.X)
		return append([]sat.Lit(nil), x[t.Lo:t.Hi+1]...)
	case bv.KConcat:
		hi, lo := b.Bits(t.X), b.Bits(t.Y)
		bits := make([]sat.Lit, 0, len(hi)+len(lo))
		bits = append(bits, lo...)
		bits = append(bits, hi...)
		return bits
	case bv.KITE:
		c := b.Lit(t.Cond)
		x, y := b.Bits(t.X), b.Bits(t.Y)
		bits := make([]sat.Lit, len(x))
		for i := range x {
			bits[i] = b.mux(c, x[i], y[i])
		}
		return bits
	}
	panic("bitblast: unknown term kind")
}

func (b *Blaster) constBits(v uint64, w uint8) []sat.Lit {
	bits := make([]sat.Lit, w)
	for i := range bits {
		if v>>uint(i)&1 == 1 {
			bits[i] = b.t
		} else {
			bits[i] = b.f
		}
	}
	return bits
}

// --- gate primitives with constant folding and structural hashing ---

func (b *Blaster) and(a1, a2 sat.Lit) sat.Lit {
	if a1 == b.f || a2 == b.f {
		return b.f
	}
	if a1 == b.t {
		return a2
	}
	if a2 == b.t {
		return a1
	}
	if a1 == a2 {
		return a1
	}
	if a1 == a2.Neg() {
		return b.f
	}
	if a2 < a1 {
		a1, a2 = a2, a1
	}
	key := gateKey{gAnd, a1, a2}
	if g, ok := b.gates[key]; ok {
		return g
	}
	c := sat.PosLit(b.s.NewVar())
	b.s.AddClause(a1.Neg(), a2.Neg(), c)
	b.s.AddClause(a1, c.Neg())
	b.s.AddClause(a2, c.Neg())
	b.gates[key] = c
	return c
}

func (b *Blaster) or(a1, a2 sat.Lit) sat.Lit {
	return b.and(a1.Neg(), a2.Neg()).Neg()
}

func (b *Blaster) xor(a1, a2 sat.Lit) sat.Lit {
	if a1 == b.f {
		return a2
	}
	if a2 == b.f {
		return a1
	}
	if a1 == b.t {
		return a2.Neg()
	}
	if a2 == b.t {
		return a1.Neg()
	}
	if a1 == a2 {
		return b.f
	}
	if a1 == a2.Neg() {
		return b.t
	}
	// Normalize polarity: store gates with both inputs positive-normalized.
	neg := false
	if a1.Sign() {
		a1 = a1.Neg()
		neg = !neg
	}
	if a2.Sign() {
		a2 = a2.Neg()
		neg = !neg
	}
	if a2 < a1 {
		a1, a2 = a2, a1
	}
	key := gateKey{gXor, a1, a2}
	g, ok := b.gates[key]
	if !ok {
		g = sat.PosLit(b.s.NewVar())
		b.s.AddClause(a1.Neg(), a2.Neg(), g.Neg())
		b.s.AddClause(a1, a2, g.Neg())
		b.s.AddClause(a1.Neg(), a2, g)
		b.s.AddClause(a1, a2.Neg(), g)
		b.gates[key] = g
	}
	if neg {
		return g.Neg()
	}
	return g
}

func (b *Blaster) mux(sel, hi, lo sat.Lit) sat.Lit {
	if sel == b.t {
		return hi
	}
	if sel == b.f {
		return lo
	}
	if hi == lo {
		return hi
	}
	return b.or(b.and(sel, hi), b.and(sel.Neg(), lo))
}

// --- word-level circuits ---

// adder returns sum bits and the carry-out of x + y + cin (ripple carry).
func (b *Blaster) adder(x, y []sat.Lit, cin sat.Lit) ([]sat.Lit, sat.Lit) {
	sum := make([]sat.Lit, len(x))
	c := cin
	for i := range x {
		axy := b.xor(x[i], y[i])
		sum[i] = b.xor(axy, c)
		c = b.or(b.and(x[i], y[i]), b.and(c, axy))
	}
	return sum, c
}

func (b *Blaster) bitwise(op uint8, x, y []sat.Lit) []sat.Lit {
	bits := make([]sat.Lit, len(x))
	for i := range x {
		if op == gAnd {
			bits[i] = b.and(x[i], y[i])
		} else {
			bits[i] = b.xor(x[i], y[i])
		}
	}
	return bits
}

// multiplier computes x*y mod 2^w by shift-and-add.
func (b *Blaster) multiplier(x, y []sat.Lit) []sat.Lit {
	w := len(x)
	acc := make([]sat.Lit, w)
	for i := range acc {
		acc[i] = b.f
	}
	for i := 0; i < w; i++ {
		// addend = (x << i) gated by y[i], restricted to w bits.
		addend := make([]sat.Lit, w)
		for j := 0; j < w; j++ {
			if j < i {
				addend[j] = b.f
			} else {
				addend[j] = b.and(x[j-i], y[i])
			}
		}
		acc, _ = b.adder(acc, addend, b.f)
	}
	return acc
}

// divider returns quotient and remainder of unsigned restoring division,
// with SMT-LIB semantics for division by zero (q = all-ones, r = x).
func (b *Blaster) divider(x, y []sat.Lit) ([]sat.Lit, []sat.Lit) {
	w := len(x)
	q := make([]sat.Lit, w)
	rem := make([]sat.Lit, w)
	for i := range rem {
		rem[i] = b.f
	}
	for i := w - 1; i >= 0; i-- {
		// rem = rem << 1 | x[i]
		rem = append([]sat.Lit{x[i]}, rem[:w-1]...)
		// ge = rem >= y
		ge := b.ult(rem, y).Neg()
		// rem = ge ? rem - y : rem
		inv := make([]sat.Lit, w)
		for j := range y {
			inv[j] = y[j].Neg()
		}
		diff, _ := b.adder(rem, inv, b.t)
		next := make([]sat.Lit, w)
		for j := 0; j < w; j++ {
			next[j] = b.mux(ge, diff[j], rem[j])
		}
		rem = next
		q[i] = ge
	}
	// Division by zero fix-up.
	yZero := b.isZero(y)
	for i := 0; i < w; i++ {
		q[i] = b.mux(yZero, b.t, q[i])
		rem[i] = b.mux(yZero, x[i], rem[i])
	}
	return q, rem
}

func (b *Blaster) isZero(x []sat.Lit) sat.Lit {
	any := b.f
	for _, l := range x {
		any = b.or(any, l)
	}
	return any.Neg()
}

// ult: x < y unsigned ⟺ no carry out of x + ~y + 1.
func (b *Blaster) ult(x, y []sat.Lit) sat.Lit {
	inv := make([]sat.Lit, len(y))
	for i, l := range y {
		inv[i] = l.Neg()
	}
	_, cout := b.adder(x, inv, b.t)
	return cout.Neg()
}

func (b *Blaster) slt(x, y []sat.Lit) sat.Lit {
	w := len(x)
	sx, sy := x[w-1], y[w-1]
	diffSign := b.xor(sx, sy)
	// Same sign: unsigned comparison decides. Different sign: x < y iff x
	// is the negative one.
	return b.mux(diffSign, sx, b.ult(x, y))
}

func (b *Blaster) eq(x, y []sat.Lit) sat.Lit {
	acc := b.t
	for i := range x {
		acc = b.and(acc, b.xor(x[i], y[i]).Neg())
	}
	return acc
}

type shiftKind uint8

const (
	shiftLeft shiftKind = iota
	shiftRightLogical
	shiftRightArith
)

// shifter builds a barrel shifter for t.X shifted by t.Y. Shift amounts ≥ w
// produce 0 (logical) or sign fill (arithmetic), matching bv semantics.
func (b *Blaster) shifter(xt, yt *bv.Term, kind shiftKind) []sat.Lit {
	x := b.Bits(xt)
	y := b.Bits(yt)
	w := len(x)
	cur := append([]sat.Lit(nil), x...)
	var fill func() sat.Lit
	switch kind {
	case shiftRightArith:
		sign := x[w-1]
		fill = func() sat.Lit { return sign }
	default:
		fill = func() sat.Lit { return b.f }
	}
	// Stages shift by 2^k for each k where 2^k < w.
	for k := 0; (1 << k) < w; k++ {
		amt := 1 << k
		sel := y[k]
		next := make([]sat.Lit, w)
		for i := 0; i < w; i++ {
			var shifted sat.Lit
			switch kind {
			case shiftLeft:
				if i-amt >= 0 {
					shifted = cur[i-amt]
				} else {
					shifted = b.f
				}
			default:
				if i+amt < w {
					shifted = cur[i+amt]
				} else {
					shifted = fill()
				}
			}
			next[i] = b.mux(sel, shifted, cur[i])
		}
		cur = next
	}
	// If the shift amount is ≥ w, the result is all fill bits. That happens
	// when any y bit at position k with 2^k ≥ w is set, or (for non-power-of
	// -two widths) when the low bits alone encode a value ≥ w.
	over := b.f
	lowBits := 0
	for k := 0; (1 << k) < w; k++ {
		lowBits = k + 1
	}
	for k := lowBits; k < len(y); k++ {
		over = b.or(over, y[k])
	}
	if w&(w-1) != 0 { // non-power-of-two width: low bits can encode values ≥ w
		cmp := b.ult(y, b.constBits(uint64(w), uint8(len(y))))
		over = b.or(over, cmp.Neg())
	}
	out := make([]sat.Lit, w)
	for i := 0; i < w; i++ {
		out[i] = b.mux(over, fill(), cur[i])
	}
	return out
}

// Value reads the model value of t after a successful solve.
func (b *Blaster) Value(t *bv.Term) uint64 {
	bits, ok := b.termBits[t.ID()]
	if !ok {
		panic("bitblast: term was not encoded")
	}
	return b.bitsValue(bits)
}

func (b *Blaster) bitsValue(bits []sat.Lit) uint64 {
	return b.bitsValueOf(bits, b.s.ModelValue)
}

func (b *Blaster) bitsValueOf(bits []sat.Lit, value func(sat.Var) bool) uint64 {
	var v uint64
	for i, l := range bits {
		var bit bool
		if l == b.t {
			bit = true
		} else if l == b.f {
			bit = false
		} else {
			bit = value(l.Var()) != l.Sign()
		}
		if bit {
			v |= 1 << uint(i)
		}
	}
	return v
}

// Model extracts the assignment for every bv variable mentioned in asserted
// formulas, reading the sat solver's model.
func (b *Blaster) Model() bv.Assignment {
	return b.ModelOf(b.s.ModelValue)
}

// ModelOf extracts the assignment reading per-variable values through value
// instead of the attached solver's model — for models found by a clone of
// the attached solver (identical variable numbering), the portfolio-race
// case.
func (b *Blaster) ModelOf(value func(sat.Var) bool) bv.Assignment {
	m := make(bv.Assignment, len(b.varBits))
	for name, bits := range b.varBits {
		m[name] = b.bitsValueOf(bits, value)
	}
	return m
}
