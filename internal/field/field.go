// Package field is the repo's Hachoir substitute (§4.2, §4.4): it maps byte
// ranges of an input file to named input fields (e.g. bytes 16–19 of an SPNG
// file are "/header/width", big-endian), and rewrites the per-byte symbolic
// expressions the interpreter records into expressions over whole-field
// variables.
//
// The rewrite substitutes each input-byte variable in[i] with the extract of
// the corresponding byte of its field's variable. For a big-endian 32-bit
// field this produces exactly the byte-swizzle structure (BvAnd/UShr/Shl over
// HachField(32,...)) shown in the paper's §2 example target expression.
// Solving then assigns whole fields, and package inputgen writes field values
// back into the file.
package field

import (
	"fmt"
	"sort"

	"diode/internal/bv"
)

// Endian is a field's byte order.
type Endian uint8

// Byte orders.
const (
	BigEndian Endian = iota
	LittleEndian
)

// Spec describes one input field.
type Spec struct {
	// Name is the field path, e.g. "/header/width". Field variables render
	// as HachField(width, name).
	Name string
	// Offset is the byte offset of the field in the input file.
	Offset int
	// Size is the field length in bytes (1, 2, 4 or 8).
	Size int
	// Order is the field's byte order.
	Order Endian
}

// Width returns the field's bit width, or 0 for a Spec whose Size is not one
// of the supported values (1, 2, 4 or 8). NewMap rejects such specs, but a
// Spec can also be constructed directly; without the guard a size-0 or
// size-32 spec would silently yield width 0 via uint8 overflow while sizes
// like 33 would yield garbage widths.
func (s Spec) Width() uint8 {
	switch s.Size {
	case 1, 2, 4, 8:
		return uint8(s.Size * 8)
	}
	return 0
}

// Covers reports whether the field contains the given byte offset.
func (s Spec) Covers(off int) bool { return off >= s.Offset && off < s.Offset+s.Size }

// Map is an ordered collection of field specs for one input format.
type Map struct {
	specs  []Spec
	byByte map[int]int // byte offset → index into specs
}

// NewMap builds a Map, validating that fields do not overlap.
func NewMap(specs []Spec) (*Map, error) {
	m := &Map{specs: append([]Spec(nil), specs...), byByte: make(map[int]int)}
	sort.Slice(m.specs, func(i, j int) bool { return m.specs[i].Offset < m.specs[j].Offset })
	for i, s := range m.specs {
		if s.Size != 1 && s.Size != 2 && s.Size != 4 && s.Size != 8 {
			return nil, fmt.Errorf("field: %s has unsupported size %d", s.Name, s.Size)
		}
		for b := s.Offset; b < s.Offset+s.Size; b++ {
			if j, taken := m.byByte[b]; taken {
				return nil, fmt.Errorf("field: %s overlaps %s at byte %d", s.Name, m.specs[j].Name, b)
			}
			m.byByte[b] = i
		}
	}
	return m, nil
}

// MustMap is NewMap that panics on error; for statically-known format tables.
func MustMap(specs []Spec) *Map {
	m, err := NewMap(specs)
	if err != nil {
		panic(err)
	}
	return m
}

// Specs returns the field specs in offset order.
func (m *Map) Specs() []Spec { return m.specs }

// FieldFor returns the spec covering the byte offset, if any.
func (m *Map) FieldFor(off int) (Spec, bool) {
	i, ok := m.byByte[off]
	if !ok {
		return Spec{}, false
	}
	return m.specs[i], true
}

// Var returns the bv variable for a field.
func (s Spec) Var() *bv.Term { return bv.Var(s.Width(), s.Name) }

// byteExtract returns the 8-bit extract of the field variable corresponding
// to file byte offset off (which must be covered by the field).
func (s Spec) byteExtract(off int) *bv.Term {
	idx := off - s.Offset // 0 = first byte in the file
	var lo uint8
	if s.Order == BigEndian {
		lo = uint8((s.Size - 1 - idx) * 8)
	} else {
		lo = uint8(idx * 8)
	}
	return bv.Extract(lo+7, lo, s.Var())
}

// InputVarName returns the canonical per-byte variable name used by the
// interpreter.
func InputVarName(off int) string { return fmt.Sprintf("in[%d]", off) }

// ParseInputVar parses a canonical per-byte variable name produced by
// InputVarName and returns the byte offset. Only exact matches are accepted:
// the name must be "in[<digits>]" with no leading zeros, signs or trailing
// characters. (fmt.Sscanf-style parsing would accept "in[3]x" as byte 3.)
func ParseInputVar(name string) (int, bool) {
	const prefix = "in["
	if len(name) < len(prefix)+2 || name[:len(prefix)] != prefix || name[len(name)-1] != ']' {
		return 0, false
	}
	digits := name[len(prefix) : len(name)-1]
	if len(digits) > 1 && digits[0] == '0' {
		return 0, false
	}
	off := 0
	for i := 0; i < len(digits); i++ {
		c := digits[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		// Bound before accumulating so the multiply cannot overflow even
		// where int is 32 bits (off stays well below MaxInt32/10).
		if off > (1<<30)/10 {
			return 0, false
		}
		off = off*10 + int(c-'0')
	}
	if off > 1<<30 {
		return 0, false
	}
	return off, true
}

// replacements builds the substitution from per-byte variables to field-byte
// extracts for the byte offsets in use.
func (m *Map) replacements(offsets []int) map[string]*bv.Term {
	repl := make(map[string]*bv.Term)
	for _, off := range offsets {
		if i, ok := m.byByte[off]; ok {
			repl[InputVarName(off)] = m.specs[i].byteExtract(off)
		}
	}
	return repl
}

// offsetsOf extracts the byte offsets of per-byte variables in a VarSet.
func offsetsOf(vs bv.VarSet) []int {
	var out []int
	for name := range vs {
		if off, ok := ParseInputVar(name); ok {
			out = append(out, off)
		}
	}
	sort.Ints(out)
	return out
}

// LiftTerm rewrites a per-byte symbolic term into a field-level term. Bytes
// not covered by any field keep their per-byte variables (raw-byte mode,
// §4.4).
func (m *Map) LiftTerm(t *bv.Term) *bv.Term {
	return bv.SubstituteTerm(t, m.replacements(offsetsOf(bv.TermVars(t))))
}

// LiftBool rewrites a per-byte formula into a field-level formula.
func (m *Map) LiftBool(b *bv.Bool) *bv.Bool {
	return bv.SubstituteBool(b, m.replacements(offsetsOf(bv.BoolVars(b))))
}

// SeedAssignment reads the concrete value of every field (and of the raw
// bytes not covered by fields) from a seed input file. The result binds every
// variable a lifted expression can mention, so lifted expressions can be
// evaluated against the seed.
func (m *Map) SeedAssignment(input []byte) bv.Assignment {
	asn := make(bv.Assignment)
	for _, s := range m.specs {
		if s.Offset+s.Size <= len(input) {
			asn[s.Name] = s.Read(input)
		}
	}
	for i := range input {
		if _, covered := m.byByte[i]; !covered {
			asn[InputVarName(i)] = uint64(input[i])
		}
	}
	return asn
}

// Read extracts the field's concrete value from the file bytes.
func (s Spec) Read(input []byte) uint64 {
	var v uint64
	for i := 0; i < s.Size; i++ {
		b := uint64(input[s.Offset+i])
		if s.Order == BigEndian {
			v = v<<8 | b
		} else {
			v |= b << uint(8*i)
		}
	}
	return v
}

// Write stores a field value into the file bytes.
func (s Spec) Write(input []byte, v uint64) {
	for i := 0; i < s.Size; i++ {
		var b byte
		if s.Order == BigEndian {
			b = byte(v >> uint(8*(s.Size-1-i)))
		} else {
			b = byte(v >> uint(8*i))
		}
		input[s.Offset+i] = b
	}
}
