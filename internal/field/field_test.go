package field

import (
	"testing"
	"testing/quick"

	"diode/internal/bv"
)

func mustMap(t *testing.T, specs []Spec) *Map {
	t.Helper()
	m, err := NewMap(specs)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestOverlapRejected(t *testing.T) {
	_, err := NewMap([]Spec{
		{Name: "/a", Offset: 0, Size: 4},
		{Name: "/b", Offset: 2, Size: 4},
	})
	if err == nil {
		t.Fatal("overlapping fields accepted")
	}
}

func TestBadSizeRejected(t *testing.T) {
	_, err := NewMap([]Spec{{Name: "/a", Offset: 0, Size: 3}})
	if err == nil {
		t.Fatal("3-byte field accepted")
	}
}

// TestWidthDefendsInvalidSizes: a directly constructed Spec with an invalid
// size must report width 0 rather than an overflowed uint8 (size 32 used to
// wrap to width 0 by accident while size 33 produced garbage width 8).
func TestWidthDefendsInvalidSizes(t *testing.T) {
	for size, want := range map[int]uint8{
		1: 8, 2: 16, 4: 32, 8: 64, // supported sizes
		0: 0, 3: 0, 16: 0, 32: 0, 33: 0, -1: 0, // invalid sizes all report 0
	} {
		if got := (Spec{Name: "/x", Size: size}).Width(); got != want {
			t.Errorf("Spec{Size: %d}.Width() = %d, want %d", size, got, want)
		}
	}
}

func TestParseInputVar(t *testing.T) {
	good := map[string]int{"in[0]": 0, "in[7]": 7, "in[42]": 42, "in[1073741824]": 1 << 30}
	for name, want := range good {
		if off, ok := ParseInputVar(name); !ok || off != want {
			t.Errorf("ParseInputVar(%q) = %d,%v; want %d,true", name, off, ok, want)
		}
	}
	bad := []string{"", "in", "in[]", "in[3", "in3]", "in[3]x", "in[03]", "in[+3]", "in[-3]",
		"in[3.5]", "xin[3]", "IN[3]", "in[99999999999999999999]", "in[[3]]",
		// Values just past the 2^30 cap, including ones whose 32-bit
		// accumulation would wrap back into range.
		"in[1073741825]", "in[4294967296]", "in[18446744073709551617]"}
	for _, name := range bad {
		if off, ok := ParseInputVar(name); ok {
			t.Errorf("ParseInputVar(%q) accepted as offset %d", name, off)
		}
	}
	// Round trip with the canonical producer.
	for _, off := range []int{0, 1, 9, 10, 255, 100000} {
		got, ok := ParseInputVar(InputVarName(off))
		if !ok || got != off {
			t.Errorf("round trip of offset %d failed: %d,%v", off, got, ok)
		}
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	for _, order := range []Endian{BigEndian, LittleEndian} {
		for _, size := range []int{1, 2, 4, 8} {
			s := Spec{Name: "/f", Offset: 3, Size: size, Order: order}
			f := func(v uint64) bool {
				buf := make([]byte, 16)
				v &= bv.Mask(uint8(size * 8))
				s.Write(buf, v)
				return s.Read(buf) == v
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
				t.Errorf("order=%v size=%d: %v", order, size, err)
			}
		}
	}
}

// TestLiftRoundTrip: lifting per-byte reads of a field and evaluating under a
// field assignment must reproduce the field value — for both byte orders.
func TestLiftRoundTrip(t *testing.T) {
	for _, order := range []Endian{BigEndian, LittleEndian} {
		m := mustMap(t, []Spec{{Name: "/v", Offset: 4, Size: 4, Order: order}})
		// Parser-style reassembly of the 4 bytes (most significant first for
		// BE, last for LE).
		b := func(i int) *bv.Term { return bv.ZExt(32, bv.Var(8, InputVarName(i))) }
		var expr *bv.Term
		if order == BigEndian {
			expr = bv.Or(bv.Or(bv.Shl(b(4), bv.Const(32, 24)), bv.Shl(b(5), bv.Const(32, 16))),
				bv.Or(bv.Shl(b(6), bv.Const(32, 8)), b(7)))
		} else {
			expr = bv.Or(bv.Or(b(4), bv.Shl(b(5), bv.Const(32, 8))),
				bv.Or(bv.Shl(b(6), bv.Const(32, 16)), bv.Shl(b(7), bv.Const(32, 24))))
		}
		lifted := m.LiftTerm(expr)
		f := func(v uint64) bool {
			v &= 0xFFFFFFFF
			got, err := bv.Assignment{"/v": v}.Eval(lifted)
			return err == nil && got == v
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
			t.Errorf("order=%v: %v", order, err)
		}
	}
}

func TestLiftLeavesUncoveredBytes(t *testing.T) {
	m := mustMap(t, []Spec{{Name: "/v", Offset: 0, Size: 2, Order: BigEndian}})
	raw := bv.Var(8, InputVarName(9)) // byte 9 is not covered
	lifted := m.LiftTerm(bv.Add(raw, bv.Const(8, 1)))
	vars := bv.TermVars(lifted)
	if _, ok := vars[InputVarName(9)]; !ok {
		t.Fatalf("uncovered byte variable rewritten: %v", vars.Names())
	}
}

func TestLiftBoolAndSeedAssignment(t *testing.T) {
	m := mustMap(t, []Spec{{Name: "/w", Offset: 0, Size: 2, Order: BigEndian}})
	input := []byte{0x01, 0x02, 0xFF}
	asn := m.SeedAssignment(input)
	if asn["/w"] != 0x0102 {
		t.Fatalf("/w = %#x", asn["/w"])
	}
	if asn[InputVarName(2)] != 0xFF {
		t.Fatalf("raw byte binding = %#x", asn[InputVarName(2)])
	}
	// A condition over the field's bytes lifts and evaluates consistently.
	b0 := bv.ZExt(16, bv.Var(8, InputVarName(0)))
	cond := bv.Ugt(bv.Shl(b0, bv.Const(16, 8)), bv.Const(16, 0x0500))
	lifted := m.LiftBool(cond)
	got, err := asn.EvalBool(lifted)
	if err != nil {
		t.Fatal(err)
	}
	if got { // 0x0100 > 0x0500 is false
		t.Fatal("lifted condition evaluated incorrectly")
	}
	if fieldSpec, ok := m.FieldFor(1); !ok || fieldSpec.Name != "/w" {
		t.Fatal("FieldFor failed")
	}
	if _, ok := m.FieldFor(5); ok {
		t.Fatal("FieldFor reported a field for an uncovered byte")
	}
}
