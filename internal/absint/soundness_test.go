package absint_test

import (
	"sync"
	"testing"

	"diode/internal/absint"
	"diode/internal/apps"
	"diode/internal/discover"
	"diode/internal/interp"
	"diode/internal/lang"
)

// appStatic is the per-application static side of the differential oracle:
// the abstract interpretation plus the triaged site table, computed once and
// reused across fuzz iterations.
type appStatic struct {
	app      *apps.App
	analysis *absint.Analysis
	sites    map[string]discover.Site // alloc sites by name
}

var (
	staticOnce sync.Once
	staticApps []appStatic
)

// staticTable analyzes every registered application once.
func staticTable(t testing.TB) []appStatic {
	staticOnce.Do(func() {
		for _, a := range apps.All() {
			an, err := absint.Analyze(a.Program)
			if err != nil {
				t.Fatalf("%s: %v", a.Short, err)
			}
			triaged, err := a.Triaged()
			if err != nil {
				t.Fatalf("%s: %v", a.Short, err)
			}
			sites := make(map[string]discover.Site)
			for _, s := range triaged {
				if s.Kind == discover.KindAlloc {
					sites[s.Name] = s
				}
			}
			staticApps = append(staticApps, appStatic{app: a, analysis: an, sites: sites})
		}
	})
	return staticApps
}

// FuzzAbsintSoundness is the differential soundness oracle for the abstract
// interpreter: run a benchmark application concretely on fuzzed input bytes
// and assert that every dynamically observed allocation size lies inside the
// static interval/known-bits value computed for that site — and that no site
// the static triage called safe ever wraps at runtime.
//
// The first input byte selects the application; the rest is the guest input.
// Any divergence is a real soundness bug: the abstract domain must
// over-approximate every concrete execution, whatever the input.
func FuzzAbsintSoundness(f *testing.F) {
	table := staticTable(f)
	for i, as := range table {
		f.Add(append([]byte{byte(i)}, as.app.Format.Seed...))
		// Truncated and empty guest inputs exercise the InLen-guarded paths.
		f.Add(append([]byte{byte(i)}, as.app.Format.Seed[:len(as.app.Format.Seed)/2]...))
		f.Add([]byte{byte(i)})
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		as := table[int(data[0])%len(table)]
		input := data[1:]
		out := interp.Run(as.app.Program, input, interp.Options{Fuel: 2_000_000})
		for _, ev := range out.Allocs {
			site, ok := as.sites[ev.Site]
			if !ok {
				// Discovery deliberately enumerates only allocations with
				// statically tainted sizes; constant-size allocs (e.g. fixed
				// staging buffers) have no triage entry to check against.
				continue
			}
			v, ok := as.analysis.ValueAt(site.Func, site.Path+".size")
			if !ok {
				t.Fatalf("%s: site %s executed dynamically but statically unreachable", as.app.Short, ev.Site)
			}
			if err := v.Contains(lang.Width(ev.Width), ev.Size, ev.Wrapped); err != nil {
				t.Fatalf("%s: site %s concrete size escapes static value: %v", as.app.Short, ev.Site, err)
			}
			if site.Triage == discover.TriageSafe && ev.Wrapped {
				t.Fatalf("%s: site %s triaged safe but wrapped dynamically (size=%d)", as.app.Short, ev.Site, ev.Size)
			}
		}
	})
}
