package absint

import "diode/internal/discover"

// TriageSites returns a copy of sites annotated with the static triage
// verdict and bounds. A site is safe when either pass proves its value
// never carries the wrapped flag (or never executes at all); must-overflow
// when the guarded pass proves the flag set on every execution reaching it;
// unknown otherwise.
//
// Soundness of the safe verdict: the abstract domain over-approximates
// every concrete execution, so "safe" means no run on any input wraps at
// the site — no hunt can ever expose an overflow there. Note the converse
// is weaker than it looks: the hunt's φ∧β constraint may still be
// satisfiable at a safe site, because β over-approximates the runtime
// abort checks, so a full hunt may spell the same non-exposable outcome
// "sanity-prevented" rather than "unsatisfiable". Downstream folds of safe
// sites report unsatisfiable and mark the result pruned, recording that
// the certificate is static; the invariant a pruned verdict carries is
// "not exposable", pinned by the harness prune-parity test.
func (a *Analysis) TriageSites(sites []discover.Site) []discover.Site {
	out := make([]discover.Site, len(sites))
	copy(out, sites)
	for i := range out {
		s := &out[i]
		path := s.Path
		if s.Kind == discover.KindAlloc {
			// The triaged value of an alloc site is its size expression.
			path += ".size"
		}
		vG, okG := a.ValueAt(s.Func, path)
		vU, okU := a.ValueAtNoGuards(s.Func, path)
		if okG {
			b := discover.Bounds{W: vG.W, Lo: vG.Lo, Hi: vG.Hi}
			s.Bounds = &b
		}
		safeNoGuards := !okU || !vU.MayWrap
		switch {
		case safeNoGuards || !okG || !vG.MayWrap:
			s.Triage = discover.TriageSafe
			s.SafeNoGuards = safeNoGuards
		case vG.MustWrap:
			s.Triage = discover.TriageMustOverflow
		default:
			s.Triage = discover.TriageUnknown
		}
	}
	return out
}
