// Package absint implements a sound abstract interpreter over the finalized
// lang AST: for every expression and program point it computes a product
// domain of unsigned intervals × known-bits, plus the interpreter's sticky
// wrapped flag in may/must form. Tops are seeded from In(...) byte widths,
// branch guards meet the state on each side of a conditional, While loop
// heads widen after a fixed number of join iterations, and procedure calls
// go through joined parameter/return summaries — so the fixpoint is
// deterministic and terminates for any program.
//
// The triage layer on top (TriageSites) classifies every discovered Site:
// a site whose abstract value can never carry the wrapped flag is provably
// safe (the dynamic hunt's target constraint is unsatisfiable for any seed
// path), a site whose value always carries it must overflow, and the rest
// stay unknown and are hunted dynamically as before.
package absint

import (
	"fmt"
	"math/bits"

	"diode/internal/lang"
)

// Version identifies the abstract-interpretation algorithm revision. It
// participates in dispatch job keys (keyVersion 3) so results cached under
// an older triage pass miss cleanly instead of aliasing when the domain or
// transfer functions change.
const Version = "1"

// Value is the abstract value of one expression: the product of an unsigned
// interval [Lo, Hi] and a known-bits mask, plus the wrapped-flag component
// (the interpreter's sticky overflow bit) and an unreachability flag.
//
// Concretization: a concrete interp value {v, w, wrapped} is described by a
// Value when the Value is not Bot, the widths agree (W 0 matches any
// width), Lo ≤ v ≤ Hi, v&KnownMask == KnownVal, wrapped implies MayWrap,
// and MustWrap implies wrapped. Every transfer function over-approximates
// the matching concrete operator in interp (binopVal, unop, convert), so
// the relation is preserved by induction; FuzzAbsintSoundness pins it
// differentially against the threaded Machine.
type Value struct {
	// W is the operand width in bits (8/16/32/64); 0 means the width is
	// unknown (top over all widths, e.g. after a memory load).
	W lang.Width
	// Lo and Hi bound the value as an unsigned integer, inclusive.
	Lo, Hi uint64
	// KnownMask marks bits whose value is known; on those bits the value
	// equals KnownVal.
	KnownMask, KnownVal uint64
	// MayWrap reports that the value's sticky wrapped flag may be set;
	// MustWrap that it is set on every execution reaching this point.
	MayWrap, MustWrap bool
	// Bot marks the empty value (no execution produces one here).
	Bot bool
}

// Mask returns the all-ones value of width w; width 0 (unknown) masks
// nothing away.
func Mask(w lang.Width) uint64 {
	if w == 0 || w >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << w) - 1
}

// Top returns the full-range value of width w with an unknown wrapped flag.
func Top(w lang.Width) Value { return Value{W: w, Hi: Mask(w), MayWrap: true} }

// anyTop is the top over all widths — the value of a memory load, whose
// stored cell may have any width and a set wrapped flag.
func anyTop() Value { return Value{W: 0, Hi: ^uint64(0), MayWrap: true} }

// Const returns the singleton abstract value of an unwrapped constant.
func Const(w lang.Width, v uint64) Value {
	v &= Mask(w)
	return Value{W: w, Lo: v, Hi: v, KnownMask: Mask(w), KnownVal: v}
}

// Range returns the interval [lo, hi] of width w with no wrapped flag and
// no known bits beyond those the interval itself implies.
func Range(w lang.Width, lo, hi uint64) Value {
	return Value{W: w, Lo: lo, Hi: hi}.norm()
}

func bottom() Value { return Value{Bot: true} }

// norm reconciles the interval and known-bits components: known bits bound
// the interval, the interval's shared high bits become known, and an empty
// intersection collapses to Bot. norm never changes the concretization
// except to shrink it toward the true value set.
func (v Value) norm() Value {
	if v.Bot {
		return bottom()
	}
	m := Mask(v.W)
	v.KnownMask &= m
	v.KnownVal &= v.KnownMask
	// Known bits bound the interval: unknown bits at 0 give the minimum,
	// at 1 the maximum.
	if minKB := v.KnownVal; v.Lo < minKB {
		v.Lo = minKB
	}
	if maxKB := v.KnownVal | (m &^ v.KnownMask); v.Hi > maxKB {
		v.Hi = maxKB
	}
	if v.Lo > v.Hi {
		return bottom()
	}
	// Shared high bits of Lo and Hi are shared by every value in between.
	diff := v.Lo ^ v.Hi
	hm := m
	if diff != 0 {
		hm = m &^ ((uint64(1) << bits.Len64(diff)) - 1)
	}
	if (v.Lo^v.KnownVal)&hm&v.KnownMask != 0 {
		return bottom()
	}
	v.KnownVal = (v.KnownVal &^ hm) | (v.Lo & hm)
	v.KnownMask |= hm
	v.KnownVal &= v.KnownMask
	if v.MustWrap {
		v.MayWrap = true
	}
	return v
}

// Join returns the least upper bound: the union of both concretizations.
func Join(a, b Value) Value {
	if a.Bot {
		return b
	}
	if b.Bot {
		return a
	}
	out := Value{MayWrap: a.MayWrap || b.MayWrap, MustWrap: a.MustWrap && b.MustWrap}
	if a.W != b.W {
		out.W = 0
		out.Hi = ^uint64(0)
		return out
	}
	out.W = a.W
	out.Lo = min(a.Lo, b.Lo)
	out.Hi = max(a.Hi, b.Hi)
	out.KnownMask = a.KnownMask & b.KnownMask &^ (a.KnownVal ^ b.KnownVal)
	out.KnownVal = a.KnownVal & out.KnownMask
	return out.norm()
}

// Widen is Join with acceleration: any interval growth jumps straight to
// the width's extreme, so chains of widened joins reach a fixpoint after a
// bounded number of steps regardless of the loop's arithmetic.
func Widen(old, next Value) Value {
	j := Join(old, next)
	if j == old {
		return old
	}
	if !old.Bot && j.W == old.W {
		if j.Lo < old.Lo {
			j.Lo = 0
		}
		if j.Hi > old.Hi {
			j.Hi = Mask(j.W)
		}
	}
	return j.norm()
}

// meet intersects v with the value constraint c (interval and known bits
// only — c carries no wrapped-flag information, so v's flags survive).
// An empty intersection returns Bot.
func (v Value) meet(c Value) Value {
	if v.Bot || c.Bot {
		return bottom()
	}
	if c.W != 0 && v.W != 0 && c.W != v.W {
		return v // width mismatch: the guard cannot constrain this value
	}
	if v.Lo < c.Lo {
		v.Lo = c.Lo
	}
	if v.Hi > c.Hi {
		v.Hi = c.Hi
	}
	if (v.KnownVal^c.KnownVal)&(v.KnownMask&c.KnownMask) != 0 {
		return bottom()
	}
	v.KnownVal |= c.KnownVal & c.KnownMask
	v.KnownMask |= c.KnownMask
	return v.norm()
}

// Contains checks the concretization relation against one observed runtime
// value; a non-nil error describes the soundness violation.
func (v Value) Contains(w lang.Width, x uint64, wrapped bool) error {
	if v.Bot {
		return fmt.Errorf("value %d observed at a point the analysis proved unreachable", x)
	}
	if v.W != 0 && v.W != w {
		return fmt.Errorf("runtime width %d, static width %d", w, v.W)
	}
	if x < v.Lo || x > v.Hi {
		return fmt.Errorf("value %d outside static interval [%d, %d]", x, v.Lo, v.Hi)
	}
	if x&v.KnownMask != v.KnownVal {
		return fmt.Errorf("value %#x contradicts known bits %#x=%#x", x, v.KnownMask, v.KnownVal)
	}
	if wrapped && !v.MayWrap {
		return fmt.Errorf("value %d wrapped but the analysis proved it cannot", x)
	}
	if v.MustWrap && !wrapped {
		return fmt.Errorf("value %d did not wrap but the analysis proved it must", x)
	}
	return nil
}
