package absint

import (
	"testing"

	"diode/internal/lang"
)

// TestBinOpTransfer pins the wrap semantics of the arithmetic transfer
// functions against the interpreter's concrete rules: carry out on add,
// borrow on sub, ideal-product overflow on mul, plus sticky flag
// propagation and the division-by-zero conventions.
func TestBinOpTransfer(t *testing.T) {
	u32 := func(lo, hi uint64) Value { return Range(32, lo, hi) }
	tests := []struct {
		name     string
		op       lang.BinOp
		a, b     Value
		lo, hi   uint64
		may, mst bool
	}{
		{"add/no-wrap", lang.OpAdd, u32(0, 10), u32(0, 20), 0, 30, false, false},
		{"add/may-wrap", lang.OpAdd, u32(0, 0xffff_ffff), u32(0, 1), 0, 0xffff_ffff, true, false},
		{"add/must-wrap", lang.OpAdd, Const(32, 0xffff_ffff), u32(1, 2), 0, 1, true, true},
		{"sub/no-borrow", lang.OpSub, u32(100, 200), u32(0, 50), 50, 200, false, false},
		{"sub/may-borrow", lang.OpSub, u32(0, 100), u32(0, 50), 0, 0xffff_ffff, true, false},
		{"sub/must-borrow", lang.OpSub, Const(32, 0), u32(1, 1), 0xffff_ffff, 0xffff_ffff, true, true},
		{"mul/no-wrap", lang.OpMul, u32(0, 0xffff), u32(0, 0xffff), 0, 0xfffe0001, false, false},
		{"mul/may-wrap", lang.OpMul, u32(0, 0x1_0000), u32(0, 0x1_0000), 0, 0xffff_ffff, true, false},
		{"mul/must-wrap", lang.OpMul, Const(32, 0x1_0000), Const(32, 0x1_0000), 0, 0xffff_ffff, true, true},
		{"udiv/by-zero", lang.OpUDiv, u32(10, 20), Const(32, 0), 0xffff_ffff, 0xffff_ffff, false, false},
		{"udiv/maybe-zero", lang.OpUDiv, u32(100, 100), u32(0, 10), 10, 0xffff_ffff, false, false},
		{"urem/by-zero-is-dividend", lang.OpURem, u32(10, 20), Const(32, 0), 10, 20, false, false},
		{"urem/bounded", lang.OpURem, u32(0, 0xffff_ffff), u32(1, 16), 0, 15, false, false},
		// Sticky flag propagation: an already-wrapped operand taints the
		// result even when the operation itself cannot wrap.
		{"add/sticky-flag", lang.OpAdd, u32(0, 1).withFlags(true, true), u32(0, 1), 0, 2, true, true},
		{"and/clears-wrapless", lang.OpAnd, u32(0, 0xffff_ffff), Const(32, 0xff), 0, 0xff, false, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := binOp(tc.op, tc.a, tc.b)
			if got.Bot {
				t.Fatalf("%s: unexpected bottom", tc.name)
			}
			if got.Lo != tc.lo || got.Hi != tc.hi {
				t.Errorf("%s: interval [%d, %d], want [%d, %d]", tc.name, got.Lo, got.Hi, tc.lo, tc.hi)
			}
			if got.MayWrap != tc.may || got.MustWrap != tc.mst {
				t.Errorf("%s: may/must = %v/%v, want %v/%v", tc.name, got.MayWrap, got.MustWrap, tc.may, tc.mst)
			}
		})
	}
}

// TestBinOpWidthMismatch pins that mismatched operand widths yield bottom
// (the interpreter kills such runs, so no concrete value exists) and that an
// unknown width degrades to any-width top while keeping flag propagation.
func TestBinOpWidthMismatch(t *testing.T) {
	if got := binOp(lang.OpAdd, Range(32, 0, 1), Range(16, 0, 1)); !got.Bot {
		t.Errorf("width mismatch: got %+v, want bottom", got)
	}
	got := binOp(lang.OpAdd, anyTop(), Range(32, 0, 1).withFlags(true, true))
	if got.Bot || got.W != 0 || !got.MayWrap || !got.MustWrap {
		t.Errorf("unknown width: got %+v, want any-top with must-wrap", got)
	}
}

// TestWidenConvergence pins the widening policy: a loop-shaped chain of
// joins reaches a fixpoint in a bounded number of steps (interval growth
// jumps to the width extreme instead of creeping), and widening with a
// value already covered is the identity.
func TestWidenConvergence(t *testing.T) {
	// Abstract loop: x = 0; while (...) x = x + 3 — each iteration's join
	// grows the interval, so plain joins would take 2^32/3 steps. Widening
	// jumps the interval to the width extreme, but the known-bits component
	// still narrows the result, releasing one known-zero high bit per round:
	// convergence is O(width) steps, not O(1) — and crucially not O(2^width).
	v := Const(32, 0)
	steps := 0
	for {
		next := binOp(lang.OpAdd, v, Const(32, 3))
		w := Widen(v, Join(v, next))
		if w == v {
			break
		}
		v = w
		if steps++; steps > 64 {
			t.Fatalf("widening did not converge after %d steps: %+v", steps, v)
		}
	}
	if v.Lo != 0 || v.Hi != Mask(32) {
		t.Errorf("loop fixpoint [%d, %d], want [0, %d]", v.Lo, v.Hi, Mask(32))
	}
	// Identity case: no growth means no widening.
	stable := Range(32, 5, 10)
	if got := Widen(stable, Range(32, 6, 9)); got != stable {
		t.Errorf("widen of covered value changed it: %+v", got)
	}
	// The wrapped flag joins monotonically under widening too.
	flagged := Widen(Range(32, 0, 1), Range(32, 0, 1).withFlags(true, false))
	if !flagged.MayWrap {
		t.Error("widening dropped the may-wrap flag")
	}
}

// TestGuardMeets pins the branch-refinement rules: a comparison guard
// narrows both operand intervals, an impossible guard collapses to bottom,
// and meet intersects known bits soundly.
func TestGuardMeets(t *testing.T) {
	top := Range(32, 0, Mask(32))
	tests := []struct {
		name     string
		op       lang.CmpOp
		a, b     Value
		aLo, aHi uint64
		bLo, bHi uint64
		bothBot  bool
	}{
		{"ult/narrows-both", lang.CmpUlt, top, Range(32, 0, 100), 0, 99, 1, 100, false},
		{"ule/narrows", lang.CmpUle, top, Const(32, 64), 0, 64, 64, 64, false},
		{"ugt/narrows", lang.CmpUgt, top, Const(32, 10), 11, Mask(32), 10, 10, false},
		{"uge/narrows", lang.CmpUge, Range(32, 0, 50), Const(32, 20), 20, 50, 20, 20, false},
		{"eq/becomes-constant", lang.CmpEq, top, Const(32, 7), 7, 7, 7, 7, false},
		{"ult/impossible", lang.CmpUlt, top, Const(32, 0), 0, 0, 0, 0, true},
		{"ne/singleton-endpoint", lang.CmpNe, Range(32, 0, 10), Const(32, 0), 1, 10, 0, 0, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			ca, cb := refineBounds(tc.op, tc.a, tc.b)
			if tc.bothBot {
				if !ca.Bot || !cb.Bot {
					t.Fatalf("%s: want bottom constraints, got %+v / %+v", tc.name, ca, cb)
				}
				return
			}
			ma, mb := tc.a.meet(ca), tc.b.meet(cb)
			if ma.Lo != tc.aLo || ma.Hi != tc.aHi {
				t.Errorf("%s: lhs meets to [%d, %d], want [%d, %d]", tc.name, ma.Lo, ma.Hi, tc.aLo, tc.aHi)
			}
			if mb.Lo != tc.bLo || mb.Hi != tc.bHi {
				t.Errorf("%s: rhs meets to [%d, %d], want [%d, %d]", tc.name, mb.Lo, mb.Hi, tc.bLo, tc.bHi)
			}
		})
	}
	// Known-bits meet: contradictory known bits are an empty intersection.
	a := Value{W: 8, Hi: 0xff, KnownMask: 1, KnownVal: 1}.norm()
	if got := a.meet(Value{W: 8, Hi: 0xff, KnownMask: 1, KnownVal: 0}); !got.Bot {
		t.Errorf("contradictory known bits met to %+v, want bottom", got)
	}
	// Flags survive a meet (guards constrain values, not wrap history).
	fl := Range(32, 0, 100).withFlags(true, false)
	if got := fl.meet(Range(32, 0, 10)); !got.MayWrap || got.Hi != 10 {
		t.Errorf("meet dropped flags or misbounded: %+v", got)
	}
}
