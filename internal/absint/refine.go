package absint

import (
	"strings"

	"diode/internal/lang"
)

// refineBool meets the state with the assumption that b evaluates to want.
// Only conjunctions of comparisons refine (disjunctions taken true, or
// conjunctions taken false, admit too many shapes); everything unhandled is
// a sound no-op.
func (z *interpreter) refineBool(f *lang.Func, st *state, b lang.BoolExpr, want bool) {
	if st.bot {
		return
	}
	switch x := b.(type) {
	case lang.BoolLit:
		if x.V != want {
			st.bot = true
		}
	case lang.NotE:
		z.refineBool(f, st, x.A, !want)
	case lang.AndE:
		if want {
			z.refineBool(f, st, x.A, true)
			z.refineBool(f, st, x.B, true)
		}
	case lang.OrE:
		if !want {
			z.refineBool(f, st, x.A, false)
			z.refineBool(f, st, x.B, false)
		}
	case lang.Cmp:
		z.refineCmp(f, st, x, want)
	}
}

func (z *interpreter) refineCmp(f *lang.Func, st *state, x lang.Cmp, want bool) {
	op := x.Op
	if !want {
		op = negateCmp(op)
	}
	va := z.eval(f, st, x.A, "", "", false)
	vb := z.eval(f, st, x.B, "", "", false)
	if va.Bot || vb.Bot {
		st.bot = true
		return
	}
	if va.W == 0 || va.W != vb.W {
		return
	}
	// Signed comparisons refine only when both sides are provably
	// non-negative, where they coincide with their unsigned counterparts.
	switch op {
	case lang.CmpSlt, lang.CmpSle, lang.CmpSgt, lang.CmpSge:
		half := uint64(1) << (va.W - 1)
		if va.Hi >= half || vb.Hi >= half {
			return
		}
		op -= lang.CmpSlt - lang.CmpUlt
	}
	// The mask test (e & m) == k pins known bits of e.
	if op == lang.CmpEq {
		if bin, ok := x.A.(lang.Bin); ok && bin.Op == lang.OpAnd {
			if mlit, ok := bin.B.(lang.Lit); ok {
				if klit, ok := x.B.(lang.Lit); ok {
					km := mlit.V & Mask(mlit.W)
					z.applyRefined(f, st, bin.A, Value{
						W: mlit.W, Hi: Mask(mlit.W),
						KnownMask: km, KnownVal: klit.V & km,
					}.norm())
				}
			}
		}
	}
	ca, cb := refineBounds(op, va, vb)
	z.applyRefined(f, st, x.A, ca)
	z.applyRefined(f, st, x.B, cb)
}

func negateCmp(op lang.CmpOp) lang.CmpOp {
	switch op {
	case lang.CmpEq:
		return lang.CmpNe
	case lang.CmpNe:
		return lang.CmpEq
	case lang.CmpUlt:
		return lang.CmpUge
	case lang.CmpUle:
		return lang.CmpUgt
	case lang.CmpUgt:
		return lang.CmpUle
	case lang.CmpUge:
		return lang.CmpUlt
	case lang.CmpSlt:
		return lang.CmpSge
	case lang.CmpSle:
		return lang.CmpSgt
	case lang.CmpSgt:
		return lang.CmpSle
	default: // CmpSge
		return lang.CmpSlt
	}
}

// refineBounds turns `a op b` (with operand values va, vb of equal known
// width) into interval/known-bits constraints on each side.
func refineBounds(op lang.CmpOp, va, vb Value) (ca, cb Value) {
	m := Mask(va.W)
	ca = Value{W: va.W, Hi: m}
	cb = Value{W: vb.W, Hi: m}
	switch op {
	case lang.CmpEq:
		ca.Lo, ca.Hi = vb.Lo, vb.Hi
		ca.KnownMask, ca.KnownVal = vb.KnownMask, vb.KnownVal
		cb.Lo, cb.Hi = va.Lo, va.Hi
		cb.KnownMask, cb.KnownVal = va.KnownMask, va.KnownVal
	case lang.CmpNe:
		// Only a singleton on one side shrinks the other side, and only at
		// its endpoints.
		if vb.Lo == vb.Hi {
			if va.Lo == va.Hi && va.Lo == vb.Lo {
				return bottom(), bottom()
			}
			if vb.Lo == va.Lo {
				ca.Lo = va.Lo + 1
			}
			if vb.Lo == va.Hi {
				ca.Hi = va.Hi - 1
			}
		}
		if va.Lo == va.Hi && vb.Lo < vb.Hi {
			if va.Lo == vb.Lo {
				cb.Lo = vb.Lo + 1
			}
			if va.Lo == vb.Hi {
				cb.Hi = vb.Hi - 1
			}
		}
	case lang.CmpUlt:
		if vb.Hi == 0 || va.Lo == m {
			return bottom(), bottom()
		}
		ca.Hi = vb.Hi - 1
		cb.Lo = va.Lo + 1
	case lang.CmpUle:
		ca.Hi = vb.Hi
		cb.Lo = va.Lo
	case lang.CmpUgt:
		if vb.Lo == m || va.Hi == 0 {
			return bottom(), bottom()
		}
		ca.Lo = vb.Lo + 1
		cb.Hi = va.Hi - 1
	case lang.CmpUge:
		ca.Lo = vb.Lo
		cb.Hi = va.Hi
	}
	return ca.norm(), cb.norm()
}

// applyRefined meets a constraint into the storage location behind an
// expression: variables directly, and through value-preserving widening
// conversions (where the inner value equals the outer one).
func (z *interpreter) applyRefined(f *lang.Func, st *state, e lang.Expr, c Value) {
	if st.bot {
		return
	}
	if c.Bot {
		st.bot = true
		return
	}
	switch t := e.(type) {
	case lang.VarRef:
		if strings.HasPrefix(t.Name, "g_") {
			return // globals are flow-insensitive; no local meet
		}
		cur, ok := st.vars[t.Name]
		if !ok {
			return
		}
		nv := cur.meet(c)
		if nv.Bot {
			st.bot = true
			return
		}
		st.vars[t.Name] = nv
	case lang.Cvt:
		inner := z.eval(f, st, t.A, "", "", false)
		if inner.Bot || inner.W == 0 || t.W < inner.W {
			return
		}
		if t.Signed && inner.Hi >= uint64(1)<<(inner.W-1) {
			return // sign extension may change the value
		}
		im := Mask(inner.W)
		// The outer value is exactly the inner one: drop the constraint's
		// bits above the inner width and clamp the interval.
		ic := Value{
			W: inner.W, Lo: c.Lo, Hi: min(c.Hi, im),
			KnownMask: c.KnownMask & im, KnownVal: c.KnownVal & im,
		}
		if c.Lo > im {
			ic = bottom()
		}
		z.applyRefined(f, st, t.A, ic.norm())
	}
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
