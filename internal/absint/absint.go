package absint

import (
	"fmt"
	"strconv"
	"strings"

	"diode/internal/lang"
)

// Analysis is the result of running the abstract interpreter over one
// program: per-point abstract values for the guarded pass (branch-condition
// meets applied at If/While guards) and the unguarded pass (plain joins of
// both branch arms), keyed by function name and node path. The unguarded
// pass proves the stronger property — a value that cannot wrap regardless
// of which guards held — which is what makes a fold to "unsatisfiable"
// sound for any seed path.
type Analysis struct {
	guarded, unguarded map[string]Value
}

func pointKey(fn, path string) string { return fn + "\x00" + path }

// Analyze runs both fixpoints over the program (finalizing it first if
// needed) and returns the recorded per-point values. The analysis is
// deterministic: functions iterate in sorted-name order and every join is
// order-independent.
func Analyze(p *lang.Program) (*Analysis, error) {
	if err := p.Finalize(); err != nil {
		return nil, err
	}
	g, err := run(p, true)
	if err != nil {
		return nil, err
	}
	u, err := run(p, false)
	if err != nil {
		return nil, err
	}
	return &Analysis{guarded: g, unguarded: u}, nil
}

// ValueAt returns the guarded-pass abstract value recorded at a node path
// (the discover vocabulary: statement path extended with expression
// segments, e.g. "s3.size.a"). ok is false when no execution reaches the
// point — vacuously safe, since no concrete value ever exists there.
func (a *Analysis) ValueAt(fn, path string) (Value, bool) {
	v, ok := a.guarded[pointKey(fn, path)]
	return v, ok && !v.Bot
}

// ValueAtNoGuards is ValueAt for the unguarded pass, whose joins ignore
// branch conditions entirely.
func (a *Analysis) ValueAtNoGuards(fn, path string) (Value, bool) {
	v, ok := a.unguarded[pointKey(fn, path)]
	return v, ok && !v.Bot
}

const (
	// summaryWidenAfter bounds how many plain joins a parameter/return/
	// global summary absorbs before further growth widens to the extremes.
	summaryWidenAfter = 3
	// loopWidenAfter bounds the plain join iterations at a While head.
	loopWidenAfter = 2
	// maxLoopIters and maxRounds are safety nets; widening guarantees
	// convergence well below them.
	maxLoopIters = 200
	maxRounds    = 1000
)

// interpreter holds one fixpoint computation: flow-sensitive local states,
// flow-insensitive summaries for globals, parameters and returns, and the
// recorded per-point values of the final pass.
type interpreter struct {
	p      *lang.Program
	refine bool // apply branch-guard meets (the guarded pass)
	names  []string

	globals map[string]Value   // flow-insensitive join of all writes
	params  map[string][]Value // per function, joined across call sites
	rets    map[string]Value   // joined return values
	reached map[string]bool

	counts  map[string]int // per-summary widening counters
	changed bool

	recording bool
	points    map[string]Value
}

func run(p *lang.Program, refine bool) (map[string]Value, error) {
	z := &interpreter{
		p:       p,
		refine:  refine,
		globals: make(map[string]Value),
		params:  make(map[string][]Value),
		rets:    make(map[string]Value),
		reached: map[string]bool{"main": true},
		counts:  make(map[string]int),
		points:  make(map[string]Value),
	}
	for n := range p.Funcs {
		z.names = append(z.names, n)
	}
	sortStrings(z.names)
	for round := 0; ; round++ {
		if round > maxRounds {
			return nil, fmt.Errorf("absint: fixpoint did not converge after %d rounds", maxRounds)
		}
		z.changed = false
		if err := z.pass(); err != nil {
			return nil, err
		}
		if !z.changed {
			break
		}
	}
	// One more pass at the fixpoint records the per-point values.
	z.recording = true
	if err := z.pass(); err != nil {
		return nil, err
	}
	return z.points, nil
}

func (z *interpreter) pass() error {
	for _, n := range z.names {
		if z.reached[n] {
			if err := z.function(n); err != nil {
				return err
			}
		}
	}
	return nil
}

func (z *interpreter) function(name string) error {
	f := z.p.Funcs[name]
	st := &state{vars: make(map[string]Value, len(f.Params)+8)}
	ps := z.params[name]
	for i, pn := range f.Params {
		v := bottom()
		if i < len(ps) {
			v = ps[i]
		}
		st.vars[pn] = v
	}
	if err := z.block(f, f.Body, st, ""); err != nil {
		return err
	}
	if !st.bot {
		// Falling off the end of a procedure returns the zero 32-bit
		// value (interp's call fallthrough).
		z.joinRet(name, Const(32, 0))
	}
	return nil
}

// state is the abstract store of one function activation: local variables
// and a reachability flag. A variable absent from vars was never assigned
// on any path — a concrete read there kills the run, so reads yield Bot.
type state struct {
	vars map[string]Value
	bot  bool
}

func (s *state) clone() *state {
	c := &state{vars: make(map[string]Value, len(s.vars)), bot: s.bot}
	for k, v := range s.vars {
		c.vars[k] = v
	}
	return c
}

func joinStates(a, b *state) *state {
	if a.bot {
		return b.clone()
	}
	if b.bot {
		return a.clone()
	}
	out := &state{vars: make(map[string]Value, len(a.vars))}
	for k, va := range a.vars {
		if vb, ok := b.vars[k]; ok {
			out.vars[k] = Join(va, vb)
		} else {
			out.vars[k] = va
		}
	}
	for k, vb := range b.vars {
		if _, ok := a.vars[k]; !ok {
			out.vars[k] = vb
		}
	}
	return out
}

func widenStates(old, next *state) *state {
	if old.bot || next.bot {
		return joinStates(old, next)
	}
	out := &state{vars: make(map[string]Value, len(next.vars))}
	for k, nv := range next.vars {
		if ov, ok := old.vars[k]; ok {
			out.vars[k] = Widen(ov, nv)
		} else {
			out.vars[k] = nv
		}
	}
	return out
}

func statesEqual(a, b *state) bool {
	if a.bot != b.bot {
		return false
	}
	if a.bot {
		return true
	}
	if len(a.vars) != len(b.vars) {
		return false
	}
	for k, av := range a.vars {
		if bv, ok := b.vars[k]; !ok || av != bv {
			return false
		}
	}
	return true
}

func (z *interpreter) getVar(st *state, name string) Value {
	if strings.HasPrefix(name, "g_") {
		if v, ok := z.globals[name]; ok {
			return v
		}
		return bottom() // never written anywhere: a concrete read dies
	}
	if v, ok := st.vars[name]; ok {
		return v
	}
	return bottom() // never assigned on any path: a concrete read dies
}

func (z *interpreter) setVar(st *state, name string, v Value) {
	if strings.HasPrefix(name, "g_") {
		// Globals are flow-insensitive: one program-wide join of every
		// write, so cross-procedure flows need no in/out plumbing.
		old := z.globals[name]
		if _, ok := z.globals[name]; !ok {
			old = bottom()
		}
		if next, changed := z.joinVal(old, "g\x00"+name, v); changed {
			z.globals[name] = next
		}
		return
	}
	st.vars[name] = v
}

// joinVal joins v into a summary value, switching to widening once the
// summary has changed summaryWidenAfter times, and flags the fixpoint.
func (z *interpreter) joinVal(old Value, key string, v Value) (Value, bool) {
	next := Join(old, v)
	if z.counts[key] >= summaryWidenAfter {
		next = Widen(old, v)
	}
	if next == old {
		return old, false
	}
	z.counts[key]++
	z.changed = true
	return next, true
}

func (z *interpreter) joinParam(fn string, i int, v Value) {
	ps := z.params[fn]
	if ps == nil {
		ps = make([]Value, len(z.p.Funcs[fn].Params))
		for j := range ps {
			ps[j] = bottom()
		}
		z.params[fn] = ps
	}
	if next, changed := z.joinVal(ps[i], "p\x00"+fn+"\x00"+strconv.Itoa(i), v); changed {
		ps[i] = next
	}
}

func (z *interpreter) joinRet(fn string, v Value) {
	old, ok := z.rets[fn]
	if !ok {
		old = bottom()
	}
	if next, changed := z.joinVal(old, "r\x00"+fn, v); changed {
		z.rets[fn] = next
	}
}

func joinPath(prefix, seg string) string {
	if prefix == "" {
		return seg
	}
	return prefix + "." + seg
}

func (z *interpreter) block(f *lang.Func, b lang.Block, st *state, prefix string) error {
	for i, s := range b {
		if st.bot {
			return nil
		}
		if err := z.stmt(f, s, st, joinPath(prefix, fmt.Sprintf("s%d", i))); err != nil {
			return err
		}
	}
	return nil
}

func (z *interpreter) stmt(f *lang.Func, s lang.Stmt, st *state, path string) error {
	switch x := s.(type) {
	case lang.Assign:
		z.setVar(st, x.Var, z.eval(f, st, x.E, path, "e", true))
	case lang.Alloc:
		z.eval(f, st, x.Size, path, "size", true)
		// The allocated pointer is an arbitrary unwrapped 64-bit address.
		z.setVar(st, x.Var, Value{W: 64, Hi: ^uint64(0)})
	case lang.Store:
		z.eval(f, st, x.Ptr, path, "ptr", true)
		z.eval(f, st, x.Off, path, "off", true)
		z.eval(f, st, x.Val, path, "val", true)
	case lang.If:
		z.evalBool(f, st, x.Cond, path, "cond", true)
		thenSt, elseSt := st.clone(), st.clone()
		if z.refine {
			z.refineBool(f, thenSt, x.Cond, true)
			z.refineBool(f, elseSt, x.Cond, false)
		}
		if err := z.block(f, x.Then, thenSt, path+".then"); err != nil {
			return err
		}
		if err := z.block(f, x.Else, elseSt, path+".else"); err != nil {
			return err
		}
		*st = *joinStates(thenSt, elseSt)
	case lang.While:
		return z.while(f, x, st, path)
	case lang.ExprStmt:
		z.eval(f, st, x.E, path, "e", true)
	case lang.Return:
		if x.E != nil {
			z.joinRet(f.Name, z.eval(f, st, x.E, path, "ret", true))
		} else {
			// A bare return yields the caller's zero 32-bit value.
			z.joinRet(f.Name, Const(32, 0))
		}
		st.bot = true
	case lang.AbortStmt:
		// The run terminates: no state flows past an abort.
		st.bot = true
	}
	return nil
}

// while iterates the loop body to a local fixpoint: plain joins at the head
// for the first loopWidenAfter rounds, widening after. The exit state is
// the head invariant, met with the negated condition in the guarded pass.
func (z *interpreter) while(f *lang.Func, x lang.While, st *state, path string) error {
	head := st.clone()
	for iter := 0; ; iter++ {
		if iter > maxLoopIters {
			return fmt.Errorf("absint: loop %s.%s did not converge", f.Name, path)
		}
		z.evalBool(f, head, x.Cond, path, "cond", true)
		body := head.clone()
		if z.refine {
			z.refineBool(f, body, x.Cond, true)
		}
		if err := z.block(f, x.Body, body, path+".body"); err != nil {
			return err
		}
		next := joinStates(head, body)
		if iter >= loopWidenAfter {
			next = widenStates(head, next)
		}
		if statesEqual(head, next) {
			break
		}
		head = next
	}
	*st = *head
	if z.refine {
		z.refineBool(f, st, x.Cond, false)
	}
	return nil
}

// eval computes the abstract value of an expression, joining call arguments
// into callee summaries as a side effect, and records the value at the
// point's discover-vocabulary path during the recording pass.
func (z *interpreter) eval(f *lang.Func, st *state, e lang.Expr, sp, ep string, rec bool) Value {
	var v Value
	switch x := e.(type) {
	case lang.Lit:
		v = Const(x.W, x.V)
	case lang.VarRef:
		v = z.getVar(st, x.Name)
	case lang.Bin:
		a := z.eval(f, st, x.A, sp, ep+".a", rec)
		b := z.eval(f, st, x.B, sp, ep+".b", rec)
		v = binOp(x.Op, a, b)
	case lang.Un:
		v = unOp(x.Neg, z.eval(f, st, x.A, sp, ep+".a", rec))
	case lang.Cvt:
		v = cvt(x.W, x.Signed, z.eval(f, st, x.A, sp, ep+".a", rec))
	case lang.InByte:
		z.eval(f, st, x.Idx, sp, ep+".idx", rec)
		// In- and out-of-range reads both yield a plain unwrapped byte.
		v = Range(8, 0, 255)
	case lang.InLen:
		v = Range(32, 0, Mask(32))
	case lang.LoadExpr:
		z.eval(f, st, x.Ptr, sp, ep+".ptr", rec)
		z.eval(f, st, x.Off, sp, ep+".off", rec)
		// Stored cells keep their width and wrapped flag verbatim.
		v = anyTop()
	case lang.CallExpr:
		for i, arg := range x.Args {
			av := z.eval(f, st, arg, sp, fmt.Sprintf("%s.%d", ep, i), rec)
			if !st.bot {
				z.joinParam(x.Fn, i, av)
			}
		}
		if !st.bot && !z.reached[x.Fn] {
			z.reached[x.Fn] = true
			z.changed = true
		}
		if rv, ok := z.rets[x.Fn]; ok {
			v = rv
		} else {
			// No summarized return yet (or the callee never returns):
			// the continuation is unreachable until one appears.
			v = bottom()
		}
	}
	if z.recording && rec && !st.bot {
		k := pointKey(f.Name, sp+"."+ep)
		if old, ok := z.points[k]; ok {
			z.points[k] = Join(old, v)
		} else {
			z.points[k] = v
		}
	}
	return v
}

// evalBool walks a boolean expression for its recording and call side
// effects, mirroring discover's emitBool path vocabulary.
func (z *interpreter) evalBool(f *lang.Func, st *state, b lang.BoolExpr, sp, ep string, rec bool) {
	switch x := b.(type) {
	case lang.Cmp:
		z.eval(f, st, x.A, sp, ep+".a", rec)
		z.eval(f, st, x.B, sp, ep+".b", rec)
	case lang.NotE:
		z.evalBool(f, st, x.A, sp, ep+".a", rec)
	case lang.AndE:
		z.evalBool(f, st, x.A, sp, ep+".a", rec)
		z.evalBool(f, st, x.B, sp, ep+".b", rec)
	case lang.OrE:
		z.evalBool(f, st, x.A, sp, ep+".a", rec)
		z.evalBool(f, st, x.B, sp, ep+".b", rec)
	}
}
