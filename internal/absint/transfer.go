package absint

import (
	"math/bits"

	"diode/internal/lang"
)

// binOp is the abstract counterpart of interp's binopVal: identical wrap
// conditions (carry out on add, borrow on sub, ideal-product overflow on
// mul, shifted-out bits on shl), identical division-by-zero results (udiv
// by 0 yields the all-ones value, urem by 0 the dividend), and the same
// sticky wrapped-flag propagation (the result's flag includes both
// operands' flags for every operator).
func binOp(op lang.BinOp, a, b Value) Value {
	if a.Bot || b.Bot {
		return bottom()
	}
	mayP := a.MayWrap || b.MayWrap
	mustP := a.MustWrap || b.MustWrap
	if a.W == 0 || b.W == 0 {
		// Unknown operand width: no interval survives, but flag
		// propagation does.
		out := anyTop()
		out.MustWrap = mustP
		return out
	}
	if a.W != b.W {
		// The interpreter rejects width mismatches (the run dies), so no
		// concrete value exists here.
		return bottom()
	}
	w := a.W
	m := Mask(w)
	out := Value{W: w, Hi: m, MayWrap: mayP, MustWrap: mustP}

	switch op {
	case lang.OpAdd:
		loSum, loCarry := bits.Add64(a.Lo, b.Lo, 0)
		hiSum, hiCarry := bits.Add64(a.Hi, b.Hi, 0)
		mayC := hiCarry != 0 || hiSum > m
		mustC := loCarry != 0 || loSum > m
		out.MayWrap = mayP || mayC
		out.MustWrap = mustP || mustC
		switch {
		case !mayC:
			out.Lo, out.Hi = loSum, hiSum
		case mustC:
			// Every sum wraps exactly once (operands < 2^w, so the ideal
			// sum is < 2^(w+1)): the masked endpoints stay ordered.
			out.Lo, out.Hi = loSum&m, hiSum&m
		}
	case lang.OpSub:
		mayB := b.Hi > a.Lo
		mustB := b.Lo > a.Hi
		out.MayWrap = mayP || mayB
		out.MustWrap = mustP || mustB
		switch {
		case !mayB:
			out.Lo, out.Hi = a.Lo-b.Hi, a.Hi-b.Lo
		case mustB:
			// Every difference borrows exactly once: masked endpoints
			// stay ordered.
			out.Lo, out.Hi = (a.Lo-b.Hi)&m, (a.Hi-b.Lo)&m
		}
	case lang.OpMul:
		hiHi, hiLo := bits.Mul64(a.Hi, b.Hi)
		loHi, loLo := bits.Mul64(a.Lo, b.Lo)
		mayC := hiHi != 0 || hiLo > m
		mustC := loHi != 0 || loLo > m
		out.MayWrap = mayP || mayC
		out.MustWrap = mustP || mustC
		if !mayC {
			out.Lo, out.Hi = loLo, hiLo
		}
	case lang.OpUDiv:
		switch {
		case b.Hi == 0:
			// Division by a certain zero yields the all-ones value.
			return Const(w, m).withFlags(mayP, mustP)
		case b.Lo == 0:
			// Zero divisor possible: join the quotient range with m.
			out.Lo, out.Hi = a.Lo/b.Hi, m
		default:
			out.Lo, out.Hi = a.Lo/b.Hi, a.Hi/b.Lo
		}
	case lang.OpURem:
		switch {
		case b.Hi == 0:
			// Modulo by a certain zero yields the dividend.
			out.Lo, out.Hi = a.Lo, a.Hi
		case b.Lo == 0:
			// Zero divisor possible (result = dividend) joined with the
			// proper remainder range [0, b.Hi-1].
			out.Lo, out.Hi = 0, a.Hi
		case a.Hi < b.Lo:
			// Dividend always below the divisor: identity.
			out.Lo, out.Hi = a.Lo, a.Hi
		default:
			out.Lo, out.Hi = 0, min(a.Hi, b.Hi-1)
		}
	case lang.OpAnd:
		kz := (a.KnownMask &^ a.KnownVal) | (b.KnownMask &^ b.KnownVal)
		ko := (a.KnownMask & a.KnownVal) & (b.KnownMask & b.KnownVal)
		out.KnownMask, out.KnownVal = kz|ko, ko
		out.Hi = min(a.Hi, b.Hi)
	case lang.OpOr:
		kz := (a.KnownMask &^ a.KnownVal) & (b.KnownMask &^ b.KnownVal)
		ko := (a.KnownMask & a.KnownVal) | (b.KnownMask & b.KnownVal)
		out.KnownMask, out.KnownVal = kz|ko, ko
		out.Lo = max(a.Lo, b.Lo)
		out.Hi = lenCap(a.Hi|b.Hi, m)
	case lang.OpXor:
		out.KnownMask = a.KnownMask & b.KnownMask
		out.KnownVal = (a.KnownVal ^ b.KnownVal) & out.KnownMask
		out.Hi = lenCap(a.Hi|b.Hi, m)
	case lang.OpShl:
		return shl(a, b, w, m, mayP, mustP)
	case lang.OpLShr:
		if b.Lo < uint64(w) {
			out.Lo = a.Lo >> b.Hi
			if b.Hi >= uint64(w) {
				out.Lo = 0 // shifts ≥ w yield 0
			}
			out.Hi = a.Hi >> b.Lo
		} else {
			out.Lo, out.Hi = 0, 0
			out.KnownMask = m
		}
		if b.Lo == b.Hi && b.Lo < uint64(w) {
			s := b.Lo
			out.KnownMask = a.KnownMask>>s | (m &^ (m >> s))
			out.KnownVal = a.KnownVal >> s
		}
	case lang.OpAShr:
		half := uint64(1) << (w - 1)
		bLo, bHi := min(b.Lo, uint64(w-1)), min(b.Hi, uint64(w-1))
		switch {
		case a.Hi < half:
			// Sign bit provably clear: behaves as a logical shift with
			// the shift amount clamped to w-1.
			out.Lo, out.Hi = a.Lo>>bHi, a.Hi>>bLo
		case a.Lo >= half:
			// Sign bit provably set: it is preserved by the shift.
			out.Lo = half
			out.KnownMask, out.KnownVal = half, half
		}
	}
	return out.norm()
}

func (v Value) withFlags(may, must bool) Value {
	v.MayWrap = v.MayWrap || may
	v.MustWrap = v.MustWrap || must
	if v.MustWrap {
		v.MayWrap = true
	}
	return v
}

// lenCap bounds a bitwise-or/xor result: it cannot exceed the all-ones
// value of the operands' joint bit length.
func lenCap(orHi, m uint64) uint64 {
	n := bits.Len64(orHi)
	if n >= 64 {
		return m
	}
	return min((uint64(1)<<n)-1, m)
}

// shl mirrors binopVal's OpShl case: shifts ≥ w yield 0 and wrap iff the
// operand was nonzero; smaller shifts wrap iff nonzero bits shift out.
func shl(a, b Value, w lang.Width, m uint64, mayP, mustP bool) Value {
	out := Value{W: w, Hi: m}
	switch {
	case b.Lo >= uint64(w):
		// Every shift amount is ≥ w: the result is exactly 0.
		out.Lo, out.Hi = 0, 0
		out.KnownMask = m
		return out.withFlags(mayP || a.Hi != 0, mustP || a.Lo > 0).norm()
	case b.Lo == b.Hi:
		s := b.Lo
		mayC := s != 0 && a.Hi>>(uint64(w)-s) != 0
		mustC := s != 0 && a.Lo>>(uint64(w)-s) != 0
		if !mayC {
			out.Lo, out.Hi = a.Lo<<s, a.Hi<<s
		}
		// Bit i of (a << s) & m is bit i-s of a (or 0 for i < s), whether
		// or not the shift wraps — so the shifted known bits always hold.
		out.KnownMask = (a.KnownMask << s & m) | (m & ((uint64(1) << s) - 1))
		out.KnownVal = a.KnownVal << s & m
		return out.withFlags(mayP || mayC, mustP || mustC).norm()
	case b.Hi < uint64(w) && a.Hi>>(uint64(w)-b.Hi) == 0:
		// Even the largest shift keeps every operand bit: no wrap, and
		// the endpoints bound the result.
		out.Lo, out.Hi = a.Lo<<b.Lo, a.Hi<<b.Hi
		out.KnownMask = m & ((uint64(1) << b.Lo) - 1)
		return out.withFlags(mayP, mustP).norm()
	default:
		if b.Lo < uint64(w) {
			out.KnownMask = m & ((uint64(1) << b.Lo) - 1)
		} else {
			out.KnownMask = m
		}
		may := a.Hi != 0 && b.Hi != 0
		return out.withFlags(mayP || may, mustP).norm()
	}
}

// unOp mirrors interp's unop: negation or bitwise not, wrapped flag
// propagated and never set.
func unOp(neg bool, a Value) Value {
	if a.Bot {
		return bottom()
	}
	if a.W == 0 {
		out := anyTop()
		out.MayWrap, out.MustWrap = a.MayWrap, a.MustWrap
		return out
	}
	m := Mask(a.W)
	out := Value{W: a.W, Hi: m, MayWrap: a.MayWrap, MustWrap: a.MustWrap}
	if neg {
		switch {
		case a.Hi == 0:
			out.Lo, out.Hi = 0, 0
		case a.Lo > 0:
			// 0 excluded: -x = 2^w - x is decreasing on [1, m].
			out.Lo, out.Hi = (-a.Hi)&m, (-a.Lo)&m
		}
	} else {
		out.Lo, out.Hi = m-a.Hi, m-a.Lo
		out.KnownMask = a.KnownMask
		out.KnownVal = ^a.KnownVal & a.KnownMask
	}
	return out.norm()
}

// cvt mirrors interp's convert: zero/sign extension on widening, masking on
// truncation, wrapped flag propagated and never set.
func cvt(w lang.Width, signed bool, a Value) Value {
	if a.Bot {
		return bottom()
	}
	if a.W == 0 {
		out := Top(w)
		out.MayWrap, out.MustWrap = a.MayWrap, a.MustWrap
		return out
	}
	if w == a.W {
		return a
	}
	m := Mask(w)
	out := Value{W: w, Hi: m, MayWrap: a.MayWrap, MustWrap: a.MustWrap}
	if w > a.W {
		am := Mask(a.W)
		if !signed || a.Hi < (uint64(1)<<(a.W-1)) {
			// Zero extension (or sign extension of provably non-negative
			// values): the value and its known bits carry over, with the
			// new high bits known zero.
			out.Lo, out.Hi = a.Lo, a.Hi
			out.KnownMask = a.KnownMask | (m &^ am)
			out.KnownVal = a.KnownVal
		} else if a.Lo >= (uint64(1) << (a.W - 1)) {
			// Sign bit provably set: extension fills the high bits with
			// ones; x ↦ x | (m &^ am) is increasing.
			out.Lo = a.Lo | (m &^ am)
			out.Hi = a.Hi | (m &^ am)
			out.KnownMask = a.KnownMask | (m &^ am)
			out.KnownVal = a.KnownVal | (m &^ am)
		}
		return out.norm()
	}
	// Truncation: low bits survive.
	out.KnownMask = a.KnownMask & m
	out.KnownVal = a.KnownVal & m
	if a.Lo>>w == a.Hi>>w {
		// The discarded high part is constant across the interval, so the
		// masked endpoints stay ordered.
		out.Lo, out.Hi = a.Lo&m, a.Hi&m
	}
	return out.norm()
}
