package interp

import (
	"diode/internal/bv"
	"diode/internal/taint"
)

// OutcomeKind classifies how an execution ended.
type OutcomeKind int

// Execution outcomes.
const (
	OutOK        OutcomeKind = iota // main returned normally
	OutRejected                     // the program aborted (sanity check rejected the input)
	OutSegv                         // simulated SIGSEGV: access far outside any block
	OutAbrt                         // simulated SIGABRT: allocator detected heap corruption
	OutFuel                         // step budget exhausted
	OutError                        // guest-program runtime error (authoring bug)
	OutCancelled                    // the run was cancelled via Options.Cancel
)

func (k OutcomeKind) String() string {
	switch k {
	case OutOK:
		return "ok"
	case OutRejected:
		return "rejected"
	case OutSegv:
		return "SIGSEGV"
	case OutAbrt:
		return "SIGABRT"
	case OutFuel:
		return "fuel-exhausted"
	case OutCancelled:
		return "cancelled"
	}
	return "runtime-error"
}

// MemErrorKind classifies memcheck findings.
type MemErrorKind int

// Memcheck error kinds.
const (
	InvalidRead MemErrorKind = iota
	InvalidWrite
)

func (k MemErrorKind) String() string {
	if k == InvalidRead {
		return "InvalidRead"
	}
	return "InvalidWrite"
}

// MemError is a memcheck finding: an access outside the bounds of the block
// it targets, attributed to the allocation site that created the block.
type MemError struct {
	Kind   MemErrorKind
	Site   string // allocation site of the accessed block
	Offset uint64 // accessed offset (≥ block size)
	Size   uint64 // block size at allocation time
}

// AllocEvent records one dynamic execution of an allocation site.
type AllocEvent struct {
	Site  string
	Seq   int        // order of this allocation in the run
	Size  uint64     // concrete size (possibly wrapped)
	Width uint8      // width of the size computation
	Sym   *bv.Term   // symbolic size expression (nil if not tracked/tainted)
	Taint *taint.Set // input-byte labels flowing into the size
	// Wrapped reports that some arithmetic step in the computation of the
	// size value wrapped around — the ground truth for "this input triggered
	// an integer overflow of the target expression at this site".
	Wrapped bool
	// BranchMark is the length of the branch trace at the moment of this
	// allocation; Branches[:BranchMark] is the path φ to this site.
	BranchMark int
}

// BranchRecord is one element of the branch condition sequence φ (§3.2): the
// symbolic constraint that holds exactly when execution takes the same
// direction this run took at the labelled conditional.
type BranchRecord struct {
	Label string
	Taken bool     // direction taken this run
	Cond  *bv.Bool // constraint for the taken direction (already negated if !Taken)
}

// Outcome is everything the engine observes from one instrumented run.
type Outcome struct {
	Kind     OutcomeKind
	AbortMsg string
	Err      error // for OutError
	Warnings []string
	Allocs   []AllocEvent
	MemErrs  []MemError
	Branches []BranchRecord // φ, recorded only in symbolic mode
	Steps    int64
}

// ErrorsAt reports whether any memory error (or fatal signal attribution) in
// the outcome involves a block allocated at the given site.
func (o *Outcome) ErrorsAt(site string) bool {
	for _, e := range o.MemErrs {
		if e.Site == site {
			return true
		}
	}
	return false
}
