package interp

import (
	"fmt"
	"sort"
	"strings"

	"diode/internal/bv"
	"diode/internal/lang"
	"diode/internal/taint"
)

// Compiled is the slot-resolved executable form of a finalized program: every
// variable reference is resolved to an integer frame slot (locals) or a
// program-wide global slot at compile time, call targets are direct function
// pointers instead of per-call map lookups, literals are pre-masked to their
// width, and branch labels sit directly on the compiled nodes. A Compiled is
// immutable after Compile returns and safe to share across any number of
// concurrent Machines — the Analyzer compiles each application once and every
// site's Hunter executes the same Compiled on a private Machine.
type Compiled struct {
	name        string
	funcs       map[string]*cFunc
	main        *cFunc
	numGlobals  int
	globalNames []string // global slot index → variable name
}

// Name returns the compiled program's name.
func (c *Compiled) Name() string { return c.name }

// cFunc is one compiled procedure.
type cFunc struct {
	name      string
	params    []slotRef // parameter binding slots (always local, in order)
	numSlots  int
	slotNames []string // local slot index → variable name (error messages)
	body      []cStmt
}

// slotRef is a resolved variable location: a local frame slot, or a global
// slot when the variable carries the "g_" program-wide prefix.
type slotRef struct {
	idx    int32
	global bool
}

// Compile flattens a finalized program into its slot-resolved executable
// form. It panics on a program that Finalize would reject (no main, calls to
// undefined functions); run Program.Finalize first.
func Compile(prog *lang.Program) *Compiled {
	c := &Compiled{
		name:  prog.Name,
		funcs: make(map[string]*cFunc, len(prog.Funcs)),
	}
	names := make([]string, 0, len(prog.Funcs))
	for n := range prog.Funcs {
		names = append(names, n)
	}
	sort.Strings(names)
	// Shells first so mutually recursive calls resolve to stable pointers.
	for _, n := range names {
		c.funcs[n] = &cFunc{name: n}
	}
	globals := map[string]int32{}
	for _, n := range names {
		src := prog.Funcs[n]
		fc := &funcCompiler{c: c, globals: globals, f: c.funcs[n], locals: map[string]int32{}}
		for _, p := range src.Params {
			// Parameters bind into local slots unconditionally, mirroring the
			// tree-walker's call semantics (a "g_"-named parameter lands in
			// the frame, where the prefix rule never reads it).
			fc.f.params = append(fc.f.params, slotRef{idx: fc.localSlot(p)})
		}
		fc.f.body = fc.block(src.Body)
		fc.f.numSlots = len(fc.f.slotNames)
	}
	c.numGlobals = len(c.globalNames)
	c.main = c.funcs["main"]
	if c.main == nil {
		panic("interp: Compile: program " + prog.Name + " has no main (not finalized?)")
	}
	return c
}

// funcCompiler compiles one procedure, interning variable names to slots.
type funcCompiler struct {
	c       *Compiled
	globals map[string]int32
	f       *cFunc
	locals  map[string]int32
}

// slot resolves a variable reference: names with the "g_" prefix share the
// program-wide global slot table, everything else is function-local.
func (fc *funcCompiler) slot(name string) slotRef {
	if strings.HasPrefix(name, "g_") {
		i, ok := fc.globals[name]
		if !ok {
			i = int32(len(fc.c.globalNames))
			fc.globals[name] = i
			fc.c.globalNames = append(fc.c.globalNames, name)
		}
		return slotRef{idx: i, global: true}
	}
	return slotRef{idx: fc.localSlot(name)}
}

func (fc *funcCompiler) localSlot(name string) int32 {
	if i, ok := fc.locals[name]; ok {
		return i
	}
	i := int32(len(fc.f.slotNames))
	fc.locals[name] = i
	fc.f.slotNames = append(fc.f.slotNames, name)
	return i
}

func (fc *funcCompiler) block(b lang.Block) []cStmt {
	out := make([]cStmt, len(b))
	for i, s := range b {
		out[i] = fc.stmt(s)
	}
	return out
}

func (fc *funcCompiler) stmt(s lang.Stmt) cStmt {
	switch st := s.(type) {
	case lang.Assign:
		e := fc.operand(st.E)
		if bin, ok := e.e.(*cBin); ok {
			// Fused assignment-of-binop: the statement's step charge joins
			// the binop's prefix in one fuel check (see cAssignBin.exec).
			return &cAssignBin{dst: fc.slot(st.Var), pre: 1 + bin.pre, bin: bin}
		}
		return &cAssign{dst: fc.slot(st.Var), e: e}
	case lang.Alloc:
		return &cAlloc{dst: fc.slot(st.Var), site: st.Site, size: fc.operand(st.Size)}
	case lang.Store:
		return &cStore{ptr: fc.operand(st.Ptr), off: fc.operand(st.Off), val: fc.operand(st.Val)}
	case lang.If:
		return &cIf{label: st.Label, cond: fc.boolExpr(st.Cond), then: fc.block(st.Then), els: fc.block(st.Else)}
	case lang.While:
		return &cWhile{label: st.Label, cond: fc.boolExpr(st.Cond), body: fc.block(st.Body)}
	case lang.ExprStmt:
		return &cExprStmt{e: fc.operand(st.E)}
	case lang.Return:
		r := &cReturn{}
		if st.E != nil {
			r.has = true
			r.e = fc.operand(st.E)
		}
		return r
	case lang.AbortStmt:
		return &cAbort{msg: st.Msg}
	case lang.WarnStmt:
		return &cWarn{msg: st.Msg}
	}
	panic(fmt.Sprintf("interp: Compile: unknown statement %T", s))
}

// operand pre-resolves an expression position: variable reads and literals —
// the overwhelmingly common operand shapes — are tagged for inline
// evaluation without an interface dispatch; everything else falls through to
// the generic compiled node.
func (fc *funcCompiler) operand(e lang.Expr) operand {
	switch x := e.(type) {
	case lang.Lit:
		return operand{kind: opLit, v: x.V & bv.Mask(x.W), w: x.W}
	case lang.VarRef:
		return operand{kind: opVar, slot: fc.slot(x.Name), name: x.Name}
	}
	return operand{kind: opGen, e: fc.expr(e)}
}

func (fc *funcCompiler) expr(e lang.Expr) cExpr {
	switch x := e.(type) {
	case lang.Lit:
		return &cLit{v: x.V & bv.Mask(x.W), w: x.W}
	case lang.VarRef:
		return &cVar{src: fc.slot(x.Name), name: x.Name}
	case lang.Bin:
		a, b := fc.operand(x.A), fc.operand(x.B)
		return &cBin{op: x.Op, pre: stepPrefix(a, b), a: a, b: b}
	case lang.Un:
		a := fc.operand(x.A)
		return &cUn{neg: x.Neg, pre: stepPrefix(a), a: a}
	case lang.Cvt:
		a := fc.operand(x.A)
		node := &cCvt{w: x.W, signed: x.Signed, pre: stepPrefix(a), a: a}
		if fused := fc.fuseLoadZX(x, node); fused != nil {
			return fused
		}
		return node
	case lang.InByte:
		idx := fc.operand(x.Idx)
		return &cInByte{pre: stepPrefix(idx), idx: idx}
	case lang.InLen:
		return cInLen{}
	case lang.LoadExpr:
		return &cLoad{ptr: fc.operand(x.Ptr), off: fc.operand(x.Off)}
	case lang.CallExpr:
		callee, ok := fc.c.funcs[x.Fn]
		if !ok {
			panic("interp: Compile: " + fc.f.name + " calls undefined function " + x.Fn)
		}
		args := make([]operand, len(x.Args))
		for i, a := range x.Args {
			args[i] = fc.operand(a)
		}
		return &cCall{fn: callee, args: args}
	}
	panic(fmt.Sprintf("interp: Compile: unknown expression %T", e))
}

func (fc *funcCompiler) boolExpr(b lang.BoolExpr) cBool {
	switch x := b.(type) {
	case lang.BoolLit:
		return cBoolLit{v: x.V}
	case lang.Cmp:
		a, b := fc.operand(x.A), fc.operand(x.B)
		return &cCmp{op: x.Op, pre: stepPrefix(a, b), a: a, b: b}
	case lang.NotE:
		return &cNot{a: fc.boolExpr(x.A)}
	case lang.AndE:
		return &cAnd{a: fc.boolExpr(x.A), b: fc.boolExpr(x.B)}
	case lang.OrE:
		return &cOr{a: fc.boolExpr(x.A), b: fc.boolExpr(x.B)}
	}
	panic(fmt.Sprintf("interp: Compile: unknown boolean expression %T", b))
}

// fuseLoadZX recognizes the guests' hottest expression shape — an unsigned
// widening of an input byte addressed by a two-leaf sum,
// ZX(w, In(Add(leaf, leaf))) — and compiles it into one superinstruction
// covering all five step charges (cvt, inbyte, add, two leaves) with a single
// fuel check. The generic node is kept as the slow path for exact sequencing
// near fuel exhaustion.
func (fc *funcCompiler) fuseLoadZX(x lang.Cvt, generic *cCvt) cExpr {
	if x.Signed {
		return nil
	}
	ib, ok := x.A.(lang.InByte)
	if !ok {
		return nil
	}
	bn, ok := ib.Idx.(lang.Bin)
	if !ok || bn.Op != lang.OpAdd {
		return nil
	}
	a, b := fc.operand(bn.A), fc.operand(bn.B)
	if a.kind == opGen || b.kind == opGen {
		return nil
	}
	return &cLoadByteZX{w: x.W, a: a, b: b, slow: generic}
}

// stepPrefix computes the contiguous run of step charges at the head of a
// node's evaluation: the node's own step plus one per *leading* leaf operand
// (variables and literals). A leaf operand's evaluation is its step charge
// followed by at most an undefined-variable error — no other effect can
// intervene — so the Machine charges the whole prefix against the fuel
// budget in a single check, falling back to exact per-step sequencing when
// fuel is about to run out (see the fused eval paths in machine.go).
func stepPrefix(ops ...operand) int64 {
	pre := int64(1)
	for i := range ops {
		if ops[i].kind == opGen {
			break
		}
		pre++
	}
	return pre
}

// --- compiled node types ---

// Compiled nodes return bare values; exceptional exits travel as vmError
// panics (see Machine).
type cStmt interface{ exec(m *Machine) }

// operand kinds: generic subexpression, inline variable read, inline literal.
const (
	opGen uint8 = iota
	opVar
	opLit
)

// operand is a pre-resolved expression position (see funcCompiler.operand).
type operand struct {
	kind uint8
	w    uint8
	slot slotRef
	v    uint64
	name string
	e    cExpr // opGen only
}

type (
	cAssign struct {
		dst slotRef
		e   operand
	}
	cAssignBin struct {
		dst slotRef
		pre int64 // assignment step + the binop's fused prefix
		bin *cBin
	}
	cAlloc struct {
		dst  slotRef
		site string
		size operand
	}
	cStore struct{ ptr, off, val operand }
	cIf    struct {
		label     string
		cond      cBool
		then, els []cStmt
	}
	cWhile struct {
		label string
		cond  cBool
		body  []cStmt
	}
	cExprStmt struct{ e operand }
	cReturn   struct {
		has bool
		e   operand
	}
	cAbort struct{ msg string }
	cWarn  struct{ msg string }
)

type cExpr interface{ eval(m *Machine) value }

type (
	cLit struct {
		v uint64
		w uint8
	}
	cVar struct {
		src  slotRef
		name string // original name, for error messages
	}
	cBin struct {
		op   lang.BinOp
		pre  int64 // steps batched into one fuel check (node + leading leaf operands)
		a, b operand
	}
	cUn struct {
		neg bool
		pre int64
		a   operand
	}
	cCvt struct {
		w      uint8
		signed bool
		pre    int64
		a      operand
	}
	cInByte struct {
		pre int64
		idx operand
	}
	// cLoadByteZX is the fused ZX(w, In(Add(leaf, leaf))) superinstruction
	// (see fuseLoadZX); slow replays the generic five-step sequence when fuel
	// is nearly exhausted.
	cLoadByteZX struct {
		w    uint8
		a, b operand
		slow *cCvt
	}
	cInLen struct{}
	cLoad  struct{ ptr, off operand }
	cCall  struct {
		fn   *cFunc
		args []operand
	}
)

type cBool interface {
	evalBool(m *Machine) (bool, *bv.Bool, *taint.Set)
}

type (
	cBoolLit struct{ v bool }
	cCmp     struct {
		op   lang.CmpOp
		pre  int64
		a, b operand
	}
	cNot struct{ a cBool }
	cAnd struct{ a, b cBool }
	cOr  struct{ a, b cBool }
)
