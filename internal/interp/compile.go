package interp

import (
	"fmt"
	"sort"
	"strings"

	"diode/internal/bv"
	"diode/internal/lang"
)

// Compiled is the direct-threaded executable form of a finalized program:
// every function body is one linear []instr stream (branch targets are
// instruction indices), every variable reference is resolved to an integer
// frame slot (locals) or a program-wide global slot, literals are pre-masked
// into per-function tables, and call targets are function indices. A Compiled
// is immutable after Compile returns and safe to share across any number of
// concurrent Machines — the Analyzer compiles each application once and every
// site's Hunter executes the same Compiled on a private Machine.
type Compiled struct {
	name        string
	funcs       map[string]*cFunc
	funcList    []*cFunc // opCall targets by index
	main        *cFunc
	numGlobals  int
	globalNames []string // global slot index → variable name
}

// Name returns the compiled program's name.
func (c *Compiled) Name() string { return c.name }

// cFunc is one compiled procedure: its instruction stream plus the constant
// pools the instructions index into.
type cFunc struct {
	name      string
	idx       int32
	params    []int32 // parameter binding slots (always local, in order)
	numSlots  int
	slotNames []string // local slot index → variable name (error messages)
	code      []instr
	lits      []value     // pre-masked literal operands (refLit)
	strs      []string    // labels, allocation sites, abort/warn messages
	loops     []storeLoop // bulk-loop descriptors (opStoreLoop)
	maxStack  int         // value-stack slots this function needs above its base
	maxBools  int         // bool-stack slots this function needs above its base
}

// Compile lowers a finalized program into its direct-threaded form. It panics
// on a program that Finalize would reject (no main, calls to undefined
// functions); run Program.Finalize first.
func Compile(prog *lang.Program) *Compiled {
	c := &Compiled{
		name:  prog.Name,
		funcs: make(map[string]*cFunc, len(prog.Funcs)),
	}
	names := make([]string, 0, len(prog.Funcs))
	for n := range prog.Funcs {
		names = append(names, n)
	}
	sort.Strings(names)
	// Shells first so mutually recursive calls resolve to stable indices.
	for i, n := range names {
		f := &cFunc{name: n, idx: int32(i)}
		c.funcs[n] = f
		c.funcList = append(c.funcList, f)
	}
	globals := map[string]int32{}
	for _, n := range names {
		src := prog.Funcs[n]
		l := &lowerer{
			c:       c,
			globals: globals,
			f:       c.funcs[n],
			locals:  map[string]int32{},
			strIdx:  map[string]uint16{},
			litIdx:  map[litKey]int32{},
		}
		for _, p := range src.Params {
			// Parameters bind into local slots unconditionally, mirroring the
			// tree-walker's call semantics (a "g_"-named parameter lands in
			// the frame, where the prefix rule never reads it).
			l.f.params = append(l.f.params, l.localSlot(p))
		}
		for _, s := range src.Body {
			l.stmt(s)
		}
		// Implicit end-of-body return. Charge 0: the tree-walker charges
		// nothing for falling off the end of a block.
		l.emit(instr{op: opRetVoid})
		l.f.numSlots = len(l.f.slotNames)
	}
	c.numGlobals = len(c.globalNames)
	c.main = c.funcs["main"]
	if c.main == nil {
		panic("interp: Compile: program " + prog.Name + " has no main (not finalized?)")
	}
	return c
}

type litKey struct {
	v uint64
	w uint8
}

// lowerer compiles one procedure into its flat instruction stream.
//
// pending is the fuel-parity accumulator: the tree-walker charges each node's
// step in pre-order, so a parent's step is counted into pending and attached
// to the charge of the *first* instruction emitted for its subtree. Every
// instruction's observable effects come after its charges, which makes the
// lumped subtraction byte-identical to the tree's step-at-a-time accounting
// (see the package comment in threaded.go).
type lowerer struct {
	c       *Compiled
	globals map[string]int32
	f       *cFunc
	locals  map[string]int32
	strIdx  map[string]uint16
	litIdx  map[litKey]int32
	pending int // pre-order step charges not yet attached to an instruction
	depth   int // current value-stack depth
	bdepth  int // current bool-stack depth
}

func (l *lowerer) emit(i instr) int32 {
	l.f.code = append(l.f.code, i)
	return int32(len(l.f.code) - 1)
}

func (l *lowerer) here() int32 { return int32(len(l.f.code)) }

func (l *lowerer) patch(idx int32) { l.f.code[idx].dst = l.here() }

func (l *lowerer) pushV() {
	l.depth++
	if l.depth > l.f.maxStack {
		l.f.maxStack = l.depth
	}
}

func (l *lowerer) pushB() {
	l.bdepth++
	if l.bdepth > l.f.maxBools {
		l.f.maxBools = l.bdepth
	}
}

// take consumes the pending pre-order charges plus extra steps of the
// instruction being emitted.
func (l *lowerer) take(extra int) uint16 {
	p := l.pending + extra
	l.pending = 0
	return uint16(p)
}

func (l *lowerer) localSlot(name string) int32 {
	if i, ok := l.locals[name]; ok {
		return i
	}
	i := int32(len(l.f.slotNames))
	l.locals[name] = i
	l.f.slotNames = append(l.f.slotNames, name)
	return i
}

// varRef resolves a variable reference: names with the "g_" prefix share the
// program-wide global slot table, everything else is function-local.
func (l *lowerer) varRef(name string) (int32, uint8) {
	if strings.HasPrefix(name, "g_") {
		i, ok := l.globals[name]
		if !ok {
			i = int32(len(l.c.globalNames))
			l.globals[name] = i
			l.c.globalNames = append(l.c.globalNames, name)
		}
		return i, refGlobal
	}
	return l.localSlot(name), refLocal
}

func (l *lowerer) varSlotOf(name string) (int32, bool) {
	i, k := l.varRef(name)
	return i, k == refGlobal
}

func (l *lowerer) litRef(x lang.Lit) (int32, uint8) {
	k := litKey{v: x.V & bv.Mask(x.W), w: x.W}
	if i, ok := l.litIdx[k]; ok {
		return i, refLit
	}
	i := int32(len(l.f.lits))
	l.litIdx[k] = i
	l.f.lits = append(l.f.lits, value{v: k.v, w: k.w})
	return i, refLit
}

// leafRef resolves a leaf operand (literal or variable) whose step charge the
// caller batches into a fused instruction.
func (l *lowerer) leafRef(e lang.Expr) (int32, uint8, bool) {
	switch x := e.(type) {
	case lang.Lit:
		i, k := l.litRef(x)
		return i, k, true
	case lang.VarRef:
		i, k := l.varRef(x.Name)
		return i, k, true
	}
	return 0, 0, false
}

func isLeaf(e lang.Expr) bool {
	switch e.(type) {
	case lang.Lit, lang.VarRef:
		return true
	}
	return false
}

func (l *lowerer) str(s string) uint16 {
	if i, ok := l.strIdx[s]; ok {
		return i
	}
	i := uint16(len(l.f.strs))
	l.strIdx[s] = i
	l.f.strs = append(l.f.strs, s)
	return i
}

func (l *lowerer) stmt(s lang.Stmt) {
	l.pending++ // the statement's own pre-order step
	switch st := s.(type) {
	case lang.Assign:
		l.assign(st)
	case lang.Alloc:
		l.pushExpr(st.Size)
		dst, dk := l.varRef(st.Var)
		l.emit(instr{op: opAllocPop, flg: dk << 4, aux: l.str(st.Site), dst: dst})
		l.depth--
	case lang.Store:
		l.store(st)
	case lang.If:
		br := l.condBranch(st.Label, st.Cond)
		for _, t := range st.Then {
			l.stmt(t)
		}
		if len(st.Else) > 0 {
			j := l.emit(instr{op: opJmp})
			l.patch(br)
			for _, t := range st.Else {
				l.stmt(t)
			}
			l.patch(j)
		} else {
			l.patch(br)
		}
	case lang.While:
		// The While statement's own step is charged once, before the loop
		// head, so back edges do not recharge it.
		l.emit(instr{op: opCharge, charge: l.take(0)})
		head := l.here()
		if lp, ok := l.matchStoreLoop(st); ok {
			l.f.loops = append(l.f.loops, lp)
			l.emit(instr{op: opStoreLoop, imm: uint64(len(l.f.loops) - 1)})
		}
		br := l.condBranch(st.Label, st.Cond)
		for _, t := range st.Body {
			l.stmt(t)
		}
		l.emit(instr{op: opJmp, dst: head})
		l.patch(br)
	case lang.ExprStmt:
		l.pushExpr(st.E)
		l.emit(instr{op: opPopDrop})
		l.depth--
	case lang.Return:
		if st.E != nil {
			l.pushExpr(st.E)
			l.emit(instr{op: opRetPop})
			l.depth--
		} else {
			l.emit(instr{op: opRetVoid, charge: l.take(0)})
		}
	case lang.AbortStmt:
		l.emit(instr{op: opAbortStmt, charge: l.take(0), aux: l.str(st.Msg)})
	case lang.WarnStmt:
		l.emit(instr{op: opWarnStmt, charge: l.take(0), aux: l.str(st.Msg)})
	default:
		panic(fmt.Sprintf("interp: Compile: unknown statement %T", s))
	}
}

// assign lowers an assignment, fusing the common right-hand shapes (leaf
// copy, leaf binop — the add-immediate idiom — conversion, input byte, load,
// and the ZX(w, In(leaf+leaf)) superinstruction) into single instructions.
func (l *lowerer) assign(st lang.Assign) {
	dst, dk := l.varRef(st.Var)
	switch e := st.E.(type) {
	case lang.Lit, lang.VarRef:
		a, ak, _ := l.leafRef(e)
		l.emit(instr{op: opAssignRef, flg: ak | dk<<4, charge: l.take(1), a: a, dst: dst})
		return
	case lang.Bin:
		if a, ak, ok := l.leafRef(e.A); ok {
			if b, bk, ok2 := l.leafRef(e.B); ok2 {
				l.emit(instr{op: opAssignBin, sub: uint8(e.Op), flg: ak | bk<<2 | dk<<4, charge: l.take(3), a: a, b: b, dst: dst})
				return
			}
		}
	case lang.Cvt:
		if a, b, ok := matchLoadZX(e); ok {
			ai, ak, _ := l.leafRef(a)
			bi, bk, _ := l.leafRef(b)
			l.emit(instr{op: opAssignLoadZX, w: e.W, flg: ak | bk<<2 | dk<<4, charge: l.take(5), a: ai, b: bi, dst: dst})
			return
		}
		if a, ak, ok := l.leafRef(e.A); ok {
			f := ak | dk<<4
			if e.Signed {
				f |= flgBit
			}
			l.emit(instr{op: opAssignCvt, w: e.W, flg: f, charge: l.take(2), a: a, dst: dst})
			return
		}
	case lang.InByte:
		if a, ak, ok := l.leafRef(e.Idx); ok {
			l.emit(instr{op: opAssignInByte, flg: ak | dk<<4, charge: l.take(2), a: a, dst: dst})
			return
		}
	case lang.LoadExpr:
		if a, ak, ok := l.leafRef(e.Ptr); ok {
			if b, bk, ok2 := l.leafRef(e.Off); ok2 {
				l.emit(instr{op: opAssignLoad, flg: ak | bk<<2 | dk<<4, charge: l.take(3), a: a, b: b, dst: dst})
				return
			}
		}
	}
	l.pushExpr(st.E)
	l.emit(instr{op: opPopRef, flg: dk << 4, dst: dst})
	l.depth--
}

// store lowers a Store statement, fusing the all-leaf form (with an optional
// ZX(64, leaf) offset) and the read-modify-write load-op-store shape.
func (l *lowerer) store(st lang.Store) {
	if bin, ok := st.Val.(lang.Bin); ok && isLeaf(st.Ptr) && isLeaf(st.Off) {
		if ld, ok2 := bin.A.(lang.LoadExpr); ok2 && isLeaf(ld.Ptr) && isLeaf(ld.Off) && isLeaf(bin.B) {
			p, kp, _ := l.leafRef(st.Ptr)
			o, ko, _ := l.leafRef(st.Off)
			p2, kp2, _ := l.leafRef(ld.Ptr)
			o2, ko2, _ := l.leafRef(ld.Off)
			v, kv, _ := l.leafRef(bin.B)
			aux := uint16(kp) | uint16(ko)<<2 | uint16(kp2)<<4 | uint16(ko2)<<6 | uint16(kv)<<8
			l.emit(instr{
				op: opLoadOpStore, sub: uint8(bin.Op), charge: l.take(7), aux: aux,
				a: p, b: o, dst: p2, imm: uint64(uint32(o2))<<32 | uint64(uint32(v)),
			})
			return
		}
	}
	if isLeaf(st.Ptr) && isLeaf(st.Val) {
		offE := st.Off
		zx := false
		if cv, isCvt := offE.(lang.Cvt); isCvt && !cv.Signed && cv.W == 64 && isLeaf(cv.A) {
			offE = cv.A
			zx = true
		}
		if isLeaf(offE) {
			p, kp, _ := l.leafRef(st.Ptr)
			o, ko, _ := l.leafRef(offE)
			v, kv, _ := l.leafRef(st.Val)
			f := kp | ko<<2 | kv<<4
			extra := 3
			if zx {
				f |= flgZX
				extra = 4
			}
			l.emit(instr{op: opStoreRef, flg: f, charge: l.take(extra), a: p, b: o, dst: v})
			return
		}
	}
	l.pushExpr(st.Ptr)
	l.pushExpr(st.Off)
	l.pushExpr(st.Val)
	l.emit(instr{op: opStorePop})
	l.depth -= 3
}

// pushExpr lowers an expression to instructions leaving its value on the
// value stack.
func (l *lowerer) pushExpr(e lang.Expr) {
	switch x := e.(type) {
	case lang.Lit:
		l.emit(instr{op: opPushLit, w: x.W, charge: l.take(1), imm: x.V & bv.Mask(x.W)})
		l.pushV()
	case lang.VarRef:
		a, k := l.varRef(x.Name)
		l.emit(instr{op: opPushRef, flg: k, charge: l.take(1), a: a})
		l.pushV()
	case lang.Bin:
		if a, ak, ok := l.leafRef(x.A); ok {
			if b, bk, ok2 := l.leafRef(x.B); ok2 {
				l.emit(instr{op: opPushBin, sub: uint8(x.Op), flg: ak | bk<<2, charge: l.take(3), a: a, b: b})
				l.pushV()
				return
			}
		}
		l.pending++
		l.pushExpr(x.A)
		l.pushExpr(x.B)
		l.emit(instr{op: opBinPop, sub: uint8(x.Op)})
		l.depth--
	case lang.Un:
		l.pending++
		l.pushExpr(x.A)
		var f uint8
		if x.Neg {
			f = flgBit
		}
		l.emit(instr{op: opUnPop, flg: f})
	case lang.Cvt:
		if a, b, ok := matchLoadZX(x); ok {
			ai, ak, _ := l.leafRef(a)
			bi, bk, _ := l.leafRef(b)
			l.emit(instr{op: opPushLoadZX, w: x.W, flg: ak | bk<<2, charge: l.take(5), a: ai, b: bi})
			l.pushV()
			return
		}
		l.pending++
		l.pushExpr(x.A)
		var f uint8
		if x.Signed {
			f = flgBit
		}
		l.emit(instr{op: opCvtPop, w: x.W, flg: f})
	case lang.InByte:
		l.pending++
		l.pushExpr(x.Idx)
		l.emit(instr{op: opInBytePop})
	case lang.InLen:
		l.emit(instr{op: opPushInLen, charge: l.take(1)})
		l.pushV()
	case lang.LoadExpr:
		l.pending++
		l.pushExpr(x.Ptr)
		l.pushExpr(x.Off)
		l.emit(instr{op: opLoadPop})
		l.depth--
	case lang.CallExpr:
		callee, ok := l.c.funcs[x.Fn]
		if !ok {
			panic("interp: Compile: " + l.f.name + " calls undefined function " + x.Fn)
		}
		// The call's own step precedes argument evaluation in the tree, so it
		// rides on the first argument's first instruction; a zero-argument
		// call carries it itself.
		l.pending++
		for _, a := range x.Args {
			l.pushExpr(a)
		}
		l.emit(instr{op: opCall, charge: l.take(0), a: callee.idx, aux: uint16(len(x.Args))})
		l.depth -= len(x.Args)
		l.pushV()
	default:
		panic(fmt.Sprintf("interp: Compile: unknown expression %T", e))
	}
}

// matchLoadZX recognizes the guests' hottest expression shape — an unsigned
// widening of an input byte addressed by a two-leaf sum,
// ZX(w, In(Add(leaf, leaf))) — for the opPushLoadZX/opAssignLoadZX
// superinstruction covering all five step charges.
func matchLoadZX(x lang.Cvt) (lang.Expr, lang.Expr, bool) {
	if x.Signed {
		return nil, nil, false
	}
	ib, ok := x.A.(lang.InByte)
	if !ok {
		return nil, nil, false
	}
	bn, ok := ib.Idx.(lang.Bin)
	if !ok || bn.Op != lang.OpAdd || !isLeaf(bn.A) || !isLeaf(bn.B) {
		return nil, nil, false
	}
	return bn.A, bn.B, true
}

// condBranch lowers a branch condition plus the conditional jump, fusing the
// two-leaf comparison (the cmp-immediate loop-head idiom) into one opJcc.
// The returned instruction index's dst must be patched to the false target.
func (l *lowerer) condBranch(label string, cond lang.BoolExpr) int32 {
	if cmp, ok := cond.(lang.Cmp); ok && isLeaf(cmp.A) && isLeaf(cmp.B) {
		a, ak, _ := l.leafRef(cmp.A)
		b, bk, _ := l.leafRef(cmp.B)
		return l.emit(instr{op: opJcc, sub: uint8(cmp.Op), flg: ak | bk<<2, charge: l.take(3), aux: l.str(label), a: a, b: b})
	}
	l.lowerBool(cond)
	l.bdepth--
	return l.emit(instr{op: opBranch, aux: l.str(label)})
}

func (l *lowerer) lowerBool(b lang.BoolExpr) {
	switch x := b.(type) {
	case lang.BoolLit:
		var f uint8
		if x.V {
			f = flgBit
		}
		l.emit(instr{op: opPushBool, flg: f, charge: l.take(1)})
		l.pushB()
	case lang.Cmp:
		l.pending++
		l.pushExpr(x.A)
		l.pushExpr(x.B)
		l.emit(instr{op: opCmpPop, sub: uint8(x.Op)})
		l.depth -= 2
		l.pushB()
	case lang.NotE:
		l.pending++
		l.lowerBool(x.A)
		l.emit(instr{op: opNotPop})
	case lang.AndE:
		l.pending++
		l.lowerBool(x.A)
		l.lowerBool(x.B)
		l.emit(instr{op: opAndPop})
		l.bdepth--
	case lang.OrE:
		l.pending++
		l.lowerBool(x.A)
		l.lowerBool(x.B)
		l.emit(instr{op: opOrPop})
		l.bdepth--
	default:
		panic(fmt.Sprintf("interp: Compile: unknown boolean expression %T", b))
	}
}

// matchStoreLoop recognizes the canonical memset-style loop
//
//	While(Cmp(op, X, Y)) { Store(p, OFF, v); i = i ± k }
//
// with X, Y drawn from {Lit, Var, Mul(Var, Lit)} and OFF additionally
// allowing ZX(64, ·) and Add(ZX(64, ·), Lit64) — the guests' row-fill and
// scaled-index idioms. The matched loop runs as a bulk opStoreLoop
// instruction in plain mode; the generic lowering still follows it and
// handles every case the fast path bails on.
func (l *lowerer) matchStoreLoop(st lang.While) (storeLoop, bool) {
	var lp storeLoop
	if len(st.Body) != 2 {
		return lp, false
	}
	store, ok := st.Body[0].(lang.Store)
	if !ok {
		return lp, false
	}
	asg, ok := st.Body[1].(lang.Assign)
	if !ok {
		return lp, false
	}
	bin, ok := asg.E.(lang.Bin)
	if !ok || (bin.Op != lang.OpAdd && bin.Op != lang.OpSub) {
		return lp, false
	}
	ivr, ok := bin.A.(lang.VarRef)
	if !ok || ivr.Name != asg.Var {
		return lp, false
	}
	kl, ok := bin.B.(lang.Lit)
	if !ok {
		return lp, false
	}
	cmp, ok := st.Cond.(lang.Cmp)
	if !ok {
		return lp, false
	}
	condA, ok := l.loopOperand(cmp.A, false)
	if !ok {
		return lp, false
	}
	condB, ok := l.loopOperand(cmp.B, false)
	if !ok {
		return lp, false
	}
	ptr, ok := store.Ptr.(lang.VarRef)
	if !ok || ptr.Name == asg.Var {
		return lp, false
	}
	off, ok := l.loopOperand(store.Off, true)
	if !ok {
		return lp, false
	}
	switch v := store.Val.(type) {
	case lang.Lit:
		lp.valIsLit = true
		lp.val = value{v: v.V & bv.Mask(v.W), w: v.W}
	case lang.VarRef:
		if v.Name == asg.Var {
			return lp, false
		}
		lp.valSlot, lp.valGlobal = l.varSlotOf(v.Name)
	default:
		return lp, false
	}
	lp.ptrSlot, lp.ptrGlobal = l.varSlotOf(ptr.Name)
	lp.ivSlot, lp.ivGlobal = l.varSlotOf(asg.Var)
	lp.cmp = cmp.Op
	lp.condA, lp.condB, lp.off = condA, condB, off
	lp.sub = bin.Op == lang.OpSub
	lp.k = kl.V & bv.Mask(kl.W)
	lp.kw = kl.W
	condC := 1 + condA.charge + condB.charge
	storeC := 1 + 1 + off.charge + 1
	const incrC = 4 // assign + binop + variable + literal steps
	lp.perIter = condC + storeC + incrC
	return lp, true
}

// loopOperand classifies a loop-condition or offset operand for the bulk
// store loop, recording the tree step charges one evaluation costs.
func (l *lowerer) loopOperand(e lang.Expr, allowZX bool) (loopOp, bool) {
	switch x := e.(type) {
	case lang.Lit:
		return loopOp{kind: lkLit, litV: x.V & bv.Mask(x.W), litW: x.W, charge: 1}, true
	case lang.VarRef:
		s, g := l.varSlotOf(x.Name)
		return loopOp{kind: lkVar, slot: s, global: g, charge: 1}, true
	case lang.Bin:
		switch {
		case x.Op == lang.OpMul:
			vr, ok := x.A.(lang.VarRef)
			if !ok {
				return loopOp{}, false
			}
			cl, ok := x.B.(lang.Lit)
			if !ok {
				return loopOp{}, false
			}
			s, g := l.varSlotOf(vr.Name)
			return loopOp{kind: lkVar, slot: s, global: g, mul: true, coef: cl.V & bv.Mask(cl.W), coefW: cl.W, charge: 3}, true
		case allowZX && x.Op == lang.OpAdd:
			cv, ok := x.A.(lang.Cvt)
			if !ok || cv.Signed || cv.W != 64 {
				return loopOp{}, false
			}
			al, ok := x.B.(lang.Lit)
			if !ok || al.W != 64 {
				return loopOp{}, false
			}
			base, ok := l.loopOperand(cv.A, false)
			if !ok || base.kind != lkVar {
				return loopOp{}, false
			}
			base.kind = lkZXAdd
			base.addend = al.V
			base.charge = 3 + base.charge // add + zx + literal steps
			return base, true
		}
	case lang.Cvt:
		if allowZX && !x.Signed && x.W == 64 {
			base, ok := l.loopOperand(x.A, false)
			if !ok || base.kind != lkVar {
				return loopOp{}, false
			}
			base.kind = lkZX
			base.charge = 1 + base.charge
			return base, true
		}
	}
	return loopOp{}, false
}
