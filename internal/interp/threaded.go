package interp

import (
	"fmt"

	"diode/internal/bv"
	"diode/internal/lang"
)

// This file is the direct-threaded execution core: the flat instruction
// format Compile lowers to (see compile.go) and the single dispatch loop that
// executes it. There are no per-node interface calls and no panic-based
// control flow — every exceptional exit travels as an ordinary error return
// out of exec, and the hot path allocates nothing.
//
// Fuel parity with the tree-walker is byte-exact and rests on one rule: the
// tree charges each AST node's step in pre-order (parent before children), so
// the lowerer keeps a running "pending" count of charged-but-not-yet-attached
// steps and attaches the whole run to the *first* instruction emitted for the
// subtree. Every instruction performs its observable effects (variable-read
// errors, memory events, branch records) strictly after its charges, so
// charging the lump in one subtraction is indistinguishable from the tree's
// step-by-step accounting: if fuel runs out inside the lump, the tree would
// have exhausted inside the same effect-free run, and both report
// Steps == Fuel. Fused instructions that interleave reads between charges
// (opAssignBin and friends, at opColdBase and above) manage their own fuel:
// on the hot path they charge the full lump and refund the trailing charges
// the tree never consumed when an early read errors; near exhaustion they
// fall back to exact segment-by-segment charging (chargeExact).

// Instruction opcodes. Ops below opColdBase have a single trailing effect (or
// none), so the dispatch loop's shared top-of-loop handler charges in.charge
// before dispatch; ops at/after opColdBase interleave reads between charges
// and do their own fuel accounting.
const (
	opCharge uint8 = iota // charge-only (the While statement's own step)
	opJmp
	opPushLit
	opPushRef
	opPushInLen
	opBinPop
	opUnPop
	opCvtPop
	opInBytePop
	opLoadPop
	opStorePop
	opAllocPop
	opPopRef
	opPopDrop
	opCall
	opRetPop
	opRetVoid
	opPushBool
	opCmpPop
	opNotPop
	opAndPop
	opOrPop
	opBranch // pop condition; record branch event; jump to dst when false
	opAbortStmt
	opWarnStmt
	opAssignRef    // dst = leaf
	opAssignCvt    // dst = ZX/SX(w, leaf)
	opAssignInByte // dst = In(leaf)
)

const (
	opAssignBin    uint8 = opAssignInByte + 1 + iota // dst = leaf <op> leaf
	opPushBin                                        // push leaf <op> leaf (add/cmp-immediate shapes)
	opJcc                                            // fused Cmp(leaf, leaf) + branch loop head
	opAssignLoad                                     // dst = Load(leaf, leaf)
	opStoreRef                                       // Store(leaf, leaf | ZX(64, leaf), leaf)
	opLoadOpStore                                    // Store(p, o, Load(p2, o2) <op> leaf)
	opPushLoadZX                                     // push ZX(w, In(leaf + leaf))
	opAssignLoadZX                                   // dst = ZX(w, In(leaf + leaf))
	opStoreLoop                                      // bulk memset-style loop body (descriptor in imm)
)

// opColdBase splits the opcode space: everything below has at most a single
// trailing effect and is charged by the dispatch loop's shared handler;
// everything at or above manages its own fuel accounting.
const opColdBase = opAssignBin

// Operand reference kinds (two bits each in instr.flg).
const (
	refLocal  uint8 = 0 // index into the active frame's slots
	refGlobal uint8 = 1 // index into the program-wide global slots
	refLit    uint8 = 2 // index into the function's pre-masked literal table
)

// instr.flg bit layout: bits 0-1 kindA, bits 2-3 kindB, bits 4-5 kindC (the
// destination-slot kind for assigns, the value-ref kind for stores), bit 6 a
// ZX(64, ·) offset marker (opStoreRef), bit 7 a generic boolean flag (signed
// conversion, negation vs bitwise-not, boolean literal value).
const (
	flgZX  uint8 = 1 << 6
	flgBit uint8 = 1 << 7
)

// instr is one direct-threaded instruction: 32 bytes, pointer-free.
type instr struct {
	op     uint8
	sub    uint8  // lang.BinOp / lang.CmpOp subcode
	w      uint8  // width operand (conversions, literals)
	flg    uint8  // ref kinds + flags, see above
	charge uint16 // fuel steps attached to this instruction
	aux    uint16 // index into cFunc.strs (labels, sites, messages); arg count for opCall
	a, b   int32  // operand refs; function index for opCall
	dst    int32  // destination slot ref or branch target
	imm    uint64 // literal value (opPushLit), loop-descriptor index (opStoreLoop), packed refs (opLoadOpStore)
}

// bval is a bool-stack entry: the concrete truth value plus the symbolic
// condition (nil when input-independent). The tree-walker also threads a
// taint set through boolean evaluation, but every consumer discards it, so
// the flat form drops it.
type bval struct {
	v   bool
	sym *bv.Bool
}

// callSite is one saved return location on the explicit call stack.
type callSite struct {
	fn *cFunc
	pc int32
}

func widthErr(op fmt.Stringer, aw, bw uint8) error {
	return fmt.Errorf("interp: width mismatch in %s: %d vs %d bits", op, aw, bw)
}

// refVal resolves an operand reference against the active frame (g is the
// machine's global frame). ok=false means undefined variable; the caller
// reports it via undefRef. This is the dispatch loop's only operand access,
// kept small enough to inline — the undefined-variable error is the sole
// observable effect and is raised by the caller after its charges.
func refVal(fn *cFunc, g, fr *cframe, kind uint8, idx int32) (value, bool) {
	if kind == refLit {
		return fn.lits[idx], true
	}
	if kind == refGlobal {
		fr = g
	}
	if !fr.set[idx] {
		return value{}, false
	}
	return fr.vals[idx], true
}

// undefRef builds the undefined-variable error for a failed refVal. Out of
// line so refVal stays inlinable.
//
//go:noinline
func (m *Machine) undefRef(fn *cFunc, kind uint8, idx int32) error {
	name := fn.slotNames[idx]
	if kind == refGlobal {
		name = m.code.globalNames[idx]
	}
	return fmt.Errorf("interp: undefined variable %q", name)
}

func (m *Machine) setRef(fr *cframe, kind uint8, idx int32, v value) {
	if kind == refGlobal {
		m.globals.vals[idx] = v
		m.globals.set[idx] = true
		return
	}
	fr.vals[idx] = v
	fr.set[idx] = true
}

// chargeExact charges n consecutive effect-free steps, reporting false on
// fuel exhaustion (at which point fuel is pinned to 0, so Steps == Fuel
// exactly as in the tree-walker).
func (m *Machine) chargeExact(n int64) bool {
	m.fuel -= n
	if m.fuel <= 0 {
		m.fuel = 0
		return false
	}
	return true
}

// pollCancel mirrors the tree-walker's rate-limited cancellation poll.
func (m *Machine) pollCancel() error {
	if m.cancelPoll--; m.cancelPoll <= 0 {
		m.cancelPoll = cancelPollInterval
		select {
		case <-m.opts.Cancel:
			return errCancel
		default:
		}
	}
	return nil
}

// loadMem performs the Load effect sequence (event, segv, cell read) shared
// by opLoadPop, opAssignLoad and opLoadOpStore.
func (m *Machine) loadMem(ptr, off uint64) (value, error) {
	b, ok := m.blocks[ptr]
	if !ok {
		return value{}, fmt.Errorf("interp: load through non-pointer %#x", ptr)
	}
	if off >= b.size {
		m.out.MemErrs = append(m.out.MemErrs, MemError{
			Kind: InvalidRead, Site: b.site, Offset: off, Size: b.size,
		})
		if off >= b.size+RedZone {
			return value{}, errSegv
		}
	}
	return b.loadCell(off), nil
}

// storeMem performs the Store effect sequence (event, canary, segv, cell
// write) shared by opStorePop, opStoreRef and opLoadOpStore.
func (m *Machine) storeMem(ptr, off uint64, val value) error {
	b, ok := m.blocks[ptr]
	if !ok {
		return fmt.Errorf("interp: store through non-pointer %#x", ptr)
	}
	if off >= b.size {
		if off >= b.size+RedZone {
			m.out.MemErrs = append(m.out.MemErrs, MemError{
				Kind: InvalidWrite, Site: b.site, Offset: off, Size: b.size,
			})
			return errSegv
		}
		m.out.MemErrs = append(m.out.MemErrs, MemError{
			Kind: InvalidWrite, Site: b.site, Offset: off, Size: b.size,
		})
		b.canary = true // allocator metadata clobbered
		if m.canary == nil {
			m.canary = b
		}
	}
	b.storeCell(off, val, m.plain)
	return nil
}

// exec runs the prepared program through the direct-threaded dispatch loop.
func (m *Machine) exec() error {
	fn := m.code.main
	m.pushFrame(fn)
	fr := &m.frames[m.fp]
	g := &m.globals
	code := fn.code
	stack := m.stack
	if len(stack) < fn.maxStack {
		stack = make([]value, fn.maxStack+64)
		m.stack = stack
	}
	bstack := m.bstack
	if len(bstack) < fn.maxBools {
		bstack = make([]bval, fn.maxBools+16)
		m.bstack = bstack
	}
	m.calls = m.calls[:0]
	sp, bsp := 0, 0
	var pc int32
	for {
		in := &code[pc]
		if in.charge != 0 && in.op < opColdBase {
			m.fuel -= int64(in.charge)
			if m.fuel <= 0 {
				m.fuel = 0
				return errFuel
			}
		}
		switch in.op {
		case opCharge:
			// charge handled above

		case opJmp:
			pc = in.dst
			continue

		case opPushLit:
			stack[sp] = value{v: in.imm, w: in.w}
			sp++

		case opPushRef:
			v, ok := refVal(fn, g, fr, in.flg&3, in.a)
			if !ok {
				return m.undefRef(fn, in.flg&3, in.a)
			}
			stack[sp] = v
			sp++

		case opPushInLen:
			stack[sp] = value{v: uint64(len(m.input)), w: 32}
			sp++

		case opBinPop:
			a, b := &stack[sp-2], &stack[sp-1]
			if a.w != b.w {
				return widthErr(lang.BinOp(in.sub), a.w, b.w)
			}
			var v value
			switch {
			case m.plain && lang.BinOp(in.sub) == lang.OpAdd:
				nv := (a.v + b.v) & bv.Mask(a.w)
				v = value{v: nv, w: a.w, wrapped: a.wrapped || b.wrapped || nv < a.v}
			case m.plain && lang.BinOp(in.sub) == lang.OpSub:
				v = value{v: (a.v - b.v) & bv.Mask(a.w), w: a.w, wrapped: a.wrapped || b.wrapped || b.v > a.v}
			case m.plain && lang.BinOp(in.sub) == lang.OpMul:
				v = value{v: (a.v * b.v) & bv.Mask(a.w), w: a.w, wrapped: a.wrapped || b.wrapped || mulWraps(a.v, b.v, a.w)}
			default:
				var err error
				if v, err = binopVal(lang.BinOp(in.sub), a, b, m.opts.TrackTaint); err != nil {
					return err
				}
			}
			sp--
			stack[sp-1] = v

		case opUnPop:
			stack[sp-1] = unop(in.flg&flgBit != 0, stack[sp-1])

		case opCvtPop:
			stack[sp-1] = convert(in.w, in.flg&flgBit != 0, stack[sp-1])

		case opInBytePop:
			stack[sp-1] = m.readInput(stack[sp-1])

		case opLoadPop:
			ptr, off := stack[sp-2], stack[sp-1]
			sp--
			v, err := m.loadMem(ptr.v, off.v)
			if err != nil {
				return err
			}
			stack[sp-1] = v

		case opStorePop:
			ptr, off, val := stack[sp-3], stack[sp-2], stack[sp-1]
			sp -= 3
			if err := m.storeMem(ptr.v, off.v, val); err != nil {
				return err
			}

		case opAllocPop:
			size := stack[sp-1]
			sp--
			// Heap-corruption check: glibc-style abort when a previously
			// clobbered red zone (allocator metadata) is observed.
			if b := m.canary; b != nil {
				m.out.MemErrs = append(m.out.MemErrs, MemError{
					Kind: InvalidWrite, Site: b.site, Offset: b.size, Size: b.size,
				})
				return errAbrt
			}
			m.nextID++
			base := m.nextID << 32
			m.blocks[base] = m.newBlock(fn.strs[in.aux], size.v)
			m.out.Allocs = append(m.out.Allocs, AllocEvent{
				Site:       fn.strs[in.aux],
				Seq:        len(m.out.Allocs),
				Size:       size.v,
				Width:      size.w,
				Sym:        size.sym,
				Taint:      size.tnt,
				Wrapped:    size.wrapped,
				BranchMark: len(m.out.Branches),
			})
			m.setRef(fr, (in.flg>>4)&3, in.dst, value{v: base, w: 64})

		case opPopRef:
			sp--
			m.setRef(fr, (in.flg>>4)&3, in.dst, stack[sp])

		case opPopDrop:
			sp--

		case opCall:
			callee := m.code.funcList[in.a]
			nargs := int(in.aux)
			base := sp - nargs
			m.fp++
			if m.fp == len(m.frames) {
				m.frames = append(m.frames, cframe{})
			}
			nf := &m.frames[m.fp]
			nf.ensure(callee.numSlots)
			for i, slot := range callee.params {
				nf.vals[slot] = stack[base+i]
				nf.set[slot] = true
			}
			sp = base
			if need := sp + callee.maxStack; need > len(stack) {
				ns := make([]value, need+64)
				copy(ns, stack[:sp])
				stack = ns
				m.stack = ns
			}
			if need := bsp + callee.maxBools; need > len(bstack) {
				nb := make([]bval, need+16)
				copy(nb, bstack[:bsp])
				bstack = nb
				m.bstack = nb
			}
			m.calls = append(m.calls, callSite{fn: fn, pc: pc + 1})
			fn = callee
			code = fn.code
			fr = nf
			pc = 0
			continue

		case opRetPop, opRetVoid:
			rv := value{w: 32}
			if in.op == opRetPop {
				sp--
				rv = stack[sp]
			}
			m.fp--
			n := len(m.calls)
			if n == 0 {
				return nil // main finished
			}
			cs := m.calls[n-1]
			m.calls = m.calls[:n-1]
			fn = cs.fn
			code = fn.code
			pc = cs.pc
			fr = &m.frames[m.fp]
			stack[sp] = rv
			sp++
			continue

		case opPushBool:
			bstack[bsp] = bval{v: in.flg&flgBit != 0}
			bsp++

		case opCmpPop:
			a, b := &stack[sp-2], &stack[sp-1]
			if a.w != b.w {
				return widthErr(lang.CmpOp(in.sub), a.w, b.w)
			}
			var cv bool
			switch lang.CmpOp(in.sub) {
			case lang.CmpEq:
				cv = a.v == b.v
			case lang.CmpNe:
				cv = a.v != b.v
			case lang.CmpUlt:
				cv = a.v < b.v
			case lang.CmpUle:
				cv = a.v <= b.v
			case lang.CmpUgt:
				cv = a.v > b.v
			case lang.CmpUge:
				cv = a.v >= b.v
			default:
				cv = loopCmp(lang.CmpOp(in.sub), a.v, b.v, a.w)
			}
			var sym *bv.Bool
			if a.sym != nil || b.sym != nil {
				sym = symCmp(lang.CmpOp(in.sub), a.term(), b.term())
			}
			sp -= 2
			bstack[bsp] = bval{v: cv, sym: sym}
			bsp++

		case opNotPop:
			t := &bstack[bsp-1]
			t.v = !t.v
			if t.sym != nil {
				t.sym = bv.NotB(t.sym)
			}

		case opAndPop, opOrPop:
			a, b := bstack[bsp-2], bstack[bsp-1]
			bsp--
			isAnd := in.op == opAndPop
			sym := combineBool(a.v, a.sym, b.v, b.sym, isAnd)
			var cv bool
			if isAnd {
				cv = a.v && b.v
			} else {
				cv = a.v || b.v
			}
			bstack[bsp-1] = bval{v: cv, sym: sym}

		case opBranch:
			// The cancellation point: every loop iteration passes through a
			// branch, so a closed Options.Cancel is observed within
			// cancelPollInterval branches. The tree-walker polls before the
			// condition evaluates rather than after; the cadence (one
			// countdown per branch evaluation) is identical, so uncancelled
			// runs are byte-identical.
			if m.opts.Cancel != nil {
				if err := m.pollCancel(); err != nil {
					return err
				}
			}
			bsp--
			t := bstack[bsp]
			if m.opts.TrackSymbolic && t.sym != nil {
				cond := t.sym
				if !t.v {
					cond = bv.NotB(cond)
				}
				m.out.Branches = append(m.out.Branches, BranchRecord{
					Label: fn.strs[in.aux],
					Taken: t.v,
					Cond:  cond,
				})
			}
			if !t.v {
				pc = in.dst
				continue
			}

		case opAbortStmt:
			m.out.AbortMsg = fn.strs[in.aux]
			return errAbort

		case opWarnStmt:
			m.out.Warnings = append(m.out.Warnings, fn.strs[in.aux])

		case opAssignRef:
			v, ok := refVal(fn, g, fr, in.flg&3, in.a)
			if !ok {
				return m.undefRef(fn, in.flg&3, in.a)
			}
			m.setRef(fr, (in.flg>>4)&3, in.dst, v)

		case opAssignCvt:
			a, ok := refVal(fn, g, fr, in.flg&3, in.a)
			if !ok {
				return m.undefRef(fn, in.flg&3, in.a)
			}
			m.setRef(fr, (in.flg>>4)&3, in.dst, convert(in.w, in.flg&flgBit != 0, a))

		case opAssignInByte:
			a, ok := refVal(fn, g, fr, in.flg&3, in.a)
			if !ok {
				return m.undefRef(fn, in.flg&3, in.a)
			}
			m.setRef(fr, (in.flg>>4)&3, in.dst, m.readInput(a))

		case opAssignBin, opPushBin:
			ch := int64(in.charge)
			var a, b value
			var ok bool
			if m.fuel > ch {
				m.fuel -= ch
				if a, ok = refVal(fn, g, fr, in.flg&3, in.a); !ok {
					m.fuel++ // the second leaf's step, never charged by the tree
					return m.undefRef(fn, in.flg&3, in.a)
				}
				if b, ok = refVal(fn, g, fr, (in.flg>>2)&3, in.b); !ok {
					return m.undefRef(fn, (in.flg>>2)&3, in.b)
				}
			} else {
				if !m.chargeExact(ch - 1) {
					return errFuel
				}
				if a, ok = refVal(fn, g, fr, in.flg&3, in.a); !ok {
					return m.undefRef(fn, in.flg&3, in.a)
				}
				if !m.chargeExact(1) {
					return errFuel
				}
				if b, ok = refVal(fn, g, fr, (in.flg>>2)&3, in.b); !ok {
					return m.undefRef(fn, (in.flg>>2)&3, in.b)
				}
			}
			if a.w != b.w {
				return widthErr(lang.BinOp(in.sub), a.w, b.w)
			}
			// Plain-mode fast arithmetic for the dominant ops: no taint
			// union, no symbolic build; wrapped tracking matches binopVal
			// bit for bit.
			var v value
			switch {
			case m.plain && lang.BinOp(in.sub) == lang.OpAdd:
				nv := (a.v + b.v) & bv.Mask(a.w)
				v = value{v: nv, w: a.w, wrapped: a.wrapped || b.wrapped || nv < a.v}
			case m.plain && lang.BinOp(in.sub) == lang.OpSub:
				v = value{v: (a.v - b.v) & bv.Mask(a.w), w: a.w, wrapped: a.wrapped || b.wrapped || b.v > a.v}
			case m.plain && lang.BinOp(in.sub) == lang.OpMul:
				v = value{v: (a.v * b.v) & bv.Mask(a.w), w: a.w, wrapped: a.wrapped || b.wrapped || mulWraps(a.v, b.v, a.w)}
			default:
				var err error
				if v, err = binopVal(lang.BinOp(in.sub), &a, &b, m.opts.TrackTaint); err != nil {
					return err
				}
			}
			if in.op == opAssignBin {
				m.setRef(fr, (in.flg>>4)&3, in.dst, v)
			} else {
				stack[sp] = v
				sp++
			}

		case opJcc:
			if m.opts.Cancel != nil {
				if err := m.pollCancel(); err != nil {
					return err
				}
			}
			ch := int64(in.charge)
			var a, b value
			var ok bool
			if m.fuel > ch {
				m.fuel -= ch
				if a, ok = refVal(fn, g, fr, in.flg&3, in.a); !ok {
					m.fuel++
					return m.undefRef(fn, in.flg&3, in.a)
				}
				if b, ok = refVal(fn, g, fr, (in.flg>>2)&3, in.b); !ok {
					return m.undefRef(fn, (in.flg>>2)&3, in.b)
				}
			} else {
				if !m.chargeExact(ch - 1) {
					return errFuel
				}
				if a, ok = refVal(fn, g, fr, in.flg&3, in.a); !ok {
					return m.undefRef(fn, in.flg&3, in.a)
				}
				if !m.chargeExact(1) {
					return errFuel
				}
				if b, ok = refVal(fn, g, fr, (in.flg>>2)&3, in.b); !ok {
					return m.undefRef(fn, (in.flg>>2)&3, in.b)
				}
			}
			if a.w != b.w {
				return widthErr(lang.CmpOp(in.sub), a.w, b.w)
			}
			var cv bool
			switch lang.CmpOp(in.sub) {
			case lang.CmpEq:
				cv = a.v == b.v
			case lang.CmpNe:
				cv = a.v != b.v
			case lang.CmpUlt:
				cv = a.v < b.v
			case lang.CmpUle:
				cv = a.v <= b.v
			case lang.CmpUgt:
				cv = a.v > b.v
			case lang.CmpUge:
				cv = a.v >= b.v
			default:
				cv = loopCmp(lang.CmpOp(in.sub), a.v, b.v, a.w)
			}
			if m.opts.TrackSymbolic && (a.sym != nil || b.sym != nil) {
				cond := symCmp(lang.CmpOp(in.sub), a.term(), b.term())
				if !cv {
					cond = bv.NotB(cond)
				}
				m.out.Branches = append(m.out.Branches, BranchRecord{
					Label: fn.strs[in.aux],
					Taken: cv,
					Cond:  cond,
				})
			}
			if !cv {
				pc = in.dst
				continue
			}

		case opAssignLoad:
			ch := int64(in.charge)
			var ptr, off value
			var ok bool
			if m.fuel > ch {
				m.fuel -= ch
				if ptr, ok = refVal(fn, g, fr, in.flg&3, in.a); !ok {
					m.fuel++
					return m.undefRef(fn, in.flg&3, in.a)
				}
				if off, ok = refVal(fn, g, fr, (in.flg>>2)&3, in.b); !ok {
					return m.undefRef(fn, (in.flg>>2)&3, in.b)
				}
			} else {
				if !m.chargeExact(ch - 1) {
					return errFuel
				}
				if ptr, ok = refVal(fn, g, fr, in.flg&3, in.a); !ok {
					return m.undefRef(fn, in.flg&3, in.a)
				}
				if !m.chargeExact(1) {
					return errFuel
				}
				if off, ok = refVal(fn, g, fr, (in.flg>>2)&3, in.b); !ok {
					return m.undefRef(fn, (in.flg>>2)&3, in.b)
				}
			}
			v, err := m.loadMem(ptr.v, off.v)
			if err != nil {
				return err
			}
			m.setRef(fr, (in.flg>>4)&3, in.dst, v)

		case opStoreRef:
			// Charges: pending + ptr(1) + off(1, +1 when ZX-wrapped) + val(1).
			ch := int64(in.charge)
			zx := int64(0)
			if in.flg&flgZX != 0 {
				zx = 1
			}
			var ptr, off, val value
			var ok bool
			if m.fuel > ch {
				m.fuel -= ch
				if ptr, ok = refVal(fn, g, fr, in.flg&3, in.a); !ok {
					m.fuel += 2 + zx
					return m.undefRef(fn, in.flg&3, in.a)
				}
				if off, ok = refVal(fn, g, fr, (in.flg>>2)&3, in.b); !ok {
					m.fuel++
					return m.undefRef(fn, (in.flg>>2)&3, in.b)
				}
				if val, ok = refVal(fn, g, fr, (in.flg>>4)&3, in.dst); !ok {
					return m.undefRef(fn, (in.flg>>4)&3, in.dst)
				}
			} else {
				if !m.chargeExact(ch - 2 - zx) {
					return errFuel
				}
				if ptr, ok = refVal(fn, g, fr, in.flg&3, in.a); !ok {
					return m.undefRef(fn, in.flg&3, in.a)
				}
				if !m.chargeExact(1 + zx) {
					return errFuel
				}
				if off, ok = refVal(fn, g, fr, (in.flg>>2)&3, in.b); !ok {
					return m.undefRef(fn, (in.flg>>2)&3, in.b)
				}
				if !m.chargeExact(1) {
					return errFuel
				}
				if val, ok = refVal(fn, g, fr, (in.flg>>4)&3, in.dst); !ok {
					return m.undefRef(fn, (in.flg>>4)&3, in.dst)
				}
			}
			if zx != 0 {
				off = convert(64, false, off)
			}
			if err := m.storeMem(ptr.v, off.v, val); err != nil {
				return err
			}

		case opLoadOpStore:
			if err := m.execLoadOpStore(fn, fr, in); err != nil {
				return err
			}

		case opPushLoadZX, opAssignLoadZX:
			ch := int64(in.charge)
			var a, b value
			var ok bool
			if m.fuel > ch {
				m.fuel -= ch
				if a, ok = refVal(fn, g, fr, in.flg&3, in.a); !ok {
					m.fuel++
					return m.undefRef(fn, in.flg&3, in.a)
				}
				if b, ok = refVal(fn, g, fr, (in.flg>>2)&3, in.b); !ok {
					return m.undefRef(fn, (in.flg>>2)&3, in.b)
				}
			} else {
				if !m.chargeExact(ch - 1) {
					return errFuel
				}
				if a, ok = refVal(fn, g, fr, in.flg&3, in.a); !ok {
					return m.undefRef(fn, in.flg&3, in.a)
				}
				if !m.chargeExact(1) {
					return errFuel
				}
				if b, ok = refVal(fn, g, fr, (in.flg>>2)&3, in.b); !ok {
					return m.undefRef(fn, (in.flg>>2)&3, in.b)
				}
			}
			if a.w != b.w {
				return widthErr(lang.OpAdd, a.w, b.w)
			}
			var v value
			if m.plain {
				// Plain mode: no value carries taint or symbolic state,
				// readInput drops the index's wrapped flag, and the unsigned
				// widening only moves the byte — compute the chain inline.
				i := int((a.v + b.v) & bv.Mask(a.w))
				var bv8 uint64
				if i >= 0 && i < len(m.input) {
					bv8 = uint64(m.input[i])
				}
				if in.w < 8 {
					bv8 &= bv.Mask(in.w)
				}
				v = value{v: bv8, w: in.w}
			} else {
				idx, err := binopVal(lang.OpAdd, &a, &b, true)
				if err != nil {
					return err
				}
				v = convert(in.w, false, m.readInput(idx))
			}
			if in.op == opAssignLoadZX {
				m.setRef(fr, (in.flg>>4)&3, in.dst, v)
			} else {
				stack[sp] = v
				sp++
			}

		case opStoreLoop:
			m.runStoreLoop(fr, &fn.loops[in.imm])
			// Falls through to the generic loop head at pc+1, which
			// re-evaluates the condition with exact charges (and handles the
			// exit, any memory event, or fuel exhaustion precisely).

		default:
			return fmt.Errorf("interp: unknown opcode %d", in.op)
		}
		pc++
	}
}

// execLoadOpStore runs the fused read-modify-write superinstruction
// Store(p, o, Load(p2, o2) <op> leaf). Charges: pending + p(1) + o(1) +
// bin(1) + load(1) + p2(1) + o2(1) + v(1); the trailing refunds on the hot
// path mirror how far the tree-walker's pre-order charging would have gone
// when an early read errors.
func (m *Machine) execLoadOpStore(fn *cFunc, fr *cframe, in *instr) error {
	kP := in.aux & 3
	kO := (in.aux >> 2) & 3
	kP2 := (in.aux >> 4) & 3
	kO2 := (in.aux >> 6) & 3
	kV := (in.aux >> 8) & 3
	o2Idx := int32(in.imm >> 32)
	vIdx := int32(uint32(in.imm))
	ch := int64(in.charge)
	g := &m.globals
	var p, o, p2, o2, v value
	var ok bool
	if m.fuel > ch {
		m.fuel -= ch
		if p, ok = refVal(fn, g, fr, uint8(kP), in.a); !ok {
			m.fuel += 6
			return m.undefRef(fn, uint8(kP), in.a)
		}
		if o, ok = refVal(fn, g, fr, uint8(kO), in.b); !ok {
			m.fuel += 5
			return m.undefRef(fn, uint8(kO), in.b)
		}
		if p2, ok = refVal(fn, g, fr, uint8(kP2), in.dst); !ok {
			m.fuel += 2
			return m.undefRef(fn, uint8(kP2), in.dst)
		}
		if o2, ok = refVal(fn, g, fr, uint8(kO2), o2Idx); !ok {
			m.fuel++
			return m.undefRef(fn, uint8(kO2), o2Idx)
		}
		lv, err := m.loadMem(p2.v, o2.v)
		if err != nil {
			m.fuel++ // the value leaf's step, never charged by the tree
			return err
		}
		if v, ok = refVal(fn, g, fr, uint8(kV), vIdx); !ok {
			return m.undefRef(fn, uint8(kV), vIdx)
		}
		return m.finishLoadOpStore(in, p, o, lv, v)
	}
	if !m.chargeExact(ch - 6) {
		return errFuel
	}
	if p, ok = refVal(fn, g, fr, uint8(kP), in.a); !ok {
		return m.undefRef(fn, uint8(kP), in.a)
	}
	if !m.chargeExact(1) {
		return errFuel
	}
	if o, ok = refVal(fn, g, fr, uint8(kO), in.b); !ok {
		return m.undefRef(fn, uint8(kO), in.b)
	}
	if !m.chargeExact(3) {
		return errFuel
	}
	if p2, ok = refVal(fn, g, fr, uint8(kP2), in.dst); !ok {
		return m.undefRef(fn, uint8(kP2), in.dst)
	}
	if !m.chargeExact(1) {
		return errFuel
	}
	if o2, ok = refVal(fn, g, fr, uint8(kO2), o2Idx); !ok {
		return m.undefRef(fn, uint8(kO2), o2Idx)
	}
	lv, err := m.loadMem(p2.v, o2.v)
	if err != nil {
		return err
	}
	if !m.chargeExact(1) {
		return errFuel
	}
	if v, ok = refVal(fn, g, fr, uint8(kV), vIdx); !ok {
		return m.undefRef(fn, uint8(kV), vIdx)
	}
	return m.finishLoadOpStore(in, p, o, lv, v)
}

func (m *Machine) finishLoadOpStore(in *instr, p, o, lv, v value) error {
	if lv.w != v.w {
		return widthErr(lang.BinOp(in.sub), lv.w, v.w)
	}
	r, err := binopVal(lang.BinOp(in.sub), &lv, &v, m.opts.TrackTaint)
	if err != nil {
		return err
	}
	return m.storeMem(p.v, o.v, r)
}

// --- bulk store loop ---

// loopOp operand kinds for the storeLoop matcher (see matchStoreLoop in
// compile.go): a literal, a variable optionally scaled by a literal
// (Mul(V, Lit)), or — offset position only — either of those zero-extended to
// 64 bits, optionally plus a 64-bit literal.
const (
	lkLit uint8 = iota
	lkVar
	lkZX
	lkZXAdd
)

type loopOp struct {
	kind   uint8
	global bool
	mul    bool // base is Mul(VarRef, Lit(coef))
	slot   int32
	coef   uint64
	coefW  uint8
	litV   uint64
	litW   uint8
	addend uint64
	charge int64 // tree step charges for one evaluation of this operand
}

// storeLoop describes a matched canonical memset-style loop:
//
//	While(Cmp(op, X, Y)) { Store(p, OFF, v); i = i ± k }
//
// executed as a bulk instruction in plain mode, bailing to the generic
// lowered loop (which immediately follows the opStoreLoop instruction) on
// any condition the fast path cannot reproduce exactly.
type storeLoop struct {
	ptrSlot   int32
	ptrGlobal bool
	off       loopOp
	valIsLit  bool
	val       value // pre-masked literal (valIsLit)
	valSlot   int32
	valGlobal bool
	cmp       lang.CmpOp
	condA     loopOp
	condB     loopOp
	ivSlot    int32
	ivGlobal  bool
	sub       bool // i = i - k instead of i = i + k
	k         uint64
	kw        uint8
	perIter   int64 // total tree step charges of one full iteration
}

// resOp is a loop operand resolved against the loop's invariants: either a
// fixed value or a function of the induction variable.
type resOp struct {
	dyn    bool
	hasAdd bool
	mul    bool
	w      uint8
	v      uint64 // invariant value (dyn=false)
	coef   uint64
	mask   uint64 // modulus of the base width
	add    uint64
}

func (r *resOp) eval(iv uint64) uint64 {
	if !r.dyn {
		return r.v
	}
	v := iv
	if r.mul {
		v = (v * r.coef) & r.mask
	}
	if r.hasAdd {
		v += r.add // 64-bit position (post-ZX), natural wraparound
	}
	return v
}

func (m *Machine) readSlot(fr *cframe, global bool, slot int32) (value, bool) {
	if global {
		if !m.globals.set[slot] {
			return value{}, false
		}
		return m.globals.vals[slot], true
	}
	if !fr.set[slot] {
		return value{}, false
	}
	return fr.vals[slot], true
}

// resolveLoopOp fixes a loop operand against the current frame. ok=false
// means the fast path cannot run (undefined variable, width mismatch) and the
// generic loop must take over to reproduce the exact error.
func (m *Machine) resolveLoopOp(op *loopOp, fr *cframe, ivSlot int32, ivGlobal bool, iw uint8) (resOp, bool) {
	if op.kind == lkLit {
		return resOp{v: op.litV, w: op.litW}, true
	}
	r := resOp{mul: op.mul, coef: op.coef}
	dyn := op.slot == ivSlot && op.global == ivGlobal
	var baseW uint8
	var baseV uint64
	if dyn {
		baseW = iw
	} else {
		bv2, ok := m.readSlot(fr, op.global, op.slot)
		if !ok {
			return resOp{}, false
		}
		baseV, baseW = bv2.v, bv2.w
	}
	if op.mul && op.coefW != baseW {
		return resOp{}, false // width mismatch: generic raises the exact error
	}
	r.mask = bv.Mask(baseW)
	r.w = baseW
	if op.kind == lkZX || op.kind == lkZXAdd {
		r.w = 64
	}
	if op.kind == lkZXAdd {
		r.hasAdd = true
		r.add = op.addend
	}
	r.dyn = dyn
	if !dyn {
		v := baseV
		if op.mul {
			v = (v * op.coef) & r.mask
		}
		if r.hasAdd {
			v += op.addend
		}
		r.v = v
	}
	return r, true
}

func loopCmp(op lang.CmpOp, a, b uint64, w uint8) bool {
	switch op {
	case lang.CmpEq:
		return a == b
	case lang.CmpNe:
		return a != b
	case lang.CmpUlt:
		return a < b
	case lang.CmpUle:
		return a <= b
	case lang.CmpUgt:
		return a > b
	case lang.CmpUge:
		return a >= b
	case lang.CmpSlt:
		return int64(signExtend(a, w)) < int64(signExtend(b, w))
	case lang.CmpSle:
		return int64(signExtend(a, w)) <= int64(signExtend(b, w))
	case lang.CmpSgt:
		return int64(signExtend(a, w)) > int64(signExtend(b, w))
	default:
		return int64(signExtend(a, w)) >= int64(signExtend(b, w))
	}
}

// runStoreLoop executes as many fast iterations of a matched memset-style
// loop as can be proven observation-free: in-bounds dense stores, condition
// true, fuel strictly above the per-iteration charge, and no cancellation
// poll due. Every anomaly bails — before consuming any of the bailing
// iteration's charges — to the generic lowered loop that follows, which
// reproduces events, errors, exits and fuel exhaustion exactly.
func (m *Machine) runStoreLoop(fr *cframe, lp *storeLoop) {
	if !m.plain {
		return // taint/symbolic runs observe every store; generic path only
	}
	ptr, ok := m.readSlot(fr, lp.ptrGlobal, lp.ptrSlot)
	if !ok {
		return
	}
	b, okb := m.blocks[ptr.v]
	if !okb {
		return
	}
	ivv, ok := m.readSlot(fr, lp.ivGlobal, lp.ivSlot)
	if !ok {
		return
	}
	iv, iw, iwr := ivv.v, ivv.w, ivv.wrapped
	if lp.kw != iw {
		return // increment width mismatch: generic raises the exact error
	}
	kmask := bv.Mask(iw)
	condA, ok := m.resolveLoopOp(&lp.condA, fr, lp.ivSlot, lp.ivGlobal, iw)
	if !ok {
		return
	}
	condB, ok := m.resolveLoopOp(&lp.condB, fr, lp.ivSlot, lp.ivGlobal, iw)
	if !ok {
		return
	}
	if condA.w != condB.w {
		return
	}
	off, ok := m.resolveLoopOp(&lp.off, fr, lp.ivSlot, lp.ivGlobal, iw)
	if !ok {
		return
	}
	var val value
	if lp.valIsLit {
		val = lp.val
	} else {
		if val, ok = m.readSlot(fr, lp.valGlobal, lp.valSlot); !ok {
			return
		}
	}
	poll := m.opts.Cancel != nil
	dense := uint64(len(b.dense))
	ran := false
	for {
		if m.fuel <= lp.perIter {
			break
		}
		if poll {
			if m.cancelPoll <= 1 {
				break // let the generic branch hit the poll exactly
			}
			m.cancelPoll--
		}
		if !loopCmp(lp.cmp, condA.eval(iv), condB.eval(iv), condA.w) {
			break // generic re-evaluates the exit condition with charges
		}
		ov := off.eval(iv)
		if ov >= b.size || ov >= dense {
			break // red zone, segv or far cell: generic handles events
		}
		b.dense[ov] = val
		b.stamp[ov] = b.gen
		if lp.sub {
			if lp.k > iv {
				iwr = true
			}
			iv = (iv - lp.k) & kmask
		} else {
			nv := (iv + lp.k) & kmask
			if nv < iv {
				iwr = true
			}
			iv = nv
		}
		m.fuel -= lp.perIter
		ran = true
	}
	if ran {
		wv := value{v: iv, w: iw, wrapped: iwr}
		if lp.ivGlobal {
			m.globals.vals[lp.ivSlot] = wv
		} else {
			fr.vals[lp.ivSlot] = wv
		}
	}
}
