// Package interp executes core-language programs (package lang) with the
// concrete+symbolic small-step semantics of the paper's Figures 4–6: every
// value is a pair of a concrete machine integer and a symbolic expression
// describing how it was computed from the input, the environment and memory
// map variables/cells to such pairs, and conditional branches append their
// symbolic condition to the branch sequence φ.
//
// The interpreter is also the repo's Valgrind substitute:
//
//   - Taint mode (§4.1): per-input-byte labels propagate through every
//     operation; allocation sites report the labels that reach their size
//     operand (the relevant input bytes).
//   - Symbolic-recording mode (§4.2): only operations on designated relevant
//     bytes build symbolic expressions, mirroring the paper's staging that
//     keeps recording tractable.
//   - Memcheck (§4.6): allocations are bounds-tracked with a red zone.
//     Out-of-bounds accesses within the red zone are recorded as
//     InvalidRead/InvalidWrite and execution continues (clobbering allocator
//     canaries, which a later allocation detects as SIGABRT); accesses past
//     the red zone raise a simulated SIGSEGV.
package interp

import (
	"errors"
	"fmt"
	"strings"

	"diode/internal/bv"
	"diode/internal/lang"
	"diode/internal/taint"
)

// RedZone is the number of cells past a block's size that are treated as
// adjacent heap memory: writable (with an InvalidWrite report) rather than
// immediately faulting.
const RedZone = 64

// DefaultFuel bounds the number of interpreter steps per run.
const DefaultFuel = 20_000_000

// Options configure a run.
type Options struct {
	// TrackTaint enables per-byte taint propagation (stage 1).
	TrackTaint bool
	// TrackSymbolic enables symbolic recording and branch-trace capture
	// (stage 2). Implies taint tracking.
	TrackSymbolic bool
	// SymbolicBytes restricts which input bytes get symbolic variables; nil
	// means every byte (when TrackSymbolic is set). This is the paper's
	// "relevant input bytes" optimization.
	SymbolicBytes func(offset int) bool
	// Fuel bounds interpreter steps; 0 means DefaultFuel.
	Fuel int64
	// InputVarName returns the symbolic variable name for input byte i.
	// Nil means the default "in[i]".
	InputVarName func(offset int) string
}

// value is the ⟨v, w⟩ pair of the semantics: a concrete machine integer with
// width, its symbolic expression (nil when the value does not depend on
// symbolic input bytes), and its taint labels.
type value struct {
	v   uint64
	w   uint8
	sym *bv.Term
	tnt *taint.Set
	// wrapped records that some arithmetic step producing this value (or an
	// operand of it) wrapped around the modulus — runtime overflow tracking
	// consistent with bv.OverflowCond (add, sub, mul, shl).
	wrapped bool
}

func (x value) term() *bv.Term {
	if x.sym != nil {
		return x.sym
	}
	return bv.Const(x.w, x.v)
}

// block is an allocated memory region. Cells are stored sparsely so that
// huge (overflowed) allocation sizes cost nothing.
type block struct {
	site   string
	size   uint64
	cells  map[uint64]value
	canary bool // true once an out-of-bounds write clobbered the red zone
}

type frame struct {
	vars map[string]value
}

// machine is one execution in progress.
type machine struct {
	prog    *lang.Program
	input   []byte
	opts    Options
	fuel    int64
	frames  []frame
	blocks  map[uint64]*block
	globals map[string]value // variables named "g_*" are program-wide
	nextID  uint64
	out     Outcome

	// control state
	returning bool
	retVal    value
	hasRet    bool
}

// Control-flow sentinels distinguished from real errors.
var (
	errAbort = errors.New("abort")
	errSegv  = errors.New("segv")
	errAbrt  = errors.New("abrt")
	errFuel  = errors.New("fuel")
)

// Run executes prog on input under opts and returns the observed outcome.
// The program must have been finalized.
func Run(prog *lang.Program, input []byte, opts Options) *Outcome {
	if opts.TrackSymbolic {
		opts.TrackTaint = true
	}
	if opts.Fuel == 0 {
		opts.Fuel = DefaultFuel
	}
	if opts.InputVarName == nil {
		opts.InputVarName = func(i int) string { return fmt.Sprintf("in[%d]", i) }
	}
	m := &machine{
		prog:    prog,
		input:   input,
		opts:    opts,
		fuel:    opts.Fuel,
		blocks:  make(map[uint64]*block),
		globals: make(map[string]value),
	}
	main := prog.Funcs["main"]
	m.frames = append(m.frames, frame{vars: make(map[string]value)})
	err := m.execBlock(main.Body)
	m.out.Steps = opts.Fuel - m.fuel
	switch {
	case err == nil || errors.Is(err, errAbort):
		if errors.Is(err, errAbort) {
			m.out.Kind = OutRejected
		} else {
			m.out.Kind = OutOK
		}
	case errors.Is(err, errSegv):
		m.out.Kind = OutSegv
	case errors.Is(err, errAbrt):
		m.out.Kind = OutAbrt
	case errors.Is(err, errFuel):
		m.out.Kind = OutFuel
	default:
		m.out.Kind = OutError
		m.out.Err = err
	}
	return &m.out
}

func (m *machine) top() *frame { return &m.frames[len(m.frames)-1] }

func (m *machine) step() error {
	m.fuel--
	if m.fuel <= 0 {
		return errFuel
	}
	return nil
}

// --- statement execution ---

func (m *machine) execBlock(b lang.Block) error {
	for _, s := range b {
		if err := m.execStmt(s); err != nil {
			return err
		}
		if m.returning {
			return nil
		}
	}
	return nil
}

func (m *machine) execStmt(s lang.Stmt) error {
	if err := m.step(); err != nil {
		return err
	}
	switch st := s.(type) {
	case lang.Assign:
		v, err := m.eval(st.E)
		if err != nil {
			return err
		}
		m.setVar(st.Var, v)
		return nil
	case lang.Alloc:
		return m.execAlloc(st)
	case lang.Store:
		return m.execStore(st)
	case lang.If:
		taken, err := m.evalCondBranch(st.Label, st.Cond)
		if err != nil {
			return err
		}
		if taken {
			return m.execBlock(st.Then)
		}
		return m.execBlock(st.Else)
	case lang.While:
		for {
			taken, err := m.evalCondBranch(st.Label, st.Cond)
			if err != nil {
				return err
			}
			if !taken {
				return nil
			}
			if err := m.execBlock(st.Body); err != nil {
				return err
			}
			if m.returning {
				return nil
			}
		}
	case lang.ExprStmt:
		_, err := m.eval(st.E)
		return err
	case lang.Return:
		if st.E != nil {
			v, err := m.eval(st.E)
			if err != nil {
				return err
			}
			m.retVal = v
			m.hasRet = true
		} else {
			m.hasRet = false
		}
		m.returning = true
		return nil
	case lang.AbortStmt:
		m.out.AbortMsg = st.Msg
		return errAbort
	case lang.WarnStmt:
		m.out.Warnings = append(m.out.Warnings, st.Msg)
		return nil
	}
	return fmt.Errorf("interp: unknown statement %T", s)
}

func (m *machine) execAlloc(st lang.Alloc) error {
	size, err := m.eval(st.Size)
	if err != nil {
		return err
	}
	// Heap-corruption check: glibc-style abort when a previously clobbered
	// red zone (allocator metadata) is observed by the allocator.
	for _, b := range m.blocks {
		if b.canary {
			m.out.MemErrs = append(m.out.MemErrs, MemError{
				Kind: InvalidWrite, Site: b.site, Offset: b.size, Size: b.size,
			})
			return errAbrt
		}
	}
	m.nextID++
	base := m.nextID << 32
	m.blocks[base] = &block{site: st.Site, size: size.v, cells: make(map[uint64]value)}
	m.out.Allocs = append(m.out.Allocs, AllocEvent{
		Site:       st.Site,
		Seq:        len(m.out.Allocs),
		Size:       size.v,
		Width:      size.w,
		Sym:        size.sym,
		Taint:      size.tnt,
		Wrapped:    size.wrapped,
		BranchMark: len(m.out.Branches),
	})
	m.setVar(st.Var, value{v: base, w: 64})
	return nil
}

// setVar assigns a variable; names beginning with "g_" are globals shared by
// every procedure (the guest applications' file-scope state).
func (m *machine) setVar(name string, v value) {
	if strings.HasPrefix(name, "g_") {
		m.globals[name] = v
		return
	}
	m.top().vars[name] = v
}

func (m *machine) getVar(name string) (value, bool) {
	if strings.HasPrefix(name, "g_") {
		v, ok := m.globals[name]
		return v, ok
	}
	v, ok := m.top().vars[name]
	return v, ok
}

func (m *machine) execStore(st lang.Store) error {
	ptr, err := m.eval(st.Ptr)
	if err != nil {
		return err
	}
	off, err := m.eval(st.Off)
	if err != nil {
		return err
	}
	val, err := m.eval(st.Val)
	if err != nil {
		return err
	}
	b, ok := m.blocks[ptr.v]
	if !ok {
		return fmt.Errorf("interp: store through non-pointer %#x", ptr.v)
	}
	if off.v >= b.size {
		if off.v >= b.size+RedZone {
			m.out.MemErrs = append(m.out.MemErrs, MemError{
				Kind: InvalidWrite, Site: b.site, Offset: off.v, Size: b.size,
			})
			return errSegv
		}
		m.out.MemErrs = append(m.out.MemErrs, MemError{
			Kind: InvalidWrite, Site: b.site, Offset: off.v, Size: b.size,
		})
		b.canary = true // allocator metadata clobbered
	}
	b.cells[off.v] = val
	return nil
}

// --- expression evaluation ---

func (m *machine) eval(e lang.Expr) (value, error) {
	if err := m.step(); err != nil {
		return value{}, err
	}
	switch x := e.(type) {
	case lang.Lit:
		return value{v: x.V & bv.Mask(x.W), w: x.W}, nil
	case lang.VarRef:
		v, ok := m.getVar(x.Name)
		if !ok {
			return value{}, fmt.Errorf("interp: undefined variable %q", x.Name)
		}
		return v, nil
	case lang.Bin:
		a, err := m.eval(x.A)
		if err != nil {
			return value{}, err
		}
		b, err := m.eval(x.B)
		if err != nil {
			return value{}, err
		}
		return m.binop(x.Op, a, b)
	case lang.Un:
		a, err := m.eval(x.A)
		if err != nil {
			return value{}, err
		}
		return m.unop(x.Neg, a), nil
	case lang.Cvt:
		a, err := m.eval(x.A)
		if err != nil {
			return value{}, err
		}
		return m.convert(x.W, x.Signed, a), nil
	case lang.InByte:
		idx, err := m.eval(x.Idx)
		if err != nil {
			return value{}, err
		}
		return m.readInput(idx)
	case lang.InLen:
		return value{v: uint64(len(m.input)), w: 32}, nil
	case lang.LoadExpr:
		return m.evalLoad(x)
	case lang.CallExpr:
		return m.call(x)
	}
	return value{}, fmt.Errorf("interp: unknown expression %T", e)
}

func (m *machine) readInput(idx value) (value, error) {
	i := int(idx.v)
	if i < 0 || i >= len(m.input) {
		// Reading past the end of input yields zero, like a short read.
		return value{v: 0, w: 8, tnt: idx.tnt}, nil
	}
	out := value{v: uint64(m.input[i]), w: 8}
	if m.opts.TrackTaint {
		out.tnt = taint.Single(i).Union(idx.tnt)
	}
	if m.opts.TrackSymbolic && (m.opts.SymbolicBytes == nil || m.opts.SymbolicBytes(i)) {
		out.sym = bv.Var(8, m.opts.InputVarName(i))
	}
	return out, nil
}

func (m *machine) evalLoad(x lang.LoadExpr) (value, error) {
	ptr, err := m.eval(x.Ptr)
	if err != nil {
		return value{}, err
	}
	off, err := m.eval(x.Off)
	if err != nil {
		return value{}, err
	}
	b, ok := m.blocks[ptr.v]
	if !ok {
		return value{}, fmt.Errorf("interp: load through non-pointer %#x", ptr.v)
	}
	if off.v >= b.size {
		m.out.MemErrs = append(m.out.MemErrs, MemError{
			Kind: InvalidRead, Site: b.site, Offset: off.v, Size: b.size,
		})
		if off.v >= b.size+RedZone {
			return value{}, errSegv
		}
	}
	if v, ok := b.cells[off.v]; ok {
		return v, nil
	}
	return value{v: 0, w: 8}, nil // alloc zero-initializes (Figure 5)
}

func (m *machine) call(x lang.CallExpr) (value, error) {
	callee := m.prog.Funcs[x.Fn]
	f := frame{vars: make(map[string]value, len(callee.Params))}
	for i, p := range callee.Params {
		av, err := m.eval(x.Args[i])
		if err != nil {
			return value{}, err
		}
		f.vars[p] = av
	}
	m.frames = append(m.frames, f)
	err := m.execBlock(callee.Body)
	m.frames = m.frames[:len(m.frames)-1]
	ret := value{w: 32}
	if m.hasRet {
		ret = m.retVal
	}
	m.returning = false
	m.hasRet = false
	if err != nil {
		return value{}, err
	}
	return ret, nil
}

func (m *machine) binop(op lang.BinOp, a, b value) (value, error) {
	if a.w != b.w {
		return value{}, fmt.Errorf("interp: width mismatch in %s: %d vs %d bits", op, a.w, b.w)
	}
	w := a.w
	mask := bv.Mask(w)
	var v uint64
	wrapped := a.wrapped || b.wrapped
	switch op {
	case lang.OpAdd:
		v = (a.v + b.v) & mask
		wrapped = wrapped || v < a.v // carry out
	case lang.OpSub:
		v = (a.v - b.v) & mask
		wrapped = wrapped || b.v > a.v // borrow
	case lang.OpMul:
		v = (a.v * b.v) & mask
		wrapped = wrapped || mulWraps(a.v, b.v, w)
	case lang.OpUDiv:
		if b.v == 0 {
			v = mask
		} else {
			v = a.v / b.v
		}
	case lang.OpURem:
		if b.v == 0 {
			v = a.v
		} else {
			v = a.v % b.v
		}
	case lang.OpAnd:
		v = a.v & b.v
	case lang.OpOr:
		v = a.v | b.v
	case lang.OpXor:
		v = a.v ^ b.v
	case lang.OpShl:
		if b.v >= uint64(w) {
			v = 0
			wrapped = wrapped || a.v != 0
		} else {
			v = (a.v << b.v) & mask
			wrapped = wrapped || a.v>>(uint64(w)-b.v) != 0 && b.v != 0
		}
	case lang.OpLShr:
		if b.v >= uint64(w) {
			v = 0
		} else {
			v = a.v >> b.v
		}
	case lang.OpAShr:
		s := b.v
		if s >= uint64(w) {
			s = uint64(w) - 1
		}
		v = uint64(int64(signExtend(a.v, w))>>s) & mask
	default:
		return value{}, fmt.Errorf("interp: unknown binop %d", op)
	}
	out := value{v: v, w: w, wrapped: wrapped}
	if m.opts.TrackTaint {
		out.tnt = a.tnt.Union(b.tnt)
	}
	// The INPVAR rules of Figure 4: a symbolic expression is built whenever
	// either operand is symbolic; concrete operands appear as constants.
	if a.sym != nil || b.sym != nil {
		out.sym = symBinop(op, a, b)
	}
	return out, nil
}

func symBinop(op lang.BinOp, a, b value) *bv.Term {
	x, y := a.term(), b.term()
	switch op {
	case lang.OpAdd:
		return bv.Add(x, y)
	case lang.OpSub:
		return bv.Sub(x, y)
	case lang.OpMul:
		return bv.Mul(x, y)
	case lang.OpUDiv:
		return bv.UDiv(x, y)
	case lang.OpURem:
		return bv.URem(x, y)
	case lang.OpAnd:
		return bv.And(x, y)
	case lang.OpOr:
		return bv.Or(x, y)
	case lang.OpXor:
		return bv.Xor(x, y)
	case lang.OpShl:
		return bv.Shl(x, y)
	case lang.OpLShr:
		return bv.LShr(x, y)
	default:
		return bv.AShr(x, y)
	}
}

// mulWraps reports whether the ideal product of x and y exceeds w bits.
func mulWraps(x, y uint64, w uint8) bool {
	if x == 0 || y == 0 {
		return false
	}
	if w <= 32 {
		return x*y > bv.Mask(w)
	}
	return x > bv.Mask(w)/y
}

func (m *machine) unop(neg bool, a value) value {
	out := value{w: a.w, tnt: a.tnt, wrapped: a.wrapped}
	if neg {
		out.v = (-a.v) & bv.Mask(a.w)
	} else {
		out.v = (^a.v) & bv.Mask(a.w)
	}
	if a.sym != nil {
		if neg {
			out.sym = bv.Neg(a.sym)
		} else {
			out.sym = bv.Not(a.sym)
		}
	}
	return out
}

func (m *machine) convert(w uint8, signed bool, a value) value {
	out := value{w: w, tnt: a.tnt, wrapped: a.wrapped}
	switch {
	case w == a.w:
		return a
	case w > a.w:
		if signed {
			out.v = signExtend(a.v, a.w) & bv.Mask(w)
		} else {
			out.v = a.v
		}
		if a.sym != nil {
			if signed {
				out.sym = bv.SExt(w, a.sym)
			} else {
				out.sym = bv.ZExt(w, a.sym)
			}
		}
	default: // truncation
		out.v = a.v & bv.Mask(w)
		if a.sym != nil {
			out.sym = bv.Trunc(w, a.sym)
		}
	}
	return out
}

// --- boolean evaluation and branch recording ---

// evalCondBranch evaluates a branch condition, appends to φ when the
// condition is input-dependent, and returns the direction taken.
func (m *machine) evalCondBranch(label string, c lang.BoolExpr) (bool, error) {
	taken, sym, _, err := m.evalBool(c)
	if err != nil {
		return false, err
	}
	if m.opts.TrackSymbolic && sym != nil {
		cond := sym
		if !taken {
			cond = bv.NotB(cond)
		}
		m.out.Branches = append(m.out.Branches, BranchRecord{
			Label: label,
			Taken: taken,
			Cond:  cond,
		})
	}
	return taken, nil
}

// evalBool returns the concrete truth value, the symbolic condition (nil when
// input-independent) and the taint of the condition.
func (m *machine) evalBool(c lang.BoolExpr) (bool, *bv.Bool, *taint.Set, error) {
	if err := m.step(); err != nil {
		return false, nil, nil, err
	}
	switch x := c.(type) {
	case lang.BoolLit:
		return x.V, nil, nil, nil
	case lang.Cmp:
		a, err := m.eval(x.A)
		if err != nil {
			return false, nil, nil, err
		}
		b, err := m.eval(x.B)
		if err != nil {
			return false, nil, nil, err
		}
		if a.w != b.w {
			return false, nil, nil, fmt.Errorf("interp: width mismatch in %s: %d vs %d bits", x.Op, a.w, b.w)
		}
		cv := concreteCmp(x.Op, a, b)
		var sym *bv.Bool
		if a.sym != nil || b.sym != nil {
			sym = symCmp(x.Op, a.term(), b.term())
		}
		var tn *taint.Set
		if m.opts.TrackTaint {
			tn = a.tnt.Union(b.tnt)
		}
		return cv, sym, tn, nil
	case lang.NotE:
		v, sym, tn, err := m.evalBool(x.A)
		if err != nil {
			return false, nil, nil, err
		}
		if sym != nil {
			sym = bv.NotB(sym)
		}
		return !v, sym, tn, nil
	case lang.AndE:
		av, asym, at, err := m.evalBool(x.A)
		if err != nil {
			return false, nil, nil, err
		}
		bvv, bsym, bt, err := m.evalBool(x.B)
		if err != nil {
			return false, nil, nil, err
		}
		sym := combineBool(av, asym, bvv, bsym, true)
		return av && bvv, sym, at.Union(bt), nil
	case lang.OrE:
		av, asym, at, err := m.evalBool(x.A)
		if err != nil {
			return false, nil, nil, err
		}
		bvv, bsym, bt, err := m.evalBool(x.B)
		if err != nil {
			return false, nil, nil, err
		}
		sym := combineBool(av, asym, bvv, bsym, false)
		return av || bvv, sym, at.Union(bt), nil
	}
	return false, nil, nil, fmt.Errorf("interp: unknown boolean expression %T", c)
}

// combineBool builds the symbolic form of a∧b or a∨b where either side may be
// concrete (nil symbolic).
func combineBool(av bool, asym *bv.Bool, bvv bool, bsym *bv.Bool, isAnd bool) *bv.Bool {
	if asym == nil && bsym == nil {
		return nil
	}
	a := asym
	if a == nil {
		a = bv.BoolConst(av)
	}
	b := bsym
	if b == nil {
		b = bv.BoolConst(bvv)
	}
	if isAnd {
		return bv.AndB(a, b)
	}
	return bv.OrB(a, b)
}

func concreteCmp(op lang.CmpOp, a, b value) bool {
	switch op {
	case lang.CmpEq:
		return a.v == b.v
	case lang.CmpNe:
		return a.v != b.v
	case lang.CmpUlt:
		return a.v < b.v
	case lang.CmpUle:
		return a.v <= b.v
	case lang.CmpUgt:
		return a.v > b.v
	case lang.CmpUge:
		return a.v >= b.v
	case lang.CmpSlt:
		return int64(signExtend(a.v, a.w)) < int64(signExtend(b.v, b.w))
	case lang.CmpSle:
		return int64(signExtend(a.v, a.w)) <= int64(signExtend(b.v, b.w))
	case lang.CmpSgt:
		return int64(signExtend(a.v, a.w)) > int64(signExtend(b.v, b.w))
	default:
		return int64(signExtend(a.v, a.w)) >= int64(signExtend(b.v, b.w))
	}
}

func symCmp(op lang.CmpOp, x, y *bv.Term) *bv.Bool {
	switch op {
	case lang.CmpEq:
		return bv.Eq(x, y)
	case lang.CmpNe:
		return bv.Ne(x, y)
	case lang.CmpUlt:
		return bv.Ult(x, y)
	case lang.CmpUle:
		return bv.Ule(x, y)
	case lang.CmpUgt:
		return bv.Ugt(x, y)
	case lang.CmpUge:
		return bv.Uge(x, y)
	case lang.CmpSlt:
		return bv.Slt(x, y)
	case lang.CmpSle:
		return bv.Sle(x, y)
	case lang.CmpSgt:
		return bv.Sgt(x, y)
	default:
		return bv.Sge(x, y)
	}
}

func signExtend(v uint64, w uint8) uint64 {
	if w == 64 {
		return v
	}
	sign := uint64(1) << (w - 1)
	v &= bv.Mask(w)
	if v&sign != 0 {
		return v | ^bv.Mask(w)
	}
	return v
}
