// Package interp executes core-language programs (package lang) with the
// concrete+symbolic small-step semantics of the paper's Figures 4–6: every
// value is a pair of a concrete machine integer and a symbolic expression
// describing how it was computed from the input, the environment and memory
// map variables/cells to such pairs, and conditional branches append their
// symbolic condition to the branch sequence φ.
//
// The interpreter is also the repo's Valgrind substitute:
//
//   - Taint mode (§4.1): per-input-byte labels propagate through every
//     operation; allocation sites report the labels that reach their size
//     operand (the relevant input bytes).
//   - Symbolic-recording mode (§4.2): only operations on designated relevant
//     bytes build symbolic expressions, mirroring the paper's staging that
//     keeps recording tractable.
//   - Memcheck (§4.6): allocations are bounds-tracked with a red zone.
//     Out-of-bounds accesses within the red zone are recorded as
//     InvalidRead/InvalidWrite and execution continues (clobbering allocator
//     canaries, which a later allocation detects as SIGABRT); accesses past
//     the red zone raise a simulated SIGSEGV.
package interp

import (
	"errors"
	"fmt"
	"strings"

	"diode/internal/bv"
	"diode/internal/lang"
	"diode/internal/taint"
)

// RedZone is the number of cells past a block's size that are treated as
// adjacent heap memory: writable (with an InvalidWrite report) rather than
// immediately faulting.
const RedZone = 64

// DefaultFuel bounds the number of interpreter steps per run.
const DefaultFuel = 20_000_000

// Options configure a run.
type Options struct {
	// TrackTaint enables per-byte taint propagation (stage 1).
	TrackTaint bool
	// TrackSymbolic enables symbolic recording and branch-trace capture
	// (stage 2). Implies taint tracking.
	TrackSymbolic bool
	// SymbolicBytes restricts which input bytes get symbolic variables; nil
	// means every byte (when TrackSymbolic is set). This is the paper's
	// "relevant input bytes" optimization.
	SymbolicBytes func(offset int) bool
	// Fuel bounds interpreter steps; 0 means DefaultFuel.
	Fuel int64
	// Cancel, when non-nil, aborts the run once the channel is closed: the
	// interpreter polls it on the branch hot path (every conditional
	// evaluation, rate-limited to once per cancelPollInterval fuel-charged
	// branches) — the same periodic boundary the fuel budget is enforced on —
	// and ends the run with OutCancelled. Any long-running guest execution
	// passes through a loop-head branch every iteration, so cancellation is
	// observed promptly without taxing straight-line execution. This is how
	// context cancellation reaches mid-run guest executions (the core derives
	// it from ctx.Done()).
	Cancel <-chan struct{}
	// InputVarName returns the symbolic variable name for input byte i.
	// Nil means the default "in[i]".
	InputVarName func(offset int) string
}

// cancelPollInterval is how many branch evaluations pass between polls of
// Options.Cancel. Polling a channel costs a few nanoseconds; rate-limiting
// keeps the branch hot path unaffected while still observing cancellation
// within microseconds of guest time.
const cancelPollInterval = 1024

// value is the ⟨v, w⟩ pair of the semantics: a concrete machine integer with
// width, its symbolic expression (nil when the value does not depend on
// symbolic input bytes), and its taint labels. Field order packs the struct
// into 32 bytes — values are copied on every expression step.
type value struct {
	v   uint64
	sym *bv.Term
	tnt *taint.Set
	w   uint8
	// wrapped records that some arithmetic step producing this value (or an
	// operand of it) wrapped around the modulus — runtime overflow tracking
	// consistent with bv.OverflowCond (add, sub, mul, shl).
	wrapped bool
}

func (x value) term() *bv.Term {
	if x.sym != nil {
		return x.sym
	}
	return bv.Const(x.w, x.v)
}

// block is an allocated memory region. Cells are stored sparsely so that
// huge (overflowed) allocation sizes cost nothing.
type block struct {
	site   string
	size   uint64
	cells  map[uint64]value
	canary bool // true once an out-of-bounds write clobbered the red zone

	// Machine-only cell storage (the tree-walking interpreter leaves all of
	// this zero and uses the cells map alone). Offsets below len(dense) live
	// in the dense prefix; higher offsets live in an open-addressing table.
	// Both carry a generation stamp marking which entries the current run
	// wrote — an unstamped entry reads as the zero-initialized cell — so
	// recycling a block costs one generation bump instead of clearing
	// storage.
	dense []value
	stamp []uint32
	far   farCells
	gen   uint32
}

const (
	// denseLimit bounds the dense-cell prefix per block.
	denseLimit = 4096
	// blockPoolCap bounds how many blocks a Machine recycles across runs.
	blockPoolCap = 64
)

// storeCell writes a cell through the Machine's dense/far storage. plain is
// true when the run tracks neither taint nor symbolic state, so the value is
// pointer-free and can go to the GC-invisible log.
func (b *block) storeCell(off uint64, v value, plain bool) {
	if off < uint64(len(b.dense)) {
		b.dense[off] = v
		b.stamp[off] = b.gen
		return
	}
	b.far.store(off, b.gen, v, plain)
}

// loadCell reads a cell through the Machine's dense/far storage; untouched
// cells read as the zero-initialized value (Figure 5).
func (b *block) loadCell(off uint64) value {
	if off < uint64(len(b.dense)) {
		if b.stamp[off] == b.gen {
			return b.dense[off]
		}
		return value{v: 0, w: 8}
	}
	if v, ok := b.far.load(off, b.gen); ok {
		return v
	}
	return value{v: 0, w: 8}
}

// farCells stores a Machine block's cells beyond the dense prefix. Guests
// overwhelmingly *write* far cells (memset loops, end-of-buffer pokes over
// huge allocations) and read them rarely, so writes append to a log — no
// hashing, no growth rehashes — and the log is folded into the lookup table
// only if the run ever loads a far cell. Later entries overwrite earlier
// ones during the fold, preserving store order. Plain-mode runs (no taint,
// no symbolic state) append to a pointer-free log the GC never scans; a run
// is entirely in one mode, so at most one log is populated per run.
type farCells struct {
	log      []farWrite      // taint/symbolic-mode writes (pointer-carrying)
	plainLog []farPlainWrite // plain-mode writes (GC-invisible)
	tab      cellTable
	indexed  bool // this run has folded its logs and writes to tab directly
}

type farWrite struct {
	off uint64
	val value
}

type farPlainWrite struct {
	off     uint64
	v       uint64
	w       uint8
	wrapped bool
}

func (f *farCells) store(off uint64, gen uint32, v value, plain bool) {
	if f.indexed {
		f.tab.store(off, gen, v)
		return
	}
	if plain {
		f.plainLog = append(f.plainLog, farPlainWrite{off: off, v: v.v, w: v.w, wrapped: v.wrapped})
		return
	}
	f.log = append(f.log, farWrite{off: off, val: v})
}

func (f *farCells) load(off uint64, gen uint32) (value, bool) {
	if !f.indexed {
		f.indexed = true
		for i := range f.plainLog {
			e := &f.plainLog[i]
			f.tab.store(e.off, gen, value{v: e.v, w: e.w, wrapped: e.wrapped})
		}
		f.plainLog = f.plainLog[:0]
		for i := range f.log {
			f.tab.store(f.log[i].off, gen, f.log[i].val)
		}
		f.log = f.log[:0]
	}
	return f.tab.load(off, gen)
}

// recycle prepares the storage for the next run (whose generation differs,
// so stale table entries read as misses), dropping outsized storage.
func (f *farCells) recycle() {
	f.indexed = false
	if cap(f.log) > eventPoolCap {
		f.log = nil
	} else {
		f.log = f.log[:0]
	}
	if cap(f.plainLog) > 4*eventPoolCap {
		f.plainLog = nil
	} else {
		f.plainLog = f.plainLog[:0]
	}
	if len(f.tab.slots) > eventPoolCap {
		f.tab = cellTable{}
	}
}

// cellTable is a linear-probing hash table over cell offsets with
// generation-stamped entries: entries from earlier runs read as misses and
// their slots are reclaimed in place, so the table is reusable across runs
// without clearing. At most one slot per offset ever exists (stores update
// the offset's slot regardless of generation), which is what lets a lookup
// stop at the first offset match.
type cellTable struct {
	slots []cellSlot
	used  int // slots ever claimed (any generation)
}

type cellSlot struct {
	off uint64
	gen uint32 // 0 = never used
	val value
}

func cellHash(off uint64) uint64 {
	off *= 0x9E3779B97F4A7C15 // Fibonacci scrambling of the offset bits
	return off ^ off>>29
}

func (t *cellTable) store(off uint64, gen uint32, v value) {
	if t.used*4 >= len(t.slots)*3 {
		t.grow(gen)
	}
	mask := uint64(len(t.slots) - 1)
	for i := cellHash(off) & mask; ; i = (i + 1) & mask {
		s := &t.slots[i]
		switch {
		case s.gen == 0: // never used: claim
			*s = cellSlot{off: off, gen: gen, val: v}
			t.used++
			return
		case s.off == off: // this offset's slot (any generation): update
			s.gen = gen
			s.val = v
			return
		case s.gen != gen: // stale other offset: reclaim in place
			*s = cellSlot{off: off, gen: gen, val: v}
			return
		}
	}
}

func (t *cellTable) load(off uint64, gen uint32) (value, bool) {
	if t.slots == nil {
		return value{}, false
	}
	mask := uint64(len(t.slots) - 1)
	for i := cellHash(off) & mask; ; i = (i + 1) & mask {
		s := &t.slots[i]
		if s.gen == 0 {
			return value{}, false
		}
		if s.off == off {
			if s.gen == gen {
				return s.val, true
			}
			return value{}, false // stale: this run never wrote the cell
		}
	}
}

// grow rehashes the current generation's live entries into a larger table,
// dropping stale ones.
func (t *cellTable) grow(gen uint32) {
	live := 0
	for i := range t.slots {
		if t.slots[i].gen == gen {
			live++
		}
	}
	size := 64
	for size < 4*live {
		size *= 2
	}
	old := t.slots
	t.slots = make([]cellSlot, size)
	t.used = 0
	mask := uint64(size - 1)
	for i := range old {
		s := &old[i]
		if s.gen != gen {
			continue
		}
		for j := cellHash(s.off) & mask; ; j = (j + 1) & mask {
			if t.slots[j].gen == 0 {
				t.slots[j] = *s
				t.used++
				break
			}
		}
	}
}

type frame struct {
	vars map[string]value
}

// machine is one execution in progress.
type machine struct {
	prog    *lang.Program
	input   []byte
	opts    Options
	fuel    int64
	frames  []frame
	blocks  map[uint64]*block
	canary  *block           // first block whose red zone was clobbered
	globals map[string]value // variables named "g_*" are program-wide
	nextID  uint64
	out     Outcome

	// control state
	returning bool
	retVal    value
	hasRet    bool

	// cancelPoll counts down branch evaluations until the next poll of
	// opts.Cancel (see cancelPollInterval).
	cancelPoll int
}

// Control-flow sentinels distinguished from real errors.
var (
	errAbort  = errors.New("abort")
	errSegv   = errors.New("segv")
	errAbrt   = errors.New("abrt")
	errFuel   = errors.New("fuel")
	errCancel = errors.New("cancelled")
)

// Run executes prog on input under opts and returns the observed outcome.
// The program must have been finalized.
//
// Run is a convenience wrapper over the compiled execution layer: it compiles
// prog and runs it on a fresh Machine. Callers that execute the same program
// many times (the core Hunter, the harness sweeps) should Compile once and
// reuse a Machine via Reset/Run, which amortizes compilation and storage
// allocation across runs.
func Run(prog *lang.Program, input []byte, opts Options) *Outcome {
	m := NewMachine(Compile(prog))
	m.Reset(input, opts)
	return m.Run()
}

// RunTree executes prog on the original tree-walking interpreter: a fresh
// machine per call, environments as string-keyed maps, every variable
// re-resolved by name at each step. It is retained as the compiled layer's
// differential oracle (TestCompiledParity* pin byte-identical Outcomes) and
// as the core.Options.OneShotExecution ablation baseline; new code should use
// Run or a reused Machine.
func RunTree(prog *lang.Program, input []byte, opts Options) *Outcome {
	if opts.TrackSymbolic {
		opts.TrackTaint = true
	}
	if opts.Fuel == 0 {
		opts.Fuel = DefaultFuel
	}
	if opts.InputVarName == nil {
		opts.InputVarName = func(i int) string { return fmt.Sprintf("in[%d]", i) }
	}
	m := &machine{
		prog:    prog,
		input:   input,
		opts:    opts,
		fuel:    opts.Fuel,
		blocks:  make(map[uint64]*block),
		globals: make(map[string]value),
	}
	main := prog.Funcs["main"]
	m.frames = append(m.frames, frame{vars: make(map[string]value)})
	err := m.execBlock(main.Body)
	m.out.Steps = opts.Fuel - m.fuel
	switch {
	case err == nil || errors.Is(err, errAbort):
		if errors.Is(err, errAbort) {
			m.out.Kind = OutRejected
		} else {
			m.out.Kind = OutOK
		}
	case errors.Is(err, errSegv):
		m.out.Kind = OutSegv
	case errors.Is(err, errAbrt):
		m.out.Kind = OutAbrt
	case errors.Is(err, errFuel):
		m.out.Kind = OutFuel
	case errors.Is(err, errCancel):
		m.out.Kind = OutCancelled
	default:
		m.out.Kind = OutError
		m.out.Err = err
	}
	return &m.out
}

func (m *machine) top() *frame { return &m.frames[len(m.frames)-1] }

func (m *machine) step() error {
	m.fuel--
	if m.fuel <= 0 {
		return errFuel
	}
	return nil
}

// --- statement execution ---

func (m *machine) execBlock(b lang.Block) error {
	for _, s := range b {
		if err := m.execStmt(s); err != nil {
			return err
		}
		if m.returning {
			return nil
		}
	}
	return nil
}

func (m *machine) execStmt(s lang.Stmt) error {
	if err := m.step(); err != nil {
		return err
	}
	switch st := s.(type) {
	case lang.Assign:
		v, err := m.eval(st.E)
		if err != nil {
			return err
		}
		m.setVar(st.Var, v)
		return nil
	case lang.Alloc:
		return m.execAlloc(st)
	case lang.Store:
		return m.execStore(st)
	case lang.If:
		taken, err := m.evalCondBranch(st.Label, st.Cond)
		if err != nil {
			return err
		}
		if taken {
			return m.execBlock(st.Then)
		}
		return m.execBlock(st.Else)
	case lang.While:
		for {
			taken, err := m.evalCondBranch(st.Label, st.Cond)
			if err != nil {
				return err
			}
			if !taken {
				return nil
			}
			if err := m.execBlock(st.Body); err != nil {
				return err
			}
			if m.returning {
				return nil
			}
		}
	case lang.ExprStmt:
		_, err := m.eval(st.E)
		return err
	case lang.Return:
		if st.E != nil {
			v, err := m.eval(st.E)
			if err != nil {
				return err
			}
			m.retVal = v
			m.hasRet = true
		} else {
			m.hasRet = false
		}
		m.returning = true
		return nil
	case lang.AbortStmt:
		m.out.AbortMsg = st.Msg
		return errAbort
	case lang.WarnStmt:
		m.out.Warnings = append(m.out.Warnings, st.Msg)
		return nil
	}
	return fmt.Errorf("interp: unknown statement %T", s)
}

func (m *machine) execAlloc(st lang.Alloc) error {
	size, err := m.eval(st.Size)
	if err != nil {
		return err
	}
	// Heap-corruption check: glibc-style abort when a previously clobbered
	// red zone (allocator metadata) is observed by the allocator. The error
	// is attributed to the *first* clobbered block — deterministically, and
	// identically to the compiled Machine — rather than to whichever block a
	// map iteration happens to yield.
	if b := m.canary; b != nil {
		m.out.MemErrs = append(m.out.MemErrs, MemError{
			Kind: InvalidWrite, Site: b.site, Offset: b.size, Size: b.size,
		})
		return errAbrt
	}
	m.nextID++
	base := m.nextID << 32
	m.blocks[base] = &block{site: st.Site, size: size.v, cells: make(map[uint64]value)}
	m.out.Allocs = append(m.out.Allocs, AllocEvent{
		Site:       st.Site,
		Seq:        len(m.out.Allocs),
		Size:       size.v,
		Width:      size.w,
		Sym:        size.sym,
		Taint:      size.tnt,
		Wrapped:    size.wrapped,
		BranchMark: len(m.out.Branches),
	})
	m.setVar(st.Var, value{v: base, w: 64})
	return nil
}

// setVar assigns a variable; names beginning with "g_" are globals shared by
// every procedure (the guest applications' file-scope state).
func (m *machine) setVar(name string, v value) {
	if strings.HasPrefix(name, "g_") {
		m.globals[name] = v
		return
	}
	m.top().vars[name] = v
}

func (m *machine) getVar(name string) (value, bool) {
	if strings.HasPrefix(name, "g_") {
		v, ok := m.globals[name]
		return v, ok
	}
	v, ok := m.top().vars[name]
	return v, ok
}

func (m *machine) execStore(st lang.Store) error {
	ptr, err := m.eval(st.Ptr)
	if err != nil {
		return err
	}
	off, err := m.eval(st.Off)
	if err != nil {
		return err
	}
	val, err := m.eval(st.Val)
	if err != nil {
		return err
	}
	b, ok := m.blocks[ptr.v]
	if !ok {
		return fmt.Errorf("interp: store through non-pointer %#x", ptr.v)
	}
	if off.v >= b.size {
		if off.v >= b.size+RedZone {
			m.out.MemErrs = append(m.out.MemErrs, MemError{
				Kind: InvalidWrite, Site: b.site, Offset: off.v, Size: b.size,
			})
			return errSegv
		}
		m.out.MemErrs = append(m.out.MemErrs, MemError{
			Kind: InvalidWrite, Site: b.site, Offset: off.v, Size: b.size,
		})
		b.canary = true // allocator metadata clobbered
		if m.canary == nil {
			m.canary = b
		}
	}
	b.cells[off.v] = val
	return nil
}

// --- expression evaluation ---

func (m *machine) eval(e lang.Expr) (value, error) {
	if err := m.step(); err != nil {
		return value{}, err
	}
	switch x := e.(type) {
	case lang.Lit:
		return value{v: x.V & bv.Mask(x.W), w: x.W}, nil
	case lang.VarRef:
		v, ok := m.getVar(x.Name)
		if !ok {
			return value{}, fmt.Errorf("interp: undefined variable %q", x.Name)
		}
		return v, nil
	case lang.Bin:
		a, err := m.eval(x.A)
		if err != nil {
			return value{}, err
		}
		b, err := m.eval(x.B)
		if err != nil {
			return value{}, err
		}
		return binop(x.Op, a, b, m.opts.TrackTaint)
	case lang.Un:
		a, err := m.eval(x.A)
		if err != nil {
			return value{}, err
		}
		return unop(x.Neg, a), nil
	case lang.Cvt:
		a, err := m.eval(x.A)
		if err != nil {
			return value{}, err
		}
		return convert(x.W, x.Signed, a), nil
	case lang.InByte:
		idx, err := m.eval(x.Idx)
		if err != nil {
			return value{}, err
		}
		return m.readInput(idx)
	case lang.InLen:
		return value{v: uint64(len(m.input)), w: 32}, nil
	case lang.LoadExpr:
		return m.evalLoad(x)
	case lang.CallExpr:
		return m.call(x)
	}
	return value{}, fmt.Errorf("interp: unknown expression %T", e)
}

func (m *machine) readInput(idx value) (value, error) {
	i := int(idx.v)
	if i < 0 || i >= len(m.input) {
		// Reading past the end of input yields zero, like a short read.
		return value{v: 0, w: 8, tnt: idx.tnt}, nil
	}
	out := value{v: uint64(m.input[i]), w: 8}
	if m.opts.TrackTaint {
		out.tnt = taint.Single(i).Union(idx.tnt)
	}
	if m.opts.TrackSymbolic && (m.opts.SymbolicBytes == nil || m.opts.SymbolicBytes(i)) {
		out.sym = bv.Var(8, m.opts.InputVarName(i))
	}
	return out, nil
}

func (m *machine) evalLoad(x lang.LoadExpr) (value, error) {
	ptr, err := m.eval(x.Ptr)
	if err != nil {
		return value{}, err
	}
	off, err := m.eval(x.Off)
	if err != nil {
		return value{}, err
	}
	b, ok := m.blocks[ptr.v]
	if !ok {
		return value{}, fmt.Errorf("interp: load through non-pointer %#x", ptr.v)
	}
	if off.v >= b.size {
		m.out.MemErrs = append(m.out.MemErrs, MemError{
			Kind: InvalidRead, Site: b.site, Offset: off.v, Size: b.size,
		})
		if off.v >= b.size+RedZone {
			return value{}, errSegv
		}
	}
	if v, ok := b.cells[off.v]; ok {
		return v, nil
	}
	return value{v: 0, w: 8}, nil // alloc zero-initializes (Figure 5)
}

func (m *machine) call(x lang.CallExpr) (value, error) {
	callee := m.prog.Funcs[x.Fn]
	f := frame{vars: make(map[string]value, len(callee.Params))}
	for i, p := range callee.Params {
		av, err := m.eval(x.Args[i])
		if err != nil {
			return value{}, err
		}
		f.vars[p] = av
	}
	m.frames = append(m.frames, f)
	err := m.execBlock(callee.Body)
	m.frames = m.frames[:len(m.frames)-1]
	ret := value{w: 32}
	if m.hasRet {
		ret = m.retVal
	}
	m.returning = false
	m.hasRet = false
	if err != nil {
		return value{}, err
	}
	return ret, nil
}

// binop, unop and convert implement the operator semantics shared by the
// tree-walking machine and the compiled Machine; trackTaint selects whether
// result taint is computed.
func binop(op lang.BinOp, a, b value, trackTaint bool) (value, error) {
	if a.w != b.w {
		return value{}, fmt.Errorf("interp: width mismatch in %s: %d vs %d bits", op, a.w, b.w)
	}
	return binopVal(op, &a, &b, trackTaint)
}

// binopVal is binop after the width check; the compiled Machine calls it
// directly (panicking on its own width mismatch) so the hot path carries no
// error plumbing for the impossible cases. Operands are passed by pointer to
// keep the hot call free of 32-byte struct copies; they are not modified.
func binopVal(op lang.BinOp, a, b *value, trackTaint bool) (value, error) {
	w := a.w
	mask := bv.Mask(w)
	var v uint64
	wrapped := a.wrapped || b.wrapped
	switch op {
	case lang.OpAdd:
		v = (a.v + b.v) & mask
		wrapped = wrapped || v < a.v // carry out
	case lang.OpSub:
		v = (a.v - b.v) & mask
		wrapped = wrapped || b.v > a.v // borrow
	case lang.OpMul:
		v = (a.v * b.v) & mask
		wrapped = wrapped || mulWraps(a.v, b.v, w)
	case lang.OpUDiv:
		if b.v == 0 {
			v = mask
		} else {
			v = a.v / b.v
		}
	case lang.OpURem:
		if b.v == 0 {
			v = a.v
		} else {
			v = a.v % b.v
		}
	case lang.OpAnd:
		v = a.v & b.v
	case lang.OpOr:
		v = a.v | b.v
	case lang.OpXor:
		v = a.v ^ b.v
	case lang.OpShl:
		if b.v >= uint64(w) {
			v = 0
			wrapped = wrapped || a.v != 0
		} else {
			v = (a.v << b.v) & mask
			wrapped = wrapped || a.v>>(uint64(w)-b.v) != 0 && b.v != 0
		}
	case lang.OpLShr:
		if b.v >= uint64(w) {
			v = 0
		} else {
			v = a.v >> b.v
		}
	case lang.OpAShr:
		s := b.v
		if s >= uint64(w) {
			s = uint64(w) - 1
		}
		v = uint64(int64(signExtend(a.v, w))>>s) & mask
	default:
		return value{}, fmt.Errorf("interp: unknown binop %d", op)
	}
	out := value{v: v, w: w, wrapped: wrapped}
	if trackTaint {
		out.tnt = a.tnt.Union(b.tnt)
	}
	// The INPVAR rules of Figure 4: a symbolic expression is built whenever
	// either operand is symbolic; concrete operands appear as constants.
	if a.sym != nil || b.sym != nil {
		out.sym = symBinop(op, a, b)
	}
	return out, nil
}

func symBinop(op lang.BinOp, a, b *value) *bv.Term {
	x, y := a.term(), b.term()
	switch op {
	case lang.OpAdd:
		return bv.Add(x, y)
	case lang.OpSub:
		return bv.Sub(x, y)
	case lang.OpMul:
		return bv.Mul(x, y)
	case lang.OpUDiv:
		return bv.UDiv(x, y)
	case lang.OpURem:
		return bv.URem(x, y)
	case lang.OpAnd:
		return bv.And(x, y)
	case lang.OpOr:
		return bv.Or(x, y)
	case lang.OpXor:
		return bv.Xor(x, y)
	case lang.OpShl:
		return bv.Shl(x, y)
	case lang.OpLShr:
		return bv.LShr(x, y)
	default:
		return bv.AShr(x, y)
	}
}

// mulWraps reports whether the ideal product of x and y exceeds w bits.
func mulWraps(x, y uint64, w uint8) bool {
	if x == 0 || y == 0 {
		return false
	}
	if w <= 32 {
		return x*y > bv.Mask(w)
	}
	return x > bv.Mask(w)/y
}

func unop(neg bool, a value) value {
	out := value{w: a.w, tnt: a.tnt, wrapped: a.wrapped}
	if neg {
		out.v = (-a.v) & bv.Mask(a.w)
	} else {
		out.v = (^a.v) & bv.Mask(a.w)
	}
	if a.sym != nil {
		if neg {
			out.sym = bv.Neg(a.sym)
		} else {
			out.sym = bv.Not(a.sym)
		}
	}
	return out
}

func convert(w uint8, signed bool, a value) value {
	out := value{w: w, tnt: a.tnt, wrapped: a.wrapped}
	switch {
	case w == a.w:
		return a
	case w > a.w:
		if signed {
			out.v = signExtend(a.v, a.w) & bv.Mask(w)
		} else {
			out.v = a.v
		}
		if a.sym != nil {
			if signed {
				out.sym = bv.SExt(w, a.sym)
			} else {
				out.sym = bv.ZExt(w, a.sym)
			}
		}
	default: // truncation
		out.v = a.v & bv.Mask(w)
		if a.sym != nil {
			out.sym = bv.Trunc(w, a.sym)
		}
	}
	return out
}

// --- boolean evaluation and branch recording ---

// evalCondBranch evaluates a branch condition, appends to φ when the
// condition is input-dependent, and returns the direction taken. It is the
// cancellation point: every loop iteration passes through here, so a closed
// Options.Cancel channel is observed within cancelPollInterval branches.
func (m *machine) evalCondBranch(label string, c lang.BoolExpr) (bool, error) {
	if m.opts.Cancel != nil {
		if m.cancelPoll--; m.cancelPoll <= 0 {
			m.cancelPoll = cancelPollInterval
			select {
			case <-m.opts.Cancel:
				return false, errCancel
			default:
			}
		}
	}
	taken, sym, _, err := m.evalBool(c)
	if err != nil {
		return false, err
	}
	if m.opts.TrackSymbolic && sym != nil {
		cond := sym
		if !taken {
			cond = bv.NotB(cond)
		}
		m.out.Branches = append(m.out.Branches, BranchRecord{
			Label: label,
			Taken: taken,
			Cond:  cond,
		})
	}
	return taken, nil
}

// evalBool returns the concrete truth value, the symbolic condition (nil when
// input-independent) and the taint of the condition.
func (m *machine) evalBool(c lang.BoolExpr) (bool, *bv.Bool, *taint.Set, error) {
	if err := m.step(); err != nil {
		return false, nil, nil, err
	}
	switch x := c.(type) {
	case lang.BoolLit:
		return x.V, nil, nil, nil
	case lang.Cmp:
		a, err := m.eval(x.A)
		if err != nil {
			return false, nil, nil, err
		}
		b, err := m.eval(x.B)
		if err != nil {
			return false, nil, nil, err
		}
		if a.w != b.w {
			return false, nil, nil, fmt.Errorf("interp: width mismatch in %s: %d vs %d bits", x.Op, a.w, b.w)
		}
		cv := concreteCmp(x.Op, a, b)
		var sym *bv.Bool
		if a.sym != nil || b.sym != nil {
			sym = symCmp(x.Op, a.term(), b.term())
		}
		var tn *taint.Set
		if m.opts.TrackTaint {
			tn = a.tnt.Union(b.tnt)
		}
		return cv, sym, tn, nil
	case lang.NotE:
		v, sym, tn, err := m.evalBool(x.A)
		if err != nil {
			return false, nil, nil, err
		}
		if sym != nil {
			sym = bv.NotB(sym)
		}
		return !v, sym, tn, nil
	case lang.AndE:
		av, asym, at, err := m.evalBool(x.A)
		if err != nil {
			return false, nil, nil, err
		}
		bvv, bsym, bt, err := m.evalBool(x.B)
		if err != nil {
			return false, nil, nil, err
		}
		sym := combineBool(av, asym, bvv, bsym, true)
		return av && bvv, sym, at.Union(bt), nil
	case lang.OrE:
		av, asym, at, err := m.evalBool(x.A)
		if err != nil {
			return false, nil, nil, err
		}
		bvv, bsym, bt, err := m.evalBool(x.B)
		if err != nil {
			return false, nil, nil, err
		}
		sym := combineBool(av, asym, bvv, bsym, false)
		return av || bvv, sym, at.Union(bt), nil
	}
	return false, nil, nil, fmt.Errorf("interp: unknown boolean expression %T", c)
}

// combineBool builds the symbolic form of a∧b or a∨b where either side may be
// concrete (nil symbolic).
func combineBool(av bool, asym *bv.Bool, bvv bool, bsym *bv.Bool, isAnd bool) *bv.Bool {
	if asym == nil && bsym == nil {
		return nil
	}
	a := asym
	if a == nil {
		a = bv.BoolConst(av)
	}
	b := bsym
	if b == nil {
		b = bv.BoolConst(bvv)
	}
	if isAnd {
		return bv.AndB(a, b)
	}
	return bv.OrB(a, b)
}

func concreteCmp(op lang.CmpOp, a, b value) bool {
	switch op {
	case lang.CmpEq:
		return a.v == b.v
	case lang.CmpNe:
		return a.v != b.v
	case lang.CmpUlt:
		return a.v < b.v
	case lang.CmpUle:
		return a.v <= b.v
	case lang.CmpUgt:
		return a.v > b.v
	case lang.CmpUge:
		return a.v >= b.v
	case lang.CmpSlt:
		return int64(signExtend(a.v, a.w)) < int64(signExtend(b.v, b.w))
	case lang.CmpSle:
		return int64(signExtend(a.v, a.w)) <= int64(signExtend(b.v, b.w))
	case lang.CmpSgt:
		return int64(signExtend(a.v, a.w)) > int64(signExtend(b.v, b.w))
	default:
		return int64(signExtend(a.v, a.w)) >= int64(signExtend(b.v, b.w))
	}
}

func symCmp(op lang.CmpOp, x, y *bv.Term) *bv.Bool {
	switch op {
	case lang.CmpEq:
		return bv.Eq(x, y)
	case lang.CmpNe:
		return bv.Ne(x, y)
	case lang.CmpUlt:
		return bv.Ult(x, y)
	case lang.CmpUle:
		return bv.Ule(x, y)
	case lang.CmpUgt:
		return bv.Ugt(x, y)
	case lang.CmpUge:
		return bv.Uge(x, y)
	case lang.CmpSlt:
		return bv.Slt(x, y)
	case lang.CmpSle:
		return bv.Sle(x, y)
	case lang.CmpSgt:
		return bv.Sgt(x, y)
	default:
		return bv.Sge(x, y)
	}
}

func signExtend(v uint64, w uint8) uint64 {
	if w == 64 {
		return v
	}
	sign := uint64(1) << (w - 1)
	v &= bv.Mask(w)
	if v&sign != 0 {
		return v | ^bv.Mask(w)
	}
	return v
}
