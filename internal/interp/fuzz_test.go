package interp_test

import (
	"testing"

	"diode/internal/apps"
	"diode/internal/interp"
)

// FuzzMachineParity is the differential fuzz target behind the parity suite:
// a fuzzed (application, input, instrumentation mode) triple is executed by
// the tree-walking oracle and by the direct-threaded compiled Machine, and
// the two Outcomes must be byte-identical — same outcome kind, step count,
// and event streams (dumpOutcome equality, exactly as the deterministic
// parity tests assert). Each triple runs twice on one Machine so divergence
// caused by stale recycled storage (frames, blocks, event slices) is caught,
// not just first-run divergence.
//
// Fuel is capped well below the interpreter default so corrupted inputs that
// loop reach the fuel-exhaustion outcome quickly; step-count equality makes
// the cap bite at the same point on both paths, which is itself a parity
// case worth fuzzing.
func FuzzMachineParity(f *testing.F) {
	all := apps.All()
	for i, app := range all {
		f.Add(byte(i), app.Format.Seed, byte(0))
		f.Add(byte(i), app.Format.Seed, byte(2))
	}
	f.Fuzz(func(t *testing.T, appIdx byte, input []byte, mode byte) {
		app := all[int(appIdx)%len(all)]
		if len(input) > 8192 {
			// Guests never index past their format's reach; oversized inputs
			// only slow the fuzzer down without covering new behavior.
			input = input[:8192]
		}
		opts := interp.Options{Fuel: 60_000}
		switch mode % 4 {
		case 1:
			opts.TrackTaint = true
		case 2:
			opts.TrackSymbolic = true
		case 3:
			opts.TrackSymbolic = true
			opts.SymbolicBytes = func(i int) bool { return i%2 == 0 }
		}
		m := interp.NewMachine(app.Compiled())
		for round := 0; round < 2; round++ {
			want := dumpOutcome(interp.RunTree(app.Program, input, opts))
			m.Reset(input, opts)
			got := dumpOutcome(m.Run())
			if got != want {
				t.Fatalf("%s mode=%d round=%d: compiled outcome diverges from tree-walker\n--- tree:\n%s--- compiled:\n%s",
					app.Short, mode%4, round, want, got)
			}
		}
	})
}
