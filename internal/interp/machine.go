package interp

import (
	"errors"
	"fmt"

	"diode/internal/bv"
	"diode/internal/taint"
)

// Machine executes a Compiled program with the same small-step semantics as
// the tree-walking interpreter (byte-identical Outcomes — pinned by the
// parity tests) but through the direct-threaded dispatch loop in threaded.go:
// one flat instruction stream per function, slot-indexed frames instead of
// string-keyed maps, an explicit value/bool/call stack instead of Go-level
// recursion, and all per-run storage reused across Reset/Run cycles — frame
// slots, the operand stacks, block bookkeeping, the outcome's event slices,
// and the per-input-byte taint-label and symbolic-variable caches. One
// Machine executing the same program thousands of times — the Figure 7
// enforcement loop, the §5.5/§5.6 success-rate sweeps — therefore pays
// allocation and name-resolution costs once instead of per run; a plain-mode
// (no taint, no symbolic) Run allocates nothing at all once warm.
//
// A Machine is not safe for concurrent use; create one per goroutine (the
// core Hunter owns one per site hunt, which is what keeps the Scheduler's
// no-shared-mutable-state determinism seam intact). The Outcome returned by
// Run aliases machine-internal storage and is valid only until the next
// Reset; callers that retain parts of it (the Analyzer keeps seed branch
// traces in Targets) must copy them first.
type Machine struct {
	code  *Compiled
	input []byte
	opts  Options
	fuel  int64

	frames  []cframe // frame stack; frames[fp] is the active frame
	fp      int
	globals cframe

	// Operand and call stacks for the dispatch loop, sized on demand and
	// retained across runs.
	stack  []value
	bstack []bval
	calls  []callSite

	blocks     map[uint64]*block
	freeBlocks []*block // recycled blocks, cells cleared
	canary     *block   // first block whose red zone was clobbered
	nextID     uint64

	out   Outcome
	ready bool
	plain bool // run tracks neither taint nor symbolic state

	// Per-input-byte caches, valid across runs: taint label sets and (for the
	// default "in[i]" naming) interned symbolic variables.
	inTaints []*taint.Set
	inTerms  []*bv.Term

	// cancelPoll counts down branch evaluations until the next poll of
	// opts.Cancel (see cancelPollInterval).
	cancelPoll int
}

// eventPoolCap bounds the event-slice capacity a Machine retains across
// runs (~5MB of AllocEvents). Normal runs emit a handful of events, and even
// fuel-burning runs usually stay under this; the cap only exists so a truly
// pathological run cannot leave unbounded pointer-laden storage behind,
// which the GC would tax on every later run. Below the cap, retention wins:
// reallocating multi-megabyte event slices per run costs more than the scan.
const eventPoolCap = 1 << 16

// recycleEvents returns the slice emptied for reuse, dropping outsized
// storage a pathological run left behind.
func recycleEvents[T any](s []T) []T {
	if cap(s) > eventPoolCap {
		return nil
	}
	return s[:0]
}

// cframe is one slot-indexed activation frame. set tracks which slots hold a
// value, so reused storage never leaks stale values between runs or calls.
type cframe struct {
	vals []value
	set  []bool
}

// ensure sizes the frame for n slots, clearing definedness flags.
func (f *cframe) ensure(n int) {
	if cap(f.vals) < n {
		f.vals = make([]value, n)
		f.set = make([]bool, n)
		return
	}
	f.vals = f.vals[:n]
	f.set = f.set[:n]
	for i := range f.set {
		f.set[i] = false
	}
}

// NewMachine returns a Machine for the compiled program. The Compiled may be
// shared with any number of other Machines.
func NewMachine(c *Compiled) *Machine {
	return &Machine{code: c, blocks: make(map[uint64]*block)}
}

// Program returns the compiled program the machine executes.
func (m *Machine) Program() *Compiled { return m.code }

// Reset prepares the machine to execute the compiled program on input under
// opts, recycling all storage from the previous run. It invalidates the
// Outcome of the previous Run.
func (m *Machine) Reset(input []byte, opts Options) {
	if opts.TrackSymbolic {
		opts.TrackTaint = true
	}
	if opts.Fuel == 0 {
		opts.Fuel = DefaultFuel
	}
	m.input = input
	m.opts = opts
	m.fuel = opts.Fuel
	m.fp = -1
	m.globals.ensure(m.code.numGlobals)
	// Recycle a bounded number of blocks in allocation order (block IDs are
	// dense, so this is deterministic — map iteration order would recycle a
	// random subset and defeat the capacity-aware reuse in newBlock); a
	// pathological run that allocated thousands (a fuel-burning allocation
	// loop) must not leave the machine holding their dense-cell storage
	// forever — the GC scan cost of an unbounded pointer-laden pool would
	// tax every later run.
	for id := uint64(1); id <= m.nextID && len(m.freeBlocks) < blockPoolCap; id++ {
		b, ok := m.blocks[id<<32]
		if !ok {
			continue
		}
		b.far.recycle()
		b.canary = false
		m.freeBlocks = append(m.freeBlocks, b)
	}
	if m.nextID > eventPoolCap {
		// A pathological run (fuel-burning allocation loop) grew the block
		// map's bucket array beyond what is worth keeping; start fresh
		// rather than let the GC scan it on every later run.
		m.blocks = make(map[uint64]*block)
	} else {
		clear(m.blocks)
	}
	m.canary = nil
	m.nextID = 0
	m.out = Outcome{
		Allocs:   recycleEvents(m.out.Allocs),
		MemErrs:  recycleEvents(m.out.MemErrs),
		Branches: recycleEvents(m.out.Branches),
		Warnings: recycleEvents(m.out.Warnings),
	}
	m.plain = !opts.TrackTaint
	m.cancelPoll = 0
	m.ready = true
}

// Run executes the program prepared by the last Reset and returns the
// outcome. The returned Outcome (including its event slices) aliases
// machine storage and is valid only until the next Reset.
func (m *Machine) Run() *Outcome {
	if !m.ready {
		panic("interp: Machine.Run without a preceding Reset")
	}
	m.ready = false
	err := m.exec()
	m.out.Steps = m.opts.Fuel - m.fuel
	switch {
	case err == nil || errors.Is(err, errAbort):
		if errors.Is(err, errAbort) {
			m.out.Kind = OutRejected
		} else {
			m.out.Kind = OutOK
		}
	case errors.Is(err, errSegv):
		m.out.Kind = OutSegv
	case errors.Is(err, errAbrt):
		m.out.Kind = OutAbrt
	case errors.Is(err, errFuel):
		m.out.Kind = OutFuel
	case errors.Is(err, errCancel):
		m.out.Kind = OutCancelled
	default:
		m.out.Kind = OutError
		m.out.Err = err
	}
	return &m.out
}

func (m *Machine) pushFrame(fn *cFunc) *cframe {
	m.fp++
	if m.fp == len(m.frames) {
		m.frames = append(m.frames, cframe{})
	}
	f := &m.frames[m.fp]
	f.ensure(fn.numSlots)
	return f
}

func (m *Machine) newBlock(site string, size uint64) *block {
	want := size + RedZone
	if want > denseLimit || want < size { // cap, and guard size overflow
		want = denseLimit
	}
	var b *block
	if n := len(m.freeBlocks); n > 0 {
		// Prefer a recycled block whose dense storage already fits, so a
		// steady state mixing allocation sizes reuses without reallocating.
		pick := n - 1
		for i := n - 1; i >= 0; i-- {
			if uint64(len(m.freeBlocks[i].dense)) >= want {
				pick = i
				break
			}
		}
		b = m.freeBlocks[pick]
		m.freeBlocks = append(m.freeBlocks[:pick], m.freeBlocks[pick+1:]...)
		b.site, b.size, b.canary = site, size, false
		b.gen++
		if b.gen == 0 { // stamp wraparound: invalidate explicitly
			clear(b.stamp)
			b.far = farCells{}
			b.gen = 1
		}
	} else {
		b = &block{site: site, size: size, gen: 1}
	}
	if uint64(len(b.dense)) < want {
		b.dense = make([]value, want)
		b.stamp = make([]uint32, want)
		b.gen = 1
	}
	return b
}

// readInput mirrors the tree-walker's input access, with the taint-label and
// symbolic-variable caches making repeated runs allocation-free.
func (m *Machine) readInput(idx value) value {
	i := int(idx.v)
	if i < 0 || i >= len(m.input) {
		// Reading past the end of input yields zero, like a short read.
		return value{v: 0, w: 8, tnt: idx.tnt}
	}
	out := value{v: uint64(m.input[i]), w: 8}
	if m.opts.TrackTaint {
		out.tnt = m.taintFor(i).Union(idx.tnt)
	}
	if m.opts.TrackSymbolic && (m.opts.SymbolicBytes == nil || m.opts.SymbolicBytes(i)) {
		out.sym = m.inputTerm(i)
	}
	return out
}

func (m *Machine) taintFor(i int) *taint.Set {
	for len(m.inTaints) <= i {
		m.inTaints = append(m.inTaints, taint.Single(len(m.inTaints)))
	}
	return m.inTaints[i]
}

func (m *Machine) inputTerm(i int) *bv.Term {
	if m.opts.InputVarName != nil {
		return bv.Var(8, m.opts.InputVarName(i))
	}
	for len(m.inTerms) <= i {
		m.inTerms = append(m.inTerms, bv.Var(8, fmt.Sprintf("in[%d]", len(m.inTerms))))
	}
	return m.inTerms[i]
}
