package interp

import (
	"errors"
	"fmt"

	"diode/internal/bv"
	"diode/internal/lang"
	"diode/internal/taint"
)

// Machine executes a Compiled program with the same small-step semantics as
// the tree-walking interpreter (byte-identical Outcomes — pinned by the
// parity tests) but over slot-indexed frames instead of string-keyed maps,
// and with all per-run storage reused across Reset/Run cycles: frame slots,
// block bookkeeping, the outcome's event slices, and the per-input-byte
// taint-label and symbolic-variable caches. One Machine executing the same
// program thousands of times — the Figure 7 enforcement loop, the §5.5/§5.6
// success-rate sweeps — therefore pays allocation and name-resolution costs
// once instead of per run.
//
// Internally the Machine uses panic-based control flow for every exceptional
// exit (fuel exhaustion, abort, simulated signals, guest runtime errors):
// compiled nodes return bare values and Run's recover classifies the vmError
// sentinel, so the per-node hot path carries no error plumbing. The panics
// never escape Run.
//
// A Machine is not safe for concurrent use; create one per goroutine (the
// core Hunter owns one per site hunt, which is what keeps the Scheduler's
// no-shared-mutable-state determinism seam intact). The Outcome returned by
// Run aliases machine-internal storage and is valid only until the next
// Reset; callers that retain parts of it (the Analyzer keeps seed branch
// traces in Targets) must copy them first.
type Machine struct {
	code  *Compiled
	input []byte
	opts  Options
	fuel  int64

	frames  []cframe // frame stack; frames[fp] is the active frame
	fp      int
	globals cframe

	blocks     map[uint64]*block
	freeBlocks []*block // recycled blocks, cells cleared
	canary     *block   // first block whose red zone was clobbered
	nextID     uint64

	out       Outcome
	returning bool
	retVal    value
	hasRet    bool
	ready     bool
	plain     bool // run tracks neither taint nor symbolic state

	// Per-input-byte caches, valid across runs: taint label sets and (for the
	// default "in[i]" naming) interned symbolic variables.
	inTaints []*taint.Set
	inTerms  []*bv.Term

	// cancelPoll counts down branch evaluations until the next poll of
	// opts.Cancel (see cancelPollInterval).
	cancelPoll int
}

// vmError is the panic sentinel carrying an exceptional machine exit: one of
// the control-flow errors (errAbort, errSegv, errAbrt, errFuel) or a guest
// runtime error. Run recovers it; any other panic propagates.
type vmError struct{ err error }

// throw raises a machine exit.
func throw(err error) {
	panic(vmError{err})
}

// eventPoolCap bounds the event-slice capacity a Machine retains across
// runs (~5MB of AllocEvents). Normal runs emit a handful of events, and even
// fuel-burning runs usually stay under this; the cap only exists so a truly
// pathological run cannot leave unbounded pointer-laden storage behind,
// which the GC would tax on every later run. Below the cap, retention wins:
// reallocating multi-megabyte event slices per run costs more than the scan.
const eventPoolCap = 1 << 16

// recycleEvents returns the slice emptied for reuse, dropping outsized
// storage a pathological run left behind.
func recycleEvents[T any](s []T) []T {
	if cap(s) > eventPoolCap {
		return nil
	}
	return s[:0]
}

// cframe is one slot-indexed activation frame. set tracks which slots hold a
// value, so reused storage never leaks stale values between runs or calls.
type cframe struct {
	vals []value
	set  []bool
}

// ensure sizes the frame for n slots, clearing definedness flags.
func (f *cframe) ensure(n int) {
	if cap(f.vals) < n {
		f.vals = make([]value, n)
		f.set = make([]bool, n)
		return
	}
	f.vals = f.vals[:n]
	f.set = f.set[:n]
	for i := range f.set {
		f.set[i] = false
	}
}

// NewMachine returns a Machine for the compiled program. The Compiled may be
// shared with any number of other Machines.
func NewMachine(c *Compiled) *Machine {
	return &Machine{code: c, blocks: make(map[uint64]*block)}
}

// Program returns the compiled program the machine executes.
func (m *Machine) Program() *Compiled { return m.code }

// Reset prepares the machine to execute the compiled program on input under
// opts, recycling all storage from the previous run. It invalidates the
// Outcome of the previous Run.
func (m *Machine) Reset(input []byte, opts Options) {
	if opts.TrackSymbolic {
		opts.TrackTaint = true
	}
	if opts.Fuel == 0 {
		opts.Fuel = DefaultFuel
	}
	m.input = input
	m.opts = opts
	m.fuel = opts.Fuel
	m.fp = -1
	m.globals.ensure(m.code.numGlobals)
	// Recycle a bounded number of blocks; a pathological run that allocated
	// thousands (a fuel-burning allocation loop) must not leave the machine
	// holding their dense-cell storage forever — the GC scan cost of an
	// unbounded pointer-laden pool would tax every later run.
	for _, b := range m.blocks {
		if len(m.freeBlocks) >= blockPoolCap {
			break
		}
		b.far.recycle()
		b.canary = false
		m.freeBlocks = append(m.freeBlocks, b)
	}
	if m.nextID > eventPoolCap {
		// A pathological run (fuel-burning allocation loop) grew the block
		// map's bucket array beyond what is worth keeping; start fresh
		// rather than let the GC scan it on every later run.
		m.blocks = make(map[uint64]*block)
	} else {
		clear(m.blocks)
	}
	m.canary = nil
	m.nextID = 0
	m.out = Outcome{
		Allocs:   recycleEvents(m.out.Allocs),
		MemErrs:  recycleEvents(m.out.MemErrs),
		Branches: recycleEvents(m.out.Branches),
		Warnings: recycleEvents(m.out.Warnings),
	}
	m.returning = false
	m.hasRet = false
	m.plain = !opts.TrackTaint
	m.cancelPoll = 0
	m.ready = true
}

// Run executes the program prepared by the last Reset and returns the
// outcome. The returned Outcome (including its event slices) aliases
// machine storage and is valid only until the next Reset.
func (m *Machine) Run() *Outcome {
	if !m.ready {
		panic("interp: Machine.Run without a preceding Reset")
	}
	m.ready = false
	err := m.runMain()
	m.out.Steps = m.opts.Fuel - m.fuel
	switch {
	case err == nil || errors.Is(err, errAbort):
		if errors.Is(err, errAbort) {
			m.out.Kind = OutRejected
		} else {
			m.out.Kind = OutOK
		}
	case errors.Is(err, errSegv):
		m.out.Kind = OutSegv
	case errors.Is(err, errAbrt):
		m.out.Kind = OutAbrt
	case errors.Is(err, errFuel):
		m.out.Kind = OutFuel
	case errors.Is(err, errCancel):
		m.out.Kind = OutCancelled
	default:
		m.out.Kind = OutError
		m.out.Err = err
	}
	return &m.out
}

// runMain executes main, converting the vmError panic back into the
// classified error.
func (m *Machine) runMain() (err error) {
	defer func() {
		if r := recover(); r != nil {
			ve, ok := r.(vmError)
			if !ok {
				panic(r)
			}
			err = ve.err
		}
	}()
	m.pushFrame(m.code.main)
	m.execBlock(m.code.main.body)
	return nil
}

func (m *Machine) step() {
	m.fuel--
	if m.fuel <= 0 {
		throw(errFuel)
	}
}

func (m *Machine) pushFrame(fn *cFunc) *cframe {
	m.fp++
	if m.fp == len(m.frames) {
		m.frames = append(m.frames, cframe{})
	}
	f := &m.frames[m.fp]
	f.ensure(fn.numSlots)
	return f
}

// frameFor returns the frame a slot reference resolves into.
func (m *Machine) frameFor(s slotRef) *cframe {
	if s.global {
		return &m.globals
	}
	return &m.frames[m.fp]
}

func (m *Machine) setSlot(s slotRef, v value) {
	f := m.frameFor(s)
	f.vals[s.idx] = v
	f.set[s.idx] = true
}

// eval evaluates an operand. The opVar and opLit fast paths replicate
// cVar.eval/cLit.eval exactly — including the step charge and the
// undefined-variable error — without an interface dispatch.
func (o *operand) eval(m *Machine) value {
	switch o.kind {
	case opVar:
		m.step()
		f := m.frameFor(o.slot)
		if !f.set[o.slot.idx] {
			throw(fmt.Errorf("interp: undefined variable %q", o.name))
		}
		return f.vals[o.slot.idx]
	case opLit:
		m.step()
		return value{v: o.v, w: o.w}
	default:
		return o.e.eval(m)
	}
}

// read evaluates a leaf operand whose step charge was already batched into
// the parent node's fused fuel check (stepPrefix). Only called for
// opVar/opLit operands.
func (o *operand) read(m *Machine) value {
	if o.kind == opVar {
		f := m.frameFor(o.slot)
		if !f.set[o.slot.idx] {
			throw(fmt.Errorf("interp: undefined variable %q", o.name))
		}
		return f.vals[o.slot.idx]
	}
	return value{v: o.v, w: o.w}
}

func (m *Machine) execBlock(b []cStmt) {
	for _, s := range b {
		s.exec(m)
		if m.returning {
			return
		}
	}
}

// --- statements ---

func (s *cAssign) exec(m *Machine) {
	m.step()
	m.setSlot(s.dst, s.e.eval(m))
}

func (s *cAssignBin) exec(m *Machine) {
	e := s.bin
	var a, b value
	if m.fuel <= s.pre {
		m.step()
		m.setSlot(s.dst, e.eval(m))
		return
	}
	m.fuel -= s.pre
	switch e.pre {
	case 3:
		a = e.a.read(m)
		b = e.b.read(m)
	case 2:
		a = e.a.read(m)
		b = e.b.eval(m)
	default:
		a = e.a.eval(m)
		b = e.b.eval(m)
	}
	if a.w != b.w {
		throw(fmt.Errorf("interp: width mismatch in %s: %d vs %d bits", e.op, a.w, b.w))
	}
	v, err := binopVal(e.op, &a, &b, m.opts.TrackTaint)
	if err != nil {
		throw(err)
	}
	m.setSlot(s.dst, v)
}

func (s *cAlloc) exec(m *Machine) {
	m.step()
	size := s.size.eval(m)
	// Heap-corruption check: glibc-style abort when a previously clobbered
	// red zone (allocator metadata) is observed by the allocator.
	if b := m.canary; b != nil {
		m.out.MemErrs = append(m.out.MemErrs, MemError{
			Kind: InvalidWrite, Site: b.site, Offset: b.size, Size: b.size,
		})
		throw(errAbrt)
	}
	m.nextID++
	base := m.nextID << 32
	m.blocks[base] = m.newBlock(s.site, size.v)
	m.out.Allocs = append(m.out.Allocs, AllocEvent{
		Site:       s.site,
		Seq:        len(m.out.Allocs),
		Size:       size.v,
		Width:      size.w,
		Sym:        size.sym,
		Taint:      size.tnt,
		Wrapped:    size.wrapped,
		BranchMark: len(m.out.Branches),
	})
	m.setSlot(s.dst, value{v: base, w: 64})
}

func (m *Machine) newBlock(site string, size uint64) *block {
	var b *block
	if n := len(m.freeBlocks); n > 0 {
		b = m.freeBlocks[n-1]
		m.freeBlocks = m.freeBlocks[:n-1]
		b.site, b.size, b.canary = site, size, false
		b.gen++
		if b.gen == 0 { // stamp wraparound: invalidate explicitly
			clear(b.stamp)
			b.far = farCells{}
			b.gen = 1
		}
	} else {
		b = &block{site: site, size: size, gen: 1}
	}
	want := size + RedZone
	if want > denseLimit || want < size { // cap, and guard size overflow
		want = denseLimit
	}
	if uint64(len(b.dense)) < want {
		b.dense = make([]value, want)
		b.stamp = make([]uint32, want)
		b.gen = 1
	}
	return b
}

func (s *cStore) exec(m *Machine) {
	m.step()
	ptr := s.ptr.eval(m)
	off := s.off.eval(m)
	val := s.val.eval(m)
	b, ok := m.blocks[ptr.v]
	if !ok {
		throw(fmt.Errorf("interp: store through non-pointer %#x", ptr.v))
	}
	if off.v >= b.size {
		if off.v >= b.size+RedZone {
			m.out.MemErrs = append(m.out.MemErrs, MemError{
				Kind: InvalidWrite, Site: b.site, Offset: off.v, Size: b.size,
			})
			throw(errSegv)
		}
		m.out.MemErrs = append(m.out.MemErrs, MemError{
			Kind: InvalidWrite, Site: b.site, Offset: off.v, Size: b.size,
		})
		b.canary = true // allocator metadata clobbered
		if m.canary == nil {
			m.canary = b
		}
	}
	b.storeCell(off.v, val, m.plain)
}

func (s *cIf) exec(m *Machine) {
	m.step()
	if m.condBranch(s.label, s.cond) {
		m.execBlock(s.then)
		return
	}
	m.execBlock(s.els)
}

func (s *cWhile) exec(m *Machine) {
	m.step()
	for {
		if !m.condBranch(s.label, s.cond) {
			return
		}
		m.execBlock(s.body)
		if m.returning {
			return
		}
	}
}

func (s *cExprStmt) exec(m *Machine) {
	m.step()
	s.e.eval(m)
}

func (s *cReturn) exec(m *Machine) {
	m.step()
	if s.has {
		m.retVal = s.e.eval(m)
		m.hasRet = true
	} else {
		m.hasRet = false
	}
	m.returning = true
}

func (s *cAbort) exec(m *Machine) {
	m.step()
	m.out.AbortMsg = s.msg
	throw(errAbort)
}

func (s *cWarn) exec(m *Machine) {
	m.step()
	m.out.Warnings = append(m.out.Warnings, s.msg)
}

// --- expressions ---

func (e *cLit) eval(m *Machine) value {
	m.step()
	return value{v: e.v, w: e.w}
}

func (e *cVar) eval(m *Machine) value {
	m.step()
	f := m.frameFor(e.src)
	if !f.set[e.src.idx] {
		throw(fmt.Errorf("interp: undefined variable %q", e.name))
	}
	return f.vals[e.src.idx]
}

// The fused eval paths below charge a node's step prefix (its own step plus
// the leading leaf operands', see stepPrefix) against the fuel budget in one
// check, reading the prefetched leaves without a second check. Near fuel
// exhaustion they fall back to exact per-step sequencing, so the
// fuel-exhaustion point (and any undefined-variable error racing it) stays
// byte-identical to the tree-walker's.

func (e *cBin) eval(m *Machine) value {
	var a, b value
	if m.fuel <= e.pre {
		m.step()
		a = e.a.eval(m)
		b = e.b.eval(m)
	} else {
		m.fuel -= e.pre
		switch e.pre {
		case 3: // both operands are leaves
			a = e.a.read(m)
			b = e.b.read(m)
		case 2: // first operand is a leaf
			a = e.a.read(m)
			b = e.b.eval(m)
		default:
			a = e.a.eval(m)
			b = e.b.eval(m)
		}
	}
	if a.w != b.w {
		throw(fmt.Errorf("interp: width mismatch in %s: %d vs %d bits", e.op, a.w, b.w))
	}
	v, err := binopVal(e.op, &a, &b, m.opts.TrackTaint)
	if err != nil {
		throw(err)
	}
	return v
}

func (e *cUn) eval(m *Machine) value {
	var a value
	if m.fuel <= e.pre {
		m.step()
		a = e.a.eval(m)
	} else {
		m.fuel -= e.pre
		if e.pre == 2 {
			a = e.a.read(m)
		} else {
			a = e.a.eval(m)
		}
	}
	return unop(e.neg, a)
}

func (e *cCvt) eval(m *Machine) value {
	var a value
	if m.fuel <= e.pre {
		m.step()
		a = e.a.eval(m)
	} else {
		m.fuel -= e.pre
		if e.pre == 2 {
			a = e.a.read(m)
		} else {
			a = e.a.eval(m)
		}
	}
	return convert(e.w, e.signed, a)
}

func (e *cInByte) eval(m *Machine) value {
	var idx value
	if m.fuel <= e.pre {
		m.step()
		idx = e.idx.eval(m)
	} else {
		m.fuel -= e.pre
		if e.pre == 2 {
			idx = e.idx.read(m)
		} else {
			idx = e.idx.eval(m)
		}
	}
	return m.readInput(idx)
}

func (e *cLoadByteZX) eval(m *Machine) value {
	if m.fuel <= 5 {
		return e.slow.eval(m)
	}
	m.fuel -= 5
	a := e.a.read(m)
	b := e.b.read(m)
	if a.w != b.w {
		throw(fmt.Errorf("interp: width mismatch in %s: %d vs %d bits", lang.OpAdd, a.w, b.w))
	}
	if !m.opts.TrackTaint {
		// Plain mode: no value in the machine carries taint or symbolic
		// state, readInput drops the index's wrapped flag, and the unsigned
		// widening only moves the byte — compute the whole chain inline.
		i := int((a.v + b.v) & bv.Mask(a.w))
		var v uint64
		if i >= 0 && i < len(m.input) {
			v = uint64(m.input[i])
		}
		if e.w < 8 {
			v &= bv.Mask(e.w)
		}
		return value{v: v, w: e.w}
	}
	idx, err := binopVal(lang.OpAdd, &a, &b, true)
	if err != nil {
		throw(err)
	}
	return convert(e.w, false, m.readInput(idx))
}

func (cInLen) eval(m *Machine) value {
	m.step()
	return value{v: uint64(len(m.input)), w: 32}
}

func (e *cLoad) eval(m *Machine) value {
	m.step()
	ptr := e.ptr.eval(m)
	off := e.off.eval(m)
	b, ok := m.blocks[ptr.v]
	if !ok {
		throw(fmt.Errorf("interp: load through non-pointer %#x", ptr.v))
	}
	if off.v >= b.size {
		m.out.MemErrs = append(m.out.MemErrs, MemError{
			Kind: InvalidRead, Site: b.site, Offset: off.v, Size: b.size,
		})
		if off.v >= b.size+RedZone {
			throw(errSegv)
		}
	}
	return b.loadCell(off.v)
}

func (e *cCall) eval(m *Machine) value {
	m.step()
	// Arguments evaluate in the caller's frame, before the callee's frame is
	// pushed (matching the tree-walker's call order).
	var abuf [6]value
	args := abuf[:0]
	if len(e.args) > len(abuf) {
		args = make([]value, 0, len(e.args))
	}
	for i := range e.args {
		args = append(args, e.args[i].eval(m))
	}
	f := m.pushFrame(e.fn)
	for i, s := range e.fn.params {
		f.vals[s.idx] = args[i]
		f.set[s.idx] = true
	}
	m.execBlock(e.fn.body)
	m.fp--
	ret := value{w: 32}
	if m.hasRet {
		ret = m.retVal
	}
	m.returning = false
	m.hasRet = false
	return ret
}

// readInput mirrors the tree-walker's input access, with the taint-label and
// symbolic-variable caches making repeated runs allocation-free.
func (m *Machine) readInput(idx value) value {
	i := int(idx.v)
	if i < 0 || i >= len(m.input) {
		// Reading past the end of input yields zero, like a short read.
		return value{v: 0, w: 8, tnt: idx.tnt}
	}
	out := value{v: uint64(m.input[i]), w: 8}
	if m.opts.TrackTaint {
		out.tnt = m.taintFor(i).Union(idx.tnt)
	}
	if m.opts.TrackSymbolic && (m.opts.SymbolicBytes == nil || m.opts.SymbolicBytes(i)) {
		out.sym = m.inputTerm(i)
	}
	return out
}

func (m *Machine) taintFor(i int) *taint.Set {
	for len(m.inTaints) <= i {
		m.inTaints = append(m.inTaints, taint.Single(len(m.inTaints)))
	}
	return m.inTaints[i]
}

func (m *Machine) inputTerm(i int) *bv.Term {
	if m.opts.InputVarName != nil {
		return bv.Var(8, m.opts.InputVarName(i))
	}
	for len(m.inTerms) <= i {
		m.inTerms = append(m.inTerms, bv.Var(8, fmt.Sprintf("in[%d]", len(m.inTerms))))
	}
	return m.inTerms[i]
}

// --- boolean evaluation and branch recording ---

// condBranch evaluates a branch condition, appends to φ when the condition is
// input-dependent, and returns the direction taken. It is the cancellation
// point: every loop iteration passes through here, so a closed Options.Cancel
// channel is observed within cancelPollInterval branches. (Polling rides the
// same periodic boundary as the fuel budget, without consuming fuel, so
// Outcomes of uncancelled runs stay byte-identical to the tree-walker's.)
func (m *Machine) condBranch(label string, c cBool) bool {
	if m.opts.Cancel != nil {
		if m.cancelPoll--; m.cancelPoll <= 0 {
			m.cancelPoll = cancelPollInterval
			select {
			case <-m.opts.Cancel:
				throw(errCancel)
			default:
			}
		}
	}
	taken, sym, _ := c.evalBool(m)
	if m.opts.TrackSymbolic && sym != nil {
		cond := sym
		if !taken {
			cond = bv.NotB(cond)
		}
		m.out.Branches = append(m.out.Branches, BranchRecord{
			Label: label,
			Taken: taken,
			Cond:  cond,
		})
	}
	return taken
}

func (e cBoolLit) evalBool(m *Machine) (bool, *bv.Bool, *taint.Set) {
	m.step()
	return e.v, nil, nil
}

func (e *cCmp) evalBool(m *Machine) (bool, *bv.Bool, *taint.Set) {
	var a, b value
	if m.fuel <= e.pre {
		m.step()
		a = e.a.eval(m)
		b = e.b.eval(m)
	} else {
		m.fuel -= e.pre
		switch e.pre {
		case 3:
			a = e.a.read(m)
			b = e.b.read(m)
		case 2:
			a = e.a.read(m)
			b = e.b.eval(m)
		default:
			a = e.a.eval(m)
			b = e.b.eval(m)
		}
	}
	if a.w != b.w {
		throw(fmt.Errorf("interp: width mismatch in %s: %d vs %d bits", e.op, a.w, b.w))
	}
	cv := concreteCmp(e.op, a, b)
	var sym *bv.Bool
	if a.sym != nil || b.sym != nil {
		sym = symCmp(e.op, a.term(), b.term())
	}
	var tn *taint.Set
	if m.opts.TrackTaint {
		tn = a.tnt.Union(b.tnt)
	}
	return cv, sym, tn
}

func (e *cNot) evalBool(m *Machine) (bool, *bv.Bool, *taint.Set) {
	m.step()
	v, sym, tn := e.a.evalBool(m)
	if sym != nil {
		sym = bv.NotB(sym)
	}
	return !v, sym, tn
}

func (e *cAnd) evalBool(m *Machine) (bool, *bv.Bool, *taint.Set) {
	m.step()
	av, asym, at := e.a.evalBool(m)
	bvv, bsym, bt := e.b.evalBool(m)
	sym := combineBool(av, asym, bvv, bsym, true)
	return av && bvv, sym, at.Union(bt)
}

func (e *cOr) evalBool(m *Machine) (bool, *bv.Bool, *taint.Set) {
	m.step()
	av, asym, at := e.a.evalBool(m)
	bvv, bsym, bt := e.b.evalBool(m)
	sym := combineBool(av, asym, bvv, bsym, false)
	return av || bvv, sym, at.Union(bt)
}
