package interp

import (
	"testing"

	"diode/internal/bv"
	"diode/internal/lang"
)

func mustProg(t *testing.T, fns ...*lang.Func) *lang.Program {
	t.Helper()
	p := lang.NewProgram("test")
	for _, f := range fns {
		p.AddFunc(f)
	}
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestArithmeticAndVariables(t *testing.T) {
	// x = 7; y = x*6 + 2; alloc(buf, y)
	p := mustProg(t, lang.Fn("main", nil,
		lang.Let("x", lang.U32(7)),
		lang.Let("y", lang.Add(lang.Mul(lang.V("x"), lang.U32(6)), lang.U32(2))),
		lang.AllocAt("buf", "t@1", lang.V("y")),
	))
	out := Run(p, nil, Options{})
	if out.Kind != OutOK {
		t.Fatalf("outcome = %v (%v)", out.Kind, out.Err)
	}
	if len(out.Allocs) != 1 || out.Allocs[0].Size != 44 {
		t.Fatalf("allocs = %+v", out.Allocs)
	}
}

func TestWrappingArithmetic(t *testing.T) {
	// 8-bit: 200+100 wraps to 44.
	p := mustProg(t, lang.Fn("main", nil,
		lang.Let("x", lang.Add(lang.U8(200), lang.U8(100))),
		lang.AllocAt("b", "t@1", lang.ZX(32, lang.V("x"))),
	))
	out := Run(p, nil, Options{})
	if out.Allocs[0].Size != 44 {
		t.Fatalf("8-bit wrap: got %d want 44", out.Allocs[0].Size)
	}
}

func TestTaintPropagation(t *testing.T) {
	// Size = in[0]*in[1]; taint must be {0,1}; in[3] unused.
	p := mustProg(t, lang.Fn("main", nil,
		lang.Let("a", lang.ZX(32, lang.InAt(0))),
		lang.Let("b", lang.ZX(32, lang.InAt(1))),
		lang.Let("c", lang.ZX(32, lang.InAt(3))), // read but unused in size
		lang.AllocAt("buf", "t@1", lang.Mul(lang.V("a"), lang.V("b"))),
	))
	out := Run(p, []byte{5, 6, 7, 8}, Options{TrackTaint: true})
	if out.Kind != OutOK {
		t.Fatalf("outcome %v", out.Kind)
	}
	ev := out.Allocs[0]
	if ev.Size != 30 {
		t.Fatalf("size = %d", ev.Size)
	}
	got := ev.Taint.Elems()
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("taint = %v, want [0 1]", got)
	}
}

func TestSymbolicExpressionExtraction(t *testing.T) {
	// size = (in[0] zext 32) * 4; check the symbolic expression evaluates
	// correctly on a different input.
	p := mustProg(t, lang.Fn("main", nil,
		lang.AllocAt("buf", "t@1",
			lang.Mul(lang.ZX(32, lang.InAt(0)), lang.U32(4))),
	))
	out := Run(p, []byte{9}, Options{TrackSymbolic: true})
	ev := out.Allocs[0]
	if ev.Sym == nil {
		t.Fatal("no symbolic size recorded")
	}
	v, err := bv.Assignment{"in[0]": 50}.Eval(ev.Sym)
	if err != nil {
		t.Fatal(err)
	}
	if v != 200 {
		t.Fatalf("symbolic eval = %d, want 200", v)
	}
}

func TestBranchRecording(t *testing.T) {
	// One relevant branch (depends on input), one irrelevant (concrete).
	p := mustProg(t, lang.Fn("main", nil,
		lang.Let("x", lang.ZX(32, lang.InAt(0))),
		lang.IfThen("check_x", lang.Ugt(lang.V("x"), lang.U32(10)),
			lang.Abort("too big"),
		),
		lang.IfThen("const_branch", lang.Ugt(lang.U32(5), lang.U32(3)),
			lang.Let("y", lang.U32(1)),
		),
		lang.AllocAt("buf", "t@1", lang.V("x")),
	))
	out := Run(p, []byte{7}, Options{TrackSymbolic: true})
	if out.Kind != OutOK {
		t.Fatalf("outcome %v", out.Kind)
	}
	if len(out.Branches) != 1 {
		t.Fatalf("recorded %d branches, want 1 (only the input-dependent one)", len(out.Branches))
	}
	br := out.Branches[0]
	if br.Label != "check_x" || br.Taken {
		t.Fatalf("branch = %+v", br)
	}
	// The recorded constraint describes the taken (false) direction: ¬(x>10).
	ok, err := bv.Assignment{"in[0]": 7}.EvalBool(br.Cond)
	if err != nil || !ok {
		t.Fatalf("seed must satisfy its own branch constraint: %v %v", ok, err)
	}
	ok, _ = bv.Assignment{"in[0]": 200}.EvalBool(br.Cond)
	if ok {
		t.Fatal("input taking the other direction must violate the constraint")
	}
}

func TestAbortOutcome(t *testing.T) {
	p := mustProg(t, lang.Fn("main", nil,
		lang.IfThen("c", lang.Ugt(lang.ZX(32, lang.InAt(0)), lang.U32(10)),
			lang.Abort("rejected by sanity check"),
		),
		lang.AllocAt("b", "t@1", lang.U32(4)),
	))
	out := Run(p, []byte{99}, Options{})
	if out.Kind != OutRejected || out.AbortMsg != "rejected by sanity check" {
		t.Fatalf("outcome = %v msg=%q", out.Kind, out.AbortMsg)
	}
	if len(out.Allocs) != 0 {
		t.Fatal("allocation after abort should not happen")
	}
}

func TestWhileLoopAndMemory(t *testing.T) {
	// Sum input bytes via a loop writing into and reading from a block.
	p := mustProg(t, lang.Fn("main", nil,
		lang.AllocAt("buf", "t@1", lang.U32(10)),
		lang.Let("i", lang.U32(0)),
		lang.Loop("fill", lang.Ult(lang.V("i"), lang.U32(10)),
			lang.Put(lang.V("buf"), lang.V("i"), lang.Add(lang.V("i"), lang.U32(100))),
			lang.Let("i", lang.Add(lang.V("i"), lang.U32(1))),
		),
		lang.Let("got", lang.Load(lang.V("buf"), lang.U32(9))),
		lang.AllocAt("buf2", "t@2", lang.V("got")),
	))
	out := Run(p, nil, Options{})
	if out.Kind != OutOK {
		t.Fatalf("outcome = %v (%v)", out.Kind, out.Err)
	}
	if out.Allocs[1].Size != 109 {
		t.Fatalf("loaded value = %d, want 109", out.Allocs[1].Size)
	}
	if len(out.MemErrs) != 0 {
		t.Fatalf("unexpected memory errors: %+v", out.MemErrs)
	}
}

func TestInvalidWriteInRedZone(t *testing.T) {
	p := mustProg(t, lang.Fn("main", nil,
		lang.AllocAt("buf", "site@1", lang.U32(8)),
		lang.Put(lang.V("buf"), lang.U32(10), lang.U8(0xAA)), // 2 past the end
	))
	out := Run(p, nil, Options{})
	if out.Kind != OutOK {
		t.Fatalf("red-zone write should not fault immediately: %v", out.Kind)
	}
	if len(out.MemErrs) != 1 || out.MemErrs[0].Kind != InvalidWrite ||
		out.MemErrs[0].Site != "site@1" {
		t.Fatalf("memerrs = %+v", out.MemErrs)
	}
}

func TestSegvFarOutOfBounds(t *testing.T) {
	p := mustProg(t, lang.Fn("main", nil,
		lang.AllocAt("buf", "site@1", lang.U32(8)),
		lang.Put(lang.V("buf"), lang.U32(100000), lang.U8(1)),
	))
	out := Run(p, nil, Options{})
	if out.Kind != OutSegv {
		t.Fatalf("outcome = %v, want SIGSEGV", out.Kind)
	}
	if !out.ErrorsAt("site@1") {
		t.Fatal("SIGSEGV not attributed to the block's site")
	}
}

func TestSigabrtOnHeapCorruption(t *testing.T) {
	// Clobber the red zone, then allocate again: the allocator detects the
	// corruption (glibc abort analogue).
	p := mustProg(t, lang.Fn("main", nil,
		lang.AllocAt("buf", "site@1", lang.U32(8)),
		lang.Put(lang.V("buf"), lang.U32(9), lang.U8(1)), // corrupt metadata
		lang.AllocAt("buf2", "site@2", lang.U32(8)),
	))
	out := Run(p, nil, Options{})
	if out.Kind != OutAbrt {
		t.Fatalf("outcome = %v, want SIGABRT", out.Kind)
	}
}

func TestInvalidReadAttribution(t *testing.T) {
	p := mustProg(t, lang.Fn("main", nil,
		lang.AllocAt("buf", "site@1", lang.U32(4)),
		lang.Let("x", lang.Load(lang.V("buf"), lang.U32(6))),
	))
	out := Run(p, nil, Options{})
	if out.Kind != OutOK {
		t.Fatalf("outcome %v", out.Kind)
	}
	if len(out.MemErrs) != 1 || out.MemErrs[0].Kind != InvalidRead {
		t.Fatalf("memerrs = %+v", out.MemErrs)
	}
}

func TestProceduresAndReturn(t *testing.T) {
	p := mustProg(t,
		lang.Fn("read_u16_be", []string{"off"},
			lang.Ret(lang.BitOr(
				lang.Shl(lang.ZX(16, lang.In(lang.V("off"))), lang.U16(8)),
				lang.ZX(16, lang.In(lang.Add(lang.V("off"), lang.U32(1)))),
			)),
		),
		lang.Fn("main", nil,
			lang.Let("v", lang.Call("read_u16_be", lang.U32(0))),
			lang.AllocAt("b", "t@1", lang.ZX(32, lang.V("v"))),
		),
	)
	out := Run(p, []byte{0x12, 0x34}, Options{TrackSymbolic: true})
	if out.Kind != OutOK {
		t.Fatalf("outcome %v (%v)", out.Kind, out.Err)
	}
	if out.Allocs[0].Size != 0x1234 {
		t.Fatalf("size = %#x", out.Allocs[0].Size)
	}
	// The symbolic expression must capture the big-endian byte swizzle.
	v, err := bv.Assignment{"in[0]": 0xAB, "in[1]": 0xCD}.Eval(
		bv.ZExt(32, bv.Trunc(32, out.Allocs[0].Sym)))
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xABCD {
		t.Fatalf("symbolic swizzle eval = %#x, want 0xABCD", v)
	}
}

func TestEarlyReturnStopsBlock(t *testing.T) {
	p := mustProg(t,
		lang.Fn("f", nil,
			lang.Ret(lang.U32(1)),
			lang.Abort("unreachable"),
		),
		lang.Fn("main", nil,
			lang.Let("x", lang.Call("f")),
			lang.AllocAt("b", "t@1", lang.V("x")),
		),
	)
	out := Run(p, nil, Options{})
	if out.Kind != OutOK {
		t.Fatalf("outcome %v: return did not stop execution", out.Kind)
	}
}

func TestFuelExhaustion(t *testing.T) {
	p := mustProg(t, lang.Fn("main", nil,
		lang.Loop("forever", lang.BoolLit{V: true},
			lang.Let("x", lang.U32(1)),
		),
	))
	out := Run(p, nil, Options{Fuel: 1000})
	if out.Kind != OutFuel {
		t.Fatalf("outcome = %v, want fuel-exhausted", out.Kind)
	}
}

func TestSymbolicBytesRestriction(t *testing.T) {
	// Only byte 0 is designated relevant: expressions over byte 1 stay
	// concrete (the paper's staging optimization).
	p := mustProg(t, lang.Fn("main", nil,
		lang.AllocAt("a", "t@1", lang.ZX(32, lang.InAt(0))),
		lang.AllocAt("b", "t@2", lang.ZX(32, lang.InAt(1))),
	))
	out := Run(p, []byte{3, 4}, Options{
		TrackSymbolic: true,
		SymbolicBytes: func(i int) bool { return i == 0 },
	})
	if out.Allocs[0].Sym == nil {
		t.Fatal("byte 0 should be symbolic")
	}
	if out.Allocs[1].Sym != nil {
		t.Fatal("byte 1 should stay concrete")
	}
}

func TestSignedComparisonBranch(t *testing.T) {
	// abs-style check: in 32-bit, 0x80000000 is negative.
	p := mustProg(t, lang.Fn("main", nil,
		lang.Let("x", lang.ZX(32, lang.InAt(0))),
		lang.Let("big", lang.Shl(lang.V("x"), lang.U32(24))),
		lang.IfElse("sign", lang.Slt(lang.V("big"), lang.U32(0)),
			lang.Block{lang.AllocAt("a", "neg@1", lang.U32(1))},
			lang.Block{lang.AllocAt("b", "pos@1", lang.U32(2))},
		),
	))
	out := Run(p, []byte{0x80}, Options{})
	if out.Allocs[0].Site != "neg@1" {
		t.Fatalf("signed branch took wrong direction: %+v", out.Allocs)
	}
	out = Run(p, []byte{0x10}, Options{})
	if out.Allocs[0].Site != "pos@1" {
		t.Fatalf("signed branch took wrong direction: %+v", out.Allocs)
	}
}

func TestRuntimeErrorWidthMismatch(t *testing.T) {
	p := mustProg(t, lang.Fn("main", nil,
		lang.Let("x", lang.Add(lang.U8(1), lang.U32(2))),
	))
	out := Run(p, nil, Options{})
	if out.Kind != OutError {
		t.Fatalf("outcome = %v, want runtime-error", out.Kind)
	}
}

func TestWarningsCollected(t *testing.T) {
	p := mustProg(t, lang.Fn("main", nil,
		lang.Warn("suspicious image size"),
		lang.Warn("second warning"),
	))
	out := Run(p, nil, Options{})
	if len(out.Warnings) != 2 || out.Warnings[0] != "suspicious image size" {
		t.Fatalf("warnings = %v", out.Warnings)
	}
}
