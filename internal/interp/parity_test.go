package interp_test

// Differential tests pinning the compiled execution layer to the original
// tree-walking interpreter: for every benchmark application and a matrix of
// inputs and instrumentation modes, interp.RunTree (the legacy oracle) and a
// reused interp.Machine must produce byte-identical Outcomes — same outcome
// kind, same step count (fuel parity), same allocation/branch/memcheck event
// sequences with identical symbolic expressions and taint labels.

import (
	"fmt"
	"strings"
	"testing"

	"diode/internal/apps"
	"diode/internal/formats"
	"diode/internal/interp"
	"diode/internal/lang"
)

// dumpOutcome renders every observable field of an outcome; two outcomes are
// byte-identical iff their dumps are equal.
func dumpOutcome(o *interp.Outcome) string {
	var b strings.Builder
	fmt.Fprintf(&b, "kind=%v abort=%q steps=%d\n", o.Kind, o.AbortMsg, o.Steps)
	if o.Err != nil {
		fmt.Fprintf(&b, "err=%v\n", o.Err)
	}
	for _, w := range o.Warnings {
		fmt.Fprintf(&b, "warn=%q\n", w)
	}
	for _, ev := range o.Allocs {
		fmt.Fprintf(&b, "alloc site=%s seq=%d size=%d w=%d wrapped=%v mark=%d taint=%v",
			ev.Site, ev.Seq, ev.Size, ev.Width, ev.Wrapped, ev.BranchMark, ev.Taint.Elems())
		if ev.Sym != nil {
			fmt.Fprintf(&b, " sym=%s", ev.Sym)
		}
		b.WriteByte('\n')
	}
	for _, me := range o.MemErrs {
		fmt.Fprintf(&b, "memerr kind=%v site=%s off=%d size=%d\n", me.Kind, me.Site, me.Offset, me.Size)
	}
	for _, br := range o.Branches {
		fmt.Fprintf(&b, "branch label=%s taken=%v cond=%s\n", br.Label, br.Taken, br.Cond)
	}
	return b.String()
}

// parityModes is the instrumentation matrix every input is run under. Fuel is
// capped well below the interpreter default: the seeds finish in a fraction
// of it, corrupted inputs that loop reach the fuel-exhaustion outcome quickly
// (itself a parity case), and step-count equality makes the cap bite at the
// exact same point on both paths.
func parityModes() map[string]interp.Options {
	return map[string]interp.Options{
		"plain":    {Fuel: 300_000},
		"taint":    {TrackTaint: true, Fuel: 300_000},
		"symbolic": {TrackSymbolic: true, Fuel: 300_000},
		"sym-restricted": {
			TrackSymbolic: true,
			Fuel:          300_000,
			SymbolicBytes: func(i int) bool { return i%2 == 0 },
		},
		"low-fuel": {TrackSymbolic: true, Fuel: 500},
	}
}

func checkParity(t *testing.T, name string, prog *lang.Program, m *interp.Machine, input []byte, opts interp.Options) {
	t.Helper()
	want := dumpOutcome(interp.RunTree(prog, input, opts))
	m.Reset(input, opts)
	got := dumpOutcome(m.Run())
	if got != want {
		t.Errorf("%s: compiled outcome diverges from tree-walker\n--- tree:\n%s--- compiled:\n%s", name, want, got)
	}
}

// parityInputs derives a deterministic input matrix from an application's
// seed: the seed itself, mutations that flip size-relevant bytes, a
// truncation, and garbage — enough to drive each guest down accepting,
// rejecting and erroring paths.
func parityInputs(seed []byte) [][]byte {
	mutate := func(f func(b []byte)) []byte {
		out := append([]byte(nil), seed...)
		f(out)
		return out
	}
	inputs := [][]byte{
		seed,
		nil,
		mutate(func(b []byte) {
			for i := range b {
				b[i] ^= 0xA5 // wholesale corruption: signature checks reject
			}
		}),
		mutate(func(b []byte) {
			// Blow up every byte in the second quarter — typically the header
			// size fields — without touching the signature.
			for i := len(b) / 4; i < len(b)/2; i++ {
				b[i] = 0xFF
			}
		}),
		mutate(func(b []byte) {
			if len(b) > 20 {
				b[len(b)-7] ^= 0x42 // tail corruption: checksums mismatch
			}
		}),
	}
	if len(seed) > 8 {
		inputs = append(inputs, seed[:len(seed)/2]) // truncated file
	}
	return inputs
}

// TestCompiledParityApps runs every registered benchmark application over the
// input × mode matrix on both interpreters, one reused Machine per app.
func TestCompiledParityApps(t *testing.T) {
	for _, app := range apps.All() {
		app := app
		t.Run(app.Short, func(t *testing.T) {
			m := interp.NewMachine(app.Compiled())
			inputs := parityInputs(app.Format.Seed)
			if app.Short == "gifview" {
				// Multi-frame SGIF: repeated image blocks exercise the
				// repeated-frame field structure through taint and trace.
				multi := formats.SGIFAppendFrame(app.Format.Seed, 3, 1, 33, 21)
				inputs = append(inputs, multi, formats.SGIFAppendFrame(multi, 0, 0, 7, 9))
			}
			for i, input := range inputs {
				for mode, opts := range parityModes() {
					checkParity(t, fmt.Sprintf("%s input#%d mode=%s", app.Short, i, mode), app.Program, m, input, opts)
				}
			}
		})
	}
}

// TestCompiledParityUnits covers the statement/expression/outcome space the
// app sweep may miss: memory errors in and past the red zone, heap-corruption
// aborts, runtime errors, custom input-variable naming, globals, recursion
// and bare returns.
func TestCompiledParityUnits(t *testing.T) {
	progs := map[string]*lang.Program{
		"redzone-write": mustProg(t, lang.Fn("main", nil,
			lang.AllocAt("buf", "t@1", lang.U32(8)),
			lang.Put(lang.V("buf"), lang.U32(10), lang.U8(0xAA)),
		)),
		"segv": mustProg(t, lang.Fn("main", nil,
			lang.AllocAt("buf", "t@1", lang.U32(8)),
			lang.Put(lang.V("buf"), lang.U32(100000), lang.U8(1)),
		)),
		"heap-corruption-abrt": mustProg(t, lang.Fn("main", nil,
			lang.AllocAt("a", "t@1", lang.U32(8)),
			lang.Put(lang.V("a"), lang.U32(9), lang.U8(1)),
			lang.AllocAt("b", "t@2", lang.U32(8)),
		)),
		// Two clobbered red zones before the aborting alloc: the abort must
		// be attributed to the *first* clobbered block on both interpreters.
		"double-canary-abrt": mustProg(t, lang.Fn("main", nil,
			lang.AllocAt("a", "t@1", lang.U32(8)),
			lang.AllocAt("b", "t@2", lang.U32(8)),
			lang.Put(lang.V("b"), lang.U32(9), lang.U8(1)),
			lang.Put(lang.V("a"), lang.U32(10), lang.U8(1)),
			lang.AllocAt("c", "t@3", lang.U32(8)),
		)),
		"invalid-read": mustProg(t, lang.Fn("main", nil,
			lang.AllocAt("buf", "t@1", lang.U32(4)),
			lang.Let("x", lang.Load(lang.V("buf"), lang.U32(6))),
			lang.AllocAt("b2", "t@2", lang.V("x")),
		)),
		"width-mismatch": mustProg(t, lang.Fn("main", nil,
			lang.Let("x", lang.Add(lang.U8(1), lang.U32(2))),
		)),
		"undefined-var": mustProg(t, lang.Fn("main", nil,
			lang.Let("x", lang.V("never_assigned")),
		)),
		"undefined-global": mustProg(t, lang.Fn("main", nil,
			lang.Let("x", lang.V("g_missing")),
		)),
		"globals-and-calls": mustProg(t,
			lang.Fn("bump", nil,
				lang.Let("g_n", lang.Add(lang.V("g_n"), lang.U32(1))),
				lang.Ret(lang.V("g_n")),
			),
			lang.Fn("main", nil,
				lang.Let("g_n", lang.ZX(32, lang.InAt(0))),
				lang.Do(lang.Call("bump")),
				lang.Let("v", lang.Call("bump")),
				lang.AllocAt("b", "t@1", lang.V("v")),
			),
		),
		"recursion": mustProg(t,
			lang.Fn("fib", []string{"n"},
				lang.IfThen("base", lang.Ult(lang.V("n"), lang.U32(2)),
					lang.Ret(lang.V("n")),
				),
				lang.Ret(lang.Add(
					lang.Call("fib", lang.Sub(lang.V("n"), lang.U32(1))),
					lang.Call("fib", lang.Sub(lang.V("n"), lang.U32(2))),
				)),
			),
			lang.Fn("main", nil,
				lang.AllocAt("b", "t@1", lang.Call("fib", lang.ZX(32, lang.InAt(0)))),
			),
		),
		"bare-return": mustProg(t,
			lang.Fn("noop", nil, lang.RetVoid()),
			lang.Fn("main", nil,
				lang.Let("x", lang.Call("noop")),
				lang.AllocAt("b", "t@1", lang.V("x")),
			),
		),
		"ops-matrix": mustProg(t, lang.Fn("main", nil,
			lang.Let("a", lang.ZX(32, lang.InAt(0))),
			lang.Let("b", lang.ZX(32, lang.InAt(1))),
			lang.Let("x", lang.BitXor(
				lang.UDiv(lang.Mul(lang.V("a"), lang.V("b")), lang.Add(lang.V("b"), lang.U32(1))),
				lang.URem(lang.Shl(lang.V("a"), lang.U32(3)), lang.Add(lang.V("a"), lang.U32(7))))),
			lang.Let("y", lang.BitOr(
				lang.LShr(lang.V("x"), lang.U32(2)),
				lang.AShr(lang.Neg(lang.V("b")), lang.U32(1)))),
			lang.Let("z", lang.SX(64, lang.BitNot(lang.V("y")))),
			lang.IfElse("cmp", lang.Or(
				lang.And(lang.Slt(lang.V("a"), lang.V("b")), lang.Not(lang.Uge(lang.V("x"), lang.V("y")))),
				lang.Sgt(lang.V("z"), lang.U64(100))),
				lang.Block{lang.AllocAt("p", "t@1", lang.V("x"))},
				lang.Block{lang.AllocAt("q", "t@2", lang.V("y"))},
			),
			// "p" is only defined on the then-branch: the else path exercises
			// the undefined-variable runtime error on both interpreters.
			lang.Let("w", lang.Load(lang.V("p"), lang.Len())),
		)),
	}
	inputs := [][]byte{nil, {0}, {7, 3}, {200, 100, 50}, {9, 0xFF}}
	for name, prog := range progs {
		m := interp.NewMachine(interp.Compile(prog))
		for i, input := range inputs {
			for mode, opts := range parityModes() {
				checkParity(t, fmt.Sprintf("%s input#%d mode=%s", name, i, mode), prog, m, input, opts)
			}
		}
	}
}

// TestCompiledParityFusion aims the parity check at the shapes the lowerer
// fuses into superinstructions — bulk memset-style store loops (including
// red-zone crossings, mid-loop segfaults, affine Mul/ZX offsets, and loops
// that run past the dense-cell limit into far storage), load-op-store, and
// the undefined-operand refund paths of the fused binop/load forms — so a
// fusion that drifts from per-cell/per-step semantics diverges here even if
// the app sweep never hits its bail conditions.
func TestCompiledParityFusion(t *testing.T) {
	progs := map[string]*lang.Program{
		// Canonical memset loop that runs off the allocation into the red
		// zone: cells 0..7 are clean writes, 8..17 clobber the canary — the
		// bulk loop must warn/mark exactly like per-cell stores.
		"memset-redzone": mustProg(t, lang.Fn("main", nil,
			lang.AllocAt("buf", "t@1", lang.U32(8)),
			lang.Let("i", lang.U32(0)),
			lang.Loop("fill", lang.Ult(lang.V("i"), lang.U32(18)),
				lang.Put(lang.V("buf"), lang.V("i"), lang.U8(0xAA)),
				lang.Let("i", lang.Add(lang.V("i"), lang.U32(1))),
			),
			lang.AllocAt("next", "t@2", lang.U32(4)),
		)),
		// Input-bounded fill: the trip count comes from the input byte, so
		// fuel exhaustion, clean termination, and canary clobbering are all
		// reachable, and the loop condition is taint/symbolic-carrying.
		"memset-input-bound": mustProg(t, lang.Fn("main", nil,
			lang.AllocAt("buf", "t@1", lang.U32(32)),
			lang.Let("n", lang.ZX(32, lang.InAt(0))),
			lang.Let("i", lang.U32(0)),
			lang.Loop("fill", lang.Ult(lang.V("i"), lang.V("n")),
				lang.Put(lang.V("buf"), lang.V("i"), lang.U8(1)),
				lang.Let("i", lang.Add(lang.V("i"), lang.U32(1))),
			),
		)),
		// Affine offsets: Mul-scaled loop variable wrapped in ZX(64, ·) —
		// the scaled-index idiom the matcher accepts — striding far enough
		// to segfault mid-loop, so the bail must not consume the bailing
		// iteration's charges.
		"memset-affine-segv": mustProg(t, lang.Fn("main", nil,
			lang.AllocAt("buf", "t@1", lang.U32(64)),
			lang.Let("i", lang.U32(0)),
			lang.Loop("stride", lang.Ult(lang.V("i"), lang.U32(40000)),
				lang.Put(lang.V("buf"), lang.ZX(64, lang.Mul(lang.V("i"), lang.U32(8))), lang.U8(2)),
				lang.Let("i", lang.Add(lang.V("i"), lang.U32(1))),
			),
		)),
		// A fill that crosses denseLimit (4096 cells): the bulk path must
		// hand far-cell stores the same semantics as the per-cell store.
		"memset-past-dense": mustProg(t, lang.Fn("main", nil,
			lang.AllocAt("buf", "t@1", lang.U32(5000)),
			lang.Let("i", lang.U32(0)),
			lang.Loop("fill", lang.Ult(lang.V("i"), lang.U32(4500)),
				lang.Put(lang.V("buf"), lang.V("i"), lang.U8(3)),
				lang.Let("i", lang.Add(lang.V("i"), lang.U32(1))),
			),
			lang.Let("back", lang.Load(lang.V("buf"), lang.U32(4400))),
			lang.AllocAt("sz", "t@2", lang.Add(lang.ZX(32, lang.V("back")), lang.U32(1))),
		)),
		// Load-op-store fusion (buf[i] = buf[i] + k) plus its load-error
		// path when the offset runs past the block.
		"load-op-store": mustProg(t, lang.Fn("main", nil,
			lang.AllocAt("buf", "t@1", lang.U32(8)),
			lang.Put(lang.V("buf"), lang.U32(3), lang.U8(40)),
			lang.Put(lang.V("buf"), lang.U32(3), lang.Add(lang.Load(lang.V("buf"), lang.U32(3)), lang.U8(2))),
			lang.Let("off", lang.ZX(32, lang.InAt(0))),
			lang.Put(lang.V("buf"), lang.V("off"), lang.Add(lang.Load(lang.V("buf"), lang.V("off")), lang.U8(1))),
			lang.AllocAt("sz", "t@2", lang.ZX(32, lang.Load(lang.V("buf"), lang.U32(3)))),
		)),
		// Undefined operands inside fused forms: the fused instructions
		// charge up front and must refund exactly what the tree-walker never
		// charged when the first read fails.
		"undef-in-fused-bin": mustProg(t, lang.Fn("main", nil,
			lang.Let("a", lang.U32(1)),
			lang.Let("x", lang.Add(lang.V("a"), lang.V("nope"))),
		)),
		"undef-in-loadzx": mustProg(t, lang.Fn("main", nil,
			lang.Let("x", lang.ZX(32, lang.InByte{Idx: lang.Add(lang.V("nope"), lang.U32(1))})),
		)),
	}
	inputs := [][]byte{nil, {0}, {5}, {40}, {0xFF}}
	for name, prog := range progs {
		m := interp.NewMachine(interp.Compile(prog))
		for i, input := range inputs {
			for mode, opts := range parityModes() {
				checkParity(t, fmt.Sprintf("%s input#%d mode=%s", name, i, mode), prog, m, input, opts)
			}
		}
	}
}

// TestCompiledParityFuelSweep runs a program mixing every fused shape under
// every fuel value up to past its natural step count, in plain and symbolic
// modes. Step-count parity means exhaustion must bite at the identical point
// on both interpreters for every single cutoff — the strongest check on the
// lowerer's charge-attachment rule (charges lumped onto fused instructions
// must equal the tree-walker's pre-order step accounting at every prefix).
func TestCompiledParityFuelSweep(t *testing.T) {
	prog := mustProg(t,
		lang.Fn("bump", []string{"v"},
			lang.Ret(lang.Add(lang.V("v"), lang.U32(1))),
		),
		lang.Fn("main", nil,
			lang.AllocAt("buf", "t@1", lang.U32(16)),
			lang.Let("i", lang.U32(0)),
			lang.Loop("fill", lang.Ult(lang.V("i"), lang.U32(12)),
				lang.Put(lang.V("buf"), lang.V("i"), lang.U8(7)),
				lang.Let("i", lang.Add(lang.V("i"), lang.U32(1))),
			),
			lang.Let("x", lang.ZX(32, lang.InByte{Idx: lang.Add(lang.ZX(32, lang.InAt(0)), lang.U32(1))})),
			lang.Put(lang.V("buf"), lang.U32(2), lang.Add(lang.Load(lang.V("buf"), lang.U32(2)), lang.U8(1))),
			lang.Let("y", lang.Call("bump", lang.V("x"))),
			lang.IfThen("big", lang.Ugt(lang.V("y"), lang.U32(3)),
				lang.AllocAt("b2", "t@2", lang.V("y")),
			),
		),
	)
	m := interp.NewMachine(interp.Compile(prog))
	input := []byte{1, 9, 5}
	for _, mode := range []string{"plain", "symbolic"} {
		for fuel := int64(1); fuel <= 400; fuel++ {
			opts := interp.Options{Fuel: fuel, TrackSymbolic: mode == "symbolic"}
			checkParity(t, fmt.Sprintf("fuel=%d mode=%s", fuel, mode), prog, m, input, opts)
		}
	}
}

// TestCompiledCustomInputVarName pins that a caller-supplied InputVarName is
// honored identically on both paths (field-named symbolic variables).
func TestCompiledCustomInputVarName(t *testing.T) {
	prog := mustProg(t, lang.Fn("main", nil,
		lang.AllocAt("b", "t@1", lang.Mul(lang.ZX(32, lang.InAt(0)), lang.ZX(32, lang.InAt(1)))),
	))
	opts := interp.Options{
		TrackSymbolic: true,
		InputVarName:  func(i int) string { return fmt.Sprintf("/custom/byte%d", i) },
	}
	m := interp.NewMachine(interp.Compile(prog))
	checkParity(t, "custom-name", prog, m, []byte{5, 7}, opts)
	m.Reset([]byte{5, 7}, opts)
	out := m.Run()
	if got := out.Allocs[0].Sym.String(); !strings.Contains(got, "/custom/byte0") {
		t.Fatalf("custom input var name not used: %s", got)
	}
}

// TestMachineReuseMatchesFreshRuns pins the Reset contract: a single Machine
// run back-to-back over a mixed input/mode sequence produces the same
// outcomes as a fresh Machine per run.
func TestMachineReuseMatchesFreshRuns(t *testing.T) {
	app, err := apps.ByName("dillo")
	if err != nil {
		t.Fatal(err)
	}
	code := app.Compiled()
	reused := interp.NewMachine(code)
	inputs := parityInputs(app.Format.Seed)
	for round := 0; round < 3; round++ {
		for i, input := range inputs {
			for mode, opts := range parityModes() {
				fresh := interp.NewMachine(code)
				fresh.Reset(input, opts)
				want := dumpOutcome(fresh.Run())
				reused.Reset(input, opts)
				got := dumpOutcome(reused.Run())
				if got != want {
					t.Fatalf("round %d input#%d mode=%s: reused machine diverges\n--- fresh:\n%s--- reused:\n%s",
						round, i, mode, want, got)
				}
			}
		}
	}
}

// TestMachineRunRequiresReset pins the Reset-then-Run usage contract.
func TestMachineRunRequiresReset(t *testing.T) {
	prog := mustProg(t, lang.Fn("main", nil, lang.AllocAt("b", "t@1", lang.U32(1))))
	m := interp.NewMachine(interp.Compile(prog))
	defer func() {
		if recover() == nil {
			t.Fatal("Run without Reset should panic")
		}
	}()
	m.Reset(nil, interp.Options{})
	m.Run()
	m.Run() // second Run without Reset
}

func mustProg(t *testing.T, fns ...*lang.Func) *lang.Program {
	t.Helper()
	p := lang.NewProgram("parity")
	for _, f := range fns {
		p.AddFunc(f)
	}
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	return p
}
