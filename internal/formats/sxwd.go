package formats

import "diode/internal/field"

// SXWD is the XWD-analogue window-dump format ImageMagick processes: a fixed
// big-endian header followed by a colormap and pixel data. All header fields
// are 32-bit big-endian, as in real XWD files.

// SXWD header field offsets (all 4-byte big-endian).
const (
	SXWDHeaderSize   = 0
	SXWDVersion      = 4
	SXWDFormat       = 8
	SXWDDepth        = 12
	SXWDWidth        = 16
	SXWDHeight       = 20
	SXWDXOffset      = 24
	SXWDBitsPerPixel = 28
	SXWDBytesPerLine = 32
	SXWDCmapEntries  = 36
	SXWDNColors      = 40
	SXWDWindowWidth  = 44
	SXWDWindowHeight = 48
	SXWDWindowX      = 52
	SXWDWindowY      = 56
	SXWDHdrLen       = 60
	SXWDCmapData     = 60 // ncolors * 8 bytes in the seed
	SXWDPixelData    = 124
	SXWDSeedLength   = 188
)

// SXWD returns the ImageMagick input format with its canonical seed.
func SXWD() *Format {
	seed := make([]byte, SXWDSeedLength)
	be32(seed, SXWDHeaderSize, SXWDHdrLen)
	be32(seed, SXWDVersion, 7)
	be32(seed, SXWDFormat, 2) // ZPixmap
	be32(seed, SXWDDepth, 24)
	be32(seed, SXWDWidth, 320)
	be32(seed, SXWDHeight, 200)
	be32(seed, SXWDXOffset, 4)
	be32(seed, SXWDBitsPerPixel, 24)
	be32(seed, SXWDBytesPerLine, 960)
	be32(seed, SXWDCmapEntries, 8)
	be32(seed, SXWDNColors, 8)
	be32(seed, SXWDWindowWidth, 320)
	be32(seed, SXWDWindowHeight, 200)
	be32(seed, SXWDWindowX, 10)
	be32(seed, SXWDWindowY, 12)
	for i := SXWDCmapData; i < SXWDPixelData; i++ {
		seed[i] = byte(i * 13)
	}
	for i := SXWDPixelData; i < SXWDSeedLength; i++ {
		seed[i] = byte(i * 29)
	}

	fields := field.MustMap([]field.Spec{
		{Name: "/xwd/depth", Offset: SXWDDepth, Size: 4, Order: field.BigEndian},
		{Name: "/xwd/width", Offset: SXWDWidth, Size: 4, Order: field.BigEndian},
		{Name: "/xwd/height", Offset: SXWDHeight, Size: 4, Order: field.BigEndian},
		{Name: "/xwd/xoffset", Offset: SXWDXOffset, Size: 4, Order: field.BigEndian},
		{Name: "/xwd/bits_per_pixel", Offset: SXWDBitsPerPixel, Size: 4, Order: field.BigEndian},
		{Name: "/xwd/bytes_per_line", Offset: SXWDBytesPerLine, Size: 4, Order: field.BigEndian},
		{Name: "/xwd/cmap_entries", Offset: SXWDCmapEntries, Size: 4, Order: field.BigEndian},
		{Name: "/xwd/ncolors", Offset: SXWDNColors, Size: 4, Order: field.BigEndian},
		{Name: "/xwd/window_width", Offset: SXWDWindowWidth, Size: 4, Order: field.BigEndian},
		{Name: "/xwd/window_height", Offset: SXWDWindowHeight, Size: 4, Order: field.BigEndian},
	})

	return &Format{
		Name:     "sxwd",
		Seed:     seed,
		Fields:   fields,
		Fixups:   nil, // fixed header, no checksums
		Validate: validateSXWD,
	}
}

func validateSXWD(data []byte) error {
	if len(data) < SXWDHdrLen {
		return structErr("sxwd", "truncated header")
	}
	if rdbe32(data, SXWDVersion) != 7 {
		return structErr("sxwd", "bad version")
	}
	return nil
}
