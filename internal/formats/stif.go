package formats

import (
	"diode/internal/field"
	"diode/internal/inputgen"
)

// STIF is the TIFF-analogue format the TIFThumb benchmark processes: a
// little-endian header pointing at an image file directory (IFD) of tagged
// entries, with the offset indirection and strip bookkeeping of real TIFF:
//
//	"II" | 42(2 LE) | ifd_offset(4 LE)
//
// At ifd_offset: entry_count(2 LE), then 12-byte entries of the form
// tag(2 LE) | type(2 LE) | count(4 LE) | value(4 LE), then a next-IFD
// offset (0). The entries carry ImageWidth (256), ImageLength (257),
// BitsPerSample (258), StripOffsets (273, pointing at the strip data
// elsewhere in the file), RowsPerStrip (278) and StripByteCounts (279,
// which must equal the bytes from the strip offset to EOF and is maintained
// by a fix-up, like the RIFF size field in SWAV/SWEBP).

// STIF tag numbers.
const (
	STIFTagWidth        = 256
	STIFTagHeight       = 257
	STIFTagBits         = 258
	STIFTagStripOffsets = 273
	STIFTagRowsPerStrip = 278
	STIFTagStripCounts  = 279
)

// STIF seed layout constants.
const (
	STIFIFDOffset = 4  // header field holding the IFD offset
	STIFIFD       = 8  // entry count position in the seed
	STIFEntries   = 10 // first 12-byte entry
	// Entry value fields (entry i value lives at STIFEntries + 12*i + 8).
	STIFWidthValue  = 18
	STIFHeightValue = 30
	STIFBitsValue   = 42
	STIFStripOffVal = 54
	STIFRowsValue   = 66
	STIFCountsValue = 78
	STIFNextIFD     = 82
	STIFAuxData     = 86  // palette/pad bytes
	STIFStripData   = 110 // strip bytes to EOF
	STIFSeedLength  = 174
)

// stifEntry writes one 12-byte IFD entry.
func stifEntry(data []byte, off int, tag, typ uint16, count, value uint32) {
	le16(data, off, tag)
	le16(data, off+2, typ)
	le32(data, off+4, count)
	le32(data, off+8, value)
}

// STIF returns the TIFThumb input format with its canonical seed.
func STIF() *Format {
	seed := make([]byte, STIFSeedLength)
	seed[0], seed[1] = 'I', 'I'
	le16(seed, 2, 42)
	le32(seed, STIFIFDOffset, STIFIFD)

	le16(seed, STIFIFD, 6) // entry count
	stifEntry(seed, STIFEntries+0*12, STIFTagWidth, 4, 1, 64)
	stifEntry(seed, STIFEntries+1*12, STIFTagHeight, 4, 1, 48)
	stifEntry(seed, STIFEntries+2*12, STIFTagBits, 3, 1, 8) // SHORT: low 2 bytes
	stifEntry(seed, STIFEntries+3*12, STIFTagStripOffsets, 4, 1, STIFStripData)
	stifEntry(seed, STIFEntries+4*12, STIFTagRowsPerStrip, 4, 1, 16)
	stifEntry(seed, STIFEntries+5*12, STIFTagStripCounts, 4, 1, 0) // fixed up
	le32(seed, STIFNextIFD, 0)

	for i := STIFAuxData; i < STIFStripData; i++ {
		seed[i] = byte(3 * i)
	}
	for i := STIFStripData; i < STIFSeedLength; i++ {
		seed[i] = byte(19 * i)
	}
	FixSTIFStripBytes(seed)

	fields := field.MustMap([]field.Spec{
		{Name: "/ifd/width", Offset: STIFWidthValue, Size: 4, Order: field.LittleEndian},
		{Name: "/ifd/height", Offset: STIFHeightValue, Size: 4, Order: field.LittleEndian},
		{Name: "/ifd/bits", Offset: STIFBitsValue, Size: 2, Order: field.LittleEndian},
		{Name: "/ifd/rows_per_strip", Offset: STIFRowsValue, Size: 4, Order: field.LittleEndian},
	})

	return &Format{
		Name:     "stif",
		Seed:     seed,
		Fields:   fields,
		Fixups:   []inputgen.Fixup{FixSTIFStripBytes},
		Validate: validateSTIF,
	}
}

// stifValueOffset resolves an entry value position through the IFD
// indirection: it reads the IFD offset from the header, walks the tagged
// entries, and returns the file offset of the named tag's value field (-1
// when the tag is absent or the directory is out of bounds).
func stifValueOffset(data []byte, tag uint16) int {
	if len(data) < STIFIFDOffset+4 {
		return -1
	}
	ifd := int(rdle32(data, STIFIFDOffset))
	if ifd < 0 || ifd+2 > len(data) {
		return -1
	}
	count := int(data[ifd]) | int(data[ifd+1])<<8
	for i := 0; i < count; i++ {
		entry := ifd + 2 + 12*i
		if entry+12 > len(data) {
			return -1
		}
		if uint16(data[entry])|uint16(data[entry+1])<<8 == tag {
			return entry + 8
		}
	}
	return -1
}

// FixSTIFStripBytes repairs the StripByteCounts entry so it covers exactly
// the bytes from the strip offset to EOF — the strip-bookkeeping analogue of
// the RIFF size fix-up, resolved through the IFD offset indirection.
func FixSTIFStripBytes(data []byte) {
	offVal := stifValueOffset(data, STIFTagStripOffsets)
	cntVal := stifValueOffset(data, STIFTagStripCounts)
	if offVal < 0 || cntVal < 0 || offVal+4 > len(data) || cntVal+4 > len(data) {
		return
	}
	strip := int(rdle32(data, offVal))
	if strip < 0 || strip > len(data) {
		return
	}
	le32(data, cntVal, uint32(len(data)-strip))
}

func validateSTIF(data []byte) error {
	if len(data) < STIFEntries || data[0] != 'I' || data[1] != 'I' || rdle32(data, 0)>>16 != 42 {
		return structErr("stif", "bad header magic")
	}
	for _, tag := range []uint16{STIFTagWidth, STIFTagHeight, STIFTagBits,
		STIFTagStripOffsets, STIFTagRowsPerStrip, STIFTagStripCounts} {
		if v := stifValueOffset(data, tag); v < 0 || v+4 > len(data) {
			return structErr("stif", "missing or truncated IFD entry for tag %d", tag)
		}
	}
	strip := int(rdle32(data, stifValueOffset(data, STIFTagStripOffsets)))
	count := int(rdle32(data, stifValueOffset(data, STIFTagStripCounts)))
	if strip < 0 || strip > len(data) {
		return structErr("stif", "strip offset %d outside file", strip)
	}
	if count != len(data)-strip {
		return structErr("stif", "strip byte count %d != %d", count, len(data)-strip)
	}
	return nil
}
