package formats

import (
	"bytes"

	"diode/internal/field"
	"diode/internal/inputgen"
)

// SGIF is the GIF-analogue format the GIFView benchmark processes: an
// LZW-flavored, sub-block framed image format with little-endian dimensions
// and the classic logical-screen/frame-descriptor split to exploit:
//
//	"SGIF9a" | logical screen descriptor | global color table |
//	blocks... | trailer(0x3B)
//
// The logical screen descriptor is width(2 LE), height(2 LE), flags(1),
// background(1), aspect(1). The global color table is always stored as 8
// RGB entries (the flags' low bits only select how many a viewer uses).
// Blocks are either extensions (0x21, label, sub-block chain) or image
// blocks (0x2C, then left/top/width/height as 2-byte LE fields, flags(1),
// LZW minimum code size(1), a sub-block chain of LZW data, and a 16-bit LE
// additive checksum over everything from the screen descriptor up to the
// checksum itself). A sub-block chain is length(1)-prefixed runs terminated
// by a zero length — the framing a generated input must keep intact — and
// the checksum is maintained by a fix-up, like SPNG's chunk checksums.

// SGIF seed layout constants.
const (
	SGIFSigLen     = 6  // "SGIF9a"
	SGIFLSD        = 6  // width(2 LE) height(2 LE) flags(1) bg(1) aspect(1)
	SGIFGCT        = 13 // 8 RGB entries
	SGIFFirstBlock = 37 // extension introducer in the seed
	SGIFImgSep     = 49 // 0x2C image separator
	SGIFImgDesc    = 50 // left(2 LE) top(2 LE) width(2 LE) height(2 LE) flags(1) lzwmin(1)
	SGIFSubBlocks  = 60 // first LZW sub-block length byte
	SGIFChecksum   = 79 // 16-bit LE checksum of [SGIFLSD, SGIFChecksum)
	SGIFTrailer    = 81
	SGIFSeedLength = 82
)

var sgifSignature = []byte("SGIF9a")

// SGIF returns the GIFView input format with its canonical seed.
func SGIF() *Format {
	var buf bytes.Buffer
	buf.Write(sgifSignature)

	lsd := make([]byte, 7)
	le16(lsd, 0, 640) // logical screen width
	le16(lsd, 2, 480) // logical screen height
	lsd[4] = 0x82     // flags: GCT present, size exponent 2 (8 colors)
	lsd[5] = 0        // background color index
	lsd[6] = 49       // pixel aspect ratio
	buf.Write(lsd)

	gct := make([]byte, 8*3)
	for i := range gct {
		gct[i] = byte(17 * i)
	}
	buf.Write(gct)

	// Comment extension: introducer, label, one 8-byte sub-block, terminator.
	buf.Write([]byte{0x21, 0xFE, 8})
	buf.WriteString("seedfile")
	buf.WriteByte(0)

	// Image block: separator, descriptor, LZW data sub-blocks, checksum.
	buf.WriteByte(0x2C)
	desc := make([]byte, 10)
	le16(desc, 0, 12) // left
	le16(desc, 2, 8)  // top
	le16(desc, 4, 50) // frame width
	le16(desc, 6, 40) // frame height
	desc[8] = 0       // frame flags
	desc[9] = 8       // LZW minimum code size
	buf.Write(desc)

	buf.WriteByte(10)
	for i := 0; i < 10; i++ {
		buf.WriteByte(byte(0x30 + 7*i))
	}
	buf.WriteByte(6)
	for i := 0; i < 6; i++ {
		buf.WriteByte(byte(0x90 + 5*i))
	}
	buf.WriteByte(0)        // sub-block terminator
	buf.Write([]byte{0, 0}) // checksum, fixed up below
	buf.WriteByte(0x3B)     // trailer

	seed := buf.Bytes()
	if len(seed) != SGIFSeedLength {
		panic("formats: SGIF seed layout drifted; update the offset constants")
	}
	FixSGIFChecksums(seed)

	fields := field.MustMap([]field.Spec{
		{Name: "/lsd/width", Offset: SGIFLSD, Size: 2, Order: field.LittleEndian},
		{Name: "/lsd/height", Offset: SGIFLSD + 2, Size: 2, Order: field.LittleEndian},
		{Name: "/lsd/flags", Offset: SGIFLSD + 4, Size: 1},
		{Name: "/img/left", Offset: SGIFImgDesc, Size: 2, Order: field.LittleEndian},
		{Name: "/img/top", Offset: SGIFImgDesc + 2, Size: 2, Order: field.LittleEndian},
		{Name: "/img/width", Offset: SGIFImgDesc + 4, Size: 2, Order: field.LittleEndian},
		{Name: "/img/height", Offset: SGIFImgDesc + 6, Size: 2, Order: field.LittleEndian},
		{Name: "/img/lzwmin", Offset: SGIFImgDesc + 9, Size: 1},
	})

	return &Format{
		Name:     "sgif",
		Seed:     seed,
		Fields:   fields,
		Fixups:   []inputgen.Fixup{FixSGIFChecksums},
		Validate: validateSGIF,
	}
}

// SGIFAppendFrame returns a copy of data with one more image block — the
// given descriptor, an 8-bit LZW minimum code size and a single 4-byte LZW
// sub-block — inserted immediately before the trailer, with every image
// checksum re-fixed. SGIF allows any number of image blocks per file; the
// canonical seed carries one, and this helper builds the multi-frame inputs
// that pin repeated-frame field structure through the taint and trace layers.
// Data without a well-formed block walk up to a trailer is returned unchanged
// (the parser rejects it anyway).
func SGIFAppendFrame(data []byte, left, top, width, height uint16) []byte {
	out := append([]byte(nil), data...)
	pos := SGIFFirstBlock
	for pos < len(out) {
		switch out[pos] {
		case 0x21:
			next := sgifSkipSubBlocks(out, pos+2)
			if next < 0 {
				return out
			}
			pos = next
		case 0x2C:
			next := sgifSkipSubBlocks(out, pos+11)
			if next < 0 || next+2 > len(out) {
				return out
			}
			pos = next + 2
		case 0x3B:
			frame := make([]byte, 0, 19)
			frame = append(frame, 0x2C)
			desc := make([]byte, 10)
			le16(desc, 0, left)
			le16(desc, 2, top)
			le16(desc, 4, width)
			le16(desc, 6, height)
			desc[8] = 0 // frame flags
			desc[9] = 8 // LZW minimum code size
			frame = append(frame, desc...)
			frame = append(frame, 4, 0x51, 0x62, 0x73, 0x84) // one LZW sub-block
			frame = append(frame, 0)                         // sub-block terminator
			frame = append(frame, 0, 0)                      // checksum, fixed up below
			out = append(out[:pos], append(frame, out[pos:]...)...)
			FixSGIFChecksums(out)
			return out
		default:
			return out
		}
	}
	return out
}

// sgifSkipSubBlocks walks a sub-block chain starting at the first length
// byte and returns the offset just past the zero terminator, or -1 when the
// chain is not properly framed within the data.
func sgifSkipSubBlocks(data []byte, pos int) int {
	for {
		if pos >= len(data) {
			return -1
		}
		n := int(data[pos])
		if n == 0 {
			return pos + 1
		}
		pos += 1 + n
	}
}

// FixSGIFChecksums walks the block structure and rewrites every image
// block's 16-bit checksum over [SGIFLSD, checksum offset) — the sub-block
// framed counterpart of SPNG's chunk checksum repair. Malformed framing is
// left alone (the parser rejects it anyway).
func FixSGIFChecksums(data []byte) {
	if len(data) < SGIFFirstBlock {
		return
	}
	pos := SGIFFirstBlock
	for pos < len(data) {
		switch data[pos] {
		case 0x21: // extension: introducer, label, sub-blocks
			next := sgifSkipSubBlocks(data, pos+2)
			if next < 0 {
				return
			}
			pos = next
		case 0x2C: // image: separator, 10-byte descriptor, sub-blocks, checksum
			next := sgifSkipSubBlocks(data, pos+11)
			if next < 0 || next+2 > len(data) {
				return
			}
			le16(data, next, uint16(sum32(data[SGIFLSD:next])))
			pos = next + 2
		default: // trailer or junk: nothing left to fix
			return
		}
	}
}

func validateSGIF(data []byte) error {
	if len(data) < SGIFGCT+8*3 || !bytes.Equal(data[:SGIFSigLen], sgifSignature) {
		return structErr("sgif", "bad signature")
	}
	pos := SGIFFirstBlock
	for {
		if pos >= len(data) {
			return structErr("sgif", "missing trailer")
		}
		switch data[pos] {
		case 0x21:
			next := sgifSkipSubBlocks(data, pos+2)
			if next < 0 {
				return structErr("sgif", "extension at %d runs past EOF", pos)
			}
			pos = next
		case 0x2C:
			if pos+11 > len(data) {
				return structErr("sgif", "truncated image descriptor at %d", pos)
			}
			next := sgifSkipSubBlocks(data, pos+11)
			if next < 0 || next+2 > len(data) {
				return structErr("sgif", "image data at %d runs past EOF", pos)
			}
			want := uint16(sum32(data[SGIFLSD:next]))
			got := uint16(data[next]) | uint16(data[next+1])<<8
			if got != want {
				return structErr("sgif", "image checksum mismatch: %#x != %#x", got, want)
			}
			pos = next + 2
		case 0x3B:
			return nil
		default:
			return structErr("sgif", "unknown block introducer %#x at %d", data[pos], pos)
		}
	}
}
