package formats

import (
	"bytes"

	"diode/internal/field"
	"diode/internal/inputgen"
)

// SPNG is the PNG-analogue format Dillo processes: an 8-byte signature
// followed by chunks of the form
//
//	length(4, BE) | type(4) | data(length) | checksum(4, BE over type+data)
//
// The seed carries the chunks IHDR (width/height/bit_depth/...), PLTE
// (palette with an explicit entry count), tRNS, gAMA, bKGD, tEXt, oFFs,
// pHYs, sBIT and IDAT — one per Dillo processing stage — and ends with IEND.
//
// Byte offsets below are fixed by the seed layout; the field dictionary and
// the chunk walker in the Dillo guest application both rely on them.

// SPNG seed layout constants (chunk data offsets).
const (
	SPNGSigLen = 8

	SPNGIHDRData   = 16 // width(4) height(4) bit_depth(1) color_type(1) comp(1) filter(1) interlace(1)
	SPNGPLTEData   = 41 // entries(2 BE) + 16*3 palette bytes
	SPNGTRNSData   = 103
	SPNGGAMAData   = 117
	SPNGBKGDData   = 131
	SPNGTEXTData   = 145
	SPNGOFFSData   = 167
	SPNGPHYSData   = 183
	SPNGSBITData   = 199
	SPNGIDATData   = 213
	SPNGSeedLength = 293
)

var spngSignature = []byte{0x89, 'S', 'P', 'N', 'G', '\r', '\n', 0x1A}

// spngChunk appends one chunk with a correct checksum.
func spngChunk(buf *bytes.Buffer, typ string, data []byte) {
	var hdr [4]byte
	be32(hdr[:], 0, uint32(len(data)))
	buf.Write(hdr[:])
	buf.WriteString(typ)
	buf.Write(data)
	var ck [4]byte
	be32(ck[:], 0, sum32(append([]byte(typ), data...)))
	buf.Write(ck[:])
}

// SPNG returns the Dillo input format with its canonical seed.
func SPNG() *Format {
	var buf bytes.Buffer
	buf.Write(spngSignature)

	ihdr := make([]byte, 13)
	be32(ihdr, 0, 280) // width
	be32(ihdr, 4, 160) // height
	ihdr[8] = 8        // bit_depth
	ihdr[9] = 2        // color_type (RGB)
	ihdr[10] = 0       // compression
	ihdr[11] = 0       // filter
	ihdr[12] = 0       // interlace
	spngChunk(&buf, "IHDR", ihdr)

	plte := make([]byte, 2+16*3)
	be16(plte, 0, 16) // declared palette entries
	for i := 0; i < 16*3; i++ {
		plte[2+i] = byte(i * 5)
	}
	spngChunk(&buf, "PLTE", plte)

	trns := make([]byte, 2) // transparency entry count
	be16(trns, 0, 8)
	spngChunk(&buf, "tRNS", trns)

	gama := make([]byte, 2) // gamma table size selector
	be16(gama, 0, 300)
	spngChunk(&buf, "gAMA", gama)

	bkgd := make([]byte, 2) // background tile count
	be16(bkgd, 0, 12)
	spngChunk(&buf, "bKGD", bkgd)

	text := make([]byte, 10) // keyword length (2 BE) + keyword bytes
	be16(text, 0, 8)
	copy(text[2:], "Comment!")
	spngChunk(&buf, "tEXt", text)

	offs := make([]byte, 4) // x offset count (2 BE) + unit(2)
	be16(offs, 0, 20)
	be16(offs, 2, 2)
	spngChunk(&buf, "oFFs", offs)

	phys := make([]byte, 4) // pixels-per-unit (2 BE) + unit(2)
	be16(phys, 0, 72)
	be16(phys, 2, 1)
	spngChunk(&buf, "pHYs", phys)

	sbit := make([]byte, 2) // significant-bit table size
	be16(sbit, 0, 24)
	spngChunk(&buf, "sBIT", sbit)

	idat := make([]byte, 64)
	for i := range idat {
		idat[i] = byte(37 * i)
	}
	spngChunk(&buf, "IDAT", idat)

	spngChunk(&buf, "IEND", nil)

	seed := buf.Bytes()
	if len(seed) != SPNGSeedLength {
		panic("formats: SPNG seed layout drifted; update the offset constants")
	}

	fields := field.MustMap([]field.Spec{
		{Name: "/ihdr/width", Offset: SPNGIHDRData + 0, Size: 4, Order: field.BigEndian},
		{Name: "/ihdr/height", Offset: SPNGIHDRData + 4, Size: 4, Order: field.BigEndian},
		{Name: "/ihdr/bit_depth", Offset: SPNGIHDRData + 8, Size: 1},
		{Name: "/ihdr/color_type", Offset: SPNGIHDRData + 9, Size: 1},
		{Name: "/plte/entries", Offset: SPNGPLTEData, Size: 2, Order: field.BigEndian},
		{Name: "/trns/count", Offset: SPNGTRNSData, Size: 2, Order: field.BigEndian},
		{Name: "/gama/gamma", Offset: SPNGGAMAData, Size: 2, Order: field.BigEndian},
		{Name: "/bkgd/tiles", Offset: SPNGBKGDData, Size: 2, Order: field.BigEndian},
		{Name: "/text/keylen", Offset: SPNGTEXTData, Size: 2, Order: field.BigEndian},
		{Name: "/offs/count", Offset: SPNGOFFSData, Size: 2, Order: field.BigEndian},
		{Name: "/offs/unit", Offset: SPNGOFFSData + 2, Size: 2, Order: field.BigEndian},
		{Name: "/phys/ppu", Offset: SPNGPHYSData, Size: 2, Order: field.BigEndian},
		{Name: "/phys/unit", Offset: SPNGPHYSData + 2, Size: 2, Order: field.BigEndian},
		{Name: "/sbit/size", Offset: SPNGSBITData, Size: 2, Order: field.BigEndian},
	})

	return &Format{
		Name:     "spng",
		Seed:     seed,
		Fields:   fields,
		Fixups:   []inputgen.Fixup{FixSPNGChecksums},
		Validate: validateSPNG,
	}
}

// FixSPNGChecksums walks the chunk structure and rewrites every chunk's
// checksum — the Peach "checksum recalculation" role. Chunks whose declared
// length runs past the file are left alone (the parser rejects them anyway).
func FixSPNGChecksums(data []byte) {
	off := SPNGSigLen
	for off+8 <= len(data) {
		length := int(rdbe32(data, off))
		if length < 0 || off+8+length+4 > len(data) {
			return
		}
		ck := sum32(data[off+4 : off+8+length])
		be32(data, off+8+length, ck)
		off += 12 + length
	}
}

func validateSPNG(data []byte) error {
	if len(data) < SPNGSigLen || !bytes.Equal(data[:SPNGSigLen], spngSignature) {
		return structErr("spng", "bad signature")
	}
	off := SPNGSigLen
	sawEnd := false
	for off+8 <= len(data) {
		length := int(rdbe32(data, off))
		if off+8+length+4 > len(data) {
			return structErr("spng", "chunk at %d runs past EOF", off)
		}
		typ := string(data[off+4 : off+8])
		want := sum32(data[off+4 : off+8+length])
		got := rdbe32(data, off+8+length)
		if want != got {
			return structErr("spng", "chunk %s checksum mismatch: %#x != %#x", typ, got, want)
		}
		off += 12 + length
		if typ == "IEND" {
			sawEnd = true
			break
		}
	}
	if !sawEnd {
		return structErr("spng", "missing IEND")
	}
	return nil
}
