package formats

import (
	"bytes"
	"testing"

	"diode/internal/bv"
)

// TestSGIFAppendFrame pins the multi-frame fixture builder: appended image
// blocks keep the file Validate-clean (every per-image checksum re-fixed),
// stack to arbitrary depth, and leave malformed inputs untouched.
func TestSGIFAppendFrame(t *testing.T) {
	f := SGIF()
	multi := SGIFAppendFrame(f.Seed, 3, 1, 33, 21)
	if len(multi) != SGIFSeedLength+19 {
		t.Fatalf("appended block length drifted: %d, want %d", len(multi), SGIFSeedLength+19)
	}
	if err := f.Validate(multi); err != nil {
		t.Fatalf("two-frame file invalid: %v", err)
	}
	if multi[len(multi)-1] != 0x3B {
		t.Fatal("trailer not preserved")
	}
	// The original frame's bytes are untouched except its checksum region.
	if !bytes.Equal(multi[:SGIFChecksum], f.Seed[:SGIFChecksum]) {
		t.Fatal("appending a frame modified earlier file content")
	}

	three := SGIFAppendFrame(multi, 0, 0, 7, 9)
	if err := f.Validate(three); err != nil {
		t.Fatalf("three-frame file invalid: %v", err)
	}

	// Field patches through the generator must re-fix every frame checksum.
	out, err := f.Generator().Generate(three, bv.Assignment{"/img/width": 1000, "/lsd/height": 16})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Validate(out); err != nil {
		t.Fatalf("patched three-frame file invalid (multi-frame fix-up broken): %v", err)
	}

	// Malformed input (no trailer reachable) comes back unchanged.
	junk := append([]byte(nil), f.Seed[:SGIFFirstBlock]...)
	junk = append(junk, 0x99)
	if got := SGIFAppendFrame(junk, 0, 0, 1, 1); !bytes.Equal(got, junk) {
		t.Fatal("malformed input was modified")
	}
}
