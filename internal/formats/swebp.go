package formats

import (
	"bytes"

	"diode/internal/field"
	"diode/internal/inputgen"
)

// SWEBP is the WebP-analogue RIFF format that CWebP writes and whose decoder
// path (the "VP8 " key-frame header) it exercises:
//
//	"RIFF" | riff_size(4, LE) | "WEBP" | "VP8 " | chunk_size(4, LE) | payload
//
// The payload is a key-frame header: frame_tag(3), sync(3), width(2 LE),
// height(2 LE), quality(1), segments(1), partitions(1), then coefficient
// data. As in SWAV, the RIFF size is maintained by a fix-up.

// SWEBP seed layout constants.
const (
	SWEBPChunkSize  = 16 // offset of the VP8 chunk size field
	SWEBPFrameData  = 20 // frame_tag(3) sync(3) width(2) height(2) quality(1) segments(1) parts(1)
	SWEBPCoeffData  = 33 // coefficient bytes
	SWEBPSeedLength = 81
)

// SWEBP returns the CWebP auxiliary format with its canonical seed.
func SWEBP() *Format {
	var buf bytes.Buffer
	buf.WriteString("RIFF")
	buf.Write(make([]byte, 4)) // riff_size, fixed up below
	buf.WriteString("WEBP")
	buf.WriteString("VP8 ")
	writeLE32(&buf, 61)

	frame := make([]byte, 13)
	frame[0], frame[1], frame[2] = 0x10, 0x00, 0x00 // frame tag
	frame[3], frame[4], frame[5] = 0x9D, 0x01, 0x2A // sync code
	le16(frame, 6, 176)                             // width
	le16(frame, 8, 144)                             // height
	frame[10] = 40                                  // quality
	frame[11] = 2                                   // segments
	frame[12] = 1                                   // partitions
	buf.Write(frame)

	coeff := make([]byte, 48)
	for i := range coeff {
		coeff[i] = byte(7 * i)
	}
	buf.Write(coeff)

	seed := buf.Bytes()
	if len(seed) != SWEBPSeedLength {
		panic("formats: SWEBP seed layout drifted; update the offset constants")
	}
	FixSWEBPRIFFSize(seed)

	fields := field.MustMap([]field.Spec{
		{Name: "/vp8/width", Offset: SWEBPFrameData + 6, Size: 2, Order: field.LittleEndian},
		{Name: "/vp8/height", Offset: SWEBPFrameData + 8, Size: 2, Order: field.LittleEndian},
		{Name: "/vp8/quality", Offset: SWEBPFrameData + 10, Size: 1},
		{Name: "/vp8/segments", Offset: SWEBPFrameData + 11, Size: 1},
		{Name: "/vp8/partitions", Offset: SWEBPFrameData + 12, Size: 1},
	})

	return &Format{
		Name:     "swebp",
		Seed:     seed,
		Fields:   fields,
		Fixups:   []inputgen.Fixup{FixSWEBPRIFFSize},
		Validate: validateSWEBP,
	}
}

// FixSWEBPRIFFSize repairs the RIFF frame size header.
func FixSWEBPRIFFSize(data []byte) {
	if len(data) >= 8 {
		le32(data, 4, uint32(len(data)-8))
	}
}

func validateSWEBP(data []byte) error {
	if len(data) < 20 || string(data[:4]) != "RIFF" || string(data[8:12]) != "WEBP" {
		return structErr("swebp", "bad RIFF/WEBP header")
	}
	if string(data[12:16]) != "VP8 " {
		return structErr("swebp", "missing VP8 chunk")
	}
	return nil
}
