package formats

import (
	"testing"

	"diode/internal/bv"
	"diode/internal/field"
)

// These native fuzz targets pin the fix-up correctness invariant the Hunt
// loop depends on: for ANY field assignment, Generator().Generate must yield
// an input that still passes the format's Validate — i.e. the fix-up passes
// (checksum recalculation, frame/strip size repair) always restore
// structural well-formedness after solver-chosen values are patched in.
// A violation would silently turn solver models into inputs the guest
// parser rejects before reaching the interesting fields.
//
// The fuzz input is interpreted as a value stream: each field consumes
// Size bytes (big-endian, cycling through the data), plus one leading mask
// byte per field deciding whether the field is assigned at all — so partial
// assignments (the common solver case) are exercised too.

// fuzzAssignment derives a (possibly partial) field assignment from raw
// fuzz bytes.
func fuzzAssignment(specs []field.Spec, data []byte) bv.Assignment {
	asn := bv.Assignment{}
	k := 0
	next := func() byte {
		if len(data) == 0 {
			return 0
		}
		b := data[k%len(data)]
		k++
		return b
	}
	for _, s := range specs {
		if next()&1 == 0 {
			continue // leave the field unassigned: it keeps its seed value
		}
		var v uint64
		for i := 0; i < s.Size; i++ {
			v = v<<8 | uint64(next())
		}
		asn[s.Name] = v
	}
	return asn
}

func fuzzFormat(f *testing.F, mk func() *Format) {
	format := mk()
	f.Add([]byte{})
	f.Add([]byte{0x01})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{0x01, 0x00, 0x00, 0x03, 0x80, 0x00, 0xFF, 0x01, 0x7F})
	f.Fuzz(func(t *testing.T, data []byte) {
		asn := fuzzAssignment(format.Fields.Specs(), data)
		out, err := format.Generator().Generate(format.Seed, asn)
		if err != nil {
			t.Fatalf("%s: generate: %v", format.Name, err)
		}
		if err := format.Validate(out); err != nil {
			t.Fatalf("%s: generated input fails validation (fix-up invariant broken): %v", format.Name, err)
		}
		// Every assigned field must carry its value in the output; fix-ups
		// may only touch non-field bytes (checksums, frame sizes).
		got := format.Fields.SeedAssignment(out)
		for name, v := range asn {
			if got[name] != v {
				t.Fatalf("%s: field %s = %d after generation, want %d", format.Name, name, got[name], v)
			}
		}
	})
}

func FuzzSPNG(f *testing.F)  { fuzzFormat(f, SPNG) }
func FuzzSWAV(f *testing.F)  { fuzzFormat(f, SWAV) }
func FuzzSJPG(f *testing.F)  { fuzzFormat(f, SJPG) }
func FuzzSWEBP(f *testing.F) { fuzzFormat(f, SWEBP) }
func FuzzSXWD(f *testing.F)  { fuzzFormat(f, SXWD) }
func FuzzSGIF(f *testing.F)  { fuzzFormat(f, SGIF) }
func FuzzSTIF(f *testing.F)  { fuzzFormat(f, STIF) }
