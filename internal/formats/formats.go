// Package formats defines the synthetic input formats the benchmark
// applications consume. Each format is structurally faithful to the family
// the paper's applications parse — chunked with checksums (PNG), RIFF-framed
// (WAV, WebP), marker-segmented (JPEG), fixed big-endian header (XWD) — so
// that the whole Hachoir/Peach pipeline is exercised: generated inputs must
// have their checksums and frame sizes reconstructed before the parser will
// reach the interesting fields.
//
// Every format supplies a canonical seed input (which the application
// processes correctly, with no overflows), the field dictionary for solver
// variables, and the fix-up passes input generation runs after patching
// field values.
package formats

import (
	"encoding/binary"
	"fmt"

	"diode/internal/field"
	"diode/internal/inputgen"
)

// Format bundles everything DIODE needs to generate inputs for one file type.
type Format struct {
	// Name identifies the format (e.g. "spng").
	Name string
	// Seed is the canonical well-formed input.
	Seed []byte
	// Fields maps byte ranges to named input fields.
	Fields *field.Map
	// Fixups are the reconstruction passes (checksums, frame sizes).
	Fixups []inputgen.Fixup
	// Validate checks structural well-formedness; used by tests.
	Validate func(data []byte) error
}

// Generator returns an input generator for the format.
func (f *Format) Generator() *inputgen.Generator {
	return inputgen.New(f.Fields, f.Fixups...)
}

// be32 writes a big-endian 32-bit value.
func be32(b []byte, off int, v uint32) { binary.BigEndian.PutUint32(b[off:off+4], v) }

// rdbe32 reads a big-endian 32-bit value.
func rdbe32(b []byte, off int) uint32 { return binary.BigEndian.Uint32(b[off : off+4]) }

// le32 writes a little-endian 32-bit value.
func le32(b []byte, off int, v uint32) { binary.LittleEndian.PutUint32(b[off:off+4], v) }

// rdle32 reads a little-endian 32-bit value.
func rdle32(b []byte, off int) uint32 { return binary.LittleEndian.Uint32(b[off : off+4]) }

// le16 writes a little-endian 16-bit value.
func le16(b []byte, off int, v uint16) { binary.LittleEndian.PutUint16(b[off:off+2], v) }

// be16 writes a big-endian 16-bit value.
func be16(b []byte, off int, v uint16) { binary.BigEndian.PutUint16(b[off:off+2], v) }

// sum32 is the additive 32-bit checksum used by the chunked formats: the sum
// of the covered bytes modulo 2^32. (A stand-in for CRC-32 with the same
// fix-up discipline but solver-friendly algebra.)
func sum32(b []byte) uint32 {
	var s uint32
	for _, x := range b {
		s += uint32(x)
	}
	return s
}

func structErr(format, msg string, args ...interface{}) error {
	return fmt.Errorf("%s: %s", format, fmt.Sprintf(msg, args...))
}
