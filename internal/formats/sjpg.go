package formats

import (
	"bytes"

	"diode/internal/field"
)

// SJPG is the JPEG-analogue marker-segment format processed by SwfPlay and
// CWebP:
//
//	SOI(FF D8) | segments... | EOI(FF D9)
//
// where each segment is marker(FF xx) | length(2, BE, counting itself) |
// payload. The seed carries APP0, DQT, SOF0 (precision, height, width,
// component count and per-component descriptors), DHT and SOS (followed by
// entropy data terminated by EOI).

// SJPG marker bytes.
const (
	SJPGMarkAPP0 = 0xE0
	SJPGMarkDQT  = 0xDB
	SJPGMarkSOF0 = 0xC0
	SJPGMarkDHT  = 0xC4
	SJPGMarkSOS  = 0xDA
)

// SJPG seed layout constants (payload offsets).
const (
	SJPGAPP0Data   = 6   // "SJFIF\0" + version(2) + density(2)
	SJPGDQTData    = 20  // table id(1) + 32 table bytes
	SJPGSOFData    = 57  // precision(1) height(2 BE) width(2 BE) ncomp(1) + 3*ncomp
	SJPGDHTData    = 76  // class(1) + counts(4) + 11 symbols
	SJPGSOSData    = 96  // ncomp(1) + 2*ncomp + spectral(3)
	SJPGScanData   = 106 // entropy bytes
	SJPGSeedLength = 140
)

func sjpgSegment(buf *bytes.Buffer, marker byte, payload []byte) {
	buf.WriteByte(0xFF)
	buf.WriteByte(marker)
	var l [2]byte
	be16(l[:], 0, uint16(len(payload)+2))
	buf.Write(l[:])
	buf.Write(payload)
}

// SJPG returns the SwfPlay/CWebP input format with its canonical seed.
func SJPG() *Format {
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xD8}) // SOI

	app0 := make([]byte, 10)
	copy(app0, "SJFIF\x00")
	app0[6], app0[7] = 1, 2 // version
	app0[8], app0[9] = 0, 72
	sjpgSegment(&buf, SJPGMarkAPP0, app0)

	dqt := make([]byte, 33)
	dqt[0] = 0 // table id
	for i := 1; i < 33; i++ {
		dqt[i] = byte(i)
	}
	sjpgSegment(&buf, SJPGMarkDQT, dqt)

	sof := make([]byte, 6+3*3)
	sof[0] = 8        // precision
	be16(sof, 1, 120) // height
	be16(sof, 3, 200) // width
	sof[5] = 3        // component count
	for c := 0; c < 3; c++ {
		sof[6+3*c] = byte(c + 1) // id
		sof[7+3*c] = 0x11        // sampling
		sof[8+3*c] = 0           // quant table
	}
	sjpgSegment(&buf, SJPGMarkSOF0, sof)

	dht := make([]byte, 16)
	dht[0] = 0 // class/id
	for i := 1; i < 5; i++ {
		dht[i] = byte(i) // counts
	}
	for i := 5; i < 16; i++ {
		dht[i] = byte(0x10 + i)
	}
	sjpgSegment(&buf, SJPGMarkDHT, dht)

	sos := make([]byte, 10)
	sos[0] = 3 // components in scan
	for c := 0; c < 3; c++ {
		sos[1+2*c] = byte(c + 1)
		sos[2+2*c] = 0
	}
	sos[7], sos[8], sos[9] = 0, 63, 0
	sjpgSegment(&buf, SJPGMarkSOS, sos)

	scan := make([]byte, 32)
	for i := range scan {
		scan[i] = byte(0x20 + 3*i)
	}
	buf.Write(scan)
	buf.Write([]byte{0xFF, 0xD9}) // EOI

	seed := buf.Bytes()
	if len(seed) != SJPGSeedLength {
		panic("formats: SJPG seed layout drifted; update the offset constants")
	}

	fields := field.MustMap([]field.Spec{
		{Name: "/sof/precision", Offset: SJPGSOFData, Size: 1},
		{Name: "/sof/height", Offset: SJPGSOFData + 1, Size: 2, Order: field.BigEndian},
		{Name: "/sof/width", Offset: SJPGSOFData + 3, Size: 2, Order: field.BigEndian},
		{Name: "/sof/ncomp", Offset: SJPGSOFData + 5, Size: 1},
		{Name: "/dqt/id", Offset: SJPGDQTData, Size: 1},
		{Name: "/dht/class", Offset: SJPGDHTData, Size: 1},
		{Name: "/sos/ncomp", Offset: SJPGSOSData, Size: 1},
		{Name: "/app0/vmajor", Offset: SJPGAPP0Data + 6, Size: 1},
	})

	return &Format{
		Name:     "sjpg",
		Seed:     seed,
		Fields:   fields,
		Fixups:   nil, // marker segments carry no checksums
		Validate: validateSJPG,
	}
}

func validateSJPG(data []byte) error {
	if len(data) < 4 || data[0] != 0xFF || data[1] != 0xD8 {
		return structErr("sjpg", "missing SOI")
	}
	if data[len(data)-2] != 0xFF || data[len(data)-1] != 0xD9 {
		return structErr("sjpg", "missing EOI")
	}
	return nil
}
