package formats

import (
	"bytes"

	"diode/internal/field"
	"diode/internal/inputgen"
)

// SWAV is the RIFF/WAV-analogue format VLC processes:
//
//	"RIFF" | riff_size(4, LE) | "WAVE" | chunks...
//
// with the little-endian chunks "fmt " (audio format description), "note"
// (a metadata chunk feeding the message-log path) and "data" (samples).
// The riff_size frame field is maintained by a fix-up, like Peach does for
// real RIFF files.

// SWAV seed layout constants.
const (
	SWAVFmtSize    = 16 // offset of the fmt chunk's size field (LE 4)
	SWAVFmtData    = 20 // format(2) channels(2) rate(4) byte_rate(4) align(2) bits(2)
	SWAVNoteSize   = 40 // offset of the note chunk's size field
	SWAVNoteData   = 44 // note_len(4 LE) + 28 bytes of text
	SWAVDataSize   = 80 // offset of the data chunk's size field
	SWAVDataData   = 84 // frames(4 LE) + samples
	SWAVSeedLength = 144
)

// SWAV returns the VLC input format with its canonical seed.
func SWAV() *Format {
	var buf bytes.Buffer
	buf.WriteString("RIFF")
	buf.Write(make([]byte, 4)) // riff_size, fixed up below
	buf.WriteString("WAVE")

	// fmt chunk: declared size then 16 bytes of data.
	buf.WriteString("fmt ")
	writeLE32(&buf, 16)
	fmtData := make([]byte, 16)
	le16(fmtData, 0, 1)      // audio_format = PCM
	le16(fmtData, 2, 2)      // channels
	le32(fmtData, 4, 44100)  // sample_rate
	le32(fmtData, 8, 176400) // byte_rate
	le16(fmtData, 12, 4)     // block_align
	le16(fmtData, 14, 16)    // bits_per_sample
	buf.Write(fmtData)

	// note chunk: declared size then note_len + text.
	buf.WriteString("note")
	writeLE32(&buf, 32)
	noteData := make([]byte, 32)
	le32(noteData, 0, 20) // note_len
	copy(noteData[4:], "seed metadata string")
	buf.Write(noteData)

	// data chunk: declared size then frame count + samples.
	buf.WriteString("data")
	writeLE32(&buf, 60)
	dataData := make([]byte, 60)
	le32(dataData, 0, 14) // frames
	for i := 4; i < 60; i++ {
		dataData[i] = byte(i * 11)
	}
	buf.Write(dataData)

	seed := buf.Bytes()
	if len(seed) != SWAVSeedLength {
		panic("formats: SWAV seed layout drifted; update the offset constants")
	}
	FixSWAVRIFFSize(seed)

	fields := field.MustMap([]field.Spec{
		{Name: "/fmt/size", Offset: SWAVFmtSize, Size: 4, Order: field.LittleEndian},
		{Name: "/fmt/channels", Offset: SWAVFmtData + 2, Size: 2, Order: field.LittleEndian},
		{Name: "/fmt/rate", Offset: SWAVFmtData + 4, Size: 4, Order: field.LittleEndian},
		{Name: "/fmt/byte_rate", Offset: SWAVFmtData + 8, Size: 4, Order: field.LittleEndian},
		{Name: "/fmt/align", Offset: SWAVFmtData + 12, Size: 2, Order: field.LittleEndian},
		{Name: "/fmt/bits", Offset: SWAVFmtData + 14, Size: 2, Order: field.LittleEndian},
		{Name: "/note/len", Offset: SWAVNoteData, Size: 4, Order: field.LittleEndian},
		{Name: "/data/frames", Offset: SWAVDataData, Size: 4, Order: field.LittleEndian},
	})

	return &Format{
		Name:     "swav",
		Seed:     seed,
		Fields:   fields,
		Fixups:   []inputgen.Fixup{FixSWAVRIFFSize},
		Validate: validateSWAV,
	}
}

func writeLE32(buf *bytes.Buffer, v uint32) {
	var b [4]byte
	le32(b[:], 0, v)
	buf.Write(b[:])
}

// FixSWAVRIFFSize repairs the RIFF frame size header (total size minus 8).
func FixSWAVRIFFSize(data []byte) {
	if len(data) >= 8 {
		le32(data, 4, uint32(len(data)-8))
	}
}

func validateSWAV(data []byte) error {
	if len(data) < 12 || string(data[:4]) != "RIFF" || string(data[8:12]) != "WAVE" {
		return structErr("swav", "bad RIFF/WAVE header")
	}
	if got, want := rdle32(data, 4), uint32(len(data)-8); got != want {
		return structErr("swav", "riff_size %d != %d", got, want)
	}
	return nil
}
