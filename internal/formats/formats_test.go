package formats

import (
	"bytes"
	"testing"

	"diode/internal/bv"
)

func all() []*Format {
	return []*Format{SPNG(), SWAV(), SJPG(), SWEBP(), SXWD(), SGIF(), STIF()}
}

func TestSeedsValidate(t *testing.T) {
	for _, f := range all() {
		if err := f.Validate(f.Seed); err != nil {
			t.Errorf("%s: seed does not validate: %v", f.Name, err)
		}
	}
}

func TestSeedsDeterministic(t *testing.T) {
	builders := map[string]func() *Format{
		"spng": SPNG, "swav": SWAV, "sjpg": SJPG, "swebp": SWEBP, "sxwd": SXWD,
		"sgif": SGIF, "stif": STIF,
	}
	for name, mk := range builders {
		a, b := mk(), mk()
		if !bytes.Equal(a.Seed, b.Seed) {
			t.Errorf("%s: seed construction is not deterministic", name)
		}
	}
}

func TestFieldsReadSeedValues(t *testing.T) {
	checks := map[string]map[string]uint64{
		"spng": {
			"/ihdr/width": 280, "/ihdr/height": 160, "/ihdr/bit_depth": 8,
			"/ihdr/color_type": 2, "/plte/entries": 16, "/gama/gamma": 300,
		},
		"swav": {
			"/fmt/size": 16, "/fmt/channels": 2, "/fmt/rate": 44100,
			"/fmt/bits": 16, "/note/len": 20, "/data/frames": 14,
		},
		"sjpg": {
			"/sof/height": 120, "/sof/width": 200, "/sof/ncomp": 3,
			"/sof/precision": 8,
		},
		"swebp": {
			"/vp8/width": 176, "/vp8/height": 144, "/vp8/segments": 2,
		},
		"sxwd": {
			"/xwd/width": 320, "/xwd/height": 200, "/xwd/depth": 24,
			"/xwd/ncolors": 8, "/xwd/bytes_per_line": 960,
		},
		"sgif": {
			"/lsd/width": 640, "/lsd/height": 480, "/lsd/flags": 0x82,
			"/img/left": 12, "/img/top": 8, "/img/width": 50,
			"/img/height": 40, "/img/lzwmin": 8,
		},
		"stif": {
			"/ifd/width": 64, "/ifd/height": 48, "/ifd/bits": 8,
			"/ifd/rows_per_strip": 16,
		},
	}
	for _, f := range all() {
		want, ok := checks[f.Name]
		if !ok {
			t.Fatalf("no checks for format %s", f.Name)
		}
		asn := f.Fields.SeedAssignment(f.Seed)
		for name, v := range want {
			if got := asn[name]; got != v {
				t.Errorf("%s %s = %d, want %d", f.Name, name, got, v)
			}
		}
	}
}

// TestGenerateRoundTrip patches field values, reruns fix-ups, and checks that
// the output still validates and carries the new values.
func TestGenerateRoundTrip(t *testing.T) {
	for _, f := range all() {
		specs := f.Fields.Specs()
		asn := bv.Assignment{}
		// Change the first two multi-byte fields to new in-range values.
		changed := 0
		for _, s := range specs {
			if s.Size >= 2 && changed < 2 {
				asn[s.Name] = 0x1234 % (uint64(1)<<uint(8*s.Size) - 1)
				changed++
			}
		}
		out, err := f.Generator().Generate(f.Seed, asn)
		if err != nil {
			t.Fatalf("%s: generate: %v", f.Name, err)
		}
		if err := f.Validate(out); err != nil {
			t.Errorf("%s: generated input does not validate: %v", f.Name, err)
		}
		got := f.Fields.SeedAssignment(out)
		for name, v := range asn {
			if got[name] != v {
				t.Errorf("%s: %s = %d after generation, want %d", f.Name, name, got[name], v)
			}
		}
		if bytes.Equal(out, f.Seed) {
			t.Errorf("%s: generation did not change the file", f.Name)
		}
	}
}

// TestSPNGChecksumRepair corrupts a checksum-covered field and checks the
// fix-up repairs exactly the checksums.
func TestSPNGChecksumRepair(t *testing.T) {
	f := SPNG()
	data := append([]byte(nil), f.Seed...)
	data[SPNGIHDRData] = 0xAB // clobber width's top byte
	if err := f.Validate(data); err == nil {
		t.Fatal("corrupted file unexpectedly validates")
	}
	FixSPNGChecksums(data)
	if err := f.Validate(data); err != nil {
		t.Fatalf("fix-up did not repair checksums: %v", err)
	}
}

func TestSPNGChecksumFixupStopsAtBadLength(t *testing.T) {
	f := SPNG()
	data := append([]byte(nil), f.Seed...)
	// Declare an absurd IHDR length: the walker must stop, not panic.
	be32(data, 8, 0xFFFFFF)
	FixSPNGChecksums(data)
}

func TestRIFFSizeFixups(t *testing.T) {
	for _, f := range []*Format{SWAV(), SWEBP()} {
		data := append(append([]byte(nil), f.Seed...), 1, 2, 3, 4) // grow file
		f.Fixups[0](data)
		if got := rdle32(data, 4); got != uint32(len(data)-8) {
			t.Errorf("%s: riff size %d, want %d", f.Name, got, len(data)-8)
		}
	}
}

// TestSGIFChecksumRepair corrupts a checksum-covered field and checks the
// fix-up repairs the image checksum through the sub-block framing.
func TestSGIFChecksumRepair(t *testing.T) {
	f := SGIF()
	data := append([]byte(nil), f.Seed...)
	le16(data, SGIFImgDesc+4, 0xBEEF) // clobber the frame width
	if err := f.Validate(data); err == nil {
		t.Fatal("corrupted file unexpectedly validates")
	}
	FixSGIFChecksums(data)
	if err := f.Validate(data); err != nil {
		t.Fatalf("fix-up did not repair the checksum: %v", err)
	}
}

// TestSGIFFixupStopsAtBadFraming: a sub-block length running past EOF must
// stop the walker, not panic or write out of bounds.
func TestSGIFFixupStopsAtBadFraming(t *testing.T) {
	f := SGIF()
	data := append([]byte(nil), f.Seed...)
	data[SGIFSubBlocks] = 0xFF // first LZW sub-block claims 255 bytes
	FixSGIFChecksums(data)
	if err := f.Validate(data); err == nil {
		t.Fatal("unframed file unexpectedly validates")
	}
}

// TestSTIFStripBytesFixup: growing the file must be repaired through the
// IFD indirection, like the RIFF size fix-ups.
func TestSTIFStripBytesFixup(t *testing.T) {
	f := STIF()
	data := append(append([]byte(nil), f.Seed...), 1, 2, 3, 4)
	if err := f.Validate(data); err == nil {
		t.Fatal("grown file unexpectedly validates before fix-up")
	}
	FixSTIFStripBytes(data)
	if err := f.Validate(data); err != nil {
		t.Fatalf("fix-up did not repair strip byte counts: %v", err)
	}
	if got := rdle32(data, STIFCountsValue); got != uint32(len(data)-STIFStripData) {
		t.Errorf("strip byte count %d, want %d", got, len(data)-STIFStripData)
	}
}

// TestSTIFFixupSurvivesBadIFD: a header pointing the IFD past EOF must be
// left alone without panicking.
func TestSTIFFixupSurvivesBadIFD(t *testing.T) {
	f := STIF()
	data := append([]byte(nil), f.Seed...)
	le32(data, STIFIFDOffset, 0xFFFFFF)
	FixSTIFStripBytes(data)
	if err := f.Validate(data); err == nil {
		t.Fatal("file with out-of-bounds IFD unexpectedly validates")
	}
}

// TestLiftProducesFieldExpressions checks the Hachoir role end to end: a
// per-byte expression over a big-endian field's bytes lifts to an expression
// over the field variable whose evaluation matches the byte-level reassembly.
func TestLiftProducesFieldExpressions(t *testing.T) {
	f := SPNG()
	// width = (in[16]<<24)|(in[17]<<16)|(in[18]<<8)|in[19], as Dillo reads it.
	b := func(i int) *bv.Term { return bv.ZExt(32, bv.Var(8, bv32name(i))) }
	expr := bv.Or(
		bv.Or(bv.Shl(b(16), bv.Const(32, 24)), bv.Shl(b(17), bv.Const(32, 16))),
		bv.Or(bv.Shl(b(18), bv.Const(32, 8)), b(19)),
	)
	lifted := f.Fields.LiftTerm(expr)
	vars := bv.TermVars(lifted)
	if _, ok := vars["/ihdr/width"]; !ok {
		t.Fatalf("lifted expression does not mention /ihdr/width: %s", lifted)
	}
	v, err := bv.Assignment{"/ihdr/width": 0xDEADBEEF}.Eval(lifted)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xDEADBEEF {
		t.Fatalf("lifted big-endian reassembly = %#x, want 0xDEADBEEF", v)
	}
}

func bv32name(i int) string { return "in[" + itoa(i) + "]" }

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [8]byte
	n := len(buf)
	for i > 0 {
		n--
		buf[n] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[n:])
}
