// Package cache is the content-addressed caching layer under the dispatch
// surface: canonical fingerprints for guest programs and their input formats,
// a singleflight-deduplicating in-memory LRU, an optional on-disk store with
// corruption-as-miss semantics, and the hit/miss counters the stats surfaces
// report. Every job Result is a pure function of its serialized record plus
// the guest program (the dispatch layer's determinism seam), which is what
// makes outputs safe to key by content: a cache key changes exactly when a
// result could.
package cache

import "sync/atomic"

// Stats is a point-in-time snapshot of cache activity. It is serializable
// (diode-worker processes report theirs to the parent over the wire protocol)
// and additive across caches via Plus.
type Stats struct {
	// Hits counts job results served without executing: in-memory LRU hits,
	// disk-store hits, and singleflight waiters that shared another job's
	// execution.
	Hits int64 `json:"hits,omitempty"`
	// Misses counts job results that had to execute.
	Misses int64 `json:"misses,omitempty"`
	// Stores counts results written to the on-disk store.
	Stores int64 `json:"stores,omitempty"`
	// CorruptEntries counts on-disk entries rejected as truncated, corrupt or
	// version-mismatched; each was treated as a miss, never an error.
	CorruptEntries int64 `json:"corruptEntries,omitempty"`
	// AnalysisRuns counts Analyzer executions (stages 1–3); AnalysisHits
	// counts analysis lookups served from memoized targets.
	AnalysisRuns int64 `json:"analysisRuns,omitempty"`
	AnalysisHits int64 `json:"analysisHits,omitempty"`
}

// Plus returns the field-wise sum of two snapshots.
func (s Stats) Plus(o Stats) Stats {
	return Stats{
		Hits:           s.Hits + o.Hits,
		Misses:         s.Misses + o.Misses,
		Stores:         s.Stores + o.Stores,
		CorruptEntries: s.CorruptEntries + o.CorruptEntries,
		AnalysisRuns:   s.AnalysisRuns + o.AnalysisRuns,
		AnalysisHits:   s.AnalysisHits + o.AnalysisHits,
	}
}

// Counters accumulates cache activity; safe for concurrent use. The zero
// value is ready.
type Counters struct {
	hits, misses, stores, corrupt, analysisRuns, analysisHits atomic.Int64
}

// Hit records a result served from the cache.
func (c *Counters) Hit() { c.hits.Add(1) }

// Miss records a result that had to execute.
func (c *Counters) Miss() { c.misses.Add(1) }

// Store records a result written to the disk store.
func (c *Counters) Store() { c.stores.Add(1) }

// Corrupt records a rejected on-disk entry.
func (c *Counters) Corrupt() { c.corrupt.Add(1) }

// AnalysisRun records an Analyzer execution.
func (c *Counters) AnalysisRun() { c.analysisRuns.Add(1) }

// AnalysisHit records an analysis lookup served from memoized targets.
func (c *Counters) AnalysisHit() { c.analysisHits.Add(1) }

// Snapshot returns the current totals.
func (c *Counters) Snapshot() Stats {
	return Stats{
		Hits:           c.hits.Load(),
		Misses:         c.misses.Load(),
		Stores:         c.stores.Load(),
		CorruptEntries: c.corrupt.Load(),
		AnalysisRuns:   c.analysisRuns.Load(),
		AnalysisHits:   c.analysisHits.Load(),
	}
}

// Add folds a snapshot into the totals (merging a worker process's reported
// stats into the parent's).
func (c *Counters) Add(s Stats) {
	c.hits.Add(s.Hits)
	c.misses.Add(s.Misses)
	c.stores.Add(s.Stores)
	c.corrupt.Add(s.CorruptEntries)
	c.analysisRuns.Add(s.AnalysisRuns)
	c.analysisHits.Add(s.AnalysisHits)
}
