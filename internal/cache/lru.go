package cache

import (
	"container/list"
	"sync"
)

// LRU is a string-keyed, capacity-bounded memo table with singleflight
// semantics: concurrent Do calls for the same key share one computation
// instead of duplicating it. Values are opaque; callers embed their own error
// outcomes in the value and decline retention (keep=false) for results that
// must not poison the cache — a cancelled computation, an error result.
type LRU struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recently used; elements hold *entry
	entries  map[string]*entry
}

// entry is one key's state. While the computation is in flight, elem is nil
// and done is open; waiters block on done and read val after it closes (the
// close is the publication point). A retained entry joins the order list.
type entry struct {
	key  string
	elem *list.Element
	done chan struct{}
	val  any
}

// NewLRU returns an empty table retaining at most capacity completed entries
// (minimum one). In-flight computations do not count against capacity.
func NewLRU(capacity int) *LRU {
	if capacity < 1 {
		capacity = 1
	}
	return &LRU{capacity: capacity, order: list.New(), entries: make(map[string]*entry)}
}

// Do returns the value for key, computing it with fn on first use. hit
// reports whether this call avoided running fn — a retained entry, or an
// in-flight computation it waited on (singleflight; such a caller observes
// the flight's value even when the flight declines retention, so callers
// embedding errors must inspect the value, not hit). fn's second return
// decides retention: false hands the value to this flight's waiters but
// forgets it immediately, so the next Do recomputes.
func (l *LRU) Do(key string, fn func() (any, bool)) (val any, hit bool) {
	l.mu.Lock()
	if e, ok := l.entries[key]; ok {
		if e.elem != nil {
			l.order.MoveToFront(e.elem)
			v := e.val
			l.mu.Unlock()
			return v, true
		}
		l.mu.Unlock()
		<-e.done
		return e.val, true
	}
	e := &entry{key: key, done: make(chan struct{})}
	l.entries[key] = e
	l.mu.Unlock()

	v, keep := fn()
	e.val = v
	l.mu.Lock()
	if keep {
		e.elem = l.order.PushFront(e)
		for l.order.Len() > l.capacity {
			oldest := l.order.Back()
			l.order.Remove(oldest)
			delete(l.entries, oldest.Value.(*entry).key)
		}
	} else {
		delete(l.entries, key)
	}
	l.mu.Unlock()
	close(e.done)
	return v, false
}

// Remove drops a completed entry (invalidation). An in-flight computation is
// left alone — its flight cannot be interrupted, and it decides its own
// retention when it completes.
func (l *LRU) Remove(key string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if e, ok := l.entries[key]; ok && e.elem != nil {
		l.order.Remove(e.elem)
		delete(l.entries, key)
	}
}

// Len returns the number of retained (completed) entries.
func (l *LRU) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.order.Len()
}
