package cache

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestStoreRoundTrip(t *testing.T) {
	s := NewStore(t.TempDir())
	key := Key("result", "1", "abc")
	payload := []byte(`{"verdict":"exposed"}`)
	if _, status := s.Get(key); status != DiskMiss {
		t.Fatalf("empty store Get = %v, want DiskMiss", status)
	}
	if !s.Put(key, payload) {
		t.Fatal("Put failed")
	}
	got, status := s.Get(key)
	if status != DiskHit || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q/%v, want payload/DiskHit", got, status)
	}
}

func TestStoreShardLayout(t *testing.T) {
	s := NewStore("/tmp/cache-root")
	key := Key("x")
	p := s.Path(key)
	want := filepath.Join("/tmp/cache-root", key[:2], key+".entry")
	if p != want {
		t.Fatalf("Path = %q, want %q", p, want)
	}
	if s.Path("k") != filepath.Join("/tmp/cache-root", "xx", "k.entry") {
		t.Fatalf("short-key Path = %q, want xx shard", s.Path("k"))
	}
}

// corrupt applies a mutation to the stored entry file and asserts the next
// Get classifies it as DiskCorrupt — never a hit, never an error.
func corruptCase(t *testing.T, name string, mutate func(t *testing.T, path string)) {
	t.Run(name, func(t *testing.T) {
		s := NewStore(t.TempDir())
		key := Key("result", name)
		payload := []byte("payload-" + name + "-0123456789")
		if !s.Put(key, payload) {
			t.Fatal("Put failed")
		}
		mutate(t, s.Path(key))
		if got, status := s.Get(key); status != DiskCorrupt || got != nil {
			t.Fatalf("Get after %s = %q/%v, want nil/DiskCorrupt", name, got, status)
		}
	})
}

func TestStoreCorruption(t *testing.T) {
	corruptCase(t, "truncated-payload", func(t *testing.T, path string) {
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(path, fi.Size()-3); err != nil {
			t.Fatal(err)
		}
	})
	corruptCase(t, "truncated-header", func(t *testing.T, path string) {
		if err := os.Truncate(path, 4); err != nil {
			t.Fatal(err)
		}
	})
	corruptCase(t, "bit-flip", func(t *testing.T, path string) {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)-1] ^= 0x40
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	})
	corruptCase(t, "version-mismatch", func(t *testing.T, path string) {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		out := strings.Replace(string(data), fmt.Sprintf("%s %d ", diskMagic, diskVersion),
			fmt.Sprintf("%s %d ", diskMagic, diskVersion+1), 1)
		if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
			t.Fatal(err)
		}
	})
	corruptCase(t, "wrong-magic", func(t *testing.T, path string) {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		out := strings.Replace(string(data), diskMagic, "other-cache", 1)
		if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
			t.Fatal(err)
		}
	})
	corruptCase(t, "garbage", func(t *testing.T, path string) {
		if err := os.WriteFile(path, []byte("not a cache entry at all"), 0o644); err != nil {
			t.Fatal(err)
		}
	})
	corruptCase(t, "empty-file", func(t *testing.T, path string) {
		if err := os.WriteFile(path, nil, 0o644); err != nil {
			t.Fatal(err)
		}
	})
}

// TestStoreWrongKey checks the key-binding property of the header: an entry
// copied or renamed under a different key must read as corrupt, not as the
// other key's answer.
func TestStoreWrongKey(t *testing.T) {
	s := NewStore(t.TempDir())
	k1, k2 := Key("one"), Key("two")
	if !s.Put(k1, []byte("one's payload")) {
		t.Fatal("Put failed")
	}
	data, err := os.ReadFile(s.Path(k1))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Dir(s.Path(k2)), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.Path(k2), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if got, status := s.Get(k2); status != DiskCorrupt || got != nil {
		t.Fatalf("mis-keyed Get = %q/%v, want nil/DiskCorrupt", got, status)
	}
}

// TestStoreUnusableDir checks best-effort degradation: a store rooted in an
// impossible location misses everything and stores nothing, without errors.
func TestStoreUnusableDir(t *testing.T) {
	file := filepath.Join(t.TempDir(), "a-file")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := NewStore(filepath.Join(file, "cannot-exist"))
	if s.Put(Key("k"), []byte("p")) {
		t.Error("Put into unusable dir reported success")
	}
	if _, status := s.Get(Key("k")); status != DiskMiss {
		t.Errorf("Get from unusable dir = %v, want DiskMiss", status)
	}
}

func TestStorePutOverwrite(t *testing.T) {
	s := NewStore(t.TempDir())
	key := Key("k")
	s.Put(key, []byte("old"))
	s.Put(key, []byte("new"))
	got, status := s.Get(key)
	if status != DiskHit || string(got) != "new" {
		t.Fatalf("Get = %q/%v, want new/DiskHit", got, status)
	}
}
