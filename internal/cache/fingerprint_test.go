package cache

import (
	"testing"

	"diode/internal/field"
	"diode/internal/formats"
	"diode/internal/inputgen"
	"diode/internal/lang"
)

func TestKeyLengthPrefixed(t *testing.T) {
	if Key("ab", "c") == Key("a", "bc") {
		t.Error("part boundaries collide; keys must be length-prefixed")
	}
	if Key("a", "b") != Key("a", "b") {
		t.Error("Key is not deterministic")
	}
	if Key() == Key("") {
		t.Error("zero parts collides with one empty part")
	}
}

// toyProgram builds a minimal finalized guest program. The knobs mutate one
// structural aspect each, so tests can assert which aspects are identity.
func toyProgram(t *testing.T, lit uint64, label string) *lang.Program {
	t.Helper()
	p := lang.NewProgram("toy")
	p.AddFunc(&lang.Func{Name: "main", Body: lang.Block{
		lang.Assign{Var: "x", E: lang.Bin{
			Op: lang.OpMul,
			A:  lang.Cvt{W: 32, A: lang.InByte{Idx: lang.Lit{W: 32, V: 0}}},
			B:  lang.Lit{W: 32, V: lit},
		}},
		lang.If{
			Label: label,
			Cond:  lang.Cmp{Op: lang.CmpUlt, A: lang.VarRef{Name: "x"}, B: lang.Lit{W: 32, V: 100}},
			Then:  lang.Block{lang.Alloc{Var: "p", Site: "toy@1", Size: lang.VarRef{Name: "x"}}},
			Else:  lang.Block{lang.AbortStmt{Msg: "too big"}},
		},
		lang.Return{},
	}})
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	return p
}

func toyFormat(seed []byte, specs []field.Spec, fixups int) *formats.Format {
	f := &formats.Format{Name: "toy", Seed: seed, Fields: field.MustMap(specs)}
	for i := 0; i < fixups; i++ {
		f.Fixups = append(f.Fixups, inputgen.Fixup(func([]byte) {}))
	}
	return f
}

func TestFingerprintStableAcrossInstances(t *testing.T) {
	specs := []field.Spec{{Name: "/hdr/w", Offset: 0, Size: 2, Order: field.BigEndian}}
	a := Fingerprint(toyProgram(t, 3, "check"), toyFormat([]byte{9, 9}, specs, 1))
	b := Fingerprint(toyProgram(t, 3, "check"), toyFormat([]byte{9, 9}, specs, 1))
	if a != b {
		t.Errorf("independently built identical content fingerprints differ: %s vs %s", a, b)
	}
	if len(a) != 64 {
		t.Errorf("fingerprint %q is not hex SHA-256", a)
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	specs := []field.Spec{{Name: "/hdr/w", Offset: 0, Size: 2, Order: field.BigEndian}}
	base := Fingerprint(toyProgram(t, 3, "check"), toyFormat([]byte{9, 9}, specs, 1))
	cases := map[string]string{
		"literal change": Fingerprint(toyProgram(t, 4, "check"), toyFormat([]byte{9, 9}, specs, 1)),
		"label change":   Fingerprint(toyProgram(t, 3, "other"), toyFormat([]byte{9, 9}, specs, 1)),
		"seed byte flip": Fingerprint(toyProgram(t, 3, "check"), toyFormat([]byte{9, 8}, specs, 1)),
		"seed length":    Fingerprint(toyProgram(t, 3, "check"), toyFormat([]byte{9, 9, 0}, specs, 1)),
		"fixup count":    Fingerprint(toyProgram(t, 3, "check"), toyFormat([]byte{9, 9}, specs, 2)),
		"spec rename": Fingerprint(toyProgram(t, 3, "check"),
			toyFormat([]byte{9, 9}, []field.Spec{{Name: "/hdr/h", Offset: 0, Size: 2, Order: field.BigEndian}}, 1)),
		"spec offset": Fingerprint(toyProgram(t, 3, "check"),
			toyFormat([]byte{9, 9}, []field.Spec{{Name: "/hdr/w", Offset: 2, Size: 2, Order: field.BigEndian}}, 1)),
		"spec order": Fingerprint(toyProgram(t, 3, "check"),
			toyFormat([]byte{9, 9}, []field.Spec{{Name: "/hdr/w", Offset: 0, Size: 2, Order: field.LittleEndian}}, 1)),
		"nil format": Fingerprint(toyProgram(t, 3, "check"), nil),
	}
	seen := map[string]string{base: "base"}
	for name, fp := range cases {
		if fp == base {
			t.Errorf("%s did not change the fingerprint", name)
		}
		if prev, dup := seen[fp]; dup {
			t.Errorf("%s collides with %s", name, prev)
		}
		seen[fp] = name
	}
}

func TestCounters(t *testing.T) {
	var c Counters
	c.Hit()
	c.Hit()
	c.Miss()
	c.Store()
	c.Corrupt()
	c.AnalysisRun()
	c.AnalysisHit()
	got := c.Snapshot()
	want := Stats{Hits: 2, Misses: 1, Stores: 1, CorruptEntries: 1, AnalysisRuns: 1, AnalysisHits: 1}
	if got != want {
		t.Fatalf("Snapshot = %+v, want %+v", got, want)
	}
	sum := got.Plus(Stats{Hits: 10, Misses: 5})
	if sum.Hits != 12 || sum.Misses != 6 || sum.Stores != 1 {
		t.Fatalf("Plus = %+v", sum)
	}
	c.Add(Stats{CorruptEntries: 3})
	if s := c.Snapshot(); s.CorruptEntries != 4 {
		t.Fatalf("Add-folded CorruptEntries = %d, want 4", s.CorruptEntries)
	}
}
