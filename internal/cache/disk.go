package cache

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// Disk-entry framing: a one-line header followed by the raw payload.
//
//	diode-cache <version> <key> <payload-len> <crc32-hex>\n<payload>
//
// The header binds the entry to its key (a file renamed or copied under the
// wrong key reads as corrupt, not as a wrong answer) and the CRC covers the
// payload, so truncation and bit flips are detected. Bumping diskVersion
// invalidates every existing entry at once — old entries read as corrupt,
// which Get reports and callers count, never an error.
const (
	diskMagic   = "diode-cache"
	diskVersion = 1
)

// DiskStatus classifies a Store lookup.
type DiskStatus int

// Lookup outcomes. DiskCorrupt is a miss with a defect worth counting:
// the entry existed but was truncated, bit-flipped, mis-keyed or written by
// a different format version.
const (
	DiskMiss DiskStatus = iota
	DiskHit
	DiskCorrupt
)

// Store is a sharded file-per-key payload store. Writes are atomic
// (temp file + rename) so concurrent worker processes sharing a directory
// never observe half-written entries; reads treat every defect as a miss.
// All methods are best-effort: an unreadable directory degrades to a store
// that misses everything and stores nothing.
type Store struct {
	dir string
}

// NewStore returns a store rooted at dir. The directory is created lazily on
// first Put.
func NewStore(dir string) *Store { return &Store{dir: dir} }

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Path returns where the entry for key lives (two-character shard
// subdirectories keep any one directory small).
func (s *Store) Path(key string) string {
	shard := "xx"
	if len(key) >= 2 {
		shard = key[:2]
	}
	return filepath.Join(s.dir, shard, key+".entry")
}

// Get returns the payload stored under key. An absent or unreadable entry is
// DiskMiss; an entry that exists but fails any framing check is DiskCorrupt
// (and the payload is nil either way).
func (s *Store) Get(key string) ([]byte, DiskStatus) {
	data, err := os.ReadFile(s.Path(key))
	if err != nil {
		return nil, DiskMiss
	}
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return nil, DiskCorrupt
	}
	fields := strings.Fields(string(data[:nl]))
	if len(fields) != 5 || fields[0] != diskMagic || fields[1] != strconv.Itoa(diskVersion) || fields[2] != key {
		return nil, DiskCorrupt
	}
	n, err := strconv.Atoi(fields[3])
	if err != nil || n < 0 {
		return nil, DiskCorrupt
	}
	payload := data[nl+1:]
	if len(payload) != n {
		return nil, DiskCorrupt
	}
	sum, err := strconv.ParseUint(fields[4], 16, 32)
	if err != nil || uint32(sum) != crc32.ChecksumIEEE(payload) {
		return nil, DiskCorrupt
	}
	return payload, DiskHit
}

// Put stores the payload under key, reporting whether it was written. A
// failure (full disk, permissions) leaves at most a stale temp file behind,
// never a partial entry.
func (s *Store) Put(key string, payload []byte) bool {
	p := s.Path(key)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return false
	}
	header := fmt.Sprintf("%s %d %s %d %08x\n", diskMagic, diskVersion, key, len(payload), crc32.ChecksumIEEE(payload))
	tmp, err := os.CreateTemp(filepath.Dir(p), ".put-*")
	if err != nil {
		return false
	}
	_, werr := tmp.Write(append([]byte(header), payload...))
	cerr := tmp.Close()
	if werr != nil || cerr != nil || os.Rename(tmp.Name(), p) != nil {
		os.Remove(tmp.Name())
		return false
	}
	return true
}
