package cache

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func compute(v any) func() (any, bool) { return func() (any, bool) { return v, true } }
func mustNotRun(t *testing.T) func() (any, bool) {
	return func() (any, bool) { t.Error("fn ran on a retained entry"); return nil, false }
}

func TestLRUHitMiss(t *testing.T) {
	l := NewLRU(4)
	v, hit := l.Do("k", compute(7))
	if hit || v.(int) != 7 {
		t.Fatalf("first Do: v=%v hit=%v, want 7/false", v, hit)
	}
	v, hit = l.Do("k", mustNotRun(t))
	if !hit || v.(int) != 7 {
		t.Fatalf("second Do: v=%v hit=%v, want 7/true", v, hit)
	}
	if l.Len() != 1 {
		t.Fatalf("Len=%d, want 1", l.Len())
	}
}

// TestLRUEvictionOrder checks least-recently-used eviction with hits
// refreshing recency: at capacity 2, touching "a" before inserting "c" must
// evict "b", not "a".
func TestLRUEvictionOrder(t *testing.T) {
	l := NewLRU(2)
	l.Do("a", compute(1))
	l.Do("b", compute(2))
	if _, hit := l.Do("a", mustNotRun(t)); !hit {
		t.Fatal("a evicted prematurely")
	}
	l.Do("c", compute(3))
	if l.Len() != 2 {
		t.Fatalf("Len=%d, want 2", l.Len())
	}
	if _, hit := l.Do("b", compute(-2)); hit {
		t.Error("b survived eviction; want it to be the LRU victim")
	}
	// "b" was just recomputed and retained, evicting "a" (LRU after c,a).
	if _, hit := l.Do("c", mustNotRun(t)); !hit {
		t.Error("c evicted; want it retained")
	}
}

// TestLRUNoKeep checks that a keep=false value is handed back but never
// retained: the next Do recomputes.
func TestLRUNoKeep(t *testing.T) {
	l := NewLRU(4)
	runs := 0
	fn := func() (any, bool) { runs++; return "transient", false }
	for i := 0; i < 3; i++ {
		v, hit := l.Do("k", fn)
		if hit || v.(string) != "transient" {
			t.Fatalf("call %d: v=%v hit=%v", i, v, hit)
		}
	}
	if runs != 3 || l.Len() != 0 {
		t.Fatalf("runs=%d Len=%d, want 3 runs and nothing retained", runs, l.Len())
	}
}

// TestLRUSingleflight checks the dedup contract: concurrent Do calls for one
// key share a single computation, exactly one caller reports hit=false, and
// every caller observes the computed value.
func TestLRUSingleflight(t *testing.T) {
	l := NewLRU(4)
	var runs, misses atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, hit := l.Do("k", func() (any, bool) {
				runs.Add(1)
				time.Sleep(30 * time.Millisecond)
				return 42, true
			})
			if !hit {
				misses.Add(1)
			}
			if v.(int) != 42 {
				t.Errorf("v=%v, want 42", v)
			}
		}()
	}
	wg.Wait()
	if runs.Load() != 1 {
		t.Errorf("fn ran %d times, want 1", runs.Load())
	}
	if misses.Load() != 1 {
		t.Errorf("%d callers reported hit=false, want exactly the executing one", misses.Load())
	}
}

// TestLRUNoKeepWaiters checks that waiters on a keep=false flight still get
// the flight's value (hit=true) even though the entry is forgotten.
func TestLRUNoKeepWaiters(t *testing.T) {
	l := NewLRU(4)
	entered := make(chan struct{})
	release := make(chan struct{})
	go l.Do("k", func() (any, bool) {
		close(entered)
		<-release
		return "flight", false
	})
	<-entered
	done := make(chan struct{})
	go func() {
		defer close(done)
		v, hit := l.Do("k", func() (any, bool) {
			// Raced past the flight's completion — equally valid; the
			// contract under test is only that we never hang or get nil.
			return "flight", false
		})
		if v.(string) != "flight" {
			t.Errorf("waiter saw v=%v hit=%v", v, hit)
		}
	}()
	time.Sleep(20 * time.Millisecond)
	close(release)
	<-done
	if l.Len() != 0 {
		t.Errorf("Len=%d after keep=false flight, want 0", l.Len())
	}
}

func TestLRURemove(t *testing.T) {
	l := NewLRU(4)
	l.Do("k", compute(1))
	l.Remove("k")
	if l.Len() != 0 {
		t.Fatalf("Len=%d after Remove, want 0", l.Len())
	}
	if _, hit := l.Do("k", compute(2)); hit {
		t.Error("removed entry still hit")
	}
}

func TestLRUMinimumCapacity(t *testing.T) {
	l := NewLRU(0) // clamped to 1
	l.Do("a", compute(1))
	if l.Len() != 1 {
		t.Fatalf("Len=%d, want 1", l.Len())
	}
}
