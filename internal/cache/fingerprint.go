package cache

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"

	"diode/internal/formats"
	"diode/internal/lang"
)

// Key derives a cache key from its parts: the hex SHA-256 over the
// length-prefixed concatenation, so no arrangement of part boundaries can
// collide with another. The same parts produce the same key in any process.
func Key(parts ...string) string {
	h := sha256.New()
	for _, p := range parts {
		fmt.Fprintf(h, "%d:", len(p))
		io.WriteString(h, p)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Fingerprint returns the canonical content hash of a guest program and its
// input format — the identity half of every cache key. Two (program, format)
// pairs fingerprint equal exactly when they are structurally identical:
// functions are walked in sorted name order, every AST node writes a tagged
// unambiguous encoding, and the format contributes its name, seed bytes and
// field dictionary. The program must be finalized (branch labels assigned —
// labels are part of enforcement semantics, so they are part of identity).
//
// Known limitation: a format's fix-up passes are Go functions and cannot be
// hashed; only their count contributes. Changing a fixup's behavior without
// changing anything else requires bumping the key version (see the dispatch
// layer's keyVersion).
func Fingerprint(prog *lang.Program, format *formats.Format) string {
	h := sha256.New()
	w := bufio.NewWriter(h)
	writeProgram(w, prog)
	writeFormat(w, format)
	w.Flush()
	return hex.EncodeToString(h.Sum(nil))
}

func writeProgram(w *bufio.Writer, p *lang.Program) {
	fmt.Fprintf(w, "program %q\n", p.Name)
	names := make([]string, 0, len(p.Funcs))
	for n := range p.Funcs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f := p.Funcs[n]
		fmt.Fprintf(w, "func %q %q\n", f.Name, f.Params)
		writeBlock(w, f.Body)
	}
}

func writeBlock(w *bufio.Writer, b lang.Block) {
	fmt.Fprintf(w, "block %d\n", len(b))
	for _, s := range b {
		writeStmt(w, s)
	}
}

func writeStmt(w *bufio.Writer, s lang.Stmt) {
	switch x := s.(type) {
	case lang.Assign:
		fmt.Fprintf(w, "assign %q\n", x.Var)
		writeExpr(w, x.E)
	case lang.Alloc:
		fmt.Fprintf(w, "alloc %q %q\n", x.Var, x.Site)
		writeExpr(w, x.Size)
	case lang.Store:
		fmt.Fprint(w, "store\n")
		writeExpr(w, x.Ptr)
		writeExpr(w, x.Off)
		writeExpr(w, x.Val)
	case lang.If:
		fmt.Fprintf(w, "if %q\n", x.Label)
		writeBool(w, x.Cond)
		writeBlock(w, x.Then)
		writeBlock(w, x.Else)
	case lang.While:
		fmt.Fprintf(w, "while %q\n", x.Label)
		writeBool(w, x.Cond)
		writeBlock(w, x.Body)
	case lang.ExprStmt:
		fmt.Fprint(w, "expr\n")
		writeExpr(w, x.E)
	case lang.Return:
		if x.E == nil {
			fmt.Fprint(w, "return-void\n")
		} else {
			fmt.Fprint(w, "return\n")
			writeExpr(w, x.E)
		}
	case lang.AbortStmt:
		fmt.Fprintf(w, "abort %q\n", x.Msg)
	case lang.WarnStmt:
		fmt.Fprintf(w, "warn %q\n", x.Msg)
	default:
		panic(fmt.Sprintf("cache: cannot fingerprint statement type %T", s))
	}
}

func writeExpr(w *bufio.Writer, e lang.Expr) {
	switch x := e.(type) {
	case lang.Lit:
		fmt.Fprintf(w, "lit %d %d\n", x.W, x.V)
	case lang.VarRef:
		fmt.Fprintf(w, "var %q\n", x.Name)
	case lang.Bin:
		fmt.Fprintf(w, "bin %s\n", x.Op)
		writeExpr(w, x.A)
		writeExpr(w, x.B)
	case lang.Un:
		fmt.Fprintf(w, "un %t\n", x.Neg)
		writeExpr(w, x.A)
	case lang.Cvt:
		fmt.Fprintf(w, "cvt %d %t\n", x.W, x.Signed)
		writeExpr(w, x.A)
	case lang.InByte:
		fmt.Fprint(w, "inbyte\n")
		writeExpr(w, x.Idx)
	case lang.InLen:
		fmt.Fprint(w, "inlen\n")
	case lang.LoadExpr:
		fmt.Fprint(w, "load\n")
		writeExpr(w, x.Ptr)
		writeExpr(w, x.Off)
	case lang.CallExpr:
		fmt.Fprintf(w, "call %q %d\n", x.Fn, len(x.Args))
		for _, a := range x.Args {
			writeExpr(w, a)
		}
	default:
		panic(fmt.Sprintf("cache: cannot fingerprint expression type %T", e))
	}
}

func writeBool(w *bufio.Writer, b lang.BoolExpr) {
	switch x := b.(type) {
	case lang.BoolLit:
		fmt.Fprintf(w, "blit %t\n", x.V)
	case lang.Cmp:
		fmt.Fprintf(w, "cmp %s\n", x.Op)
		writeExpr(w, x.A)
		writeExpr(w, x.B)
	case lang.NotE:
		fmt.Fprint(w, "not\n")
		writeBool(w, x.A)
	case lang.AndE:
		fmt.Fprint(w, "and\n")
		writeBool(w, x.A)
		writeBool(w, x.B)
	case lang.OrE:
		fmt.Fprint(w, "or\n")
		writeBool(w, x.A)
		writeBool(w, x.B)
	default:
		panic(fmt.Sprintf("cache: cannot fingerprint boolean expression type %T", b))
	}
}

func writeFormat(w *bufio.Writer, f *formats.Format) {
	if f == nil {
		fmt.Fprint(w, "format-none\n")
		return
	}
	fmt.Fprintf(w, "format %q seed %d %x\n", f.Name, len(f.Seed), f.Seed)
	if f.Fields != nil {
		for _, spec := range f.Fields.Specs() {
			fmt.Fprintf(w, "field %q %d %d %d\n", spec.Name, spec.Offset, spec.Size, spec.Order)
		}
	}
	fmt.Fprintf(w, "fixups %d\n", len(f.Fixups))
}
