package discover

import (
	"fmt"
	"strconv"
	"strings"

	"diode/internal/lang"
)

// ProbeVar is the local variable the probe allocation assigns. Guest
// programs never use it (double underscore is reserved for instrumentation).
const ProbeVar = "__probe"

// Probe returns a copy of the program instrumented to hunt an arith site:
// an `__probe = alloc(<expr>)` statement carrying the site's name is
// inserted immediately before the statement containing the arith node, with
// the node's expression deep-copied as the allocation size. The existing
// alloc-site pipeline then derives the overflow constraint at the arith
// node — the Analyzer's symbolic run records the probe's size expression,
// bv.OverflowCond turns it into the node's wrap condition, and triggered()
// observes the probe allocation's wrapped flag.
//
// Branch labels and existing site names survive the transformation (Clone
// preserves them; only node paths after the insertion point shift), so
// branch-trace comparison in the probe program matches the original.
//
// Caveats, accepted and deliberate: the copied expression evaluates once
// more than in the original program, so a call inside it runs twice
// (guest helpers on the arith paths are pure readers); and a probe before a
// While evaluates the condition's pre-loop valuation only.
func Probe(p *lang.Program, site Site) (*lang.Program, error) {
	if site.Kind != KindArith {
		return nil, fmt.Errorf("discover: probe target %s has kind %q, want %s", site.Name, site.Kind, KindArith)
	}
	clone := p.Clone()
	f := clone.Funcs[site.Func]
	if f == nil {
		return nil, fmt.Errorf("discover: probe site %s names unknown function %q", site.Name, site.Func)
	}
	segs := strings.Split(site.Path, ".")
	split := 0
	for split < len(segs) && isStmtSeg(segs[split]) {
		split++
	}
	if split == 0 || split == len(segs) {
		return nil, fmt.Errorf("discover: probe site %s has malformed path %q", site.Name, site.Path)
	}
	body, err := insertProbe(f.Body, segs[:split], segs[split:], site.Name)
	if err != nil {
		return nil, fmt.Errorf("discover: probe site %s: %w", site.Name, err)
	}
	f.Body = body
	if err := clone.Finalize(); err != nil {
		return nil, fmt.Errorf("discover: probe site %s: %w", site.Name, err)
	}
	return clone, nil
}

// isStmtSeg reports whether a path segment addresses a statement: "s<i>" or
// a branch arm. Expression segments (e, size, cond, a, b, bare indices, …)
// never match, so the statement/expression split of a site path is
// unambiguous.
func isStmtSeg(seg string) bool {
	switch seg {
	case "then", "else", "body":
		return true
	}
	if len(seg) < 2 || seg[0] != 's' {
		return false
	}
	_, err := strconv.Atoi(seg[1:])
	return err == nil
}

// insertProbe descends the statement path, then splices the probe Alloc in
// front of the addressed statement. The returned block replaces b.
func insertProbe(b lang.Block, stmtSegs, exprSegs []string, siteName string) (lang.Block, error) {
	idx, err := strconv.Atoi(strings.TrimPrefix(stmtSegs[0], "s"))
	if err != nil || idx < 0 || idx >= len(b) {
		return nil, fmt.Errorf("statement segment %q out of range", stmtSegs[0])
	}
	if len(stmtSegs) > 1 {
		arm := stmtSegs[1]
		switch x := b[idx].(type) {
		case lang.If:
			switch arm {
			case "then":
				nb, err := insertProbe(x.Then, stmtSegs[2:], exprSegs, siteName)
				if err != nil {
					return nil, err
				}
				x.Then = nb
			case "else":
				nb, err := insertProbe(x.Else, stmtSegs[2:], exprSegs, siteName)
				if err != nil {
					return nil, err
				}
				x.Else = nb
			default:
				return nil, fmt.Errorf("segment %q does not name an If arm", arm)
			}
			b[idx] = x
		case lang.While:
			if arm != "body" {
				return nil, fmt.Errorf("segment %q does not name a While body", arm)
			}
			nb, err := insertProbe(x.Body, stmtSegs[2:], exprSegs, siteName)
			if err != nil {
				return nil, err
			}
			x.Body = nb
			b[idx] = x
		default:
			return nil, fmt.Errorf("segment %q descends into a %T", arm, b[idx])
		}
		return b, nil
	}
	expr, err := exprAt(b[idx], exprSegs)
	if err != nil {
		return nil, err
	}
	if bin, ok := expr.(lang.Bin); !ok || !isArith(bin.Op) {
		return nil, fmt.Errorf("path resolves to %T, not an arith node", expr)
	}
	out := make(lang.Block, 0, len(b)+1)
	out = append(out, b[:idx]...)
	out = append(out, lang.Alloc{Var: ProbeVar, Site: siteName, Size: lang.CloneExpr(expr)})
	out = append(out, b[idx:]...)
	return out, nil
}

// exprAt resolves an expression path (the emit vocabulary: a head naming
// the statement's expression slot, then descent segments) within one
// statement.
func exprAt(s lang.Stmt, segs []string) (lang.Expr, error) {
	head, rest := segs[0], segs[1:]
	var e lang.Expr
	var be lang.BoolExpr
	switch x := s.(type) {
	case lang.Assign:
		if head != "e" {
			return nil, fmt.Errorf("assign has no slot %q", head)
		}
		e = x.E
	case lang.Alloc:
		if head != "size" {
			return nil, fmt.Errorf("alloc has no slot %q", head)
		}
		e = x.Size
	case lang.Store:
		switch head {
		case "ptr":
			e = x.Ptr
		case "off":
			e = x.Off
		case "val":
			e = x.Val
		default:
			return nil, fmt.Errorf("store has no slot %q", head)
		}
	case lang.If:
		if head != "cond" {
			return nil, fmt.Errorf("if has no slot %q", head)
		}
		be = x.Cond
	case lang.While:
		if head != "cond" {
			return nil, fmt.Errorf("while has no slot %q", head)
		}
		be = x.Cond
	case lang.ExprStmt:
		if head != "e" {
			return nil, fmt.Errorf("expr stmt has no slot %q", head)
		}
		e = x.E
	case lang.Return:
		if head != "ret" || x.E == nil {
			return nil, fmt.Errorf("return has no slot %q", head)
		}
		e = x.E
	default:
		return nil, fmt.Errorf("%T has no expression slots", s)
	}
	for _, seg := range rest {
		if be != nil {
			switch x := be.(type) {
			case lang.Cmp:
				switch seg {
				case "a":
					e, be = x.A, nil
				case "b":
					e, be = x.B, nil
				default:
					return nil, fmt.Errorf("cmp has no child %q", seg)
				}
			case lang.NotE:
				if seg != "a" {
					return nil, fmt.Errorf("not has no child %q", seg)
				}
				be = x.A
			case lang.AndE:
				switch seg {
				case "a":
					be = x.A
				case "b":
					be = x.B
				default:
					return nil, fmt.Errorf("and has no child %q", seg)
				}
			case lang.OrE:
				switch seg {
				case "a":
					be = x.A
				case "b":
					be = x.B
				default:
					return nil, fmt.Errorf("or has no child %q", seg)
				}
			default:
				return nil, fmt.Errorf("%T has no child %q", be, seg)
			}
			continue
		}
		switch x := e.(type) {
		case lang.Bin:
			switch seg {
			case "a":
				e = x.A
			case "b":
				e = x.B
			default:
				return nil, fmt.Errorf("bin has no child %q", seg)
			}
		case lang.Un:
			if seg != "a" {
				return nil, fmt.Errorf("un has no child %q", seg)
			}
			e = x.A
		case lang.Cvt:
			if seg != "a" {
				return nil, fmt.Errorf("cvt has no child %q", seg)
			}
			e = x.A
		case lang.InByte:
			if seg != "idx" {
				return nil, fmt.Errorf("inbyte has no child %q", seg)
			}
			e = x.Idx
		case lang.LoadExpr:
			switch seg {
			case "ptr":
				e = x.Ptr
			case "off":
				e = x.Off
			default:
				return nil, fmt.Errorf("load has no child %q", seg)
			}
		case lang.CallExpr:
			i, err := strconv.Atoi(seg)
			if err != nil || i < 0 || i >= len(x.Args) {
				return nil, fmt.Errorf("call has no argument %q", seg)
			}
			e = x.Args[i]
		default:
			return nil, fmt.Errorf("%T has no child %q", e, seg)
		}
	}
	if e == nil {
		return nil, fmt.Errorf("path ends inside a boolean expression")
	}
	return e, nil
}
