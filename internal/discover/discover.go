// Package discover implements static overflow-site discovery: a pass over
// the finalized lang AST that finds every allocation whose size is
// attacker-influenced and every arithmetic expression (add/sub/mul) whose
// operands are tainted and whose result flows into an allocation size or a
// memory index. This replaces hand-enumerated site lists — any guest
// program becomes huntable with zero annotation.
//
// The pass runs two flow-insensitive boolean fixpoints over the program:
//
//   - a forward taint lattice seeded from In(...) reads, propagated through
//     assignments, arithmetic, memory (one may-tainted bit), and procedure
//     calls (argument→parameter and return summaries);
//   - a backward sink analysis marking the variables, returns and memory
//     cells whose values flow into an Alloc size or a memory index
//     (Store/Load offsets and input-byte indices).
//
// Static taint over-approximates the interpreter's dynamic taint, so the
// discovered alloc-kind sites are always a superset of the sites a dynamic
// taint run can surface. Enumeration follows Program.WalkStmts order, so
// the output is deterministic for a given program.
package discover

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"diode/internal/lang"
)

// Version identifies the discovery algorithm revision. It participates in
// dispatch job keys so results cached under an older discovery pass miss
// cleanly instead of aliasing when the site vocabulary changes.
const Version = "1"

// Kind classifies a discovered site.
type Kind string

// Site kinds.
const (
	// KindAlloc is an allocation statement with a tainted size — the
	// paper's target-site class; these are hunted dynamically.
	KindAlloc Kind = "alloc"
	// KindArith is a tainted add/sub/mul whose result flows into an
	// allocation size or memory index; listed and reported, giving the
	// full overflow surface beyond the allocation statements themselves.
	KindArith Kind = "arith"
)

// Triage is the static value-range verdict for a site, computed by the
// absint pass (empty when the site has not been triaged).
type Triage string

// Triage verdicts.
const (
	// TriageSafe marks a site the abstract interpreter proved can never
	// carry the wrapped flag: the hunt's overflow constraint is
	// unsatisfiable on every path, so the dynamic hunt is skipped.
	TriageSafe Triage = "safe"
	// TriageMustOverflow marks a site whose value wraps on every execution
	// that reaches it — the seed input itself already triggers it.
	TriageMustOverflow Triage = "must-overflow"
	// TriageUnknown marks a site the static pass could not decide; it is
	// hunted dynamically as before.
	TriageUnknown Triage = "unknown"
)

// Bounds is the statically derived unsigned interval of a site's value
// (the Alloc size or the arith node's result), from the guard-refined pass.
type Bounds struct {
	W  lang.Width `json:"w"`
	Lo uint64     `json:"lo"`
	Hi uint64     `json:"hi"`
}

// Site is a discovered overflow site: a structured record replacing the
// bare site-name string that Alloc statements used to carry.
type Site struct {
	// Name uniquely identifies the site within its program. Alloc-kind
	// sites keep the Alloc's site name (hand-assigned or synthesized by
	// Finalize); arith-kind sites are named from their stable node path.
	Name string `json:"name"`
	Kind Kind   `json:"kind"`
	// Func is the enclosing function.
	Func string `json:"func"`
	// Path is the stable node path: the statement path from Finalize,
	// extended with expression-position segments for arith sites.
	Path string `json:"path"`
	// Expr is the rendered source expression (lang.ExprString).
	Expr string `json:"expr"`
	// Taint lists the direct taint sources of the expression's value:
	// "in" for input bytes, tainted variable names, "mem" for tainted
	// loads, and "fn()" for calls with tainted returns. Sorted.
	Taint []string `json:"taint,omitempty"`
	// Triage is the static verdict from the absint pass; empty on sites
	// that have not been triaged (plain Sites output).
	Triage Triage `json:"triage,omitempty"`
	// SafeNoGuards reports that the unguarded pass alone (no branch
	// condition meets) already proves the site safe — the strongest form,
	// independent of which guards the seed path takes.
	SafeNoGuards bool `json:"safeNoGuards,omitempty"`
	// Bounds is the statically derived value interval at the site, when
	// the guarded pass reaches it.
	Bounds *Bounds `json:"bounds,omitempty"`
}

// Sites runs the discovery pass and returns every discovered site in
// deterministic program-traversal order. The program is finalized if it
// has not been already.
func Sites(p *lang.Program) ([]Site, error) {
	if err := p.Finalize(); err != nil {
		return nil, err
	}
	a := newAnalysis(p)
	a.solve()
	return a.enumerate(), nil
}

// Format renders sites as a tab-aligned listing (one row per site:
// name, kind, function, taint sources, expression). The output is pure —
// no timestamps or counters — so it is safe to diff against golden files.
func Format(sites []Site) string {
	var buf strings.Builder
	tw := tabwriter.NewWriter(&buf, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "SITE\tKIND\tFUNC\tTAINT\tEXPR")
	for _, s := range sites {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\n",
			s.Name, s.Kind, s.Func, strings.Join(s.Taint, ","), s.Expr)
	}
	tw.Flush()
	return buf.String()
}

// FormatTriage renders triaged sites as a tab-aligned listing (one row per
// site: name, kind, triage verdict, static bounds, expression). Like
// Format, the output is pure and safe to diff against golden files.
func FormatTriage(sites []Site) string {
	var buf strings.Builder
	tw := tabwriter.NewWriter(&buf, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "SITE\tKIND\tTRIAGE\tBOUNDS\tEXPR")
	for _, s := range sites {
		triage := string(s.Triage)
		if s.Triage == TriageSafe && s.SafeNoGuards {
			triage += "*" // proved without branch-guard refinement
		}
		bounds := "-"
		if s.Bounds != nil {
			bounds = fmt.Sprintf("u%d:[%d,%d]", s.Bounds.W, s.Bounds.Lo, s.Bounds.Hi)
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\n", s.Name, s.Kind, triage, bounds, s.Expr)
	}
	tw.Flush()
	return buf.String()
}

// analysis holds the two fixpoint lattices. All facts are monotone
// booleans, so each pass only ever flips false→true and the fixpoints
// terminate.
type analysis struct {
	p *lang.Program

	// Forward taint: is this value attacker-influenced?
	globals    map[string]bool            // g_-prefixed variables
	locals     map[string]map[string]bool // func -> var -> tainted
	returns    map[string]bool            // func -> return tainted
	memTainted bool                       // any store of a tainted value

	// Backward sinks: does this value flow into an alloc size or a
	// memory index?
	sinkGlobals map[string]bool
	sinkLocals  map[string]map[string]bool
	sinkReturns map[string]bool
	memSink     bool // some load feeds a sink, so stored values do too

	changed bool
}

func newAnalysis(p *lang.Program) *analysis {
	a := &analysis{
		p:           p,
		globals:     make(map[string]bool),
		locals:      make(map[string]map[string]bool),
		returns:     make(map[string]bool),
		sinkGlobals: make(map[string]bool),
		sinkLocals:  make(map[string]map[string]bool),
		sinkReturns: make(map[string]bool),
	}
	for name := range p.Funcs {
		a.locals[name] = make(map[string]bool)
		a.sinkLocals[name] = make(map[string]bool)
	}
	return a
}

func (a *analysis) solve() {
	for {
		a.changed = false
		a.taintPass()
		if !a.changed {
			break
		}
	}
	for {
		a.changed = false
		a.sinkPass()
		if !a.changed {
			break
		}
	}
}

func isGlobal(name string) bool { return strings.HasPrefix(name, "g_") }

func (a *analysis) tainted(f *lang.Func, name string) bool {
	if isGlobal(name) {
		return a.globals[name]
	}
	return a.locals[f.Name][name]
}

func (a *analysis) setTainted(fn, name string) {
	m := a.globals
	if !isGlobal(name) {
		m = a.locals[fn]
	}
	if !m[name] {
		m[name] = true
		a.changed = true
	}
}

func (a *analysis) sinkVar(f *lang.Func, name string) bool {
	if isGlobal(name) {
		return a.sinkGlobals[name]
	}
	return a.sinkLocals[f.Name][name]
}

func (a *analysis) setSinkVar(fn, name string) {
	m := a.sinkGlobals
	if !isGlobal(name) {
		m = a.sinkLocals[fn]
	}
	if !m[name] {
		m[name] = true
		a.changed = true
	}
}

func (a *analysis) set(m map[string]bool, key string) {
	if !m[key] {
		m[key] = true
		a.changed = true
	}
}

func (a *analysis) setBit(b *bool) {
	if !*b {
		*b = true
		a.changed = true
	}
}

// --- forward taint ---

// eval returns whether e's value is tainted, and as a side effect
// propagates tainted arguments into callee parameters. At fixpoint the
// side effects are no-ops, so eval doubles as the pure taint query during
// enumeration.
func (a *analysis) eval(f *lang.Func, e lang.Expr) bool {
	switch x := e.(type) {
	case lang.VarRef:
		return a.tainted(f, x.Name)
	case lang.Bin:
		ta := a.eval(f, x.A)
		tb := a.eval(f, x.B)
		return ta || tb
	case lang.Un:
		return a.eval(f, x.A)
	case lang.Cvt:
		return a.eval(f, x.A)
	case lang.InByte:
		a.eval(f, x.Idx)
		return true
	case lang.LoadExpr:
		a.eval(f, x.Ptr)
		a.eval(f, x.Off)
		return a.memTainted
	case lang.CallExpr:
		callee := a.p.Funcs[x.Fn]
		for i, arg := range x.Args {
			if a.eval(f, arg) {
				a.setTainted(x.Fn, callee.Params[i])
			}
		}
		return a.returns[x.Fn]
	}
	return false // Lit, InLen
}

func (a *analysis) evalBool(f *lang.Func, b lang.BoolExpr) {
	switch x := b.(type) {
	case lang.Cmp:
		a.eval(f, x.A)
		a.eval(f, x.B)
	case lang.NotE:
		a.evalBool(f, x.A)
	case lang.AndE:
		a.evalBool(f, x.A)
		a.evalBool(f, x.B)
	case lang.OrE:
		a.evalBool(f, x.A)
		a.evalBool(f, x.B)
	}
}

func (a *analysis) taintPass() {
	a.p.WalkStmts(func(f *lang.Func, _ string, s lang.Stmt) {
		switch x := s.(type) {
		case lang.Assign:
			if a.eval(f, x.E) {
				a.setTainted(f.Name, x.Var)
			}
		case lang.Alloc:
			// The allocated pointer is untainted; only the size matters.
			a.eval(f, x.Size)
		case lang.Store:
			a.eval(f, x.Ptr)
			a.eval(f, x.Off)
			if a.eval(f, x.Val) {
				a.setBit(&a.memTainted)
			}
		case lang.If:
			a.evalBool(f, x.Cond)
		case lang.While:
			a.evalBool(f, x.Cond)
		case lang.ExprStmt:
			a.eval(f, x.E)
		case lang.Return:
			if x.E != nil && a.eval(f, x.E) {
				a.set(a.returns, f.Name)
			}
		}
	})
}

// --- backward sinks ---

// scan records which variables/returns/memory feed a sink context. sink
// is true when e's value flows into an allocation size or memory index.
func (a *analysis) scan(f *lang.Func, e lang.Expr, sink bool) {
	switch x := e.(type) {
	case lang.VarRef:
		if sink {
			a.setSinkVar(f.Name, x.Name)
		}
	case lang.Bin:
		a.scan(f, x.A, sink)
		a.scan(f, x.B, sink)
	case lang.Un:
		a.scan(f, x.A, sink)
	case lang.Cvt:
		a.scan(f, x.A, sink)
	case lang.InByte:
		// The input-byte index is itself a memory index.
		a.scan(f, x.Idx, true)
	case lang.LoadExpr:
		if sink {
			a.setBit(&a.memSink)
		}
		a.scan(f, x.Ptr, false)
		a.scan(f, x.Off, true)
	case lang.CallExpr:
		callee := a.p.Funcs[x.Fn]
		if sink {
			a.set(a.sinkReturns, x.Fn)
		}
		for i, arg := range x.Args {
			a.scan(f, arg, a.sinkLocals[x.Fn][callee.Params[i]])
		}
	}
}

func (a *analysis) scanBool(f *lang.Func, b lang.BoolExpr) {
	switch x := b.(type) {
	case lang.Cmp:
		a.scan(f, x.A, false)
		a.scan(f, x.B, false)
	case lang.NotE:
		a.scanBool(f, x.A)
	case lang.AndE:
		a.scanBool(f, x.A)
		a.scanBool(f, x.B)
	case lang.OrE:
		a.scanBool(f, x.A)
		a.scanBool(f, x.B)
	}
}

func (a *analysis) sinkPass() {
	a.p.WalkStmts(func(f *lang.Func, _ string, s lang.Stmt) {
		switch x := s.(type) {
		case lang.Assign:
			a.scan(f, x.E, a.sinkVar(f, x.Var))
		case lang.Alloc:
			a.scan(f, x.Size, true)
		case lang.Store:
			a.scan(f, x.Ptr, false)
			a.scan(f, x.Off, true)
			a.scan(f, x.Val, a.memSink)
		case lang.If:
			a.scanBool(f, x.Cond)
		case lang.While:
			a.scanBool(f, x.Cond)
		case lang.ExprStmt:
			a.scan(f, x.E, false)
		case lang.Return:
			if x.E != nil {
				a.scan(f, x.E, a.sinkReturns[f.Name])
			}
		}
	})
}

// --- enumeration ---

// labels collects the direct taint sources of e's value into set.
// Positions that do not flow into the value (load/input indices, call
// arguments) are excluded — they have their own sites.
func (a *analysis) labels(f *lang.Func, e lang.Expr, set map[string]bool) {
	switch x := e.(type) {
	case lang.VarRef:
		if a.tainted(f, x.Name) {
			set[x.Name] = true
		}
	case lang.Bin:
		a.labels(f, x.A, set)
		a.labels(f, x.B, set)
	case lang.Un:
		a.labels(f, x.A, set)
	case lang.Cvt:
		a.labels(f, x.A, set)
	case lang.InByte:
		set["in"] = true
	case lang.LoadExpr:
		if a.memTainted {
			set["mem"] = true
		}
	case lang.CallExpr:
		if a.returns[x.Fn] {
			set[x.Fn+"()"] = true
		}
	}
}

func (a *analysis) labelList(f *lang.Func, e lang.Expr) []string {
	set := make(map[string]bool)
	a.labels(f, e, set)
	if len(set) == 0 {
		return nil
	}
	out := make([]string, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sortStrings(out)
	return out
}

func isArith(op lang.BinOp) bool {
	return op == lang.OpAdd || op == lang.OpSub || op == lang.OpMul
}

// enumerate walks the program once more in deterministic order, emitting
// an alloc Site per statically-tainted allocation and an arith Site per
// tainted add/sub/mul in a sink position (including nested ones).
func (a *analysis) enumerate() []Site {
	var out []Site
	a.p.WalkStmts(func(f *lang.Func, path string, s lang.Stmt) {
		switch x := s.(type) {
		case lang.Assign:
			a.emit(f, path, "e", x.E, a.sinkVar(f, x.Var), &out)
		case lang.Alloc:
			if a.eval(f, x.Size) {
				out = append(out, Site{
					Name:  x.Site,
					Kind:  KindAlloc,
					Func:  f.Name,
					Path:  path,
					Expr:  lang.ExprString(x.Size),
					Taint: a.labelList(f, x.Size),
				})
			}
			a.emit(f, path, "size", x.Size, true, &out)
		case lang.Store:
			a.emit(f, path, "ptr", x.Ptr, false, &out)
			a.emit(f, path, "off", x.Off, true, &out)
			a.emit(f, path, "val", x.Val, a.memSink, &out)
		case lang.If:
			a.emitBool(f, path, "cond", x.Cond, &out)
		case lang.While:
			a.emitBool(f, path, "cond", x.Cond, &out)
		case lang.ExprStmt:
			a.emit(f, path, "e", x.E, false, &out)
		case lang.Return:
			if x.E != nil {
				a.emit(f, path, "ret", x.E, a.sinkReturns[f.Name], &out)
			}
		}
	})
	return out
}

// emit descends into e, tracking the sink context exactly as scan does,
// and appends an arith Site for every tainted add/sub/mul in sink
// position. exprPath names e's position within its statement.
func (a *analysis) emit(f *lang.Func, stmtPath, exprPath string, e lang.Expr, sink bool, out *[]Site) {
	switch x := e.(type) {
	case lang.Bin:
		if sink && isArith(x.Op) && a.eval(f, e) {
			*out = append(*out, Site{
				Name:  fmt.Sprintf("%s:%s#%s.%s@%s", a.p.Name, f.Name, stmtPath, exprPath, x.Op),
				Kind:  KindArith,
				Func:  f.Name,
				Path:  stmtPath + "." + exprPath,
				Expr:  lang.ExprString(e),
				Taint: a.labelList(f, e),
			})
		}
		a.emit(f, stmtPath, exprPath+".a", x.A, sink, out)
		a.emit(f, stmtPath, exprPath+".b", x.B, sink, out)
	case lang.Un:
		a.emit(f, stmtPath, exprPath+".a", x.A, sink, out)
	case lang.Cvt:
		a.emit(f, stmtPath, exprPath+".a", x.A, sink, out)
	case lang.InByte:
		a.emit(f, stmtPath, exprPath+".idx", x.Idx, true, out)
	case lang.LoadExpr:
		a.emit(f, stmtPath, exprPath+".ptr", x.Ptr, false, out)
		a.emit(f, stmtPath, exprPath+".off", x.Off, true, out)
	case lang.CallExpr:
		callee := a.p.Funcs[x.Fn]
		for i, arg := range x.Args {
			a.emit(f, stmtPath, fmt.Sprintf("%s.%d", exprPath, i), arg,
				a.sinkLocals[x.Fn][callee.Params[i]], out)
		}
	}
}

func (a *analysis) emitBool(f *lang.Func, stmtPath, exprPath string, b lang.BoolExpr, out *[]Site) {
	switch x := b.(type) {
	case lang.Cmp:
		a.emit(f, stmtPath, exprPath+".a", x.A, false, out)
		a.emit(f, stmtPath, exprPath+".b", x.B, false, out)
	case lang.NotE:
		a.emitBool(f, stmtPath, exprPath+".a", x.A, out)
	case lang.AndE:
		a.emitBool(f, stmtPath, exprPath+".a", x.A, out)
		a.emitBool(f, stmtPath, exprPath+".b", x.B, out)
	case lang.OrE:
		a.emitBool(f, stmtPath, exprPath+".a", x.A, out)
		a.emitBool(f, stmtPath, exprPath+".b", x.B, out)
	}
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
