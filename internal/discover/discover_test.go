package discover

import (
	"reflect"
	"strings"
	"testing"

	. "diode/internal/lang"
)

func mustSites(t *testing.T, p *Program) []Site {
	t.Helper()
	sites, err := Sites(p)
	if err != nil {
		t.Fatal(err)
	}
	return sites
}

func names(sites []Site, kind Kind) []string {
	var out []string
	for _, s := range sites {
		if s.Kind == kind {
			out = append(out, s.Name)
		}
	}
	return out
}

// A tainted-size alloc is discovered; a constant-size alloc is not.
func TestAllocTaintFiltering(t *testing.T) {
	p := NewProgram("x")
	p.AddFunc(Fn("main", nil,
		Let("n", InAt(0)),
		AllocAt("a", "hot@1", ZX(32, V("n"))),
		AllocAt("b", "cold@1", U32(64)),
	))
	sites := mustSites(t, p)
	got := names(sites, KindAlloc)
	if !reflect.DeepEqual(got, []string{"hot@1"}) {
		t.Fatalf("alloc sites = %v, want [hot@1]", got)
	}
	if len(names(sites, KindArith)) != 0 {
		t.Fatalf("unexpected arith sites: %v", sites)
	}
	if s := sites[0]; s.Func != "main" || s.Path != "s1" || s.Expr != "zx32(n)" ||
		!reflect.DeepEqual(s.Taint, []string{"n"}) {
		t.Fatalf("site record = %+v", s)
	}
}

// Tainted arithmetic inside an alloc size yields an arith site named from
// its stable node path, alongside the alloc site itself.
func TestArithInAllocSize(t *testing.T) {
	p := NewProgram("x")
	p.AddFunc(Fn("main", nil,
		Let("w", InAt(0)),
		Let("h", InAt(1)),
		AllocAt("buf", "img@1", Mul(V("w"), V("h"))),
	))
	sites := mustSites(t, p)
	arith := names(sites, KindArith)
	if !reflect.DeepEqual(arith, []string{"x:main#s2.size@mul"}) {
		t.Fatalf("arith sites = %v", arith)
	}
	for _, s := range sites {
		if s.Kind == KindArith {
			if s.Expr != "(w * h)" || !reflect.DeepEqual(s.Taint, []string{"h", "w"}) {
				t.Fatalf("arith record = %+v", s)
			}
		}
	}
}

// A tainted add feeding a variable that later sizes an allocation is a
// sink, discovered through the backward sink fixpoint; the same add
// feeding only a warning path would not be.
func TestSinkThroughAssignment(t *testing.T) {
	p := NewProgram("x")
	p.AddFunc(Fn("main", nil,
		Let("n", Add(ZX(32, InAt(0)), U32(16))),
		AllocAt("buf", "b@1", V("n")),
		Let("dead", Add(ZX(32, InAt(1)), U32(1))), // never reaches a sink
	))
	sites := mustSites(t, p)
	arith := names(sites, KindArith)
	if !reflect.DeepEqual(arith, []string{"x:main#s0.e@add"}) {
		t.Fatalf("arith sites = %v", arith)
	}
}

// Memory indices are sinks: tainted arithmetic in Store/Load offsets and
// input-byte indices is discovered even with no allocation involved.
func TestMemoryIndexSinks(t *testing.T) {
	p := NewProgram("x")
	p.AddFunc(Fn("main", nil,
		AllocAt("buf", "b@1", U32(8)),
		Let("i", ZX(32, InAt(0))),
		Put(V("buf"), Add(V("i"), U32(1)), U32(0)),
		Let("v", Load(V("buf"), Mul(V("i"), U32(2)))),
		Let("w", In(Sub(V("i"), U32(1)))),
	))
	arith := names(mustSites(t, p), KindArith)
	want := []string{
		"x:main#s2.off@add",
		"x:main#s3.e.off@mul",
		"x:main#s4.e.idx@sub",
	}
	if !reflect.DeepEqual(arith, want) {
		t.Fatalf("arith sites = %v, want %v", arith, want)
	}
}

// Taint flows interprocedurally: through call arguments into parameters,
// and back out through return values.
func TestInterproceduralTaint(t *testing.T) {
	p := NewProgram("x")
	p.AddFunc(Fn("scale", []string{"v"},
		Ret(Mul(V("v"), U32(4))),
	))
	p.AddFunc(Fn("main", nil,
		Let("n", ZX(32, InAt(0))),
		AllocAt("buf", "b@1", Call("scale", V("n"))),
	))
	sites := mustSites(t, p)
	if got := names(sites, KindAlloc); !reflect.DeepEqual(got, []string{"b@1"}) {
		t.Fatalf("alloc sites = %v", got)
	}
	// The mul inside scale's return is a sink (its value returns into an
	// alloc size) with a tainted operand (param v).
	if got := names(sites, KindArith); !reflect.DeepEqual(got, []string{"x:scale#s0.ret@mul"}) {
		t.Fatalf("arith sites = %v", got)
	}
	for _, s := range sites {
		if s.Kind == KindAlloc && !reflect.DeepEqual(s.Taint, []string{"scale()"}) {
			t.Fatalf("alloc taint = %v", s.Taint)
		}
	}
}

// Globals (g_ prefix) carry taint across functions without a call edge.
func TestGlobalTaint(t *testing.T) {
	p := NewProgram("x")
	p.AddFunc(Fn("header", nil,
		Let("g_n", ZX(32, InAt(0))),
		RetVoid(),
	))
	p.AddFunc(Fn("main", nil,
		Do(Call("header")),
		AllocAt("buf", "b@1", V("g_n")),
	))
	sites := mustSites(t, p)
	if got := names(sites, KindAlloc); !reflect.DeepEqual(got, []string{"b@1"}) {
		t.Fatalf("alloc sites = %v", got)
	}
}

// Branch conditions are not sinks, but sink contexts nested inside them
// (input-byte indices) still are.
func TestConditionNotASink(t *testing.T) {
	p := NewProgram("x")
	p.AddFunc(Fn("main", nil,
		Let("n", ZX(32, InAt(0))),
		IfThen("", Ult(Add(V("n"), U32(1)), U32(9)), // add in cond: not a sink
			Let("v", In(Add(V("n"), U32(2)))), // add in in[...]: a sink
		),
	))
	arith := names(mustSites(t, p), KindArith)
	if !reflect.DeepEqual(arith, []string{"x:main#s1.then.s0.e.idx@add"}) {
		t.Fatalf("arith sites = %v", arith)
	}
}

// Discovery is deterministic: repeated runs return identical slices.
func TestDeterministicOrder(t *testing.T) {
	build := func() *Program {
		p := NewProgram("x")
		p.AddFunc(Fn("main", nil,
			Let("w", ZX(32, InAt(0))),
			Let("h", ZX(32, InAt(1))),
			AllocAt("a", "a@1", Mul(V("w"), V("h"))),
			AllocAt("b", "b@1", Add(V("w"), U32(4))),
		))
		return p
	}
	s1 := mustSites(t, build())
	s2 := mustSites(t, build())
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("discovery not deterministic:\n%v\n%v", s1, s2)
	}
}

func TestFormatListing(t *testing.T) {
	p := NewProgram("x")
	p.AddFunc(Fn("main", nil,
		Let("n", ZX(32, InAt(0))),
		AllocAt("buf", "b@1", Add(V("n"), U32(2))),
	))
	out := Format(mustSites(t, p))
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("listing = %q", out)
	}
	if !strings.HasPrefix(lines[0], "SITE") || !strings.Contains(lines[0], "EXPR") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "b@1") || !strings.Contains(lines[1], "alloc") ||
		!strings.Contains(lines[1], "(n + 2)") {
		t.Fatalf("alloc row = %q", lines[1])
	}
	if !strings.Contains(lines[2], "@add") || !strings.Contains(lines[2], "arith") {
		t.Fatalf("arith row = %q", lines[2])
	}
}

// TestNestedArithEnumeration is the regression pin for a reported (and
// disproved) enumeration bug: the claim was that only the outermost
// arithmetic node of a sink expression became a site, silently dropping
// nested tainted arithmetic. The descent in emit in fact recurses into both
// operands of every Bin node, so `(w + pad) * h` yields three sites — the
// outer mul and both-depths-of-nesting adds — each with its own stable
// .a/.b path, and each path resolves back to the exact sub-expression via
// the probe transform.
func TestNestedArithEnumeration(t *testing.T) {
	p := NewProgram("x")
	p.AddFunc(Fn("main", nil,
		Let("w", ZX(32, InAt(0))),
		Let("h", ZX(32, InAt(1))),
		Let("pad", ZX(32, InAt(2))),
		// Nested on both sides: ((w + pad) * h) + (h + pad)
		AllocAt("buf", "img@1",
			Add(Mul(Add(V("w"), V("pad")), V("h")), Add(V("h"), V("pad")))),
	))
	sites := mustSites(t, p)
	arith := names(sites, KindArith)
	want := []string{
		"x:main#s3.size@add",     // outermost add
		"x:main#s3.size.a@mul",   // (w + pad) * h
		"x:main#s3.size.a.a@add", // w + pad, nested two levels deep
		"x:main#s3.size.b@add",   // h + pad
	}
	if !reflect.DeepEqual(arith, want) {
		t.Fatalf("arith sites = %v, want %v", arith, want)
	}
	// Every nested site must round-trip through the probe transform: the
	// recorded path resolves to a sub-expression, and the probed program
	// re-finalizes with the probe allocation in place.
	for _, s := range sites {
		if s.Kind != KindArith {
			continue
		}
		probed, err := Probe(p, s)
		if err != nil {
			t.Fatalf("site %s does not probe: %v", s.Name, err)
		}
		found := false
		probed.WalkStmts(func(f *Func, path string, st Stmt) {
			if a, ok := st.(Alloc); ok && a.Site == s.Name {
				found = true
			}
		})
		if !found {
			t.Fatalf("site %s: probe allocation missing from transformed program", s.Name)
		}
	}
}
