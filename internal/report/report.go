// Package report renders the evaluation tables — the paper's Table 1
// (target site classification) and Table 2 (per-overflow summary plus the
// §5.5/§5.6 success-rate columns) — with the paper's numbers printed next to
// the measured ones, and keeps a JSON results database (the paper's §4
// "database of relevant experimental results").
package report

import (
	"encoding/json"
	"fmt"
	"strings"
	"text/tabwriter"
	"time"

	"diode/internal/apps"
	"diode/internal/core"
)

// Rate is one success-rate measurement: Hits triggering inputs out of Total
// generated.
type Rate struct {
	Hits  int
	Total int
}

func (r Rate) String() string {
	if r.Total == 0 {
		return "N/A"
	}
	return fmt.Sprintf("%d/%d", r.Hits, r.Total)
}

// SiteRecord is the persisted, render-ready result for one target site.
type SiteRecord struct {
	App       string
	Site      string
	Verdict   string
	Class     string
	ErrorType string
	Enforced  int
	// RelevantDynamic is the measured Y value (dynamic relevant branches on
	// the seed path to the site).
	RelevantDynamic int
	DiscoveryMS     int64
	// TargetOnly and TargetEnforced are the measured §5.5/§5.6 rates
	// (Total == 0 when the experiment was not run).
	TargetOnly     Rate
	TargetEnforced Rate
	// SamePathSat records the §5.4 verdict ("sat", "unsat" or "" if not run).
	SamePathSat string
}

// AppRecord is the persisted result for one application.
type AppRecord struct {
	App        string
	AnalysisMS int64
	Sites      []SiteRecord
}

// FromResult converts an engine result into a persistable record.
// Experiment fields (success rates, same-path) start empty and are filled by
// the harness when those experiments run.
func FromResult(res *core.AppResult) *AppRecord {
	rec := &AppRecord{
		App:        res.App.Short,
		AnalysisMS: res.Analysis.Milliseconds(),
	}
	for _, sr := range res.Sites {
		rec.Sites = append(rec.Sites, SiteRecord{
			App:             res.App.Short,
			Site:            sr.Target.Site,
			Verdict:         sr.Verdict.String(),
			Class:           sr.Verdict.Class().String(),
			ErrorType:       sr.ErrorType,
			Enforced:        sr.EnforcedCount(),
			RelevantDynamic: sr.Target.DynamicBranches,
			DiscoveryMS:     sr.Discovery.Milliseconds(),
		})
	}
	return rec
}

// SiteFor returns a pointer to the record for the named site.
func (r *AppRecord) SiteFor(site string) *SiteRecord {
	for i := range r.Sites {
		if r.Sites[i].Site == site {
			return &r.Sites[i]
		}
	}
	return nil
}

// MarshalJSON round-trips via the standard encoder; records are plain data.
func Save(recs []*AppRecord) ([]byte, error) {
	return json.MarshalIndent(recs, "", "  ")
}

// Load parses a results database produced by Save.
func Load(data []byte) ([]*AppRecord, error) {
	var recs []*AppRecord
	if err := json.Unmarshal(data, &recs); err != nil {
		return nil, fmt.Errorf("report: corrupt results database: %w", err)
	}
	return recs, nil
}

// classCounts tallies a record's sites per classification.
func classCounts(rec *AppRecord) (exposed, unsat, prevented int) {
	for _, s := range rec.Sites {
		switch s.Class {
		case apps.ClassExposed.String():
			exposed++
		case apps.ClassUnsat.String():
			unsat++
		default:
			prevented++
		}
	}
	return
}

// Table1 renders the target-site classification table with measured and
// paper values side by side.
func Table1(appList []*apps.App, recs []*AppRecord) string {
	var b strings.Builder
	b.WriteString("Table 1: Target Site Classification (measured | paper)\n\n")
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Application\tTotal Sites\tExposes Overflow\tConstraint Unsat\tChecks Prevent")
	totals := [8]int{}
	for _, app := range appList {
		rec := findRecord(recs, app.Short)
		if rec == nil {
			continue
		}
		e, u, p := classCounts(rec)
		var pe, pu, pp int
		for _, ps := range app.Paper {
			switch ps.Class {
			case apps.ClassExposed:
				pe++
			case apps.ClassUnsat:
				pu++
			default:
				pp++
			}
		}
		fmt.Fprintf(w, "%s\t%d | %d\t%d | %d\t%d | %d\t%d | %d\n",
			app.Name, len(rec.Sites), len(app.Paper), e, pe, u, pu, p, pp)
		for i, v := range []int{len(rec.Sites), len(app.Paper), e, pe, u, pu, p, pp} {
			totals[i] += v
		}
	}
	fmt.Fprintf(w, "Total\t%d | %d\t%d | %d\t%d | %d\t%d | %d\n",
		totals[0], totals[1], totals[2], totals[3], totals[4], totals[5], totals[6], totals[7])
	w.Flush()
	return b.String()
}

// Table2 renders the per-overflow summary (exposed sites only) with paper
// values alongside.
func Table2(appList []*apps.App, recs []*AppRecord) string {
	var b strings.Builder
	b.WriteString("Table 2: Evaluation Summary (measured | paper)\n\n")
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Application\tTarget\tCVE\tError Type (measured)\tTime (A) D\tEnforced X/Y\tTarget Rate\t+Enforced Rate")
	for _, app := range appList {
		rec := findRecord(recs, app.Short)
		if rec == nil {
			continue
		}
		for _, ps := range app.Paper {
			if ps.Class != apps.ClassExposed {
				continue
			}
			sr := rec.SiteFor(ps.Site)
			if sr == nil || sr.Class != apps.ClassExposed.String() {
				fmt.Fprintf(w, "%s\t%s\t%s\tNOT EXPOSED\t\t\t\t\n", app.Name, ps.Site, ps.CVE)
				continue
			}
			paperEnf := fmt.Sprintf("%d/%d", ps.EnforcedX, ps.EnforcedY)
			measEnf := fmt.Sprintf("%d/%d", sr.Enforced, sr.RelevantDynamic)
			paperTR := fmt.Sprintf("%d/%d", ps.TargetRate, ps.TargetRateOf)
			paperER := "N/A"
			if ps.EnforcedRate >= 0 {
				paperER = fmt.Sprintf("%d/200", ps.EnforcedRate)
			}
			fmt.Fprintf(w, "%s\t%s\t%s\t%s\t(%s) %s\t%s | %s\t%s | %s\t%s | %s\n",
				app.Name, ps.Site, ps.CVE, sr.ErrorType,
				durMS(rec.AnalysisMS), durMS(sr.DiscoveryMS),
				measEnf, paperEnf,
				sr.TargetOnly, paperTR,
				sr.TargetEnforced, paperER)
		}
	}
	w.Flush()
	return b.String()
}

func durMS(ms int64) string {
	return time.Duration(ms * int64(time.Millisecond)).String()
}

func findRecord(recs []*AppRecord, short string) *AppRecord {
	for _, r := range recs {
		if r.App == short {
			return r
		}
	}
	return nil
}
