// Package report renders the evaluation tables — the paper's Table 1
// (target site classification) and Table 2 (per-overflow summary plus the
// §5.5/§5.6 success-rate columns) — with the paper's numbers printed next to
// the measured ones, and keeps a JSON results database (the paper's §4
// "database of relevant experimental results").
package report

import (
	"encoding/json"
	"fmt"
	"strings"
	"text/tabwriter"
	"time"

	"diode/internal/absint"
	"diode/internal/apps"
	"diode/internal/core"
	"diode/internal/discover"
)

// Rate is one success-rate measurement: Hits triggering inputs out of Total
// generated. Failures counts sampled models the input-reconstruction layer
// could not turn into files (solver.Stats.GenFailures for the experiment);
// it is rendered alongside the rate so a broken format fix-up reads as
// generation failures in the tables rather than as a low success rate.
type Rate struct {
	Hits     int
	Total    int
	Failures int `json:",omitempty"`
}

func (r Rate) String() string {
	if r.Total == 0 && r.Failures == 0 {
		return "N/A"
	}
	s := fmt.Sprintf("%d/%d", r.Hits, r.Total)
	if r.Failures > 0 {
		s += fmt.Sprintf(" (%d gen-fail)", r.Failures)
	}
	return s
}

// SiteRecord is the persisted, render-ready result for one target site.
type SiteRecord struct {
	App       string
	Site      string
	Verdict   string
	Class     string
	ErrorType string
	Enforced  int
	// RelevantDynamic is the measured Y value (dynamic relevant branches on
	// the seed path to the site).
	RelevantDynamic int
	DiscoveryMS     int64
	// TargetOnly and TargetEnforced are the measured §5.5/§5.6 rates
	// (Total == 0 when the experiment was not run).
	TargetOnly     Rate
	TargetEnforced Rate
	// SamePathSat records the §5.4 verdict ("sat", "unsat" or "" if not run).
	SamePathSat string
}

// AppRecord is the persisted result for one application.
type AppRecord struct {
	App        string
	AnalysisMS int64
	Sites      []SiteRecord
}

// FromResult converts an engine result into a persistable record.
// Experiment fields (success rates, same-path) start empty and are filled by
// the harness when those experiments run.
func FromResult(res *core.AppResult) *AppRecord {
	rec := &AppRecord{
		App:        res.App.Short,
		AnalysisMS: res.Analysis.Milliseconds(),
	}
	for _, sr := range res.Sites {
		rec.Sites = append(rec.Sites, SiteRecord{
			App:             res.App.Short,
			Site:            sr.Target.Site,
			Verdict:         sr.Verdict.String(),
			Class:           sr.Verdict.Class().String(),
			ErrorType:       sr.ErrorType,
			Enforced:        sr.EnforcedCount(),
			RelevantDynamic: sr.Target.DynamicBranches,
			DiscoveryMS:     sr.Discovery.Milliseconds(),
		})
	}
	return rec
}

// SiteFor returns a pointer to the record for the named site.
func (r *AppRecord) SiteFor(site string) *SiteRecord {
	for i := range r.Sites {
		if r.Sites[i].Site == site {
			return &r.Sites[i]
		}
	}
	return nil
}

// Save renders the records as the indented-JSON results database; records
// are plain data, so the standard encoder round-trips them.
func Save(recs []*AppRecord) ([]byte, error) {
	return json.MarshalIndent(recs, "", "  ")
}

// Load parses a results database produced by Save. Databases carrying more
// than one record for the same application are rejected: SiteFor and the
// table renderers resolve an application to a single record, so a duplicate
// would make them pick one arbitrarily.
func Load(data []byte) ([]*AppRecord, error) {
	var recs []*AppRecord
	if err := json.Unmarshal(data, &recs); err != nil {
		return nil, fmt.Errorf("report: corrupt results database: %w", err)
	}
	seen := make(map[string]bool, len(recs))
	for _, r := range recs {
		if r == nil {
			return nil, fmt.Errorf("report: corrupt results database: null record")
		}
		if seen[r.App] {
			return nil, fmt.Errorf("report: results database has duplicate records for application %q", r.App)
		}
		seen[r.App] = true
	}
	return recs, nil
}

// classCounts tallies a record's sites per classification.
func classCounts(rec *AppRecord) (exposed, unsat, prevented int) {
	for _, s := range rec.Sites {
		switch s.Class {
		case apps.ClassExposed.String():
			exposed++
		case apps.ClassUnsat.String():
			unsat++
		default:
			prevented++
		}
	}
	return
}

// Table1 renders the target-site classification table with measured and
// paper values side by side.
func Table1(appList []*apps.App, recs []*AppRecord) string {
	var b strings.Builder
	b.WriteString("Table 1: Target Site Classification (measured | paper)\n\n")
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Application\tTotal Sites\tExposes Overflow\tConstraint Unsat\tChecks Prevent")
	totals := [8]int{}
	for _, app := range appList {
		rec := findRecord(recs, app.Short)
		if rec == nil {
			continue
		}
		e, u, p := classCounts(rec)
		var pe, pu, pp int
		for _, ps := range app.Paper {
			switch ps.Class {
			case apps.ClassExposed:
				pe++
			case apps.ClassUnsat:
				pu++
			default:
				pp++
			}
		}
		fmt.Fprintf(w, "%s\t%d | %d\t%d | %d\t%d | %d\t%d | %d\n",
			app.Name, len(rec.Sites), len(app.Paper), e, pe, u, pu, p, pp)
		for i, v := range []int{len(rec.Sites), len(app.Paper), e, pe, u, pu, p, pp} {
			totals[i] += v
		}
	}
	fmt.Fprintf(w, "Total\t%d | %d\t%d | %d\t%d | %d\t%d | %d\n",
		totals[0], totals[1], totals[2], totals[3], totals[4], totals[5], totals[6], totals[7])
	w.Flush()
	return b.String()
}

// Table2 renders the per-overflow summary (exposed sites only) with paper
// values alongside.
func Table2(appList []*apps.App, recs []*AppRecord) string {
	var b strings.Builder
	b.WriteString("Table 2: Evaluation Summary (measured | paper)\n\n")
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Application\tTarget\tCVE\tError Type (measured)\tTime (A) D\tEnforced X/Y\tTarget Rate\t+Enforced Rate")
	for _, app := range appList {
		rec := findRecord(recs, app.Short)
		if rec == nil {
			continue
		}
		for _, ps := range app.Paper {
			if ps.Class != apps.ClassExposed {
				continue
			}
			sr := rec.SiteFor(ps.Site)
			if sr == nil || sr.Class != apps.ClassExposed.String() {
				fmt.Fprintf(w, "%s\t%s\t%s\tNOT EXPOSED\t\t\t\t\n", app.Name, ps.Site, ps.CVE)
				continue
			}
			paperEnf := fmt.Sprintf("%d/%d", ps.EnforcedX, ps.EnforcedY)
			measEnf := fmt.Sprintf("%d/%d", sr.Enforced, sr.RelevantDynamic)
			paperTR := fmt.Sprintf("%d/%d", ps.TargetRate, ps.TargetRateOf)
			paperER := "N/A"
			if ps.EnforcedRate >= 0 {
				paperER = fmt.Sprintf("%d/200", ps.EnforcedRate)
			}
			fmt.Fprintf(w, "%s\t%s\t%s\t%s\t(%s) %s\t%s | %s\t%s | %s\t%s | %s\n",
				app.Name, ps.Site, ps.CVE, sr.ErrorType,
				durMS(rec.AnalysisMS), durMS(sr.DiscoveryMS),
				measEnf, paperEnf,
				sr.TargetOnly, paperTR,
				sr.TargetEnforced, paperER)
		}
	}
	w.Flush()
	return b.String()
}

// TableExtended renders the extended-suite evaluation table. Extended
// applications have no paper expectations, so every column is measured-only
// and every site appears (not just the exposed ones): classification,
// observed error type, analysis/discovery times, enforced X/Y and the §5.5
// success rate when the experiment ran.
func TableExtended(appList []*apps.App, recs []*AppRecord) string {
	var b strings.Builder
	b.WriteString("Extended Suite: Site Classification and Discovery (measured only)\n\n")
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Application\tSite\tClass\tError Type\tTime (A) D\tEnforced X/Y\tTarget Rate")
	var exposed, unsat, prevented int
	for _, app := range appList {
		rec := findRecord(recs, app.Short)
		if rec == nil {
			continue
		}
		e, u, p := classCounts(rec)
		exposed, unsat, prevented = exposed+e, unsat+u, prevented+p
		for _, sr := range rec.Sites {
			errType, times, enf, rate := "", "", "", ""
			if sr.Class == apps.ClassExposed.String() {
				errType = sr.ErrorType
				times = fmt.Sprintf("(%s) %s", durMS(rec.AnalysisMS), durMS(sr.DiscoveryMS))
				enf = fmt.Sprintf("%d/%d", sr.Enforced, sr.RelevantDynamic)
				rate = sr.TargetOnly.String()
			}
			fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\t%s\t%s\n",
				app.Name, sr.Site, sr.Class, errType, times, enf, rate)
		}
	}
	fmt.Fprintf(w, "Total\t%d sites\t%d exposed, %d unsat, %d prevented\t\t\t\t\n",
		exposed+unsat+prevented, exposed, unsat, prevented)
	w.Flush()
	return b.String()
}

// TableDiscovered renders the static site-discovery summary: per
// application, the discovered sites by kind, next to the size of the
// curated paper table those discoveries supersede. Discovery is static —
// the counts come from the apps' discovery pass, not from sweep records.
func TableDiscovered(appList []*apps.App) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "Discovered Overflow Sites (static pass, discovery v%s)\n\n", discover.Version)
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Application\tSites\tAlloc\tArith\tCurated")
	var totals [4]int
	for _, app := range appList {
		sites, err := app.Discovered()
		if err != nil {
			return "", fmt.Errorf("report: %s: %w", app.Short, err)
		}
		var alloc, arith int
		for _, s := range sites {
			switch s.Kind {
			case discover.KindAlloc:
				alloc++
			case discover.KindArith:
				arith++
			}
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\n", app.Name, len(sites), alloc, arith, len(app.Paper))
		for i, v := range []int{len(sites), alloc, arith, len(app.Paper)} {
			totals[i] += v
		}
	}
	fmt.Fprintf(w, "Total\t%d\t%d\t%d\t%d\n", totals[0], totals[1], totals[2], totals[3])
	w.Flush()
	return b.String(), nil
}

// TableTriage renders the static value-range triage summary: per
// application, the discovered sites by triage verdict and what the triage
// prunes from the extended arith hunt — statically safe arith sites are
// skipped outright (the Hunter folds them as unsatisfiable without opening
// a solver session), so they are hunts an arith sweep never pays for.
// Triage is static — the counts come from the apps' triage pass, not from
// sweep records. Safe counts include the sites whose safety holds even with
// guards ignored (the "unconditionally safe" subset, shown in parentheses).
func TableTriage(appList []*apps.App) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "Static Value-Range Triage (abstract interpretation v%s)\n\n", absint.Version)
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Application\tSites\tSafe\tMust-overflow\tUnknown\tPruned arith hunts")
	var totals [6]int
	for _, app := range appList {
		sites, err := app.Triaged()
		if err != nil {
			return "", fmt.Errorf("report: %s: %w", app.Short, err)
		}
		var safe, uncond, must, unknown, pruned int
		for _, s := range sites {
			switch s.Triage {
			case discover.TriageSafe:
				safe++
				if s.SafeNoGuards {
					uncond++
				}
				if s.Kind == discover.KindArith {
					pruned++
				}
			case discover.TriageMustOverflow:
				must++
			default:
				unknown++
			}
		}
		fmt.Fprintf(w, "%s\t%d\t%d (%d)\t%d\t%d\t%d\n",
			app.Name, len(sites), safe, uncond, must, unknown, pruned)
		for i, v := range []int{len(sites), safe, uncond, must, unknown, pruned} {
			totals[i] += v
		}
	}
	fmt.Fprintf(w, "Total\t%d\t%d (%d)\t%d\t%d\t%d\n",
		totals[0], totals[1], totals[2], totals[3], totals[4], totals[5])
	w.Flush()
	return b.String(), nil
}

func durMS(ms int64) string {
	return time.Duration(ms * int64(time.Millisecond)).String()
}

func findRecord(recs []*AppRecord, short string) *AppRecord {
	for _, r := range recs {
		if r.App == short {
			return r
		}
	}
	return nil
}
