package report

import (
	"fmt"
	"strings"
	"testing"

	"diode/internal/apps"
)

func sampleRecords() []*AppRecord {
	var recs []*AppRecord
	for _, app := range apps.Paper() {
		rec := &AppRecord{App: app.Short, AnalysisMS: 10}
		for _, ps := range app.Paper {
			rec.Sites = append(rec.Sites, SiteRecord{
				App:       app.Short,
				Site:      ps.Site,
				Class:     ps.Class.String(),
				Verdict:   ps.Class.String(),
				ErrorType: ps.ErrorType,
				Enforced:  ps.EnforcedX,
			})
		}
		recs = append(recs, rec)
	}
	return recs
}

func TestTable1RendersTotals(t *testing.T) {
	out := Table1(apps.Paper(), sampleRecords())
	for _, want := range []string{
		"Dillo 2.1", "VLC 0.8.6h", "ImageMagick 6.5.2",
		"Total", "40 | 40", "14 | 14", "17 | 17", "9 | 9",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, out)
		}
	}
}

func TestTable2RendersExposedRows(t *testing.T) {
	out := Table2(apps.Paper(), sampleRecords())
	for _, want := range []string{
		"dillo:png.c@203", "CVE-2009-2294", "CVE-2008-2430", "vlc:block.c@54",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 2 missing %q", want)
		}
	}
	if strings.Contains(out, "dillo:png.c@118") {
		t.Error("Table 2 must only list exposed sites")
	}
}

// extendedRecords builds synthetic measured-only records for the extended
// suite (extended apps carry no paper expectations to derive from).
func extendedRecords() []*AppRecord {
	var recs []*AppRecord
	for _, app := range apps.Extended() {
		rec := &AppRecord{App: app.Short, AnalysisMS: 4}
		for i, site := range app.Program.Sites() {
			class := apps.ClassExposed
			sr := SiteRecord{App: app.Short, Site: site, Enforced: 2 + i, RelevantDynamic: 11}
			if i%2 == 1 {
				class = apps.ClassUnsat
			} else {
				sr.ErrorType = "SIGSEGV/InvalidWrite"
				sr.TargetOnly = Rate{Hits: 5, Total: 20}
			}
			sr.Class = class.String()
			sr.Verdict = class.String()
			rec.Sites = append(rec.Sites, sr)
		}
		recs = append(recs, rec)
	}
	return recs
}

// TestTableExtendedRendersMeasuredOnly: the extended table must carry rows
// for every extended app and site, with no paper-value "|" separators.
func TestTableExtendedRendersMeasuredOnly(t *testing.T) {
	out := TableExtended(apps.Extended(), extendedRecords())
	for _, want := range []string{
		"GIFView 0.4", "TIFThumb 0.2",
		"gifview:gif.c@155", "tifthumb:tif.c@231",
		"SIGSEGV/InvalidWrite", "5/20", "Total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("extended table missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "|") {
		t.Errorf("extended table renders paper-comparison separators:\n%s", out)
	}
	// Apps without records are skipped, not rendered empty.
	if got := TableExtended(apps.Extended(), nil); strings.Contains(got, "GIFView") {
		t.Error("extended table rendered rows with no records")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	recs := sampleRecords()
	recs[0].Sites[0].TargetOnly = Rate{Hits: 190, Total: 200}
	data, err := Save(recs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Load(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("loaded %d records, want %d", len(got), len(recs))
	}
	if got[0].Sites[0].TargetOnly != (Rate{Hits: 190, Total: 200}) {
		t.Fatalf("rate lost in round trip: %+v", got[0].Sites[0].TargetOnly)
	}
	if _, err := Load([]byte("not json")); err == nil {
		t.Fatal("corrupt database accepted")
	}
}

// TestLoadRejectsDuplicateApps: a database with two records for the same
// application would make SiteFor and the table renderers pick one
// arbitrarily, so Load must reject it outright.
func TestLoadRejectsDuplicateApps(t *testing.T) {
	recs := sampleRecords()
	dup := *recs[0]
	data, err := Save(append(recs, &dup))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Load(data); err == nil {
		t.Fatal("database with duplicate app records accepted")
	} else if !strings.Contains(err.Error(), recs[0].App) {
		t.Errorf("duplicate error does not name the application: %v", err)
	}
	// A JSON null element must yield an error, not a nil-pointer panic.
	if _, err := Load([]byte("[null]")); err == nil {
		t.Fatal("database with a null record accepted")
	}
}

func TestRateString(t *testing.T) {
	if (Rate{}).String() != "N/A" {
		t.Error("zero rate should render N/A")
	}
	if (Rate{Hits: 3, Total: 7}).String() != "3/7" {
		t.Error("rate render")
	}
}

// TestTableDiscovered checks the static-discovery summary: one row per
// application with kind counts that add up, a curated column matching the
// paper tables, and a totals row.
func TestTableDiscovered(t *testing.T) {
	appList := apps.All()
	out, err := TableDiscovered(appList)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Discovered Overflow Sites") || !strings.Contains(out, "Alloc") {
		t.Fatalf("missing header:\n%s", out)
	}
	for _, app := range appList {
		if !strings.Contains(out, app.Name) {
			t.Errorf("missing row for %s:\n%s", app.Name, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	last := lines[len(lines)-1]
	if !strings.HasPrefix(last, "Total") {
		t.Fatalf("last line is not the totals row: %q", last)
	}
	var total, alloc, arith, curated int
	if _, err := fmt.Sscanf(strings.Join(strings.Fields(last), " "),
		"Total %d %d %d %d", &total, &alloc, &arith, &curated); err != nil {
		t.Fatalf("unparseable totals row %q: %v", last, err)
	}
	if total != alloc+arith || total == 0 {
		t.Errorf("totals row inconsistent: %d sites != %d alloc + %d arith", total, alloc, arith)
	}
	var wantCurated int
	for _, app := range appList {
		wantCurated += len(app.Paper)
	}
	if curated != wantCurated {
		t.Errorf("curated total = %d, want %d", curated, wantCurated)
	}
}
