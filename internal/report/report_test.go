package report

import (
	"strings"
	"testing"

	"diode/internal/apps"
)

func sampleRecords() []*AppRecord {
	var recs []*AppRecord
	for _, app := range apps.All() {
		rec := &AppRecord{App: app.Short, AnalysisMS: 10}
		for _, ps := range app.Paper {
			rec.Sites = append(rec.Sites, SiteRecord{
				App:       app.Short,
				Site:      ps.Site,
				Class:     ps.Class.String(),
				Verdict:   ps.Class.String(),
				ErrorType: ps.ErrorType,
				Enforced:  ps.EnforcedX,
			})
		}
		recs = append(recs, rec)
	}
	return recs
}

func TestTable1RendersTotals(t *testing.T) {
	out := Table1(apps.All(), sampleRecords())
	for _, want := range []string{
		"Dillo 2.1", "VLC 0.8.6h", "ImageMagick 6.5.2",
		"Total", "40 | 40", "14 | 14", "17 | 17", "9 | 9",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, out)
		}
	}
}

func TestTable2RendersExposedRows(t *testing.T) {
	out := Table2(apps.All(), sampleRecords())
	for _, want := range []string{
		"dillo:png.c@203", "CVE-2009-2294", "CVE-2008-2430", "vlc:block.c@54",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 2 missing %q", want)
		}
	}
	if strings.Contains(out, "dillo:png.c@118") {
		t.Error("Table 2 must only list exposed sites")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	recs := sampleRecords()
	recs[0].Sites[0].TargetOnly = Rate{Hits: 190, Total: 200}
	data, err := Save(recs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Load(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("loaded %d records, want %d", len(got), len(recs))
	}
	if got[0].Sites[0].TargetOnly != (Rate{Hits: 190, Total: 200}) {
		t.Fatalf("rate lost in round trip: %+v", got[0].Sites[0].TargetOnly)
	}
	if _, err := Load([]byte("not json")); err == nil {
		t.Fatal("corrupt database accepted")
	}
}

func TestRateString(t *testing.T) {
	if (Rate{}).String() != "N/A" {
		t.Error("zero rate should render N/A")
	}
	if (Rate{Hits: 3, Total: 7}).String() != "3/7" {
		t.Error("rate render")
	}
}
