// Package taint implements the per-input-byte label sets used by DIODE's
// stage-1 fine-grained dynamic taint analysis (§4.1). Every byte read from
// the taint source gets a unique label (its offset); labels propagate through
// arithmetic, data-movement and logic operations as set unions. A memory
// allocation site whose size carries a non-empty label set is a target site,
// and the labels are exactly the "relevant input bytes".
//
// Sets are immutable: operations return new sets, so values can be shared
// freely between interpreter cells.
package taint

import "math/bits"

// Set is an immutable set of input byte offsets, represented as a bitset.
// The zero value (nil) is the empty set.
type Set struct {
	words []uint64
}

// Empty reports whether the set has no labels.
func (s *Set) Empty() bool {
	if s == nil {
		return true
	}
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Single returns the set containing only label i.
func Single(i int) *Set {
	if i < 0 {
		panic("taint: negative label")
	}
	words := make([]uint64, i/64+1)
	words[i/64] = 1 << uint(i%64)
	return &Set{words: words}
}

// Has reports whether label i is in the set.
func (s *Set) Has(i int) bool {
	if s == nil || i < 0 || i/64 >= len(s.words) {
		return false
	}
	return s.words[i/64]&(1<<uint(i%64)) != 0
}

// Union returns the union of s and t, reusing an operand when possible.
func (s *Set) Union(t *Set) *Set {
	if s.Empty() {
		return t
	}
	if t.Empty() {
		return s
	}
	a, b := s.words, t.words
	if len(b) > len(a) {
		a, b = b, a
	}
	// Fast path: b ⊆ a.
	subset := true
	for i, w := range b {
		if w&^a[i] != 0 {
			subset = false
			break
		}
	}
	if subset {
		if len(a) == len(s.words) && &a[0] == &s.words[0] {
			return s
		}
		return t
	}
	out := make([]uint64, len(a))
	copy(out, a)
	for i, w := range b {
		out[i] |= w
	}
	return &Set{words: out}
}

// Intersects reports whether s and t share a label.
func (s *Set) Intersects(t *Set) bool {
	if s == nil || t == nil {
		return false
	}
	n := len(s.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	for i := 0; i < n; i++ {
		if s.words[i]&t.words[i] != 0 {
			return true
		}
	}
	return false
}

// Len returns the number of labels in the set.
func (s *Set) Len() int {
	if s == nil {
		return 0
	}
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Elems returns the labels in ascending order.
func (s *Set) Elems() []int {
	if s == nil {
		return nil
	}
	var out []int
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, wi*64+b)
			w &= w - 1
		}
	}
	return out
}

// Equal reports whether the two sets contain the same labels.
func (s *Set) Equal(t *Set) bool {
	a, b := s, t
	if a.Empty() && b.Empty() {
		return true
	}
	if a.Empty() != b.Empty() {
		return false
	}
	long, short := a.words, b.words
	if len(short) > len(long) {
		long, short = short, long
	}
	for i := range short {
		if long[i] != short[i] {
			return false
		}
	}
	for i := len(short); i < len(long); i++ {
		if long[i] != 0 {
			return false
		}
	}
	return true
}
