package taint

import (
	"testing"
	"testing/quick"
)

func TestEmptyAndSingle(t *testing.T) {
	var nilSet *Set
	if !nilSet.Empty() {
		t.Fatal("nil set must be empty")
	}
	s := Single(70)
	if s.Empty() || !s.Has(70) || s.Has(69) || s.Len() != 1 {
		t.Fatalf("Single(70) misbehaves: %v", s.Elems())
	}
	if nilSet.Has(0) || nilSet.Len() != 0 || nilSet.Elems() != nil {
		t.Fatal("nil set accessors")
	}
}

func TestUnionBasics(t *testing.T) {
	a := Single(1).Union(Single(65))
	if a.Len() != 2 || !a.Has(1) || !a.Has(65) {
		t.Fatalf("union = %v", a.Elems())
	}
	var nilSet *Set
	if got := nilSet.Union(a); got != a {
		t.Fatal("union with empty should reuse operand")
	}
	if got := a.Union(nil); got != a {
		t.Fatal("union with empty should reuse operand")
	}
	// Subset union reuses the superset.
	if got := a.Union(Single(1)); !got.Equal(a) {
		t.Fatalf("subset union = %v", got.Elems())
	}
}

func TestUnionImmutability(t *testing.T) {
	a := Single(3)
	b := Single(200)
	u := a.Union(b)
	if a.Len() != 1 || b.Len() != 1 {
		t.Fatal("operands mutated")
	}
	if u.Len() != 2 {
		t.Fatal("union wrong")
	}
}

func TestIntersects(t *testing.T) {
	a := Single(5).Union(Single(100))
	b := Single(100).Union(Single(300))
	c := Single(7)
	if !a.Intersects(b) || b.Intersects(c) || a.Intersects(nil) {
		t.Fatal("intersects misbehaves")
	}
}

func TestEqual(t *testing.T) {
	a := Single(5).Union(Single(64))
	b := Single(64).Union(Single(5))
	if !a.Equal(b) {
		t.Fatal("order-independent equality failed")
	}
	var nilSet *Set
	if !nilSet.Equal(nil) {
		t.Fatal("nil == nil")
	}
	if a.Equal(Single(5)) {
		t.Fatal("different sets equal")
	}
}

// Property: union membership is the or of operand memberships.
func TestUnionProperty(t *testing.T) {
	f := func(xs, ys []uint8, probe uint8) bool {
		var a, b *Set
		for _, x := range xs {
			a = a.Union(Single(int(x)))
		}
		for _, y := range ys {
			b = b.Union(Single(int(y)))
		}
		u := a.Union(b)
		return u.Has(int(probe)) == (a.Has(int(probe)) || b.Has(int(probe)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Elems is sorted, duplicate-free and consistent with Has.
func TestElemsProperty(t *testing.T) {
	f := func(xs []uint16) bool {
		var s *Set
		for _, x := range xs {
			s = s.Union(Single(int(x % 1024)))
		}
		elems := s.Elems()
		for i, e := range elems {
			if !s.Has(e) {
				return false
			}
			if i > 0 && elems[i-1] >= e {
				return false
			}
		}
		return s.Len() == len(elems)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
