// Package trace implements the branch-condition sequence φ of the paper's
// §3.2 and the two transformations the enforcement algorithm applies to it:
//
//   - compress(φ) (Figure 8): coalesce the multiple occurrences of a
//     conditional branch (loop heads execute many times) into a single entry
//     whose constraint is the conjunction of every observed occurrence, at
//     the position of the first occurrence.
//   - relevant(φ, β) (§3.3): drop entries whose condition shares no input
//     variable with the target constraint β.
package trace

import (
	"diode/internal/bv"
	"diode/internal/interp"
)

// Entry is one element ⟨ℓ, B⟩ of φ: the constraint that holds exactly when
// an input takes the same direction(s) the observed run took at label ℓ.
type Entry struct {
	Label string
	Cond  *bv.Bool
	// Count is the number of dynamic occurrences coalesced into this entry
	// (1 before compression).
	Count int
}

// Path is a branch condition sequence in program execution order.
type Path []Entry

// FromBranches converts interpreter branch records into a Path.
func FromBranches(recs []interp.BranchRecord) Path {
	p := make(Path, len(recs))
	for i, r := range recs {
		p[i] = Entry{Label: r.Label, Cond: r.Cond, Count: 1}
	}
	return p
}

// Compress implements Figure 8: for each label, all occurrences are folded
// (by conjunction) into the first occurrence, preserving first-occurrence
// order. The input path is not modified.
func Compress(p Path) Path {
	var out Path
	index := make(map[string]int)
	for _, e := range p {
		if i, ok := index[e.Label]; ok {
			out[i].Cond = bv.AndB(out[i].Cond, e.Cond)
			out[i].Count += e.Count
			continue
		}
		index[e.Label] = len(out)
		out = append(out, Entry{Label: e.Label, Cond: e.Cond, Count: e.Count})
	}
	return out
}

// Relevant filters p down to the entries whose condition shares at least one
// input variable with the target constraint β.
func Relevant(p Path, beta *bv.Bool) Path {
	betaVars := bv.BoolVars(beta)
	var out Path
	for _, e := range p {
		if bv.BoolVars(e.Cond).Intersects(betaVars) {
			out = append(out, e)
		}
	}
	return out
}

// FirstUnsatisfied returns the index of the first entry whose constraint the
// assignment violates, or -1 if the assignment satisfies every entry. This is
// the "first flipped branch" search of Figure 7, line 12. Assignments that do
// not bind some variable of an entry are treated as violating that entry.
func FirstUnsatisfied(p Path, m bv.Assignment) int {
	for i, e := range p {
		ok, err := m.EvalBool(e.Cond)
		if err != nil || !ok {
			return i
		}
	}
	return -1
}

// Conds returns the conjunction of all entries' constraints (the "same path
// as the seed input" constraint used in the §5.4 blocking-check experiment).
func (p Path) Conds() *bv.Bool {
	out := bv.True()
	for _, e := range p {
		out = bv.AndB(out, e.Cond)
	}
	return out
}

// Labels returns the entry labels in order.
func (p Path) Labels() []string {
	out := make([]string, len(p))
	for i, e := range p {
		out[i] = e.Label
	}
	return out
}

// DynamicCount returns the total number of dynamic branch occurrences folded
// into p (the paper's "total relevant conditional branches on the path",
// Table 2's Y value).
func (p Path) DynamicCount() int {
	n := 0
	for _, e := range p {
		n += e.Count
	}
	return n
}
