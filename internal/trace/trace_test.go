package trace

import (
	"testing"
	"testing/quick"

	"diode/internal/bv"
	"diode/internal/interp"
)

func entry(label string, cond *bv.Bool) Entry {
	return Entry{Label: label, Cond: cond, Count: 1}
}

func TestCompressCoalescesByLabel(t *testing.T) {
	x := bv.Var(32, "tr_x")
	c1 := bv.Ugt(x, bv.Const(32, 0))
	c2 := bv.Ugt(x, bv.Const(32, 16))
	c3 := bv.NotB(bv.Ugt(x, bv.Const(32, 32)))
	p := Path{
		entry("loop", c1),
		entry("check", bv.Ult(x, bv.Const(32, 100))),
		entry("loop", c2),
		entry("loop", c3),
	}
	got := Compress(p)
	if len(got) != 2 {
		t.Fatalf("compressed length = %d, want 2", len(got))
	}
	if got[0].Label != "loop" || got[1].Label != "check" {
		t.Fatalf("order not preserved: %v", got.Labels())
	}
	if got[0].Count != 3 || got[1].Count != 1 {
		t.Fatalf("counts = %d,%d", got[0].Count, got[1].Count)
	}
	// The coalesced loop constraint is the conjunction: 16 < x ≤ 32.
	for _, tc := range []struct {
		v    uint64
		want bool
	}{{20, true}, {32, true}, {10, false}, {33, false}} {
		ok, err := bv.Assignment{"tr_x": tc.v}.EvalBool(got[0].Cond)
		if err != nil {
			t.Fatal(err)
		}
		if ok != tc.want {
			t.Errorf("x=%d: conjunction = %v, want %v", tc.v, ok, tc.want)
		}
	}
}

func TestCompressEmptyAndSingle(t *testing.T) {
	if got := Compress(nil); len(got) != 0 {
		t.Fatal("compress(ε) must be ε")
	}
	x := bv.Var(8, "tr_s")
	p := Path{entry("a", bv.Eq(x, bv.Const(8, 1)))}
	got := Compress(p)
	if len(got) != 1 || got[0] != p[0] {
		t.Fatalf("singleton path changed: %v", got)
	}
}

// TestCompressSemanticsPreserved: the conjunction of all entries before and
// after compression must be logically equal. Checked by evaluation over
// random assignments.
func TestCompressSemanticsPreserved(t *testing.T) {
	x := bv.Var(8, "tr_q")
	y := bv.Var(8, "tr_r")
	p := Path{
		entry("l1", bv.Ult(x, bv.Const(8, 200))),
		entry("l2", bv.Ugt(y, bv.Const(8, 3))),
		entry("l1", bv.Ult(x, bv.Const(8, 150))),
		entry("l2", bv.Ugt(y, bv.Const(8, 7))),
		entry("l3", bv.Eq(bv.And(x, bv.Const(8, 1)), bv.Const(8, 0))),
		entry("l1", bv.Ult(x, bv.Const(8, 100))),
	}
	c := Compress(p)
	f := func(a, b uint64) bool {
		m := bv.Assignment{"tr_q": a & 0xFF, "tr_r": b & 0xFF}
		before, err1 := m.EvalBool(p.Conds())
		after, err2 := m.EvalBool(c.Conds())
		return err1 == nil && err2 == nil && before == after
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRelevantFiltersByVariableOverlap(t *testing.T) {
	w := bv.Var(32, "/h/width")
	h := bv.Var(32, "/h/height")
	other := bv.Var(32, "/h/other")
	beta := bv.OverflowCond(bv.Mul(w, h))
	p := Path{
		entry("widthcheck", bv.Ult(w, bv.Const(32, 1000000))),
		entry("othercheck", bv.Ult(other, bv.Const(32, 5))),
		entry("heightcheck", bv.Ult(h, bv.Const(32, 1000000))),
	}
	got := Relevant(p, beta)
	if len(got) != 2 {
		t.Fatalf("relevant kept %d entries, want 2: %v", len(got), got.Labels())
	}
	if got[0].Label != "widthcheck" || got[1].Label != "heightcheck" {
		t.Fatalf("labels = %v", got.Labels())
	}
}

func TestFirstUnsatisfied(t *testing.T) {
	x := bv.Var(32, "tr_f")
	p := Path{
		entry("a", bv.Ult(x, bv.Const(32, 100))),
		entry("b", bv.Ult(x, bv.Const(32, 50))),
		entry("c", bv.Ult(x, bv.Const(32, 10))),
	}
	if i := FirstUnsatisfied(p, bv.Assignment{"tr_f": 5}); i != -1 {
		t.Fatalf("satisfying assignment reported index %d", i)
	}
	if i := FirstUnsatisfied(p, bv.Assignment{"tr_f": 75}); i != 1 {
		t.Fatalf("first flipped = %d, want 1", i)
	}
	if i := FirstUnsatisfied(p, bv.Assignment{"tr_f": 200}); i != 0 {
		t.Fatalf("first flipped = %d, want 0", i)
	}
	// Unbound variables count as violations.
	if i := FirstUnsatisfied(p, bv.Assignment{}); i != 0 {
		t.Fatalf("unbound assignment: %d, want 0", i)
	}
}

func TestFromBranchesAndDynamicCount(t *testing.T) {
	x := bv.Var(8, "tr_b")
	recs := []interp.BranchRecord{
		{Label: "l", Taken: true, Cond: bv.Ult(x, bv.Const(8, 9))},
		{Label: "l", Taken: false, Cond: bv.NotB(bv.Ult(x, bv.Const(8, 3)))},
	}
	p := FromBranches(recs)
	if len(p) != 2 || p.DynamicCount() != 2 {
		t.Fatalf("path = %v", p)
	}
	c := Compress(p)
	if len(c) != 1 || c.DynamicCount() != 2 {
		t.Fatalf("compressed = %v count=%d", c, c.DynamicCount())
	}
}
