// Package prof wires the standard runtime/pprof file profiles into the CLIs.
// It exists so cmd/diode and cmd/diode-tables share one tested implementation
// of the -cpuprofile/-memprofile contract: profiles must be flushed on every
// exit path (os.Exit skips defers, so the commands funnel through a
// single-exit run function that defers Stop).
package prof

import (
	"os"
	"runtime"
	"runtime/pprof"
)

// Profiles holds the in-flight profiling state started by Start.
type Profiles struct {
	cpuFile *os.File
	memPath string
}

// Start begins the profiles selected by the -cpuprofile/-memprofile flag
// values; an empty path disables that profile. Call Stop exactly once before
// process exit to flush them.
func Start(cpuPath, memPath string) (*Profiles, error) {
	p := &Profiles{memPath: memPath}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		p.cpuFile = f
	}
	return p, nil
}

// Stop ends the CPU profile and writes the heap profile. The heap profile is
// taken at Stop (not Start) so it reflects live allocations at the end of the
// run, after a GC cycle brings the allocation statistics up to date.
func (p *Profiles) Stop() error {
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		err := p.cpuFile.Close()
		p.cpuFile = nil
		if err != nil {
			return err
		}
	}
	if p.memPath != "" {
		f, err := os.Create(p.memPath)
		if err != nil {
			return err
		}
		runtime.GC() // materialize up-to-date allocation statistics
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	return nil
}
