package harness

import (
	"reflect"
	"testing"

	"diode/internal/apps"
	"diode/internal/dispatch"
	"diode/internal/report"
)

// TestWarmSweepLocal is the caching acceptance test on the in-process
// backend: a warm Evaluate over the paper suite at a fixed seed — sharing the
// cold run's JobCache — performs zero Analyzer runs and zero hunts (asserted
// via the cache counters) and renders byte-identical tables.
func TestWarmSweepLocal(t *testing.T) {
	list := apps.Paper()
	jc := dispatch.NewJobCache(dispatch.CacheConfig{})
	cfg := Config{Seed: 33, SampleN: 10, SamePath: true, Cache: jc}

	cold := normalize(Records(Evaluate(cfg, list)))
	if len(cold) != len(list) {
		t.Fatalf("cold sweep produced %d records, want %d", len(cold), len(list))
	}
	coldStats := jc.Stats()
	if coldStats.Misses == 0 || coldStats.AnalysisRuns != int64(len(list)) {
		t.Fatalf("cold stats %+v, want executions and one analysis per app", coldStats)
	}

	warm := normalize(Records(Evaluate(cfg, list)))
	warmStats := jc.Stats()
	if got := warmStats.Misses - coldStats.Misses; got != 0 {
		t.Errorf("warm sweep executed %d hunts, want 0", got)
	}
	if got := warmStats.AnalysisRuns - coldStats.AnalysisRuns; got != 0 {
		t.Errorf("warm sweep ran the Analyzer %d times, want 0", got)
	}
	if warmStats.Hits <= coldStats.Hits {
		t.Errorf("warm sweep recorded no cache hits: %+v", warmStats)
	}

	if !reflect.DeepEqual(cold, warm) {
		t.Errorf("warm records diverged from cold:\ncold: %+v\nwarm: %+v", cold, warm)
	}
	type render struct {
		name string
		fn   func([]*apps.App, []*report.AppRecord) string
	}
	for _, r := range []render{
		{"Table 1", report.Table1},
		{"Table 2", report.Table2},
		{"extended table", report.TableExtended},
	} {
		if a, b := r.fn(list, cold), r.fn(list, warm); a != b {
			t.Errorf("warm %s differs from cold:\n%s\nvs\n%s", r.name, a, b)
		}
	}
}

// TestWarmSweepExec is the cross-process caching acceptance test: two
// Evaluate runs on fresh Exec backends sharing an on-disk cache directory —
// at different worker counts — render byte-identical tables, and the warm
// run's worker processes perform zero Analyzer runs and zero hunts.
func TestWarmSweepExec(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	list := apps.Paper()
	dir := t.TempDir()
	// The planner's analyses live in the parent; sharing its JobCache across
	// both phases keeps the warm planner from re-analyzing, while the shared
	// directory is what carries results between the (fresh) worker processes.
	jc := dispatch.NewJobCache(dispatch.CacheConfig{})
	base := Config{Seed: 33, SampleN: 10, SamePath: true, Cache: jc}

	coldExec := testExecBackend(2)
	coldExec.CacheDir = dir
	coldCfg := base
	coldCfg.Backend = coldExec
	cold := normalize(Records(Evaluate(coldCfg, list)))
	if len(cold) != len(list) {
		t.Fatalf("cold sweep produced %d records, want %d", len(cold), len(list))
	}
	coldStats := coldExec.CacheStats()
	if coldStats.Misses == 0 || coldStats.Stores != coldStats.Misses {
		t.Fatalf("cold exec stats %+v, want every executed job stored", coldStats)
	}
	plannerRuns := jc.Stats().AnalysisRuns

	warmExec := testExecBackend(4)
	warmExec.CacheDir = dir
	warmCfg := base
	warmCfg.Backend = warmExec
	warm := normalize(Records(Evaluate(warmCfg, list)))
	warmStats := warmExec.CacheStats()
	if warmStats.Misses != 0 {
		t.Errorf("warm workers executed %d hunts, want 0", warmStats.Misses)
	}
	if warmStats.AnalysisRuns != 0 {
		t.Errorf("warm workers ran the Analyzer %d times, want 0", warmStats.AnalysisRuns)
	}
	if warmStats.Hits != coldStats.Misses {
		t.Errorf("warm workers served %d jobs from the shared dir, want %d", warmStats.Hits, coldStats.Misses)
	}
	if got := jc.Stats().AnalysisRuns; got != plannerRuns {
		t.Errorf("warm planner re-analyzed (%d runs, had %d)", got, plannerRuns)
	}

	if !reflect.DeepEqual(cold, warm) {
		t.Errorf("warm records diverged from cold:\ncold: %+v\nwarm: %+v", cold, warm)
	}
	if a, b := report.Table1(list, cold), report.Table1(list, warm); a != b {
		t.Errorf("warm Table 1 differs from cold:\n%s\nvs\n%s", a, b)
	}
	if a, b := report.Table2(list, cold), report.Table2(list, warm); a != b {
		t.Errorf("warm Table 2 differs from cold:\n%s\nvs\n%s", a, b)
	}
}
