package harness

import (
	"reflect"
	"runtime"
	"testing"

	"diode/internal/apps"
	"diode/internal/core"
	"diode/internal/report"
)

// extendedWant is the pinned classification of the extended workload suite.
var extendedWant = map[string]map[string]core.Verdict{
	"gifview": {
		"gifview:gif.c@155": core.VerdictExposed,
		"gifview:gif.c@183": core.VerdictUnsat,
		"gifview:lzw.c@88":  core.VerdictPrevented,
		"gifview:gif.c@466": core.VerdictExposed,
		"gifview:gif.c@512": core.VerdictPrevented,
	},
	"tifthumb": {
		"tifthumb:tif.c@139":  core.VerdictUnsat,
		"tifthumb:tif.c@167":  core.VerdictPrevented,
		"tifthumb:tif.c@188":  core.VerdictExposed,
		"tifthumb:tif.c@231":  core.VerdictExposed,
		"tifthumb:thumb.c@58": core.VerdictUnsat,
	},
}

// TestExtendedClassification pins the extended suite's per-site verdicts at
// several seeds: 4 exposed, 3 unsatisfiable, 3 prevented, stable across the
// random draws like the paper suite's Table 1.
func TestExtendedClassification(t *testing.T) {
	seeds := []int64{1, 21, 77}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		outcomes := Evaluate(Config{Seed: seed}, apps.Extended())
		for _, o := range outcomes {
			if o.Err != nil {
				t.Fatal(o.Err)
			}
			want := extendedWant[o.App.Short]
			if len(o.Result.Sites) != len(want) {
				t.Fatalf("%s: %d sites, want %d", o.App.Short, len(o.Result.Sites), len(want))
			}
			for _, sr := range o.Result.Sites {
				if sr.Verdict != want[sr.Target.Site] {
					t.Errorf("seed %d: %s = %v, want %v", seed, sr.Target.Site, sr.Verdict, want[sr.Target.Site])
				}
			}
		}
	}
}

// TestExtendedNeedsEnforcement is the acceptance test for the Figure 7 loop
// on the new formats: the GIFView screen-buffer site must be exposed only
// after at least two enforced branches — proving the initial β sample never
// cracks it and goal-directed enforcement is doing the work. (TIFThumb's
// tif.c@231 behaves the same at most seeds, but a special-value draw can
// occasionally crack it directly, so the hard assertion pins gif.c@155.)
func TestExtendedNeedsEnforcement(t *testing.T) {
	app, err := apps.ByName("gifview")
	if err != nil {
		t.Fatal(err)
	}
	seeds := []int64{1, 2, 3, 21, 33, 77, 1234}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		res, err := core.NewScheduler(app, core.Options{Seed: seed}).RunAll()
		if err != nil {
			t.Fatal(err)
		}
		sr, ok := res.ResultFor("gifview:gif.c@155")
		if !ok {
			t.Fatal("screen-buffer site missing from results")
		}
		if sr.Verdict != core.VerdictExposed {
			t.Fatalf("seed %d: gif.c@155 = %v, want exposed", seed, sr.Verdict)
		}
		if sr.EnforcedCount() < 2 {
			t.Errorf("seed %d: gif.c@155 exposed after %d enforced branches, want >= 2 (enforced: %v)",
				seed, sr.EnforcedCount(), sr.Enforced)
		}
	}
}

// TestExtendedSweepDeterminism extends the parallel-determinism acceptance
// test to the extended suite: a fully parallel sweep of the two new
// applications must render a byte-identical extended table to a sequential
// one at the same seed.
func TestExtendedSweepDeterminism(t *testing.T) {
	cfg := Config{Seed: 33, SampleN: 10}
	seqCfg := cfg
	seqCfg.Workers = 1
	parCfg := cfg
	parCfg.Parallelism = runtime.GOMAXPROCS(0)

	seq := normalize(Records(Evaluate(seqCfg, apps.Extended())))
	par := normalize(Records(Evaluate(parCfg, apps.Extended())))
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("parallel extended sweep diverged from sequential:\nseq: %+v\npar: %+v", seq, par)
	}
	ts, tp := report.TableExtended(apps.Extended(), seq), report.TableExtended(apps.Extended(), par)
	if ts != tp {
		t.Errorf("extended table rows differ:\n%s\nvs\n%s", ts, tp)
	}
}
