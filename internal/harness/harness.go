// Package harness orchestrates the paper's full evaluation: it runs the
// DIODE pipeline over every benchmark application on a worker pool (the §4
// work-queue role), optionally runs the §5.4 same-path experiment and the
// §5.5/§5.6 success-rate experiments, and produces the records the table
// renderers consume.
package harness

import (
	"fmt"

	"diode/internal/apps"
	"diode/internal/bv"
	"diode/internal/core"
	"diode/internal/queue"
	"diode/internal/report"
)

// Config controls an evaluation sweep.
type Config struct {
	// Seed seeds every engine (one per application, offset by index).
	Seed int64
	// SampleN is the number of generated inputs per success-rate experiment
	// (the paper uses 200). Zero disables the experiments.
	SampleN int
	// SamePath enables the §5.4 same-path satisfiability experiment.
	SamePath bool
	// Workers bounds evaluation parallelism (one application per worker).
	// Zero means one worker per application.
	Workers int
	// Parallelism bounds concurrent site hunts *within* each application
	// (the scheduler's worker pool), so a sweep runs apps × sites
	// concurrently. Zero means sequential hunts; verdicts are identical at
	// any setting thanks to per-site seed derivation.
	Parallelism int
	// Engine carries additional engine options (ablation hooks); Seed and
	// Parallelism are overridden per application.
	Engine core.Options
}

// AppOutcome bundles an application's engine result with its render record.
type AppOutcome struct {
	App    *apps.App
	Result *core.AppResult
	Record *report.AppRecord
	Err    error
}

// EvaluateAll runs the configured evaluation over every benchmark
// application and returns per-application outcomes in table order.
func EvaluateAll(cfg Config) []AppOutcome {
	return Evaluate(cfg, apps.All())
}

// Evaluate runs the configured evaluation over the given applications.
func Evaluate(cfg Config, list []*apps.App) []AppOutcome {
	workers := cfg.Workers
	if workers == 0 {
		workers = len(list)
	}
	return queue.Map(workers, indexed(list), func(it item) AppOutcome {
		return evaluateApp(cfg, it.app, cfg.Seed+int64(it.idx))
	})
}

type item struct {
	idx int
	app *apps.App
}

func indexed(list []*apps.App) []item {
	out := make([]item, len(list))
	for i, a := range list {
		out[i] = item{idx: i, app: a}
	}
	return out
}

func evaluateApp(cfg Config, app *apps.App, seed int64) AppOutcome {
	opts := cfg.Engine
	opts.Seed = seed
	opts.Parallelism = cfg.Parallelism
	sched := core.NewScheduler(app, opts)
	res, err := sched.RunAll()
	if err != nil {
		return AppOutcome{App: app, Err: fmt.Errorf("harness: %s: %w", app.Short, err)}
	}
	rec := report.FromResult(res)
	experiments := make([]func(), 0, len(res.Sites))
	for _, sr := range res.Sites {
		sr, srec := sr, rec.SiteFor(sr.Target.Site)
		if !cfg.SamePath && (cfg.SampleN == 0 || sr.Verdict != core.VerdictExposed) {
			continue
		}
		experiments = append(experiments, func() {
			// Experiments run on a hunter seeded like the site's hunt, so
			// rates are reproducible and independent of experiment order. All
			// hunters of one application execute the app's shared compiled
			// program (apps.App.Compiled) on private machines, so a sweep at
			// any Config.Parallelism compiles each guest exactly once.
			hunter := core.NewHunter(app, opts.ForSite(sr.Target.Site))
			if cfg.SamePath {
				srec.SamePathSat = hunter.SamePathSatisfiable(sr.Target).String()
			}
			if cfg.SampleN > 0 && sr.Verdict == core.VerdictExposed {
				srec.TargetOnly = successRate(hunter, sr, sr.Target.Beta, cfg.SampleN)
				// The paper only runs the enforced experiment when the
				// target-alone rate is low (§5.6): skip it when the majority of
				// target-only inputs already trigger.
				if sr.EnforcedCount() > 0 && srec.TargetOnly.Hits*2 < srec.TargetOnly.Total {
					srec.TargetEnforced = successRate(hunter, sr, core.EnforcedConstraint(sr), cfg.SampleN)
				}
			}
		})
	}
	queue.Each(max(cfg.Parallelism, 1), experiments)
	return AppOutcome{App: app, Result: res, Record: rec}
}

// successRate runs one §5.5/§5.6 experiment and packages the result as a
// render-ready Rate, bracketing the hunter's solver stats so generation
// failures for this experiment are carried into the record (and from there
// into the table output's debugging column).
func successRate(hunter *core.Hunter, sr *core.SiteResult, constraint *bv.Bool, n int) report.Rate {
	before := hunter.SolverStats().GenFailures
	hits, total := hunter.SuccessRate(sr.Target, constraint, n)
	return report.Rate{
		Hits:     hits,
		Total:    total,
		Failures: hunter.SolverStats().GenFailures - before,
	}
}

// Records extracts the render records from a sweep, skipping failures.
func Records(outcomes []AppOutcome) []*report.AppRecord {
	var recs []*report.AppRecord
	for _, o := range outcomes {
		if o.Err == nil {
			recs = append(recs, o.Record)
		}
	}
	return recs
}
