// Package harness orchestrates the paper's full evaluation: it plans the
// sweep — every benchmark application's per-site hunts, the §5.4 same-path
// experiment and the §5.5/§5.6 success-rate experiments — as dispatch Jobs,
// runs them on a Backend (in-process pool or spawned worker processes; the §4
// work-queue role), and folds the streamed Results into the records the table
// renderers consume. Verdicts and rates are a pure function of the job
// records, so every backend and worker count renders byte-identical tables.
package harness

import (
	"context"
	"fmt"
	"time"

	"diode/internal/apps"
	"diode/internal/core"
	"diode/internal/discover"
	"diode/internal/dispatch"
	"diode/internal/queue"
	"diode/internal/report"
)

// Config controls an evaluation sweep.
type Config struct {
	// Seed is the run seed. Each application derives its own base seed as
	// core.SiteSeed(Seed, app.Short) — the same FNV derivation the Scheduler
	// uses per site — so an application's verdicts do not depend on which
	// other applications are in the sweep or in what order they appear.
	Seed int64
	// SampleN is the number of generated inputs per success-rate experiment
	// (the paper uses 200). Zero disables the experiments.
	SampleN int
	// SamePath enables the §5.4 same-path satisfiability experiment.
	SamePath bool
	// Workers bounds analysis parallelism and sizes the default Local
	// backend (see Backend). Zero means one worker per application.
	Workers int
	// Parallelism multiplies the default Local backend's pool so a sweep
	// runs apps × sites concurrently, matching the pre-dispatch scheduler
	// behavior. Verdicts are identical at any setting.
	Parallelism int
	// Arith extends the sweep to the discovered arith-node surface: after
	// the alloc waves, every discovered arith site is hunted end-to-end via
	// the probe transformation (dispatch runs the pipeline on the
	// probe-instrumented program). Sites the static triage proves safe are
	// pre-folded as unsatisfiable without planning a job — unless
	// Engine.NoTriage, which hunts them all. Arith outcomes are reported
	// separately (AppOutcome.Arith) and never enter the curated tables.
	Arith bool
	// Engine carries additional engine options (ablation hooks); Seed is
	// derived per job.
	Engine core.Options
	// Backend executes the planned jobs. Nil means a dispatch.Local pool
	// sized Workers × Parallelism (with the zero-value defaults above).
	Backend dispatch.Backend
	// Sink receives progress events from the default Local backend. It is
	// ignored when Backend is set — construct that backend with its own
	// sink.
	Sink dispatch.Sink
	// Cache is the job cache shared by the planner's in-process analysis
	// and the default Local backend; pass the same cache to repeated
	// Evaluate calls to make warm sweeps near-free (zero Analyzer runs,
	// zero hunts). Nil means a fresh cache built from CacheDir / NoCache
	// per evaluation. It is not handed to an explicitly configured Backend
	// — construct that backend with its own cache settings (the planner
	// still analyzes through it in-process).
	Cache *dispatch.JobCache
	// CacheDir enables the on-disk result store when Cache is nil.
	CacheDir string
	// NoCache disables result caching when Cache is nil (analysis is still
	// memoized within the evaluation).
	NoCache bool
}

// backend resolves the configured or default backend; the default Local
// pool shares the evaluation's job cache, so the planner's analysis and the
// pool's job execution never derive the same targets twice.
func (cfg Config) backend(apps int, jc *dispatch.JobCache) dispatch.Backend {
	if cfg.Backend != nil {
		return cfg.Backend
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = apps
	}
	sites := cfg.Parallelism
	if sites < 1 {
		sites = 1
	}
	return &dispatch.Local{Workers: workers * sites, Sink: cfg.Sink, Cache: jc}
}

// ArithSite is the outcome of one arith-site hunt in a Config.Arith sweep.
type ArithSite struct {
	// Site is the arith site's discovery record (with triage annotations
	// unless the sweep ran under NoTriage).
	Site discover.Site
	// Verdict is the hunt verdict. Pruned sites read unsatisfiable.
	Verdict core.Verdict
	// ErrorType is set for exposed sites.
	ErrorType string
	// Pruned reports the site was folded from its safe triage verdict
	// without planning a job.
	Pruned bool
	// Err reports a site whose probe hunt could not run — typically an
	// arith node the seed input never reaches, which the probe pipeline
	// surfaces as a missing target site. Arith errors are per-site and
	// deliberately do not fail the application's sweep.
	Err string
}

// AppOutcome bundles an application's engine result with its render record.
type AppOutcome struct {
	App    *apps.App
	Result *core.AppResult
	Record *report.AppRecord
	// Arith holds the extended arith-surface outcomes of a Config.Arith
	// sweep, in discovery order; nil otherwise.
	Arith []ArithSite
	Err   error
}

// EvaluateAll runs the configured evaluation over every benchmark
// application and returns per-application outcomes in table order.
func EvaluateAll(cfg Config) []AppOutcome {
	return Evaluate(cfg, apps.All())
}

// Evaluate runs the configured evaluation over the given applications.
func Evaluate(cfg Config, list []*apps.App) []AppOutcome {
	return EvaluateContext(context.Background(), cfg, list)
}

// appPlan is the planner's working state for one application: the locally
// analyzed targets (the job planner needs the site list and the folder needs
// the Targets for reconstructed results) plus the folded outputs.
type appPlan struct {
	app      *apps.App
	seed     int64 // per-app base seed; hunt seeds derive per site from it
	targets  []*core.Target
	analysis time.Duration
	err      error

	result *core.AppResult
	record *report.AppRecord
	arith  []ArithSite
}

// siteRef addresses one site of one planned application.
type siteRef struct {
	plan *appPlan
	site int
}

// EvaluateContext plans the sweep as dispatch jobs, runs them on the
// configured backend in three waves — hunts; same-path + target-only rates;
// enforced rates (which depend on the target-only outcome, §5.6) — and folds
// the results. On cancellation it returns promptly with partial outcomes:
// folded sites keep their verdicts, unfinished sites read as unknown with
// empty experiment fields, and ctx.Err() tells the caller the sweep was cut
// short.
func EvaluateContext(ctx context.Context, cfg Config, list []*apps.App) []AppOutcome {
	jc := cfg.Cache
	if jc == nil {
		jc = dispatch.NewJobCache(dispatch.CacheConfig{Dir: cfg.CacheDir, NoResults: cfg.NoCache})
	}
	backend := cfg.backend(len(list), jc)
	engineOpts := dispatch.OptionsFrom(cfg.Engine)
	analysisWorkers := cfg.Workers
	if analysisWorkers <= 0 {
		analysisWorkers = len(list)
	}

	// Stages 1–3 run in-process, through the job cache: the planner needs
	// each application's site list to cut per-site jobs. Analysis ignores
	// the per-app seed (it travels on the jobs), so the cache entry the
	// planner warms here is the one the default Local backend's jobs hit —
	// and a shared cfg.Cache serves a repeated sweep without re-analyzing.
	// Out-of-process workers still re-derive analysis from the job records
	// alone (or their own shared cache directory).
	plans := queue.Map(analysisWorkers, list, func(app *apps.App) *appPlan {
		p := &appPlan{app: app, seed: core.SiteSeed(cfg.Seed, app.Short)}
		start := time.Now()
		p.targets, p.err = jc.Targets(ctx, app, engineOpts)
		p.analysis = time.Since(start)
		if p.err != nil {
			p.err = fmt.Errorf("harness: %s: %w", app.Short, p.err)
		}
		return p
	})

	// Wave 1: one hunt job per (application, site).
	var jobs []dispatch.Job
	var refs []siteRef
	for _, p := range plans {
		if p.err != nil {
			continue
		}
		p.result = &core.AppResult{App: p.app, Analysis: p.analysis, Sites: make([]*core.SiteResult, len(p.targets))}
		for i, t := range p.targets {
			p.result.Sites[i] = &core.SiteResult{Target: t, Verdict: core.VerdictUnknown}
			jobs = append(jobs, dispatch.Job{
				ID:       len(refs),
				Kind:     dispatch.KindHunt,
				App:      p.app.Short,
				Site:     t.Site,
				SiteKind: string(t.Info.Kind),
				SitePath: t.Info.Path,
				Seed:     core.SiteSeed(p.seed, t.Site),
				Opts:     engineOpts,
			})
			refs = append(refs, siteRef{plan: p, site: i})
		}
	}
	for _, res := range runWave(ctx, backend, jobs) {
		ref := refs[res.JobID]
		if res.Err != "" {
			if ref.plan.err == nil {
				ref.plan.err = fmt.Errorf("harness: %s: %s", ref.plan.app.Short, res.Err)
			}
			continue
		}
		sr := ref.plan.result.Sites[ref.site]
		verdict, _ := res.CoreVerdict()
		sr.Verdict = verdict
		sr.Input = res.Input
		sr.ErrorType = res.ErrorType
		sr.Enforced = res.Enforced
		sr.Runs = res.Runs
		sr.Discovery = time.Duration(res.DiscoveryMS) * time.Millisecond
	}
	for _, p := range plans {
		if p.err == nil && p.result != nil {
			p.record = report.FromResult(p.result)
		}
	}

	// Wave 2: the §5.4 same-path experiment for every site, and the §5.5
	// target-only success rate for exposed sites. Experiment jobs carry the
	// same derived seed as the site's hunt, so rates are reproducible and
	// independent of experiment placement.
	if ctx.Err() == nil && (cfg.SamePath || cfg.SampleN > 0) {
		jobs, refs = jobs[:0], refs[:0]
		for _, p := range plans {
			if p.err != nil {
				continue
			}
			for i, t := range p.targets {
				seed := core.SiteSeed(p.seed, t.Site)
				if cfg.SamePath {
					jobs = append(jobs, dispatch.Job{
						ID: len(refs), Kind: dispatch.KindSamePath,
						App: p.app.Short, Site: t.Site,
						SiteKind: string(t.Info.Kind), SitePath: t.Info.Path,
						Seed: seed, Opts: engineOpts,
					})
					refs = append(refs, siteRef{plan: p, site: i})
				}
				if cfg.SampleN > 0 && p.result.Sites[i].Verdict == core.VerdictExposed {
					jobs = append(jobs, dispatch.Job{
						ID: len(refs), Kind: dispatch.KindSuccessRate,
						App: p.app.Short, Site: t.Site,
						SiteKind: string(t.Info.Kind), SitePath: t.Info.Path,
						Seed:    seed,
						SampleN: cfg.SampleN, Opts: engineOpts,
					})
					refs = append(refs, siteRef{plan: p, site: i})
				}
			}
		}
		for _, res := range runWave(ctx, backend, jobs) {
			ref := refs[res.JobID]
			srec := ref.plan.record.SiteFor(ref.plan.targets[ref.site].Site)
			switch {
			case res.Err != "":
				if ref.plan.err == nil {
					ref.plan.err = fmt.Errorf("harness: %s: %s", ref.plan.app.Short, res.Err)
				}
			case res.Kind == dispatch.KindSamePath:
				srec.SamePathSat = res.SamePathSat
			default:
				srec.TargetOnly = report.Rate{Hits: res.Hits, Total: res.Total, Failures: res.GenFailures}
			}
		}
	}

	// Wave 3: the §5.6 enforced-constraint success rate. The paper only runs
	// it when enforcement did work and the target-alone rate is low, so this
	// wave is planned from wave 2's folded results.
	if ctx.Err() == nil && cfg.SampleN > 0 {
		jobs, refs = jobs[:0], refs[:0]
		for _, p := range plans {
			if p.err != nil {
				continue
			}
			for i, t := range p.targets {
				sr := p.result.Sites[i]
				srec := p.record.SiteFor(t.Site)
				if sr.Verdict != core.VerdictExposed || sr.EnforcedCount() == 0 ||
					srec.TargetOnly.Hits*2 >= srec.TargetOnly.Total {
					continue
				}
				jobs = append(jobs, dispatch.Job{
					ID: len(refs), Kind: dispatch.KindSuccessRate,
					App: p.app.Short, Site: t.Site,
					SiteKind: string(t.Info.Kind), SitePath: t.Info.Path,
					Seed:    core.SiteSeed(p.seed, t.Site),
					SampleN: cfg.SampleN, Enforced: sr.Enforced, Opts: engineOpts,
				})
				refs = append(refs, siteRef{plan: p, site: i})
			}
		}
		for _, res := range runWave(ctx, backend, jobs) {
			ref := refs[res.JobID]
			if res.Err != "" {
				if ref.plan.err == nil {
					ref.plan.err = fmt.Errorf("harness: %s: %s", ref.plan.app.Short, res.Err)
				}
				continue
			}
			srec := ref.plan.record.SiteFor(ref.plan.targets[ref.site].Site)
			srec.TargetEnforced = report.Rate{Hits: res.Hits, Total: res.Total, Failures: res.GenFailures}
		}
	}

	// Arith wave: the extended hunt surface. Every discovered arith site is
	// either pre-folded from its safe triage verdict (no job — this is the
	// pruning the triage pays for) or hunted via the probe transformation.
	// Per-site failures stay on the ArithSite: an arith node the seed never
	// reaches is an expected outcome of sweeping the full static surface,
	// not an application failure.
	if ctx.Err() == nil && cfg.Arith {
		jobs, refs = jobs[:0], refs[:0]
		for _, p := range plans {
			if p.err != nil {
				continue
			}
			sites, err := arithSites(p.app, cfg.Engine.NoTriage)
			if err != nil {
				p.err = fmt.Errorf("harness: %s: %w", p.app.Short, err)
				continue
			}
			p.arith = make([]ArithSite, len(sites))
			for i, s := range sites {
				p.arith[i] = ArithSite{Site: s, Verdict: core.VerdictUnknown}
				if !cfg.Engine.NoTriage && s.Triage == discover.TriageSafe {
					p.arith[i].Verdict = core.VerdictUnsat
					p.arith[i].Pruned = true
					continue
				}
				jobs = append(jobs, dispatch.Job{
					ID:       len(refs),
					Kind:     dispatch.KindHunt,
					App:      p.app.Short,
					Site:     s.Name,
					SiteKind: string(s.Kind),
					SitePath: s.Path,
					Seed:     core.SiteSeed(p.seed, s.Name),
					Opts:     engineOpts,
				})
				refs = append(refs, siteRef{plan: p, site: i})
			}
		}
		for _, res := range runWave(ctx, backend, jobs) {
			ref := refs[res.JobID]
			as := &ref.plan.arith[ref.site]
			if res.Err != "" {
				as.Err = res.Err
				continue
			}
			verdict, _ := res.CoreVerdict()
			as.Verdict = verdict
			as.ErrorType = res.ErrorType
		}
	}

	outcomes := make([]AppOutcome, len(plans))
	for i, p := range plans {
		if p.err != nil {
			outcomes[i] = AppOutcome{App: p.app, Err: p.err}
			continue
		}
		outcomes[i] = AppOutcome{App: p.app, Result: p.result, Record: p.record, Arith: p.arith}
	}
	return outcomes
}

// arithSites lists an application's discovered arith sites, triaged unless
// the sweep opts out.
func arithSites(app *apps.App, noTriage bool) ([]discover.Site, error) {
	var sites []discover.Site
	var err error
	if noTriage {
		sites, err = app.Discovered()
	} else {
		sites, err = app.Triaged()
	}
	if err != nil {
		return nil, err
	}
	var out []discover.Site
	for _, s := range sites {
		if s.Kind == discover.KindArith {
			out = append(out, s)
		}
	}
	return out, nil
}

// runWave runs one job wave on the backend and returns the streamed results
// (any order; callers resolve by JobID). A backend setup failure is folded
// into per-job error results so the sweep degrades instead of panicking.
func runWave(ctx context.Context, backend dispatch.Backend, jobs []dispatch.Job) []dispatch.Result {
	if len(jobs) == 0 {
		return nil
	}
	results, err := dispatch.Collect(ctx, backend, jobs)
	if err != nil && ctx.Err() == nil {
		results = results[:0]
		for _, j := range jobs {
			results = append(results, dispatch.Result{
				JobID: j.ID, Kind: j.Kind, App: j.App, Site: j.Site, Err: err.Error(),
			})
		}
	}
	return results
}

// Records extracts the render records from a sweep, skipping failures.
func Records(outcomes []AppOutcome) []*report.AppRecord {
	var recs []*report.AppRecord
	for _, o := range outcomes {
		if o.Err == nil {
			recs = append(recs, o.Record)
		}
	}
	return recs
}
