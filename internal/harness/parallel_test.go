package harness

import (
	"reflect"
	"runtime"
	"testing"

	"diode/internal/apps"
	"diode/internal/report"
)

// normalize zeroes the wall-clock fields of a record set so two sweeps can
// be compared for semantic equality (times legitimately differ run to run).
func normalize(recs []*report.AppRecord) []*report.AppRecord {
	out := make([]*report.AppRecord, len(recs))
	for i, r := range recs {
		c := *r
		c.AnalysisMS = 0
		c.Sites = append([]report.SiteRecord(nil), r.Sites...)
		for j := range c.Sites {
			c.Sites[j].DiscoveryMS = 0
		}
		out[i] = &c
	}
	return out
}

// TestParallelSweepDeterminism is the end-to-end acceptance test: a fully
// parallel sweep (apps × sites concurrent, experiments included) must
// produce the same Table 1/Table 2 rows as a sequential one for the same
// seed — verdicts, enforced counts, error types and success rates all equal.
func TestParallelSweepDeterminism(t *testing.T) {
	apps2 := []*apps.App{}
	for _, short := range []string{"vlc", "dillo"} {
		a, err := apps.ByName(short)
		if err != nil {
			t.Fatal(err)
		}
		apps2 = append(apps2, a)
	}
	cfg := Config{Seed: 33, SampleN: 10, SamePath: true}
	seqCfg := cfg
	seqCfg.Workers = 1
	parCfg := cfg
	parCfg.Parallelism = runtime.GOMAXPROCS(0)

	seq := normalize(Records(Evaluate(seqCfg, apps2)))
	par := normalize(Records(Evaluate(parCfg, apps2)))
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("parallel sweep diverged from sequential:\nseq: %+v\npar: %+v", seq, par)
	}
	if t1s, t1p := report.Table1(apps2, seq), report.Table1(apps2, par); t1s != t1p {
		t.Errorf("Table 1 rows differ:\n%s\nvs\n%s", t1s, t1p)
	}
	if t2s, t2p := report.Table2(apps2, seq), report.Table2(apps2, par); t2s != t2p {
		t.Errorf("Table 2 rows differ:\n%s\nvs\n%s", t2s, t2p)
	}
}
