package harness

import (
	"testing"

	"diode/internal/apps"
)

// TestClassificationStableAcrossSeeds runs the full paper sweep at several
// seeds: the Table 1 classification must not depend on the random draws.
func TestClassificationStableAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep")
	}
	for _, seed := range []int64{1, 21, 77, 1234} {
		outcomes := Evaluate(Config{Seed: seed}, apps.Paper())
		var exposed, unsat, prevented int
		for _, o := range outcomes {
			if o.Err != nil {
				t.Fatal(o.Err)
			}
			for _, sr := range o.Result.Sites {
				switch sr.Verdict.Class() {
				case apps.ClassExposed:
					exposed++
				case apps.ClassUnsat:
					unsat++
				default:
					prevented++
				}
			}
		}
		if exposed != 14 || unsat != 17 || prevented != 9 {
			t.Errorf("seed %d: classification %d/%d/%d, paper: 14/17/9",
				seed, exposed, unsat, prevented)
		}
	}
}
