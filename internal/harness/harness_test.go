package harness

import (
	"testing"

	"diode/internal/apps"
	"diode/internal/core"
)

// TestEvaluateClassification runs the five-application paper sweep (Table 1)
// through the harness and checks the totals against the paper.
func TestEvaluateClassification(t *testing.T) {
	outcomes := Evaluate(Config{Seed: 21}, apps.Paper())
	if len(outcomes) != 5 {
		t.Fatalf("%d outcomes, want 5", len(outcomes))
	}
	var exposed, unsat, prevented int
	for _, o := range outcomes {
		if o.Err != nil {
			t.Fatal(o.Err)
		}
		for _, sr := range o.Result.Sites {
			switch sr.Verdict.Class() {
			case apps.ClassExposed:
				exposed++
			case apps.ClassUnsat:
				unsat++
			default:
				prevented++
			}
		}
	}
	if exposed != 14 || unsat != 17 || prevented != 9 {
		t.Fatalf("classification %d/%d/%d, paper: 14/17/9", exposed, unsat, prevented)
	}
	if recs := Records(outcomes); len(recs) != 5 {
		t.Fatalf("records = %d", len(recs))
	}
}

// TestEvaluateWithExperiments runs one app with small sampling budgets and
// checks the experiment fields are populated.
func TestEvaluateWithExperiments(t *testing.T) {
	app, err := apps.ByName("vlc")
	if err != nil {
		t.Fatal(err)
	}
	outcomes := Evaluate(Config{Seed: 5, SampleN: 20, SamePath: true}, []*apps.App{app})
	if outcomes[0].Err != nil {
		t.Fatal(outcomes[0].Err)
	}
	rec := outcomes[0].Record
	for _, s := range rec.Sites {
		if s.Class != apps.ClassExposed.String() {
			continue
		}
		if s.TargetOnly.Total == 0 {
			t.Errorf("%s: target-only experiment not run", s.Site)
		}
		if s.SamePathSat == "" {
			t.Errorf("%s: same-path experiment not run", s.Site)
		}
	}
}

// TestSuccessRateBimodality reproduces §5.5's core observation on VLC with a
// reduced sample count: the check-free site (block.c@54) triggers on every
// sampled input; the check-guarded site (messages.c@355) triggers on few or
// none.
func TestSuccessRateBimodality(t *testing.T) {
	app, err := apps.ByName("vlc")
	if err != nil {
		t.Fatal(err)
	}
	eng := core.New(app, core.Options{Seed: 17})
	targets, err := eng.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	const n = 40
	for _, tg := range targets {
		switch tg.Site {
		case "vlc:block.c@54":
			hits, total := eng.SuccessRate(tg, tg.Beta, n)
			if total == 0 || hits*10 < total*9 {
				t.Errorf("block.c@54: %d/%d, expected ≈all to trigger (no checks)", hits, total)
			}
		case "vlc:messages.c@355":
			hits, total := eng.SuccessRate(tg, tg.Beta, n)
			if total == 0 {
				t.Fatal("messages.c@355: no models sampled")
			}
			if hits*2 > total {
				t.Errorf("messages.c@355: %d/%d, expected a minority to trigger (sanity checks)", hits, total)
			}
		}
	}
}
