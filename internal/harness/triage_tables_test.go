package harness

import (
	"testing"

	"diode/internal/apps"
	"diode/internal/core"
	"diode/internal/report"
)

// renderTables runs the full-suite sweep at one seed and renders the three
// curated tables with wall-clock fields zeroed (analysis and discovery
// durations are the only non-deterministic bytes in the output).
func renderTables(t *testing.T, noTriage bool) [3]string {
	t.Helper()
	outcomes := EvaluateAll(Config{Seed: 21, Engine: core.Options{NoTriage: noTriage}})
	for _, o := range outcomes {
		if o.Err != nil {
			t.Fatal(o.Err)
		}
	}
	recs := Records(outcomes)
	for _, rec := range recs {
		rec.AnalysisMS = 0
		for i := range rec.Sites {
			rec.Sites[i].DiscoveryMS = 0
		}
	}
	return [3]string{
		report.Table1(apps.Paper(), recs),
		report.Table2(apps.Paper(), recs),
		report.TableExtended(apps.Extended(), recs),
	}
}

// TestTablesByteIdenticalUnderTriage pins the tentpole's no-regression
// guarantee: enabling the static triage must not change a single byte of
// the curated Table 1, Table 2 or extended-suite table at the same seed.
// The triage only short-circuits must-overflow sites (witnessed by a real
// seed execution) and safe arith sites (outside the curated alloc tables);
// safe alloc sites deliberately still hunt, because their curated verdicts
// distinguish unsatisfiable from sanity-prevented.
func TestTablesByteIdenticalUnderTriage(t *testing.T) {
	withTriage := renderTables(t, false)
	withoutTriage := renderTables(t, true)
	names := [3]string{"Table 1", "Table 2", "extended table"}
	for i := range names {
		if withTriage[i] != withoutTriage[i] {
			t.Errorf("%s differs with triage enabled\nwith:\n%s\nwithout:\n%s",
				names[i], withTriage[i], withoutTriage[i])
		}
	}
}
