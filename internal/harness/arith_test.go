package harness

import (
	"context"
	"strings"
	"testing"

	"diode/internal/apps"
	"diode/internal/core"
	"diode/internal/discover"
	"diode/internal/dispatch"
)

// TestArithHuntPerApp is the acceptance test for the extended arith-hunt
// surface: for every benchmark application, at least one discovered arith
// site — one the static triage could not dismiss — is hunted end-to-end
// through the probe pipeline, producing a definite verdict from the
// statically derived overflow constraint at the arith node.
//
// Site selection is deterministic and budget-aware: the first non-safe
// multiplication site in discovery order (falling back to the first
// non-safe arith site of any operator). Multiplications overflow readily,
// so the solver finds a model in milliseconds; hard-unsatisfiable addition
// constraints can take the solver tens of seconds to certify, which is
// real behavior the sweep tolerates but a unit test should not pay for.
func TestArithHuntPerApp(t *testing.T) {
	ctx := context.Background()
	jc := dispatch.NewJobCache(dispatch.CacheConfig{})
	for _, app := range apps.All() {
		app := app
		t.Run(app.Short, func(t *testing.T) {
			sites, err := app.Triaged()
			if err != nil {
				t.Fatal(err)
			}
			best := discover.Site{}
			for _, s := range sites {
				if s.Kind != discover.KindArith || s.Triage == discover.TriageSafe {
					continue
				}
				if best.Name == "" {
					best = s
				}
				if strings.HasSuffix(s.Name, "@mul") {
					best = s
					break
				}
			}
			if best.Name == "" {
				t.Fatalf("no non-safe arith site in %s", app.Short)
			}
			job := dispatch.Job{
				Kind: dispatch.KindHunt, App: app.Short,
				Site: best.Name, SiteKind: string(best.Kind), SitePath: best.Path,
				Seed: core.SiteSeed(21, best.Name),
			}
			res, err := dispatch.Execute(ctx, job, jc, nil)
			if err != nil {
				t.Fatal(err)
			}
			if res.Err != "" {
				t.Fatalf("site %s: %s", best.Name, res.Err)
			}
			if _, ok := res.CoreVerdict(); !ok {
				t.Fatalf("site %s: unparseable verdict %q", best.Name, res.Verdict)
			}
			t.Logf("site %s: %s %s", best.Name, res.Verdict, res.ErrorType)
		})
	}
}

// TestArithPruneNeverMasksExposure is the prune-parity check: every arith
// site the triage prunes (statically safe, folded to unsatisfiable without
// dispatching a hunt) is re-hunted here under the NoTriage ablation, and the
// full hunt must never expose an overflow at it. Equality of verdict labels
// is deliberately NOT required — β over-approximates the runtime sanity
// checks, so a full hunt may certify a safe site as sanity-prevented (or
// give up with unknown) where the static certificate says unsatisfiable;
// all of those agree on the property the prune asserts: not exposable.
//
// Two applications keep the NoTriage wave affordable (cwebp's non-safe adds
// cost the solver minutes); the per-app site mix still covers both verdict
// divergence cases observed in practice.
func TestArithPruneNeverMasksExposure(t *testing.T) {
	for _, short := range []string{"gifview", "tifthumb"} {
		short := short
		t.Run(short, func(t *testing.T) {
			a, err := apps.ByName(short)
			if err != nil {
				t.Fatal(err)
			}
			on := Evaluate(Config{Seed: 21, Arith: true}, []*apps.App{a})
			off := Evaluate(Config{Seed: 21, Arith: true, Engine: core.Options{NoTriage: true}}, []*apps.App{a})
			if on[0].Err != nil || off[0].Err != nil {
				t.Fatal(on[0].Err, off[0].Err)
			}
			if len(on[0].Arith) != len(off[0].Arith) {
				t.Fatalf("arith site count differs: %d with triage, %d without", len(on[0].Arith), len(off[0].Arith))
			}
			pruned := 0
			for i, x := range on[0].Arith {
				y := off[0].Arith[i]
				if x.Site.Name != y.Site.Name {
					t.Fatalf("site order differs at %d: %s vs %s", i, x.Site.Name, y.Site.Name)
				}
				if !x.Pruned {
					if x.Verdict != y.Verdict {
						t.Errorf("%s: unpruned verdict changed under ablation: %s vs %s", x.Site.Name, x.Verdict, y.Verdict)
					}
					continue
				}
				pruned++
				if x.Verdict != core.VerdictUnsat {
					t.Errorf("%s: pruned site carries verdict %s, want unsatisfiable", x.Site.Name, x.Verdict)
				}
				if y.Verdict == core.VerdictExposed {
					t.Errorf("%s: triage pruned a site the full hunt exposes (unsound safe verdict)", x.Site.Name)
				}
			}
			if pruned == 0 {
				t.Fatalf("%s: no pruned arith sites; the prune path went untested", short)
			}
		})
	}
}
