package harness

import (
	"context"
	"os"
	"reflect"
	"runtime"
	"testing"
	"time"

	"diode/internal/apps"
	"diode/internal/core"
	"diode/internal/dispatch"
	"diode/internal/report"
)

// workerModeEnv switches the test binary into diode-worker mode so the Exec
// backend can run hermetically against this very binary (no separate build).
const workerModeEnv = "DIODE_TEST_WORKER_MODE"

func TestMain(m *testing.M) {
	if os.Getenv(workerModeEnv) == "1" {
		if err := dispatch.WorkerMain(context.Background(), os.Stdin, os.Stdout, dispatch.WorkerConfigFromEnv()); err != nil {
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func testExecBackend(workers int) *dispatch.Exec {
	return &dispatch.Exec{
		Binary:  os.Args[0],
		Env:     []string{workerModeEnv + "=1"},
		Workers: workers,
	}
}

// TestBackendTableEquality is the tentpole acceptance test: the same sweep —
// hunts, same-path and success-rate experiments over paper and extended
// applications — must render byte-identical Table 1/Table 2/extended tables
// from the sequential Local backend, the saturated Local backend, and the
// multi-process Exec backend at several worker counts.
func TestBackendTableEquality(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	list := []*apps.App{}
	for _, short := range []string{"vlc", "dillo", "gifview"} {
		a, err := apps.ByName(short)
		if err != nil {
			t.Fatal(err)
		}
		list = append(list, a)
	}
	base := Config{Seed: 33, SampleN: 10, SamePath: true}

	seqCfg := base
	seqCfg.Workers = 1
	seqCfg.Parallelism = 1
	want := normalize(Records(Evaluate(seqCfg, list)))
	if len(want) != len(list) {
		t.Fatalf("sequential sweep produced %d records, want %d", len(want), len(list))
	}
	wantT1 := report.Table1(list, want)
	wantT2 := report.Table2(list, want)
	wantTE := report.TableExtended(list, want)

	variants := map[string]dispatch.Backend{
		"local-parallel": &dispatch.Local{Workers: runtime.GOMAXPROCS(0)},
		"exec-1":         testExecBackend(1),
		"exec-4":         testExecBackend(4),
	}
	for name, backend := range variants {
		cfg := base
		cfg.Backend = backend
		got := normalize(Records(Evaluate(cfg, list)))
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("%s diverged from sequential local:\nseq: %+v\ngot: %+v", name, want, got)
		}
		if g := report.Table1(list, got); g != wantT1 {
			t.Errorf("%s: Table 1 differs:\n%s\nvs\n%s", name, wantT1, g)
		}
		if g := report.Table2(list, got); g != wantT2 {
			t.Errorf("%s: Table 2 differs:\n%s\nvs\n%s", name, wantT2, g)
		}
		if g := report.TableExtended(list, got); g != wantTE {
			t.Errorf("%s: extended table differs:\n%s\nvs\n%s", name, wantTE, g)
		}
	}
}

// TestHarnessMatchesSchedulerCompat anchors the planner/folder to the
// pre-redesign compat path: for each application, a direct Scheduler.RunAll
// at the harness's derived per-app seed must produce the same verdicts,
// enforced counts and error types the job-based sweep folds into its
// records.
func TestHarnessMatchesSchedulerCompat(t *testing.T) {
	const seed = 21
	list := []*apps.App{}
	for _, short := range []string{"vlc", "tifthumb"} {
		a, err := apps.ByName(short)
		if err != nil {
			t.Fatal(err)
		}
		list = append(list, a)
	}
	outcomes := Evaluate(Config{Seed: seed}, list)
	for _, o := range outcomes {
		if o.Err != nil {
			t.Fatal(o.Err)
		}
		sched := core.NewScheduler(o.App, core.Options{Seed: core.SiteSeed(seed, o.App.Short)})
		want, err := sched.RunAll()
		if err != nil {
			t.Fatal(err)
		}
		if len(want.Sites) != len(o.Result.Sites) {
			t.Fatalf("%s: %d sites vs %d", o.App.Short, len(o.Result.Sites), len(want.Sites))
		}
		for i, sr := range want.Sites {
			got := o.Result.Sites[i]
			if got.Target.Site != sr.Target.Site {
				t.Fatalf("%s: site order diverged: %s vs %s", o.App.Short, got.Target.Site, sr.Target.Site)
			}
			if got.Verdict != sr.Verdict || got.ErrorType != sr.ErrorType ||
				got.EnforcedCount() != sr.EnforcedCount() || string(got.Input) != string(sr.Input) {
				t.Errorf("%s: folded result diverged from scheduler: %+v vs %+v",
					sr.Target.Site, got, sr)
			}
		}
	}
}

// TestEvaluateCancellation checks the sweep-level cancellation contract: a
// context cancelled mid-sweep makes EvaluateContext return promptly with
// partial outcomes instead of running the remaining jobs.
func TestEvaluateCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 1024)
	cfg := Config{
		Seed: 1,
		Sink: func(ev dispatch.Event) {
			if ev.Type == dispatch.EventStarted {
				select {
				case started <- struct{}{}:
				default:
				}
			}
		},
	}
	done := make(chan []AppOutcome, 1)
	go func() { done <- EvaluateContext(ctx, cfg, apps.All()) }()
	<-started // at least one hunt is in flight
	cancel()
	select {
	case outcomes := <-done:
		if len(outcomes) != len(apps.All()) {
			t.Fatalf("%d outcomes, want one per app", len(outcomes))
		}
		var unknown int
		for _, o := range outcomes {
			if o.Err != nil || o.Result == nil {
				continue // analysis itself was cancelled for this app
			}
			for _, sr := range o.Result.Sites {
				if sr.Verdict == core.VerdictUnknown {
					unknown++
				}
			}
		}
		if unknown == 0 {
			t.Error("cancellation left no unfinished sites — sweep was not cut short")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("EvaluateContext did not return after cancellation")
	}
}
