package dispatch

import (
	"context"
	"encoding/json"
	"fmt"

	"diode/internal/apps"
	"diode/internal/core"
	"diode/internal/discover"
)

// flight is the result cache's value type: the Result of one singleflight
// execution, with err non-nil only for a context cancellation mid-run (the
// flight then declines retention — see LRU.Do) and cached marking a Result
// replayed from the on-disk store.
type flight struct {
	res    Result
	err    error
	cached bool
}

// Execute runs one job to completion and is the single executor every
// backend funnels through: the Local backend calls it on pool goroutines,
// WorkerMain calls it inside spawned diode-worker processes. Before
// constructing a Hunter it consults the JobCache — an in-memory hit, a disk
// hit, or a concurrent identical job's flight returns the finished Result
// (marked Cached, with EventCacheHit emitted) without executing anything:
// no analysis, no hunt. The returned error is non-nil only when ctx was
// cancelled before the job finished (the job has no final Result then);
// every other failure — invalid job, unknown application, analysis error,
// missing site — comes back as a Result with Err set, so a backend can keep
// streaming. Error results are never cached.
//
// The sink receives EventStarted before work begins, EventIteration per
// enforcement iteration of a hunt, and EventFinished with the final Result —
// or a single EventCacheHit instead when the result was served from the
// cache (event payloads are valid only for the duration of the callback).
func Execute(ctx context.Context, job Job, jc *JobCache, sink Sink) (Result, error) {
	res := Result{JobID: job.ID, Kind: job.Kind, App: job.App, Site: job.Site}
	if err := job.Validate(); err != nil {
		res.Err = err.Error()
		return res, nil
	}
	if jc == nil {
		jc = NewJobCache(CacheConfig{NoResults: true})
	}
	app, err := jc.App(job.App)
	if err != nil {
		res.Err = err.Error()
		return res, nil
	}
	if jc.results == nil {
		jc.counters.Miss()
		return run(ctx, job, app, jc, sink)
	}

	key := JobKey(app.Fingerprint(), job)
	for {
		v, hit := jc.results.Do(key, func() (any, bool) {
			if payload, ok := jc.lookupDisk(key); ok {
				var r Result
				if json.Unmarshal(payload, &r) == nil && r.Err == "" {
					jc.counters.Hit()
					return flight{res: r, cached: true}, true
				}
				// Decoded garbage behind a valid frame: same defect class as
				// a torn frame, so count it and fall through to executing.
				jc.counters.Corrupt()
			}
			jc.counters.Miss()
			r, err := run(ctx, job, app, jc, sink)
			if err != nil {
				return flight{res: r, err: err}, false
			}
			if r.Err != "" {
				return flight{res: r}, false
			}
			jc.storeDisk(key, r)
			return flight{res: r}, true
		})
		fl := v.(flight)
		if fl.err != nil {
			if ctx.Err() != nil {
				return res, ctx.Err()
			}
			if hit {
				continue // joined a flight whose executor was cancelled; ours is live — retry
			}
			return res, fl.err
		}
		r := fl.res
		// Restamp the batch-local identity: a result replayed from disk (or
		// another flight) carries the producing job's ID.
		r.JobID, r.App, r.Site = job.ID, job.App, job.Site
		if hit && fl.res.Err == "" {
			jc.counters.Hit()
		}
		if (hit || fl.cached) && r.Err == "" {
			r.Cached = true
			sink.emit(Event{Type: EventCacheHit, Job: job, Result: &r})
		}
		return r, nil
	}
}

// run executes the job for real: resolve the analyzed Target through the
// cache, then drive a fresh Hunter. One fresh hunter per job: its private
// solver is seeded by the job's derived seed alone, which is the whole
// determinism story — no state crosses jobs, so placement and order cannot
// matter (and results stay safe to cache by content).
//
// An arith-kind job runs the whole pipeline against the probe-instrumented
// derived application (apps.App.Probe): the probe allocation carries the
// arith site's name, so analysis extracts the overflow constraint at the
// arith node and triggered() observes its wrap. The probe program has its
// own fingerprint, so its analysis and results occupy their own cache
// entries. The resolved Target is re-stamped with the original program's
// site record so the Hunter's triage short-circuits and the reports see the
// arith site, not the synthetic probe allocation.
func run(ctx context.Context, job Job, app *apps.App, jc *JobCache, sink Sink) (Result, error) {
	res := Result{JobID: job.ID, Kind: job.Kind, App: job.App, Site: job.Site}
	execApp := app
	if job.SiteKind == string(discover.KindArith) {
		probe, err := app.Probe(job.Site)
		if err != nil {
			res.Err = err.Error()
			return res, nil
		}
		execApp = probe
	}
	targets, err := jc.Targets(ctx, execApp, job.Opts)
	if err != nil {
		if ctx.Err() != nil {
			return res, ctx.Err()
		}
		res.Err = err.Error()
		return res, nil
	}
	var t *core.Target
	for _, cand := range targets {
		if cand.Site == job.Site {
			t = cand
			break
		}
	}
	if t == nil {
		res.Err = fmt.Sprintf("dispatch: application %q has no target site %q", job.App, job.Site)
		return res, nil
	}
	if execApp != app {
		if info, ok := originalSite(app, job); ok {
			t = t.WithInfo(info)
		}
	}

	sink.emit(Event{Type: EventStarted, Job: job})
	opts := job.Opts.Core(job.Seed)
	if sink != nil && job.Kind == KindHunt {
		opts.Progress = func(i int) {
			sink(Event{Type: EventIteration, Job: job, Iteration: i})
		}
	}
	h := core.NewHunter(execApp, opts)
	switch job.Kind {
	case KindHunt:
		sr := h.HuntContext(ctx, t)
		if ctx.Err() != nil {
			return res, ctx.Err()
		}
		res.Verdict = sr.Verdict.String()
		res.ErrorType = sr.ErrorType
		res.Enforced = sr.Enforced
		res.Runs = sr.Runs
		res.DynamicBranches = t.DynamicBranches
		res.Input = sr.Input
		res.DiscoveryMS = sr.Discovery.Milliseconds()
	case KindSamePath:
		res.SamePathSat = h.SamePathSatisfiable(t).String()
	case KindSuccessRate:
		constraint := core.EnforcedConstraintFor(t, job.Enforced)
		hits, total := h.SuccessRateContext(ctx, t, constraint, job.SampleN)
		if ctx.Err() != nil {
			return res, ctx.Err()
		}
		res.Hits, res.Total = hits, total
		res.GenFailures = h.SolverStats().GenFailures
	}
	res.Stats = h.SolverStats()
	sink.emit(Event{Type: EventFinished, Job: job, Result: &res})
	return res, nil
}

// originalSite resolves the base program's discovery record for a job's site
// — triaged unless the job opts out — for re-stamping probe-program targets.
func originalSite(app *apps.App, job Job) (discover.Site, bool) {
	var sites []discover.Site
	var err error
	if job.Opts.NoTriage {
		sites, err = app.Discovered()
	} else if sites, err = app.Triaged(); err != nil {
		sites, err = app.Discovered()
	}
	if err != nil {
		return discover.Site{}, false
	}
	for _, s := range sites {
		if s.Name == job.Site {
			return s, true
		}
	}
	return discover.Site{}, false
}
