package dispatch

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"diode/internal/apps"
	"diode/internal/core"
)

// Cache memoizes per-application analysis (stages 1–3) across the jobs of one
// worker: every job is per-site, but the Analyzer produces all of an
// application's Targets in one pass, so the first job of an application pays
// for analysis and the rest look their Target up. Analysis output depends on
// the options subset (fuel, compression/relevance ablations), hence the
// composite key. Safe for concurrent use; concurrent first lookups of the
// same key block on one analysis rather than duplicating it.
type Cache struct {
	mu      sync.Mutex
	entries map[cacheKey]*cacheEntry
}

type cacheKey struct {
	app  string
	opts Options
}

type cacheEntry struct {
	mu      sync.Mutex
	app     *apps.App
	targets []*core.Target
	err     error
}

// NewCache returns an empty analysis cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[cacheKey]*cacheEntry)}
}

// Prime seeds the cache with already-computed analysis output, so a caller
// that analyzed an application itself (the harness planner needs the site
// lists before it can cut jobs) does not pay for the backend re-deriving it.
// The targets must come from an Analyzer run at the same options subset;
// they are immutable and shared freely by design.
func (c *Cache) Prime(app *apps.App, opts Options, targets []*core.Target) {
	key := cacheKey{app: app.Short, opts: opts}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; !ok {
		c.entries[key] = &cacheEntry{app: app, targets: targets}
	}
}

// targets resolves the application and returns its analyzed targets,
// analyzing on first use. A cancellation during analysis is returned but not
// memoized, so a later lookup (under a live context) retries — including a
// concurrent waiter whose own context is live while the analyzing goroutine's
// was cancelled (backends and their caches outlive a single Run).
func (c *Cache) targets(ctx context.Context, short string, opts Options) (*apps.App, []*core.Target, error) {
	key := cacheKey{app: short, opts: opts}
	for {
		c.mu.Lock()
		e, ok := c.entries[key]
		if ok {
			c.mu.Unlock()
			e.mu.Lock()
			app, targets, err := e.app, e.targets, e.err
			e.mu.Unlock()
			if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) && ctx.Err() == nil {
				// The goroutine that analyzed had its context cancelled (and
				// deleted the entry before releasing e.mu); ours is live, so
				// retry — the next lookup re-analyzes.
				continue
			}
			return app, targets, err
		}
		e = &cacheEntry{}
		e.mu.Lock()
		c.entries[key] = e
		c.mu.Unlock()

		app, err := apps.ByName(short)
		if err != nil {
			e.err = err
			e.mu.Unlock()
			return nil, nil, err
		}
		e.app = app
		// Analysis ignores the seed; zero keeps the cache key small.
		e.targets, e.err = core.NewAnalyzer(app, opts.Core(0)).AnalyzeContext(ctx)
		if e.err != nil && ctx.Err() != nil {
			c.mu.Lock()
			delete(c.entries, key)
			c.mu.Unlock()
		}
		app, targets, err := e.app, e.targets, e.err
		e.mu.Unlock()
		return app, targets, err
	}
}

// Execute runs one job to completion and is the single executor every
// backend funnels through: the Local backend calls it on pool goroutines,
// WorkerMain calls it inside spawned diode-worker processes. The returned
// error is non-nil only when ctx was cancelled before the job finished (the
// job has no final Result then); every other failure — invalid job, unknown
// application, analysis error, missing site — comes back as a Result with
// Err set, so a backend can keep streaming.
//
// The sink receives EventStarted before work begins, EventIteration per
// enforcement iteration of a hunt, and EventFinished with the final Result
// (valid only for the duration of the callback).
func Execute(ctx context.Context, job Job, cache *Cache, sink Sink) (Result, error) {
	res := Result{JobID: job.ID, Kind: job.Kind, App: job.App, Site: job.Site}
	if err := job.Validate(); err != nil {
		res.Err = err.Error()
		return res, nil
	}
	app, targets, err := cache.targets(ctx, job.App, job.Opts)
	if err != nil {
		if ctx.Err() != nil {
			return res, ctx.Err()
		}
		res.Err = err.Error()
		return res, nil
	}
	var t *core.Target
	for _, cand := range targets {
		if cand.Site == job.Site {
			t = cand
			break
		}
	}
	if t == nil {
		res.Err = fmt.Sprintf("dispatch: application %q has no target site %q", job.App, job.Site)
		return res, nil
	}

	sink.emit(Event{Type: EventStarted, Job: job})
	opts := job.Opts.Core(job.Seed)
	if sink != nil && job.Kind == KindHunt {
		opts.Progress = func(i int) {
			sink(Event{Type: EventIteration, Job: job, Iteration: i})
		}
	}
	// One fresh hunter per job: its private solver is seeded by the job's
	// derived seed alone, which is the whole determinism story — no state
	// crosses jobs, so placement and order cannot matter.
	h := core.NewHunter(app, opts)
	switch job.Kind {
	case KindHunt:
		sr := h.HuntContext(ctx, t)
		if ctx.Err() != nil {
			return res, ctx.Err()
		}
		res.Verdict = sr.Verdict.String()
		res.ErrorType = sr.ErrorType
		res.Enforced = sr.Enforced
		res.Runs = sr.Runs
		res.DynamicBranches = t.DynamicBranches
		res.Input = sr.Input
		res.DiscoveryMS = sr.Discovery.Milliseconds()
	case KindSamePath:
		res.SamePathSat = h.SamePathSatisfiable(t).String()
	case KindSuccessRate:
		constraint := core.EnforcedConstraintFor(t, job.Enforced)
		hits, total := h.SuccessRateContext(ctx, t, constraint, job.SampleN)
		if ctx.Err() != nil {
			return res, ctx.Err()
		}
		res.Hits, res.Total = hits, total
		res.GenFailures = h.SolverStats().GenFailures
	}
	res.Stats = h.SolverStats()
	sink.emit(Event{Type: EventFinished, Job: job, Result: &res})
	return res, nil
}
