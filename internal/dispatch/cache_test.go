package dispatch

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"diode/internal/solver"
)

// optionsKeyFlips maps every dispatch.Options field, by name, to a mutation
// that must change the cache key. TestJobKeySensitivity walks the struct by
// reflection and fails on any field without an entry, and the diodelint
// options-coverage analyzer checks the same property statically — so adding
// an Options field without a flip case here fails both the test run and
// `make lint`.
var optionsKeyFlips = map[string]func(*Options){
	"InitialAttempts":        func(o *Options) { o.InitialAttempts++ },
	"MaxEnforce":             func(o *Options) { o.MaxEnforce++ },
	"Fuel":                   func(o *Options) { o.Fuel++ },
	"SolverMode":             func(o *Options) { o.SolverMode = solver.Mode(1) },
	"OneShotSolver":          func(o *Options) { o.OneShotSolver = true },
	"OneShotSampling":        func(o *Options) { o.OneShotSampling = true },
	"Portfolio":              func(o *Options) { o.Portfolio = 4 },
	"OneShotExecution":       func(o *Options) { o.OneShotExecution = true },
	"DisableCompression":     func(o *Options) { o.DisableCompression = true },
	"DisableRelevanceFilter": func(o *Options) { o.DisableRelevanceFilter = true },
	"NoTriage":               func(o *Options) { o.NoTriage = true },
}

// jobKeyFlips maps every key-bearing dispatch.Job field, by name, to a
// mutation that must change the cache key; jobKeyExcluded lists the fields
// deliberately outside the key, each checked to NOT change it. Every Job
// field must appear in exactly one of the two (enforced below by reflection
// and statically by diodelint).
var jobKeyFlips = map[string]func(*Job){
	"Kind":     func(j *Job) { j.Kind = KindHunt },
	"Site":     func(j *Job) { j.Site = "png.c@126" },
	"SiteKind": func(j *Job) { j.SiteKind = "" },
	"SitePath": func(j *Job) { j.SitePath = "s4" },
	"Seed":     func(j *Job) { j.Seed = 78 },
	"SampleN":  func(j *Job) { j.SampleN = 11 },
	"Enforced": func(j *Job) { j.Enforced = j.Enforced[:1] },
	"Opts":     func(j *Job) { j.Opts.Fuel += 7 },
}

var jobKeyExcluded = map[string]func(*Job){
	"ID":  func(j *Job) { j.ID = 99 },       // batch-local handle
	"App": func(j *Job) { j.App = "other" }, // the fingerprint is the identity
}

// TestJobKeySensitivity checks the cache-key contract: every job field that
// can influence a Result changes the key, and the batch-local ID does not.
// Field coverage is enforced structurally: each field of Options and Job
// must have an entry in the flip tables above.
func TestJobKeySensitivity(t *testing.T) {
	for _, f := range reflect.VisibleFields(reflect.TypeOf(Options{})) {
		if _, ok := optionsKeyFlips[f.Name]; !ok {
			t.Errorf("Options.%s has no flip case in optionsKeyFlips", f.Name)
		}
	}
	for _, f := range reflect.VisibleFields(reflect.TypeOf(Job{})) {
		_, flips := jobKeyFlips[f.Name]
		_, excluded := jobKeyExcluded[f.Name]
		if flips == excluded {
			t.Errorf("Job.%s must be in exactly one of jobKeyFlips / jobKeyExcluded", f.Name)
		}
	}

	base := Job{
		ID: 1, Kind: KindSuccessRate, App: "dillo", Site: "png.c@125",
		SiteKind: "alloc", SitePath: "s3",
		Seed: 77, SampleN: 10, Enforced: []string{"a", "b"},
		Opts: Options{InitialAttempts: 2, MaxEnforce: 3, Fuel: 1000},
	}
	const fp = "0123abcd"
	baseKey := JobKey(fp, base)
	if baseKey != JobKey(fp, base) {
		t.Fatal("JobKey is not deterministic")
	}

	mutate := func(f func(j *Job)) string {
		j := base
		j.Enforced = append([]string(nil), base.Enforced...)
		f(&j)
		return JobKey(fp, j)
	}
	cases := map[string]string{}
	for name, f := range jobKeyFlips {
		cases["job."+name] = mutate(f)
	}
	for name, f := range optionsKeyFlips {
		flip := f
		cases["opts."+name] = mutate(func(j *Job) { flip(&j.Opts) })
	}
	// Order-sensitivity of the enforced-label list, beyond presence.
	cases["job.Enforced-order"] = mutate(func(j *Job) {
		j.Enforced[0], j.Enforced[1] = j.Enforced[1], j.Enforced[0]
	})
	cases["fingerprint"] = JobKey("ffff0000", base)

	seen := map[string]string{baseKey: "base"}
	for name, key := range cases {
		if key == baseKey {
			t.Errorf("%s flip did not change the key", name)
		}
		if prev, dup := seen[key]; dup {
			t.Errorf("%s collides with %s", name, prev)
		}
		seen[key] = name
	}

	// The excluded fields must NOT influence the key: the same content under
	// a different batch ID or registry name must hit.
	for name, f := range jobKeyExcluded {
		if mutate(f) != baseKey {
			t.Errorf("Job.%s leaked into the key; identical content would miss", name)
		}
	}
}

// eventLog is a concurrency-safe sink recorder.
type eventLog struct {
	mu     sync.Mutex
	counts map[EventType]int
}

func newEventLog() *eventLog { return &eventLog{counts: map[EventType]int{}} }

func (l *eventLog) sink() Sink {
	return func(ev Event) {
		l.mu.Lock()
		l.counts[ev.Type]++
		l.mu.Unlock()
	}
}

func (l *eventLog) count(t EventType) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.counts[t]
}

// TestLocalWarmRun checks the warm path on a shared Local backend: a second
// Collect of the same batch executes nothing — every result is served from
// the in-memory cache, marked Cached, byte-identical to the cold run, and
// announced by EventCacheHit instead of the started/finished pair.
func TestLocalWarmRun(t *testing.T) {
	jobs, _ := huntBatch(t, "dillo", 7)
	jc := NewJobCache(CacheConfig{})
	coldLog := newEventLog()
	backend := &Local{Workers: runtime.GOMAXPROCS(0), Cache: jc, Sink: coldLog.sink()}
	cold, err := Collect(context.Background(), backend, jobs)
	if err != nil {
		t.Fatal(err)
	}
	coldStats := jc.Stats()
	if coldStats.Misses != int64(len(jobs)) || coldStats.AnalysisRuns != 1 {
		t.Fatalf("cold stats %+v, want %d misses and 1 analysis run", coldStats, len(jobs))
	}
	if coldLog.count(EventCacheHit) != 0 {
		t.Fatalf("cold run emitted %d cache-hit events", coldLog.count(EventCacheHit))
	}
	for _, r := range cold {
		if r.Cached {
			t.Fatalf("cold result for job %d marked Cached", r.JobID)
		}
	}

	warmLog := newEventLog()
	backend.Sink = warmLog.sink()
	warm, err := Collect(context.Background(), backend, jobs)
	if err != nil {
		t.Fatal(err)
	}
	warmStats := jc.Stats()
	if warmStats.Misses != coldStats.Misses {
		t.Errorf("warm run executed %d jobs, want 0", warmStats.Misses-coldStats.Misses)
	}
	if got := warmStats.Hits - coldStats.Hits; got != int64(len(jobs)) {
		t.Errorf("warm run had %d hits, want %d", got, len(jobs))
	}
	if warmStats.AnalysisRuns != coldStats.AnalysisRuns {
		t.Errorf("warm run re-ran analysis (%d runs)", warmStats.AnalysisRuns)
	}
	if got := warmLog.count(EventCacheHit); got != len(jobs) {
		t.Errorf("warm run emitted %d cache-hit events, want %d", got, len(jobs))
	}
	if got := warmLog.count(EventStarted) + warmLog.count(EventFinished); got != 0 {
		t.Errorf("warm run emitted %d started/finished events, want 0", got)
	}
	for i := range warm {
		if !warm[i].Cached {
			t.Errorf("warm result for job %d not marked Cached", warm[i].JobID)
		}
	}
	a, b := normalizeResults(cold), normalizeResults(warm)
	for i := range b {
		b[i].Cached = false
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("warm results diverged from cold:\ncold: %+v\nwarm: %+v", a, b)
	}
}

// TestSingleflightDedup checks that identical jobs inside one batch share a
// single execution: duplicates either join the in-flight computation or hit
// the completed entry, so exactly one miss is counted and every duplicate's
// result is restamped with its own batch ID.
func TestSingleflightDedup(t *testing.T) {
	jobs, _ := huntBatch(t, "dillo", 3)
	one := jobs[0]
	batch := make([]Job, 4)
	for i := range batch {
		batch[i] = one
		batch[i].ID = i
	}
	jc := NewJobCache(CacheConfig{})
	results, err := Collect(context.Background(), &Local{Workers: 4, Cache: jc}, batch)
	if err != nil {
		t.Fatal(err)
	}
	stats := jc.Stats()
	if stats.Misses != 1 {
		t.Errorf("%d executions for 4 identical jobs, want 1", stats.Misses)
	}
	if stats.Hits != 3 {
		t.Errorf("%d hits, want 3", stats.Hits)
	}
	ids := map[int]bool{}
	for _, r := range results {
		if r.Err != "" {
			t.Fatalf("job %d: %s", r.JobID, r.Err)
		}
		ids[r.JobID] = true
		if r.Verdict != results[0].Verdict {
			t.Errorf("duplicate jobs diverged: %q vs %q", r.Verdict, results[0].Verdict)
		}
	}
	if len(ids) != 4 {
		t.Errorf("results restamped onto %d distinct IDs, want 4", len(ids))
	}
}

// TestDiskCorruptionMidSuite is the resilience acceptance test: entries
// truncated or bit-flipped between runs count as misses with CorruptEntries
// incremented — the affected jobs re-execute to identical results and the
// suite never sees an error.
func TestDiskCorruptionMidSuite(t *testing.T) {
	dir := t.TempDir()
	jobs, _ := huntBatch(t, "dillo", 7)
	if len(jobs) < 3 {
		t.Fatalf("need ≥3 jobs to corrupt a subset, have %d", len(jobs))
	}
	cold, err := Collect(context.Background(),
		&Local{Workers: 2, Cache: NewJobCache(CacheConfig{Dir: dir})}, jobs)
	if err != nil {
		t.Fatal(err)
	}

	var entries []string
	err = filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && filepath.Ext(path) == ".entry" {
			entries = append(entries, path)
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(jobs) {
		t.Fatalf("%d disk entries for %d jobs", len(entries), len(jobs))
	}
	// Truncate one entry and bit-flip another; leave the rest intact.
	if err := os.Truncate(entries[0], 10); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(entries[1])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-2] ^= 0x01
	if err := os.WriteFile(entries[1], data, 0o644); err != nil {
		t.Fatal(err)
	}

	// A fresh process (fresh JobCache, same directory) re-runs the suite.
	jc := NewJobCache(CacheConfig{Dir: dir})
	warm, err := Collect(context.Background(), &Local{Workers: 2, Cache: jc}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	stats := jc.Stats()
	if stats.CorruptEntries != 2 {
		t.Errorf("CorruptEntries = %d, want 2", stats.CorruptEntries)
	}
	if stats.Misses != 2 {
		t.Errorf("Misses = %d, want the 2 corrupted jobs re-executed", stats.Misses)
	}
	if want := int64(len(jobs) - 2); stats.Hits != want {
		t.Errorf("Hits = %d, want %d intact entries served", stats.Hits, want)
	}
	if stats.Stores != 2 {
		t.Errorf("Stores = %d, want the 2 re-executed results re-written", stats.Stores)
	}
	a, b := normalizeResults(cold), normalizeResults(warm)
	for i := range a {
		a[i].Cached, b[i].Cached = false, false
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("results diverged after corruption recovery:\ncold: %+v\nwarm: %+v", a, b)
	}
}

// TestNoResultsDisablesCaching checks -no-cache semantics: every job
// executes every time, nothing is marked Cached, and analysis memoization
// still prevents per-job re-analysis.
func TestNoResultsDisablesCaching(t *testing.T) {
	jobs, _ := huntBatch(t, "dillo", 7)
	jobs = jobs[:3]
	jc := NewJobCache(CacheConfig{NoResults: true})
	backend := &Local{Workers: 2, Cache: jc}
	for round := 1; round <= 2; round++ {
		results, err := Collect(context.Background(), backend, jobs)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range results {
			if r.Cached {
				t.Errorf("round %d: job %d marked Cached under NoResults", round, r.JobID)
			}
		}
		stats := jc.Stats()
		if want := int64(round * len(jobs)); stats.Misses != want {
			t.Errorf("round %d: Misses = %d, want %d", round, stats.Misses, want)
		}
		if stats.Hits != 0 {
			t.Errorf("round %d: Hits = %d, want 0", round, stats.Hits)
		}
		if stats.AnalysisRuns != 1 {
			t.Errorf("round %d: AnalysisRuns = %d, want 1 (memoized)", round, stats.AnalysisRuns)
		}
	}
}

// TestErrorResultsNotCached checks that failure Results never poison the
// cache: a job naming a missing site re-executes on every attempt and is
// never marked Cached.
func TestErrorResultsNotCached(t *testing.T) {
	job := Job{ID: 0, Kind: KindHunt, App: "dillo", Site: "no/such/site@1", Seed: 1}
	jc := NewJobCache(CacheConfig{Dir: t.TempDir()})
	for round := 1; round <= 2; round++ {
		res, err := Execute(context.Background(), job, jc, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Err == "" {
			t.Fatal("expected a missing-site error result")
		}
		if res.Cached {
			t.Errorf("round %d: error result marked Cached", round)
		}
		stats := jc.Stats()
		if want := int64(round); stats.Misses != want {
			t.Errorf("round %d: Misses = %d, want %d (error results re-execute)", round, stats.Misses, want)
		}
		if stats.Hits != 0 || stats.Stores != 0 {
			t.Errorf("round %d: error result cached: %+v", round, stats)
		}
	}
}

// TestExecWarmSharedDir checks the cross-process cache: two Exec runs over a
// shared -cache-dir produce identical results, and the second run's worker
// processes serve every job from disk (all hits, zero misses, cache-hit
// events synthesized in the parent).
func TestExecWarmSharedDir(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	dir := t.TempDir()
	jobs, _ := huntBatch(t, "dillo", 7)

	cold := testExec(2, nil)
	cold.CacheDir = dir
	coldRes, err := Collect(context.Background(), cold, jobs)
	if err != nil {
		t.Fatal(err)
	}
	cs := cold.CacheStats()
	if cs.Misses != int64(len(jobs)) || cs.Stores != int64(len(jobs)) {
		t.Fatalf("cold exec stats %+v, want %d misses and stores", cs, len(jobs))
	}

	warmLog := newEventLog()
	warm := testExec(2, warmLog.sink())
	warm.CacheDir = dir
	warmRes, err := Collect(context.Background(), warm, jobs)
	if err != nil {
		t.Fatal(err)
	}
	ws := warm.CacheStats()
	if ws.Misses != 0 {
		t.Errorf("warm exec executed %d jobs, want 0", ws.Misses)
	}
	if ws.Hits != int64(len(jobs)) {
		t.Errorf("warm exec hits = %d, want %d", ws.Hits, len(jobs))
	}
	if got := warmLog.count(EventCacheHit); got != len(jobs) {
		t.Errorf("parent saw %d cache-hit events, want %d", got, len(jobs))
	}
	if got := warmLog.count(EventFinished); got != 0 {
		t.Errorf("parent saw %d finished events on a fully-cached run, want 0", got)
	}
	a, b := normalizeResults(coldRes), normalizeResults(warmRes)
	for i := range b {
		if !b[i].Cached {
			t.Errorf("warm exec result %d not marked Cached", b[i].JobID)
		}
		b[i].Cached = false
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("warm exec diverged from cold:\ncold: %+v\nwarm: %+v", a, b)
	}
}
