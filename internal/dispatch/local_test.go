package dispatch

import (
	"context"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"diode/internal/apps"
	"diode/internal/core"
)

// huntBatch plans one hunt job per target site of the application, seeded
// exactly as a Scheduler would seed its hunters.
func huntBatch(t *testing.T, short string, seed int64) ([]Job, []*core.Target) {
	t.Helper()
	app, err := apps.ByName(short)
	if err != nil {
		t.Fatal(err)
	}
	targets, err := core.NewAnalyzer(app, core.Options{}).Analyze()
	if err != nil {
		t.Fatal(err)
	}
	jobs := make([]Job, len(targets))
	for i, tg := range targets {
		jobs[i] = Job{
			ID: i, Kind: KindHunt, App: short, Site: tg.Site,
			Seed: core.SiteSeed(seed, tg.Site),
		}
	}
	return jobs, targets
}

// TestLocalMatchesScheduler is the compat anchor: the Local backend must
// reproduce the pre-redesign Scheduler.RunAll verdicts, enforced labels and
// triggering inputs byte for byte — same machinery, different packaging.
func TestLocalMatchesScheduler(t *testing.T) {
	const seed = 21
	jobs, _ := huntBatch(t, "dillo", seed)
	results, err := Collect(context.Background(), &Local{Workers: runtime.GOMAXPROCS(0)}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(jobs) {
		t.Fatalf("%d results for %d jobs", len(results), len(jobs))
	}
	app, _ := apps.ByName("dillo")
	want, err := core.NewScheduler(app, core.Options{Seed: seed}).RunAll()
	if err != nil {
		t.Fatal(err)
	}
	byID := make(map[int]Result, len(results))
	for _, r := range results {
		if r.Err != "" {
			t.Fatalf("job %d failed: %s", r.JobID, r.Err)
		}
		byID[r.JobID] = r
	}
	for i, sr := range want.Sites {
		got := byID[i]
		if got.Site != sr.Target.Site {
			t.Fatalf("job %d is %s, scheduler hunted %s", i, got.Site, sr.Target.Site)
		}
		if got.Verdict != sr.Verdict.String() {
			t.Errorf("%s: verdict %s, scheduler got %s", got.Site, got.Verdict, sr.Verdict)
		}
		if got.ErrorType != sr.ErrorType {
			t.Errorf("%s: error type %q vs %q", got.Site, got.ErrorType, sr.ErrorType)
		}
		if len(got.Enforced) != len(sr.Enforced) {
			t.Errorf("%s: %d enforced vs %d", got.Site, len(got.Enforced), len(sr.Enforced))
		}
		if string(got.Input) != string(sr.Input) {
			t.Errorf("%s: triggering inputs differ", got.Site)
		}
		if got.Runs != sr.Runs {
			t.Errorf("%s: %d runs vs %d", got.Site, got.Runs, sr.Runs)
		}
	}
}

// TestLocalSinkEvents checks the progress contract: every job emits exactly
// one started and one finished event, and hunts that enforced branches
// emitted iteration events in between.
func TestLocalSinkEvents(t *testing.T) {
	jobs, _ := huntBatch(t, "vlc", 5)
	var started, finished, iterations atomic.Int64
	sink := func(ev Event) {
		switch ev.Type {
		case EventStarted:
			started.Add(1)
		case EventFinished:
			finished.Add(1)
			if ev.Result == nil || ev.Result.Site != ev.Job.Site {
				t.Errorf("finished event without a matching result: %+v", ev)
			}
		case EventIteration:
			iterations.Add(1)
		}
	}
	results, err := Collect(context.Background(), &Local{Workers: 2, Sink: sink}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if int(started.Load()) != len(jobs) || int(finished.Load()) != len(jobs) {
		t.Fatalf("started/finished = %d/%d, want %d/%d",
			started.Load(), finished.Load(), len(jobs), len(jobs))
	}
	var enforced int
	for _, r := range results {
		enforced += len(r.Enforced)
	}
	if enforced > 0 && iterations.Load() == 0 {
		t.Fatalf("hunts enforced %d branches but no iteration events fired", enforced)
	}
}

// TestLocalCancellation is the cancellation acceptance test: cancelling a
// mid-sweep context must close the result stream promptly with partial
// results and leak no goroutines.
func TestLocalCancellation(t *testing.T) {
	// A large batch over every registered application (several hundred runs'
	// worth of work) so cancellation lands mid-sweep.
	var jobs []Job
	for _, app := range apps.All() {
		for rep := 0; rep < 4; rep++ {
			b, _ := huntBatch(t, app.Short, int64(rep))
			for _, j := range b {
				j.ID = len(jobs)
				jobs = append(jobs, j)
			}
		}
	}
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	ch, err := (&Local{Workers: 4}).Run(ctx, jobs)
	if err != nil {
		t.Fatal(err)
	}
	var partial int
	for r := range ch {
		if r.Err != "" {
			t.Fatalf("job %d failed: %s", r.JobID, r.Err)
		}
		partial++
		if partial == 3 {
			cancel()
			break
		}
	}
	// The stream must drain and close promptly after the cancellation.
	deadline := time.After(10 * time.Second)
	for open := true; open; {
		select {
		case _, ok := <-ch:
			if !ok {
				open = false
			} else {
				partial++
			}
		case <-deadline:
			t.Fatal("result stream did not close after cancellation")
		}
	}
	if partial >= len(jobs) {
		t.Fatalf("cancellation did not truncate the sweep: %d/%d results", partial, len(jobs))
	}

	// No goroutine leaks: the pool must wind down completely.
	for i := 0; ; i++ {
		runtime.GC()
		if after := runtime.NumGoroutine(); after <= before {
			break
		} else if i >= 100 {
			t.Fatalf("goroutines leaked after cancellation: %d before, %d after", before, after)
		}
		time.Sleep(20 * time.Millisecond)
	}
	cancel()
}

// TestLocalJobErrors checks that bad jobs degrade to per-job error results
// without disturbing their batch mates.
func TestLocalJobErrors(t *testing.T) {
	jobs := []Job{
		{ID: 0, Kind: KindHunt, App: "no-such-app", Site: "x"},
		{ID: 1, Kind: "bogus", App: "dillo", Site: "dillo:png.c@203"},
		{ID: 2, Kind: KindHunt, App: "dillo", Site: "dillo:no-such-site"},
		{ID: 3, Kind: KindHunt, App: "dillo", Site: "dillo:png.c@203", Seed: core.SiteSeed(1, "dillo:png.c@203")},
	}
	results, err := Collect(context.Background(), &Local{Workers: 2}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(jobs) {
		t.Fatalf("%d results for %d jobs", len(results), len(jobs))
	}
	for _, r := range results {
		if r.JobID == 3 {
			if r.Err != "" || r.Verdict != core.VerdictExposed.String() {
				t.Errorf("good job contaminated: err=%q verdict=%q", r.Err, r.Verdict)
			}
		} else if r.Err == "" {
			t.Errorf("job %d should have failed", r.JobID)
		}
	}
}
