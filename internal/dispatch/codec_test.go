package dispatch

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"diode/internal/core"
	"diode/internal/solver"
)

// sampleJobs covers every kind and every optional field of the Job record.
func sampleJobs() []Job {
	return []Job{
		{ID: 0, Kind: KindHunt, App: "dillo", Site: "dillo:png.c@203",
			SiteKind: "alloc", SitePath: "s2.else.s0", Seed: -7},
		{ID: 1, Kind: KindSamePath, App: "vlc", Site: "vlc:block.c@54", Seed: 99,
			Opts: Options{MaxEnforce: 3, DisableCompression: true}},
		{ID: 2, Kind: KindSuccessRate, App: "gifview", Site: "gifview:gif.c@155",
			Seed: 1 << 60, SampleN: 200, Enforced: []string{"a", "b"},
			Opts: Options{Fuel: 1000, SolverMode: solver.ModeSATOnly, OneShotSolver: true}},
	}
}

// TestJobStreamRoundTrip pins WriteJobs/ReadJobs as exact inverses.
func TestJobStreamRoundTrip(t *testing.T) {
	jobs := sampleJobs()
	var buf bytes.Buffer
	if err := WriteJobs(&buf, jobs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJobs(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(jobs, got) {
		t.Fatalf("round trip changed the batch:\nin:  %+v\nout: %+v", jobs, got)
	}
}

// TestResultRoundTrip pins the Result JSON codec, including the base64 input
// bytes and the embedded solver stats.
func TestResultRoundTrip(t *testing.T) {
	in := Result{
		JobID: 3, Kind: KindHunt, App: "dillo", Site: "dillo:png.c@203",
		Verdict: core.VerdictExposed.String(), ErrorType: "SIGSEGV/InvalidWrite",
		Enforced: []string{"x@1", "y@2"}, Runs: 17, DynamicBranches: 9,
		Input: []byte{0x89, 'P', 'N', 'G', 0x00, 0xff}, DiscoveryMS: 12,
		Stats: solver.Stats{SATSolves: 4, GenFailures: 1},
	}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Result
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip changed the result:\nin:  %+v\nout: %+v", in, out)
	}
	if v, ok := out.CoreVerdict(); !ok || v != core.VerdictExposed {
		t.Fatalf("CoreVerdict = %v, %v", v, ok)
	}
}

// TestJobValidate pins the validation rules backends rely on.
func TestJobValidate(t *testing.T) {
	valid := sampleJobs()
	// Arith-kind sites are executable via the probe transformation.
	valid = append(valid, Job{Kind: KindHunt, App: "a", Site: "s", SiteKind: "arith", Seed: 1})
	for _, j := range valid {
		if err := j.Validate(); err != nil {
			t.Errorf("%+v: unexpected validation error %v", j, err)
		}
	}
	invalid := []Job{
		{Kind: "nonsense", App: "dillo", Site: "s"},
		{Kind: KindHunt, Site: "s"},                           // no app
		{Kind: KindHunt, App: "dillo"},                        // no site
		{Kind: KindHunt, App: "dillo", Site: "s", SampleN: 5}, // hunt cannot sample
		{Kind: KindSamePath, App: "a", Site: "s", Enforced: []string{"x"}},
		{Kind: KindSuccessRate, App: "a", Site: "s", SampleN: 0},    // needs a budget
		{Kind: KindHunt, App: "a", Site: "s", SiteKind: "nonsense"}, // unknown kind
	}
	for _, j := range invalid {
		if err := j.Validate(); err == nil {
			t.Errorf("%+v: expected a validation error", j)
		}
	}
}

// FuzzJobResultCodec is the round-trip fuzz target for the wire codec: any
// line that decodes as a valid Job (or any line that decodes as a Result)
// must re-encode and decode back to a deeply equal value — the property the
// worker protocol and a future networked queue depend on. The corpus seeds
// cover every kind, negative/huge seeds, unicode sites and the base64 input
// path.
func FuzzJobResultCodec(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteJobs(&buf, sampleJobs()); err != nil {
		f.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		f.Add([]byte(line))
	}
	f.Add([]byte(`{"jobID":1,"kind":"hunt","app":"dillo","site":"dillo:png.c@203","verdict":"exposed","input":"iVBORw==","stats":{}}`))
	f.Add([]byte(`{"id":4,"kind":"same-path","app":"vlc","site":"σ/ütf@8","seed":-1}`))

	// One encode canonicalizes (e.g. a case-folded field name or an empty
	// slice that omitempty drops); from then on encode∘decode must be a
	// byte-identical fixed point — the stability the worker protocol and any
	// stored job/result log depend on.
	fixedPoint := func(t *testing.T, v, back any) {
		t.Helper()
		enc1, err := json.Marshal(v)
		if err != nil {
			t.Fatalf("%T failed to re-encode: %v", v, err)
		}
		if err := json.Unmarshal(enc1, back); err != nil {
			t.Fatalf("re-encoded %T failed to decode: %v", v, err)
		}
		enc2, err := json.Marshal(back)
		if err != nil {
			t.Fatalf("decoded %T failed to encode again: %v", v, err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("%T encoding is not a fixed point:\nfirst:  %s\nsecond: %s", v, enc1, enc2)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var job Job
		if err := json.Unmarshal(data, &job); err == nil && job.Validate() == nil {
			fixedPoint(t, &job, &Job{})
		}
		var res Result
		if err := json.Unmarshal(data, &res); err == nil {
			fixedPoint(t, &res, &Result{})
		}
	})
}
