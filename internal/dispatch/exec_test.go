package dispatch

import (
	"context"
	"os"
	"reflect"
	"sort"
	"testing"
)

// workerModeEnv switches the test binary into diode-worker mode, so the Exec
// backend can be exercised hermetically: Exec spawns this very binary with
// the variable set, and TestMain routes the process into WorkerMain before
// the test framework starts.
const workerModeEnv = "DIODE_TEST_WORKER_MODE"

func TestMain(m *testing.M) {
	if os.Getenv(workerModeEnv) == "1" {
		if err := WorkerMain(context.Background(), os.Stdin, os.Stdout, WorkerConfigFromEnv()); err != nil {
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// testExec returns an Exec backend that spawns this test binary in worker
// mode.
func testExec(workers int, sink Sink) *Exec {
	return &Exec{
		Binary:  os.Args[0],
		Env:     []string{workerModeEnv + "=1"},
		Workers: workers,
		Sink:    sink,
	}
}

// normalizeResults strips wall-clock fields and orders by job for
// backend-vs-backend comparison.
func normalizeResults(results []Result) []Result {
	out := append([]Result(nil), results...)
	sort.Slice(out, func(i, j int) bool { return out[i].JobID < out[j].JobID })
	for i := range out {
		out[i].DiscoveryMS = 0
	}
	return out
}

// TestExecMatchesLocal is the backend-equality acceptance test at the
// dispatch layer: the same batch — hunts plus both experiment kinds — must
// produce deeply equal results from the in-process pool and from sharded
// worker processes, at several process counts.
func TestExecMatchesLocal(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	const seed = 33
	jobs, _ := huntBatch(t, "vlc", seed)
	localRes, err := Collect(context.Background(), &Local{Workers: 2}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	// Extend the batch with experiment jobs planned from the local hunts,
	// exercising the enforced-label round trip through the wire format.
	next := len(jobs)
	for _, r := range normalizeResults(localRes) {
		if r.Verdict != "exposed" {
			continue
		}
		site := jobs[r.JobID].Site
		jobs = append(jobs,
			Job{ID: next, Kind: KindSamePath, App: "vlc", Site: site, Seed: jobs[r.JobID].Seed},
			Job{ID: next + 1, Kind: KindSuccessRate, App: "vlc", Site: site,
				Seed: jobs[r.JobID].Seed, SampleN: 10, Enforced: r.Enforced},
		)
		next += 2
	}

	want, err := Collect(context.Background(), &Local{Workers: 4}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3} {
		got, err := Collect(context.Background(), testExec(workers, nil), jobs)
		if err != nil {
			t.Fatal(err)
		}
		if a, b := normalizeResults(want), normalizeResults(got); !reflect.DeepEqual(a, b) {
			t.Fatalf("exec(%d workers) diverged from local:\nlocal: %+v\nexec:  %+v", workers, a, b)
		}
	}
}

// TestExecForwardsEvents checks that worker-process progress events cross
// the pipe and reach the parent's sink with the original Job attached.
func TestExecForwardsEvents(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	jobs, _ := huntBatch(t, "dillo", 1)
	jobs = jobs[:3]
	type seen struct{ started, iterations int }
	events := make(map[string]*seen)
	for _, j := range jobs {
		events[j.Site] = &seen{}
	}
	// One worker process → events arrive sequentially; no locking needed.
	sink := func(ev Event) {
		s, ok := events[ev.Job.Site]
		if !ok {
			t.Errorf("event for unknown job: %+v", ev)
			return
		}
		switch ev.Type {
		case EventStarted:
			s.started++
		case EventIteration:
			s.iterations++
		}
	}
	if _, err := Collect(context.Background(), testExec(1, sink), jobs); err != nil {
		t.Fatal(err)
	}
	for site, s := range events {
		if s.started != 1 {
			t.Errorf("%s: %d started events, want 1", site, s.started)
		}
	}
}

// TestExecWorkerLoss checks the degraded path: a worker binary that dies
// immediately must surface per-job error results, not hang or drop jobs.
func TestExecWorkerLoss(t *testing.T) {
	jobs, _ := huntBatch(t, "dillo", 1)
	jobs = jobs[:2]
	e := &Exec{Binary: "/bin/false", Workers: 2}
	results, err := Collect(context.Background(), e, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(jobs) {
		t.Fatalf("%d results for %d jobs", len(results), len(jobs))
	}
	for _, r := range results {
		if r.Err == "" {
			t.Errorf("job %d: expected a worker-loss error", r.JobID)
		}
	}
}

// TestExecMissingBinary checks the setup-error path of Backend.Run.
func TestExecMissingBinary(t *testing.T) {
	e := &Exec{Binary: "/no/such/diode-worker"}
	jobs, _ := huntBatch(t, "dillo", 1)
	results, err := Collect(context.Background(), e, jobs[:1])
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Err == "" {
			t.Errorf("job %d: expected a spawn error", r.JobID)
		}
	}
}
