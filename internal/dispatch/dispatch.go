// Package dispatch is the job-based execution surface of the system — the
// paper's §4 distributed work-queue role made an API. The batch-synchronous
// entry points (core.Scheduler.RunAll, the harness sweep) decompose into
// serializable per-site Jobs: a hunt, a §5.4 same-path experiment or a
// §5.5/§5.6 success-rate experiment is one unit of work, identified by
// (application, site, derived seed) and therefore executable by any worker —
// a goroutine of the Local backend or a spawned diode-worker process of the
// Exec backend — with byte-identical results. Backends stream Results as jobs
// complete; context cancellation stops a sweep mid-flight with partial
// results.
//
// The Job/Result records have a stable JSON codec (the wire format of the
// diode-worker stdin/stdout protocol and the natural storage format for a
// future networked queue); determinism rests on the same seam the in-process
// Scheduler uses — every job carries its full derived seed, so neither
// placement nor completion order influences verdicts.
package dispatch

import (
	"fmt"

	"diode/internal/core"
	"diode/internal/discover"
	"diode/internal/solver"
)

// Kind discriminates the units of work a worker knows how to execute.
type Kind string

// Job kinds.
const (
	// KindHunt runs the Figure 7 goal-directed branch enforcement loop for
	// one target site.
	KindHunt Kind = "hunt"
	// KindSamePath decides the §5.4 same-path satisfiability experiment for
	// one target site.
	KindSamePath Kind = "same-path"
	// KindSuccessRate runs one §5.5/§5.6 success-rate experiment: sample up
	// to SampleN models of the target constraint (conjoined with the branch
	// constraints named by Enforced, if any) and count triggering inputs.
	KindSuccessRate Kind = "success-rate"
)

// Options is the serializable subset of core.Options a job carries: the
// pipeline knobs that influence verdicts. Seed is excluded (it travels on the
// Job, fully derived), Parallelism is excluded (a job is one site's work) and
// Progress is excluded (a live callback cannot cross a process boundary; the
// Sink carries progress instead). The zero value means core defaults.
type Options struct {
	InitialAttempts        int         `json:"initialAttempts,omitempty"`
	MaxEnforce             int         `json:"maxEnforce,omitempty"`
	Fuel                   int64       `json:"fuel,omitempty"`
	SolverMode             solver.Mode `json:"solverMode,omitempty"`
	OneShotSolver          bool        `json:"oneShotSolver,omitempty"`
	OneShotSampling        bool        `json:"oneShotSampling,omitempty"`
	Portfolio              int         `json:"portfolio,omitempty"`
	OneShotExecution       bool        `json:"oneShotExecution,omitempty"`
	DisableCompression     bool        `json:"disableCompression,omitempty"`
	DisableRelevanceFilter bool        `json:"disableRelevanceFilter,omitempty"`
	NoTriage               bool        `json:"noTriage,omitempty"`
}

// OptionsFrom extracts the serializable subset from engine options.
func OptionsFrom(o core.Options) Options {
	return Options{
		InitialAttempts:        o.InitialAttempts,
		MaxEnforce:             o.MaxEnforce,
		Fuel:                   o.Fuel,
		SolverMode:             o.SolverMode,
		OneShotSolver:          o.OneShotSolver,
		OneShotSampling:        o.OneShotSampling,
		Portfolio:              o.Portfolio,
		OneShotExecution:       o.OneShotExecution,
		DisableCompression:     o.DisableCompression,
		DisableRelevanceFilter: o.DisableRelevanceFilter,
		NoTriage:               o.NoTriage,
	}
}

// Core expands the subset back into engine options with the given seed.
func (o Options) Core(seed int64) core.Options {
	return core.Options{
		Seed:                   seed,
		InitialAttempts:        o.InitialAttempts,
		MaxEnforce:             o.MaxEnforce,
		Fuel:                   o.Fuel,
		SolverMode:             o.SolverMode,
		OneShotSolver:          o.OneShotSolver,
		OneShotSampling:        o.OneShotSampling,
		Portfolio:              o.Portfolio,
		OneShotExecution:       o.OneShotExecution,
		DisableCompression:     o.DisableCompression,
		DisableRelevanceFilter: o.DisableRelevanceFilter,
		NoTriage:               o.NoTriage,
	}
}

// Job is one serializable unit of work. Jobs are self-contained: the worker
// re-derives everything else (the analyzed Target, the enforced constraint)
// deterministically from these fields, so a job can run in any process on any
// machine and produce the same Result.
type Job struct {
	// ID identifies the job within one Backend.Run call; Results carry it
	// back so streams can be folded in any completion order.
	ID int `json:"id"`
	// Kind selects the unit of work.
	Kind Kind `json:"kind"`
	// App is the benchmark application's short registry name.
	App string `json:"app"`
	// Site is the target allocation-site name.
	Site string `json:"site"`
	// SiteKind is the discovered site's kind. Alloc-kind sites run the
	// pipeline directly; arith-kind sites run it against the probe-
	// instrumented program (discover.Probe), which derives the overflow
	// constraint at the arith node. Empty is accepted as alloc so
	// pre-discovery job records stay valid.
	SiteKind string `json:"siteKind,omitempty"`
	// SitePath is the site's stable node path from the discovery pass.
	SitePath string `json:"sitePath,omitempty"`
	// Seed is the fully derived per-site hunt seed (the planner applies
	// core.SiteSeed; workers use it verbatim).
	Seed int64 `json:"seed"`
	// SampleN is the sample budget of a success-rate job.
	SampleN int `json:"sampleN,omitempty"`
	// Enforced lists enforced branch labels, in enforcement order, for the
	// §5.6 variant of a success-rate job: the worker rebuilds φ′∧β with
	// core.EnforcedConstraintFor. Empty means the §5.5 target-only variant.
	Enforced []string `json:"enforced,omitempty"`
	// Opts carries the engine options subset.
	Opts Options `json:"opts"`
}

// Validate checks the fields a worker depends on. Backends surface a
// validation failure as a Result with Err set rather than executing the job.
func (j Job) Validate() error {
	switch j.Kind {
	case KindHunt, KindSamePath:
		if j.SampleN != 0 {
			return fmt.Errorf("dispatch: %s job has sampleN %d (only success-rate jobs sample)", j.Kind, j.SampleN)
		}
		if len(j.Enforced) != 0 {
			return fmt.Errorf("dispatch: %s job carries enforced labels (only success-rate jobs do)", j.Kind)
		}
	case KindSuccessRate:
		if j.SampleN <= 0 {
			return fmt.Errorf("dispatch: success-rate job needs a positive sampleN, got %d", j.SampleN)
		}
	default:
		return fmt.Errorf("dispatch: unknown job kind %q", j.Kind)
	}
	if j.App == "" {
		return fmt.Errorf("dispatch: job has no application")
	}
	if j.Site == "" {
		return fmt.Errorf("dispatch: job has no site")
	}
	if j.SiteKind != "" && j.SiteKind != string(discover.KindAlloc) && j.SiteKind != string(discover.KindArith) {
		return fmt.Errorf("dispatch: site %s has kind %q; only %s- and %s-kind sites are executable",
			j.Site, j.SiteKind, discover.KindAlloc, discover.KindArith)
	}
	return nil
}

// Result is the serializable outcome of one job. Exactly one of the
// kind-specific field groups is populated (hunt / same-path / success-rate);
// Err reports a job that could not run at all (unknown application, analysis
// failure, worker loss) — never a negative verdict, which is ordinary data.
type Result struct {
	JobID int    `json:"jobID"`
	Kind  Kind   `json:"kind"`
	App   string `json:"app"`
	Site  string `json:"site"`
	Err   string `json:"err,omitempty"`

	// Cached reports that the result was served from the job cache (memory,
	// disk, or a concurrent identical job's execution) rather than executed
	// for this job. Everything else about a cached result is byte-identical
	// to executing, including DiscoveryMS — the stored wall-clock replays.
	Cached bool `json:"cached,omitempty"`

	// Hunt fields.
	Verdict         string   `json:"verdict,omitempty"`
	ErrorType       string   `json:"errorType,omitempty"`
	Enforced        []string `json:"enforced,omitempty"`
	Runs            int      `json:"runs,omitempty"`
	DynamicBranches int      `json:"dynamicBranches,omitempty"`
	Input           []byte   `json:"input,omitempty"`
	DiscoveryMS     int64    `json:"discoveryMS,omitempty"`

	// SamePathSat is the §5.4 verdict ("sat", "unsat", "unknown").
	SamePathSat string `json:"samePathSat,omitempty"`

	// Success-rate fields: Hits triggering inputs out of Total generated;
	// GenFailures counts sampled models the input-reconstruction layer lost.
	Hits        int `json:"hits,omitempty"`
	Total       int `json:"total,omitempty"`
	GenFailures int `json:"genFailures,omitempty"`

	// Stats are the job's solver work counters (the per-hunter snapshot the
	// Scheduler used to aggregate in-process).
	Stats solver.Stats `json:"stats"`
}

// CoreVerdict maps the wire verdict string back to the engine enumeration.
func (r *Result) CoreVerdict() (core.Verdict, bool) {
	for _, v := range []core.Verdict{
		core.VerdictExposed, core.VerdictUnsat, core.VerdictPrevented, core.VerdictUnknown,
	} {
		if v.String() == r.Verdict {
			return v, true
		}
	}
	return core.VerdictUnknown, false
}
