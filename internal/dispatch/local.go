package dispatch

import (
	"context"
	"sync"

	"diode/internal/cache"
)

// Local executes jobs on a bounded goroutine pool inside the calling process
// — the dispatch-layer packaging of the machinery Scheduler.RunAll drives,
// and the zero-setup default backend. One JobCache is shared across every
// Run of the backend (a job's Result is a pure function of its record plus
// the guest program), so a multi-wave sweep — the harness runs hunts, then
// same-path + target-only, then enforced rates on one backend — analyzes
// each application once, and a repeated batch is served from the result
// cache without hunting at all.
type Local struct {
	// Workers bounds pool concurrency; <1 means one worker.
	Workers int
	// Sink receives progress events (started / iteration / finished, or
	// cache-hit) from the pool goroutines.
	Sink Sink
	// Cache is the job cache Execute consults; shared caches make repeated
	// and concurrent sweeps warm. Nil means a private in-memory cache,
	// created on first use and kept for the backend's lifetime.
	Cache *JobCache

	cacheOnce sync.Once
}

// jobCache resolves the backend's cache, defaulting a private in-memory one.
func (l *Local) jobCache() *JobCache {
	l.cacheOnce.Do(func() {
		if l.Cache == nil {
			l.Cache = NewJobCache(CacheConfig{})
		}
	})
	return l.Cache
}

// CacheStats returns a snapshot of the backend's cache counters.
func (l *Local) CacheStats() cache.Stats { return l.jobCache().Stats() }

// Run dispatches the jobs on the pool. Results stream in completion order;
// the channel closes when all jobs finished or ctx was cancelled. After a
// cancellation, jobs not yet started are skipped and in-flight jobs abort at
// their next cancellation point (iteration boundary or mid-run interpreter
// poll), so the stream drains promptly with partial results.
func (l *Local) Run(ctx context.Context, jobs []Job) (<-chan Result, error) {
	workers := l.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	out := make(chan Result)
	jc := l.jobCache()
	go func() {
		defer close(out)
		if len(jobs) == 0 {
			return
		}
		next := make(chan int)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for i := range next {
					if ctx.Err() != nil {
						continue // drain: unstarted jobs are skipped
					}
					r, err := Execute(ctx, jobs[i], jc, l.Sink)
					if err != nil {
						continue // cancelled mid-job: no final result
					}
					select {
					case out <- r:
					case <-ctx.Done():
						return
					}
				}
			}()
		}
		for i := range jobs {
			select {
			case next <- i:
			case <-ctx.Done():
			}
		}
		close(next)
		wg.Wait()
	}()
	return out, nil
}
