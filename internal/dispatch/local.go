package dispatch

import (
	"context"
	"sync"

	"diode/internal/apps"
	"diode/internal/core"
)

// Local executes jobs on a bounded goroutine pool inside the calling process
// — the dispatch-layer packaging of the machinery Scheduler.RunAll drives,
// and the zero-setup default backend. One analysis Cache is shared across
// every Run of the backend (analysis is a pure function of application +
// options), so a multi-wave sweep — the harness runs hunts, then same-path +
// target-only, then enforced rates on one backend — analyzes each
// application once, not once per wave.
type Local struct {
	// Workers bounds pool concurrency; <1 means one worker.
	Workers int
	// Sink receives progress events (started / iteration / finished) from
	// the pool goroutines.
	Sink Sink

	cacheOnce sync.Once
	cache     *Cache
}

// Prime seeds the backend's analysis cache with targets the caller already
// computed at the same options subset (see Cache.Prime). The harness planner
// uses this so the in-process default path analyzes each application exactly
// once — jobs stay self-contained for workers that genuinely lack the
// analysis (the Exec backend's processes), while the process that just did
// it does not pay twice.
func (l *Local) Prime(app *apps.App, opts Options, targets []*core.Target) {
	l.cacheOnce.Do(func() { l.cache = NewCache() })
	l.cache.Prime(app, opts, targets)
}

// Run dispatches the jobs on the pool. Results stream in completion order;
// the channel closes when all jobs finished or ctx was cancelled. After a
// cancellation, jobs not yet started are skipped and in-flight jobs abort at
// their next cancellation point (iteration boundary or mid-run interpreter
// poll), so the stream drains promptly with partial results.
func (l *Local) Run(ctx context.Context, jobs []Job) (<-chan Result, error) {
	workers := l.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	out := make(chan Result)
	l.cacheOnce.Do(func() { l.cache = NewCache() })
	cache := l.cache
	go func() {
		defer close(out)
		if len(jobs) == 0 {
			return
		}
		next := make(chan int)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for i := range next {
					if ctx.Err() != nil {
						continue // drain: unstarted jobs are skipped
					}
					r, err := Execute(ctx, jobs[i], cache, l.Sink)
					if err != nil {
						continue // cancelled mid-job: no final result
					}
					select {
					case out <- r:
					case <-ctx.Done():
						return
					}
				}
			}()
		}
		for i := range jobs {
			select {
			case next <- i:
			case <-ctx.Done():
			}
		}
		close(next)
		wg.Wait()
	}()
	return out, nil
}
