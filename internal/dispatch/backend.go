package dispatch

import "context"

// Backend executes batches of jobs. Implementations differ only in placement
// — same-process goroutines (Local), spawned worker processes (Exec), or a
// future networked queue — never in results: a job's outcome is a pure
// function of the job record.
type Backend interface {
	// Run dispatches the jobs and returns a channel streaming one Result per
	// completed job, in completion order. The channel is closed when every
	// job has completed or ctx is cancelled; after a cancellation the stream
	// ends early, carrying only the jobs that finished (partial results).
	// The returned error covers dispatch setup only — per-job failures come
	// back as Results with Err set, so one lost job cannot abort a sweep.
	Run(ctx context.Context, jobs []Job) (<-chan Result, error)
}

// EventType classifies progress events.
type EventType string

// Progress event types.
const (
	// EventStarted fires when a worker picks the job up.
	EventStarted EventType = "started"
	// EventIteration fires at each Figure 7 enforcement iteration of a hunt
	// job (rides core.Options.Progress).
	EventIteration EventType = "iteration"
	// EventFinished fires when the job's Result is final.
	EventFinished EventType = "finished"
	// EventCacheHit fires instead of the started/finished pair when a job's
	// Result is served from the cache without executing; the Result rides
	// the event, as in EventFinished.
	EventCacheHit EventType = "cache-hit"
)

// Event is one progress observation. Events are advisory: backends emit them
// best-effort for live output (site started / iteration / verdict lines in
// the cmds) and they never influence results. Only jobs that actually begin
// executing emit the started/iteration/finished sequence — a job that fails
// before work starts (validation, unknown application, worker loss) produces
// an error Result and no events, and a job served from the cache emits a
// single EventCacheHit, identically on every backend, so started/finished
// counts always pair.
type Event struct {
	Type EventType
	Job  Job
	// Iteration is the 0-based enforcement iteration (EventIteration only).
	Iteration int
	// Result is the job's final result (EventFinished only).
	Result *Result
}

// Sink receives progress events. A Sink must be safe for concurrent calls
// (backends run jobs concurrently) and fast — it runs on worker goroutines.
// nil disables progress reporting.
type Sink func(Event)

// emit forwards an event to a possibly-nil sink.
func (s Sink) emit(ev Event) {
	if s != nil {
		s(ev)
	}
}

// Collect runs the jobs on the backend and gathers the streamed results. On
// cancellation it returns the partial results together with ctx.Err(); the
// per-job Err fields still need checking either way.
func Collect(ctx context.Context, b Backend, jobs []Job) ([]Result, error) {
	ch, err := b.Run(ctx, jobs)
	if err != nil {
		return nil, err
	}
	results := make([]Result, 0, len(jobs))
	for r := range ch {
		results = append(results, r)
	}
	return results, ctx.Err()
}
