package dispatch

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"

	"diode/internal/cache"
)

// Exec executes jobs by sharding them across spawned worker processes
// speaking the JSON-lines protocol of WorkerMain — the first multi-process
// deployment of the §4 work-queue role. Each worker process runs its shard
// sequentially (process count is the parallelism knob) and re-derives
// analysis from the job records alone, so results are byte-identical to the
// Local backend's at any worker count; a networked backend only has to
// replace the pipes with sockets.
type Exec struct {
	// Binary is the worker executable. Empty means auto-resolve: a
	// "diode-worker" next to the current executable, else $PATH.
	Binary string
	// Args are extra arguments passed to the worker binary.
	Args []string
	// Env are extra environment entries (os.Environ is inherited).
	Env []string
	// Workers is the number of worker processes; <1 means one.
	Workers int
	// Sink receives progress events forwarded from the workers' event
	// stream.
	Sink Sink
	// CacheDir is the shared on-disk result store handed to every worker
	// process (as the -cache-dir flag and the DIODE_WORKER_CACHE_DIR
	// environment variable): sibling workers and repeated runs pointing at
	// the same directory serve each other's results. Empty leaves each
	// worker with a private in-memory cache.
	CacheDir string
	// NoCache disables result caching in the workers.
	NoCache bool

	counters cache.Counters
}

// CacheStats returns the cache counters aggregated from the stats messages
// of every worker process this backend ran, cumulative across Runs.
func (e *Exec) CacheStats() cache.Stats { return e.counters.Snapshot() }

// workerScanBuffer bounds one protocol line (a Result carries a base64
// triggering input, so lines can exceed bufio.Scanner's 64KB default).
const workerScanBuffer = 16 << 20

// ResolveWorkerBinary locates the diode-worker executable the way Exec does:
// Binary if set, else a sibling of the current executable, else $PATH.
func ResolveWorkerBinary(binary string) (string, error) {
	if binary != "" {
		return binary, nil
	}
	if self, err := os.Executable(); err == nil {
		sibling := filepath.Join(filepath.Dir(self), "diode-worker")
		if st, err := os.Stat(sibling); err == nil && !st.IsDir() {
			return sibling, nil
		}
	}
	if path, err := exec.LookPath("diode-worker"); err == nil {
		return path, nil
	}
	return "", fmt.Errorf("dispatch: no diode-worker binary found (set Exec.Binary or install cmd/diode-worker on $PATH)")
}

// Run shards the jobs round-robin across Workers spawned processes and
// streams their results. Worker loss does not abort the sweep: jobs a dead
// worker never reported come back as Results with Err set (carrying the
// worker's stderr), so the folder sees every job accounted for. Cancelling
// ctx kills the workers and closes the stream after the already-reported
// partial results.
func (e *Exec) Run(ctx context.Context, jobs []Job) (<-chan Result, error) {
	bin, err := ResolveWorkerBinary(e.Binary)
	if err != nil {
		return nil, err
	}
	workers := e.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	shards := make([][]Job, workers)
	for i, j := range jobs {
		shards[i%workers] = append(shards[i%workers], j)
	}
	jobByID := make(map[int]Job, len(jobs))
	for _, j := range jobs {
		jobByID[j.ID] = j
	}

	out := make(chan Result)
	var wg sync.WaitGroup
	wg.Add(len(shards))
	for _, shard := range shards {
		go func(shard []Job) {
			defer wg.Done()
			e.runShard(ctx, bin, shard, jobByID, out)
		}(shard)
	}
	go func() {
		wg.Wait()
		close(out)
	}()
	return out, nil
}

// runShard drives one worker process over its shard.
func (e *Exec) runShard(ctx context.Context, bin string, shard []Job, jobByID map[int]Job, out chan<- Result) {
	if len(shard) == 0 {
		return
	}
	args := append([]string{}, e.Args...)
	env := append(os.Environ(), e.Env...)
	if e.CacheDir != "" {
		args = append(args, "-cache-dir", e.CacheDir)
		env = append(env, WorkerCacheDirEnv+"="+e.CacheDir)
	}
	if e.NoCache {
		args = append(args, "-no-cache")
		env = append(env, WorkerNoCacheEnv+"=1")
	}
	cmd := exec.CommandContext(ctx, bin, args...)
	cmd.Env = env
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		e.failShard(ctx, shard, nil, out, fmt.Sprintf("dispatch: worker stdin: %v", err))
		return
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		e.failShard(ctx, shard, nil, out, fmt.Sprintf("dispatch: worker stdout: %v", err))
		return
	}
	if err := cmd.Start(); err != nil {
		e.failShard(ctx, shard, nil, out, fmt.Sprintf("dispatch: starting worker %s: %v", bin, err))
		return
	}
	go func() {
		// A worker that dies mid-batch breaks the pipe; the write error is
		// deliberately dropped — the unreported jobs are accounted for below.
		_ = WriteJobs(stdin, shard)
		stdin.Close()
	}()

	seen := make(map[int]bool, len(shard))
	sc := bufio.NewScanner(stdout)
	sc.Buffer(make([]byte, 64<<10), workerScanBuffer)
	for sc.Scan() {
		var msg wireMsg
		if err := json.Unmarshal(sc.Bytes(), &msg); err != nil {
			continue // tolerate stray output on stdout
		}
		switch {
		case msg.Type == "result" && msg.Result != nil:
			seen[msg.Result.JobID] = true
			if e.Sink != nil && msg.Result.Err == "" {
				// The worker suppresses its own finished/cache-hit events
				// (the result message carries the final state), so the parent
				// synthesizes them — keeping the Sink contract identical
				// across backends: jobs that never began executing
				// (validation/resolution failures, lost workers) emit no
				// events on any backend, and cache-served jobs emit a single
				// cache-hit event.
				if job, ok := jobByID[msg.Result.JobID]; ok {
					evType := EventFinished
					if msg.Result.Cached {
						evType = EventCacheHit
					}
					e.Sink(Event{Type: evType, Job: job, Result: msg.Result})
				}
			}
			select {
			case out <- *msg.Result:
			case <-ctx.Done():
			}
		case msg.Type == "stats" && msg.Stats != nil:
			e.counters.Add(*msg.Stats)
		case msg.Type == "event" && msg.Event != nil && e.Sink != nil:
			job, ok := jobByID[msg.Event.JobID]
			if !ok {
				continue
			}
			e.Sink(Event{Type: msg.Event.Type, Job: job, Iteration: msg.Event.Iteration})
		}
	}
	scanErr := sc.Err()
	if scanErr != nil {
		// The parent stopped reading stdout (oversized line, read error). A
		// worker mid-write would block forever on the full pipe and hang
		// cmd.Wait; kill it so the shard fails loudly instead of deadlocking.
		_ = cmd.Process.Kill()
	}
	err = cmd.Wait()
	if ctx.Err() != nil {
		return // cancelled: partial results are the contract
	}
	if err != nil || scanErr != nil || len(seen) < len(shard) {
		reason := "dispatch: worker reported no result"
		switch {
		case scanErr != nil:
			reason = fmt.Sprintf("dispatch: reading worker output: %v", scanErr)
		case err != nil:
			reason = fmt.Sprintf("dispatch: worker exited: %v", err)
		}
		if msg := strings.TrimSpace(stderr.String()); msg != "" {
			reason += ": " + msg
		}
		e.failShard(ctx, shard, seen, out, reason)
	}
}

// failShard reports every unreported job of a shard as failed.
func (e *Exec) failShard(ctx context.Context, shard []Job, seen map[int]bool, out chan<- Result, reason string) {
	for _, j := range shard {
		if seen[j.ID] {
			continue
		}
		r := Result{JobID: j.ID, Kind: j.Kind, App: j.App, Site: j.Site, Err: reason}
		select {
		case out <- r:
		case <-ctx.Done():
			return
		}
	}
}
