package dispatch

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"diode/internal/cache"
)

// The diode-worker wire protocol: the parent writes one JSON Job per line to
// the worker's stdin and closes it; the worker writes one JSON wireMsg per
// line to stdout — interleaved progress events as they happen, exactly one
// result message per job, and one final stats message summarizing the
// worker's cache activity when the batch ends. Lines are self-delimiting
// JSON, so the protocol survives reordering of workers, partial batches and
// being stored as-is in a results log.
type wireMsg struct {
	Type string `json:"type"` // "result" | "event" | "stats"
	// Result is the final outcome of a job (Type "result").
	Result *Result `json:"result,omitempty"`
	// Event is a progress observation (Type "event").
	Event *wireEvent `json:"event,omitempty"`
	// Stats is the worker's cache-counter snapshot (Type "stats").
	Stats *cache.Stats `json:"stats,omitempty"`
}

// wireEvent is the serializable projection of an Event: jobs are identified
// by ID (the parent holds the Job records and re-attaches them).
type wireEvent struct {
	Type      EventType `json:"type"`
	JobID     int       `json:"jobID"`
	Iteration int       `json:"iteration,omitempty"`
}

// WriteJobs encodes jobs as JSON lines — the worker stdin format.
func WriteJobs(w io.Writer, jobs []Job) error {
	enc := json.NewEncoder(w)
	for _, j := range jobs {
		if err := enc.Encode(j); err != nil {
			return fmt.Errorf("dispatch: encoding job %d: %w", j.ID, err)
		}
	}
	return nil
}

// ReadJobs decodes a JSON-lines job batch — the inverse of WriteJobs.
func ReadJobs(r io.Reader) ([]Job, error) {
	dec := json.NewDecoder(r)
	var jobs []Job
	for {
		var j Job
		if err := dec.Decode(&j); err != nil {
			if errors.Is(err, io.EOF) {
				return jobs, nil
			}
			return jobs, fmt.Errorf("dispatch: corrupt job stream: %w", err)
		}
		jobs = append(jobs, j)
	}
}

// WorkerConfig carries the cache settings of one worker process.
type WorkerConfig struct {
	// CacheDir is the shared on-disk result store (empty: memory only).
	CacheDir string
	// NoCache disables result caching.
	NoCache bool
}

// Environment variables mirroring the diode-worker flags. The Exec backend
// sets them alongside the flags so that worker stand-ins which never parse
// argv — the test binaries behind the worker-mode TestMain trick — pick the
// cache configuration up too.
const (
	WorkerCacheDirEnv = "DIODE_WORKER_CACHE_DIR"
	WorkerNoCacheEnv  = "DIODE_WORKER_NO_CACHE"
)

// WorkerConfigFromEnv reads the worker cache configuration from the
// environment (the flag defaults of cmd/diode-worker).
func WorkerConfigFromEnv() WorkerConfig {
	return WorkerConfig{
		CacheDir: os.Getenv(WorkerCacheDirEnv),
		NoCache:  os.Getenv(WorkerNoCacheEnv) == "1",
	}
}

// WorkerMain is the body of the diode-worker process (cmd/diode-worker wraps
// it around stdin/stdout; tests embed it behind an env-var switch so the
// Exec backend can be exercised without building a separate binary). It
// executes jobs sequentially in arrival order — process-level parallelism is
// the Exec backend's job — sharing one JobCache across the batch (backed by
// cfg.CacheDir when set, so sibling workers and repeated runs share
// results), and flushes every message immediately so the parent observes
// progress live. At end of batch it reports its cache counters as a stats
// message. It returns when the job stream ends, or with ctx.Err() after a
// cancellation (in-flight work aborts through the usual cancellation
// points).
func WorkerMain(ctx context.Context, r io.Reader, w io.Writer, cfg WorkerConfig) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	emit := func(msg wireMsg) error {
		if err := enc.Encode(msg); err != nil {
			return err
		}
		return bw.Flush()
	}
	var sinkErr error
	sink := Sink(func(ev Event) {
		if ev.Type == EventFinished || ev.Type == EventCacheHit {
			return // the result message carries the final state (incl. Cached)
		}
		we := &wireEvent{Type: ev.Type, JobID: ev.Job.ID, Iteration: ev.Iteration}
		if err := emit(wireMsg{Type: "event", Event: we}); err != nil && sinkErr == nil {
			sinkErr = err
		}
	})

	jc := NewJobCache(CacheConfig{Dir: cfg.CacheDir, NoResults: cfg.NoCache})
	dec := json.NewDecoder(r)
	for {
		var job Job
		if err := dec.Decode(&job); err != nil {
			if errors.Is(err, io.EOF) {
				stats := jc.Stats()
				if err := emit(wireMsg{Type: "stats", Stats: &stats}); err != nil {
					return fmt.Errorf("dispatch: worker: writing stats: %w", err)
				}
				return nil
			}
			return fmt.Errorf("dispatch: worker: corrupt job stream: %w", err)
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		res, err := Execute(ctx, job, jc, sink)
		if err != nil {
			return err
		}
		if sinkErr != nil {
			return fmt.Errorf("dispatch: worker: writing event: %w", sinkErr)
		}
		if err := emit(wireMsg{Type: "result", Result: &res}); err != nil {
			return fmt.Errorf("dispatch: worker: writing result: %w", err)
		}
	}
}
