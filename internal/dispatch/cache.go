package dispatch

import (
	"context"
	"encoding/json"
	"errors"
	"strconv"

	"diode/internal/absint"
	"diode/internal/apps"
	"diode/internal/cache"
	"diode/internal/core"
	"diode/internal/discover"
)

// keyVersion versions the cache-key derivation itself: the key layout, the
// canonical options encoding, and everything a fingerprint cannot see (format
// fix-up behavior, Analyzer/Hunter semantics). Bump it whenever a result
// could change for unchanged inputs; every existing key then misses at once.
// Version 2: jobs carry the structured site identity (kind + node path) and
// keys carry the discovery-pass version.
// Version 3: keys carry the static-triage pass version (absint.Version) —
// triage verdicts ride on targets and can short-circuit hunts, so a triage
// algorithm change can change results for unchanged programs — and options
// gained NoTriage.
const keyVersion = "3"

// CacheConfig configures a JobCache. The zero value is a pure in-memory
// cache with default bounds.
type CacheConfig struct {
	// Dir enables the on-disk Result store rooted at this directory. Worker
	// processes and repeated runs pointing at the same directory share it.
	// Empty keeps results in memory only.
	Dir string
	// NoResults disables result caching entirely — in-memory and disk — so
	// every job executes. Analysis memoization remains: it is what keeps a
	// single sweep from re-deriving targets per site, cache or no cache.
	NoResults bool
	// MaxResults and MaxAnalyses bound the in-memory LRUs (entries, not
	// bytes); zero means the defaults (4096 results, 64 analyses).
	MaxResults  int
	MaxAnalyses int
}

// JobCache is the content-addressed cache the whole execution surface
// threads through: Execute consults it before constructing a Hunter, the
// Local backend shares one across Runs, worker processes build one from
// -cache-dir, and the harness planner resolves analysis through it. Keys are
// derived from content fingerprints (JobKey), never from registry names, so
// a cache shared across processes — or surviving a program edit — can never
// serve a stale result. Construction cannot fail: an unusable directory
// degrades to a cache that misses and stores nothing on disk.
type JobCache struct {
	instances *cache.LRU // app short name → appOut (resolved *apps.App)
	analyses  *cache.LRU // analysis key → analysisOut (targets)
	results   *cache.LRU // job key → flight (nil when NoResults)
	store     *cache.Store
	counters  cache.Counters
}

// NewJobCache returns a cache for the given configuration.
func NewJobCache(cfg CacheConfig) *JobCache {
	maxResults := cfg.MaxResults
	if maxResults <= 0 {
		maxResults = 4096
	}
	maxAnalyses := cfg.MaxAnalyses
	if maxAnalyses <= 0 {
		maxAnalyses = 64
	}
	jc := &JobCache{
		instances: cache.NewLRU(32),
		analyses:  cache.NewLRU(maxAnalyses),
	}
	if !cfg.NoResults {
		jc.results = cache.NewLRU(maxResults)
		if cfg.Dir != "" {
			jc.store = cache.NewStore(cfg.Dir)
		}
	}
	return jc
}

// Stats returns a snapshot of the cache's activity counters.
func (c *JobCache) Stats() cache.Stats { return c.counters.Snapshot() }

// appOut and analysisOut embed errors in LRU values so a singleflight waiter
// can distinguish real outcomes from cancellations (see LRU.Do).
type appOut struct {
	app *apps.App
	err error
}

type analysisOut struct {
	targets []*core.Target
	err     error
}

// App resolves a short registry name to an application, memoizing the
// instance so its sync.Once-guarded compiled form and fingerprint warm up
// once per cache rather than once per job (registry constructors build fresh
// instances per call).
func (c *JobCache) App(short string) (*apps.App, error) {
	v, _ := c.instances.Do(short, func() (any, bool) {
		a, err := apps.ByName(short)
		return appOut{app: a, err: err}, err == nil
	})
	out := v.(appOut)
	return out.app, out.err
}

// Targets returns the application's analyzed target sites, running the
// Analyzer (stages 1–3) on first use per (program fingerprint, options
// subset) and memoizing across every caller of the cache — pool goroutines,
// sweep waves, the harness planner. Analysis ignores the job seed, so one
// entry serves every site and seed. A cancellation is returned but never
// memoized: a later call under a live context re-analyzes, including a
// singleflight waiter whose own context outlived the analyzing goroutine's.
func (c *JobCache) Targets(ctx context.Context, app *apps.App, opts Options) ([]*core.Target, error) {
	// Register the caller's instance so subsequent by-name resolution (jobs
	// naming the same application) reuses it and its warmed sync.Once state.
	c.instances.Do(app.Short, func() (any, bool) { return appOut{app: app}, true })
	key := cache.Key("analysis", keyVersion, app.Fingerprint(), canonicalOpts(opts))
	for {
		v, hit := c.analyses.Do(key, func() (any, bool) {
			c.counters.AnalysisRun()
			targets, err := core.NewAnalyzer(app, opts.Core(0)).AnalyzeContext(ctx)
			return analysisOut{targets: targets, err: err}, err == nil
		})
		out := v.(analysisOut)
		if hit {
			if out.err != nil && isCtxErr(out.err) && ctx.Err() == nil {
				continue
			}
			if out.err == nil {
				c.counters.AnalysisHit()
			}
		}
		return out.targets, out.err
	}
}

// JobKey derives the content-addressed cache key for a job: the application
// fingerprint plus every job field that can influence its Result — kind,
// structured site identity, derived seed, sample budget, the enforced-label
// list in order, and the canonical encoding of the options subset — and the
// discovery-pass version, so results cached under an older site vocabulary
// miss cleanly when the discovery algorithm changes. Job.ID (a batch-local
// handle) and the application's registry name (the fingerprint is the real
// identity) are deliberately excluded.
func JobKey(fingerprint string, job Job) string {
	parts := []string{
		"result", keyVersion, discover.Version, absint.Version, fingerprint,
		string(job.Kind), job.Site, job.SiteKind, job.SitePath,
		strconv.FormatInt(job.Seed, 10),
		strconv.Itoa(job.SampleN),
		strconv.Itoa(len(job.Enforced)),
	}
	parts = append(parts, job.Enforced...)
	parts = append(parts, canonicalOpts(job.Opts))
	return cache.Key(parts...)
}

// canonicalOpts is the canonical encoding of the options subset:
// encoding/json writes struct fields in declaration order with deterministic
// scalar formatting, so equal subsets encode identically in every process.
func canonicalOpts(o Options) string {
	b, err := json.Marshal(o)
	if err != nil {
		panic("dispatch: options subset not serializable: " + err.Error())
	}
	return string(b)
}

func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// lookupDisk consults the on-disk store, counting a corrupt entry and
// treating it as a miss.
func (c *JobCache) lookupDisk(key string) ([]byte, bool) {
	if c.store == nil {
		return nil, false
	}
	payload, status := c.store.Get(key)
	if status == cache.DiskCorrupt {
		c.counters.Corrupt()
	}
	return payload, status == cache.DiskHit
}

// storeDisk writes a successful Result to the on-disk store, best-effort.
func (c *JobCache) storeDisk(key string, res Result) {
	if c.store == nil {
		return
	}
	payload, err := json.Marshal(res)
	if err != nil {
		return
	}
	if c.store.Put(key, payload) {
		c.counters.Store()
	}
}
