package solver

import (
	"fmt"
	"math/rand"
	"testing"

	"diode/internal/bv"
)

// randCond generates a random 8-bit constraint over the given variables —
// comparisons over small arithmetic terms, the shape of lifted branch
// conditions.
func randCond(rng *rand.Rand, vars []*bv.Term) *bv.Bool {
	x := vars[rng.Intn(len(vars))]
	y := vars[rng.Intn(len(vars))]
	c := bv.Const(8, uint64(rng.Intn(256)))
	var t *bv.Term
	switch rng.Intn(5) {
	case 0:
		t = bv.Add(x, y)
	case 1:
		t = bv.Mul(x, c)
	case 2:
		t = bv.Xor(x, y)
	case 3:
		t = bv.Sub(x, y)
	default:
		t = x
	}
	switch rng.Intn(4) {
	case 0:
		return bv.Ult(t, c)
	case 1:
		return bv.Ugt(t, c)
	case 2:
		return bv.Eq(bv.And(t, bv.Const(8, 7)), bv.Const(8, uint64(rng.Intn(8))))
	default:
		return bv.Sle(t, c)
	}
}

// TestSessionMatchesOneShot grows random conjunctions constraint by
// constraint and checks, at every step, that session-based Assert+Solve
// agrees with a one-shot Solve of the rebuilt conjunction. ModeSATOnly
// forces every solve through the persistent CDCL engine, so retained learned
// clauses, hash-consed re-encoding and assumption plumbing are all on the
// hot path; the hybrid round covers the concrete phase and model cache.
func TestSessionMatchesOneShot(t *testing.T) {
	for _, mode := range []Mode{ModeSATOnly, ModeHybrid} {
		mode := mode
		t.Run(fmt.Sprintf("mode%d", mode), func(t *testing.T) {
			rng := rand.New(rand.NewSource(99))
			for trial := 0; trial < 40; trial++ {
				vars := []*bv.Term{
					bv.Var(8, "se_a"), bv.Var(8, "se_b"), bv.Var(8, "se_c"),
				}
				n := 1 + rng.Intn(5)
				conds := make([]*bv.Bool, n)
				for i := range conds {
					conds[i] = randCond(rng, vars)
				}
				sess := New(Options{Seed: int64(trial), Mode: mode}).NewSession(conds[0])
				oneShot := New(Options{Seed: int64(1000 + trial), Mode: mode, OneShot: true})
				cur := conds[0]
				for i := 0; i < n; i++ {
					if i > 0 {
						sess.Assert(conds[i])
						cur = bv.AndB(cur, conds[i])
					}
					m, v := sess.Solve()
					_, want := oneShot.Solve(cur)
					if v != want {
						t.Fatalf("trial %d step %d: session %v, one-shot %v\nconstraint: %v",
							trial, i, v, want, cur)
					}
					if v == Sat {
						if ok, err := m.EvalBool(cur); err != nil || !ok {
							t.Fatalf("trial %d step %d: session model %v does not satisfy constraint (%v)",
								trial, i, m, err)
						}
					}
					if v == Unsat {
						break
					}
				}
			}
		})
	}
}

// TestSessionModelCache pins the reuse rule: a model returned before the
// conjunction grew is handed back once it re-validates against the extended
// conjunction, and re-solving an *unchanged* conjunction never replays the
// cache (the Figure 7 crashed-early case needs a fresh model).
func TestSessionModelCache(t *testing.T) {
	s := New(Options{Seed: 5})
	x := bv.Var(32, "mc_x")
	sess := s.NewSession(bv.Ugt(x, bv.Const(32, 100)))
	m1, v := sess.Solve()
	if v != Sat {
		t.Fatalf("initial solve: %v", v)
	}
	if hits := s.Snapshot().ModelCacheHits; hits != 0 {
		t.Fatalf("cache hit before the conjunction ever grew: %d", hits)
	}
	// Grow with a constraint m1 trivially satisfies.
	sess.Assert(bv.Ugt(x, bv.Const(32, 50)))
	m2, v := sess.Solve()
	if v != Sat {
		t.Fatalf("extended solve: %v", v)
	}
	if s.Snapshot().ModelCacheHits != 1 {
		t.Fatalf("extended solve should be a cache hit, stats %+v", s.Snapshot())
	}
	if m2["mc_x"] != m1["mc_x"] {
		t.Fatalf("cache hit returned a different model: %v vs %v", m2, m1)
	}
	// Unchanged conjunction: must NOT replay the cached model path.
	if _, v := sess.Solve(); v != Sat {
		t.Fatalf("re-solve: %v", v)
	}
	if s.Snapshot().ModelCacheHits != 1 {
		t.Fatalf("re-solve of unchanged conjunction replayed the cache, stats %+v", s.Snapshot())
	}
}

// TestSessionMonotonicUnsat: once the conjunction is unsatisfiable it stays
// so, and the session answers cheaply without poisoning the parent solver.
func TestSessionMonotonicUnsat(t *testing.T) {
	s := New(Options{Seed: 6})
	x := bv.Var(8, "mu_x")
	sess := s.NewSession(bv.Ult(x, bv.Const(8, 10)))
	if _, v := sess.Solve(); v != Sat {
		t.Fatalf("satisfiable start: %v", v)
	}
	sess.Assert(bv.Ugt(x, bv.Const(8, 20)))
	if _, v := sess.Solve(); v != Unsat {
		t.Fatal("contradiction not detected")
	}
	sess.Assert(bv.Ult(x, bv.Const(8, 5)))
	if _, v := sess.Solve(); v != Unsat {
		t.Fatal("unsat must be sticky under growth")
	}
	if got := sess.SampleModels(4); len(got) != 0 {
		t.Fatalf("unsat session sampled %d models", len(got))
	}
	// A fresh session on the same solver is unaffected.
	if _, v := s.NewSession(bv.Ult(x, bv.Const(8, 10))).Solve(); v != Sat {
		t.Fatal("parent solver poisoned by an unsat session")
	}
}

// TestSessionSamplingDoesNotNarrow is the reason blocking goes through guard
// literals: after sampling every solution of the constraint, a later Solve
// on the same session must still find one. Permanent blocking clauses would
// make it unsatisfiable.
func TestSessionSamplingDoesNotNarrow(t *testing.T) {
	// Force the CDCL path so blocking clauses actually enter the engine.
	s := New(Options{Seed: 7, Mode: ModeSATOnly})
	x := bv.Var(32, "sn_x")
	sess := s.NewSession(bv.OverflowCond(bv.Add(x, bv.Const(32, 2))))
	models := sess.SampleModels(200)
	if len(models) != 2 {
		t.Fatalf("got %d models, want exactly 2", len(models))
	}
	m, v := sess.Solve()
	if v != Sat {
		t.Fatalf("solve after exhaustive sampling = %v, want sat (guards must not persist)", v)
	}
	if m["sn_x"] != 0xFFFFFFFE && m["sn_x"] != 0xFFFFFFFF {
		t.Fatalf("model %v is not a solution", m)
	}
}

// TestSessionDeterminism: identical parent seeds and call sequences yield
// identical models, which is what lets hunts stay a pure function of
// (app, seed, site) with sessions enabled.
func TestSessionDeterminism(t *testing.T) {
	run := func() []bv.Assignment {
		s := New(Options{Seed: 21, Mode: ModeSATOnly})
		w := bv.Var(32, "sd_w")
		h := bv.Var(32, "sd_h")
		sess := s.NewSession(bv.OverflowCond(bv.Mul(w, h)))
		out := sess.SampleModels(5)
		sess.Assert(bv.Ult(w, bv.Const(32, 1<<20)))
		m, v := sess.Solve()
		if v != Sat {
			t.Fatalf("solve: %v", v)
		}
		return append(out, m)
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("model counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		for k, v := range a[i] {
			if b[i][k] != v {
				t.Fatalf("model %d differs at %s: %d vs %d", i, k, v, b[i][k])
			}
		}
	}
}

// TestSessionStatsCounters exercises the incremental counters end to end:
// repeated CDCL solves on one session must report retained learned clauses,
// and each sampling strategy must report its own draws — restart samples for
// the default, assumption solves for the blocking ablation.
func TestSessionStatsCounters(t *testing.T) {
	s := New(Options{Seed: 23, Mode: ModeSATOnly})
	w := bv.Var(32, "sc2_w")
	h := bv.Var(32, "sc2_h")
	sess := s.NewSession(bv.OverflowCond(bv.Mul(w, h)))
	if got := sess.SampleModels(6); len(got) != 6 {
		t.Fatalf("sampled %d models, want 6", len(got))
	}
	st := s.Snapshot()
	if st.RestartSamples == 0 {
		t.Errorf("default sampling drew no restart samples: %+v", st)
	}
	// Learnt retention is observed across incremental *solves*: narrowing the
	// conjunction forces real CDCL work (restart draws on this dense constraint
	// are nearly conflict-free, so sampling alone retains nothing), and the
	// growth of the learnt database is counted at the start of the next call.
	sess.Assert(bv.Ult(w, bv.Const(32, 4)))
	if _, v := sess.Solve(); v != Sat {
		t.Fatalf("narrowed solve: %v", v)
	}
	sess.Assert(bv.Ult(h, bv.Const(32, 1<<16)))
	if _, v := sess.Solve(); v != Unsat {
		t.Fatalf("contradicted solve: %v", v)
	}
	if _, v := sess.Solve(); v != Unsat {
		t.Fatalf("re-solve after unsat: %v", v)
	}
	if st = s.Snapshot(); st.ClausesReused == 0 {
		t.Errorf("no learned clauses retained across incremental calls: %+v", st)
	}

	sb := New(Options{Seed: 23, Mode: ModeSATOnly, Sampling: SamplingBlocking})
	bw := bv.Var(32, "sc2_bw")
	bh := bv.Var(32, "sc2_bh")
	bsess := sb.NewSession(bv.OverflowCond(bv.Mul(bw, bh)))
	if got := bsess.SampleModels(6); len(got) != 6 {
		t.Fatalf("blocking sampled %d models, want 6", len(got))
	}
	bst := sb.Snapshot()
	if bst.AssumptionSolves == 0 {
		t.Errorf("blocking sampling never solved under assumptions: %+v", bst)
	}
	if bst.RestartSamples != 0 {
		t.Errorf("blocking sampling drew restart samples: %+v", bst)
	}
}

// TestSessionRetryDiversity pins the crashed-early contract: re-solving an
// unchanged conjunction on a persistent engine must not be pinned to the
// previous model by saved phases — the enforcement loop re-solves precisely
// because it needs a different model.
func TestSessionRetryDiversity(t *testing.T) {
	s := New(Options{Seed: 31, Mode: ModeSATOnly})
	w := bv.Var(32, "rd_w")
	h := bv.Var(32, "rd_h")
	sess := s.NewSession(bv.OverflowCond(bv.Mul(w, h)))
	distinct := map[[2]uint64]bool{}
	for i := 0; i < 8; i++ {
		m, v := sess.Solve()
		if v != Sat {
			t.Fatalf("re-solve %d: %v", i, v)
		}
		distinct[[2]uint64{m["rd_w"], m["rd_h"]}] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("8 re-solves of an unchanged conjunction returned %d distinct model(s)", len(distinct))
	}

	// Every model-returning path must stamp the conjunction state as solved,
	// so the *first* re-solve after it already runs at retry polarity —
	// including after sampling (whose last model the saved phases hold) and
	// after a cache hit.
	s2 := New(Options{Seed: 32, Mode: ModeSATOnly})
	sess2 := s2.NewSession(bv.OverflowCond(bv.Mul(w, h)))
	if got := sess2.SampleModels(3); len(got) != 3 {
		t.Fatalf("sampled %d models, want 3", len(got))
	}
	if sess2.solvedGen != len(sess2.conj)+1 {
		t.Fatal("SampleModels did not mark the conjunction state solved")
	}
	s3 := New(Options{Seed: 33})
	x := bv.Var(32, "rd_x")
	sess3 := s3.NewSession(bv.Ugt(x, bv.Const(32, 9)))
	if _, v := sess3.Solve(); v != Sat {
		t.Fatal("expected sat")
	}
	sess3.Assert(bv.Ugt(x, bv.Const(32, 4)))
	if _, v := sess3.Solve(); v != Sat { // cache hit
		t.Fatal("expected sat")
	}
	if s3.Snapshot().ModelCacheHits != 1 {
		t.Fatalf("expected a cache hit, stats %+v", s3.Snapshot())
	}
	if sess3.solvedGen != len(sess3.conj)+1 {
		t.Fatal("cache hit did not mark the conjunction state solved")
	}
}
