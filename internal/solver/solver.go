// Package solver is the constraint-solving facade DIODE calls where the paper
// calls Z3 (§4.3): given a bitvector formula over input fields it produces a
// satisfying assignment, a proof of unsatisfiability, or (under a conflict
// budget) "unknown".
//
// The solver is hybrid. It first tries randomized concrete search — sample
// assignments and evaluate the formula directly — which is very fast when the
// solution set is dense (typical for raw overflow constraints: most large
// field values overflow a multiplication). When concrete search fails it
// falls back to the complete bit-blasting decision procedure, which is what
// settles unsatisfiable target constraints (17 of the paper's 40 sites) and
// finds the needle-in-a-haystack solutions that enforcement constraints
// produce.
//
// SampleModels implements the §5.5/§5.6 experiments: up to k *distinct*
// models of a constraint. The default strategy is restart sampling — between
// models the persistent engine re-randomizes decision polarities and variable
// activities and re-solves from the root, which keeps every solve cheap — and
// guard-literal blocking enumeration remains as the fallback that certifies
// exhaustion once restarts stop producing fresh models (and as an ablation
// strategy, Options.Sampling).
//
// The unit of solving is the Session: an incremental context over a
// monotonically growing conjunction, holding one persistent CDCL engine and
// one hash-consed blaster so that the Figure 7 enforcement loop re-encodes
// only the newly conjoined branch constraint each iteration and keeps all
// learned clauses. The stateless Solve and SampleModels remain as the
// simple API and delegate to a throwaway Session.
package solver

import (
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"diode/internal/bitblast"
	"diode/internal/bv"
	"diode/internal/sat"
)

// Verdict is the outcome of a Solve call.
type Verdict int

// Solve outcomes.
const (
	Unknown Verdict = iota
	Sat
	Unsat
)

func (v Verdict) String() string {
	switch v {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	}
	return "unknown"
}

// Mode selects the solving strategy (the ablation in DESIGN.md §"Design
// choices" compares these).
type Mode int

// Solving strategies.
const (
	ModeHybrid       Mode = iota // concrete sampling first, then bit-blasting
	ModeSATOnly                  // always bit-blast
	ModeConcreteOnly             // only randomized concrete search (incomplete)
)

// Sampling selects the model-enumeration strategy SampleModels uses once the
// concrete phase runs dry (the DESIGN.md ablation compares these).
type Sampling int

// Sampling strategies.
const (
	// SamplingRestart (the default) keeps one persistent engine and performs
	// a cheap randomized restart between samples — re-randomized decision
	// polarities and variable activities, backtrack to the root — instead of
	// asserting a blocking clause and re-solving from scratch. Guard-literal
	// blocking is still used, but only to *certify* exhaustion when restarts
	// stop producing fresh models.
	SamplingRestart Sampling = iota
	// SamplingBlocking is the canonical enumerate-and-block sequence: every
	// found model is blocked through a guard literal and the engine re-solves
	// under the guard assumptions. Kept as the ablation baseline
	// (BenchmarkSampleModels compares the two).
	SamplingBlocking
)

// Options configure a Solver.
type Options struct {
	// Seed seeds all randomness. Identical inputs and seeds give identical
	// results.
	Seed int64
	// ConcreteTries is the number of random assignments the concrete phase
	// evaluates before falling back to bit-blasting. Zero means the default
	// (4096).
	ConcreteTries int
	// MaxConflicts bounds the CDCL search per solve. Zero means the default
	// (500000).
	MaxConflicts int64
	// Mode selects the strategy; the zero value is ModeHybrid.
	Mode Mode
	// Sampling selects the SampleModels enumeration strategy; the zero value
	// is SamplingRestart.
	Sampling Sampling
	// Portfolio, when > 1, races that many engine configurations (polarity /
	// restart / seed variants, cloned from the session's persistent engine)
	// on CDCL solves that survive a cheap probe, first decisive result wins
	// by a deterministic (result, config index) tie-break, and learnt clauses
	// from uncancelled losers are folded back into the persistent engine.
	// Zero or one solves on the single persistent engine only.
	Portfolio int
	// OneShot disables incremental session state: every Session.Solve and
	// Session.SampleModels then rebuilds the full conjunction on a fresh
	// CDCL engine and blaster, the pre-session behavior. Kept as a
	// benchmark/ablation hook (BenchmarkHuntIncremental compares the two).
	OneShot bool
}

// Solver solves bitvector formulas. It is safe for concurrent use: the work
// counters are atomic and each Session owns a private random stream derived
// from (Seed, session ordinal), so concurrent sessions never contend on
// shared state. Session ordinals are handed out in NewSession call order, so
// for reproducible runs create one Solver per goroutine (as the core Hunter
// does) and give each a derived seed — concurrent NewSession calls on one
// Solver are race-free but their ordinal order follows the scheduler.
type Solver struct {
	opts     Options
	sessions atomic.Int64 // ordinal source for per-session RNG derivation
	stats    Collector
}

// New returns a Solver with the given options.
func New(opts Options) *Solver {
	if opts.ConcreteTries == 0 {
		opts.ConcreteTries = 4096
	}
	if opts.MaxConflicts == 0 {
		opts.MaxConflicts = 500000
	}
	return &Solver{opts: opts}
}

// sessionSeed derives the private RNG seed of the ordinal-th session from the
// solver seed (splitmix64 finalizer), so every session draws from a stream
// that is a pure function of (solver seed, session ordinal) — no session ever
// contends on, or perturbs, another session's randomness.
func sessionSeed(seed, ordinal int64) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(ordinal)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// Snapshot returns a point-in-time copy of the cumulative work counters.
func (s *Solver) Snapshot() Stats { return s.stats.Snapshot() }

// NoteGenFailure records that a model this solver produced could not be
// reconstructed into an input file (inputgen.Generator.Generate failed). The
// core reports these so success-rate totals can document how many sampled
// models were lost to generation rather than counted as non-triggering.
func (s *Solver) NoteGenFailure() { s.stats.genFailures.Add(1) }

// Solve returns a model of f, or Unsat/Unknown. It is the stateless entry
// point: each call runs on a throwaway Session. Callers that solve a growing
// conjunction repeatedly (the Figure 7 enforcement loop) should hold a
// Session instead and use Assert + Solve.
func (s *Solver) Solve(f *bv.Bool) (bv.Assignment, Verdict) {
	return s.NewSession(f).Solve()
}

// concreteSearch samples random assignments, mixing uniform values with
// boundary values (0, 1, all-ones, single bits) that are likely to matter for
// overflow and comparison constraints. The formula is compiled once per call
// (bv.CompileBool) so each try is a flat-array evaluation. rng is the
// caller's private stream (the session's, for session solves).
func concreteSearch(rng *rand.Rand, f *bv.Bool, vars bv.VarSet, tries int) bv.Assignment {
	names := vars.Names()
	if len(names) == 0 {
		return nil
	}
	return concreteTries(rng, bv.CompileBool(f), vars, names, tries)
}

// concreteTries runs the random-assignment loop against a pre-compiled
// formula.
func concreteTries(rng *rand.Rand, ce *bv.CompiledBool, vars bv.VarSet, names []string, tries int) bv.Assignment {
	m := make(bv.Assignment, len(names))
	for i := 0; i < tries; i++ {
		for _, n := range names {
			w := vars[n].W
			m[n] = randomValue(rng, w)
		}
		ok, err := ce.Eval(m)
		if err != nil {
			return nil
		}
		if ok {
			out := make(bv.Assignment, len(m))
			for k, v := range m {
				out[k] = v
			}
			return out
		}
	}
	return nil
}

func randomValue(rng *rand.Rand, w uint8) uint64 {
	mask := bv.Mask(w)
	switch rng.Intn(8) {
	case 0:
		// Boundary values.
		switch rng.Intn(4) {
		case 0:
			return 0
		case 1:
			return 1
		case 2:
			return mask
		default:
			return mask - 1
		}
	case 1:
		// A single set bit.
		return (uint64(1) << uint(rng.Intn(int(w)))) & mask
	case 2:
		// Small value.
		return uint64(rng.Intn(256)) & mask
	default:
		return rng.Uint64() & mask
	}
}

// satSolve bit-blasts f (plus optional blocking clauses from prior models)
// and runs the CDCL solver.
func (s *Solver) satSolve(rng *rand.Rand, f *bv.Bool, blocked []bv.Assignment) (bv.Assignment, Verdict) {
	s.stats.satSolves.Add(1)
	engine := sat.New(sat.Options{
		Seed:           rng.Int63(),
		RandomPolarity: polarityFind,
		MaxConflicts:   s.opts.MaxConflicts,
	})
	bl := bitblast.New(engine)
	bl.Assert(f)
	vars := bv.BoolVars(f)
	for _, m := range blocked {
		s.blockModel(engine, bl, vars, m)
	}
	switch engine.Solve() {
	case sat.Sat:
		return bl.Model(), Sat
	case sat.Unsat:
		s.stats.unsatResults.Add(1)
		return nil, Unsat
	default:
		s.stats.unknownOut.Add(1)
		return nil, Unknown
	}
}

func (s *Solver) blockModel(engine *sat.Solver, bl *bitblast.Blaster, vars bv.VarSet, m bv.Assignment) {
	var clause []sat.Lit
	for _, name := range vars.Names() {
		v, ok := m[name]
		if !ok {
			continue
		}
		bits := bl.Bits(vars[name])
		for i, l := range bits {
			if v>>uint(i)&1 == 1 {
				clause = append(clause, l.Neg())
			} else {
				clause = append(clause, l)
			}
		}
	}
	if len(clause) > 0 {
		engine.AddClause(clause...)
	}
}

// SampleModels returns up to k distinct models of f. It is the machinery for
// the paper's "generate 200 inputs that satisfy the constraint" experiments.
// When the constraint has fewer than k solutions over its variables, every
// solution is returned (e.g. the paper's x+2 overflow with exactly two
// solutions, §5.5). Like Solve, it is the stateless entry point over a
// throwaway Session.
func (s *Solver) SampleModels(f *bv.Bool, k int) []bv.Assignment {
	return s.NewSession(f).SampleModels(k)
}

// modelSet collects distinct models of one constraint; the dedup key is the
// sorted-variable assignment rendering, shared by the session and one-shot
// sampling paths.
type modelSet struct {
	vars   bv.VarSet
	seen   map[string]bool
	models []bv.Assignment
}

func newModelSet(vars bv.VarSet) *modelSet {
	return &modelSet{vars: vars, seen: make(map[string]bool)}
}

func (ms *modelSet) add(m bv.Assignment) bool {
	key := assignmentKey(m, ms.vars)
	if ms.seen[key] {
		return false
	}
	ms.seen[key] = true
	ms.models = append(ms.models, m)
	return true
}

// concretePhase is phase 1 of sampling: concrete search, cheap, and for
// check-free constraints it finds k dense solutions almost immediately.
// No-op in ModeSATOnly. The formula is compiled once for the whole phase.
func (s *Solver) concretePhase(rng *rand.Rand, f *bv.Bool, ms *modelSet, k int) {
	if s.opts.Mode == ModeSATOnly {
		return
	}
	names := ms.vars.Names()
	if len(names) == 0 {
		return
	}
	ce := bv.CompileBool(f)
	budget := s.opts.ConcreteTries * 4
	for i := 0; i < budget && len(ms.models) < k; i++ {
		if m := concreteTries(rng, ce, ms.vars, names, 1); m != nil {
			ms.add(m)
		}
	}
}

// sampleOneShot is the pre-session sampling path (Options.OneShot): concrete
// phase, then complete enumeration with blocking clauses on a fresh engine.
func (s *Solver) sampleOneShot(rng *rand.Rand, f *bv.Bool, k int) []bv.Assignment {
	ms := newModelSet(bv.BoolVars(f))
	s.concretePhase(rng, f, ms, k)
	if len(ms.models) >= k || s.opts.Mode == ModeConcreteOnly {
		return ms.models
	}

	// Phase 2: complete enumeration with blocking clauses, one incremental
	// SAT solver, randomized polarity for diversity.
	engine := sat.New(sat.Options{
		Seed:           rng.Int63(),
		RandomPolarity: polaritySample,
		MaxConflicts:   s.opts.MaxConflicts,
	})
	bl := bitblast.New(engine)
	bl.Assert(f)
	for _, m := range ms.models {
		s.blockModel(engine, bl, ms.vars, m)
	}
	for len(ms.models) < k {
		res := engine.Solve()
		if res != sat.Sat {
			break
		}
		m := bl.Model()
		engine.CancelToRoot()
		if !ms.add(m) {
			// A model the blocking clauses should have excluded came back: a
			// sampling-strategy bug. Count it so it surfaces in stats instead
			// of silently truncating the sample, and stop rather than loop.
			s.stats.duplicateModels.Add(1)
			break
		}
		s.blockModel(engine, bl, ms.vars, m)
	}
	return ms.models
}

func assignmentKey(m bv.Assignment, vars bv.VarSet) string {
	names := make([]string, 0, len(vars))
	for n := range vars {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		b.WriteString(n)
		b.WriteByte('=')
		b.WriteString(strconv.FormatUint(m[n], 16))
		b.WriteByte(';')
	}
	return b.String()
}
