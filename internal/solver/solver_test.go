package solver

import (
	"sync"
	"testing"

	"diode/internal/bv"
)

func mustModel(t *testing.T, s *Solver, f *bv.Bool) bv.Assignment {
	t.Helper()
	m, v := s.Solve(f)
	if v != Sat {
		t.Fatalf("Solve = %v, want sat", v)
	}
	ok, err := m.EvalBool(f)
	if err != nil {
		t.Fatalf("model incomplete: %v", err)
	}
	if !ok {
		t.Fatalf("model %v does not satisfy constraint", m)
	}
	return m
}

func TestSolveSimple(t *testing.T) {
	s := New(Options{Seed: 1})
	x := bv.Var(32, "ss_x")
	f := bv.AndB(bv.Ugt(x, bv.Const(32, 1000)), bv.Ult(x, bv.Const(32, 1010)))
	m := mustModel(t, s, f)
	if m["ss_x"] <= 1000 || m["ss_x"] >= 1010 {
		t.Fatalf("x = %d out of range", m["ss_x"])
	}
}

func TestSolveConstants(t *testing.T) {
	s := New(Options{Seed: 1})
	if _, v := s.Solve(bv.True()); v != Sat {
		t.Fatal("true must be sat")
	}
	if _, v := s.Solve(bv.False()); v != Unsat {
		t.Fatal("false must be unsat")
	}
}

// TestUnsatOverflow mirrors the paper's "target constraint unsatisfiable"
// sites (17 of 40): an allocation size like zext(u8)*4 computed in 32 bits
// can never wrap, and the solver must prove it.
func TestUnsatOverflow(t *testing.T) {
	s := New(Options{Seed: 1})
	n := bv.Var(8, "uo_n")
	size := bv.Mul(bv.ZExt(32, n), bv.Const(32, 4))
	_, v := s.Solve(bv.OverflowCond(size))
	if v != Unsat {
		t.Fatalf("Solve = %v, want unsat", v)
	}
}

func TestSatOverflow(t *testing.T) {
	s := New(Options{Seed: 1})
	w := bv.Var(32, "so_w")
	h := bv.Var(32, "so_h")
	size := bv.Mul(w, h)
	m := mustModel(t, s, bv.OverflowCond(size))
	// The ideal product must exceed 2^32.
	if hi := (m["so_w"] * m["so_h"]) >> 32; hi == 0 && m["so_w"]*m["so_h"] <= 0xFFFFFFFF {
		t.Fatalf("model %v does not overflow a 32-bit multiply", m)
	}
}

// TestSolveUnderSanityChecks emulates an enforcement-iteration constraint:
// overflow must happen while both fields stay below a sanity bound —
// solutions are sparse enough that concrete sampling alone is unlikely.
func TestSolveUnderSanityChecks(t *testing.T) {
	s := New(Options{Seed: 3})
	w := bv.Var(32, "sc_w")
	h := bv.Var(32, "sc_h")
	size := bv.Mul(w, h)
	million := bv.Const(32, 1000000)
	f := bv.AndB(bv.OverflowCond(size),
		bv.AndB(bv.Ult(w, million), bv.Ult(h, million)))
	m := mustModel(t, s, f)
	if m["sc_w"] >= 1000000 || m["sc_h"] >= 1000000 {
		t.Fatalf("model %v violates sanity bounds", m)
	}
	if m["sc_w"]*m["sc_h"] <= 0xFFFFFFFF {
		t.Fatalf("model %v does not overflow", m)
	}
}

func TestSolverModes(t *testing.T) {
	x := bv.Var(16, "md_x")
	f := bv.Eq(bv.Mul(x, x), bv.Const(16, 0x0CE4)) // 58*58 = 3364 = 0x0D24? compute below
	// Use a constraint with a guaranteed solution: x*3 = 999 → x = 333.
	f = bv.Eq(bv.Mul(x, bv.Const(16, 3)), bv.Const(16, 999))

	for _, mode := range []Mode{ModeHybrid, ModeSATOnly} {
		s := New(Options{Seed: 5, Mode: mode})
		m, v := s.Solve(f)
		if v != Sat {
			t.Fatalf("mode %d: %v", mode, v)
		}
		if got, _ := m.EvalBool(f); !got {
			t.Fatalf("mode %d: bad model %v", mode, m)
		}
	}
	// Concrete-only mode is incomplete: it must never claim Unsat.
	s := New(Options{Seed: 5, Mode: ModeConcreteOnly, ConcreteTries: 10})
	if _, v := s.Solve(f); v == Unsat {
		t.Fatal("concrete-only mode claimed unsat")
	}
}

// TestSampleExactlyTwoSolutions reproduces the CVE-2008-2430 situation from
// §5.5: the target expression x+2 (32-bit) overflows for exactly two input
// values, and sampling must find both and no more.
func TestSampleExactlyTwoSolutions(t *testing.T) {
	s := New(Options{Seed: 7})
	x := bv.Var(32, "s2_x")
	f := bv.OverflowCond(bv.Add(x, bv.Const(32, 2)))
	models := s.SampleModels(f, 200)
	if len(models) != 2 {
		t.Fatalf("got %d models, want exactly 2", len(models))
	}
	seen := map[uint64]bool{}
	for _, m := range models {
		seen[m["s2_x"]] = true
	}
	if !seen[0xFFFFFFFE] || !seen[0xFFFFFFFF] {
		t.Fatalf("models = %v, want {0xFFFFFFFE, 0xFFFFFFFF}", models)
	}
}

func TestSampleManyDistinct(t *testing.T) {
	s := New(Options{Seed: 11})
	w := bv.Var(32, "sm_w")
	h := bv.Var(32, "sm_h")
	f := bv.OverflowCond(bv.Mul(w, h))
	models := s.SampleModels(f, 50)
	if len(models) != 50 {
		t.Fatalf("got %d models, want 50", len(models))
	}
	seen := make(map[[2]uint64]bool)
	for _, m := range models {
		key := [2]uint64{m["sm_w"], m["sm_h"]}
		if seen[key] {
			t.Fatalf("duplicate model %v", key)
		}
		seen[key] = true
		if ok, _ := m.EvalBool(f); !ok {
			t.Fatalf("model %v does not satisfy constraint", m)
		}
	}
}

func TestSampleUnsat(t *testing.T) {
	s := New(Options{Seed: 13})
	n := bv.Var(8, "su_n")
	f := bv.OverflowCond(bv.Mul(bv.ZExt(32, n), bv.Const(32, 2)))
	if models := s.SampleModels(f, 10); len(models) != 0 {
		t.Fatalf("unsat constraint yielded %d models", len(models))
	}
}

func TestDeterminismPerSeed(t *testing.T) {
	x := bv.Var(32, "dt_x")
	f := bv.Ugt(x, bv.Const(32, 12345))
	m1, _ := New(Options{Seed: 42}).Solve(f)
	m2, _ := New(Options{Seed: 42}).Solve(f)
	if m1["dt_x"] != m2["dt_x"] {
		t.Fatalf("same seed, different models: %v vs %v", m1, m2)
	}
}

func TestStatsTracking(t *testing.T) {
	s := New(Options{Seed: 1})
	x := bv.Var(32, "st_x")
	s.Solve(bv.Ugt(x, bv.Const(32, 5)))           // dense: concrete hit
	s.Solve(bv.Ult(x, bv.Const(32, 0)))           // folds to false constant
	s.Solve(bv.Eq(x, bv.Add(x, bv.Const(32, 1)))) // unsat via SAT
	st := s.Snapshot()
	if st.ConcreteHits < 1 {
		t.Errorf("expected at least one concrete hit, got %+v", st)
	}
	if st.UnsatResults < 1 {
		t.Errorf("expected at least one unsat, got %+v", st)
	}
}

// TestConcurrentSolve hammers one Solver from many goroutines; run under
// -race it proves the shared random stream and the work counters are safe
// for concurrent solvers.
func TestConcurrentSolve(t *testing.T) {
	s := New(Options{Seed: 7, ConcreteTries: 64})
	x := bv.Var(32, "cc_x")
	sat := bv.Ugt(x, bv.Const(32, 1000))                   // dense: concrete hit
	unsat := bv.Eq(x, bv.Add(x, bv.Const(32, 1)))          // settled by CDCL
	narrow := bv.AndB(bv.Ugt(x, bv.Const(32, 0xfffffff0)), // sparse: falls back
		bv.Ult(x, bv.Const(32, 0xfffffff4)))

	const workers = 8
	const rounds = 20
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if m, v := s.Solve(sat); v != Sat || m["cc_x"] <= 1000 {
					t.Errorf("worker %d: sat constraint: %v %v", w, v, m)
				}
				if _, v := s.Solve(unsat); v != Unsat {
					t.Errorf("worker %d: unsat constraint not proven", w)
				}
				if m, v := s.Solve(narrow); v != Sat {
					t.Errorf("worker %d: narrow constraint: %v %v", w, v, m)
				}
			}
		}(w)
	}
	wg.Wait()

	st := s.Snapshot()
	if st.UnsatResults != workers*rounds {
		t.Errorf("UnsatResults = %d, want %d", st.UnsatResults, workers*rounds)
	}
	if hits := st.ConcreteHits; hits < workers*rounds {
		t.Errorf("ConcreteHits = %d, want >= %d", hits, workers*rounds)
	}
}

// TestCollectorAggregation folds snapshots from several hunter-local solvers
// into one Collector, concurrently, the way the scheduler does.
func TestCollectorAggregation(t *testing.T) {
	var agg Collector
	x := bv.Var(16, "ag_x")
	f := bv.Ugt(x, bv.Const(16, 10))
	var wg sync.WaitGroup
	const n = 6
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := New(Options{Seed: int64(i)})
			s.Solve(f)
			agg.Add(s.Snapshot())
		}(i)
	}
	wg.Wait()
	got := agg.Snapshot()
	if got.ConcreteHits+got.SATSolves < n {
		t.Errorf("aggregate lost work: %+v", got)
	}
}
