package solver

import (
	"math/rand"
	"sync"
	"testing"

	"diode/internal/bv"
)

// factorCond encodes exact integer factoring — x·y = c with both operands
// zero-extended to 2w bits so the product cannot wrap, and both factors
// nontrivial. Semiprime values of c make this the hardest small formula the
// bit-blaster produces, which is what portfolio tests need: a solve that
// reliably outlives the portfolio probe budget.
func factorCond(w uint8, c uint64, tag string) *bv.Bool {
	x := bv.Var(w, "fx_"+tag)
	y := bv.Var(w, "fy_"+tag)
	w2 := uint8(2 * w)
	prod := bv.Mul(bv.ZExt(w2, x), bv.ZExt(w2, y))
	return bv.AndB(bv.Eq(prod, bv.Const(w2, c)),
		bv.AndB(bv.Ugt(x, bv.Const(w, 1)), bv.Ugt(y, bv.Const(w, 1))))
}

// sampleWith draws k models with the given strategy on a fresh solver and
// validates every model before returning them.
func sampleWith(t *testing.T, seed int64, strategy Sampling, f *bv.Bool, k int) []bv.Assignment {
	t.Helper()
	s := New(Options{Seed: seed, Mode: ModeSATOnly, Sampling: strategy})
	models := s.SampleModels(f, k)
	seen := make(map[string]bool, len(models))
	vars := bv.BoolVars(f)
	for i, m := range models {
		ok, err := m.EvalBool(f)
		if err != nil || !ok {
			t.Fatalf("strategy %v model %d does not satisfy the formula: %v (err %v)", strategy, i, m, err)
		}
		key := assignmentKey(m, vars)
		if seen[key] {
			t.Fatalf("strategy %v returned duplicate model %v", strategy, m)
		}
		seen[key] = true
	}
	return models
}

// TestSamplingStrategyEquivalence is the cross-strategy property test:
// restart sampling and blocking enumeration must return valid, distinct
// models everywhere, and on exhaustible formulas (either strategy certified
// exhaustion by returning fewer than k models) they must agree on the exact
// model count — restart sampling's blocking fallback is what makes its count
// a certificate too.
func TestSamplingStrategyEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	x := bv.Var(8, "eq_x")
	y := bv.Var(8, "eq_y")
	for trial := 0; trial < 25; trial++ {
		var f *bv.Bool
		var k int
		if trial%2 == 0 {
			// Single 8-bit variable: at most 256 models, k pushes past them so
			// both strategies must certify exhaustion.
			f = randCond(rng, []*bv.Term{x})
			k = 300
		} else {
			f = bv.AndB(randCond(rng, []*bv.Term{x, y}), randCond(rng, []*bv.Term{x, y}))
			k = 25
		}
		restart := sampleWith(t, int64(trial), SamplingRestart, f, k)
		blocking := sampleWith(t, int64(trial), SamplingBlocking, f, k)
		if len(restart) < k || len(blocking) < k {
			if len(restart) != len(blocking) {
				t.Fatalf("trial %d: exhaustible formula %v: restart found %d models, blocking %d",
					trial, f, len(restart), len(blocking))
			}
		}
	}
}

// TestSampleModelsDeterministic pins the per-seed purity contract: for a
// fixed seed the model *sequence* (values and order) is identical across
// runs, and a different seed diverges.
func TestSampleModelsDeterministic(t *testing.T) {
	x := bv.Var(16, "det_x")
	f := bv.Ult(bv.Mul(x, bv.Const(16, 2531)), bv.Const(16, 997))
	vars := bv.BoolVars(f)
	render := func(seed int64) []string {
		s := New(Options{Seed: seed, Mode: ModeSATOnly})
		var keys []string
		for _, m := range s.SampleModels(f, 12) {
			keys = append(keys, assignmentKey(m, vars))
		}
		return keys
	}
	a, b := render(7), render(7)
	if len(a) == 0 {
		t.Fatal("no models sampled")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at model %d: %s vs %s", i, a[i], b[i])
		}
	}
	c := render(8)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced the identical model sequence")
	}
}

// TestRestartSamplingExhaustionStats is the DuplicateModels regression test:
// on a single-model constraint, restart sampling rediscovers the model until
// the staleness bound trips, counts every rediscovery, and falls back to
// blocking exactly once to certify exhaustion — returning the one model, not
// looping.
func TestRestartSamplingExhaustionStats(t *testing.T) {
	x := bv.Var(8, "ex_x")
	f := bv.Eq(x, bv.Const(8, 42))
	s := New(Options{Seed: 3, Mode: ModeSATOnly})
	models := s.SampleModels(f, 5)
	if len(models) != 1 || models[0]["ex_x"] != 42 {
		t.Fatalf("sampled %v, want exactly {ex_x:42}", models)
	}
	st := s.Snapshot()
	if st.DuplicateModels != restartSampleStale {
		t.Errorf("DuplicateModels = %d, want %d (staleness bound)", st.DuplicateModels, restartSampleStale)
	}
	if st.BlockingFallbacks != 1 {
		t.Errorf("BlockingFallbacks = %d, want 1", st.BlockingFallbacks)
	}
	if st.RestartSamples != restartSampleStale+1 {
		t.Errorf("RestartSamples = %d, want %d", st.RestartSamples, restartSampleStale+1)
	}

	// Blocking enumeration on the same constraint needs no duplicates at all.
	sb := New(Options{Seed: 3, Mode: ModeSATOnly, Sampling: SamplingBlocking})
	if models := sb.SampleModels(f, 5); len(models) != 1 {
		t.Fatalf("blocking sampled %d models, want 1", len(models))
	}
	if st := sb.Snapshot(); st.DuplicateModels != 0 {
		t.Errorf("blocking DuplicateModels = %d, want 0", st.DuplicateModels)
	}
}

// TestPortfolioDeterminism runs the same portfolio-mode solve repeatedly and
// demands bit-identical outcomes: verdict, model and the learnt-sharing
// volume. The configuration is tuned (16-bit semiprime factoring, conflict
// budget below the instance's hardness) so the probe reliably exhausts and a
// real race runs — PortfolioRaces confirms it — making this a test of the
// deterministic (result, config index) tie-break, not of the easy probe path.
func TestPortfolioDeterminism(t *testing.T) {
	type outcome struct {
		verdict Verdict
		key     string
		races   int
		shared  int
	}
	f := factorCond(16, 1021*1019, "pd")
	vars := bv.BoolVars(f)
	run := func() outcome {
		s := New(Options{Seed: 1, Mode: ModeSATOnly, Portfolio: 4, MaxConflicts: 1000})
		m, v := s.Solve(f)
		st := s.Snapshot()
		o := outcome{verdict: v, races: st.PortfolioRaces, shared: st.LearntsShared}
		if m != nil {
			if ok, err := m.EvalBool(f); err != nil || !ok {
				t.Fatalf("portfolio model does not satisfy the formula: %v (err %v)", m, err)
			}
			o.key = assignmentKey(m, vars)
		}
		return o
	}
	first := run()
	if first.races == 0 {
		t.Fatal("probe budget was enough: no portfolio race ran; lower MaxConflicts or harden the formula")
	}
	if first.verdict != Sat {
		t.Fatalf("portfolio solve = %v, want sat", first.verdict)
	}
	for i := 1; i < 4; i++ {
		if got := run(); got != first {
			t.Fatalf("run %d diverged: %+v vs %+v", i, got, first)
		}
	}
}

// TestPortfolioConcurrentHammer exercises portfolio racing from many
// goroutines at once — clone creation, stop-flag cancellation and learnt
// folding all run concurrently, which is what `go test -race` inspects here.
// Each goroutine owns its solver, as the core's per-site Hunters do.
func TestPortfolioConcurrentHammer(t *testing.T) {
	f := factorCond(16, 1021*1019, "ph")
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s := New(Options{Seed: int64(g), Mode: ModeSATOnly, Portfolio: 4, MaxConflicts: 600})
			m, v := s.Solve(f)
			if v == Sat {
				if ok, err := m.EvalBool(f); err != nil || !ok {
					errs <- "invalid model under concurrency"
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// TestPortfolioSessionStaysUsable checks that a race does not poison the
// persistent engine: after a portfolio solve the same session must keep
// answering further Solve and SampleModels calls correctly on the grown
// conjunction.
func TestPortfolioSessionStaysUsable(t *testing.T) {
	f := factorCond(16, 1021*1019, "pu")
	s := New(Options{Seed: 1, Mode: ModeSATOnly, Portfolio: 4, MaxConflicts: 1000})
	sess := s.NewSession(f)
	m, v := sess.Solve()
	if v != Sat {
		t.Fatalf("portfolio solve = %v, want sat", v)
	}
	// Pin one factor: the conjunction grows and must stay solvable, and the
	// new model must honor the added constraint.
	sess.Assert(bv.Eq(bv.Var(16, "fx_pu"), bv.Const(16, m["fx_pu"])))
	m2, v2 := sess.Solve()
	if v2 != Sat || m2["fx_pu"] != m["fx_pu"] {
		t.Fatalf("post-race solve = %v model %v, want sat with fx_pu=%d", v2, m2, m["fx_pu"])
	}
	if models := sess.SampleModels(3); len(models) == 0 {
		t.Fatal("post-race sampling found nothing")
	}
	// Contradict the pinned factor: definitive unsat must come through.
	sess.Assert(bv.Eq(bv.Var(16, "fy_pu"), bv.Const(16, 0)))
	if _, v3 := sess.Solve(); v3 != Unsat {
		t.Fatalf("contradicted conjunction = %v, want unsat", v3)
	}
}
