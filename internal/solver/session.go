package solver

import (
	"diode/internal/bitblast"
	"diode/internal/bv"
	"diode/internal/sat"
)

// Session is an incremental solving session over a monotonically growing
// conjunction — the exact workload shape of the Figure 7 enforcement loop,
// which conjoins one more flipped-branch constraint into φ′ each iteration
// and re-solves φ′∧β. A Session owns one persistent CDCL engine and one
// hash-consed blaster, so across the loop:
//
//   - each conjunct is bit-blasted exactly once, and shared subterms (the
//     target expression B appears in every iteration's conjunction) are
//     encoded exactly once in total;
//   - clauses learned while refuting earlier iterations' search space are
//     retained, as are saved variable phases;
//   - models found earlier in the session are re-checked against the
//     extended conjunction before any fresh search runs — a model that
//     still satisfies the grown formula is returned directly. A cached
//     model is only eligible after the conjunction has grown past the
//     point where it was last returned, so a loop that re-solves an
//     unchanged formula to get a *different* model (Hunt's crashed-early
//     case) is never fed the same answer twice.
//
// Determinism: a Session draws all randomness (concrete sampling, the
// engine seed) from its parent Solver's seeded stream in a data-determined
// order, so session verdicts and models are a pure function of the parent's
// seed and the Assert/Solve/SampleModels call sequence. The sampling phase
// blocks found models through guard literals activated via
// SolveUnderAssumptions rather than permanent clauses, so sampling never
// narrows what later Solve calls may return.
//
// A Session is not safe for concurrent use; create one per goroutine (the
// core Hunter opens one per hunt).
type Session struct {
	sol  *Solver
	cur  *bv.Bool        // conjunction of everything asserted so far
	conj []*bv.Bool      // deduped conjuncts in assertion order
	ids  map[uint64]bool // intern ids of conj entries
	vars bv.VarSet       // union of the conjuncts' free variables

	engine      *sat.Solver
	bl          *bitblast.Blaster
	encoded     int // conj[:encoded] have been asserted into bl
	cdclCalls   int
	solvedGen   int // 1 + conjunction length at the last CDCL Solve (0 = never)
	learntsSeen int // high-water learnt count already folded into ClausesReused

	cache []cachedModel
}

// cachedModel is a model previously returned by this session, tagged with
// the conjunction length at the time it was last returned. It becomes a
// candidate answer again only once the conjunction has grown beyond that
// point.
type cachedModel struct {
	m   bv.Assignment
	gen int
}

// Random decision polarities for the persistent engine, by purpose. Saved
// phases make a persistent engine strongly prefer re-deriving its previous
// model, which is what we want when the conjunction just grew (warm start)
// but exactly wrong when a caller re-solves an *unchanged* conjunction to
// get a different model (Hunt's crashed-early case) — there the retry rate
// matches the sampling rate so saved phases cannot pin the search.
const (
	polarityFind   = 0.02 // first solve of a given conjunction state
	polarityRetry  = 0.2  // re-solve of an unchanged conjunction
	polaritySample = 0.2  // model enumeration
)

// NewSession opens an incremental session whose initial constraint is beta
// (the target constraint in a hunt). Further constraints are conjoined with
// Assert. The CDCL engine is created lazily on the first solve that needs
// it, drawing its seed from the parent solver's stream at that point.
func (s *Solver) NewSession(beta *bv.Bool) *Session {
	ss := &Session{
		sol:  s,
		cur:  bv.True(),
		ids:  make(map[uint64]bool),
		vars: make(bv.VarSet),
	}
	ss.Assert(beta)
	return ss
}

// Assert conjoins cond into the session's constraint. The formula is split
// into leaf conjuncts (bv.Conjuncts), and only conjuncts the session has not
// seen before are recorded — so re-asserting φ′∧β after one more branch
// constraint was conjoined costs exactly one new conjunct. Nothing is
// bit-blasted yet; encoding happens on the first solve that reaches the
// CDCL phase.
func (ss *Session) Assert(cond *bv.Bool) {
	for _, c := range bv.Conjuncts(cond) {
		if c.Kind == bv.BConst {
			if !c.BVal {
				ss.cur = bv.False()
			}
			continue
		}
		if ss.ids[c.ID()] {
			continue
		}
		ss.ids[c.ID()] = true
		ss.conj = append(ss.conj, c)
		ss.cur = bv.AndB(ss.cur, c)
		for name, v := range bv.BoolVars(c) {
			ss.vars[name] = v
		}
	}
}

// Constraint returns the conjunction of everything asserted so far.
func (ss *Session) Constraint() *bv.Bool { return ss.cur }

// Solve returns a model of the current conjunction, or Unsat/Unknown.
// Unsat is definitive for every later state of the session too (the
// conjunction only grows), and the session keeps answering Unsat cheaply.
func (ss *Session) Solve() (bv.Assignment, Verdict) {
	f := ss.cur
	if f.Kind == bv.BConst {
		if f.BVal {
			return bv.Assignment{}, Sat
		}
		return nil, Unsat
	}
	s := ss.sol
	if !s.opts.OneShot {
		for i := range ss.cache {
			cm := &ss.cache[i]
			if cm.gen >= len(ss.conj) {
				continue
			}
			if ok, err := cm.m.EvalBool(f); err == nil && ok {
				cm.gen = len(ss.conj)
				ss.solvedGen = len(ss.conj) + 1
				s.stats.modelCacheHits.Add(1)
				return cm.m, Sat
			}
		}
	}
	if s.opts.Mode != ModeSATOnly {
		if m := s.concreteSearch(f, ss.vars, s.opts.ConcreteTries); m != nil {
			s.stats.concreteHits.Add(1)
			ss.remember(m)
			return m, Sat
		}
		if s.opts.Mode == ModeConcreteOnly {
			s.stats.unknownOut.Add(1)
			return nil, Unknown
		}
	}
	if s.opts.OneShot {
		return s.satSolve(f, nil)
	}
	polarity := polarityFind
	if ss.solvedGen == len(ss.conj)+1 {
		polarity = polarityRetry // unchanged conjunction: the caller wants a different model
	}
	ss.ensureEngine(polarity)
	switch ss.cdcl(nil) {
	case sat.Sat:
		m := ss.bl.Model()
		ss.remember(m)
		return m, Sat
	case sat.Unsat:
		s.stats.unsatResults.Add(1)
		return nil, Unsat
	default:
		s.stats.unknownOut.Add(1)
		return nil, Unknown
	}
}

// SampleModels returns up to k distinct models of the current conjunction
// (Solver.SampleModels semantics, on the session's persistent engine). The
// blocking clauses that force distinctness are guarded by fresh literals and
// activated through assumptions, so they evaporate after the call: a later
// Solve on the grown conjunction may still return any model, including ones
// sampled here — which is exactly what the model cache then exploits.
func (ss *Session) SampleModels(k int) []bv.Assignment {
	f := ss.cur
	if f.Kind == bv.BConst {
		if f.BVal {
			return []bv.Assignment{{}}
		}
		return nil
	}
	s := ss.sol
	if s.opts.OneShot {
		return s.sampleOneShot(f, k)
	}

	ms := newModelSet(ss.vars)
	s.concretePhase(f, ms, k)
	if len(ms.models) < k && s.opts.Mode != ModeConcreteOnly {
		// Phase 2: complete enumeration on the persistent engine, high
		// random polarity for diversity, guard-literal blocking.
		ss.ensureEngine(polaritySample)
		ss.assertPending()
		var guards []sat.Lit
		for _, m := range ms.models {
			guards = append(guards, ss.guardBlock(m))
		}
		for len(ms.models) < k {
			if ss.cdcl(guards) != sat.Sat {
				break
			}
			m := ss.bl.Model()
			if !ms.add(m) {
				break // defensive: blocking should prevent repeats
			}
			guards = append(guards, ss.guardBlock(m))
		}
	}
	for _, m := range ms.models {
		ss.remember(m)
	}
	return ms.models
}

// remember records a model the session has returned, tagged with the current
// conjunction length so it becomes a cache candidate only after the
// conjunction grows. It also marks the current conjunction state as solved,
// so the next solve of the *unchanged* conjunction — from any path: CDCL,
// concrete hit or sampling — runs at retry polarity instead of being pinned
// to this model by saved phases.
func (ss *Session) remember(m bv.Assignment) {
	ss.solvedGen = len(ss.conj) + 1
	ss.cache = append(ss.cache, cachedModel{m: m, gen: len(ss.conj)})
}

// ensureEngine creates the persistent engine and blaster on first use and
// sets the decision polarity for the upcoming call (low for model finding,
// high for diverse sampling).
func (ss *Session) ensureEngine(polarity float64) {
	if ss.engine == nil {
		ss.engine = sat.New(sat.Options{
			Seed:           ss.sol.randInt63(),
			RandomPolarity: polarity,
			MaxConflicts:   ss.sol.opts.MaxConflicts,
		})
		ss.bl = bitblast.New(ss.engine)
		return
	}
	ss.engine.SetRandomPolarity(polarity)
}

// assertPending bit-blasts the conjuncts added since the last CDCL call.
// Everything previously encoded — including every shared subterm — is
// reused from the blaster's caches.
func (ss *Session) assertPending() {
	for _, c := range ss.conj[ss.encoded:] {
		ss.bl.Assert(c)
	}
	ss.encoded = len(ss.conj)
}

// cdcl runs one call on the persistent engine, updating work counters.
// ClausesReused counts each retained learned clause once: on every call
// after the first, the growth of the learnt database since the last count is
// the set of clauses that will be carried into this and later calls.
func (ss *Session) cdcl(assumps []sat.Lit) sat.Result {
	s := ss.sol
	s.stats.satSolves.Add(1)
	if len(assumps) > 0 {
		s.stats.assumptionSolves.Add(1)
	}
	if ss.cdclCalls > 0 {
		// Identity-less approximation: growth of the retained-learnt count
		// since the last call. The unconditional reset keeps the baseline
		// honest after reduceDB prunes below it — the error is bounded to
		// the one call where pruning happened, instead of going permanently
		// stale against an unreachable high-water mark.
		n := ss.engine.NumLearnts()
		if n > ss.learntsSeen {
			s.stats.clausesReused.Add(int64(n - ss.learntsSeen))
		}
		ss.learntsSeen = n
	}
	ss.cdclCalls++
	ss.assertPending()
	return ss.engine.SolveUnderAssumptions(assumps)
}

// guardBlock adds a blocking clause for m guarded by a fresh literal g:
// (¬g ∨ ¬m). Solving under the assumption g forbids m; without the
// assumption the clause is vacuously satisfiable and constrains nothing.
func (ss *Session) guardBlock(m bv.Assignment) sat.Lit {
	g := sat.PosLit(ss.engine.NewVar())
	clause := []sat.Lit{g.Neg()}
	for _, name := range ss.vars.Names() {
		v, ok := m[name]
		if !ok {
			continue
		}
		for i, l := range ss.bl.Bits(ss.vars[name]) {
			if v>>uint(i)&1 == 1 {
				clause = append(clause, l.Neg())
			} else {
				clause = append(clause, l)
			}
		}
	}
	ss.engine.AddClause(clause...)
	return g
}
