package solver

import (
	"math/rand"
	"sync"
	"sync/atomic"

	"diode/internal/bitblast"
	"diode/internal/bv"
	"diode/internal/sat"
)

// Session is an incremental solving session over a monotonically growing
// conjunction — the exact workload shape of the Figure 7 enforcement loop,
// which conjoins one more flipped-branch constraint into φ′ each iteration
// and re-solves φ′∧β. A Session owns one persistent CDCL engine and one
// hash-consed blaster, so across the loop:
//
//   - each conjunct is bit-blasted exactly once, and shared subterms (the
//     target expression B appears in every iteration's conjunction) are
//     encoded exactly once in total;
//   - clauses learned while refuting earlier iterations' search space are
//     retained, as are saved variable phases;
//   - models found earlier in the session are re-checked against the
//     extended conjunction before any fresh search runs — a model that
//     still satisfies the grown formula is returned directly. A cached
//     model is only eligible after the conjunction has grown past the
//     point where it was last returned, so a loop that re-solves an
//     unchanged formula to get a *different* model (Hunt's crashed-early
//     case) is never fed the same answer twice.
//
// Determinism: a Session draws all randomness (concrete sampling, engine
// seeds, restart re-randomization, portfolio configuration seeds) from a
// private stream derived from (parent seed, session ordinal), so session
// verdicts and the per-seed model *sequence* are a pure function of the
// parent's seed, the session's creation ordinal, and the
// Assert/Solve/SampleModels call sequence — independent of what other
// sessions do concurrently. Sampling never narrows what later Solve calls
// may return: restart sampling adds no clauses at all, and the blocking
// fallback's clauses are guarded by fresh literals activated only through
// assumptions, so they evaporate after the call.
//
// A Session is not safe for concurrent use; create one per goroutine (the
// core Hunter opens one per hunt).
type Session struct {
	sol  *Solver
	rng  *rand.Rand      // private stream: sessionSeed(parent seed, ordinal)
	cur  *bv.Bool        // conjunction of everything asserted so far
	conj []*bv.Bool      // deduped conjuncts in assertion order
	ids  map[uint64]bool // intern ids of conj entries
	vars bv.VarSet       // union of the conjuncts' free variables

	engine      *sat.Solver
	bl          *bitblast.Blaster
	encoded     int // conj[:encoded] have been asserted into bl
	cdclCalls   int
	solvedGen   int // 1 + conjunction length at the last CDCL Solve (0 = never)
	learntsSeen int // high-water learnt count already folded into ClausesReused

	cache []cachedModel
}

// cachedModel is a model previously returned by this session, tagged with
// the conjunction length at the time it was last returned. It becomes a
// candidate answer again only once the conjunction has grown beyond that
// point.
type cachedModel struct {
	m   bv.Assignment
	gen int
}

// Random decision polarities for the persistent engine, by purpose. Saved
// phases make a persistent engine strongly prefer re-deriving its previous
// model, which is what we want when the conjunction just grew (warm start)
// but exactly wrong when a caller re-solves an *unchanged* conjunction to
// get a different model (Hunt's crashed-early case) — there the retry rate
// matches the sampling rate so saved phases cannot pin the search.
const (
	polarityFind   = 0.02 // first solve of a given conjunction state
	polarityRetry  = 0.2  // re-solve of an unchanged conjunction
	polaritySample = 0.2  // blocking-strategy model enumeration

	// polarityRestartSample runs the engine fully greedy during restart
	// sampling: every decision takes its saved phase, and all diversity comes
	// from the explicit per-restart perturbation of the input-bit phases.
	// Random decision polarity on top of that perturbation only adds
	// conflicts — the perturbation already controls exactly the bits that
	// distinguish models.
	polarityRestartSample = 0.0

	// restartFlipProb is the saved-phase flip rate a sampling restart applies
	// to the input-variable bits freed by the backtrack
	// (sat.Solver.PerturbPhases): the replaced suffix of the trail is
	// re-decided with a perturbed projection while the kept prefix — the
	// expensive part of re-solving — stays in place. Diversity accumulates
	// across samples because every restart draws a new backtrack depth, so
	// the walk eventually replaces every prefix.
	restartFlipProb = 0.25

	// restartSampleStale is how many consecutive restart samples may
	// rediscover already-seen models before sampling falls back to blocking
	// enumeration — the only strategy that can certify exhaustion. Restarts
	// on a near-exhausted solution set are cheap (the engine re-derives a
	// known model quickly), so a few wasted solves cost far less than
	// carrying blocking clauses through every solve of a large sample.
	restartSampleStale = 8

	// restartFocusConflicts is the per-draw conflict budget of projection-first
	// (input-bits-first) decisions during restart sampling. On dense solution
	// sets a focused draw completes in a handful of conflicts and the flipped
	// input phases translate directly into a fresh model; once a draw blows
	// this budget the solution set is sparse and the focus is dropped — the
	// activity order finds needles, the perturbed phases still diversify.
	restartFocusConflicts = 32

	// portfolioProbe is the conflict budget of the cheap single-engine
	// attempt that precedes a portfolio race: solves that finish within it —
	// the overwhelming majority — never pay for cloning.
	portfolioProbe = 5000

	// learntImportCap bounds the length of learnt clauses exchanged between
	// portfolio engines (ExportLearnts). Short clauses prune the most search
	// per watched literal; long ones mostly bloat watch lists, and a racer
	// can produce tens of thousands of them.
	learntImportCap = 8
)

// NewSession opens an incremental session whose initial constraint is beta
// (the target constraint in a hunt). Further constraints are conjoined with
// Assert. The CDCL engine is created lazily on the first solve that needs
// it, drawing its seed from the session's private stream at that point.
func (s *Solver) NewSession(beta *bv.Bool) *Session {
	ss := &Session{
		sol:  s,
		rng:  rand.New(rand.NewSource(sessionSeed(s.opts.Seed, s.sessions.Add(1)))),
		cur:  bv.True(),
		ids:  make(map[uint64]bool),
		vars: make(bv.VarSet),
	}
	ss.Assert(beta)
	return ss
}

// Assert conjoins cond into the session's constraint. The formula is split
// into leaf conjuncts (bv.Conjuncts), and only conjuncts the session has not
// seen before are recorded — so re-asserting φ′∧β after one more branch
// constraint was conjoined costs exactly one new conjunct. Nothing is
// bit-blasted yet; encoding happens on the first solve that reaches the
// CDCL phase.
func (ss *Session) Assert(cond *bv.Bool) {
	for _, c := range bv.Conjuncts(cond) {
		if c.Kind == bv.BConst {
			if !c.BVal {
				ss.cur = bv.False()
			}
			continue
		}
		if ss.ids[c.ID()] {
			continue
		}
		ss.ids[c.ID()] = true
		ss.conj = append(ss.conj, c)
		ss.cur = bv.AndB(ss.cur, c)
		for name, v := range bv.BoolVars(c) {
			ss.vars[name] = v
		}
	}
}

// Constraint returns the conjunction of everything asserted so far.
func (ss *Session) Constraint() *bv.Bool { return ss.cur }

// Solve returns a model of the current conjunction, or Unsat/Unknown.
// Unsat is definitive for every later state of the session too (the
// conjunction only grows), and the session keeps answering Unsat cheaply.
func (ss *Session) Solve() (bv.Assignment, Verdict) {
	f := ss.cur
	if f.Kind == bv.BConst {
		if f.BVal {
			return bv.Assignment{}, Sat
		}
		return nil, Unsat
	}
	s := ss.sol
	if !s.opts.OneShot {
		for i := range ss.cache {
			cm := &ss.cache[i]
			if cm.gen >= len(ss.conj) {
				continue
			}
			if ok, err := cm.m.EvalBool(f); err == nil && ok {
				cm.gen = len(ss.conj)
				ss.solvedGen = len(ss.conj) + 1
				s.stats.modelCacheHits.Add(1)
				return cm.m, Sat
			}
		}
	}
	if s.opts.Mode != ModeSATOnly {
		if m := concreteSearch(ss.rng, f, ss.vars, s.opts.ConcreteTries); m != nil {
			s.stats.concreteHits.Add(1)
			ss.remember(m)
			return m, Sat
		}
		if s.opts.Mode == ModeConcreteOnly {
			s.stats.unknownOut.Add(1)
			return nil, Unknown
		}
	}
	if s.opts.OneShot {
		return s.satSolve(ss.rng, f, nil)
	}
	polarity := polarityFind
	if ss.solvedGen == len(ss.conj)+1 {
		polarity = polarityRetry // unchanged conjunction: the caller wants a different model
	}
	ss.ensureEngine(polarity)
	var res sat.Result
	var m bv.Assignment
	if s.opts.Portfolio > 1 {
		m, res = ss.portfolioSolve()
	} else if res = ss.cdcl(nil); res == sat.Sat {
		m = ss.bl.Model()
	}
	switch res {
	case sat.Sat:
		ss.remember(m)
		return m, Sat
	case sat.Unsat:
		s.stats.unsatResults.Add(1)
		return nil, Unsat
	default:
		s.stats.unknownOut.Add(1)
		return nil, Unknown
	}
}

// SampleModels returns up to k distinct models of the current conjunction
// (Solver.SampleModels semantics, on the session's persistent engine).
//
// The default strategy (Options.Sampling = SamplingRestart) draws each model
// by a cheap randomized restart of the persistent engine — re-randomized
// decision polarities and variable activities, backtrack to the root — so no
// blocking clauses accumulate and every solve searches the unencumbered
// formula. Once restartSampleStale consecutive restarts rediscover known
// models, sampling falls back to guard-literal blocking enumeration, which
// alone can certify that the solution set is exhausted (the §5.5 two-solution
// constraints end here). Under SamplingBlocking the canonical
// enumerate-and-block sequence runs from the start.
//
// Neither strategy narrows later solves: restarts add no clauses, and the
// blocking clauses are guarded by fresh literals activated through
// assumptions, so they evaporate after the call — a later Solve on the grown
// conjunction may still return any model, including ones sampled here, which
// is exactly what the model cache then exploits.
func (ss *Session) SampleModels(k int) []bv.Assignment {
	f := ss.cur
	if f.Kind == bv.BConst {
		if f.BVal {
			return []bv.Assignment{{}}
		}
		return nil
	}
	s := ss.sol
	if s.opts.OneShot {
		return s.sampleOneShot(ss.rng, f, k)
	}

	ms := newModelSet(ss.vars)
	s.concretePhase(ss.rng, f, ms, k)
	if len(ms.models) < k && s.opts.Mode != ModeConcreteOnly {
		if s.opts.Sampling == SamplingBlocking {
			ss.ensureEngine(polaritySample)
			ss.sampleBlocking(ms, k)
		} else {
			ss.ensureEngine(polarityRestartSample)
			ss.sampleRestart(ms, k)
		}
	}
	for _, m := range ms.models {
		ss.remember(m)
	}
	return ms.models
}

// sampleRestart draws models by randomized partial restarts of the
// persistent engine — backtrack to a random level of the previous model's
// trail, flip the freed input-bit phases, resume the search with decisions
// focused on the input bits — until the budget is filled or
// restartSampleStale consecutive solves yield nothing new, then hands the
// model set to blocking enumeration to certify exhaustion (or dig out
// remaining needles the restarts kept missing). The first draw runs as a
// plain solve (empty trail), so a session that never solved before still
// works.
func (ss *Session) sampleRestart(ms *modelSet, k int) {
	s := ss.sol
	ss.assertPending()
	// Perturbation targets the input-variable bits: those are the projection
	// models are deduped over, so a flip there is the only kind that can turn
	// the next completion into a fresh model. The engine's auxiliary (Tseitin)
	// variables keep their saved phases — flipping them buys conflicts, not
	// diversity.
	var bits []sat.Var
	for _, name := range ss.vars.Names() {
		for _, l := range ss.bl.Bits(ss.vars[name]) {
			bits = append(bits, l.Var())
		}
	}
	ss.engine.SetDecisionFocus(bits)
	defer ss.engine.SetDecisionFocus(nil)
	focused := true
	stale := 0
	for len(ms.models) < k && stale < restartSampleStale {
		before := ss.engine.Conflicts
		ss.engine.PartialRestart(ss.rng, 0)
		ss.engine.PerturbPhases(ss.rng, restartFlipProb, bits)
		if ss.cdclContinue() != sat.Sat {
			return // unsat or budget exhausted: nothing more to find
		}
		if focused && ss.engine.Conflicts-before > restartFocusConflicts {
			// Sparse solution set: projection-first decisions degenerate into
			// refuting random input assignments one by one. Hand decisions back
			// to the activity order, which finds the needles.
			focused = false
			ss.engine.SetDecisionFocus(nil)
		}
		s.stats.restartSamples.Add(1)
		if ms.add(ss.bl.Model()) {
			stale = 0
		} else {
			stale++
			s.stats.duplicateModels.Add(1)
		}
	}
	if len(ms.models) < k {
		s.stats.blockingFallbacks.Add(1)
		ss.sampleBlocking(ms, k)
	}
}

// sampleBlocking is the guard-literal enumerate-and-block sequence: every
// model in ms (and every model found here) is excluded by a clause guarded by
// a fresh literal, and the engine solves under the guard assumptions until
// the budget is filled or the guarded formula is unsatisfiable — which
// certifies that ms holds every model of the conjunction.
func (ss *Session) sampleBlocking(ms *modelSet, k int) {
	s := ss.sol
	ss.assertPending()
	var guards []sat.Lit
	for _, m := range ms.models {
		guards = append(guards, ss.guardBlock(m))
	}
	for len(ms.models) < k {
		if ss.cdcl(guards) != sat.Sat {
			break
		}
		m := ss.bl.Model()
		if !ms.add(m) {
			// A model the guards should have excluded came back: a
			// sampling-strategy bug. Count it so it surfaces in stats instead
			// of silently truncating the sample, and stop rather than loop.
			s.stats.duplicateModels.Add(1)
			break
		}
		guards = append(guards, ss.guardBlock(m))
	}
}

// remember records a model the session has returned, tagged with the current
// conjunction length so it becomes a cache candidate only after the
// conjunction grows. It also marks the current conjunction state as solved,
// so the next solve of the *unchanged* conjunction — from any path: CDCL,
// concrete hit or sampling — runs at retry polarity instead of being pinned
// to this model by saved phases.
func (ss *Session) remember(m bv.Assignment) {
	ss.solvedGen = len(ss.conj) + 1
	ss.cache = append(ss.cache, cachedModel{m: m, gen: len(ss.conj)})
}

// ensureEngine creates the persistent engine and blaster on first use and
// sets the decision polarity for the upcoming call (low for model finding,
// high for diverse sampling).
func (ss *Session) ensureEngine(polarity float64) {
	if ss.engine == nil {
		ss.engine = sat.New(sat.Options{
			Seed:           ss.rng.Int63(),
			RandomPolarity: polarity,
			MaxConflicts:   ss.sol.opts.MaxConflicts,
		})
		ss.bl = bitblast.New(ss.engine)
		return
	}
	ss.engine.SetRandomPolarity(polarity)
}

// portfolioConfigs are the engine-configuration variants a portfolio race
// cycles through: decision-polarity randomness, random-decision frequency and
// Luby restart base. Seeds come from the session stream, so two racers with
// the same table entry still search differently.
var portfolioConfigs = []struct {
	polarity     float64
	decisionFreq float64
	restartBase  float64
}{
	{0.02, 0, 100},
	{0.2, 0, 50},
	{0.5, 0.02, 200},
	{0.05, 0.05, 25},
	{0.3, 0, 400},
	{0.1, 0.02, 70},
}

// portfolioSolve runs one CDCL decision on the session under portfolio mode:
// first a cheap bounded probe on the persistent engine (most solves finish
// there), then a race of Options.Portfolio cloned engine configurations over
// the remaining conflict budget.
//
// Determinism: the winner is picked by a (result, config index) tie-break,
// not wall-clock arrival. A racer is cancelled only when a lower-indexed
// racer has already produced a decisive (Sat/Unsat) result, so every racer
// with an index at or below the final winner runs to its natural, seed-pure
// completion — the winning model and verdict are a pure function of the
// session's stream. For the same reason only those uncancelled racers fold
// their learnt clauses (length-capped at learntImportCap) back into the
// persistent engine: a cancelled racer's learnt set depends on timing.
func (ss *Session) portfolioSolve() (bv.Assignment, sat.Result) {
	s := ss.sol
	probe := int64(portfolioProbe)
	if s.opts.MaxConflicts > 0 && s.opts.MaxConflicts < probe {
		probe = s.opts.MaxConflicts
	}
	ss.engine.SetMaxConflicts(probe)
	res := ss.cdcl(nil)
	ss.engine.SetMaxConflicts(s.opts.MaxConflicts)
	if res != sat.Unknown {
		if res == sat.Sat {
			return ss.bl.Model(), res
		}
		return nil, res
	}

	// The probe exhausted its budget: this is one of the hardest solves.
	// Race n configurations over the remaining budget, split evenly so the
	// total conflict work stays within MaxConflicts order.
	n := s.opts.Portfolio
	s.stats.portfolioRaces.Add(1)
	perRacer := (s.opts.MaxConflicts - probe + int64(n) - 1) / int64(n)
	if perRacer < probe {
		perRacer = probe
	}
	racers := make([]*sat.Solver, n)
	stops := make([]atomic.Bool, n)
	for i := range racers {
		cfg := portfolioConfigs[i%len(portfolioConfigs)]
		racers[i] = ss.engine.Clone(sat.Options{
			Seed:               ss.rng.Int63(),
			RandomPolarity:     cfg.polarity,
			RandomDecisionFreq: cfg.decisionFreq,
			RestartBase:        cfg.restartBase,
			MaxConflicts:       perRacer,
			Stop:               &stops[i],
		})
	}
	results := make([]sat.Result, n)
	var (
		wg         sync.WaitGroup
		mu         sync.Mutex
		minDecided = n
	)
	for i := range racers {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := racers[i].Solve()
			mu.Lock()
			results[i] = r
			if r != sat.Unknown && i < minDecided {
				minDecided = i
				for j := i + 1; j < n; j++ {
					stops[j].Store(true)
				}
			}
			mu.Unlock()
		}(i)
	}
	wg.Wait()

	winner := -1
	for i, r := range results {
		if r != sat.Unknown {
			winner = i
			break
		}
	}
	limit := n
	if winner >= 0 {
		limit = winner + 1
	}
	imported := 0
	for i := 0; i < limit; i++ {
		imported += ss.engine.ImportLearnts(racers[i].ExportLearnts(learntImportCap))
	}
	s.stats.learntsShared.Add(int64(imported))
	if winner < 0 {
		return nil, sat.Unknown
	}
	if results[winner] == sat.Sat {
		return ss.bl.ModelOf(racers[winner].ModelValue), sat.Sat
	}
	return nil, sat.Unsat
}

// assertPending bit-blasts the conjuncts added since the last CDCL call.
// Everything previously encoded — including every shared subterm — is
// reused from the blaster's caches.
func (ss *Session) assertPending() {
	for _, c := range ss.conj[ss.encoded:] {
		ss.bl.Assert(c)
	}
	ss.encoded = len(ss.conj)
}

// cdcl runs one call on the persistent engine, updating work counters.
// ClausesReused counts each retained learned clause once: on every call
// after the first, the growth of the learnt database since the last count is
// the set of clauses that will be carried into this and later calls.
func (ss *Session) cdcl(assumps []sat.Lit) sat.Result {
	s := ss.sol
	s.stats.satSolves.Add(1)
	if len(assumps) > 0 {
		s.stats.assumptionSolves.Add(1)
	}
	if ss.cdclCalls > 0 {
		// Identity-less approximation: growth of the retained-learnt count
		// since the last call. The unconditional reset keeps the baseline
		// honest after reduceDB prunes below it — the error is bounded to
		// the one call where pruning happened, instead of going permanently
		// stale against an unreachable high-water mark.
		n := ss.engine.NumLearnts()
		if n > ss.learntsSeen {
			s.stats.clausesReused.Add(int64(n - ss.learntsSeen))
		}
		ss.learntsSeen = n
	}
	ss.cdclCalls++
	ss.assertPending()
	return ss.engine.SolveUnderAssumptions(assumps)
}

// cdclContinue is cdcl for a restart sample: same work counters, but the
// engine resumes from the trail prefix PartialRestart kept instead of
// re-solving from the root. The conjunction must already be encoded
// (assertPending) — sampling never grows it mid-run.
func (ss *Session) cdclContinue() sat.Result {
	s := ss.sol
	s.stats.satSolves.Add(1)
	if ss.cdclCalls > 0 {
		n := ss.engine.NumLearnts()
		if n > ss.learntsSeen {
			s.stats.clausesReused.Add(int64(n - ss.learntsSeen))
		}
		ss.learntsSeen = n
	}
	ss.cdclCalls++
	return ss.engine.SolveContinue()
}

// guardBlock adds a blocking clause for m guarded by a fresh literal g:
// (¬g ∨ ¬m). Solving under the assumption g forbids m; without the
// assumption the clause is vacuously satisfiable and constrains nothing.
func (ss *Session) guardBlock(m bv.Assignment) sat.Lit {
	g := sat.PosLit(ss.engine.NewVar())
	clause := []sat.Lit{g.Neg()}
	for _, name := range ss.vars.Names() {
		v, ok := m[name]
		if !ok {
			continue
		}
		for i, l := range ss.bl.Bits(ss.vars[name]) {
			if v>>uint(i)&1 == 1 {
				clause = append(clause, l.Neg())
			} else {
				clause = append(clause, l)
			}
		}
	}
	ss.engine.AddClause(clause...)
	return g
}
