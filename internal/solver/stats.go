package solver

import "sync/atomic"

// Stats is a point-in-time snapshot of solver work counters. It is a plain
// value: read it with Solver.Snapshot (or Collector.Snapshot) and combine
// snapshots with Add.
type Stats struct {
	ConcreteHits int // solves settled by concrete search
	SATSolves    int // solves that reached the CDCL solver
	UnsatResults int
	UnknownOut   int

	// Incremental-session counters.
	AssumptionSolves int // CDCL calls made under ≥1 assumption (sampling blocks)
	ModelCacheHits   int // session solves settled by re-checking an earlier model
	ClausesReused    int // learned clauses carried into later CDCL calls of a session, each counted once

	// Sampling-strategy counters.
	RestartSamples    int // models drawn by randomized-restart re-solves
	BlockingFallbacks int // restart sampling runs that fell back to blocking enumeration
	DuplicateModels   int // sampled models already in the set: routine for restarts (drives the fallback), a strategy bug for blocking
	PortfolioRaces    int // CDCL solves that escalated past the probe into a configuration race
	LearntsShared     int // learnt clauses imported across portfolio engines (length-capped)

	// GenFailures counts solver models the input-reconstruction layer failed
	// to turn into an input file (Generate errors, reported by the core via
	// Solver.NoteGenFailure). A nonzero count in a success-rate experiment
	// means the measured total undercounts the sampled models — a broken
	// format fix-up, not a low success rate.
	GenFailures int
}

// Add accumulates another snapshot into s.
func (s *Stats) Add(o Stats) {
	s.ConcreteHits += o.ConcreteHits
	s.SATSolves += o.SATSolves
	s.UnsatResults += o.UnsatResults
	s.UnknownOut += o.UnknownOut
	s.AssumptionSolves += o.AssumptionSolves
	s.ModelCacheHits += o.ModelCacheHits
	s.ClausesReused += o.ClausesReused
	s.RestartSamples += o.RestartSamples
	s.BlockingFallbacks += o.BlockingFallbacks
	s.DuplicateModels += o.DuplicateModels
	s.PortfolioRaces += o.PortfolioRaces
	s.LearntsShared += o.LearntsShared
	s.GenFailures += o.GenFailures
}

// Collector accumulates solver work counters atomically. It is safe for
// concurrent use: each Solver counts into its own Collector, and an
// aggregator (the scheduler) folds hunter-local snapshots into a shared one.
type Collector struct {
	concreteHits      atomic.Int64
	satSolves         atomic.Int64
	unsatResults      atomic.Int64
	unknownOut        atomic.Int64
	assumptionSolves  atomic.Int64
	modelCacheHits    atomic.Int64
	clausesReused     atomic.Int64
	restartSamples    atomic.Int64
	blockingFallbacks atomic.Int64
	duplicateModels   atomic.Int64
	portfolioRaces    atomic.Int64
	learntsShared     atomic.Int64
	genFailures       atomic.Int64
}

// Add folds a snapshot into the collector.
func (c *Collector) Add(s Stats) {
	c.concreteHits.Add(int64(s.ConcreteHits))
	c.satSolves.Add(int64(s.SATSolves))
	c.unsatResults.Add(int64(s.UnsatResults))
	c.unknownOut.Add(int64(s.UnknownOut))
	c.assumptionSolves.Add(int64(s.AssumptionSolves))
	c.modelCacheHits.Add(int64(s.ModelCacheHits))
	c.clausesReused.Add(int64(s.ClausesReused))
	c.restartSamples.Add(int64(s.RestartSamples))
	c.blockingFallbacks.Add(int64(s.BlockingFallbacks))
	c.duplicateModels.Add(int64(s.DuplicateModels))
	c.portfolioRaces.Add(int64(s.PortfolioRaces))
	c.learntsShared.Add(int64(s.LearntsShared))
	c.genFailures.Add(int64(s.GenFailures))
}

// Snapshot returns the current counter values.
func (c *Collector) Snapshot() Stats {
	return Stats{
		ConcreteHits:     int(c.concreteHits.Load()),
		SATSolves:        int(c.satSolves.Load()),
		UnsatResults:     int(c.unsatResults.Load()),
		UnknownOut:       int(c.unknownOut.Load()),
		AssumptionSolves: int(c.assumptionSolves.Load()),
		ModelCacheHits:   int(c.modelCacheHits.Load()),
		ClausesReused:    int(c.clausesReused.Load()),

		RestartSamples:    int(c.restartSamples.Load()),
		BlockingFallbacks: int(c.blockingFallbacks.Load()),
		DuplicateModels:   int(c.duplicateModels.Load()),
		PortfolioRaces:    int(c.portfolioRaces.Load()),
		LearntsShared:     int(c.learntsShared.Load()),

		GenFailures: int(c.genFailures.Load()),
	}
}
