package bv

import "fmt"

// CompiledBool is a formula compiled for repeated concrete evaluation — the
// workload of the solver's randomized concrete search, which evaluates the
// same formula under thousands of candidate assignments. Compilation
// flattens the formula's unique subterms (the DAG is exposed by hash-consing:
// shared subterms are pointer-identical) into one topologically ordered
// instruction list with slice-indexed result slots, so each evaluation is a
// single pass over a flat array instead of a recursive walk allocating
// per-call memo maps.
//
// Evaluation is eager (no And/Or short circuit), which is result-identical
// to Assignment.EvalBool on any assignment binding every free variable: all
// operators are total. The only possible error is an unbound variable.
//
// A CompiledBool reuses its internal value slots across Eval calls and is
// therefore not safe for concurrent use; compile one per goroutine.
type CompiledBool struct {
	instrs []evalInstr
	tvals  []uint64
	bvals  []bool
	root   int32 // bool slot holding the result
}

// Instruction opcodes: term kinds as-is, bool kinds offset past them.
const boolOpBase = 64

type evalInstr struct {
	op     uint8 // Kind, or boolOpBase+BoolKind
	w      uint8 // result width (terms)
	xw, yw uint8 // operand widths where semantics need them
	lo     uint8 // KExtract
	x, y   int32 // operand slots (term or bool slots, per op)
	c      int32 // KITE: condition bool slot
	dst    int32
	val    uint64 // KConst / BConst(1 or 0)
	name   string // KVar
}

// CompileBool flattens f for repeated concrete evaluation.
func CompileBool(f *Bool) *CompiledBool {
	c := &evalCompiler{
		out:   &CompiledBool{},
		tslot: map[*Term]int32{},
		bslot: map[*Bool]int32{},
	}
	c.out.root = c.boolSlot(f)
	c.out.tvals = make([]uint64, c.nterm)
	c.out.bvals = make([]bool, c.nbool)
	// Constant slots are written here once and never touched by Eval (each
	// instruction writes only its own dst), so they stay valid across calls.
	for _, in := range c.tinit {
		c.out.tvals[in.slot] = in.val
	}
	for _, in := range c.binit {
		c.out.bvals[in.slot] = in.val != 0
	}
	return c.out
}

type slotInit struct {
	slot int32
	val  uint64
}

type evalCompiler struct {
	out          *CompiledBool
	tslot        map[*Term]int32
	bslot        map[*Bool]int32
	tinit, binit []slotInit
	nterm, nbool int32
}

func (c *evalCompiler) termSlot(t *Term) int32 {
	if s, ok := c.tslot[t]; ok {
		return s
	}
	switch t.Kind {
	case KZExt:
		// Zero-extension is a no-op on the masked uint64 representation: the
		// operand's slot already holds the zero-extended value, so alias the
		// slot instead of emitting an instruction.
		s := c.termSlot(t.X)
		c.tslot[t] = s
		return s
	case KConst:
		// Constants evaluate to themselves on every call; hoist them into a
		// compile-time slot write instead of re-executing per Eval.
		s := c.nterm
		c.nterm++
		c.tslot[t] = s
		c.tinit = append(c.tinit, slotInit{slot: s, val: t.Val & Mask(t.W)})
		return s
	}
	ins := evalInstr{op: uint8(t.Kind), w: t.W, val: t.Val, name: t.Name, lo: t.Lo}
	if t.X != nil {
		ins.x = c.termSlot(t.X)
		ins.xw = t.X.W
	}
	if t.Y != nil {
		ins.y = c.termSlot(t.Y)
		ins.yw = t.Y.W
	}
	if t.Cond != nil {
		ins.c = c.boolSlot(t.Cond)
	}
	s := c.nterm
	c.nterm++
	ins.dst = s
	c.tslot[t] = s
	c.out.instrs = append(c.out.instrs, ins)
	return s
}

func (c *evalCompiler) boolSlot(b *Bool) int32 {
	if s, ok := c.bslot[b]; ok {
		return s
	}
	if b.Kind == BConst {
		s := c.nbool
		c.nbool++
		c.bslot[b] = s
		var v uint64
		if b.BVal {
			v = 1
		}
		c.binit = append(c.binit, slotInit{slot: s, val: v})
		return s
	}
	ins := evalInstr{op: boolOpBase + uint8(b.Kind)}
	if b.BVal {
		ins.val = 1
	}
	if b.X != nil {
		ins.x = c.termSlot(b.X)
		ins.xw = b.X.W
	}
	if b.Y != nil {
		ins.y = c.termSlot(b.Y)
		ins.yw = b.Y.W
	}
	if b.A != nil {
		ins.x = c.boolSlot(b.A)
	}
	if b.B != nil {
		ins.y = c.boolSlot(b.B)
	}
	s := c.nbool
	c.nbool++
	ins.dst = s
	c.bslot[b] = s
	c.out.instrs = append(c.out.instrs, ins)
	return s
}

// Eval evaluates the compiled formula under the assignment. It returns an
// error iff a free variable is unbound (evaluation is eager, so — unlike
// Assignment.EvalBool — an unbound variable is reported even when a short
// circuit could have skipped it).
func (c *CompiledBool) Eval(asn Assignment) (bool, error) {
	tv, bv := c.tvals, c.bvals
	for i := range c.instrs {
		ins := &c.instrs[i]
		if ins.op >= boolOpBase {
			var r bool
			switch BoolKind(ins.op - boolOpBase) {
			case BConst:
				r = ins.val != 0
			case BEq:
				r = tv[ins.x] == tv[ins.y]
			case BUlt:
				r = tv[ins.x] < tv[ins.y]
			case BUle:
				r = tv[ins.x] <= tv[ins.y]
			case BSlt:
				r = int64(signExtend(tv[ins.x], ins.xw)) < int64(signExtend(tv[ins.y], ins.yw))
			case BSle:
				r = int64(signExtend(tv[ins.x], ins.xw)) <= int64(signExtend(tv[ins.y], ins.yw))
			case BNot:
				r = !bv[ins.x]
			case BAnd:
				r = bv[ins.x] && bv[ins.y]
			case BOr:
				r = bv[ins.x] || bv[ins.y]
			default:
				return false, fmt.Errorf("bv: unknown bool kind %d", ins.op-boolOpBase)
			}
			bv[ins.dst] = r
			continue
		}
		var v uint64
		switch Kind(ins.op) {
		case KConst:
			v = ins.val
		case KVar:
			bound, ok := asn[ins.name]
			if !ok {
				return false, fmt.Errorf("bv: unbound variable %q", ins.name)
			}
			v = bound
		case KNot:
			v = ^tv[ins.x]
		case KNeg:
			v = -tv[ins.x]
		case KZExt:
			v = tv[ins.x]
		case KSExt:
			v = signExtend(tv[ins.x], ins.xw)
		case KExtract:
			v = tv[ins.x] >> ins.lo
		case KITE:
			if bv[ins.c] {
				v = tv[ins.x]
			} else {
				v = tv[ins.y]
			}
		case KAdd:
			v = tv[ins.x] + tv[ins.y]
		case KSub:
			v = tv[ins.x] - tv[ins.y]
		case KMul:
			v = tv[ins.x] * tv[ins.y]
		case KUDiv:
			if tv[ins.y] == 0 {
				v = Mask(ins.w)
			} else {
				v = tv[ins.x] / tv[ins.y]
			}
		case KURem:
			if tv[ins.y] == 0 {
				v = tv[ins.x]
			} else {
				v = tv[ins.x] % tv[ins.y]
			}
		case KAnd:
			v = tv[ins.x] & tv[ins.y]
		case KOr:
			v = tv[ins.x] | tv[ins.y]
		case KXor:
			v = tv[ins.x] ^ tv[ins.y]
		case KShl:
			if s := tv[ins.y]; s < uint64(ins.w) {
				v = tv[ins.x] << s
			}
		case KLShr:
			if s := tv[ins.y]; s < uint64(ins.w) {
				v = tv[ins.x] >> s
			}
		case KAShr:
			s := tv[ins.y]
			if s >= uint64(ins.w) {
				s = uint64(ins.w) - 1
			}
			v = uint64(int64(signExtend(tv[ins.x], ins.xw)) >> s)
		case KConcat:
			v = tv[ins.x]<<ins.yw | tv[ins.y]
		default:
			return false, fmt.Errorf("bv: unknown term kind %d", ins.op)
		}
		tv[ins.dst] = v & Mask(ins.w)
	}
	return bv[c.root], nil
}
