package bv

import (
	"fmt"
	"strings"
)

// String renders the term in the paper's prefix notation, e.g.
// Mul(32,Add(32,...),Constant(0xFF)). Input-field variables (names beginning
// with '/') render as HachField(w,'/path'), matching §2's example target
// expression; other variables render as Input(w,'name').
func (t *Term) String() string {
	var b strings.Builder
	writeTerm(&b, t)
	return b.String()
}

func writeTerm(b *strings.Builder, t *Term) {
	switch t.Kind {
	case KConst:
		fmt.Fprintf(b, "Constant(0x%X)", t.Val)
	case KVar:
		if strings.HasPrefix(t.Name, "/") {
			fmt.Fprintf(b, "HachField(%d,'%s')", t.W, t.Name)
		} else {
			fmt.Fprintf(b, "Input(%d,'%s')", t.W, t.Name)
		}
	case KExtract:
		if t.Lo == 0 {
			// Low-bit truncation is the paper's "Shrink".
			fmt.Fprintf(b, "Shrink(%d,", t.W)
			writeTerm(b, t.X)
			b.WriteByte(')')
			return
		}
		fmt.Fprintf(b, "Extract(%d,%d,", t.Hi, t.Lo)
		writeTerm(b, t.X)
		b.WriteByte(')')
	case KITE:
		fmt.Fprintf(b, "ITE(%d,", t.W)
		writeBool(b, t.Cond)
		b.WriteByte(',')
		writeTerm(b, t.X)
		b.WriteByte(',')
		writeTerm(b, t.Y)
		b.WriteByte(')')
	default:
		fmt.Fprintf(b, "%s(%d,", opName(t.Kind), t.W)
		writeTerm(b, t.X)
		if t.Y != nil {
			b.WriteByte(',')
			writeTerm(b, t.Y)
		}
		b.WriteByte(')')
	}
}

// opName maps term kinds to the paper's operator vocabulary.
func opName(k Kind) string {
	switch k {
	case KNot:
		return "BvNot"
	case KNeg:
		return "Neg"
	case KAdd:
		return "Add"
	case KSub:
		return "Sub"
	case KMul:
		return "Mul"
	case KUDiv:
		return "UDiv"
	case KURem:
		return "URem"
	case KAnd:
		return "BvAnd"
	case KOr:
		return "BvOr"
	case KXor:
		return "BvXor"
	case KShl:
		return "Shl"
	case KLShr:
		return "UShr"
	case KAShr:
		return "SShr"
	case KZExt:
		return "ToSize"
	case KSExt:
		return "SignToSize"
	case KConcat:
		return "Concat"
	}
	return fmt.Sprintf("Op%d", k)
}

// String renders the formula in prefix notation.
func (b *Bool) String() string {
	var sb strings.Builder
	writeBool(&sb, b)
	return sb.String()
}

func writeBool(sb *strings.Builder, b *Bool) {
	switch b.Kind {
	case BConst:
		if b.BVal {
			sb.WriteString("True")
		} else {
			sb.WriteString("False")
		}
	case BEq, BUlt, BUle, BSlt, BSle:
		sb.WriteString(cmpName(b.Kind))
		sb.WriteByte('(')
		writeTerm(sb, b.X)
		sb.WriteByte(',')
		writeTerm(sb, b.Y)
		sb.WriteByte(')')
	case BNot:
		sb.WriteString("Not(")
		writeBool(sb, b.A)
		sb.WriteByte(')')
	case BAnd:
		sb.WriteString("And(")
		writeBool(sb, b.A)
		sb.WriteByte(',')
		writeBool(sb, b.B)
		sb.WriteByte(')')
	case BOr:
		sb.WriteString("Or(")
		writeBool(sb, b.A)
		sb.WriteByte(',')
		writeBool(sb, b.B)
		sb.WriteByte(')')
	}
}

func cmpName(k BoolKind) string {
	switch k {
	case BEq:
		return "Eq"
	case BUlt:
		return "Ult"
	case BUle:
		return "Ule"
	case BSlt:
		return "Slt"
	default:
		return "Sle"
	}
}
