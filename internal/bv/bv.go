// Package bv implements fixed-width bitvector terms and boolean formulas.
//
// Terms are the symbolic values that DIODE's instrumented executions record:
// every arithmetic operation the guest program performs on input-derived data
// becomes a Term, and every conditional branch on input-derived data becomes
// a Bool. Terms are immutable and hash-consed: structurally identical terms
// are represented by the same pointer, which makes memoized evaluation and
// bit-blasting cheap and makes equality a pointer comparison.
//
// Constructors apply the runtime simplifications described in §4.2 of the
// paper (constant folding, constant-chain coalescing such as
// Add(Add(x,1),1) → Add(x,2), and algebraic identities). Widths range from
// 1 to 64 bits and all arithmetic wraps modulo 2^w, faithfully modelling
// machine integers.
package bv

import "sync"

// MaxWidth is the largest supported bitvector width.
const MaxWidth = 64

// Kind identifies the operator at the root of a Term.
type Kind uint8

// Term kinds.
const (
	KConst   Kind = iota // literal constant
	KVar                 // free variable (an input byte or input field)
	KNot                 // bitwise complement
	KNeg                 // two's complement negation
	KAdd                 // wrapping addition
	KSub                 // wrapping subtraction
	KMul                 // wrapping multiplication
	KUDiv                // unsigned division (x/0 = all-ones, SMT-LIB semantics)
	KURem                // unsigned remainder (x%0 = x)
	KAnd                 // bitwise and
	KOr                  // bitwise or
	KXor                 // bitwise xor
	KShl                 // logical shift left; shifts ≥ width yield 0
	KLShr                // logical shift right; shifts ≥ width yield 0
	KAShr                // arithmetic shift right; shifts ≥ width yield sign fill
	KZExt                // zero extension to a wider width
	KSExt                // sign extension to a wider width
	KExtract             // bit-slice [Lo..Hi] (inclusive)
	KConcat              // concatenation: X is the high part, Y the low part
	KITE                 // if-then-else on a Bool condition
)

// Term is an immutable, hash-consed bitvector expression of width W.
// Do not construct Terms directly; use the constructor functions, which
// intern and simplify.
type Term struct {
	Kind Kind
	W    uint8  // result width in bits, 1..64
	Val  uint64 // KConst: the constant value (already masked to W bits)
	Name string // KVar: variable name (e.g. "/header/width" or "byte[7]")
	X, Y *Term  // operands (Y nil for unary ops, both nil for leaves)
	Hi   uint8  // KExtract: high bit index (inclusive)
	Lo   uint8  // KExtract: low bit index (inclusive)
	Cond *Bool  // KITE: condition

	id uint64 // canonical intern id, assigned once under the intern lock
}

// BoolKind identifies the operator at the root of a Bool.
type BoolKind uint8

// Bool kinds.
const (
	BConst BoolKind = iota // literal true/false
	BEq                    // bitvector equality
	BUlt                   // unsigned less-than
	BUle                   // unsigned less-or-equal
	BSlt                   // signed less-than
	BSle                   // signed less-or-equal
	BNot                   // negation
	BAnd                   // conjunction
	BOr                    // disjunction
)

// Bool is an immutable, hash-consed boolean formula over bitvector terms.
type Bool struct {
	Kind BoolKind
	BVal bool  // BConst
	X, Y *Term // comparison operands
	A, B *Bool // boolean operands

	id uint64 // canonical intern id, assigned once under the intern lock
}

// interning tables. Children are interned before parents, so identity of
// child pointers makes the key comparable and cheap.
type termKey struct {
	kind   Kind
	w      uint8
	hi, lo uint8
	val    uint64
	name   string
	x, y   *Term
	cond   *Bool
}

type boolKey struct {
	kind BoolKind
	bval bool
	x, y *Term
	a, b *Bool
}

var (
	internMu  sync.Mutex
	termTab          = make(map[termKey]*Term)
	boolTab          = make(map[boolKey]*Bool)
	nextTerm  uint64 = 1 // 0 is reserved so a zero id never aliases a term
	nextBool  uint64 = 3 // 1 and 2 belong to the boolean constants
	trueBool         = &Bool{Kind: BConst, BVal: true, id: 1}
	falseBool        = &Bool{Kind: BConst, BVal: false, id: 2}
)

func intern(t Term) *Term {
	k := termKey{t.Kind, t.W, t.Hi, t.Lo, t.Val, t.Name, t.X, t.Y, t.Cond}
	internMu.Lock()
	defer internMu.Unlock()
	if got, ok := termTab[k]; ok {
		return got
	}
	p := new(Term)
	*p = t
	p.id = nextTerm
	nextTerm++
	termTab[k] = p
	return p
}

func internBool(b Bool) *Bool {
	if b.Kind == BConst {
		if b.BVal {
			return trueBool
		}
		return falseBool
	}
	k := boolKey{b.Kind, b.BVal, b.X, b.Y, b.A, b.B}
	internMu.Lock()
	defer internMu.Unlock()
	if got, ok := boolTab[k]; ok {
		return got
	}
	p := new(Bool)
	*p = b
	p.id = nextBool
	nextBool++
	boolTab[k] = p
	return p
}

// Mask returns the w-bit mask (w in 1..64).
func Mask(w uint8) uint64 {
	return ^uint64(0) >> (64 - uint(w))
}

func checkWidth(w uint8) {
	if w < 1 || w > MaxWidth {
		panic("bv: width out of range")
	}
}

func checkSame(x, y *Term) {
	if x.W != y.W {
		panic("bv: operand width mismatch")
	}
}

// Const returns the w-bit constant v (masked to w bits).
func Const(w uint8, v uint64) *Term {
	checkWidth(w)
	return intern(Term{Kind: KConst, W: w, Val: v & Mask(w)})
}

// Var returns the w-bit free variable named name.
func Var(w uint8, name string) *Term {
	checkWidth(w)
	return intern(Term{Kind: KVar, W: w, Name: name})
}

// IsConst reports whether t is a constant, and its value if so.
func IsConst(t *Term) (uint64, bool) {
	if t.Kind == KConst {
		return t.Val, true
	}
	return 0, false
}

// Not returns the bitwise complement of x.
func Not(x *Term) *Term {
	if v, ok := IsConst(x); ok {
		return Const(x.W, ^v)
	}
	if x.Kind == KNot {
		return x.X // ~~x = x
	}
	return intern(Term{Kind: KNot, W: x.W, X: x})
}

// Neg returns the two's complement negation of x.
func Neg(x *Term) *Term {
	if v, ok := IsConst(x); ok {
		return Const(x.W, -v)
	}
	return intern(Term{Kind: KNeg, W: x.W, X: x})
}

// Add returns x + y (wrapping).
func Add(x, y *Term) *Term {
	checkSame(x, y)
	xv, xc := IsConst(x)
	yv, yc := IsConst(y)
	if xc && yc {
		return Const(x.W, xv+yv)
	}
	if xc { // canonicalize: constant on the right
		x, y = y, x
		xv, yv = yv, xv
		xc, yc = yc, xc
	}
	if yc && yv == 0 {
		return x
	}
	// Coalesce constant chains: Add(Add(t, c1), c2) → Add(t, c1+c2). This is
	// the paper's §4.2 runtime simplification example.
	if yc && x.Kind == KAdd {
		if cv, ok := IsConst(x.Y); ok {
			return Add(x.X, Const(x.W, cv+yv))
		}
	}
	return intern(Term{Kind: KAdd, W: x.W, X: x, Y: y})
}

// Sub returns x - y (wrapping).
func Sub(x, y *Term) *Term {
	checkSame(x, y)
	xv, xc := IsConst(x)
	yv, yc := IsConst(y)
	if xc && yc {
		return Const(x.W, xv-yv)
	}
	if yc && yv == 0 {
		return x
	}
	if x == y {
		return Const(x.W, 0)
	}
	return intern(Term{Kind: KSub, W: x.W, X: x, Y: y})
}

// Mul returns x * y (wrapping).
func Mul(x, y *Term) *Term {
	checkSame(x, y)
	xv, xc := IsConst(x)
	yv, yc := IsConst(y)
	if xc && yc {
		return Const(x.W, xv*yv)
	}
	if xc {
		x, y = y, x
		yv, yc = xv, xc
	}
	if yc {
		switch yv {
		case 0:
			return Const(x.W, 0)
		case 1:
			return x
		}
	}
	// NOTE: Mul(Mul(x,c1),c2) is deliberately NOT coalesced: collapsing
	// multiplication chains would erase intermediate nodes whose individual
	// wraparound the target constraint must capture (§4.3).
	return intern(Term{Kind: KMul, W: x.W, X: x, Y: y})
}

// UDiv returns x / y unsigned, with x/0 = all-ones (SMT-LIB semantics).
func UDiv(x, y *Term) *Term {
	checkSame(x, y)
	xv, xc := IsConst(x)
	yv, yc := IsConst(y)
	if xc && yc {
		if yv == 0 {
			return Const(x.W, Mask(x.W))
		}
		return Const(x.W, xv/yv)
	}
	if yc && yv == 1 {
		return x
	}
	return intern(Term{Kind: KUDiv, W: x.W, X: x, Y: y})
}

// URem returns x % y unsigned, with x%0 = x (SMT-LIB semantics).
func URem(x, y *Term) *Term {
	checkSame(x, y)
	xv, xc := IsConst(x)
	yv, yc := IsConst(y)
	if xc && yc {
		if yv == 0 {
			return Const(x.W, xv)
		}
		return Const(x.W, xv%yv)
	}
	if yc && yv == 1 {
		return Const(x.W, 0)
	}
	return intern(Term{Kind: KURem, W: x.W, X: x, Y: y})
}

// And returns the bitwise and of x and y.
func And(x, y *Term) *Term {
	checkSame(x, y)
	xv, xc := IsConst(x)
	yv, yc := IsConst(y)
	if xc && yc {
		return Const(x.W, xv&yv)
	}
	if xc {
		x, y = y, x
		yv, yc = xv, xc
	}
	if yc {
		switch yv {
		case 0:
			return Const(x.W, 0)
		case Mask(x.W):
			return x
		}
	}
	if x == y {
		return x
	}
	return intern(Term{Kind: KAnd, W: x.W, X: x, Y: y})
}

// Or returns the bitwise or of x and y.
func Or(x, y *Term) *Term {
	checkSame(x, y)
	xv, xc := IsConst(x)
	yv, yc := IsConst(y)
	if xc && yc {
		return Const(x.W, xv|yv)
	}
	if xc {
		x, y = y, x
		yv, yc = xv, xc
	}
	if yc {
		switch yv {
		case 0:
			return x
		case Mask(x.W):
			return Const(x.W, Mask(x.W))
		}
	}
	if x == y {
		return x
	}
	return intern(Term{Kind: KOr, W: x.W, X: x, Y: y})
}

// Xor returns the bitwise xor of x and y.
func Xor(x, y *Term) *Term {
	checkSame(x, y)
	xv, xc := IsConst(x)
	yv, yc := IsConst(y)
	if xc && yc {
		return Const(x.W, xv^yv)
	}
	if xc {
		x, y = y, x
		yv, yc = xv, xc
	}
	if yc && yv == 0 {
		return x
	}
	if x == y {
		return Const(x.W, 0)
	}
	return intern(Term{Kind: KXor, W: x.W, X: x, Y: y})
}

// shiftConst folds a shift by a constant amount.
func shiftConst(kind Kind, x *Term, s uint64) *Term {
	w := uint64(x.W)
	if v, ok := IsConst(x); ok {
		switch kind {
		case KShl:
			if s >= w {
				return Const(x.W, 0)
			}
			return Const(x.W, v<<s)
		case KLShr:
			if s >= w {
				return Const(x.W, 0)
			}
			return Const(x.W, v>>s)
		case KAShr:
			sv := signExtend(v, x.W)
			if s >= w {
				s = w - 1
			}
			return Const(x.W, uint64(int64(sv)>>s))
		}
	}
	if s == 0 {
		return x
	}
	if s >= w && kind != KAShr {
		return Const(x.W, 0)
	}
	return nil
}

// Shl returns x << y (logical; shifts ≥ width yield 0).
func Shl(x, y *Term) *Term {
	checkSame(x, y)
	if sv, ok := IsConst(y); ok {
		if t := shiftConst(KShl, x, sv); t != nil {
			return t
		}
	}
	return intern(Term{Kind: KShl, W: x.W, X: x, Y: y})
}

// LShr returns x >> y (logical; shifts ≥ width yield 0).
func LShr(x, y *Term) *Term {
	checkSame(x, y)
	if sv, ok := IsConst(y); ok {
		if t := shiftConst(KLShr, x, sv); t != nil {
			return t
		}
	}
	return intern(Term{Kind: KLShr, W: x.W, X: x, Y: y})
}

// AShr returns x >> y (arithmetic; shifts ≥ width yield sign fill).
func AShr(x, y *Term) *Term {
	checkSame(x, y)
	if sv, ok := IsConst(y); ok {
		if t := shiftConst(KAShr, x, sv); t != nil {
			return t
		}
	}
	return intern(Term{Kind: KAShr, W: x.W, X: x, Y: y})
}

// ZExt zero-extends x to width w (w ≥ x.W). Extending to the same width is
// the identity.
func ZExt(w uint8, x *Term) *Term {
	checkWidth(w)
	if w < x.W {
		panic("bv: ZExt to narrower width")
	}
	if w == x.W {
		return x
	}
	if v, ok := IsConst(x); ok {
		return Const(w, v)
	}
	if x.Kind == KZExt {
		return ZExt(w, x.X) // collapse nested extensions
	}
	return intern(Term{Kind: KZExt, W: w, X: x})
}

// SExt sign-extends x to width w (w ≥ x.W).
func SExt(w uint8, x *Term) *Term {
	checkWidth(w)
	if w < x.W {
		panic("bv: SExt to narrower width")
	}
	if w == x.W {
		return x
	}
	if v, ok := IsConst(x); ok {
		return Const(w, signExtend(v, x.W))
	}
	return intern(Term{Kind: KSExt, W: w, X: x})
}

// Extract returns bits hi..lo of x (inclusive), a term of width hi-lo+1.
func Extract(hi, lo uint8, x *Term) *Term {
	if hi < lo || hi >= x.W {
		panic("bv: Extract range out of bounds")
	}
	w := hi - lo + 1
	if w == x.W {
		return x
	}
	if v, ok := IsConst(x); ok {
		return Const(w, v>>lo)
	}
	if x.Kind == KExtract {
		return Extract(x.Lo+hi, x.Lo+lo, x.X) // collapse nested extracts
	}
	if x.Kind == KZExt && hi < x.X.W {
		return Extract(hi, lo, x.X) // extract stays inside the original bits
	}
	return intern(Term{Kind: KExtract, W: w, X: x, Hi: hi, Lo: lo})
}

// Trunc truncates x to its low w bits. Truncation is the paper's "Shrink".
func Trunc(w uint8, x *Term) *Term {
	if w > x.W {
		panic("bv: Trunc to wider width")
	}
	if w == x.W {
		return x
	}
	return Extract(w-1, 0, x)
}

// Concat concatenates hi (high bits) and lo (low bits).
func Concat(hi, lo *Term) *Term {
	if int(hi.W)+int(lo.W) > MaxWidth {
		panic("bv: Concat result too wide")
	}
	w := hi.W + lo.W
	hv, hc := IsConst(hi)
	lv, lc := IsConst(lo)
	if hc && lc {
		return Const(w, hv<<lo.W|lv)
	}
	if hc && hv == 0 {
		return ZExt(w, lo)
	}
	return intern(Term{Kind: KConcat, W: w, X: hi, Y: lo})
}

// ITE returns the term equal to t when cond holds and to f otherwise.
func ITE(cond *Bool, t, f *Term) *Term {
	checkSame(t, f)
	if cond.Kind == BConst {
		if cond.BVal {
			return t
		}
		return f
	}
	if t == f {
		return t
	}
	return intern(Term{Kind: KITE, W: t.W, X: t, Y: f, Cond: cond})
}

func signExtend(v uint64, w uint8) uint64 {
	if w == 64 {
		return v
	}
	sign := uint64(1) << (w - 1)
	v &= Mask(w)
	if v&sign != 0 {
		return v | ^Mask(w)
	}
	return v
}

// True and False return the boolean constants.
func True() *Bool  { return trueBool }
func False() *Bool { return falseBool }

// BoolConst returns the boolean constant b.
func BoolConst(b bool) *Bool {
	if b {
		return trueBool
	}
	return falseBool
}

// Eq returns the formula x = y.
func Eq(x, y *Term) *Bool {
	checkSame(x, y)
	if x == y {
		return trueBool
	}
	xv, xc := IsConst(x)
	yv, yc := IsConst(y)
	if xc && yc {
		return BoolConst(xv == yv)
	}
	if xc { // canonicalize constant on the right
		x, y = y, x
	}
	return internBool(Bool{Kind: BEq, X: x, Y: y})
}

// Ne returns the formula x ≠ y.
func Ne(x, y *Term) *Bool { return NotB(Eq(x, y)) }

// Ult returns the unsigned comparison x < y.
func Ult(x, y *Term) *Bool {
	checkSame(x, y)
	if x == y {
		return falseBool
	}
	xv, xc := IsConst(x)
	yv, yc := IsConst(y)
	if xc && yc {
		return BoolConst(xv < yv)
	}
	if yc && yv == 0 {
		return falseBool // nothing is below zero, unsigned
	}
	if xc && xv == Mask(x.W) {
		return falseBool // nothing is above all-ones
	}
	return internBool(Bool{Kind: BUlt, X: x, Y: y})
}

// Ule returns the unsigned comparison x ≤ y.
func Ule(x, y *Term) *Bool {
	checkSame(x, y)
	if x == y {
		return trueBool
	}
	xv, xc := IsConst(x)
	yv, yc := IsConst(y)
	if xc && yc {
		return BoolConst(xv <= yv)
	}
	if xc && xv == 0 {
		return trueBool
	}
	if yc && yv == Mask(x.W) {
		return trueBool
	}
	return internBool(Bool{Kind: BUle, X: x, Y: y})
}

// Ugt returns x > y unsigned.
func Ugt(x, y *Term) *Bool { return Ult(y, x) }

// Uge returns x ≥ y unsigned.
func Uge(x, y *Term) *Bool { return Ule(y, x) }

// Slt returns the signed comparison x < y.
func Slt(x, y *Term) *Bool {
	checkSame(x, y)
	if x == y {
		return falseBool
	}
	xv, xc := IsConst(x)
	yv, yc := IsConst(y)
	if xc && yc {
		return BoolConst(int64(signExtend(xv, x.W)) < int64(signExtend(yv, y.W)))
	}
	return internBool(Bool{Kind: BSlt, X: x, Y: y})
}

// Sle returns the signed comparison x ≤ y.
func Sle(x, y *Term) *Bool {
	checkSame(x, y)
	if x == y {
		return trueBool
	}
	xv, xc := IsConst(x)
	yv, yc := IsConst(y)
	if xc && yc {
		return BoolConst(int64(signExtend(xv, x.W)) <= int64(signExtend(yv, y.W)))
	}
	return internBool(Bool{Kind: BSle, X: x, Y: y})
}

// Sgt returns x > y signed.
func Sgt(x, y *Term) *Bool { return Slt(y, x) }

// Sge returns x ≥ y signed.
func Sge(x, y *Term) *Bool { return Sle(y, x) }

// NotB returns the negation of a.
func NotB(a *Bool) *Bool {
	if a.Kind == BConst {
		return BoolConst(!a.BVal)
	}
	if a.Kind == BNot {
		return a.A
	}
	return internBool(Bool{Kind: BNot, A: a})
}

// AndB returns the conjunction of a and b.
func AndB(a, b *Bool) *Bool {
	if a.Kind == BConst {
		if a.BVal {
			return b
		}
		return falseBool
	}
	if b.Kind == BConst {
		if b.BVal {
			return a
		}
		return falseBool
	}
	if a == b {
		return a
	}
	return internBool(Bool{Kind: BAnd, A: a, B: b})
}

// OrB returns the disjunction of a and b.
func OrB(a, b *Bool) *Bool {
	if a.Kind == BConst {
		if a.BVal {
			return trueBool
		}
		return b
	}
	if b.Kind == BConst {
		if b.BVal {
			return trueBool
		}
		return a
	}
	if a == b {
		return a
	}
	return internBool(Bool{Kind: BOr, A: a, B: b})
}

// AndAll folds a slice of formulas with AndB. An empty slice yields true.
func AndAll(bs []*Bool) *Bool {
	out := trueBool
	for _, b := range bs {
		out = AndB(out, b)
	}
	return out
}

// OrAll folds a slice of formulas with OrB. An empty slice yields false.
func OrAll(bs []*Bool) *Bool {
	out := falseBool
	for _, b := range bs {
		out = OrB(out, b)
	}
	return out
}
