package bv

import "sort"

// VarSet is the set of free variables of a term or formula, keyed by name.
// All occurrences of a name have a single width (enforced by interning
// discipline in this codebase: a name is always created at one width).
type VarSet map[string]*Term

// Names returns the variable names in sorted order.
func (vs VarSet) Names() []string {
	names := make([]string, 0, len(vs))
	for n := range vs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Intersects reports whether vs and other share at least one variable.
func (vs VarSet) Intersects(other VarSet) bool {
	a, b := vs, other
	if len(b) < len(a) {
		a, b = b, a
	}
	for n := range a {
		if _, ok := b[n]; ok {
			return true
		}
	}
	return false
}

// TermVars returns the free variables of t.
func TermVars(t *Term) VarSet {
	vs := make(VarSet)
	collectTermVars(t, vs, make(map[*Term]bool))
	return vs
}

// BoolVars returns the free variables of b.
func BoolVars(b *Bool) VarSet {
	vs := make(VarSet)
	collectBoolVars(b, vs, make(map[*Term]bool))
	return vs
}

func collectTermVars(t *Term, vs VarSet, seen map[*Term]bool) {
	if t == nil || seen[t] {
		return
	}
	seen[t] = true
	if t.Kind == KVar {
		vs[t.Name] = t
		return
	}
	collectTermVars(t.X, vs, seen)
	collectTermVars(t.Y, vs, seen)
	if t.Cond != nil {
		collectBoolVars(t.Cond, vs, seen)
	}
}

func collectBoolVars(b *Bool, vs VarSet, seen map[*Term]bool) {
	if b == nil {
		return
	}
	switch b.Kind {
	case BEq, BUlt, BUle, BSlt, BSle:
		collectTermVars(b.X, vs, seen)
		collectTermVars(b.Y, vs, seen)
	case BNot:
		collectBoolVars(b.A, vs, seen)
	case BAnd, BOr:
		collectBoolVars(b.A, vs, seen)
		collectBoolVars(b.B, vs, seen)
	}
}

// Size returns the number of distinct nodes in t (a measure of the recorded
// expression's compressed size).
func Size(t *Term) int {
	seen := make(map[*Term]bool)
	var walk func(*Term)
	walk = func(t *Term) {
		if t == nil || seen[t] {
			return
		}
		seen[t] = true
		walk(t.X)
		walk(t.Y)
	}
	walk(t)
	return len(seen)
}

// SubstituteTerm rewrites every variable occurrence in t using repl; variables
// absent from repl are left in place. The rewrite is structure-preserving and
// re-simplifies through the interning constructors.
func SubstituteTerm(t *Term, repl map[string]*Term) *Term {
	s := &substituter{repl: repl, tmemo: make(map[*Term]*Term), bmemo: make(map[*Bool]*Bool)}
	return s.term(t)
}

// SubstituteBool rewrites every variable occurrence in b using repl.
func SubstituteBool(b *Bool, repl map[string]*Term) *Bool {
	s := &substituter{repl: repl, tmemo: make(map[*Term]*Term), bmemo: make(map[*Bool]*Bool)}
	return s.formula(b)
}

type substituter struct {
	repl  map[string]*Term
	tmemo map[*Term]*Term
	bmemo map[*Bool]*Bool
}

func (s *substituter) term(t *Term) *Term {
	if got, ok := s.tmemo[t]; ok {
		return got
	}
	out := s.termUncached(t)
	s.tmemo[t] = out
	return out
}

func (s *substituter) termUncached(t *Term) *Term {
	switch t.Kind {
	case KConst:
		return t
	case KVar:
		if r, ok := s.repl[t.Name]; ok {
			if r.W != t.W {
				panic("bv: substitution width mismatch for " + t.Name)
			}
			return r
		}
		return t
	case KNot:
		return Not(s.term(t.X))
	case KNeg:
		return Neg(s.term(t.X))
	case KAdd:
		return Add(s.term(t.X), s.term(t.Y))
	case KSub:
		return Sub(s.term(t.X), s.term(t.Y))
	case KMul:
		return Mul(s.term(t.X), s.term(t.Y))
	case KUDiv:
		return UDiv(s.term(t.X), s.term(t.Y))
	case KURem:
		return URem(s.term(t.X), s.term(t.Y))
	case KAnd:
		return And(s.term(t.X), s.term(t.Y))
	case KOr:
		return Or(s.term(t.X), s.term(t.Y))
	case KXor:
		return Xor(s.term(t.X), s.term(t.Y))
	case KShl:
		return Shl(s.term(t.X), s.term(t.Y))
	case KLShr:
		return LShr(s.term(t.X), s.term(t.Y))
	case KAShr:
		return AShr(s.term(t.X), s.term(t.Y))
	case KZExt:
		return ZExt(t.W, s.term(t.X))
	case KSExt:
		return SExt(t.W, s.term(t.X))
	case KExtract:
		return Extract(t.Hi, t.Lo, s.term(t.X))
	case KConcat:
		return Concat(s.term(t.X), s.term(t.Y))
	case KITE:
		return ITE(s.formula(t.Cond), s.term(t.X), s.term(t.Y))
	}
	panic("bv: unknown term kind in substitution")
}

func (s *substituter) formula(b *Bool) *Bool {
	if got, ok := s.bmemo[b]; ok {
		return got
	}
	out := s.formulaUncached(b)
	s.bmemo[b] = out
	return out
}

func (s *substituter) formulaUncached(b *Bool) *Bool {
	switch b.Kind {
	case BConst:
		return b
	case BEq:
		return Eq(s.term(b.X), s.term(b.Y))
	case BUlt:
		return Ult(s.term(b.X), s.term(b.Y))
	case BUle:
		return Ule(s.term(b.X), s.term(b.Y))
	case BSlt:
		return Slt(s.term(b.X), s.term(b.Y))
	case BSle:
		return Sle(s.term(b.X), s.term(b.Y))
	case BNot:
		return NotB(s.formula(b.A))
	case BAnd:
		return AndB(s.formula(b.A), s.formula(b.B))
	case BOr:
		return OrB(s.formula(b.A), s.formula(b.B))
	}
	panic("bv: unknown bool kind in substitution")
}
