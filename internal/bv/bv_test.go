package bv

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestConstFolding(t *testing.T) {
	tests := []struct {
		name string
		got  *Term
		want uint64
	}{
		{"add", Add(Const(8, 200), Const(8, 100)), 44},
		{"sub", Sub(Const(8, 5), Const(8, 10)), 251},
		{"mul", Mul(Const(16, 300), Const(16, 300)), 90000 & 0xFFFF},
		{"udiv", UDiv(Const(8, 100), Const(8, 7)), 14},
		{"udiv0", UDiv(Const(8, 100), Const(8, 0)), 0xFF},
		{"urem", URem(Const(8, 100), Const(8, 7)), 2},
		{"urem0", URem(Const(8, 100), Const(8, 0)), 100},
		{"and", And(Const(8, 0xF0), Const(8, 0x3C)), 0x30},
		{"or", Or(Const(8, 0xF0), Const(8, 0x0C)), 0xFC},
		{"xor", Xor(Const(8, 0xFF), Const(8, 0x0F)), 0xF0},
		{"shl", Shl(Const(8, 3), Const(8, 2)), 12},
		{"shl_over", Shl(Const(8, 3), Const(8, 9)), 0},
		{"lshr", LShr(Const(8, 0x80), Const(8, 3)), 0x10},
		{"ashr_neg", AShr(Const(8, 0x80), Const(8, 3)), 0xF0},
		{"ashr_over", AShr(Const(8, 0x80), Const(8, 100)), 0xFF},
		{"neg", Neg(Const(8, 1)), 0xFF},
		{"not", Not(Const(8, 0x0F)), 0xF0},
		{"zext", ZExt(16, Const(8, 0xAB)), 0xAB},
		{"sext", SExt(16, Const(8, 0x80)), 0xFF80},
		{"extract", Extract(11, 4, Const(16, 0xABCD)), 0xBC},
		{"concat", Concat(Const(8, 0xAB), Const(8, 0xCD)), 0xABCD},
		{"trunc", Trunc(8, Const(32, 0x12345678)), 0x78},
	}
	for _, tt := range tests {
		v, ok := IsConst(tt.got)
		if !ok {
			t.Errorf("%s: not folded to constant: %s", tt.name, tt.got)
			continue
		}
		if v != tt.want {
			t.Errorf("%s: got 0x%X want 0x%X", tt.name, v, tt.want)
		}
	}
}

func TestInterning(t *testing.T) {
	x := Var(32, "x")
	y := Var(32, "y")
	a := Add(x, y)
	b := Add(x, y)
	if a != b {
		t.Fatal("structurally identical terms have different pointers")
	}
	if Var(32, "x") != x {
		t.Fatal("variable interning failed")
	}
	if Eq(x, y) != Eq(x, y) {
		t.Fatal("bool interning failed")
	}
}

func TestIdentities(t *testing.T) {
	x := Var(32, "x")
	zero := Const(32, 0)
	one := Const(32, 1)
	ones := Const(32, Mask(32))
	checks := []struct {
		name string
		got  *Term
		want *Term
	}{
		{"x+0", Add(x, zero), x},
		{"0+x", Add(zero, x), x},
		{"x-0", Sub(x, zero), x},
		{"x-x", Sub(x, x), zero},
		{"x*1", Mul(x, one), x},
		{"x*0", Mul(x, zero), zero},
		{"x&ones", And(x, ones), x},
		{"x&0", And(x, zero), zero},
		{"x|0", Or(x, zero), x},
		{"x^0", Xor(x, zero), x},
		{"x^x", Xor(x, x), zero},
		{"x<<0", Shl(x, zero), x},
		{"x>>0", LShr(x, zero), x},
		{"zext same", ZExt(32, x), x},
		{"not not", Not(Not(x)), x},
		{"add chain", Add(Add(x, one), one), Add(x, Const(32, 2))},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s: got %s want %s", c.name, c.got, c.want)
		}
	}
}

func TestBoolIdentities(t *testing.T) {
	x := Var(8, "x")
	if Eq(x, x) != True() {
		t.Error("x = x should fold to true")
	}
	if Ult(x, x) != False() {
		t.Error("x < x should fold to false")
	}
	if Ult(x, Const(8, 0)) != False() {
		t.Error("x < 0 unsigned should fold to false")
	}
	if Ule(Const(8, 0), x) != True() {
		t.Error("0 ≤ x should fold to true")
	}
	if NotB(NotB(Eq(x, Const(8, 1)))) != Eq(x, Const(8, 1)) {
		t.Error("double negation should cancel")
	}
	if AndB(True(), Eq(x, Const(8, 1))) != Eq(x, Const(8, 1)) {
		t.Error("true ∧ p should fold to p")
	}
	if OrB(True(), Eq(x, Const(8, 1))) != True() {
		t.Error("true ∨ p should fold to true")
	}
}

// TestEvalMatchesGoSemantics checks, per operator, that symbolic construction
// plus evaluation agrees with direct Go machine arithmetic.
func TestEvalMatchesGoSemantics(t *testing.T) {
	widths := []uint8{1, 7, 8, 16, 31, 32, 33, 64}
	type binop struct {
		name  string
		mk    func(x, y *Term) *Term
		model func(x, y uint64, w uint8) uint64
	}
	ops := []binop{
		{"add", Add, func(x, y uint64, w uint8) uint64 { return (x + y) & Mask(w) }},
		{"sub", Sub, func(x, y uint64, w uint8) uint64 { return (x - y) & Mask(w) }},
		{"mul", Mul, func(x, y uint64, w uint8) uint64 { return (x * y) & Mask(w) }},
		{"and", And, func(x, y uint64, w uint8) uint64 { return x & y }},
		{"or", Or, func(x, y uint64, w uint8) uint64 { return x | y }},
		{"xor", Xor, func(x, y uint64, w uint8) uint64 { return x ^ y }},
		{"udiv", UDiv, func(x, y uint64, w uint8) uint64 {
			if y == 0 {
				return Mask(w)
			}
			return x / y
		}},
		{"urem", URem, func(x, y uint64, w uint8) uint64 {
			if y == 0 {
				return x
			}
			return x % y
		}},
		{"shl", Shl, func(x, y uint64, w uint8) uint64 {
			if y >= uint64(w) {
				return 0
			}
			return (x << y) & Mask(w)
		}},
		{"lshr", LShr, func(x, y uint64, w uint8) uint64 {
			if y >= uint64(w) {
				return 0
			}
			return (x & Mask(w)) >> y
		}},
	}
	for _, w := range widths {
		xv := Var(w, "qx")
		yv := Var(w, "qy")
		for _, op := range ops {
			expr := op.mk(xv, yv)
			f := func(x, y uint64) bool {
				x &= Mask(w)
				y &= Mask(w)
				got, err := Assignment{"qx": x, "qy": y}.Eval(expr)
				if err != nil {
					return false
				}
				return got == op.model(x, y, w)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
				t.Errorf("w=%d op=%s: %v", w, op.name, err)
			}
		}
	}
}

func TestEvalSignedOps(t *testing.T) {
	x := Var(8, "sx")
	f := func(v uint64) bool {
		v &= 0xFF
		sext, err := Assignment{"sx": v}.Eval(SExt(16, x))
		if err != nil {
			return false
		}
		want := uint64(int64(int8(v))) & 0xFFFF
		return sext == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Errorf("sext: %v", err)
	}
	g := func(a, b uint64) bool {
		a &= 0xFF
		b &= 0xFF
		lt, err := Assignment{"sx": a, "sy": b}.EvalBool(Slt(x, Var(8, "sy")))
		if err != nil {
			return false
		}
		return lt == (int8(a) < int8(b))
	}
	if err := quick.Check(g, nil); err != nil {
		t.Errorf("slt: %v", err)
	}
}

func TestEvalUnboundVar(t *testing.T) {
	if _, err := (Assignment{}).Eval(Var(8, "missing")); err == nil {
		t.Fatal("expected error for unbound variable")
	}
}

func TestOverflowCondAdd(t *testing.T) {
	x := Var(32, "ox")
	y := Var(32, "oy")
	cond := OverflowCond(Add(x, y))
	f := func(a, b uint64) bool {
		a &= Mask(32)
		b &= Mask(32)
		got, err := Assignment{"ox": a, "oy": b}.EvalBool(cond)
		if err != nil {
			return false
		}
		return got == (a+b > Mask(32))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
	// Directed boundary cases.
	for _, tc := range []struct {
		a, b uint64
		want bool
	}{
		{0xFFFFFFFF, 1, true},
		{0xFFFFFFFF, 0, false},
		{0x80000000, 0x80000000, true},
		{0x7FFFFFFF, 0x80000000, false},
	} {
		got, err := Assignment{"ox": tc.a, "oy": tc.b}.EvalBool(cond)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("add overflow(%#x,%#x) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestOverflowCondMul(t *testing.T) {
	for _, w := range []uint8{8, 16, 32} {
		x := Var(w, "mx")
		y := Var(w, "my")
		cond := OverflowCond(Mul(x, y))
		f := func(a, b uint64) bool {
			a &= Mask(w)
			b &= Mask(w)
			got, err := Assignment{"mx": a, "my": b}.EvalBool(cond)
			if err != nil {
				return false
			}
			// Ideal product exceeds the width iff the wide product's high
			// half is non-zero (w ≤ 32 keeps this exact in uint64).
			return got == (a*b > Mask(w) || (a != 0 && a*b/a != b))
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("w=%d: %v", w, err)
		}
	}
}

func TestOverflowCondMulWide(t *testing.T) {
	// 64-bit multiply uses the division-based formulation.
	x := Var(64, "wx")
	y := Var(64, "wy")
	cond := OverflowCond(Mul(x, y))
	cases := []struct {
		a, b uint64
		want bool
	}{
		{1 << 32, 1 << 32, true},
		{1 << 32, 1<<32 - 1, false},
		{0, ^uint64(0), false},
		{^uint64(0), 2, true},
		{1, ^uint64(0), false},
	}
	for _, tc := range cases {
		got, err := Assignment{"wx": tc.a, "wy": tc.b}.EvalBool(cond)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("mul64 overflow(%#x,%#x) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestOverflowCondShl(t *testing.T) {
	x := Var(16, "hx")
	y := Var(16, "hy")
	cond := OverflowCond(Shl(x, y))
	f := func(a, b uint64) bool {
		a &= Mask(16)
		b &= 31 // keep shift amounts in an interesting range
		got, err := Assignment{"hx": a, "hy": b}.EvalBool(cond)
		if err != nil {
			return false
		}
		var want bool
		if b >= 16 {
			want = a != 0
		} else {
			want = a>>(16-b) != 0
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestOverflowCondSubexpression reproduces §4.3's observation: the whole
// expression ((width16×height16)×4)/bpp cannot exceed 32 bits for bpp ∈
// {8,16,32}, but the subexpression (width×height)×4 can wrap, and overflow()
// must capture that.
func TestOverflowCondSubexpression(t *testing.T) {
	width := ZExt(32, Var(16, "w16"))
	height := ZExt(32, Var(16, "h16"))
	bpp := ZExt(32, Var(8, "bpp"))
	expr := UDiv(Mul(Mul(width, height), Const(32, 4)), bpp)
	cond := OverflowCond(expr)
	// width = height = 0xFFFF wraps the inner multiply chain.
	got, err := Assignment{"w16": 0xFFFF, "h16": 0xFFFF, "bpp": 8}.EvalBool(cond)
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Error("subexpression overflow not detected")
	}
	// Small values never wrap.
	got, err = Assignment{"w16": 100, "h16": 100, "bpp": 8}.EvalBool(cond)
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Error("false positive overflow for small values")
	}
}

func TestPrintPaperVocabulary(t *testing.T) {
	width := Var(32, "/header/width")
	expr := Mul(And(width, Const(32, 0xFF000000)), ZExt(32, Var(8, "/header/bit_depth")))
	s := expr.String()
	for _, want := range []string{"Mul(32", "BvAnd(32", "HachField(32,'/header/width')", "Constant(0xFF000000)", "ToSize(32"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered expression %q missing %q", s, want)
		}
	}
	b := Ult(width, Const(32, 10)).String()
	if !strings.Contains(b, "Ult(") {
		t.Errorf("bool rendering %q missing Ult", b)
	}
}

func TestSubstitute(t *testing.T) {
	x := Var(32, "sub_x")
	y := Var(32, "sub_y")
	e := Add(Mul(x, y), Const(32, 7))
	got := SubstituteTerm(e, map[string]*Term{"sub_x": Const(32, 3), "sub_y": Const(32, 5)})
	if v, ok := IsConst(got); !ok || v != 22 {
		t.Fatalf("substitution did not fold: %s", got)
	}
	// Partial substitution keeps the other variable.
	got = SubstituteTerm(e, map[string]*Term{"sub_x": Const(32, 1)})
	if got != Add(y, Const(32, 7)) {
		t.Fatalf("partial substitution: got %s", got)
	}
}

func TestVarSet(t *testing.T) {
	x := Var(32, "vs_x")
	y := Var(8, "vs_y")
	f := AndB(Ult(x, Const(32, 5)), Eq(ZExt(32, y), x))
	vars := BoolVars(f)
	if len(vars) != 2 || vars["vs_x"] != x || vars["vs_y"] != y {
		t.Fatalf("vars = %v", vars.Names())
	}
	other := TermVars(Add(x, x))
	if !vars.Intersects(other) {
		t.Error("expected shared variable")
	}
	if vars.Intersects(TermVars(Var(8, "vs_z"))) {
		t.Error("unexpected shared variable")
	}
}

func TestITE(t *testing.T) {
	x := Var(8, "ite_x")
	e := ITE(Ult(x, Const(8, 10)), Const(8, 1), Const(8, 2))
	got, err := Assignment{"ite_x": 5}.Eval(e)
	if err != nil || got != 1 {
		t.Fatalf("ite true branch: %d %v", got, err)
	}
	got, err = Assignment{"ite_x": 50}.Eval(e)
	if err != nil || got != 2 {
		t.Fatalf("ite false branch: %d %v", got, err)
	}
	if ITE(True(), x, Const(8, 0)) != x {
		t.Error("ite with constant condition should fold")
	}
}

func TestInternIDs(t *testing.T) {
	x := Var(16, "id_x")
	y := Var(16, "id_y")
	if x.ID() == 0 || y.ID() == 0 {
		t.Fatal("interned terms must have non-zero ids")
	}
	if x.ID() == y.ID() {
		t.Fatal("distinct terms share an id")
	}
	if Add(x, y).ID() != Add(x, y).ID() {
		t.Fatal("structurally identical terms must share an id")
	}
	a := Ult(x, y)
	b := Ult(x, y)
	if a.ID() != b.ID() || a.ID() == 0 {
		t.Fatalf("bool ids: %d vs %d", a.ID(), b.ID())
	}
	if True().ID() == False().ID() {
		t.Fatal("boolean constants share an id")
	}
	if a.ID() == True().ID() || a.ID() == False().ID() {
		t.Fatal("formula id collides with a constant")
	}
}

func TestConjuncts(t *testing.T) {
	x := Var(8, "cj_x")
	a := Ult(x, Const(8, 10))
	b := Ugt(x, Const(8, 2))
	c := Eq(x, Const(8, 5))
	got := Conjuncts(AndB(AndB(a, b), c))
	if len(got) != 3 || got[0] != a || got[1] != b || got[2] != c {
		t.Fatalf("Conjuncts = %v", got)
	}
	if got := Conjuncts(a); len(got) != 1 || got[0] != a {
		t.Fatalf("single conjunct: %v", got)
	}
	if got := Conjuncts(True()); len(got) != 0 {
		t.Fatalf("true must have no conjuncts, got %v", got)
	}
	// OrB is a leaf from the conjunction's point of view.
	or := OrB(a, b)
	if got := Conjuncts(AndB(or, c)); len(got) != 2 || got[0] != or {
		t.Fatalf("disjunction split: %v", got)
	}
}
