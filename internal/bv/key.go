package bv

// Canonical term keys. Because terms and formulas are hash-consed, the
// pointer of an interned node already identifies its structure; the intern
// ids below turn that identity into a compact comparable key that downstream
// caches (the bit-blaster's per-term CNF cache, the solver session's
// conjunct ledger) can use without retaining the node itself and without
// recomputing structural hashes.

// ID returns the canonical intern id of t: two terms have the same id iff
// they are structurally identical. Ids are unique within a process; a Term
// constructed outside the package constructors (which the package forbids)
// reports 0.
func (t *Term) ID() uint64 { return t.id }

// ID returns the canonical intern id of b; the analogue of Term.ID for
// formulas. The constants true and false have ids 1 and 2.
func (b *Bool) ID() uint64 { return b.id }

// Conjuncts flattens nested conjunctions into the list of leaf conjuncts in
// left-to-right order: Conjuncts(a ∧ (b ∧ c)) = [a, b, c]. Non-conjunction
// formulas yield themselves, and the constant true yields nothing — so a
// formula grown with AndB decomposes into exactly the constraints that were
// conjoined, which is what lets an incremental solving session assert only
// the newly added conjunct of a monotonically growing conjunction.
func Conjuncts(b *Bool) []*Bool {
	if b.Kind == BConst && b.BVal {
		return nil
	}
	var out []*Bool
	var walk func(*Bool)
	walk = func(f *Bool) {
		if f.Kind == BAnd {
			walk(f.A)
			walk(f.B)
			return
		}
		out = append(out, f)
	}
	walk(b)
	return out
}
