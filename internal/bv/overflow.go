package bv

// OverflowCond implements the paper's overflow(B) function (§3.3, §4.3): it
// returns a formula that is true iff the evaluation of t wraps at some
// arithmetic step — at the root or in any subexpression. The formula is the
// disjunction of a per-node wraparound flag for every Add, Sub, Mul and Shl
// node in t.
//
// Per §4.3 this deliberately covers subexpression overflow: for
// ((width16×height16)×4)/bbp8 no input overflows the whole expression, but
// inputs exist that overflow the subexpression (width16×height16)×4, and the
// returned constraint captures them.
func OverflowCond(t *Term) *Bool {
	c := &overflowCollector{seen: make(map[*Term]bool)}
	c.visit(t)
	return OrAll(c.flags)
}

// OverflowNodes returns the number of arithmetic nodes in t that contribute a
// wraparound flag. Useful for diagnostics and tests.
func OverflowNodes(t *Term) int {
	c := &overflowCollector{seen: make(map[*Term]bool)}
	c.visit(t)
	return len(c.flags)
}

type overflowCollector struct {
	seen  map[*Term]bool
	flags []*Bool
}

func (c *overflowCollector) visit(t *Term) {
	if t == nil || c.seen[t] {
		return
	}
	c.seen[t] = true
	if t.X != nil {
		c.visit(t.X)
	}
	if t.Y != nil {
		c.visit(t.Y)
	}
	if t.Cond != nil {
		c.visitBool(t.Cond)
	}
	if f := nodeOverflow(t); f != nil && f != False() {
		c.flags = append(c.flags, f)
	}
}

func (c *overflowCollector) visitBool(b *Bool) {
	switch b.Kind {
	case BEq, BUlt, BUle, BSlt, BSle:
		c.visit(b.X)
		c.visit(b.Y)
	case BNot:
		c.visitBool(b.A)
	case BAnd, BOr:
		c.visitBool(b.A)
		c.visitBool(b.B)
	}
}

// nodeOverflow returns the wraparound flag for a single node, or nil when the
// node kind cannot wrap.
func nodeOverflow(t *Term) *Bool {
	switch t.Kind {
	case KAdd:
		// Unsigned add wraps iff the result is below either operand.
		return Ult(t, t.X)
	case KSub:
		// Unsigned sub wraps (borrows) iff the subtrahend exceeds the minuend.
		return Ult(t.X, t.Y)
	case KMul:
		return mulOverflow(t.X, t.Y)
	case KShl:
		return shlOverflow(t.X, t.Y)
	}
	return nil
}

func mulOverflow(x, y *Term) *Bool {
	w := x.W
	if int(w)*2 <= MaxWidth {
		// Compute the product at double width; overflow iff the high half is
		// non-zero.
		wide := Mul(ZExt(w*2, x), ZExt(w*2, y))
		hi := Extract(w*2-1, w, wide)
		return Ne(hi, Const(w, 0))
	}
	// Wide multiply does not fit in 64 bits: x*y wraps iff y≠0 and
	// x > (2^w - 1) / y.
	maxv := Const(w, Mask(w))
	return AndB(Ne(y, Const(w, 0)), Ugt(x, UDiv(maxv, y)))
}

func shlOverflow(x, y *Term) *Bool {
	w := x.W
	zero := Const(w, 0)
	wc := Const(w, uint64(w))
	// If y < w: bits shifted out are x >> (w - y); overflow iff non-zero.
	// If y ≥ w: the whole value is shifted out; overflow iff x ≠ 0.
	inRange := Ult(y, wc)
	lost := LShr(x, Sub(wc, y))
	return OrB(
		AndB(inRange, Ne(lost, zero)),
		AndB(NotB(inRange), Ne(x, zero)),
	)
}
