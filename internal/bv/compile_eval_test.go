package bv

import (
	"math/rand"
	"testing"
)

// randomFormula builds a random formula over the given variables, exercising
// every term and bool constructor (the constructors' own constant folding and
// canonicalization included).
func randomFormula(rng *rand.Rand, vars []*Term, depth int) *Bool {
	t := func() *Term { return randomTerm(rng, vars, depth) }
	switch rng.Intn(8) {
	case 0:
		return Eq(t(), t())
	case 1:
		return Ult(t(), t())
	case 2:
		return Ule(t(), t())
	case 3:
		return Slt(t(), t())
	case 4:
		return Sle(t(), t())
	case 5:
		if depth <= 0 {
			return BoolConst(rng.Intn(2) == 0)
		}
		return NotB(randomFormula(rng, vars, depth-1))
	case 6:
		if depth <= 0 {
			return Ugt(t(), t())
		}
		return AndB(randomFormula(rng, vars, depth-1), randomFormula(rng, vars, depth-1))
	default:
		if depth <= 0 {
			return Uge(t(), t())
		}
		return OrB(randomFormula(rng, vars, depth-1), randomFormula(rng, vars, depth-1))
	}
}

func randomTerm(rng *rand.Rand, vars []*Term, depth int) *Term {
	if depth <= 0 || rng.Intn(4) == 0 {
		if rng.Intn(3) == 0 {
			return Const(32, rng.Uint64())
		}
		v := vars[rng.Intn(len(vars))]
		return ZExt(32, v)
	}
	x := randomTerm(rng, vars, depth-1)
	y := randomTerm(rng, vars, depth-1)
	switch rng.Intn(14) {
	case 0:
		return Add(x, y)
	case 1:
		return Sub(x, y)
	case 2:
		return Mul(x, y)
	case 3:
		return UDiv(x, y)
	case 4:
		return URem(x, y)
	case 5:
		return And(x, y)
	case 6:
		return Or(x, y)
	case 7:
		return Xor(x, y)
	case 8:
		return Shl(x, y)
	case 9:
		return LShr(x, y)
	case 10:
		return AShr(x, y)
	case 11:
		return Not(x)
	case 12:
		return Neg(x)
	default:
		return ITE(randomFormula(rng, vars, 0), x, y)
	}
}

// TestCompiledBoolMatchesEvalBool pins the compiled concrete evaluator to the
// recursive one over random formulas and random total assignments — the
// contract the solver's concrete search depends on for verdict determinism.
func TestCompiledBoolMatchesEvalBool(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vars := []*Term{Var(8, "a"), Var(8, "b"), Var(16, "c"), Var(32, "d")}
	for round := 0; round < 300; round++ {
		f := randomFormula(rng, vars, 4)
		ce := CompileBool(f)
		for trial := 0; trial < 20; trial++ {
			asn := Assignment{}
			for _, v := range vars {
				asn[v.Name] = rng.Uint64() & Mask(v.W)
			}
			want, werr := asn.EvalBool(f)
			got, gerr := ce.Eval(asn)
			if werr != nil || gerr != nil {
				t.Fatalf("eval error: %v / %v", werr, gerr)
			}
			if got != want {
				t.Fatalf("round %d: compiled=%v recursive=%v for %s under %v", round, got, want, f, asn)
			}
		}
	}
}

// TestCompiledBoolHoistsConstants pins the compile-time fusions: constant
// terms/bools are written into their slots once at CompileBool time and
// KZExt nodes alias their operand's slot, so none of the three appear in the
// per-Eval instruction stream.
func TestCompiledBoolHoistsConstants(t *testing.T) {
	f := OrB(
		Ult(ZExt(32, Var(8, "x")), Const(32, 10)),
		Eq(Add(ZExt(32, Var(8, "x")), Const(32, 1)), Const(32, 4)),
	)
	ce := CompileBool(f)
	for _, ins := range ce.instrs {
		switch {
		case ins.op == uint8(KConst):
			t.Fatalf("KConst instruction survived compilation: %+v", ins)
		case ins.op == uint8(KZExt):
			t.Fatalf("KZExt instruction survived compilation: %+v", ins)
		}
	}
	for _, x := range []uint64{3, 9, 10, 200} {
		want, _ := (Assignment{"x": x}).EvalBool(f)
		got, err := ce.Eval(Assignment{"x": x})
		if err != nil || got != want {
			t.Fatalf("x=%d: got %v, %v; want %v", x, got, err, want)
		}
	}
	// A constant bool can only reach CompileBool as the whole formula (the
	// combinators fold it away everywhere else); it compiles to zero
	// instructions with the result prewritten into its slot.
	for _, b := range []bool{true, false} {
		cc := CompileBool(BoolConst(b))
		if len(cc.instrs) != 0 {
			t.Fatalf("BoolConst(%v) compiled to %d instructions", b, len(cc.instrs))
		}
		if got, err := cc.Eval(Assignment{}); err != nil || got != b {
			t.Fatalf("BoolConst(%v) evaluated to %v, %v", b, got, err)
		}
	}
}

// TestCompiledBoolUnbound pins the unbound-variable error path.
func TestCompiledBoolUnbound(t *testing.T) {
	f := Ult(ZExt(32, Var(8, "x")), Const(32, 10))
	ce := CompileBool(f)
	if _, err := ce.Eval(Assignment{}); err == nil {
		t.Fatal("expected unbound-variable error")
	}
	ok, err := ce.Eval(Assignment{"x": 3})
	if err != nil || !ok {
		t.Fatalf("got %v, %v", ok, err)
	}
	// Reuse: a second evaluation on the same CompiledBool is independent.
	ok, err = ce.Eval(Assignment{"x": 200})
	if err != nil || ok {
		t.Fatalf("reused eval got %v, %v", ok, err)
	}
}
