package bv

import "fmt"

// Assignment maps variable names to concrete values. Values are interpreted
// at the width of the variable they bind; extra high bits are masked off.
type Assignment map[string]uint64

// Eval evaluates t under the assignment. It returns an error if t mentions a
// variable the assignment does not bind.
func (a Assignment) Eval(t *Term) (uint64, error) {
	e := evaluator{asn: a, tmemo: make(map[*Term]uint64), bmemo: make(map[*Bool]bool)}
	v, err := e.term(t)
	if err != nil {
		return 0, err
	}
	return v, nil
}

// EvalBool evaluates the formula b under the assignment.
func (a Assignment) EvalBool(b *Bool) (bool, error) {
	e := evaluator{asn: a, tmemo: make(map[*Term]uint64), bmemo: make(map[*Bool]bool)}
	return e.formula(b)
}

type evaluator struct {
	asn   Assignment
	tmemo map[*Term]uint64
	bmemo map[*Bool]bool
}

func (e *evaluator) term(t *Term) (uint64, error) {
	if v, ok := e.tmemo[t]; ok {
		return v, nil
	}
	v, err := e.termUncached(t)
	if err != nil {
		return 0, err
	}
	v &= Mask(t.W)
	e.tmemo[t] = v
	return v, nil
}

func (e *evaluator) termUncached(t *Term) (uint64, error) {
	switch t.Kind {
	case KConst:
		return t.Val, nil
	case KVar:
		v, ok := e.asn[t.Name]
		if !ok {
			return 0, fmt.Errorf("bv: unbound variable %q", t.Name)
		}
		return v & Mask(t.W), nil
	}
	x, err := e.term(t.X)
	if err != nil {
		return 0, err
	}
	switch t.Kind {
	case KNot:
		return ^x, nil
	case KNeg:
		return -x, nil
	case KZExt:
		return x, nil
	case KSExt:
		return signExtend(x, t.X.W), nil
	case KExtract:
		return x >> t.Lo, nil
	case KITE:
		c, err := e.formula(t.Cond)
		if err != nil {
			return 0, err
		}
		if c {
			return x, nil
		}
		return e.term(t.Y)
	}
	y, err := e.term(t.Y)
	if err != nil {
		return 0, err
	}
	switch t.Kind {
	case KAdd:
		return x + y, nil
	case KSub:
		return x - y, nil
	case KMul:
		return x * y, nil
	case KUDiv:
		if y == 0 {
			return Mask(t.W), nil
		}
		return x / y, nil
	case KURem:
		if y == 0 {
			return x, nil
		}
		return x % y, nil
	case KAnd:
		return x & y, nil
	case KOr:
		return x | y, nil
	case KXor:
		return x ^ y, nil
	case KShl:
		if y >= uint64(t.W) {
			return 0, nil
		}
		return x << y, nil
	case KLShr:
		if y >= uint64(t.W) {
			return 0, nil
		}
		return x >> y, nil
	case KAShr:
		s := y
		if s >= uint64(t.W) {
			s = uint64(t.W) - 1
		}
		return uint64(int64(signExtend(x, t.X.W)) >> s), nil
	case KConcat:
		return x<<t.Y.W | y, nil
	}
	return 0, fmt.Errorf("bv: unknown term kind %d", t.Kind)
}

func (e *evaluator) formula(b *Bool) (bool, error) {
	if v, ok := e.bmemo[b]; ok {
		return v, nil
	}
	v, err := e.formulaUncached(b)
	if err != nil {
		return false, err
	}
	e.bmemo[b] = v
	return v, nil
}

func (e *evaluator) formulaUncached(b *Bool) (bool, error) {
	switch b.Kind {
	case BConst:
		return b.BVal, nil
	case BEq, BUlt, BUle, BSlt, BSle:
		x, err := e.term(b.X)
		if err != nil {
			return false, err
		}
		y, err := e.term(b.Y)
		if err != nil {
			return false, err
		}
		switch b.Kind {
		case BEq:
			return x == y, nil
		case BUlt:
			return x < y, nil
		case BUle:
			return x <= y, nil
		case BSlt:
			return int64(signExtend(x, b.X.W)) < int64(signExtend(y, b.Y.W)), nil
		default: // BSle
			return int64(signExtend(x, b.X.W)) <= int64(signExtend(y, b.Y.W)), nil
		}
	case BNot:
		v, err := e.formula(b.A)
		if err != nil {
			return false, err
		}
		return !v, nil
	case BAnd:
		av, err := e.formula(b.A)
		if err != nil {
			return false, err
		}
		if !av {
			return false, nil
		}
		return e.formula(b.B)
	case BOr:
		av, err := e.formula(b.A)
		if err != nil {
			return false, err
		}
		if av {
			return true, nil
		}
		return e.formula(b.B)
	}
	return false, fmt.Errorf("bv: unknown bool kind %d", b.Kind)
}
