// Wavhunt runs DIODE against all four VLC 0.8.6h WAV-path target sites,
// including CVE-2008-2430 (wav.c@147), whose target expression fmt_size+2
// has exactly two overflowing solutions — the §5.5 "2/2" row.
//
// Run with: go run ./examples/wavhunt
package main

import (
	"fmt"
	"log"
	"runtime"

	"diode"
)

func main() {
	app, err := diode.Application("vlc")
	if err != nil {
		log.Fatal(err)
	}
	opts := diode.Options{Seed: 7, Parallelism: runtime.GOMAXPROCS(0)}
	sched := diode.NewScheduler(app, opts)
	result, err := sched.RunAll()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s: hunting %d WAV-path allocation sites\n\n", app.Name, len(result.Sites))
	for _, sr := range result.Sites {
		paper, _ := app.PaperFor(sr.Target.Site)
		fmt.Printf("%-24s %-12s (paper: %s)\n", sr.Target.Site, sr.Verdict, paper.CVE)
		if sr.Verdict != diode.VerdictExposed {
			continue
		}
		fmt.Printf("  error: %s, enforced %d branch(es)\n", sr.ErrorType, sr.EnforcedCount())
		for _, spec := range app.Format.Fields.Specs() {
			oldV, newV := spec.Read(app.Format.Seed), spec.Read(sr.Input)
			if oldV != newV {
				fmt.Printf("  %-16s %d -> %d\n", spec.Name, oldV, newV)
			}
		}
	}

	// The CVE-2008-2430 story: count the distinct solutions of the target
	// constraint. x+2 over a 32-bit field overflows for exactly two values.
	var wav *diode.Target
	targets, _ := diode.NewAnalyzer(app, opts).Analyze()
	for _, t := range targets {
		if t.Site == "vlc:wav.c@147" {
			wav = t
		}
	}
	hits, total := diode.NewHunter(app, opts.ForSite(wav.Site)).SuccessRate(wav, wav.Beta, 200)
	fmt.Printf("\nwav.c@147 target-constraint sampling: %d/%d inputs trigger "+
		"(the constraint has only two solutions; paper reports 2/2)\n", hits, total)
}
