// Batchaudit sweeps every registered benchmark application in parallel —
// the paper's full Table 1 experiment plus the extended workload suite —
// and prints the measured classification (next to the paper's for the five
// paper applications, measured-only for the extended ones). The sweep runs
// apps × sites concurrently; per-site seed derivation keeps the rows
// identical to a sequential run.
//
// Run with: go run ./examples/batchaudit
package main

import (
	"fmt"
	"log"
	"runtime"

	"diode"
	"diode/internal/harness"
)

func main() {
	outcomes := harness.EvaluateAll(harness.Config{Seed: 1, Parallelism: runtime.GOMAXPROCS(0)})
	for _, o := range outcomes {
		if o.Err != nil {
			log.Fatal(o.Err)
		}
	}
	recs := harness.Records(outcomes)
	fmt.Print(diode.Table1(diode.PaperApplications(), recs))
	fmt.Println()
	fmt.Print(diode.TableExtended(diode.ExtendedApplications(), recs))

	fmt.Println("\nDiscovered overflows:")
	for _, o := range outcomes {
		for _, sr := range o.Result.Sites {
			if sr.Verdict == diode.VerdictExposed {
				cve := "(extended suite)"
				if paper, ok := o.App.PaperFor(sr.Target.Site); ok {
					cve = paper.CVE
				}
				fmt.Printf("  %-32s %-22s %s\n", sr.Target.Site, sr.ErrorType, cve)
			}
		}
	}
}
