// Batchaudit sweeps every registered benchmark application — the paper's
// full Table 1 experiment plus the extended workload suite — and prints the
// measured classification (next to the paper's for the five paper
// applications, measured-only for the extended ones).
//
// The sweep runs on the job-based dispatch layer: the harness plans one job
// per (application, site) and the backend fans them out. The default is the
// in-process LocalBackend shown here with a live progress sink; building
// cmd/diode-worker and setting harness.Config.Backend to a
// diode.ExecBackend runs the identical sweep across worker processes with
// byte-identical tables — the seam a networked work-queue backend (the
// paper's §4 deployment) drops into.
//
// Run with: go run ./examples/batchaudit
package main

import (
	"fmt"
	"log"
	"os"
	"runtime"
	"sync/atomic"

	"diode"
	"diode/internal/harness"
)

func main() {
	var hunted atomic.Int64
	cfg := harness.Config{
		Seed:        1,
		Parallelism: runtime.GOMAXPROCS(0),
		Sink: func(ev diode.JobEvent) {
			if ev.Type == diode.JobFinished {
				fmt.Fprintf(os.Stderr, "  [%2d] %-12s %-32s %s\n",
					hunted.Add(1), ev.Job.Kind, ev.Job.Site, ev.Result.Verdict)
			}
		},
	}
	outcomes := harness.EvaluateAll(cfg)
	for _, o := range outcomes {
		if o.Err != nil {
			log.Fatal(o.Err)
		}
	}
	recs := harness.Records(outcomes)
	fmt.Print(diode.Table1(diode.PaperApplications(), recs))
	fmt.Println()
	fmt.Print(diode.TableExtended(diode.ExtendedApplications(), recs))

	fmt.Println("\nDiscovered overflows:")
	for _, o := range outcomes {
		for _, sr := range o.Result.Sites {
			if sr.Verdict == diode.VerdictExposed {
				cve := "(extended suite)"
				if paper, ok := o.App.PaperFor(sr.Target.Site); ok {
					cve = paper.CVE
				}
				fmt.Printf("  %-32s %-22s %s\n", sr.Target.Site, sr.ErrorType, cve)
			}
		}
	}
}
