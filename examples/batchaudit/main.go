// Batchaudit sweeps all five benchmark applications in parallel — the
// paper's full Table 1 experiment — and prints the measured classification
// next to the paper's. The sweep runs apps × sites concurrently; per-site
// seed derivation keeps the rows identical to a sequential run.
//
// Run with: go run ./examples/batchaudit
package main

import (
	"fmt"
	"log"
	"runtime"

	"diode"
	"diode/internal/harness"
)

func main() {
	outcomes := harness.EvaluateAll(harness.Config{Seed: 1, Parallelism: runtime.GOMAXPROCS(0)})
	for _, o := range outcomes {
		if o.Err != nil {
			log.Fatal(o.Err)
		}
	}
	fmt.Print(diode.Table1(diode.Applications(), harness.Records(outcomes)))

	fmt.Println("\nDiscovered overflows:")
	for _, o := range outcomes {
		for _, sr := range o.Result.Sites {
			if sr.Verdict == diode.VerdictExposed {
				paper, _ := o.App.PaperFor(sr.Target.Site)
				fmt.Printf("  %-32s %-22s %s\n", sr.Target.Site, sr.ErrorType, paper.CVE)
			}
		}
	}
}
