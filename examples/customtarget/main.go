// Customtarget shows the downstream-user workflow: author a new guest
// application and input format, then point DIODE at it. The toy "thumbnail
// server" below reads a tiny header (magic, width, height, quality), guards
// the buffer size with a wrapping sanity check, and allocates w*h*3 — DIODE
// finds the inputs that slip through the check and overflow the allocation.
//
// Run with: go run ./examples/customtarget
package main

import (
	"fmt"
	"log"

	"diode"
	"diode/internal/apps"
	"diode/internal/field"
	"diode/internal/formats"
	. "diode/internal/lang"
)

// buildFormat describes the input file: 4-byte magic, then three
// little-endian 32-bit fields.
func buildFormat() *formats.Format {
	seed := []byte{'T', 'H', 'M', 'B',
		64, 0, 0, 0, // width = 64
		48, 0, 0, 0, // height = 48
		80, 0, 0, 0, // quality = 80
	}
	return &formats.Format{
		Name: "thmb",
		Seed: seed,
		Fields: field.MustMap([]field.Spec{
			{Name: "/thmb/width", Offset: 4, Size: 4, Order: field.LittleEndian},
			{Name: "/thmb/height", Offset: 8, Size: 4, Order: field.LittleEndian},
			{Name: "/thmb/quality", Offset: 12, Size: 4, Order: field.LittleEndian},
		}),
		Validate: func(data []byte) error {
			if len(data) < 16 || string(data[:4]) != "THMB" {
				return fmt.Errorf("thmb: bad magic")
			}
			return nil
		},
	}
}

// buildProgram is the guest application. The size check at thumb.c@31 is
// computed in wrapping 32-bit arithmetic — the classic vulnerable pattern.
func buildProgram() *Program {
	p := NewProgram("thumbd")
	rd := func(off uint64) Expr {
		b := func(k uint64) Expr { return ZX(32, InAt(off+k)) }
		return BitOr(BitOr(b(0), Shl(b(1), U32(8))),
			BitOr(Shl(b(2), U32(16)), Shl(b(3), U32(24))))
	}
	p.AddFunc(Fn("main", nil,
		IfThen("thumb.c@12", Or(
			Ne(ZX(32, InAt(0)), U32('T')),
			Ne(ZX(32, InAt(1)), U32('H'))),
			Abort("bad magic"),
		),
		Let("w", rd(4)),
		Let("h", rd(8)),
		Let("q", rd(12)),
		IfThen("thumb.c@24", Ugt(V("q"), U32(100)),
			Abort("quality out of range"),
		),
		// The vulnerable size check: w*h*3 computed with 32-bit wraparound.
		Let("sz", Mul(Mul(V("w"), V("h")), U32(3))),
		IfThen("thumb.c@31", Ugt(V("sz"), U32(0x4000000)),
			Abort("thumbnail too large"),
		),
		AllocAt("pixels", "thumbd:thumb.c@38", Mul(Mul(V("w"), V("h")), U32(3))),
		Put(V("pixels"),
			Sub(Mul(Mul(ZX(64, V("w")), ZX(64, V("h"))), U64(3)), U64(1)),
			U8(0)),
	))
	if err := p.Finalize(); err != nil {
		log.Fatal(err)
	}
	return p
}

func main() {
	app := &apps.App{
		Name:    "thumbd 0.1 (custom)",
		Short:   "thumbd",
		Program: buildProgram(),
		Format:  buildFormat(),
	}
	engine := diode.NewEngine(app, diode.Options{Seed: 3})
	result, err := engine.RunAll()
	if err != nil {
		log.Fatal(err)
	}
	for _, sr := range result.Sites {
		fmt.Printf("%s: %v\n", sr.Target.Site, sr.Verdict)
		if sr.Verdict != diode.VerdictExposed {
			continue
		}
		fmt.Printf("  error: %s after enforcing %v\n", sr.ErrorType, sr.Enforced)
		for _, spec := range app.Format.Fields.Specs() {
			oldV, newV := spec.Read(app.Format.Seed), spec.Read(sr.Input)
			if oldV != newV {
				fmt.Printf("  %-14s %d -> %d\n", spec.Name, oldV, newV)
			}
		}
		w := app.Format.Fields.Specs()[0].Read(sr.Input)
		h := app.Format.Fields.Specs()[1].Read(sr.Input)
		fmt.Printf("  ideal size w*h*3 = %d (wraps 32 bits), wrapped check passed\n", w*h*3)
	}
}
