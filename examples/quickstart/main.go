// Quickstart walks the paper's §2 example end to end: DIODE against Dillo's
// PNG pipeline, targeting the image-buffer allocation png.c@203 whose size
// is rowbytes*height.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"diode"
)

func main() {
	app, err := diode.Application("dillo")
	if err != nil {
		log.Fatal(err)
	}
	opts := diode.Options{Seed: 1}

	// Stages 1–3: taint analysis finds the target sites and relevant input
	// bytes; symbolic re-execution extracts the target expression and the
	// branch conditions of every sanity check on the path. The Analyzer runs
	// once per application; its Targets are immutable.
	targets, err := diode.NewAnalyzer(app, opts).Analyze()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d target memory allocation sites\n\n", app.Name, len(targets))

	var png203 *diode.Target
	for _, t := range targets {
		if t.Site == "dillo:png.c@203" {
			png203 = t
		}
	}
	if png203 == nil {
		log.Fatal("png.c@203 not identified as a target site")
	}

	fmt.Println("Target site png.c@203 (the paper's Figure 2 example):")
	fmt.Printf("  relevant input bytes: %v\n", png203.RelevantBytes)
	fmt.Printf("  relevant branches on the seed path: %d static, %d dynamic\n",
		len(png203.SeedPath), png203.DynamicBranches)
	expr := png203.Expr.String()
	if len(expr) > 240 {
		expr = expr[:240] + "..."
	}
	fmt.Printf("  target expression (note the endianness swizzle over\n"+
		"  HachField(32,'/ihdr/width') etc., as in §2):\n    %s\n\n", expr)

	// Goal-directed conditional branch enforcement (Figure 7). A Hunter owns
	// its private solver; seeding it with ForSite reproduces exactly the hunt
	// a Scheduler would run for this site.
	result := diode.NewHunter(app, opts.ForSite(png203.Site)).Hunt(png203)
	fmt.Printf("verdict: %v\n", result.Verdict)
	if result.Verdict != diode.VerdictExposed {
		return
	}
	fmt.Printf("enforced sanity checks, in discovery order:\n")
	for i, label := range result.Enforced {
		fmt.Printf("  %d. %s\n", i+1, label)
	}
	fmt.Printf("error: %s\n", result.ErrorType)
	fmt.Println("\ntriggering input (changed fields):")
	for _, spec := range app.Format.Fields.Specs() {
		if !strings.HasPrefix(spec.Name, "/ihdr/") {
			continue
		}
		fmt.Printf("  %-18s %10d -> %d\n",
			spec.Name, spec.Read(app.Format.Seed), spec.Read(result.Input))
	}
}
