// Quickstart walks the paper's §2 example end to end: DIODE against Dillo's
// PNG pipeline, targeting the image-buffer allocation png.c@203 whose size
// is rowbytes*height. The hunt itself runs through the job-based dispatch
// API: analysis plans one serializable hunt job per target site, a backend
// executes them (swap LocalBackend for ExecBackend and the same jobs run in
// spawned worker processes), and a progress sink streams the Figure 7
// enforcement iterations live.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"diode"
)

func main() {
	app, err := diode.Application("dillo")
	if err != nil {
		log.Fatal(err)
	}
	opts := diode.Options{Seed: 1}

	// Stages 1–3: taint analysis finds the target sites and relevant input
	// bytes; symbolic re-execution extracts the target expression and the
	// branch conditions of every sanity check on the path. The Analyzer runs
	// once per application; its Targets are immutable.
	targets, err := diode.NewAnalyzer(app, opts).Analyze()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d target memory allocation sites\n\n", app.Name, len(targets))

	var png203 *diode.Target
	for _, t := range targets {
		if t.Site == "dillo:png.c@203" {
			png203 = t
		}
	}
	if png203 == nil {
		log.Fatal("png.c@203 not identified as a target site")
	}

	fmt.Println("Target site png.c@203 (the paper's Figure 2 example):")
	fmt.Printf("  relevant input bytes: %v\n", png203.RelevantBytes)
	fmt.Printf("  relevant branches on the seed path: %d static, %d dynamic\n",
		len(png203.SeedPath), png203.DynamicBranches)
	expr := png203.Expr.String()
	if len(expr) > 240 {
		expr = expr[:240] + "..."
	}
	fmt.Printf("  target expression (note the endianness swizzle over\n"+
		"  HachField(32,'/ihdr/width') etc., as in §2):\n    %s\n\n", expr)

	// Goal-directed conditional branch enforcement (Figure 7), dispatched as
	// a job: the record carries everything a worker needs — application,
	// site, the seed derived exactly as a Scheduler would derive it — so the
	// same job produces the same verdict on any backend. The sink narrates
	// the enforcement loop as it runs.
	job := diode.Job{
		ID: 1, Kind: diode.JobHunt, App: app.Short, Site: png203.Site,
		Seed: diode.SiteSeed(opts.Seed, png203.Site),
	}
	backend := &diode.LocalBackend{Sink: func(ev diode.JobEvent) {
		if ev.Type == diode.JobIteration {
			fmt.Printf("  enforcement iteration %d...\n", ev.Iteration)
		}
	}}
	results, err := diode.RunJobs(context.Background(), backend, []diode.Job{job})
	if err != nil || len(results) != 1 {
		log.Fatalf("dispatch failed: %v", err)
	}
	result := results[0]
	if result.Err != "" {
		log.Fatalf("hunt failed: %s", result.Err)
	}

	fmt.Printf("verdict: %s\n", result.Verdict)
	if result.Verdict != diode.VerdictExposed.String() {
		return
	}
	fmt.Printf("enforced sanity checks, in discovery order:\n")
	for i, label := range result.Enforced {
		fmt.Printf("  %d. %s\n", i+1, label)
	}
	fmt.Printf("error: %s\n", result.ErrorType)
	fmt.Println("\ntriggering input (changed fields):")
	for _, spec := range app.Format.Fields.Specs() {
		if !strings.HasPrefix(spec.Name, "/ihdr/") {
			continue
		}
		fmt.Printf("  %-18s %10d -> %d\n",
			spec.Name, spec.Read(app.Format.Seed), spec.Read(result.Input))
	}
}
